#include "host/sampler.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace looplynx::host {

Sampler::Sampler(SamplerConfig config)
    : config_(config), rng_(config.seed) {}

std::uint32_t Sampler::argmax(std::span<const float> logits) {
  assert(!logits.empty());
  std::uint32_t best = 0;
  for (std::uint32_t i = 1; i < logits.size(); ++i) {
    if (logits[i] > logits[best]) best = i;
  }
  return best;
}

std::uint32_t Sampler::sample(std::span<const float> logits) {
  assert(!logits.empty());
  if (config_.top_k == 0) return argmax(logits);

  const std::uint32_t k = std::min<std::uint32_t>(
      config_.top_k, static_cast<std::uint32_t>(logits.size()));
  // Collect top-k indices by logit.
  std::vector<std::uint32_t> idx(logits.size());
  for (std::uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                    [&](std::uint32_t a, std::uint32_t b) {
                      if (logits[a] != logits[b]) return logits[a] > logits[b];
                      return a < b;  // deterministic tie-break
                    });
  idx.resize(k);

  // Softmax over the k with temperature.
  const float temp = std::max(config_.temperature, 1e-6f);
  float max_l = logits[idx[0]];
  std::vector<double> probs(k);
  double sum = 0.0;
  for (std::uint32_t i = 0; i < k; ++i) {
    probs[i] = std::exp((logits[idx[i]] - max_l) / temp);
    sum += probs[i];
  }
  double r = rng_.next_double() * sum;
  for (std::uint32_t i = 0; i < k; ++i) {
    r -= probs[i];
    if (r <= 0.0) return idx[i];
  }
  return idx[k - 1];
}

}  // namespace looplynx::host
