// Unit + property tests for the bounded FIFO channel.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fifo.hpp"
#include "sim/task.hpp"

namespace looplynx::sim {
namespace {

Task producer(Engine& eng, Fifo<int>& fifo, int count, Cycles gap) {
  for (int i = 0; i < count; ++i) {
    co_await fifo.put(i);
    if (gap) co_await eng.delay(gap);
  }
}

Task consumer(Engine& eng, Fifo<int>& fifo, int count, Cycles gap,
              std::vector<int>& out) {
  for (int i = 0; i < count; ++i) {
    out.push_back(co_await fifo.get());
    if (gap) co_await eng.delay(gap);
  }
}

std::vector<int> iota_vec(int n) {
  std::vector<int> v(n);
  for (int i = 0; i < n; ++i) v[i] = i;
  return v;
}

TEST(FifoTest, TransfersPreserveOrder) {
  Engine eng;
  Fifo<int> fifo(eng, 4);
  std::vector<int> out;
  eng.spawn(producer(eng, fifo, 100, 0));
  eng.spawn(consumer(eng, fifo, 100, 0, out));
  eng.run();
  EXPECT_EQ(out, iota_vec(100));
  EXPECT_EQ(fifo.total_transfers(), 100u);
}

TEST(FifoTest, FastProducerSlowConsumerBackpressure) {
  Engine eng;
  Fifo<int> fifo(eng, 2);
  std::vector<int> out;
  eng.spawn(producer(eng, fifo, 50, 0));
  eng.spawn(consumer(eng, fifo, 50, 10, out));
  eng.run();
  EXPECT_EQ(out, iota_vec(50));
  EXPECT_LE(fifo.max_occupancy(), 2u);
}

TEST(FifoTest, SlowProducerFastConsumer) {
  Engine eng;
  Fifo<int> fifo(eng, 2);
  std::vector<int> out;
  eng.spawn(producer(eng, fifo, 50, 10));
  eng.spawn(consumer(eng, fifo, 50, 0, out));
  eng.run();
  EXPECT_EQ(out, iota_vec(50));
}

TEST(FifoTest, DepthOneBehavesLikeRegister) {
  Engine eng;
  Fifo<int> fifo(eng, 1);
  std::vector<int> out;
  eng.spawn(producer(eng, fifo, 20, 3));
  eng.spawn(consumer(eng, fifo, 20, 7, out));
  eng.run();
  EXPECT_EQ(out, iota_vec(20));
  EXPECT_EQ(fifo.max_occupancy(), 1u);
}

TEST(FifoTest, ProducerBlocksWhenFull) {
  Engine eng;
  Fifo<int> fifo(eng, 3);
  Cycles producer_finished = 0;
  struct P {
    static Task run(Engine& eng, Fifo<int>& fifo, Cycles& finished) {
      for (int i = 0; i < 4; ++i) co_await fifo.put(i);
      finished = eng.now();
    }
  };
  struct C {
    static Task run(Engine& eng, Fifo<int>& fifo) {
      co_await eng.delay(100);
      (void)co_await fifo.get();
    }
  };
  eng.spawn(P::run(eng, fifo, producer_finished));
  eng.spawn(C::run(eng, fifo));
  eng.run();
  // The 4th put cannot complete until the consumer frees a slot at t=100.
  EXPECT_EQ(producer_finished, 100u);
}

TEST(FifoTest, MultipleProducersRoundTripAllItems) {
  Engine eng;
  Fifo<int> fifo(eng, 4);
  std::vector<int> out;
  eng.spawn(producer(eng, fifo, 30, 1));
  eng.spawn(producer(eng, fifo, 30, 2));
  eng.spawn(consumer(eng, fifo, 60, 0, out));
  eng.run();
  ASSERT_EQ(out.size(), 60u);
  // Each producer's items appear in its own order (FIFO per producer).
  std::vector<int> seen_counts(30, 0);
  for (int v : out) {
    ASSERT_GE(v, 0);
    ASSERT_LT(v, 30);
    ++seen_counts[v];
  }
  for (int c : seen_counts) EXPECT_EQ(c, 2);
}

TEST(FifoTest, MultipleConsumersDrainEverything) {
  Engine eng;
  Fifo<int> fifo(eng, 4);
  std::vector<int> out_a, out_b;
  eng.spawn(producer(eng, fifo, 40, 0));
  eng.spawn(consumer(eng, fifo, 20, 1, out_a));
  eng.spawn(consumer(eng, fifo, 20, 1, out_b));
  eng.run();
  EXPECT_EQ(out_a.size() + out_b.size(), 40u);
}

TEST(FifoTest, TryPutTryGetNonBlocking) {
  Engine eng;
  Fifo<int> fifo(eng, 2);
  EXPECT_TRUE(fifo.try_put(1));
  EXPECT_TRUE(fifo.try_put(2));
  EXPECT_FALSE(fifo.try_put(3));  // full
  int v = 0;
  EXPECT_TRUE(fifo.try_get(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(fifo.try_get(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(fifo.try_get(v));  // empty
}

TEST(FifoTest, UnboundedNeverBlocksProducer) {
  Engine eng;
  Fifo<int> fifo(eng, Fifo<int>::kUnbounded);
  Cycles finished = 0;
  struct P {
    static Task run(Engine& eng, Fifo<int>& fifo, Cycles& finished) {
      for (int i = 0; i < 10'000; ++i) co_await fifo.put(i);
      finished = eng.now();
    }
  };
  eng.spawn(P::run(eng, fifo, finished));
  eng.run();
  EXPECT_EQ(finished, 0u);  // no consumer needed, no time passes
  EXPECT_EQ(fifo.size(), 10'000u);
}

TEST(FifoTest, MovesNonCopyablePayloads) {
  Engine eng;
  Fifo<std::unique_ptr<int>> fifo(eng, 2);
  struct P {
    static Task run(Fifo<std::unique_ptr<int>>& fifo) {
      co_await fifo.put(std::make_unique<int>(7));
    }
  };
  struct C {
    static Task run(Fifo<std::unique_ptr<int>>& fifo, int& got) {
      auto p = co_await fifo.get();
      got = *p;
    }
  };
  int got = 0;
  eng.spawn(P::run(fifo));
  eng.spawn(C::run(fifo, got));
  eng.run();
  EXPECT_EQ(got, 7);
}

// Property sweep: for any (capacity, producer gap, consumer gap) the channel
// delivers all items in order — the core dataflow-correctness invariant.
struct FifoParam {
  std::size_t capacity;
  Cycles produce_gap;
  Cycles consume_gap;
};

class FifoPropertyTest : public ::testing::TestWithParam<FifoParam> {};

TEST_P(FifoPropertyTest, DeliversAllItemsInOrder) {
  const FifoParam p = GetParam();
  Engine eng;
  Fifo<int> fifo(eng, p.capacity);
  std::vector<int> out;
  constexpr int kItems = 200;
  eng.spawn(producer(eng, fifo, kItems, p.produce_gap));
  eng.spawn(consumer(eng, fifo, kItems, p.consume_gap, out));
  eng.run();
  EXPECT_EQ(out, iota_vec(kItems));
  EXPECT_LE(fifo.max_occupancy(), p.capacity);
  // Throughput bound: the slower side dictates total time.
  const Cycles min_time =
      static_cast<Cycles>(kItems - 1) * std::max(p.produce_gap, p.consume_gap);
  EXPECT_GE(eng.now(), min_time);
}

INSTANTIATE_TEST_SUITE_P(
    CapacityGapSweep, FifoPropertyTest,
    ::testing::Values(FifoParam{1, 0, 0}, FifoParam{1, 3, 0},
                      FifoParam{1, 0, 3}, FifoParam{2, 5, 2},
                      FifoParam{4, 2, 5}, FifoParam{8, 0, 1},
                      FifoParam{16, 1, 0}, FifoParam{3, 7, 7},
                      FifoParam{32, 11, 2}, FifoParam{5, 2, 11}),
    [](const ::testing::TestParamInfo<FifoParam>& info) {
      return "cap" + std::to_string(info.param.capacity) + "_pg" +
             std::to_string(info.param.produce_gap) + "_cg" +
             std::to_string(info.param.consume_gap);
    });

}  // namespace
}  // namespace looplynx::sim
