#include "serve/cli_flags.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace looplynx::serve {

namespace {

/// Splits a --min-replicas/--max-replicas value into per-entry counts: a
/// bare integer is a one-entry list (the legacy scalar form), a comma
/// list names one bound per tier. Non-numeric entries and zeros throw —
/// a bound of 0 would silently pin a tier empty.
std::vector<std::uint32_t> parse_bounds_list(const std::string& flag,
                                             const std::string& spec) {
  std::vector<std::uint32_t> out;
  std::size_t start = 0;
  while (start <= spec.size()) {
    const std::size_t comma = spec.find(',', start);
    const std::string item =
        spec.substr(start, comma == std::string::npos ? std::string::npos
                                                      : comma - start);
    long long value = 0;
    std::size_t used = 0;
    try {
      value = std::stoll(item, &used);
    } catch (const std::exception&) {
      used = item.size() + 1;  // force the error path below
    }
    if (used != item.size() || item.empty()) {
      throw std::invalid_argument(
          "--" + flag + " expects an integer or a comma list of integers, "
          "got \"" + item + "\"");
    }
    if (value < 1) {
      throw std::invalid_argument("--" + flag + " entries must be >= 1");
    }
    out.push_back(static_cast<std::uint32_t>(value));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

SchedulerCliOptions parse_scheduler_cli(const util::Cli& cli,
                                        const std::string& default_policy) {
  SchedulerCliOptions opts;
  opts.policy = parse_batch_policy(cli.get_or("policy", default_policy));

  const long long chunk = cli.get_int_or(
      "chunk-tokens", default_chunk_tokens(opts.policy));
  if (chunk < 0) {
    throw std::invalid_argument("--chunk-tokens must be >= 0");
  }
  if (chunk > 0 && opts.policy != BatchPolicy::kChunkedMixed) {
    throw std::invalid_argument(
        "--chunk-tokens=" + std::to_string(chunk) +
        " requires --policy=chunked: the whole-prompt policies never split "
        "prompts, so a token budget would silently degrade into a "
        "batch-member cap");
  }
  opts.chunk_tokens = static_cast<std::uint32_t>(chunk);

  opts.preempt = parse_preempt_policy(cli.get_or("preempt", "none"));

  const long long block_tokens = cli.get_int_or("kv-block-tokens", 1);
  if (block_tokens < 1) {
    throw std::invalid_argument(
        "--kv-block-tokens must be >= 1 (1 = token-granular accounting, "
        "bit-identical to the pre-paging whole-footprint reservation)");
  }
  opts.kv_block_tokens = static_cast<std::uint32_t>(block_tokens);

  const long long replicas = cli.get_int_or("replicas", 1);
  if (replicas < 1) {
    throw std::invalid_argument(
        "--replicas must be >= 1 (1 = the single-replica engine, "
        "byte-identical to the pre-fleet output)");
  }
  opts.replicas = static_cast<std::uint32_t>(replicas);

  if (cli.has("autoscale")) {
    if (cli.has("replicas")) {
      throw std::invalid_argument(
          "--autoscale conflicts with --replicas: the autoscaler sizes "
          "the fleet between --min-replicas and --max-replicas, so a "
          "fixed width contradicts it");
    }
    opts.autoscale.enabled = true;
    // Bare --autoscale selects the conservative composite policy.
    const std::string policy = cli.get_or("autoscale", "");
    opts.autoscale.policy =
        policy.empty() ? ScalePolicy::kHybrid : parse_scale_policy(policy);
  } else if (cli.has("min-replicas") || cli.has("max-replicas") ||
             cli.has("scale-interval-ms")) {
    throw std::invalid_argument(
        "--min-replicas/--max-replicas/--scale-interval-ms require "
        "--autoscale: without the control loop they would silently do "
        "nothing");
  }
  if (opts.autoscale.enabled) {
    const double interval_ms = cli.get_double_or("scale-interval-ms", 50.0);
    if (!(interval_ms > 0)) {
      throw std::invalid_argument(
          "--scale-interval-ms must be > 0 (the control loop evaluates on "
          "the fleet clock)");
    }
    opts.autoscale.eval_interval_ms = interval_ms;
  }

  // Bare --prefix-cache / --kv-swap mean "on"; =off (or =0/=false/=no)
  // spells the default explicitly so CI can pin `--prefix-cache=off` output
  // byte-identical to a no-flag run.
  if (cli.has("prefix-cache")) {
    opts.prefix_cache = cli.get_bool_or("prefix-cache", true);
  }
  if (cli.has("kv-swap")) {
    opts.kv_swap = cli.get_bool_or("kv-swap", true);
  }
  if (opts.kv_swap && !opts.prefix_cache) {
    throw std::invalid_argument(
        "--kv-swap requires --prefix-cache: swap-to-host is an eviction "
        "tier of the prefix cache, so without the cache it would silently "
        "do nothing");
  }

  for (const char* flag : {"trace-out", "metrics-out"}) {
    if (!cli.has(flag)) continue;
    const std::string path = cli.get_or(flag, "");
    if (path.empty()) {
      throw std::invalid_argument(
          std::string("--") + flag +
          " needs a file path (--" + flag + "=<path>)");
    }
    (flag[0] == 't' ? opts.trace_out : opts.metrics_out) = path;
  }

  if (const auto balancer = cli.get("balancer")) {
    if (opts.replicas < 2 && !opts.autoscale.enabled) {
      throw std::invalid_argument(
          "--balancer requires --replicas >= 2 or --autoscale: routing "
          "over a single replica is a no-op, so the flag would silently "
          "do nothing");
    }
    opts.balancer = parse_balancer_policy(*balancer);
  }

  if (cli.has("roles")) {
    // With --autoscale the role list itself sizes the pool (the
    // autoscaler scales a live prefix inside each role tier), so
    // --replicas is neither needed nor legal (it already conflicts with
    // --autoscale above). A static disaggregated fleet still needs an
    // explicit matching --replicas.
    if (!opts.autoscale.enabled && opts.replicas < 2) {
      throw std::invalid_argument(
          "--roles requires --replicas >= 2 or --autoscale: KV migration "
          "ships blocks between replicas, so a single-replica fleet has "
          "nowhere to ship");
    }
    const std::string spec = cli.get_or("roles", "");
    std::size_t start = 0;
    while (start <= spec.size()) {
      const std::size_t comma = spec.find(',', start);
      const std::string item =
          spec.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      opts.roles.push_back(parse_replica_role(item));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    if (!opts.autoscale.enabled && opts.roles.size() != opts.replicas) {
      throw std::invalid_argument(
          "--roles must name every replica: got " +
          std::to_string(opts.roles.size()) + " roles for --replicas=" +
          std::to_string(opts.replicas));
    }
  }
  if (opts.autoscale.enabled) {
    // Resolved after --roles so the bounds know whether they are the
    // legacy fleet-wide scalars (symmetric fleet) or per-tier lists
    // (disaggregated fleet; FleetSim::validate checks the list lengths
    // against the tier count and each ceiling against its tier's pool).
    const std::vector<std::uint32_t> mins =
        parse_bounds_list("min-replicas", cli.get_or("min-replicas", "1"));
    const std::vector<std::uint32_t> maxs =
        parse_bounds_list("max-replicas", cli.get_or("max-replicas", "4"));
    if (opts.disaggregated()) {
      if (cli.has("min-replicas")) opts.autoscale.tier_min = mins;
      if (cli.has("max-replicas")) opts.autoscale.tier_max = maxs;
    } else {
      if (mins.size() != 1 || maxs.size() != 1) {
        throw std::invalid_argument(
            "--min-replicas/--max-replicas comma lists are per-tier "
            "bounds and require --roles (a symmetric fleet has one tier)");
      }
      if (maxs.front() < mins.front()) {
        throw std::invalid_argument(
            "--min-replicas exceeds --max-replicas (" +
            std::to_string(mins.front()) + " > " +
            std::to_string(maxs.front()) + ")");
      }
      opts.autoscale.min_replicas = mins.front();
      opts.autoscale.max_replicas = maxs.front();
    }
  }
  if (cli.has("kv-link-gbps") && !opts.disaggregated()) {
    throw std::invalid_argument(
        "--kv-link-gbps requires --roles: the KV-migration fabric only "
        "exists on a disaggregated fleet, so the flag would silently do "
        "nothing");
  }
  if (opts.disaggregated()) {
    opts.kv_link_gbps = cli.get_double_or("kv-link-gbps", 100.0);
    if (!(opts.kv_link_gbps > 0)) {
      throw std::invalid_argument(
          "--kv-link-gbps must be > 0 (a zero-rate link never delivers a "
          "migration)");
    }
  }
  return opts;
}

}  // namespace looplynx::serve
