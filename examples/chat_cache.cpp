// Prefix-cache walkthrough: the multi-turn chatbot workload the
// content-addressed prefix cache (DESIGN.md §8) is built for, served
// three ways at the same seed and the same per-node HBM budget — cache
// off, cache on, and cache on with the swap-to-host eviction tier.
//
// Every turn of a conversation replays the whole conversation so far
// (system prompt, then each earlier user message and assistant reply)
// before appending the new user message — that replayed history is what
// production chat traffic re-prefills on every turn. With
// --prefix-cache the earlier turns' prompt blocks are already published
// under the same content hashes, so admission skips them and only the
// genuinely new tail is prefilled.
//
// The point this example pins (and exits nonzero if it ever stops
// holding): at an equal HBM budget the cache-on run executes at least
// 30% fewer prefill cycles than the cache-off run, while serving at
// least as many requests within SLO. The saving is not an accounting
// trick — prefill_cycles counts the cycles the engine actually spent in
// prefill iterations, on both runs.
//
//   ./chat_cache [--conversations=8] [--turns=4] [--system-tokens=96]
//                [--user-tokens=24] [--reply-tokens=48]
//                [--rate=8] [--seed=21] [--help]
//
// Deterministic: same flags, byte-identical output (seeded arrival
// times, seeded content ids, deterministic cache eviction order).
#include <cstdint>
#include <iostream>
#include <string>

#include "core/arch_config.hpp"
#include "core/step_cost.hpp"
#include "model/config.hpp"
#include "serve/kv_block.hpp"
#include "serve/serving_sim.hpp"
#include "serve/traffic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

void print_usage() {
  std::cout <<
      "chat_cache: multi-turn chatbot traffic served cache-off vs\n"
      "cache-on vs cache-on+swap at one HBM budget.\n"
      "\n"
      "  --conversations=N    concurrent conversations (default 8)\n"
      "  --turns=N            requests per conversation (default 4)\n"
      "  --system-tokens=N    shared system-prompt length (default 96)\n"
      "  --user-tokens=N      new user-message tokens per turn (default "
      "24)\n"
      "  --reply-tokens=N     assistant reply length per turn (default "
      "48)\n"
      "  --rate=R             Poisson arrival rate per second (default 8)\n"
      "  --seed=N             arrival-time seed (default 21)\n"
      "  --help               this text\n"
      "\n"
      "Flags accept --key=value and --key value forms.\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  if (cli.has("help")) {
    print_usage();
    return 0;
  }

  serve::ChatTrafficConfig chat;
  chat.conversations =
      static_cast<std::uint32_t>(cli.get_int_or("conversations", 8));
  chat.turns = static_cast<std::uint32_t>(cli.get_int_or("turns", 4));
  chat.system_prompt_tokens =
      static_cast<std::uint32_t>(cli.get_int_or("system-tokens", 96));
  chat.user_turn_tokens =
      static_cast<std::uint32_t>(cli.get_int_or("user-tokens", 24));
  chat.reply_tokens =
      static_cast<std::uint32_t>(cli.get_int_or("reply-tokens", 48));

  serve::ServingConfig base;
  base.arch = core::ArchConfig::two_node();
  base.model = model::gpt2_medium();
  // Arrival *times* are Poisson; the shapes replay the turn-major chat
  // script, so every conversation's turn t is injected before any turn
  // t+1 and its history blocks are (usually) already published when the
  // next turn arrives.
  base.traffic.process = serve::ArrivalProcess::kPoisson;
  base.traffic.scripted_shapes = serve::chat_turn_shapes(chat);
  base.traffic.num_requests =
      static_cast<std::uint32_t>(base.traffic.scripted_shapes.size());
  base.traffic.arrival_rate_per_s = cli.get_double_or("rate", 8.0);
  base.traffic.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 21));
  base.scheduler.max_batch = 8;
  base.scheduler.policy = serve::BatchPolicy::kChunkedMixed;
  base.scheduler.max_tokens_per_iter = 64;
  base.scheduler.preempt = serve::PreemptPolicy::kRecomputeYoungest;
  base.kv_block_tokens = 16;
  // The finite budget all three runs share: roughly six average turns'
  // worth of live KV. Tight enough that the cache's retained blocks
  // compete with live requests for the pool — both eviction tiers fire,
  // and the swap run visibly beats plain eviction by swapping history
  // back in instead of re-prefilling it — yet loose enough that the
  // cache-off run is not preemption-bound (the comparison is prefill
  // work, not thrashing behavior).
  const double mean_turn_tokens =
      (static_cast<double>(chat.system_prompt_tokens) +
       (static_cast<double>(chat.turns - 1) / 2.0 + 1.0) *
           static_cast<double>(chat.user_turn_tokens + chat.reply_tokens));
  serve::KvBlockManager probe(base.arch, base.model, 1);
  base.kv_budget_bytes_per_node = static_cast<std::uint64_t>(
      6.0 * mean_turn_tokens *
      static_cast<double>(probe.bytes_per_token_per_node()));
  // The SLO the goodput pin is judged on: clears the longest turn's
  // intrinsic chunked-prefill TTFT with queueing headroom.
  base.slo.ttft_ms = 2500.0;
  base.slo.token_ms = 400.0;

  const core::StepCostModel costs(base.arch, base.model, 64);

  const auto run = [&](bool cache, bool swap) {
    serve::ServingConfig cfg = base;
    cfg.prefix_cache = cache;
    cfg.kv_swap = swap;
    return serve::ServingSim(cfg, costs).run();
  };
  const serve::FleetMetrics off = run(false, false);
  const serve::FleetMetrics on = run(true, false);
  const serve::FleetMetrics swap = run(true, true);

  const std::string shape_desc =
      std::to_string(chat.conversations) + " conv x " +
      std::to_string(chat.turns) + " turns, sys " +
      std::to_string(chat.system_prompt_tokens) + " tok";
  off.to_table("Chat traffic, prefix cache OFF (" + shape_desc + ")")
      .render(std::cout);
  std::cout << "\n";
  on.to_table("Chat traffic, prefix cache ON").render(std::cout);
  std::cout << "\n";
  swap.to_table("Chat traffic, prefix cache ON + KV swap").render(std::cout);

  const auto prefill_ms = [&](const serve::FleetMetrics& m) {
    return base.arch.cycles_to_ms(m.prefill_cycles);
  };
  std::cout << "\nPrefill actually executed: off "
            << util::fmt_fixed(prefill_ms(off), 1) << " ms, on "
            << util::fmt_fixed(prefill_ms(on), 1) << " ms, on+swap "
            << util::fmt_fixed(prefill_ms(swap), 1) << " ms.\n";
  std::cout << "Cache-on hit rate "
            << util::fmt_percent(on.cache_hit_rate, 1) << " ("
            << on.cache_hit_tokens << " of " << on.cache_lookup_tokens
            << " prompt tokens), saving "
            << util::fmt_fixed(on.saved_prefill_ms, 1)
            << " ms of prefill compute.\n";
  std::cout << "Swap tier: " << swap.cache_swap_out_blocks
            << " block(s) swapped out, " << swap.cache_swap_in_blocks
            << " swapped back, "
            << util::fmt_fixed(swap.cache_swap_ms, 2) << " ms of DMA.\n";

  // The pinned claims.
  bool ok = true;
  const double ratio = static_cast<double>(on.prefill_cycles) /
                       static_cast<double>(off.prefill_cycles);
  if (!(ratio <= 0.70)) {
    std::cout << "FAIL: cache-on run executed "
              << util::fmt_percent(ratio, 1)
              << " of the cache-off prefill cycles (pin: <= 70%)\n";
    ok = false;
  }
  if (on.slo_good < off.slo_good) {
    std::cout << "FAIL: cache-on run served fewer requests within SLO than "
                 "cache-off\n";
    ok = false;
  }
  if (on.cache_hit_tokens == 0) {
    std::cout << "FAIL: chat traffic produced no cache hits (vacuous run)\n";
    ok = false;
  }
  const auto conserved = [](const serve::FleetMetrics& m) {
    return m.completed + m.rejected == m.offered;
  };
  if (!conserved(off) || !conserved(on) || !conserved(swap)) {
    std::cout << "FAIL: request conservation violated\n";
    ok = false;
  }
  if (ok) {
    std::cout << "\nPIN HOLDS: cache-on executed "
              << util::fmt_percent(1.0 - ratio, 1)
              << " fewer prefill cycles at the same HBM budget, with SLO "
                 "goodput no worse.\n";
  }
  return ok ? 0 : 1;
}
