// Continuous-batching walkthrough: a 12-request burst arrives at a
// 2-node LoopLynx deployment whose KV budget only fits a handful of
// requests at once, so the KV manager backpressures admissions and the
// scheduler interleaves prefill and decode steps across the fleet.
//
// With --policy=chunked (plus --chunk-tokens=N) the scheduler runs on a
// per-iteration token budget: long prompts split into chunks that
// co-schedule with running decodes instead of stalling them. With
// --preempt=recompute the KV becomes paged (--kv-block-tokens blocks):
// admission books only the prompt's blocks, decode blocks grow on demand,
// and the youngest request is evicted-and-recomputed when the pool runs
// dry — the same HBM budget then carries visibly more concurrent streams.
// --prefix-cache adds content-addressed prefix caching on top (prompt
// blocks published at prefill commit, admission skips cached prefixes);
// --kv-swap adds the swap-to-host eviction tier.
// With --replicas=N the burst instead lands on a fleet of N such
// deployments routed by --balancer (rr|jsq|kv); with --autoscale the
// fleet sizes itself between --min-replicas and --max-replicas on the
// deterministic control loop (queue|slo|hybrid policies). --roles
// disaggregates the fleet into prefill/decode tiers (KV ships over the
// ring fabric priced by --kv-link-gbps), and composed with --autoscale
// each role tier runs its own control loop under comma-list bounds.
//
//   ./continuous_batching [--requests=12] [--batch=8] [--rate=12]
//                         [--policy=prefill|decode|chunked]
//                         [--chunk-tokens=0] [--seed=7]
//                         [--preempt=none|recompute|cost-aware]
//                         [--kv-block-tokens=1]
//                         [--prefix-cache] [--kv-swap]
//                         [--replicas=1] [--balancer=rr|jsq|kv]
//                         [--roles=R,R,...] [--kv-link-gbps=100]
//                         [--autoscale=queue|slo|hybrid]
//                         [--min-replicas=1[,1...]]
//                         [--max-replicas=4[,4...]]
//                         [--scale-interval-ms=50]
//                         [--trace-out=PATH] [--metrics-out=PATH] [--help]
#include <iostream>
#include <optional>

#include "core/arch_config.hpp"
#include "model/config.hpp"
#include "serve/cli_flags.hpp"
#include "serve/fleet.hpp"
#include "serve/kv_block.hpp"
#include "serve/observe.hpp"
#include "serve/serving_sim.hpp"
#include "util/cli.hpp"
#include "workload/mix.hpp"

namespace {

void print_usage() {
  std::cout <<
      "continuous_batching: 12-request KV-backpressure walkthrough.\n"
      "\n"
      "  --requests=N         burst size (default 12)\n"
      "  --batch=N            scheduler max batch (default 8)\n"
      "  --rate=R             Poisson arrival rate per second (default 12)\n"
      "  --seed=N             traffic seed (default 7)\n"
      "  --policy=P           prefill|decode|chunked (default prefill)\n"
      "  --chunk-tokens=N     per-iteration token budget; requires\n"
      "                       --policy=chunked (chunked defaults to 64)\n"
      "  --preempt=P          none|recompute|cost-aware (default none)\n"
      "  --kv-block-tokens=N  KV paging granularity, >= 1 (default 1)\n"
      "  --prefix-cache[=B]   content-addressed prefix caching (bare = on;\n"
      "                       =off spells the byte-identical default)\n"
      "  --kv-swap            swap-to-host eviction tier; requires\n"
      "                       --prefix-cache\n"
      "  --replicas=N         fleet width, >= 1 (default 1)\n"
      "  --balancer=B         rr|jsq|kv; requires --replicas >= 2 or "
      "--autoscale\n"
      "  --roles=R,R,...      per-replica roles, prefill|decode|general;\n"
      "                       requires --replicas >= 2 or --autoscale (the\n"
      "                       role list then sizes the pool)\n"
      "  --kv-link-gbps=G     ring-fabric link bandwidth for KV migration,\n"
      "                       > 0; requires --roles (default 100)\n"
      "  --autoscale=P        queue|slo|hybrid (bare = hybrid): autoscale\n"
      "                       the fleet; conflicts with --replicas\n"
      "  --min-replicas=N[,N...]  autoscale floor, >= 1 (default 1); a\n"
      "                       comma list gives per-tier floors (requires\n"
      "                       --roles)\n"
      "  --max-replicas=N[,N...]  autoscale ceiling, >= min (default 4);\n"
      "                       a comma list gives per-tier ceilings, each\n"
      "                       equal to its tier's pool (requires --roles)\n"
      "  --scale-interval-ms=T  control-loop period in ms, > 0 (default "
      "50)\n"
      "  --trace-out=PATH     write a Chrome/Perfetto trace-event JSON of\n"
      "                       the run (load at https://ui.perfetto.dev)\n"
      "  --metrics-out=PATH   write a Prometheus text exposition of the run\n"
      "  --help               this text\n"
      "\n"
      "Flags accept --key=value and --key value forms.\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  if (cli.has("help")) {
    print_usage();
    return 0;
  }
  const serve::SchedulerCliOptions opts = serve::parse_scheduler_cli(cli);

  serve::ServingConfig cfg;
  cfg.arch = core::ArchConfig::two_node();
  cfg.model = model::gpt2_medium();
  cfg.traffic.process = serve::ArrivalProcess::kPoisson;
  cfg.traffic.mix = workload::mixed_fleet();
  cfg.traffic.num_requests =
      static_cast<std::uint32_t>(cli.get_int_or("requests", 12));
  cfg.traffic.arrival_rate_per_s = cli.get_double_or("rate", 12.0);
  cfg.traffic.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 7));
  cfg.scheduler.max_batch =
      static_cast<std::uint32_t>(cli.get_int_or("batch", 8));
  cfg.scheduler.policy = opts.policy;
  cfg.scheduler.max_tokens_per_iter = opts.chunk_tokens;
  cfg.scheduler.preempt = opts.preempt;
  cfg.kv_block_tokens = opts.kv_block_tokens;
  cfg.prefix_cache = opts.prefix_cache;
  cfg.kv_swap = opts.kv_swap;
  // Shrink the KV budget so roughly 8 average requests fit at once: the
  // scheduler demonstrably interleaves 8+ concurrent streams, while the
  // stragglers beyond that back up in the queue on KV slots — the
  // pressure a production fleet must survive. A multi-replica fleet keeps
  // the same per-replica budget, so the burst spreads instead of queueing.
  const auto mean_tokens = cfg.traffic.mix.mean_tokens_per_request();
  serve::KvBlockManager probe(cfg.arch, cfg.model, 1);  // bytes-per-token probe
  cfg.kv_budget_bytes_per_node = static_cast<std::uint64_t>(
      8.5 * mean_tokens * static_cast<double>(probe.bytes_per_token_per_node()));

  // Unset export flags never construct an observer, so the default run
  // stays byte-identical to an unobserved binary.
  std::optional<serve::Observer> obs;
  if (opts.observed()) {
    obs.emplace(opts.fleet() ? opts.fleet_width() : 1,
                cfg.arch.frequency_hz);
  }
  serve::Observer* const obs_ptr = obs ? &*obs : nullptr;

  serve::FleetMetrics m;
  const std::string mix_title =
      "Continuous batching, " + cfg.traffic.mix.name + " mix, batch " +
      std::to_string(cfg.scheduler.max_batch);
  if (opts.fleet()) {
    serve::FleetConfig fleet_cfg = serve::FleetConfig::homogeneous(
        cfg, opts.fleet_width(), opts.balancer);
    fleet_cfg.autoscale = opts.autoscale;
    if (opts.disaggregated()) {
      fleet_cfg.roles = opts.roles;
      // GB/s (decimal) -> bytes per fleet-clock cycle.
      fleet_cfg.kv_link.bytes_per_cycle =
          opts.kv_link_gbps * 1e9 / cfg.arch.frequency_hz;
    }
    // Per-tier bounds print as comma lists (empty lists = the per-tier
    // defaults); the symmetric scalars keep the legacy spelling.
    const auto join = [](const std::vector<std::uint32_t>& v,
                         const std::string& fallback) {
      if (v.empty()) return fallback;
      std::string s;
      for (std::size_t i = 0; i < v.size(); ++i) {
        s += (i ? "," : "") + std::to_string(v[i]);
      }
      return s;
    };
    const std::string bounds =
        opts.disaggregated()
            ? join(opts.autoscale.tier_min, "1") + ".." +
                  join(opts.autoscale.tier_max, "pool")
            : std::to_string(opts.autoscale.min_replicas) + ".." +
                  std::to_string(opts.autoscale.max_replicas);
    const std::string fleet_title =
        opts.autoscale.enabled
            ? mix_title + ", autoscale " +
                  serve::scale_policy_name(opts.autoscale.policy) +
                  (opts.disaggregated() ? " per-tier " : " ") + bounds
            : mix_title + ", " + std::to_string(opts.replicas) +
                  " replicas, " +
                  serve::balancer_policy_name(opts.balancer);
    serve::FleetResult fr = serve::FleetSim(fleet_cfg).run(obs_ptr);
    fr.to_table(fleet_title).render(std::cout);
    std::cout << "\nLoad imbalance (max/mean routed) "
              << util::fmt_fixed(fr.load_imbalance, 2)
              << ", per-replica TTFT p99 spread "
              << util::fmt_fixed(fr.ttft_p99_spread_ms, 1) << " ms.\n";
    if (opts.autoscale.enabled) {
      std::cout << "Autoscaler: " << fr.scale_events.size()
                << " scale event(s), live replicas "
                << fr.min_live_replicas << ".." << fr.peak_live_replicas
                << " (mean " << util::fmt_fixed(fr.mean_live_replicas, 2)
                << "), " << util::fmt_fixed(fr.replica_seconds, 3)
                << " replica-seconds vs "
                << util::fmt_fixed(
                       static_cast<double>(opts.fleet_width()) *
                           fr.fleet.duration_s,
                       3)
                << " for a static max-width fleet.\n";
    }
    m = std::move(fr.fleet);
  } else {
    m = serve::ServingSim(cfg).run(obs_ptr);
    m.to_table(mix_title).render(std::cout);
  }

  if (cfg.scheduler.max_tokens_per_iter > 0) {
    std::cout << "\n" << m.chunked_prompts << " prompt(s) were split into "
              << "chunks (" << m.prefill_chunk_steps
              << " chunk steps; token budget "
              << cfg.scheduler.max_tokens_per_iter << "/iteration).\n";
  }
  std::cout << "\n" << m.peak_in_flight
            << " requests were in flight concurrently; KV backpressure "
               "stalled admission "
            << m.kv_stall_events << " time(s) (peak queue depth "
            << m.peak_queue_depth << ").\n";
  if (cfg.scheduler.preempt != serve::PreemptPolicy::kNone) {
    std::cout << "Paged KV (" << m.kv_block_tokens << " tok/block): "
              << m.preemptions << " preemption(s) recomputed "
              << m.recompute_tokens << " token(s) of dropped KV.\n";
  }
  if (opts.cached()) {
    std::cout << "Prefix cache: " << m.cache_hit_tokens << " of "
              << m.cache_lookup_tokens << " looked-up prompt token(s) hit ("
              << util::fmt_fixed(100.0 * m.cache_hit_rate, 1) << "%), "
              << util::fmt_fixed(m.saved_prefill_ms, 1)
              << " ms of prefill saved. The burst draws independent prompt\n"
              << "contents, so hits come only from preempted requests "
                 "re-admitting over\ntheir own published blocks; see "
                 "examples/chat_cache for the multi-turn\nscenario the cache "
                 "is built for.\n";
  }
  // Under the default whole-footprint reservation the demo must show
  // admission stalls; under preempt=recompute admission is deliberately
  // easier, so block-pool pressure may surface as preemptions instead. A
  // fleet spreads the burst across replicas, so per-replica pressure (and
  // the in-flight floor) scales down with the replica count.
  const bool pressured =
      m.kv_stall_events > 0 ||
      (cfg.scheduler.preempt != serve::PreemptPolicy::kNone &&
       m.preemptions > 0);
  if (!pressured && !opts.fleet()) {
    std::cout << "(increase --rate or --requests to exercise backpressure)\n";
  }
  if (opts.observed()) {
    serve::write_exports(*obs, opts.trace_out, opts.metrics_out);
    if (!opts.trace_out.empty()) {
      std::cout << "Wrote trace-event JSON to " << opts.trace_out
                << " (load at https://ui.perfetto.dev)\n";
    }
    if (!opts.metrics_out.empty()) {
      std::cout << "Wrote Prometheus metrics to " << opts.metrics_out << "\n";
    }
  }
  const bool ok = m.completed == m.offered - m.rejected &&
                  (opts.fleet() ? m.completed == cfg.traffic.num_requests
                                : m.peak_in_flight >= 8 && pressured);
  return ok ? 0 : 1;
}
