// Unit tests for the discrete-event engine and coroutine Task plumbing.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace looplynx::sim {
namespace {

Task delay_then_record(Engine& eng, Cycles d, std::vector<Cycles>& log) {
  co_await eng.delay(d);
  log.push_back(eng.now());
}

TEST(EngineTest, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0u);
  EXPECT_EQ(eng.events_processed(), 0u);
}

TEST(EngineTest, SingleDelayAdvancesClock) {
  Engine eng;
  std::vector<Cycles> log;
  eng.spawn(delay_then_record(eng, 42, log));
  eng.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 42u);
  EXPECT_EQ(eng.now(), 42u);
}

TEST(EngineTest, EventsFireInTimeOrder) {
  Engine eng;
  std::vector<Cycles> log;
  eng.spawn(delay_then_record(eng, 30, log));
  eng.spawn(delay_then_record(eng, 10, log));
  eng.spawn(delay_then_record(eng, 20, log));
  eng.run();
  EXPECT_EQ(log, (std::vector<Cycles>{10, 20, 30}));
}

Task record_id(Engine& eng, int id, std::vector<int>& order) {
  co_await eng.delay(5);
  order.push_back(id);
}

TEST(EngineTest, SameTimeEventsFireInSpawnOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) eng.spawn(record_id(eng, i, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

Task sequential_delays(Engine& eng, std::vector<Cycles>& log) {
  co_await eng.delay(10);
  log.push_back(eng.now());
  co_await eng.delay(0);  // yield: same cycle
  log.push_back(eng.now());
  co_await eng.delay(7);
  log.push_back(eng.now());
}

TEST(EngineTest, DelaysAccumulate) {
  Engine eng;
  std::vector<Cycles> log;
  eng.spawn(sequential_delays(eng, log));
  eng.run();
  EXPECT_EQ(log, (std::vector<Cycles>{10, 10, 17}));
}

Task child_task(Engine& eng, std::vector<std::string>& log) {
  log.push_back("child-start");
  co_await eng.delay(3);
  log.push_back("child-end");
}

Task parent_task(Engine& eng, std::vector<std::string>& log) {
  log.push_back("parent-start");
  co_await child_task(eng, log);
  log.push_back("parent-after-child");
  co_await eng.delay(2);
  log.push_back("parent-end");
}

TEST(EngineTest, NestedTaskRunsInlineAndResumesParent) {
  Engine eng;
  std::vector<std::string> log;
  const auto id = eng.spawn(parent_task(eng, log));
  eng.run();
  EXPECT_TRUE(eng.root_done(id));
  EXPECT_EQ(log, (std::vector<std::string>{"parent-start", "child-start",
                                           "child-end", "parent-after-child",
                                           "parent-end"}));
  EXPECT_EQ(eng.now(), 5u);
}

Task deep_nest(Engine& eng, int depth, Cycles each) {
  if (depth == 0) {
    co_await eng.delay(each);
    co_return;
  }
  co_await deep_nest(eng, depth - 1, each);
}

TEST(EngineTest, DeeplyNestedTasksComplete) {
  Engine eng;
  const auto id = eng.spawn(deep_nest(eng, 64, 9));
  eng.run();
  EXPECT_TRUE(eng.root_done(id));
  EXPECT_EQ(eng.now(), 9u);
}

Task throwing_task(Engine& eng) {
  co_await eng.delay(1);
  throw std::runtime_error("kernel fault");
}

TEST(EngineTest, RootExceptionPropagatesFromRun) {
  Engine eng;
  eng.spawn(throwing_task(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

Task throwing_child(Engine& eng) {
  co_await eng.delay(1);
  throw std::logic_error("child fault");
}

Task catching_parent(Engine& eng, bool& caught) {
  try {
    co_await throwing_child(eng);
  } catch (const std::logic_error&) {
    caught = true;
  }
}

TEST(EngineTest, ChildExceptionCatchableInParent) {
  Engine eng;
  bool caught = false;
  eng.spawn(catching_parent(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(EngineTest, RunUntilStopsAtRequestedTime) {
  Engine eng;
  std::vector<Cycles> log;
  eng.spawn(delay_then_record(eng, 10, log));
  eng.spawn(delay_then_record(eng, 100, log));
  const bool empty = eng.run_until(50);
  EXPECT_FALSE(empty);
  EXPECT_EQ(eng.now(), 50u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 10u);
  eng.run();
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(eng.now(), 100u);
}

TEST(EngineTest, MaxEventsBoundsRunawayProcesses) {
  Engine eng;
  struct Looper {
    static Task run(Engine& eng) {
      for (;;) co_await eng.delay(1);
    }
  };
  eng.spawn(Looper::run(eng));
  const auto processed = eng.run(/*max_events=*/1000);
  EXPECT_EQ(processed, 1000u);
}

Task spawner(Engine& eng, std::vector<Cycles>& log) {
  co_await eng.delay(5);
  eng.spawn(delay_then_record(eng, 3, log));
  co_await eng.delay(10);
  log.push_back(eng.now());
}

TEST(EngineTest, SpawnDuringRunSchedulesAtCurrentTime) {
  Engine eng;
  std::vector<Cycles> log;
  eng.spawn(spawner(eng, log));
  eng.run();
  // Spawned child starts at t=5 and finishes its 3-cycle delay at t=8; the
  // parent records at t=15.
  EXPECT_EQ(log, (std::vector<Cycles>{8, 15}));
}

TEST(EngineTest, DestructionWithSuspendedProcessesIsClean) {
  // Processes still blocked at engine teardown must not leak or crash
  // (checked by ASAN builds; here we just exercise the path).
  Engine eng;
  struct Blocked {
    static Task run(Engine& eng) {
      co_await eng.delay(1'000'000);  // never reached by run_until below
    }
  };
  eng.spawn(Blocked::run(eng));
  eng.run_until(10);
  SUCCEED();
}

TEST(TaskTest, MoveTransfersOwnership) {
  Engine eng;
  std::vector<Cycles> log;
  Task t = delay_then_record(eng, 1, log);
  EXPECT_TRUE(t.valid());
  Task u = std::move(t);
  EXPECT_FALSE(t.valid());  // NOLINT(bugprone-use-after-move): intentional
  EXPECT_TRUE(u.valid());
  eng.spawn(std::move(u));
  eng.run();
  EXPECT_EQ(log.size(), 1u);
}

TEST(EngineTest, EventCountsAreTracked) {
  Engine eng;
  std::vector<Cycles> log;
  eng.spawn(delay_then_record(eng, 1, log));
  eng.spawn(delay_then_record(eng, 2, log));
  eng.run();
  // Each root: one start event + one delay-resume event.
  EXPECT_EQ(eng.events_processed(), 4u);
}

// ---- sim::Trace span accounting (the Fig. 5 breakdown machinery) ----

TEST(TraceTest, CategoryTotalsAccumulate) {
  Trace trace;
  trace.add("attn", 0, 100);
  trace.add("attn", 100, 150);
  trace.add("mlp", 150, 400);
  trace.add_cycles("host", 10);
  EXPECT_EQ(trace.total("attn"), 150u);
  EXPECT_EQ(trace.total("mlp"), 250u);
  EXPECT_EQ(trace.total("host"), 10u);
  EXPECT_EQ(trace.total("missing"), 0u);
  EXPECT_EQ(trace.grand_total(), 410u);
  EXPECT_DOUBLE_EQ(trace.fraction("mlp"), 250.0 / 410.0);
}

TEST(TraceTest, BackwardsSpanClampsToZeroWidth) {
  Trace trace;
  trace.add("x", 50, 10);  // end < begin must not underflow the total
  EXPECT_EQ(trace.total("x"), 0u);
}

TEST(TraceTest, KeepSpansRetainsSpanListAndDefaultDoesNot) {
  Trace bare;
  bare.add("a", 0, 5);
  EXPECT_TRUE(bare.spans().empty());  // totals-only mode

  Trace kept(/*keep_spans=*/true);
  kept.add("a", 0, 5);
  kept.add("b", 5, 9);
  ASSERT_EQ(kept.spans().size(), 2u);
  EXPECT_EQ(kept.spans()[1].category, "b");
  EXPECT_EQ(kept.spans()[1].begin, 5u);
  EXPECT_EQ(kept.spans()[1].end, 9u);
}

TEST(TraceTest, AdjacentSpansTileTheTimeline) {
  // The serve-layer observer's tiling identity rests on this: category
  // totals of back-to-back spans sum exactly to the covered interval.
  Trace trace(/*keep_spans=*/true);
  const Cycles edges[] = {0, 7, 7, 19, 64, 101};
  const char* cats[] = {"a", "b", "c", "a", "b"};
  for (std::size_t i = 0; i + 1 < std::size(edges); ++i) {
    trace.add(cats[i], edges[i], edges[i + 1]);
  }
  EXPECT_EQ(trace.grand_total(), 101u);
  EXPECT_EQ(trace.total("a") + trace.total("b") + trace.total("c"), 101u);
}

TEST(TraceTest, MergeSumsTotals) {
  Trace a, b;
  a.add("x", 0, 10);
  b.add("x", 0, 5);
  b.add("y", 5, 6);
  a.merge(b);
  EXPECT_EQ(a.total("x"), 15u);
  EXPECT_EQ(a.total("y"), 1u);
}

TEST(TraceTest, ChromeExportRequiresKeepSpans) {
  Trace trace;  // totals-only: nothing to export
  trace.add("a", 0, 5);
  std::ostringstream os;
  EXPECT_THROW(trace.export_chrome_trace(os), std::logic_error);
}

TEST(TraceTest, ChromeExportEmitsIntegerCycleTimestamps) {
  Trace trace(/*keep_spans=*/true);
  trace.add("prefill", 0, 40);
  trace.add("decode", 40, 100);
  std::ostringstream os;
  trace.export_chrome_trace(os);
  const std::string json = os.str();
  // Valid trace-event envelope with the cycle-clock declaration...
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"clock\":\"simulated-cycles\""), std::string::npos);
  // ...and one complete event per span, timestamps as raw cycle counts.
  EXPECT_NE(json.find("\"name\":\"prefill\""), std::string::npos);
  EXPECT_NE(
      json.find("\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":40,\"dur\":60"),
      std::string::npos);
  // Byte-determinism: a second export is identical.
  std::ostringstream os2;
  trace.export_chrome_trace(os2);
  EXPECT_EQ(json, os2.str());
}

TEST(TraceTest, ChromeTraceWriterEscapesJsonStrings) {
  EXPECT_EQ(ChromeTraceWriter::json_escape("a\"b\\c\nd"),
            "a\\\"b\\\\c\\u000ad");
}

TEST(TraceTest, ScopedSpanRecordsElapsedEngineCycles) {
  Engine eng;
  Trace trace;
  struct Proc {
    static Task run(Engine& eng, Trace& trace) {
      ScopedSpan span(trace, eng, "work");
      co_await eng.delay(25);
    }
  };
  eng.spawn(Proc::run(eng, trace));
  eng.run();
  EXPECT_EQ(trace.total("work"), 25u);
}

}  // namespace
}  // namespace looplynx::sim
