// Coroutine task type for dataflow processes in the cycle-level simulator.
//
// A sim::Task is a lazily-started coroutine. Tasks compose: a parent process
// `co_await`s a child task, which runs inline in simulated time and resumes
// the parent when it completes (symmetric transfer, no extra event). Root
// tasks are handed to sim::Engine::spawn, which owns their frames.
//
// This mirrors how Vitis HLS dataflow "processes" are written: straight-line
// code with blocking FIFO reads/writes, scheduled by the surrounding runtime.
#pragma once

#include <array>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <utility>

namespace looplynx::sim {

namespace detail {

// ASan must keep seeing real malloc/free so a use-after-free of a coroutine
// frame is still caught in the sanitizer CI legs; the pool only engages in
// plain builds, where it is what makes per-request spawns allocation-free.
#if defined(__SANITIZE_ADDRESS__)
inline constexpr bool kPoolTaskFrames = false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
inline constexpr bool kPoolTaskFrames = false;
#else
inline constexpr bool kPoolTaskFrames = true;
#endif
#else
inline constexpr bool kPoolTaskFrames = true;
#endif

/// Size-bucketed free-list recycler for Task coroutine frames. A serving
/// sweep spawns one short-lived root frame per request — identical in size
/// run after run — so recycling by exact size makes steady-state spawns
/// allocation-free. Thread-local (the simulator is single-threaded per
/// engine); frames never outlive the thread, and leftover free-list nodes
/// are returned to the heap at thread exit.
class FrameArena {
 public:
  static FrameArena& instance() {
    thread_local FrameArena arena;
    return arena;
  }

  void* allocate(std::size_t size) {
    for (Bucket& b : buckets_) {
      if (b.size == size && b.head != nullptr) {
        Node* n = b.head;
        b.head = n->next;
        return n;
      }
    }
    return ::operator new(size);
  }

  void deallocate(void* p, std::size_t size) {
    if (size >= sizeof(Node)) {
      for (Bucket& b : buckets_) {
        if (b.size == size || b.size == 0) {
          b.size = size;
          Node* n = static_cast<Node*>(p);
          n->next = b.head;
          b.head = n;
          return;
        }
      }
    }
    ::operator delete(p);  // more distinct frame sizes than buckets
  }

  ~FrameArena() {
    for (Bucket& b : buckets_) {
      while (b.head != nullptr) {
        Node* n = b.head;
        b.head = n->next;
        ::operator delete(n);
      }
    }
  }

 private:
  struct Node {
    Node* next;
  };
  struct Bucket {
    std::size_t size = 0;
    Node* head = nullptr;
  };
  std::array<Bucket, 32> buckets_{};
};

}  // namespace detail

class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    std::coroutine_handle<> continuation = std::noop_coroutine();
    std::exception_ptr exception;

    static void* operator new(std::size_t size) {
      if constexpr (detail::kPoolTaskFrames) {
        return detail::FrameArena::instance().allocate(size);
      } else {
        return ::operator new(size);
      }
    }
    static void operator delete(void* p, std::size_t size) {
      if constexpr (detail::kPoolTaskFrames) {
        detail::FrameArena::instance().deallocate(p, size);
      } else {
        ::operator delete(p);
      }
    }

    Task get_return_object() noexcept {
      return Task{Handle::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        // Resume whoever awaited this task; noop_coroutine for roots.
        return h.promise().continuation;
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() noexcept {}
    void unhandled_exception() noexcept {
      exception = std::current_exception();
    }
  };

  Task() noexcept = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return !handle_ || handle_.done(); }
  Handle handle() const noexcept { return handle_; }

  /// Releases ownership of the coroutine frame to the caller.
  Handle release() noexcept { return std::exchange(handle_, {}); }

  /// Rethrows the task's stored exception, if any. Only meaningful once the
  /// task is done.
  void rethrow_if_failed() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  struct Awaiter {
    Handle handle;
    bool await_ready() const noexcept { return !handle || handle.done(); }
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<> parent) noexcept {
      handle.promise().continuation = parent;
      return handle;  // Start the child immediately (symmetric transfer).
    }
    void await_resume() const {
      if (handle && handle.promise().exception) {
        std::rethrow_exception(handle.promise().exception);
      }
    }
  };

  /// Awaiting a task starts it inline and suspends the parent until done.
  Awaiter operator co_await() const& noexcept { return Awaiter{handle_}; }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  Handle handle_{};
};

}  // namespace looplynx::sim
