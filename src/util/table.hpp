// ASCII / markdown table rendering used by every benchmark harness to print
// the rows of the paper's tables and figures.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace looplynx::util {

/// Column alignment inside a rendered table.
enum class Align { kLeft, kRight };

/// A simple string-cell table with a title, one header row and N data rows.
///
/// Cells are stored as strings; helpers format numeric values. The table can
/// be rendered as aligned ASCII (for terminals) or GitHub markdown (for
/// EXPERIMENTS.md).
class Table {
 public:
  explicit Table(std::string title = "");

  /// Sets the header row; defines the column count.
  void set_header(std::vector<std::string> header);

  /// Sets per-column alignment; missing entries default to kRight (the first
  /// column defaults to kLeft).
  void set_align(std::vector<Align> align);

  /// Appends a data row. Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator between row groups.
  void add_separator();

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_cols() const { return header_.size(); }
  const std::string& title() const { return title_; }

  /// Renders the table with box-drawing borders.
  void render(std::ostream& os) const;

  /// Renders as GitHub-flavored markdown.
  void render_markdown(std::ostream& os) const;

  /// Convenience: render() into a string.
  std::string to_string() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  Align column_align(std::size_t col) const;
  std::vector<std::size_t> column_widths() const;

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Align> align_;
  std::vector<Row> rows_;
};

/// Formats a double with `digits` fractional digits ("3.85").
std::string fmt_fixed(double value, int digits = 2);

/// Formats a ratio as a speed-up string ("2.52x").
std::string fmt_speedup(double ratio, int digits = 2);

/// Formats a fraction as a percentage ("48.1%").
std::string fmt_percent(double fraction, int digits = 1);

/// Formats an integer with thousands separators ("12,288").
std::string fmt_int(long long value);

/// Formats a count as "312K" / "1.2M" in the style of the paper's resource
/// tables.
std::string fmt_kilo(double value, int digits = 0);

}  // namespace looplynx::util
