#include "core/step_cost.hpp"

#include <algorithm>
#include <cstddef>

namespace looplynx::core {

StepCostModel::StepCostModel(const System& system, std::uint32_t probe_stride)
    : arch_(system.arch()), model_(system.model()) {
  const std::uint32_t max_seq = model_.max_seq_len;
  const std::uint32_t stride = std::max<std::uint32_t>(1, probe_stride);

  std::vector<std::uint32_t> probes;
  for (std::uint32_t pos = 0; pos < max_seq; pos += stride) {
    probes.push_back(pos);
  }
  if (probes.back() != max_seq - 1) probes.push_back(max_seq - 1);

  std::vector<sim::Cycles> probed(probes.size());
  for (std::size_t i = 0; i < probes.size(); ++i) {
    probed[i] = system.token_cycles(probes[i]);
  }

  step_.resize(max_seq);
  for (std::size_t i = 0; i + 1 < probes.size(); ++i) {
    const std::uint32_t lo = probes[i];
    const std::uint32_t hi = probes[i + 1];
    for (std::uint32_t pos = lo; pos < hi; ++pos) {
      const double t = static_cast<double>(pos - lo) /
                       static_cast<double>(hi - lo);
      step_[pos] = static_cast<sim::Cycles>(
          static_cast<double>(probed[i]) * (1.0 - t) +
          static_cast<double>(probed[i + 1]) * t);
    }
  }
  step_[max_seq - 1] = probed.back();

  prefix_.resize(max_seq + 1);
  prefix_[0] = 0;
  for (std::uint32_t pos = 0; pos < max_seq; ++pos) {
    prefix_[pos + 1] = prefix_[pos] + step_[pos];
  }

  // Analytic Fused-MP bounds (int8: one weight byte == one MAC).
  const double weight_bytes_per_node =
      static_cast<double>(model_.weight_bytes_per_token(1)) / arch_.num_nodes;
  const double stream_bytes_per_cycle = static_cast<double>(arch_.n_channel) *
                                        arch_.hbm_bytes_per_cycle() *
                                        arch_.hbm_efficiency;
  weight_stream_cycles_ =
      static_cast<sim::Cycles>(weight_bytes_per_node / stream_bytes_per_cycle);
  weight_mac_cycles_ = static_cast<sim::Cycles>(
      weight_bytes_per_node / static_cast<double>(arch_.mpu_lanes()));
}

sim::Cycles StepCostModel::decode_batch_cycles(
    const std::vector<std::uint32_t>& positions) const {
  if (positions.empty()) return 0;
  // Exact identity for a lone step, immune to analytic-estimate skew.
  if (positions.size() == 1) return step_cycles(positions.front());
  const sim::Cycles mp_single =
      std::max(weight_stream_cycles_, weight_mac_cycles_);
  // Per-token residual: everything except the shareable MP pass (MHA,
  // critical-path ops, sync, per-stage scheduling).
  sim::Cycles total = 0;
  for (std::uint32_t pos : positions) {
    const sim::Cycles s = step_cycles(pos);
    total += s > mp_single ? s - mp_single : 0;
  }
  total += std::max(weight_stream_cycles_,
                    static_cast<sim::Cycles>(positions.size()) *
                        weight_mac_cycles_);
  return total;
}

sim::Cycles StepCostModel::prefill_group_cycles(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& chunks)
    const {
  if (chunks.empty()) return 0;
  // Exact identity for a lone chunk, immune to analytic-estimate skew.
  if (chunks.size() == 1) {
    return prefill_chunk_cycles(chunks.front().first, chunks.front().second);
  }
  const sim::Cycles mp_single =
      std::max(weight_stream_cycles_, weight_mac_cycles_);
  std::uint32_t max_tokens = 0;
  for (const auto& [start, tokens] : chunks) {
    max_tokens = std::max(max_tokens, tokens);
  }
  // Wavefront w: position start + w of every chunk longer than w. Shorter
  // chunks drop out of later wavefronts, so the shared pass shrinks with
  // them — the same max(stream, B x mac) + residuals shape as the decode
  // group, applied token column by token column.
  sim::Cycles total = 0;
  for (std::uint32_t w = 0; w < max_tokens; ++w) {
    sim::Cycles members = 0;
    for (const auto& [start, tokens] : chunks) {
      if (w >= tokens) continue;
      const sim::Cycles s = step_cycles(start + w);
      total += s > mp_single ? s - mp_single : 0;
      ++members;
    }
    total += std::max(weight_stream_cycles_, members * weight_mac_cycles_);
  }
  return total;
}

}  // namespace looplynx::core
