// Minimal SHA-256 (FIPS 180-4) for content fingerprinting — the golden
// determinism fixture hashes canonical serve-layer sweep serializations
// against a checked-in digest (tests/test_determinism_golden.cpp). Pure
// integer arithmetic, no platform dependencies, byte-stable everywhere.
// Not a cryptographic-security surface: nothing here handles secrets.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace looplynx::util {

/// Lowercase hex SHA-256 digest of `data`.
std::string sha256_hex(std::string_view data);

}  // namespace looplynx::util
