// Per-token step-cost model for the serving scheduler.
//
// The continuous-batching scheduler (src/serve/) prices every iteration in
// accelerator cycles before it runs, so it cannot afford to re-simulate the
// dataflow pipeline per token. Token cost depends on sequence position only
// through the KV length and is piecewise-linear in it (the MHA kernel's
// score/mix loops grow linearly; block quantization rounds to mp_block_rows
// granularity), so this model probes core::System::token_cycles at a
// configurable stride of positions and interpolates between probes. With
// probe_stride == 1 the table is exact.
#pragma once

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/arch_config.hpp"
#include "core/system.hpp"
#include "model/config.hpp"
#include "sim/engine.hpp"

namespace looplynx::core {

class StepCostModel {
 public:
  /// Probes `system.token_cycles` at positions {0, stride, 2*stride, ...,
  /// max_seq_len - 1} and fills the in-between positions by linear
  /// interpolation.
  explicit StepCostModel(const System& system, std::uint32_t probe_stride = 64);

  /// Convenience: constructs the System internally.
  StepCostModel(const ArchConfig& arch, const model::ModelConfig& model,
                std::uint32_t probe_stride = 64)
      : StepCostModel(System(arch, model), probe_stride) {}

  /// Cycles to process one token with `pos` tokens already cached
  /// (host sync excluded).
  sim::Cycles step_cycles(std::uint32_t pos) const { return step_.at(pos); }

  /// Cycles to process an L-token prompt back to back, i.e. the sum of
  /// step_cycles over positions [0, L). O(1) via a prefix-sum table.
  sim::Cycles prefill_cycles(std::uint32_t prompt_len) const {
    return prefix_.at(prompt_len);
  }

  /// Pipeline occupancy of one prefill *chunk*: prompt positions
  /// [start, start + tokens) pushed back to back. The first chunk
  /// (start == 0) pays the full weight-stream ramp that prefill_cycles
  /// includes; a continuation chunk resumes against the KV its earlier
  /// chunks already cached, so every position is priced at its true KV
  /// offset and, for any partition of [0, L),
  ///   sum(prefill_chunk_cycles(start_i, n_i)) == prefill_cycles(L).
  /// The real extra cost of chunking — one iteration overhead + host sync
  /// per additional chunk — is charged by the scheduler, not here.
  sim::Cycles prefill_chunk_cycles(std::uint32_t start,
                                   std::uint32_t tokens) const {
    return prefix_.at(start + tokens) - prefix_.at(start);
  }

  /// Pipeline cycles to rebuild a preempted request's KV from scratch: the
  /// prompt plus every decode token it had produced, re-run as one prefill
  /// over positions [0, kv_len). Identical to prefill_cycles(kv_len) —
  /// recompute-style preemption (serve::PreemptPolicy::kRecomputeYoungest)
  /// re-pays this through chunked prefill when the victim is rescheduled,
  /// and the fleet metrics use it to price the work a preemption throws
  /// away. The extra per-chunk iteration overhead + host sync is charged
  /// by the scheduler, not here.
  sim::Cycles recompute_cycles(std::uint32_t kv_len) const {
    return prefill_cycles(kv_len);
  }

  /// PCIe turnaround the host pays once per scheduler iteration (the cost
  /// continuous batching amortizes across the batch).
  sim::Cycles host_sync_cycles() const { return arch_.host_sync_cycles; }

  /// DMA price of landing `bytes` of migrated KV state in this replica's
  /// HBM (disaggregated prefill/decode fleets): one host round-trip to
  /// program the engine, the descriptor setup, then the burst at HBM
  /// write bandwidth. Same shape as the prefix cache's swap pricing — the
  /// wire time is charged separately by the net::RingFabric links.
  sim::Cycles kv_ingest_cycles(std::uint64_t bytes) const {
    return arch_.host_sync_cycles + arch_.dma_setup_cycles +
           static_cast<sim::Cycles>(
               std::ceil(static_cast<double>(bytes) /
                         arch_.hbm_bytes_per_cycle()));
  }

  /// Analytic single-token Fused-MP bounds, per node: cycles to stream one
  /// token's weights from HBM, and cycles for the MAC array to consume
  /// them. The pipeline overlaps the two, so a lone decode step runs at
  /// max(stream, mac) — stream-bound for the paper's configuration.
  sim::Cycles weight_stream_cycles() const { return weight_stream_cycles_; }
  sim::Cycles weight_mac_cycles() const { return weight_mac_cycles_; }

  /// Pipeline occupancy of `positions.size()` decode steps that share one
  /// weight-stream pass (the continuous-batching fast path): each streamed
  /// weight block is applied to every batch member's vector, so the MP
  /// kernel pays max(stream, B x mac) once instead of B x max(stream, mac),
  /// while the KV-length-dependent portions (MHA, critical path) remain
  /// per-token. Equals step_cycles(pos) for a single-element batch.
  sim::Cycles decode_batch_cycles(
      const std::vector<std::uint32_t>& positions) const;

  /// Pipeline occupancy of co-scheduled prefill chunks that share each
  /// weight-stream pass (SchedulerConfig::share_prefill_weights). Each
  /// chunk is {start, tokens}: prompt positions [start, start + tokens).
  /// The chunks advance in lockstep wavefronts — wavefront w runs position
  /// start + w of every chunk still active — and each wavefront is priced
  /// like a decode group: max(stream, members x mac) for the shared MP
  /// pass plus every member's KV-dependent residual. Equals
  /// prefill_chunk_cycles(start, tokens) for a single chunk.
  sim::Cycles prefill_group_cycles(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& chunks)
      const;

  /// Number of modeled positions (== model max_seq_len).
  std::uint32_t max_positions() const {
    return static_cast<std::uint32_t>(step_.size());
  }

  const ArchConfig& arch() const { return arch_; }
  const model::ModelConfig& model() const { return model_; }
  double cycles_to_ms(sim::Cycles c) const { return arch_.cycles_to_ms(c); }

 private:
  ArchConfig arch_;
  model::ModelConfig model_;
  std::vector<sim::Cycles> step_;    // step_[pos], pos in [0, max_seq)
  std::vector<sim::Cycles> prefix_;  // prefix_[p] = sum of step_[0..p)
  sim::Cycles weight_stream_cycles_ = 0;
  sim::Cycles weight_mac_cycles_ = 0;
};

}  // namespace looplynx::core
