// Host-side serving runtime (paper Fig. 2(b)).
//
// The host owns tokenization and sampling; the accelerator owns the
// transformer stack. Functionality and timing are deliberately decoupled
// (DESIGN.md §3): token *data* comes from core::FunctionalSystem, request
// *timing* comes from the serve-layer engine. The host no longer owns a
// private timing loop — it submits realized request shapes into the
// continuous-batching serve::ServingSim (DESIGN.md §4), so a batch of
// submitted requests shares the fleet's scheduler, paged KV-block
// accounting and host-sync amortization exactly like open traffic would.
//
// Two usage patterns:
//   serve(req)              — one request, generation + timing, blocking.
//   submit(req)... flush()  — enqueue several requests, then run them
//                             through one continuous-batching fleet; each
//                             result carries its own TTFT / latency split.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/arch_config.hpp"
#include "core/functional_system.hpp"
#include "core/step_cost.hpp"
#include "host/sampler.hpp"
#include "host/tokenizer.hpp"
#include "quant/int8_model.hpp"
#include "serve/fleet.hpp"
#include "serve/scheduler.hpp"

namespace looplynx::host {

struct ServeRequest {
  std::string prompt;
  std::uint32_t max_new_tokens = 64;
  SamplerConfig sampling;
};

struct ServeResult {
  std::string text;  // decoded generation (without the prompt)
  std::vector<std::uint32_t> prompt_ids;
  std::vector<std::uint32_t> output_ids;
  bool hit_eos = false;

  // Timing of this request's realized shape on the configured deployment,
  // as scheduled by the continuous-batching serve layer.
  double prefill_ms = 0;   // admission -> first token (queueing excluded)
  double decode_ms = 0;
  double total_ms = 0;     // prefill + decode
  double queue_ms = 0;     // arrival -> admission (0 for lone requests)
  double decode_tokens_per_s = 0;
  /// Scheduler iterations the prompt took (> 1 when chunked prefill split
  /// it; see serve::SchedulerConfig::max_tokens_per_iter).
  std::uint32_t prefill_chunks = 0;
  /// Worst gap between consecutive streamed tokens — the jitter chunked
  /// prefill bounds when other requests' prompts land mid-generation.
  double max_token_gap_ms = 0;
  /// Times the fleet preempted this request under the recompute preemption
  /// policies (KV dropped, sequence re-prefilled before decoding resumed);
  /// 0 under the default policy.
  std::uint32_t preemptions = 0;
  /// Prompt tokens admission skipped via the serve layer's
  /// content-addressed prefix cache (serve::ServingConfig::prefix_cache);
  /// 0 with the cache off or on a clean miss.
  std::uint32_t cached_prefix_tokens = 0;
  /// True when fleet admission control shed this request: the generation
  /// above is still valid, but every timing field is zero/meaningless.
  bool rejected = false;
  /// Index of the fleet replica that served this request (0 unless
  /// flush() ran with replicas >= 2 — the balancer's routing decision).
  std::uint32_t replica = 0;
  /// Live replica count when the balancer routed this request: 1 for
  /// single-replica runs, the fleet width for static fleets, and the
  /// autoscaler's current live set under flush(..., autoscale, ...) —
  /// always > `replica` (the live set is the index prefix).
  std::uint32_t live_replicas = 1;
  /// Cycle-accounting breakdown of the replica that served this request,
  /// as (category, milliseconds) sorted by category name. Filled only by
  /// flush_observed(); the category totals tile the replica's whole run
  /// timeline (serve/observe.hpp), so summing them yields the makespan.
  std::vector<std::pair<std::string, double>> replica_breakdown_ms;
};

class Host {
 public:
  /// `arch.num_nodes` selects the deployment; the functional system uses the
  /// same partition. Throws if the tokenizer vocabulary exceeds the model's.
  Host(const quant::Gpt2Int8Weights& weights, Tokenizer tokenizer,
       core::ArchConfig arch);

  /// Serves one request end to end. `on_token` (optional) is invoked with
  /// each generated token id as it is produced (streaming callback).
  ServeResult serve(const ServeRequest& request,
                    const std::function<void(std::uint32_t)>& on_token = {});

  /// Runs the functional pass now (the generation is available in the
  /// returned index's result after flush()) and queues the realized shape
  /// for batched timing. Returns the request's position in flush() output.
  std::size_t submit(const ServeRequest& request,
                     const std::function<void(std::uint32_t)>& on_token = {});

  /// Times all submitted requests through one continuous-batching fleet
  /// (all arriving at cycle 0) and returns their results in submit order.
  /// With `replicas` >= 2 the batch is sharded across that many copies of
  /// the deployment behind `balancer` (serve::FleetSim); each result's
  /// `replica` records where it ran. replicas == 1 is the single-replica
  /// engine, byte-identical to the pre-fleet behavior.
  std::vector<ServeResult> flush(
      const serve::SchedulerConfig& scheduler = {},
      std::uint32_t replicas = 1,
      serve::BalancerPolicy balancer = serve::BalancerPolicy::kRoundRobin);

  /// Like flush(scheduler, replicas, balancer), but the fleet autoscales:
  /// the pool is `autoscale.max_replicas` copies of the deployment, the
  /// run starts with `autoscale.min_replicas` live, and the control loop
  /// grows/shrinks the live set as the batch drains (`autoscale.enabled`
  /// must be set). Each result's `replica` / `live_replicas` record where
  /// it ran and how wide the fleet was when it was routed.
  std::vector<ServeResult> flush(const serve::SchedulerConfig& scheduler,
                                 const serve::AutoscalerConfig& autoscale,
                                 serve::BalancerPolicy balancer =
                                     serve::BalancerPolicy::kRoundRobin);

  /// Like flush(scheduler, replicas, balancer), but runs the fleet with a
  /// serve::Observer attached and fills each result's
  /// replica_breakdown_ms with the serving replica's cycle-accounting
  /// breakdown. Observation is pure bookkeeping — every timing field
  /// matches the plain flush() byte for byte.
  std::vector<ServeResult> flush_observed(
      const serve::SchedulerConfig& scheduler = {},
      std::uint32_t replicas = 1,
      serve::BalancerPolicy balancer = serve::BalancerPolicy::kRoundRobin);

  const Tokenizer& tokenizer() const { return tokenizer_; }
  std::uint32_t eos_id() const { return tokenizer_.eos_id(); }
  std::size_t pending() const { return pending_.size(); }

 private:
  /// Functional pass: tokenize, prefill, sampled decode until EOS/budget.
  ServeResult generate(const ServeRequest& request,
                       const std::function<void(std::uint32_t)>& on_token);

  /// Shared flush engine: times the pending batch through one fleet
  /// (static width `replicas`, or autoscaled when `autoscale` is
  /// non-null) and maps the records back onto the results.
  std::vector<ServeResult> run_flush(
      const serve::SchedulerConfig& scheduler, std::uint32_t replicas,
      serve::BalancerPolicy balancer,
      const serve::AutoscalerConfig* autoscale,
      serve::Observer* observer = nullptr);

  /// Realized decode-step count of a generation (>= 1; EOS counts).
  static std::uint32_t decode_steps(const ServeResult& result);

  const core::StepCostModel& costs();

  const quant::Gpt2Int8Weights* weights_;
  Tokenizer tokenizer_;
  core::ArchConfig arch_;
  /// Lazily probed on first timing use, then shared by every serve/flush.
  std::optional<core::StepCostModel> costs_;
  std::vector<ServeResult> pending_;
};

}  // namespace looplynx::host
