// Host-side serving loop (paper Fig. 2(b)).
//
// The host owns tokenization and sampling; the accelerator owns the
// transformer stack. serve() encodes the prompt, pushes it token by token
// through the distributed functional accelerator (prefill), then generates
// until EOS or the token budget — and reports the latency the same request
// shape takes on the cycle-level timing model. Functionality and timing are
// deliberately decoupled (DESIGN.md §3): data comes from
// core::FunctionalSystem, cycles from core::System.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/arch_config.hpp"
#include "core/functional_system.hpp"
#include "core/system.hpp"
#include "host/sampler.hpp"
#include "host/tokenizer.hpp"
#include "quant/int8_model.hpp"

namespace looplynx::host {

struct ServeRequest {
  std::string prompt;
  std::uint32_t max_new_tokens = 64;
  SamplerConfig sampling;
};

struct ServeResult {
  std::string text;  // decoded generation (without the prompt)
  std::vector<std::uint32_t> prompt_ids;
  std::vector<std::uint32_t> output_ids;
  bool hit_eos = false;

  // Timing estimate of this request shape on the configured deployment.
  double prefill_ms = 0;
  double decode_ms = 0;
  double total_ms = 0;
  double decode_tokens_per_s = 0;
};

class Host {
 public:
  /// `arch.num_nodes` selects the deployment; the functional system uses the
  /// same partition. Throws if the tokenizer vocabulary exceeds the model's.
  Host(const quant::Gpt2Int8Weights& weights, Tokenizer tokenizer,
       core::ArchConfig arch);

  /// Serves one request end to end. `on_token` (optional) is invoked with
  /// each generated token id as it is produced (streaming callback).
  ServeResult serve(const ServeRequest& request,
                    const std::function<void(std::uint32_t)>& on_token = {});

  const Tokenizer& tokenizer() const { return tokenizer_; }
  std::uint32_t eos_id() const { return tokenizer_.eos_id(); }

 private:
  const quant::Gpt2Int8Weights* weights_;
  Tokenizer tokenizer_;
  core::ArchConfig arch_;
};

}  // namespace looplynx::host
