// Spatial dataflow-architecture baseline (paper Table II; Chen et al.,
// TRETS 2024, "Understanding the potential of FPGA-based spatial
// acceleration for LLM inference").
//
// A spatial architecture instantiates *every* operator of the transformer
// block as its own kernel and chains them into a task-level pipeline. In
// the prefill phase many tokens occupy the pipeline simultaneously and
// throughput is set by the slowest stage. In the decode phase only one
// token exists, so the stages execute one after another — and because the
// fabric's resources (DSPs, HBM ports) are statically divided among the
// instantiated kernels, each stage runs at only a fraction of the chip's
// aggregate capability. That is the under-utilization LoopLynx's hybrid
// design removes (paper Fig. 3(b)).
#pragma once

#include <cstdint>

#include "model/config.hpp"

namespace looplynx::baseline {

struct SpatialConfig {
  double frequency_hz = 245e6;          // Table II
  double memory_bandwidth_bps = 460e9;  // U280
  double memory_efficiency = 0.62;  // short per-group bursts
  std::uint32_t bytes_per_weight = 1;   // W8A8
  /// Number of concurrently instantiated matrix kernels sharing the HBM
  /// ports and DSP budget (QKV, proj, FC1, FC2 groups).
  std::uint32_t matrix_kernel_groups = 4;
  /// Total effective MAC lanes across the fabric (shared by the groups).
  std::uint32_t total_mac_lanes = 4096;
  /// Dedicated attention-kernel MAC lanes.
  std::uint32_t attention_lanes = 256;
  /// Vector stage throughput (LN/softmax/residual/GELU).
  std::uint32_t vector_lanes = 32;
  /// Inter-stage buffering overhead per stage crossing.
  std::uint64_t stage_latency_cycles = 256;
};

class SpatialModel {
 public:
  SpatialModel(const model::ModelConfig& model, SpatialConfig config = {});

  /// Decode-phase latency of one token at position `seq` (ms): stages
  /// execute sequentially, each limited to its own resource slice.
  double decode_token_ms(std::uint32_t seq) const;

  /// Prefill-phase *throughput* per token (ms/token): the task pipeline is
  /// full, so cost-per-token equals the slowest stage's service time.
  double prefill_token_ms() const;

  /// Weighted per-token latency over a request — the accounting the paper
  /// applies to this baseline's separate prefill/decode implementations.
  double avg_token_ms(std::uint32_t prefill_tokens,
                      std::uint32_t decode_tokens) const;

  const SpatialConfig& config() const { return config_; }

 private:
  double matrix_stage_ms(double rows, double cols) const;

  model::ModelConfig model_;
  SpatialConfig config_;
};

}  // namespace looplynx::baseline
