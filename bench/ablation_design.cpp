// Ablation bench for the design choices DESIGN.md calls out:
//   1. optimization switches (fused LN&Res / head-wise pipeline / sync hide)
//   2. MP block granularity (sync-hiding window vs pipeline fill)
//   3. HBM channels per node (bandwidth scaling)
//   4. inter-FPGA hop latency (ring sensitivity at 4 nodes)
//   5. KV-cache channel count (MHA bound)
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/system.hpp"
#include "util/table.hpp"

namespace {

using namespace looplynx;

double run_ms(const core::ArchConfig& arch, const model::ModelConfig& model,
              const core::RunOptions& opt) {
  return core::System(arch, model).run(32, 128, opt).avg_token_ms;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto model = bench::model_from_cli(cli);
  core::RunOptions opt;
  opt.token_sample_stride =
      static_cast<std::uint32_t>(cli.get_int_or("stride", 16));

  // ---- 1. Optimization switch lattice (2 nodes). ----
  {
    util::Table t("Ablation 1: optimization switches (2-node, ms/token)");
    t.set_header({"fused LN&Res", "head-wise pipe", "sync hiding",
                  "ms/token", "vs all-on"});
    const core::ArchConfig all_on = core::ArchConfig::two_node();
    const double best = run_ms(all_on, model, opt);
    for (int mask = 0; mask < 8; ++mask) {
      core::ArchConfig arch = all_on;
      arch.fuse_ln_res = mask & 1;
      arch.headwise_pipeline = mask & 2;
      arch.hide_network_sync = mask & 4;
      const double ms = run_ms(arch, model, opt);
      t.add_row({arch.fuse_ln_res ? "on" : "off",
                 arch.headwise_pipeline ? "on" : "off",
                 arch.hide_network_sync ? "on" : "off",
                 util::fmt_fixed(ms, 3),
                 "+" + util::fmt_percent(ms / best - 1.0)});
    }
    t.render(std::cout);
  }

  // ---- 2. MP block granularity (4 nodes, where tails matter most). ----
  {
    util::Table t("Ablation 2: MP block rows (4-node)");
    t.set_header({"block rows", "ms/token"});
    for (std::uint32_t rows : {32u, 64u, 128u, 256u, 512u}) {
      core::ArchConfig arch = core::ArchConfig::four_node();
      arch.mp_block_rows = rows;
      t.add_row({std::to_string(rows),
                 util::fmt_fixed(run_ms(arch, model, opt), 3)});
    }
    t.render(std::cout);
  }

  // ---- 3. Weight HBM channels per node (1-node). ----
  {
    util::Table t("Ablation 3: HBM weight channels per node (1-node)");
    t.set_header({"channels", "ms/token"});
    for (std::uint32_t ch : {4u, 8u, 16u, 24u}) {
      core::ArchConfig arch = core::ArchConfig::one_node();
      arch.n_channel = ch;
      t.add_row({std::to_string(ch),
                 util::fmt_fixed(run_ms(arch, model, opt), 3)});
    }
    t.render(std::cout);
  }

  // ---- 4. Inter-FPGA hop latency (4-node ring sensitivity). ----
  {
    util::Table t("Ablation 4: inter-FPGA hop latency (4-node)");
    t.set_header({"hop cycles", "ms/token"});
    for (std::uint32_t hop : {16u, 64u, 192u, 512u, 2048u}) {
      core::ArchConfig arch = core::ArchConfig::four_node();
      arch.inter_fpga_hop_cycles = hop;
      t.add_row({std::to_string(hop),
                 util::fmt_fixed(run_ms(arch, model, opt), 3)});
    }
    t.render(std::cout);
  }

  // ---- 5. KV-cache channels (1-node, long context). ----
  {
    util::Table t("Ablation 5: KV-cache HBM channels (1-node, seq 512+)");
    t.set_header({"kv channels", "ms/token"});
    core::RunOptions long_opt = opt;
    for (std::uint32_t ch : {1u, 2u, 4u, 8u}) {
      core::ArchConfig arch = core::ArchConfig::one_node();
      arch.kv_channels = ch;
      const double ms =
          core::System(arch, model).run(32, 480, long_opt).avg_token_ms;
      t.add_row({std::to_string(ch), util::fmt_fixed(ms, 3)});
    }
    t.render(std::cout);
  }
  return 0;
}
