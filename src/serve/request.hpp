// One in-flight serving request: its [prefill : decode] shape, lifecycle
// timestamps (all in accelerator cycles) and the coroutine plumbing that
// connects its root process to the continuous-batching scheduler.
//
// Lifecycle: Queued -> Running -> Finished, or Queued -> Rejected when
// admission control drops it. The request's root process (ServingSim) parks
// on `grant`; every grant is one scheduler iteration turn, and `latch` is
// that iteration's batch barrier.
//
// Preemption (PreemptPolicy::kRecomputeYoungest) keeps the request Running
// but frees its KV block list and folds the decode tokens it had produced
// back into the prefill phase: `recompute_decoded` extends the prefill
// target so chunked prefill re-runs positions [0, prefill + decoded) —
// rebuilding the dropped KV — before decoding resumes. Tokens the host
// already saw are never re-emitted.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>

#include "serve/kv_block.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "util/slot_map.hpp"
#include "workload/scenario.hpp"

namespace looplynx::serve {

namespace detail {
struct Replica;
}  // namespace detail

/// Intrusive-list hook channels in Request. A request can be linked on one
/// list per channel at a time; membership is part of the scheduler's state
/// machine, not a container copy.
inline constexpr int kReadyChannel = 0;  // ready / deferred (exclusive)
inline constexpr int kAgeChannel = 1;    // all admitted, ascending id

enum class RequestState : std::uint8_t {
  kQueued,    // waiting for admission (KV blocks + in-flight budget)
  kRunning,   // admitted; participates in scheduler iterations
  kFinished,  // all decode tokens produced
  kRejected,  // dropped by admission control (queue full / oversized)
};

/// Which ReadyQueue class list a request is currently linked on (kReadyNone
/// when it is unlinked or sitting on an iteration's deferred/lone list).
inline constexpr std::uint8_t kReadyNone = 0;
inline constexpr std::uint8_t kReadyDecode = 1;   // prefilled()
inline constexpr std::uint8_t kReadyStarted = 2;  // mid-prefill prompt
inline constexpr std::uint8_t kReadyFresh = 3;    // prompt not yet started

struct Request {
  Request(sim::Engine& engine, std::uint32_t id_, workload::Scenario shape_)
      : shape(std::move(shape_)), id(id_), grant(engine), done(engine) {}
  Request(const Request&) = delete;
  Request& operator=(const Request&) = delete;

  // Layout note: the scheduler's select() walk visits every runnable
  // request per iteration and reads only the fields below up to (and
  // including) shape.prefill — they are declared first so the whole
  // predicate fits in the leading cache line of the object. Colder
  // bookkeeping follows.

  /// Intrusive doubly-linked hooks, one pair per channel (kReadyChannel,
  /// kAgeChannel). Null when unlinked on that channel.
  Request* link_prev[2] = {nullptr, nullptr};
  Request* link_next[2] = {nullptr, nullptr};

  // ---- Progress ----
  std::uint32_t prompt_done = 0;  // prefill cursor: prompt tokens processed
  std::uint32_t decoded = 0;      // decode steps completed (host-visible)
  /// Decode tokens folded back into the prefill phase by the last
  /// preemption: their KV was dropped, so the prefill target stretches to
  /// shape.prefill + recompute_decoded and chunked prefill rebuilds it.
  std::uint32_t recompute_decoded = 0;
  /// Prompt tokens granted this turn (a prefill chunk); 0 == decode step.
  /// Filled by the scheduler before the member steps.
  std::uint32_t step_tokens = 0;
  /// Global ready-FIFO position, assigned by ReadyQueue::push_back. The
  /// class lists stay sorted by it, which is how their interleaving
  /// reproduces the legacy single ready list byte for byte (see ReadyQueue).
  std::uint64_t ready_stamp = 0;
  /// Request shape; Scenario leads with its prefill/decode integers so
  /// prefilled()/finished() stay inside the hot line (the name string and
  /// segment map behind them are cold).
  workload::Scenario shape;

  // ---- Per-iteration slot, filled by the scheduler before the step ----
  sim::Cycles step_offset = 0;  // pipeline turn within the iteration
  sim::Cycles step_cycles = 0;  // pipeline occupancy of this step
  /// Cycles from this member's pipeline egress to the host-visible batch
  /// egress: the rest of the batch draining, plus the PCIe sync the
  /// iteration pays once. Timestamps (TTFT, completion) are taken after
  /// this wait — the token does not exist for the host until then.
  sim::Cycles post_step_cycles = 0;

  // ---- Emission state (engine cycles) ----
  sim::Cycles first_token = 0;  // final prompt chunk egress (TTFT reference)
  sim::Cycles last_token = 0;     // previous host-visible token (jitter base)
  sim::Cycles max_token_gap = 0;  // worst inter-token gap observed

  std::uint32_t id = 0;
  /// Scheduler scratch: index into the iteration's batch vector while KV is
  /// being secured (-1 outside ensure_kv_blocks).
  std::int32_t batch_pos = -1;
  std::uint32_t prefill_chunks = 0;  // prefill steps taken (1 == unchunked)
  RequestState state = RequestState::kQueued;
  bool emitted_token = false;  // last_token is valid
  bool recovering = false;     // preempted and not yet re-prefilled
  /// Scheduler scratch: this member's KV is secured for the iteration, so
  /// it is no longer a preemption candidate for later members.
  bool secured = false;
  /// ReadyQueue class list this request is linked on (kReadyNone when not
  /// on the ready queue). Maintained by ReadyQueue push/unlink/refile.
  std::uint8_t ready_class = kReadyNone;

  /// Live replica count when the balancer routed this request (1 for
  /// single-replica runs; under autoscaling the live set is the index
  /// prefix, so the serving replica's index is always < this).
  std::uint32_t live_at_route = 1;

  // ---- Lifecycle timestamps (engine cycles) ----
  sim::Cycles arrival = 0;
  sim::Cycles admitted = 0;  // popped from the queue, KV reserved
  sim::Cycles completed = 0;

  KvBlockList kv;  // grown-on-demand KV block holdings

  // ---- Content-addressed prefix cache (ServingConfig::prefix_cache) ----
  /// References this request holds on shared cache blocks; empty when the
  /// cache is off or missed. Every mutation goes through PrefixCache
  /// (acquire/commit/release) so refcounts cannot drift. `kv` above covers
  /// only positions >= cache.owned_tokens.
  CacheBinding cache;
  /// Admission-time hit size (prefill tokens skipped), kept after the
  /// binding is released so RequestRecord can report it. A preemption
  /// forfeits the hit (the re-prefill runs privately) but the admission
  /// figure stands — it is what admission actually saved.
  std::uint32_t cached_prefix = 0;
  std::uint32_t preempt_count = 0;  // times this request was preempted

  /// Prompt tokens the prefill phase must push before decoding (re)starts:
  /// the prompt itself plus any decode KV a preemption dropped.
  std::uint32_t prefill_target() const {
    return shape.prefill + recompute_decoded;
  }
  /// True once the whole prefill target has been pushed (possibly across
  /// several chunked-prefill iterations); only then does the request
  /// decode.
  bool prefilled() const { return prompt_done >= prefill_target(); }
  /// Prompt tokens still to push — what the scheduler chunks.
  std::uint32_t prompt_remaining() const {
    return prefill_target() - prompt_done;
  }

  /// KV length already cached; a continuation chunk resumes from here.
  /// During a post-preemption re-prefill the already-emitted decode tokens
  /// are part of `prompt_done`, not double-counted via `decoded`.
  std::uint32_t kv_len() const {
    return prompt_done + decoded - recompute_decoded;
  }
  bool finished() const { return prefilled() && decoded >= shape.decode; }

  sim::CountdownLatch* latch = nullptr;  // batch barrier of the iteration

  // ---- Disaggregated fleets (FleetConfig::roles) ----
  /// The replica whose arena slot this request occupies (== where the
  /// balancer routed it). Fixed for life: whoever retires the request
  /// erases through owner->pool, however many replicas it visited.
  detail::Replica* owner = nullptr;
  /// The replica currently scheduling this request. Equals `owner` until a
  /// KV migration or work steal re-homes it; the root process re-reads it
  /// after every grant so bookkeeping lands on the serving replica.
  detail::Replica* home = nullptr;
  /// KV migrated to a decode replica after the prompt's last chunk. At
  /// most once per request — a preemption on the decode side recomputes
  /// locally rather than shipping KV again.
  bool migrated = false;
  /// Stolen from a neighbor's admission queue while still Queued (work
  /// stealing); at most once — a stolen request is never re-stolen.
  bool stolen = false;

  sim::Signal grant;  // one set() == one iteration turn
  sim::Signal done;   // completion/rejection broadcast (closed-loop clients)

  // ---- Flat-state arena plumbing (Replica::pool) ----
  /// This request's own slot in the replica's arena; whoever retires the
  /// request (see replica.cpp's release protocol) erases through it.
  util::SlotHandle self;
};

/// Intrusive doubly-linked list over Request::link_prev/link_next[Channel].
/// push_back/unlink/splice_back are O(1) and allocation-free; traversal is
/// insertion order, which the scheduler keeps equal to the legacy vector
/// order so selection is byte-identical.
template <int Channel>
struct RequestList {
  Request* head = nullptr;
  Request* tail = nullptr;

  bool empty() const { return head == nullptr; }

  void push_back(Request* r) {
    assert(r->link_prev[Channel] == nullptr &&
           r->link_next[Channel] == nullptr && r != head);
    r->link_prev[Channel] = tail;
    r->link_next[Channel] = nullptr;
    if (tail != nullptr) {
      tail->link_next[Channel] = r;
    } else {
      head = r;
    }
    tail = r;
  }

  void unlink(Request* r) {
    Request* p = r->link_prev[Channel];
    Request* n = r->link_next[Channel];
    if (p != nullptr) {
      p->link_next[Channel] = n;
    } else {
      assert(head == r);
      head = n;
    }
    if (n != nullptr) {
      n->link_prev[Channel] = p;
    } else {
      assert(tail == r);
      tail = p;
    }
    r->link_prev[Channel] = nullptr;
    r->link_next[Channel] = nullptr;
  }

  /// Inserts `r` immediately after `pos` (nullptr == at the head). O(1).
  void insert_after(Request* pos, Request* r) {
    assert(r->link_prev[Channel] == nullptr &&
           r->link_next[Channel] == nullptr && r != head);
    if (pos == nullptr) {
      r->link_next[Channel] = head;
      if (head != nullptr) {
        head->link_prev[Channel] = r;
      } else {
        tail = r;
      }
      head = r;
    } else {
      r->link_prev[Channel] = pos;
      r->link_next[Channel] = pos->link_next[Channel];
      if (pos->link_next[Channel] != nullptr) {
        pos->link_next[Channel]->link_prev[Channel] = r;
      } else {
        tail = r;
      }
      pos->link_next[Channel] = r;
    }
  }

  /// Moves every node of `other` to the back of this list, preserving
  /// order. O(1).
  void splice_back(RequestList& other) {
    if (other.head == nullptr) return;
    if (tail != nullptr) {
      tail->link_next[Channel] = other.head;
      other.head->link_prev[Channel] = tail;
      tail = other.tail;
    } else {
      head = other.head;
      tail = other.tail;
    }
    other.head = nullptr;
    other.tail = nullptr;
  }

  void clear_links() {
    Request* r = head;
    while (r != nullptr) {
      Request* n = r->link_next[Channel];
      r->link_prev[Channel] = nullptr;
      r->link_next[Channel] = nullptr;
      r = n;
    }
    head = nullptr;
    tail = nullptr;
  }
};

/// The scheduler's ready pool, pre-sorted by selection class: prefilled
/// members (decode steps), mid-prefill prompts, and fresh prompts each live
/// on their own FIFO list, so Scheduler::select walks exactly the members
/// it selects — no predicate skips over the (often long) prefix of waiting
/// prompts, which made selection O(ready size) per iteration.
///
/// Equivalence with the legacy single ready list: push_back stamps each
/// request with a strictly increasing global sequence number, so every
/// class list is sorted by stamp, and the stamp order across lists IS the
/// single-list order. A class predicate over the single list visits members
/// in stamp order — exactly a walk of that class's list here. The one way a
/// linked member's class can change in place is preemption (prompt_done
/// drops to 0 while it waits); refile() moves it to its new class list at
/// its stamp position, which is precisely the position it kept in the
/// single list. Class is otherwise stable while linked: prompt_done and
/// recompute_decoded only advance while a member is unlinked (selected into
/// a batch, or parked on a deferred list).
struct ReadyQueue {
  RequestList<kReadyChannel> decodes;  // prefilled(), FIFO by stamp
  RequestList<kReadyChannel> started;  // 0 < prompt_done < target, by stamp
  RequestList<kReadyChannel> fresh;    // prompt_done == 0, FIFO by stamp
  std::uint64_t next_stamp = 0;

  bool empty() const {
    return decodes.empty() && started.empty() && fresh.empty();
  }

  static std::uint8_t class_of(const Request& r) {
    if (r.prefilled()) return kReadyDecode;
    return r.prompt_done > 0 ? kReadyStarted : kReadyFresh;
  }

  RequestList<kReadyChannel>& list(std::uint8_t cls) {
    switch (cls) {
      case kReadyDecode:
        return decodes;
      case kReadyStarted:
        return started;
      default:
        assert(cls == kReadyFresh);
        return fresh;
    }
  }

  /// Appends `r` to the back of its class list — the legacy "push to the
  /// back of runnable", with the stamp recording the global position.
  void push_back(Request* r) {
    r->ready_stamp = ++next_stamp;
    r->ready_class = class_of(*r);
    list(r->ready_class).push_back(r);
  }

  void unlink(Request* r) {
    assert(r->ready_class != kReadyNone);
    list(r->ready_class).unlink(r);
    r->ready_class = kReadyNone;
  }

  /// Re-files a linked member whose class changed in place (preemption).
  /// The stamp-ordered insert lands it exactly where the legacy single
  /// list kept it. O(distance from the destination tail) — preemption
  /// victims are young, so the walk is short, and preemptions are rare.
  void refile(Request* r) {
    const std::uint8_t cls = class_of(*r);
    if (cls == r->ready_class) return;
    list(r->ready_class).unlink(r);
    RequestList<kReadyChannel>& dst = list(cls);
    Request* pos = dst.tail;
    while (pos != nullptr && pos->ready_stamp > r->ready_stamp) {
      pos = pos->link_prev[kReadyChannel];
    }
    dst.insert_after(pos, r);
    r->ready_class = cls;
  }
};

}  // namespace looplynx::serve
