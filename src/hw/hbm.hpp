// HBM pseudo-channel timing model.
//
// Each pseudo-channel serves one outstanding burst at a time at a fixed
// sustained bandwidth (bytes/cycle) plus a fixed per-burst setup latency.
// The Fused MP kernel attaches one DMA engine per channel (paper Fig. 6(a)),
// so channel contention only arises when two kernels (e.g. MP weights and
// MHA KV-cache reads) share a channel — the model serializes such accesses
// through a per-channel mutex, matching AXI arbitration behaviour.
#pragma once

#include <cstdint>
#include <string>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace looplynx::hw {

struct HbmChannelConfig {
  /// Sustained bandwidth in bytes per accelerator cycle. For the paper's
  /// parameters (8.49 GB/s at 285 MHz) this is ~29.8 B/cycle.
  double bytes_per_cycle = 29.8;
  /// Fixed cycles of burst setup (address phase + first-beat latency).
  sim::Cycles burst_setup_cycles = 24;
  /// Fraction of peak reached by long bursts (row-activation overheads).
  double burst_efficiency = 0.95;
};

class HbmChannel {
 public:
  HbmChannel(sim::Engine& engine, HbmChannelConfig config,
             std::string name = "hbm")
      : engine_(&engine),
        config_(config),
        mutex_(engine),
        name_(std::move(name)) {}

  /// Cycles a burst of `bytes` occupies the channel (excluding queueing).
  sim::Cycles burst_cycles(std::uint64_t bytes) const;

  /// Simulated burst read: queues on the channel, then occupies it for
  /// burst_cycles(bytes).
  sim::Task read(std::uint64_t bytes);

  /// Simulated burst write (same timing as read for this HBM generation).
  sim::Task write(std::uint64_t bytes);

  std::uint64_t total_bytes_read() const noexcept { return bytes_read_; }
  std::uint64_t total_bytes_written() const noexcept { return bytes_written_; }
  sim::Cycles busy_cycles() const noexcept { return busy_cycles_; }
  const std::string& name() const noexcept { return name_; }
  const HbmChannelConfig& config() const noexcept { return config_; }

  /// Channel utilization over [0, now].
  double utilization() const;

 private:
  sim::Task transfer(std::uint64_t bytes, bool is_write);

  sim::Engine* engine_;
  HbmChannelConfig config_;
  sim::Mutex mutex_;
  std::string name_;
  std::uint64_t bytes_read_ = 0;
  std::uint64_t bytes_written_ = 0;
  sim::Cycles busy_cycles_ = 0;
};

}  // namespace looplynx::hw
