#include "core/energy.hpp"

namespace looplynx::core {

EnergyComparison compare_energy(const PowerModel& power,
                                const ArchConfig& arch, double fpga_seconds,
                                double gpu_seconds, std::uint64_t tokens) {
  EnergyComparison cmp;
  cmp.fpga_joules = power.fpga_energy_joules(arch, fpga_seconds);
  cmp.gpu_joules = power.a100_energy_joules(gpu_seconds);
  if (cmp.fpga_joules > 0) {
    cmp.fpga_tokens_per_joule =
        static_cast<double>(tokens) / cmp.fpga_joules;
  }
  if (cmp.gpu_joules > 0) {
    cmp.gpu_tokens_per_joule = static_cast<double>(tokens) / cmp.gpu_joules;
  }
  if (cmp.gpu_tokens_per_joule > 0) {
    cmp.efficiency_ratio =
        cmp.fpga_tokens_per_joule / cmp.gpu_tokens_per_joule;
  }
  if (cmp.gpu_joules > 0) {
    cmp.energy_fraction = cmp.fpga_joules / cmp.gpu_joules;
  }
  return cmp;
}

}  // namespace looplynx::core
