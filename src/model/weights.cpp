#include "model/weights.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace looplynx::model {

namespace {

void init_normal(Tensor& t, util::Rng& rng, double sigma) {
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng.normal(0.0, sigma));
  }
}

Tensor ones(std::size_t n) { return Tensor(1, n, 1.0f); }

}  // namespace

Gpt2Weights Gpt2Weights::random(const ModelConfig& config,
                                std::uint64_t seed) {
  config.validate();
  util::Rng rng(seed);
  constexpr double kSigma = 0.02;
  const double residual_sigma =
      kSigma / std::sqrt(2.0 * static_cast<double>(config.n_layer));

  Gpt2Weights w;
  w.config = config;
  w.wte = Tensor(config.vocab_size, config.d_model);
  init_normal(w.wte, rng, kSigma);
  w.wpe = Tensor(config.max_seq_len, config.d_model);
  init_normal(w.wpe, rng, 0.01);

  w.blocks.reserve(config.n_layer);
  for (std::uint32_t l = 0; l < config.n_layer; ++l) {
    BlockWeights b;
    const auto d = config.d_model;
    const auto f = config.d_ff;
    b.ln1_gain = ones(d);
    b.ln1_bias = Tensor(1, d, 0.0f);
    b.w_qkv = Tensor(3ULL * d, d);
    init_normal(b.w_qkv, rng, kSigma);
    b.b_qkv = Tensor(1, 3ULL * d, 0.0f);
    b.w_proj = Tensor(d, d);
    init_normal(b.w_proj, rng, residual_sigma);
    b.b_proj = Tensor(1, d, 0.0f);
    b.ln2_gain = ones(d);
    b.ln2_bias = Tensor(1, d, 0.0f);
    b.w_fc1 = Tensor(f, d);
    init_normal(b.w_fc1, rng, kSigma);
    b.b_fc1 = Tensor(1, f, 0.0f);
    b.w_fc2 = Tensor(d, f);
    init_normal(b.w_fc2, rng, residual_sigma);
    b.b_fc2 = Tensor(1, d, 0.0f);
    w.blocks.push_back(std::move(b));
  }

  w.lnf_gain = ones(config.d_model);
  w.lnf_bias = Tensor(1, config.d_model, 0.0f);
  return w;
}

}  // namespace looplynx::model
