#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace looplynx::util {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double geomean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double min_of(std::span<const double> values) {
  return values.empty() ? 0.0 : *std::min_element(values.begin(), values.end());
}

double max_of(std::span<const double> values) {
  return values.empty() ? 0.0 : *std::max_element(values.begin(), values.end());
}

namespace {

/// Linear-interpolated percentile over an already-sorted, non-empty vector.
double sorted_percentile(const std::vector<double>& sorted, double p) {
  const double rank =
      (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return sorted_percentile(values, p);
}

PercentileSummary percentile_summary(std::vector<double> values) {
  PercentileSummary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.mean = mean(values);
  s.p50 = sorted_percentile(values, 50.0);
  s.p95 = sorted_percentile(values, 95.0);
  s.p99 = sorted_percentile(values, 99.0);
  return s;
}

void SlidingWindow::push(double at, double value) {
  samples_.emplace_back(at, value);
}

void SlidingWindow::evict_before(double at) {
  while (!samples_.empty() && samples_.front().first < at) {
    samples_.pop_front();
  }
}

double SlidingWindow::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(samples_.size());
  for (const auto& [at, v] : samples_) values.push_back(v);
  std::sort(values.begin(), values.end());
  return sorted_percentile(values, p);
}

void RunningStat::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace looplynx::util
