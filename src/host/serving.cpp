#include "host/serving.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "serve/observe.hpp"
#include "serve/serving_sim.hpp"
#include "workload/scenario.hpp"

namespace looplynx::host {

Host::Host(const quant::Gpt2Int8Weights& weights, Tokenizer tokenizer,
           core::ArchConfig arch)
    : weights_(&weights), tokenizer_(std::move(tokenizer)), arch_(arch) {
  if (tokenizer_.vocab_size() > weights.config.vocab_size) {
    throw std::invalid_argument(
        "tokenizer vocabulary exceeds the model's embedding table");
  }
}

ServeResult Host::generate(
    const ServeRequest& request,
    const std::function<void(std::uint32_t)>& on_token) {
  ServeResult result;
  result.prompt_ids = tokenizer_.encode(request.prompt);
  if (result.prompt_ids.empty()) {
    result.prompt_ids.push_back(tokenizer_.eos_id());
  }
  const std::uint32_t budget_total = weights_->config.max_seq_len;
  if (result.prompt_ids.size() >= budget_total) {
    throw std::invalid_argument("prompt exceeds the model context window");
  }

  core::FunctionalSystem accel(*weights_, arch_.num_nodes);
  std::vector<float> hidden;
  for (std::uint32_t id : result.prompt_ids) {
    hidden = accel.forward_token(id);
  }
  Sampler sampler(request.sampling);
  const std::uint32_t max_new = std::min<std::uint32_t>(
      request.max_new_tokens,
      budget_total - static_cast<std::uint32_t>(result.prompt_ids.size()));
  for (std::uint32_t i = 0; i < max_new; ++i) {
    const std::vector<float> logits = accel.logits(hidden);
    const std::uint32_t next = sampler.sample(logits);
    if (next == tokenizer_.eos_id()) {
      result.hit_eos = true;
      break;
    }
    result.output_ids.push_back(next);
    if (on_token) on_token(next);
    if (i + 1 < max_new) hidden = accel.forward_token(next);
  }
  result.text = tokenizer_.decode(result.output_ids);
  return result;
}

std::uint32_t Host::decode_steps(const ServeResult& result) {
  return static_cast<std::uint32_t>(std::max<std::size_t>(
      result.output_ids.size() + (result.hit_eos ? 1 : 0), 1));
}

const core::StepCostModel& Host::costs() {
  if (!costs_) {
    costs_.emplace(arch_, weights_->config, /*probe_stride=*/32);
  }
  return *costs_;
}

std::size_t Host::submit(
    const ServeRequest& request,
    const std::function<void(std::uint32_t)>& on_token) {
  pending_.push_back(generate(request, on_token));
  return pending_.size() - 1;
}

std::vector<ServeResult> Host::flush(
    const serve::SchedulerConfig& scheduler, std::uint32_t replicas,
    serve::BalancerPolicy balancer) {
  return run_flush(scheduler, replicas, balancer, nullptr);
}

std::vector<ServeResult> Host::flush(
    const serve::SchedulerConfig& scheduler,
    const serve::AutoscalerConfig& autoscale,
    serve::BalancerPolicy balancer) {
  if (!autoscale.enabled) {
    throw std::invalid_argument(
        "flush with an AutoscalerConfig requires autoscale.enabled (use "
        "the static overload otherwise)");
  }
  return run_flush(scheduler, autoscale.max_replicas, balancer, &autoscale);
}

std::vector<ServeResult> Host::flush_observed(
    const serve::SchedulerConfig& scheduler, std::uint32_t replicas,
    serve::BalancerPolicy balancer) {
  serve::Observer observer(std::max<std::uint32_t>(replicas, 1),
                           arch_.frequency_hz);
  return run_flush(scheduler, replicas, balancer, nullptr, &observer);
}

std::vector<ServeResult> Host::run_flush(
    const serve::SchedulerConfig& scheduler, std::uint32_t replicas,
    serve::BalancerPolicy balancer,
    const serve::AutoscalerConfig* autoscale, serve::Observer* observer) {
  std::vector<ServeResult> results = std::move(pending_);
  pending_.clear();
  if (results.empty()) return results;

  // All submitted requests arrive at cycle 0 and share one
  // continuous-batching fleet, so their timings reflect scheduler
  // interleaving and KV pressure, not isolated runs. With replicas >= 2
  // the cycle-0 burst is routed across identical replicas by the
  // balancer (autoscaled fleets start at min_replicas live and grow as
  // the control loop reacts); request ids equal submit order either way
  // (the fleet allocates ids in injection order and sorts its pooled
  // records by id).
  serve::ServingConfig cfg;
  cfg.arch = arch_;
  cfg.model = weights_->config;
  cfg.scheduler = scheduler;
  cfg.keep_request_records = true;
  for (const ServeResult& r : results) {
    cfg.traffic.explicit_arrivals.push_back(serve::Arrival{
        0, workload::make_scenario(
               static_cast<std::uint32_t>(r.prompt_ids.size()),
               decode_steps(r))});
  }
  serve::FleetMetrics metrics;
  if (replicas >= 2 || autoscale != nullptr) {
    serve::FleetConfig fleet_cfg =
        serve::FleetConfig::homogeneous(cfg, replicas, balancer);
    if (autoscale != nullptr) fleet_cfg.autoscale = *autoscale;
    metrics = serve::FleetSim(fleet_cfg, costs()).run(observer).fleet;
  } else {
    metrics = serve::ServingSim(cfg, costs()).run(observer);
  }
  if (metrics.requests.size() != results.size()) {
    throw std::logic_error("serve layer lost request records");
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    const serve::RequestRecord& rec = metrics.requests[i];
    if (rec.id != i) {
      throw std::logic_error("serve layer permuted request records");
    }
    ServeResult& out = results[i];
    out.replica = rec.replica;
    out.live_replicas = rec.live_replicas;
    if (rec.rejected) {
      out.rejected = true;  // generation is valid, timing fields stay zero
      continue;
    }
    out.queue_ms = rec.queue_wait_ms;
    out.prefill_ms = rec.ttft_ms - rec.queue_wait_ms;
    out.decode_ms = rec.e2e_ms - rec.ttft_ms;
    out.total_ms = out.prefill_ms + out.decode_ms;
    out.prefill_chunks = rec.prefill_chunks;
    out.max_token_gap_ms = rec.max_token_gap_ms;
    out.preemptions = rec.preemptions;
    out.cached_prefix_tokens = rec.cached_prefix_tokens;
    if (rec.decode_tokens > 0 && out.decode_ms > 0) {
      out.decode_tokens_per_s =
          1e3 * static_cast<double>(rec.decode_tokens) / out.decode_ms;
    }
  }
  if (observer != nullptr) {
    // std::map iteration gives the categories sorted by name, so the
    // breakdown order is deterministic.
    for (ServeResult& out : results) {
      for (const auto& [cat, cycles] : observer->breakdown(out.replica)) {
        out.replica_breakdown_ms.emplace_back(cat, arch_.cycles_to_ms(cycles));
      }
    }
  }
  return results;
}

ServeResult Host::serve(const ServeRequest& request,
                        const std::function<void(std::uint32_t)>& on_token) {
  submit(request, on_token);
  std::vector<ServeResult> results = flush();
  return std::move(results.front());
}

}  // namespace looplynx::host
