#include "workload/scenario.hpp"

namespace looplynx::workload {

Scenario make_scenario(std::uint32_t prefill, std::uint32_t decode) {
  return Scenario{"[" + std::to_string(prefill) + ":" +
                      std::to_string(decode) + "]",
                  prefill, decode};
}

std::vector<Scenario> fig8_scenarios() {
  std::vector<Scenario> out;
  for (std::uint32_t prefill : {32u, 64u, 128u}) {
    for (std::uint32_t decode : {32u, 128u, 512u}) {
      out.push_back(make_scenario(prefill, decode));
    }
  }
  return out;
}

Scenario chatbot() { return make_scenario(32, 512); }
Scenario code_generation() { return make_scenario(64, 512); }
Scenario summarization() { return make_scenario(128, 32); }

}  // namespace looplynx::workload
