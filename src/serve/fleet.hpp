// Multi-deployment serving fleet: N replica deployments behind a
// load balancer, fed by one shared traffic stream.
//
// FleetSim is the horizontal scale axis on top of ServingSim's vertical
// one: it owns N independent replicas (each a full ServingConfig — its own
// scheduler, KV budget, even a different ArchConfig) on ONE shared
// sim::Engine, and a LoadBalancer that routes every arrival of a single
// TrafficGen stream to a replica the moment it lands. Replicas never share
// KV or pipeline state — in a symmetric fleet a request lives and dies on
// the replica it was routed to, so each replica's scheduling, paging and
// preemption behavior is exactly ServingSim's. Disaggregated fleets
// (FleetConfig::roles) relax exactly one thing: a finished prompt's KV can
// move, whole, from a prefill replica to a decode replica over a timed
// net::RingFabric (and an idle replica can steal queued work the same
// way) — the pools themselves are still never shared.
//
// Invariants:
//  - Determinism: a FleetConfig fully determines FleetResult. All
//    randomness flows through the one seeded TrafficGen, the engine
//    resolves same-cycle events in scheduling order, and every balancer
//    tie-break is by lowest replica index — byte-identical sweeps, same as
//    the single-replica engine.
//  - A 1-replica fleet is bit-identical to ServingSim on the same
//    ServingConfig (pinned in tests/test_fleet.cpp): both harnesses run
//    the same replica machinery (serve/replica.hpp) and a balancer over
//    one replica makes no extra engine events.
//  - All replicas must share one clock frequency (arch.frequency_hz): the
//    engine has a single cycle-granular clock. Heterogeneity means node
//    counts, KV budgets and scheduler knobs — not clock domains.
//
// Architecture notes: DESIGN.md §5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/step_cost.hpp"
#include "hw/link.hpp"
#include "serve/autoscaler.hpp"
#include "serve/metrics.hpp"
#include "serve/serving_sim.hpp"
#include "util/table.hpp"

namespace looplynx::serve {

/// Replica specialization in a disaggregated fleet (FleetConfig::roles).
/// General replicas behave exactly like the symmetric fleets of PR 4-8.
enum class ReplicaRole : std::uint8_t {
  /// Takes fresh arrivals and runs both phases to completion (legacy).
  kGeneral,
  /// Takes fresh arrivals; once a prompt's last chunk has run, its KV
  /// block list is shipped to the least-loaded decode replica over the
  /// fleet's net::RingFabric and decoding continues there.
  kPrefill,
  /// Never routed fresh arrivals: serves migrated-in decode phases (and
  /// whatever it steals from a whale-stuck neighbor when idle).
  kDecode,
};

/// CLI-facing role names ("general" | "prefill" | "decode"), shared by the
/// bench and example surfaces. Throws std::invalid_argument on unknown.
ReplicaRole parse_replica_role(const std::string& name);
const char* replica_role_name(ReplicaRole role);

/// How the fleet balancer picks a replica for each arrival.
enum class BalancerPolicy : std::uint8_t {
  /// Route arrival i to replica i mod N, blind to load. The baseline every
  /// smarter policy is measured against; degrades on skewed mixes, where a
  /// run of heavy requests can pile onto one replica by arrival parity.
  kRoundRobin,
  /// Fewest outstanding requests (queued + running, counted from routing
  /// so same-cycle bursts are visible); ties go to the lowest replica
  /// index. The classic supermarket policy: adapts to skew by steering
  /// around the replica stuck with a heavy request.
  kJoinShortestQueue,
  /// Most free KV-cache tokens (free blocks x block size — comparable
  /// across replicas with different paging granularities and budgets),
  /// then fewest outstanding, then lowest index. Builds on the paged
  /// KvBlockManager's occupancy stats: KV is the admission-gating
  /// resource, so free KV predicts which replica can start work soonest —
  /// but blocks are only allocated at admission, so until queues
  /// differentiate the pools this behaves like kJoinShortestQueue.
  kKvAware,
};

/// CLI-facing balancer names ("rr" | "jsq" | "kv"), shared by the bench and
/// example surfaces. Throws std::invalid_argument on an unknown name.
BalancerPolicy parse_balancer_policy(const std::string& name);
const char* balancer_policy_name(BalancerPolicy policy);

/// Routing-decision engine. The pure pick() core is separated from the
/// simulation so its tie-break rules — the fleet's determinism contract —
/// are unit-testable without spinning up replicas.
class LoadBalancer {
 public:
  explicit LoadBalancer(BalancerPolicy policy) : policy_(policy) {}

  /// One replica's load snapshot at a routing instant.
  struct ReplicaLoad {
    std::uint32_t outstanding = 0;     // routed - finished - rejected
    std::uint64_t free_kv_tokens = 0;  // free blocks x block size
    /// False for a replica the autoscaler has deactivated (draining or
    /// parked): the balancer must not route new arrivals to it. Static
    /// fleets leave every replica active.
    bool active = true;
  };

  /// Picks the replica index for the next arrival, considering only
  /// active replicas. Deterministic: every tie resolves to the lowest
  /// *active* index (after the policy's secondary keys); round-robin
  /// cycles over the active subset in index order. `loads` must be
  /// non-empty, its order is the replica order, and at least one entry
  /// must be active (the autoscaler's min_replicas >= 1 guarantees it).
  /// With every replica active this is byte-identical to the pre-masking
  /// balancer — what keeps static-fleet sweeps byte-stable.
  std::uint32_t pick(const std::vector<ReplicaLoad>& loads);

  /// Same pick with the active count supplied by the caller — the fleet
  /// keeps it incrementally (the live prefix size), so the per-arrival
  /// counting scan disappears from the routing hot path.
  std::uint32_t pick(const std::vector<ReplicaLoad>& loads,
                     std::uint32_t n_active);

  BalancerPolicy policy() const { return policy_; }

 private:
  BalancerPolicy policy_;
  std::uint32_t round_robin_next_ = 0;
};

struct FleetConfig {
  /// One ServingConfig per replica (>= 1). Per-replica `traffic` members
  /// are ignored — the fleet has exactly one arrival stream, `traffic`
  /// below. Replicas may differ in everything else, but must share one
  /// arch.frequency_hz (single engine clock).
  std::vector<ServingConfig> replicas;
  /// The shared arrival stream the balancer splits across replicas.
  TrafficConfig traffic;
  BalancerPolicy balancer = BalancerPolicy::kRoundRobin;
  /// Fleet-level autoscaling (serve/autoscaler.hpp). Disabled by default:
  /// every replica is live for the whole run and output is byte-identical
  /// to the static fleet engine. When enabled on a symmetric fleet,
  /// `replicas` must hold exactly autoscale.max_replicas configs and the
  /// run starts with the first autoscale.min_replicas of them live. When
  /// enabled together with `roles`, one controller runs per tier
  /// (replicas grouped by role) and the per-tier `tier_min`/`tier_max`
  /// bounds rule — each tier starts at its own minimum, live as a prefix
  /// of that tier's members in fleet-index order. DESIGN.md §11.
  AutoscalerConfig autoscale;

  /// Disaggregated prefill/decode roles, one per replica. Empty (the
  /// default) keeps the fleet symmetric and constructs NO fabric — output
  /// stays byte-identical to a role-less build. Non-empty requires
  /// size() == replicas.size(), at least one routable (prefill/general)
  /// and one decode replica. Combines with `autoscale`: each role class
  /// is an independently scaled tier (DESIGN.md §10-§11).
  std::vector<ReplicaRole> roles;
  /// Per-link pricing of the KV-migration ring (one simplex link per
  /// replica, replica i -> i+1 mod N). Only read when `roles` is set.
  hw::StreamLinkConfig kv_link;

  bool disaggregated() const { return !roles.empty(); }

  /// N identical replicas of `base`; the fleet traffic is base.traffic.
  static FleetConfig homogeneous(
      const ServingConfig& base, std::uint32_t n,
      BalancerPolicy balancer = BalancerPolicy::kRoundRobin);
};

/// What one fleet run produced: per-replica FleetMetrics plus the pooled
/// fleet-level rollup and the cross-replica balance statistics the
/// balancer policies are judged on.
struct FleetResult {
  /// Per-replica metrics, in replica order. `offered` is the requests
  /// routed to that replica; latency percentiles are over its own
  /// completions.
  std::vector<FleetMetrics> replicas;

  /// Fleet-level rollup. Counts/token totals/iterations sum across
  /// replicas; rates use the shared makespan; latency percentiles pool
  /// every replica's per-request samples; `peak_in_flight` is the true
  /// fleet-wide concurrent peak; `busy_fraction` averages pipeline
  /// utilization over all replicas; `peak_queue_depth` and
  /// `kv_peak_occupancy` report the worst single replica; KV capacity and
  /// preemption counters sum. `preempt`/`kv_block_tokens` echo replica 0
  /// (display only — replicas may differ). `requests` pools every
  /// replica's records sorted by id (== fleet-wide injection order), each
  /// carrying its `replica` index.
  FleetMetrics fleet;

  /// Arrivals the balancer routed to each replica (sums to fleet.offered).
  std::vector<std::uint64_t> routed;
  /// max(routed) / mean(routed) over the *routing-eligible* replicas: 1.0
  /// is a perfectly even split. On a disaggregated fleet decode replicas
  /// receive zero fresh arrivals by design, so they are excluded from
  /// both the max and the mean — including them would read a healthy
  /// role split as pathological imbalance (the PR 9 bug this fixes). On
  /// a symmetric fleet every replica is eligible and the metric is
  /// unchanged bit for bit. The imbalance a blind policy accumulates is
  /// the headroom JSQ/KV-aware routing exists to reclaim.
  double load_imbalance = 0;
  /// max - min of per-replica p99 TTFT over replicas that completed work —
  /// the tail-latency spread a skewed routing inflicts.
  double ttft_p99_spread_ms = 0;

  // ---- Autoscaling (FleetConfig::autoscale; defaults describe a static
  // fleet so disabled runs keep byte-identical tables) ----
  /// True when the run was autoscaled; gates the extra table rows.
  bool autoscaled = false;
  /// Every replica-set change in fleet-clock order (empty when static).
  std::vector<ScaleEvent> scale_events;
  std::uint32_t min_live_replicas = 0;   // fewest live at any instant
  std::uint32_t peak_live_replicas = 0;  // most live at any instant
  /// Time-weighted mean of the live-replica count over the makespan.
  double mean_live_replicas = 0;
  /// The fleet's cost metric: cycles during which each replica was
  /// *occupied* — live (routable), or deactivated but still draining
  /// requests routed to it before the scale-down — summed over replicas.
  /// A static fleet consumes exactly replicas x makespan; the autoscaler
  /// exists to cut this while holding the SLO (pinned in
  /// examples/autoscale_serving.cpp).
  std::uint64_t replica_cycles = 0;
  double replica_seconds = 0;  // replica_cycles / frequency

  /// Per-tier rollup of one role class (disaggregated fleets only — the
  /// `tiers` vector below stays empty on symmetric runs so their tables
  /// and digests cannot move). Tier order is the distinct roles of
  /// FleetConfig::roles in first-appearance order; `members` are fleet
  /// indices in ascending order, and the tier's live set is always a
  /// prefix of them.
  struct TierStats {
    ReplicaRole role = ReplicaRole::kGeneral;
    std::vector<std::uint32_t> members;    // fleet indices, ascending
    std::uint32_t min_live = 0;            // fewest live at any instant
    std::uint32_t peak_live = 0;           // most live at any instant
    /// Time-weighted mean of the tier's live count over the makespan.
    double mean_live = 0;
    /// Occupied cycles summed over the tier's members (live or draining).
    std::uint64_t replica_cycles = 0;
    /// max - min of per-replica p99 TTFT over the tier's members that
    /// completed work — the spread WITHIN one role class. The fleet-wide
    /// ttft_p99_spread_ms mixes prefill TTFTs with migrated-decode ones
    /// and mostly measures the role split itself; this one measures
    /// routing skew where routing actually happens.
    double ttft_p99_spread_ms = 0;
  };
  /// One entry per role class on disaggregated runs; empty otherwise.
  std::vector<TierStats> tiers;

  // ---- Disaggregation (FleetConfig::roles; defaults describe a
  // symmetric fleet so role-less runs keep byte-identical tables) ----
  /// True when the fleet ran with roles; gates the extra table column and
  /// the CLI surfaces' migration prose.
  bool disaggregated = false;
  /// The roles the fleet ran with (empty when symmetric), replica order.
  std::vector<ReplicaRole> roles;
  /// Every byte the net::RingFabric's links carried (bytes x hops —
  /// multi-hop paths serialize on every link they cross). Equals the sum
  /// of per-replica kv_migrate_wire_bytes + steal_wire_bytes.
  std::uint64_t fabric_bytes = 0;

  /// Per-replica + fleet summary table for examples and reports. The
  /// autoscale fields are reported as prose by the CLI surfaces (gated on
  /// `autoscaled`), so static tables stay unchanged byte for byte.
  util::Table to_table(const std::string& title) const;
};

class FleetSim {
 public:
  /// Builds one step-cost model per distinct (arch, model, probe stride)
  /// among the replicas — a homogeneous fleet probes the timed system once.
  explicit FleetSim(const FleetConfig& config);

  /// Reuses an existing cost model for every replica — sweep harnesses
  /// over homogeneous fleets should share one across points. All replicas
  /// must then really be priced by it (same arch + model), which this
  /// constructor trusts the caller on, like ServingSim's equivalent.
  FleetSim(const FleetConfig& config, const core::StepCostModel& costs);

  const FleetConfig& config() const { return config_; }

  /// Simulates the whole fleet to completion and returns its results.
  FleetResult run() const;

  /// Same run with an observer attached (serve/observe.hpp): every
  /// replica's lifecycle events and cycle-accounting spans — plus the
  /// autoscaler's scale/drain decisions — are recorded into it, and the
  /// observer is finalized (per-replica tiling asserted, exports unlocked)
  /// before returning. `observer` may be null (identical to run()); when
  /// non-null it must be freshly constructed for the fleet width at the
  /// fleet clock. Observation is pure bookkeeping: the returned result is
  /// identical to an unobserved run's.
  FleetResult run(Observer* observer) const;

 private:
  void validate();

  FleetConfig config_;
  std::vector<core::StepCostModel> costs_;  // one per replica
};

}  // namespace looplynx::serve
