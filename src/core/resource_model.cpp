#include "core/resource_model.hpp"

#include <algorithm>

namespace looplynx::core {

// Coefficient notes: the paper's Fig. 7 rows describe the *dual-node*
// accelerator on one U50 (their sum, 1128 DSP, is twice Table II's per-node
// 568). The estimates below are therefore per node — half of each Fig. 7
// row at the default configuration — and fig7_rows() scales back up by the
// number of nodes on the card. One int8 MAC maps to one DSP48 plus control.

hw::ResourceVector ResourceModel::fused_mp_kernel() const {
  const double macs = arch_.mpu_lanes();  // 256 at defaults (8 x 32)
  return hw::ResourceVector{
      .dsp = 1.0 * macs + 5,              // MAC array + quant multipliers
      .lut = 45.0 * macs + 5.5e3,         // datapath + FIFO glue
      .ff = 85.0 * macs + 6.2e3,
      .bram = 0.4375 * macs + 8.5,        // per-slice datapack staging
      .uram = 0,
  };
}

hw::ResourceVector ResourceModel::fused_mha_kernel() const {
  const double lanes = arch_.score_lanes + arch_.mix_lanes;  // 128 default
  return hw::ResourceVector{
      .dsp = 1.375 * lanes + 15,          // two MAC arrays + softmax exp/div
      .lut = 125.0 * lanes + 3e3,
      .ff = 150.0 * lanes + 3.3e3,
      .bram = 8,                          // score/probability line buffers
      .uram = 0,
  };
}

hw::ResourceVector ResourceModel::fused_ln_kernel() const {
  const double lanes = std::max(arch_.cp_lanes_fused, arch_.quant_lanes);
  return hw::ResourceVector{
      .dsp = 5.0 * lanes + 16,            // fp accumulate/normalize + quant
      .lut = 600.0 * lanes + 1.9e3,
      .ff = 750.0 * lanes + 3e3,
      .bram = 112 + 0.5 * lanes,          // shared residual/activation buffer
      .uram = 1,                          // KV write-combining
  };
}

hw::ResourceVector ResourceModel::dma() const {
  const double channels = arch_.n_channel + arch_.kv_channels;
  return hw::ResourceVector{
      .dsp = 0,
      .lut = 750.0 * channels + 500,
      .ff = 1325.0 * channels + 750,
      .bram = 4.5 * channels + 3.5,
      .uram = 0,
  };
}

hw::ResourceVector ResourceModel::other_kernels() const {
  return hw::ResourceVector{
      .dsp = 16, .lut = 8.5e3, .ff = 13e3, .bram = 0.5, .uram = 1};
}

hw::ResourceVector ResourceModel::per_node() const {
  return fused_mp_kernel() + fused_mha_kernel() + fused_ln_kernel() + dma() +
         other_kernels();
}

hw::ResourceVector ResourceModel::accelerator_total() const {
  return per_node() * static_cast<double>(arch_.num_nodes);
}

hw::ResourceVector ResourceModel::platform_shell() {
  // XDMA shell + HBM memory subsystem on an Alveo card.
  return hw::ResourceVector{
      .dsp = 4, .lut = 184e3, .ff = 293e3, .bram = 330, .uram = 0};
}

std::uint32_t ResourceModel::nodes_on_card() const {
  return std::min(arch_.num_nodes, arch_.nodes_per_fpga);
}

hw::ResourceVector ResourceModel::device_total() const {
  return per_node() * static_cast<double>(nodes_on_card()) +
         platform_shell();
}

std::vector<hw::ComponentUsage> ResourceModel::fig7_rows() const {
  const double scale = nodes_on_card();
  return {
      {"Fused MP Kernel", fused_mp_kernel() * scale},
      {"Fused MHA Kernel", fused_mha_kernel() * scale},
      {"Fused LN Kernel", fused_ln_kernel() * scale},
      {"DMA", dma() * scale},
      {"Other Kernels/Buffer", other_kernels() * scale},
  };
}

bool ResourceModel::fits_u50() const {
  if (!per_node().fits_within(hw::alveo_u50_slr_budget())) return false;
  return device_total().fits_within(hw::alveo_u50_budget());
}

}  // namespace looplynx::core
