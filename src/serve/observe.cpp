#include "serve/observe.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

namespace looplynx::serve {

const char* lifecycle_event_name(LifecycleEvent kind) {
  switch (kind) {
    case LifecycleEvent::kRoute:
      return "route";
    case LifecycleEvent::kArrive:
      return "arrive";
    case LifecycleEvent::kAdmit:
      return "admit";
    case LifecycleEvent::kReject:
      return "reject";
    case LifecycleEvent::kFirstChunk:
      return "first-chunk";
    case LifecycleEvent::kChunk:
      return "chunk";
    case LifecycleEvent::kFirstToken:
      return "first-token";
    case LifecycleEvent::kDecode:
      return "decode";
    case LifecycleEvent::kPreempt:
      return "preempt";
    case LifecycleEvent::kRecomputeStart:
      return "recompute-start";
    case LifecycleEvent::kRecomputeEnd:
      return "recompute-end";
    case LifecycleEvent::kFinish:
      return "finish";
    case LifecycleEvent::kScaleUp:
      return "scale-up";
    case LifecycleEvent::kScaleDown:
      return "scale-down";
    case LifecycleEvent::kDrain:
      return "drain";
    case LifecycleEvent::kCacheHit:
      return "cache-hit";
    case LifecycleEvent::kCacheMiss:
      return "cache-miss";
    case LifecycleEvent::kKvMigrate:
      return "kv-migrate";
    case LifecycleEvent::kSteal:
      return "steal";
  }
  return "unknown";
}

Observer::Observer(std::uint32_t replicas, double frequency_hz)
    : frequency_hz_(frequency_hz),
      frequency_hz_int_(static_cast<std::uint64_t>(std::llround(frequency_hz))),
      per_replica_(replicas) {
  if (replicas == 0) {
    throw std::invalid_argument("Observer needs at least one replica");
  }
  if (!(frequency_hz > 0)) {
    throw std::invalid_argument("Observer frequency_hz must be > 0");
  }
}

void Observer::set_role_names(std::vector<std::string> names) {
  if (names.size() != per_replica_.size()) {
    throw std::invalid_argument(
        "Observer::set_role_names must cover every replica: got " +
        std::to_string(names.size()) + " names for " +
        std::to_string(per_replica_.size()) + " replicas");
  }
  role_names_ = std::move(names);
}

void Observer::record(LifecycleEvent kind, sim::Cycles at,
                      std::uint32_t request, std::uint32_t replica,
                      std::uint32_t a, std::uint32_t b) {
  events_.push_back(ObservedEvent{at, kind, request, replica, a, b});
}

void Observer::add_span(std::uint32_t replica, const char* cat,
                        sim::Cycles begin, sim::Cycles end) {
  per_replica_.at(replica).trace.add(cat, begin, end);
}

void Observer::begin_wait(std::uint32_t replica, const char* cat,
                          sim::Cycles at) {
  PerReplica& r = per_replica_.at(replica);
  if (r.waiting) {
    throw std::logic_error("Observer::begin_wait: wait already open");
  }
  r.waiting = true;
  r.wait_start = at;
  r.wait_category = cat;
}

void Observer::end_wait(std::uint32_t replica, sim::Cycles at) {
  PerReplica& r = per_replica_.at(replica);
  if (!r.waiting) {
    throw std::logic_error("Observer::end_wait: no wait open");
  }
  r.waiting = false;
  r.trace.add(r.wait_category, r.wait_start, at);
}

void Observer::mark_exit(std::uint32_t replica, sim::Cycles at) {
  PerReplica& r = per_replica_.at(replica);
  r.exited = true;
  r.exit_at = at;
}

void Observer::set_kv_stats(std::uint32_t replica,
                            std::uint64_t capacity_blocks,
                            std::uint64_t peak_used_blocks,
                            std::uint32_t block_tokens) {
  PerReplica& r = per_replica_.at(replica);
  r.kv_capacity_blocks = capacity_blocks;
  r.kv_peak_used_blocks = peak_used_blocks;
  r.kv_block_tokens = block_tokens;
}

void Observer::finalize(sim::Cycles makespan) {
  if (finalized_) {
    throw std::logic_error("Observer::finalize called twice (single-use)");
  }
  for (std::size_t i = 0; i < per_replica_.size(); ++i) {
    PerReplica& r = per_replica_[i];
    // A replica still parked on its work signal at run end was never woken
    // again: its open wait IS the trailing drain, whatever it looked like
    // at sleep time. A replica whose loop exited drains from the exit.
    if (r.waiting) {
      r.waiting = false;
      r.trace.add(category::kDrain, r.wait_start, makespan);
    } else if (r.exited) {
      r.trace.add(category::kDrain, r.exit_at, makespan);
    }
    const sim::Cycles total = r.trace.grand_total();
    if (total != makespan) {
      throw std::logic_error(
          "observability tiling violated: replica " + std::to_string(i) +
          " categories sum to " + std::to_string(total) + " cycles, run "
          "makespan is " + std::to_string(makespan) +
          " (the breakdown must partition the timeline exactly)");
    }
  }
  makespan_ = makespan;
  finalized_ = true;
}

const sim::Trace& Observer::replica_trace(std::uint32_t replica) const {
  return per_replica_.at(replica).trace;
}

const std::map<std::string, sim::Cycles>& Observer::breakdown(
    std::uint32_t replica) const {
  return per_replica_.at(replica).trace.totals();
}

void Observer::require_finalized(const char* what) const {
  if (!finalized_) {
    throw std::logic_error(std::string(what) +
                           " requires finalize() (run the simulation with "
                           "the observer attached first)");
  }
}

std::uint64_t Observer::cycles_to_us(sim::Cycles c) const {
  // Exact integer arithmetic so the exporters never format a double:
  // cycles * 1e6 fits 64 bits for any run the engine can represent in
  // practice (makespans beyond ~5e12 cycles are outside the sim's scale).
  return c * 1000000ull / frequency_hz_int_;
}

void Observer::write_chrome_trace(std::ostream& os) const {
  require_finalized("write_chrome_trace");
  sim::ChromeTraceWriter writer(os);
  for (std::uint32_t i = 0; i < replicas(); ++i) {
    std::string name = "replica " + std::to_string(i);
    if (!role_names_.empty()) name += " (" + role_names_[i] + ")";
    writer.process_name(i, name);
  }
  // One track per replica: the cycle-accounting spans, in recording order
  // (chronological per replica). Zero-width spans carry no cycles and
  // would only be viewer noise.
  for (std::uint32_t i = 0; i < replicas(); ++i) {
    for (const sim::Trace::Span& s : per_replica_[i].trace.spans()) {
      if (s.end == s.begin) continue;
      writer.complete(s.category, "breakdown", i, /*tid=*/0, s.begin, s.end);
    }
  }
  // One async span per request (opened at routing, closed at finish or
  // rejection), lifecycle instants nested inside; scheduler decisions as
  // instant events on the affected replica's track.
  for (const ObservedEvent& e : events_) {
    const std::string name = lifecycle_event_name(e.kind);
    switch (e.kind) {
      case LifecycleEvent::kRoute:
        writer.async_begin("request", "request", e.replica, e.request, e.at);
        break;
      case LifecycleEvent::kFinish:
      case LifecycleEvent::kReject:
        writer.async_instant(name, "request", e.replica, e.request, e.at);
        writer.async_end("request", "request", e.replica, e.request, e.at);
        break;
      case LifecycleEvent::kPreempt:
        writer.instant(name, "decision", e.replica, /*tid=*/0, e.at, 't');
        writer.async_instant(name, "request", e.replica, e.request, e.at);
        break;
      // Scale/drain instants carry the moved replica's role when the
      // fleet is disaggregated ("scale-up (prefill)"), so a trace of a
      // tier-autoscaled fleet says which tier the controller touched.
      case LifecycleEvent::kScaleUp:
      case LifecycleEvent::kScaleDown:
        writer.instant(role_names_.empty()
                           ? name
                           : name + " (" + role_names_[e.replica] + ")",
                       "decision", e.replica, /*tid=*/0, e.at, 'g');
        break;
      case LifecycleEvent::kDrain:
        writer.instant(role_names_.empty()
                           ? name
                           : name + " (" + role_names_[e.replica] + ")",
                       "decision", e.replica, /*tid=*/0, e.at, 'p');
        break;
      default:
        writer.async_instant(name, "request", e.replica, e.request, e.at);
    }
  }
  writer.finish();
}

namespace {

/// One request's lifecycle, replayed from the event log for the metric
/// histograms. Cycle fields are valid only when the matching flag is set.
struct RequestLifecycle {
  std::uint32_t replica = 0;
  sim::Cycles arrive = 0, admit = 0, first_token = 0, finish = 0;
  bool arrived = false, admitted = false, first = false, finished = false,
       rejected = false;
};

/// Fixed deterministic histogram bounds: label (what `le` prints) and the
/// bound in integer microseconds (what observations compare against).
struct Bucket {
  const char* label;
  std::uint64_t bound_us;
};
constexpr Bucket kMsBuckets[] = {
    {"0.5", 500},     {"1", 1000},     {"2", 2000},      {"5", 5000},
    {"10", 10000},    {"20", 20000},   {"50", 50000},    {"100", 100000},
    {"200", 200000},  {"500", 500000}, {"1000", 1000000},
};

/// "123.456" from integer microseconds — millisecond figures without ever
/// formatting a double.
std::string ms_from_us(std::uint64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(us / 1000),
                static_cast<unsigned long long>(us % 1000));
  return buf;
}

void write_histogram(std::ostream& os, const std::string& name,
                     const std::string& help,
                     const std::vector<std::uint64_t>& samples_us) {
  os << "# HELP " << name << " " << help << "\n";
  os << "# TYPE " << name << " histogram\n";
  std::uint64_t sum_us = 0;
  for (const std::uint64_t s : samples_us) sum_us += s;
  for (const Bucket& b : kMsBuckets) {
    std::uint64_t count = 0;
    for (const std::uint64_t s : samples_us) count += s <= b.bound_us ? 1 : 0;
    os << name << "_bucket{le=\"" << b.label << "\"} " << count << "\n";
  }
  os << name << "_bucket{le=\"+Inf\"} " << samples_us.size() << "\n";
  os << name << "_sum " << ms_from_us(sum_us) << "\n";
  os << name << "_count " << samples_us.size() << "\n";
}

}  // namespace

void Observer::write_prometheus(std::ostream& os) const {
  require_finalized("write_prometheus");
  const std::uint32_t n = replicas();

  // Replay the event log into per-replica counters and per-request
  // lifecycles. Request ids are dense (fleet-wide injection order).
  std::vector<std::uint64_t> routed(n, 0), admitted(n, 0), rejected(n, 0),
      completed(n, 0), preemptions(n, 0), tokens(n, 0);
  std::uint64_t scale_up = 0, scale_down = 0;
  std::vector<RequestLifecycle> requests;
  for (const ObservedEvent& e : events_) {
    if (e.request != kNoRequest) {
      if (e.request >= requests.size()) requests.resize(e.request + 1);
      RequestLifecycle& r = requests[e.request];
      r.replica = e.replica;
      switch (e.kind) {
        case LifecycleEvent::kRoute:
          ++routed[e.replica];
          break;
        case LifecycleEvent::kArrive:
          r.arrived = true;
          r.arrive = e.at;
          break;
        case LifecycleEvent::kAdmit:
          ++admitted[e.replica];
          r.admitted = true;
          r.admit = e.at;
          break;
        case LifecycleEvent::kReject:
          ++rejected[e.replica];
          r.rejected = true;
          break;
        case LifecycleEvent::kFirstToken:
          ++tokens[e.replica];
          r.first = true;
          r.first_token = e.at;
          break;
        case LifecycleEvent::kDecode:
          ++tokens[e.replica];
          break;
        case LifecycleEvent::kPreempt:
          ++preemptions[e.replica];
          break;
        case LifecycleEvent::kFinish:
          ++completed[e.replica];
          r.finished = true;
          r.finish = e.at;
          break;
        default:
          break;
      }
    } else if (e.kind == LifecycleEvent::kScaleUp) {
      ++scale_up;
    } else if (e.kind == LifecycleEvent::kScaleDown) {
      ++scale_down;
    }
  }

  os << "# looplynx serve-layer metrics: simulated clock only, every value "
        "derived\n# from integer cycle counts (byte-stable across runs and "
        "build modes).\n";
  os << "# HELP looplynx_makespan_cycles Simulated cycles the run spanned.\n";
  os << "# TYPE looplynx_makespan_cycles gauge\n";
  os << "looplynx_makespan_cycles " << makespan_ << "\n";
  os << "# HELP looplynx_frequency_hz Accelerator clock of the run.\n";
  os << "# TYPE looplynx_frequency_hz gauge\n";
  os << "looplynx_frequency_hz " << frequency_hz_int_ << "\n";

  const auto per_replica_counter = [&](const std::string& name,
                                       const std::string& help,
                                       const std::vector<std::uint64_t>& v) {
    os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " counter\n";
    for (std::uint32_t i = 0; i < n; ++i) {
      os << name << "{replica=\"" << i << "\"} " << v[i] << "\n";
    }
  };
  per_replica_counter("looplynx_requests_routed_total",
                      "Requests the balancer routed to each replica.",
                      routed);
  per_replica_counter("looplynx_requests_admitted_total",
                      "Requests admitted past the queue (KV reserved).",
                      admitted);
  per_replica_counter("looplynx_requests_rejected_total",
                      "Requests shed by admission control.", rejected);
  per_replica_counter("looplynx_requests_completed_total",
                      "Requests that produced every decode token.",
                      completed);
  per_replica_counter("looplynx_tokens_emitted_total",
                      "Host-visible tokens (first tokens + decode tokens).",
                      tokens);
  per_replica_counter("looplynx_preemptions_total",
                      "KV evictions under preempt=recompute.", preemptions);

  os << "# HELP looplynx_scale_events_total Autoscaler live-set changes.\n";
  os << "# TYPE looplynx_scale_events_total counter\n";
  if (role_names_.empty()) {
    os << "looplynx_scale_events_total{direction=\"up\"} " << scale_up
       << "\n";
    os << "looplynx_scale_events_total{direction=\"down\"} " << scale_down
       << "\n";
  } else {
    // Disaggregated fleets scale per tier, so the counters carry the
    // moved replica's role. Roles iterate in first-appearance order —
    // the tier order the per-tier autoscalers evaluate in.
    std::vector<std::string> order;
    for (const std::string& role : role_names_) {
      bool seen = false;
      for (const std::string& o : order) seen = seen || o == role;
      if (!seen) order.push_back(role);
    }
    for (const char* direction : {"up", "down"}) {
      const LifecycleEvent kind = direction[0] == 'u'
                                      ? LifecycleEvent::kScaleUp
                                      : LifecycleEvent::kScaleDown;
      for (const std::string& role : order) {
        std::uint64_t count = 0;
        for (const ObservedEvent& e : events_) {
          if (e.kind == kind && role_names_[e.replica] == role) ++count;
        }
        os << "looplynx_scale_events_total{direction=\"" << direction
           << "\",role=\"" << role << "\"} " << count << "\n";
      }
    }
  }

  const auto kv_gauge = [&](const std::string& name, const std::string& help,
                            auto member) {
    os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " gauge\n";
    for (std::uint32_t i = 0; i < n; ++i) {
      os << name << "{replica=\"" << i << "\"} "
         << static_cast<std::uint64_t>(per_replica_[i].*member) << "\n";
    }
  };
  kv_gauge("looplynx_kv_capacity_blocks",
           "KV block pool capacity per replica.",
           &PerReplica::kv_capacity_blocks);
  kv_gauge("looplynx_kv_peak_used_blocks",
           "Peak KV blocks in use per replica.",
           &PerReplica::kv_peak_used_blocks);
  kv_gauge("looplynx_kv_block_tokens", "Tokens per KV block (paging grain).",
           &PerReplica::kv_block_tokens);

  os << "# HELP looplynx_replica_cycles_total Cycle-accounting breakdown; "
        "per replica the categories tile [0, makespan] exactly.\n";
  os << "# TYPE looplynx_replica_cycles_total counter\n";
  for (std::uint32_t i = 0; i < n; ++i) {
    for (const char* cat : kCategories) {
      os << "looplynx_replica_cycles_total{replica=\"" << i
         << "\",category=\"" << cat << "\"} "
         << per_replica_[i].trace.total(cat) << "\n";
    }
  }

  std::vector<std::uint64_t> ttft_us, e2e_us, queue_wait_us;
  for (const RequestLifecycle& r : requests) {
    if (!r.arrived) continue;
    if (r.first) ttft_us.push_back(cycles_to_us(r.first_token - r.arrive));
    if (r.finished) e2e_us.push_back(cycles_to_us(r.finish - r.arrive));
    if (r.admitted) queue_wait_us.push_back(cycles_to_us(r.admit - r.arrive));
  }
  write_histogram(os, "looplynx_ttft_ms",
                  "Time to first token (simulated milliseconds).", ttft_us);
  write_histogram(os, "looplynx_e2e_ms",
                  "Arrival to completion (simulated milliseconds).", e2e_us);
  write_histogram(os, "looplynx_queue_wait_ms",
                  "Arrival to admission (simulated milliseconds).",
                  queue_wait_us);
}

void write_exports(const Observer& observer, const std::string& trace_path,
                   const std::string& metrics_path) {
  const auto write_file = [](const std::string& path, const auto& writer) {
    std::ofstream os(path, std::ios::binary);  // binary: LF everywhere
    if (!os) {
      throw std::runtime_error("cannot open " + path + " for writing");
    }
    writer(os);
    os.flush();
    if (!os) {
      throw std::runtime_error("failed writing " + path);
    }
  };
  if (!trace_path.empty()) {
    write_file(trace_path, [&](std::ostream& os) {
      observer.write_chrome_trace(os);
    });
  }
  if (!metrics_path.empty()) {
    write_file(metrics_path, [&](std::ostream& os) {
      observer.write_prometheus(os);
    });
  }
}

}  // namespace looplynx::serve
