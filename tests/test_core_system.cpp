// Tests for the timed LoopLynx system: stage schedule invariants, scaling
// behaviour, optimization ablations, and paper-shape checks.
#include <gtest/gtest.h>

#include "core/arch_config.hpp"
#include "core/node.hpp"
#include "core/system.hpp"
#include "model/config.hpp"

namespace looplynx::core {
namespace {

model::ModelConfig small_model() {
  // Full architecture at reduced depth so tests stay fast.
  model::ModelConfig cfg = model::gpt2_medium();
  cfg.n_layer = 4;
  return cfg;
}

TEST(ArchConfigTest, DerivedQuantities) {
  const ArchConfig cfg = ArchConfig::two_node();
  EXPECT_NEAR(cfg.hbm_bytes_per_cycle(), 29.79, 0.05);
  EXPECT_EQ(cfg.mpu_lanes(), 256u);
  EXPECT_EQ(cfg.num_fpgas(), 1u);
  EXPECT_EQ(ArchConfig::four_node().num_fpgas(), 2u);
  EXPECT_EQ(ArchConfig::one_node().num_fpgas(), 1u);
}

TEST(ArchConfigTest, HopLatencyDependsOnFpgaBoundary) {
  const ArchConfig four = ArchConfig::four_node();
  // Nodes 0,1 on FPGA 0; nodes 2,3 on FPGA 1.
  EXPECT_EQ(four.hop_cycles(0), four.intra_fpga_hop_cycles);
  EXPECT_EQ(four.hop_cycles(1), four.inter_fpga_hop_cycles);
  EXPECT_EQ(four.hop_cycles(2), four.intra_fpga_hop_cycles);
  EXPECT_EQ(four.hop_cycles(3), four.inter_fpga_hop_cycles);
}

TEST(ArchConfigTest, ValidateRejectsZeroNodes) {
  ArchConfig cfg;
  cfg.num_nodes = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(SystemTest, RejectsIndivisiblePartition) {
  ArchConfig cfg = ArchConfig::nodes(3);  // 16 heads % 3 != 0
  EXPECT_THROW(System(cfg, model::gpt2_medium()), std::invalid_argument);
}

TEST(SystemTest, SingleTokenRunProducesPositiveLatency) {
  System sys(ArchConfig::one_node(), small_model());
  const RunResult r = sys.run(1, 0);
  EXPECT_GT(r.total_cycles, 0u);
  EXPECT_EQ(r.prefill_tokens, 1u);
  EXPECT_EQ(r.decode_tokens, 0u);
  EXPECT_DOUBLE_EQ(r.total_ms, r.prefill_ms);
}

TEST(SystemTest, LatencyGrowsWithSequencePosition) {
  System sys(ArchConfig::one_node(), small_model());
  RunOptions opt;
  opt.keep_token_timings = true;
  const RunResult r = sys.run(1, 16, opt);
  ASSERT_EQ(r.tokens.size(), 17u);
  // KV reads grow with position: later tokens cannot be cheaper.
  EXPECT_GE(r.tokens.back().cycles, r.tokens.front().cycles);
  EXPECT_GT(r.tokens.back().cycles, 0u);
}

TEST(SystemTest, MoreNodesAreFasterButSubLinear) {
  const model::ModelConfig m = small_model();
  const double t1 = System(ArchConfig::one_node(), m)
                        .run(4, 12).avg_token_ms;
  const double t2 = System(ArchConfig::two_node(), m)
                        .run(4, 12).avg_token_ms;
  const double t4 = System(ArchConfig::four_node(), m)
                        .run(4, 12).avg_token_ms;
  EXPECT_LT(t2, t1);
  EXPECT_LT(t4, t2);
  // Sub-linear speed-up (paper Table III): strictly below ideal 2x.
  EXPECT_LT(t1 / t2, 2.0);
  EXPECT_LT(t2 / t4, 2.0);
  // But still substantial: above 1.2x per doubling.
  EXPECT_GT(t1 / t2, 1.2);
  EXPECT_GT(t2 / t4, 1.2);
}

TEST(SystemTest, SampledRunApproximatesExactRun) {
  System sys(ArchConfig::two_node(), small_model());
  RunOptions exact;
  RunOptions sampled;
  sampled.token_sample_stride = 8;
  const double t_exact = sys.run(8, 48, exact).total_ms;
  const double t_sampled = sys.run(8, 48, sampled).total_ms;
  EXPECT_NEAR(t_sampled, t_exact, 0.02 * t_exact)
      << "stride interpolation deviates >2%";
}

TEST(SystemTest, OptimizationsReduceLatency) {
  const model::ModelConfig m = small_model();
  const ArchConfig opt = ArchConfig::one_node();
  const ArchConfig base = opt.without_optimizations();
  const double t_opt = System(opt, m).run(2, 14).avg_token_ms;
  const double t_base = System(base, m).run(2, 14).avg_token_ms;
  EXPECT_LT(t_opt, t_base);
  // Combined improvement in the paper's ballpark (>10%, <40%).
  const double gain = 1.0 - t_opt / t_base;
  EXPECT_GT(gain, 0.10);
  EXPECT_LT(gain, 0.40);
}

TEST(SystemTest, HeadwisePipelineHidesSoftmax) {
  const model::ModelConfig m = small_model();
  ArchConfig serial = ArchConfig::one_node();
  serial.headwise_pipeline = false;
  ArchConfig pipelined = ArchConfig::one_node();
  pipelined.headwise_pipeline = true;

  const RunResult r_serial = System(serial, m).run(1, 7);
  const RunResult r_pipe = System(pipelined, m).run(1, 7);
  EXPECT_GT(r_serial.trace.total(category::kSoftmax), 0u);
  EXPECT_EQ(r_pipe.trace.total(category::kSoftmax), 0u);
  EXPECT_LT(r_pipe.total_cycles, r_serial.total_cycles);
}

TEST(SystemTest, FusedLnResShrinksCriticalPath) {
  const model::ModelConfig m = small_model();
  ArchConfig fused = ArchConfig::one_node();
  ArchConfig unfused = ArchConfig::one_node();
  unfused.fuse_ln_res = false;
  const RunResult r_fused = System(fused, m).run(1, 7);
  const RunResult r_unfused = System(unfused, m).run(1, 7);
  EXPECT_LT(r_fused.trace.total(category::kCriticalPath),
            r_unfused.trace.total(category::kCriticalPath));
}

TEST(SystemTest, SyncHidingReducesExposedSync) {
  const model::ModelConfig m = small_model();
  ArchConfig hidden = ArchConfig::two_node();
  ArchConfig exposed = ArchConfig::two_node();
  exposed.hide_network_sync = false;
  const RunResult r_hidden = System(hidden, m).run(1, 7);
  const RunResult r_exposed = System(exposed, m).run(1, 7);
  EXPECT_LT(r_hidden.trace.total(category::kSync),
            r_exposed.trace.total(category::kSync));
  EXPECT_LE(r_hidden.total_cycles, r_exposed.total_cycles);
}

TEST(SystemTest, SingleNodeHasNoExposedSync) {
  const RunResult r =
      System(ArchConfig::one_node(), small_model()).run(1, 7);
  EXPECT_EQ(r.trace.total(category::kSync), 0u);
  EXPECT_EQ(r.net_bytes, 0u);
}

TEST(SystemTest, MultiNodeMovesRingTraffic) {
  const RunResult r =
      System(ArchConfig::two_node(), small_model()).run(1, 3);
  EXPECT_GT(r.net_bytes, 0u);
}

TEST(SystemTest, HbmTrafficMatchesWeightFootprint) {
  const model::ModelConfig m = small_model();
  System sys(ArchConfig::one_node(), m);
  const RunResult r = sys.run(1, 0);
  // One token streams all linear weights once (int8), plus KV traffic.
  const std::uint64_t weights = m.weight_bytes_per_token(1);
  EXPECT_GE(r.hbm_bytes, weights);
  EXPECT_LT(r.hbm_bytes, weights + weights / 4);
}

TEST(SystemTest, WeightTrafficSplitsAcrossNodes) {
  const model::ModelConfig m = small_model();
  const RunResult r1 = System(ArchConfig::one_node(), m).run(1, 0);
  const RunResult r2 = System(ArchConfig::two_node(), m).run(1, 0);
  // Total traffic across all nodes is conserved (each node reads its rows).
  EXPECT_NEAR(static_cast<double>(r2.hbm_bytes),
              static_cast<double>(r1.hbm_bytes),
              0.05 * static_cast<double>(r1.hbm_bytes));
}

TEST(SystemTest, BreakdownCoversTimeline) {
  const RunResult r =
      System(ArchConfig::one_node(), small_model()).run(1, 3);
  // Stage spans tile each token's timeline; totals must roughly equal the
  // request duration (host sync is added separately per token).
  const double covered = static_cast<double>(r.trace.grand_total());
  EXPECT_NEAR(covered, static_cast<double>(r.total_cycles),
              0.02 * static_cast<double>(r.total_cycles));
}

// Property sweep: latency is monotone in each capacity knob.
struct Knob {
  const char* name;
  void (*apply)(ArchConfig&);
};

class KnobMonotonicityTest : public ::testing::TestWithParam<Knob> {};

TEST_P(KnobMonotonicityTest, MoreHardwareIsNotSlower) {
  const model::ModelConfig m = small_model();
  ArchConfig base = ArchConfig::one_node();
  ArchConfig better = base;
  GetParam().apply(better);
  const double t_base = System(base, m).run(1, 7).avg_token_ms;
  const double t_better = System(better, m).run(1, 7).avg_token_ms;
  EXPECT_LE(t_better, t_base * 1.001) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Knobs, KnobMonotonicityTest,
    ::testing::Values(
        Knob{"double_channels", [](ArchConfig& c) { c.n_channel *= 2; }},
        Knob{"double_kv_channels", [](ArchConfig& c) { c.kv_channels *= 2; }},
        Knob{"double_score_lanes",
             [](ArchConfig& c) { c.score_lanes *= 2; }},
        Knob{"double_cp_lanes",
             [](ArchConfig& c) { c.cp_lanes_fused *= 2; }},
        Knob{"faster_softmax", [](ArchConfig& c) { c.softmax_lanes = 4; }},
        Knob{"higher_hbm_eff",
             [](ArchConfig& c) { c.hbm_efficiency = 0.99; }}),
    [](const ::testing::TestParamInfo<Knob>& info) {
      return info.param.name;
    });

// Paper-shape regression: the full GPT-2 345M configuration reproduces the
// published per-token latencies within tolerance. Uses stride sampling to
// stay fast; bands are deliberately wide (±12%) — this guards the shape,
// not the decimals.
struct PaperPoint {
  std::uint32_t nodes;
  double expected_ms;  // paper Table II
};

class PaperLatencyTest : public ::testing::TestWithParam<PaperPoint> {};

TEST_P(PaperLatencyTest, TableIITokenLatencyWithinBand) {
  const PaperPoint p = GetParam();
  System sys(ArchConfig::nodes(p.nodes), model::gpt2_medium());
  RunOptions opt;
  opt.token_sample_stride = 32;
  const double ms = sys.run(64, 512, opt).avg_token_ms;
  EXPECT_NEAR(ms, p.expected_ms, 0.12 * p.expected_ms);
}

INSTANTIATE_TEST_SUITE_P(TableII, PaperLatencyTest,
                         ::testing::Values(PaperPoint{1, 6.59},
                                           PaperPoint{2, 3.85},
                                           PaperPoint{4, 2.55}),
                         [](const ::testing::TestParamInfo<PaperPoint>& i) {
                           return "nodes" + std::to_string(i.param.nodes);
                         });

}  // namespace
}  // namespace looplynx::core
