// Bounded FIFO admission queue in front of the continuous-batching
// scheduler. push() fails when the queue is at capacity — that is the
// fleet's first line of admission control (load shedding); the second is
// the KV-slot check at pop time. Tracks depth statistics for FleetMetrics.
#pragma once

#include <cstddef>
#include <deque>

#include "serve/request.hpp"

namespace looplynx::serve {

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity) : capacity_(capacity) {}

  /// False when the queue is full (request must be rejected).
  bool push(Request* request) {
    if (queue_.size() >= capacity_) return false;
    queue_.push_back(request);
    if (queue_.size() > peak_depth_) peak_depth_ = queue_.size();
    if (queue_.size() > window_peak_depth_) window_peak_depth_ = queue_.size();
    return true;
  }

  /// Enqueues past the capacity bound. Hand-off arrivals only (KV
  /// migration / work stealing): the request cleared admission control on
  /// the replica it was routed to, so the transfer must not re-expose it
  /// to load shedding — dropping it here would lose a request the fleet
  /// already committed to.
  void force_push(Request* request) {
    queue_.push_back(request);
    if (queue_.size() > peak_depth_) peak_depth_ = queue_.size();
    if (queue_.size() > window_peak_depth_) window_peak_depth_ = queue_.size();
  }

  Request* front() const { return queue_.empty() ? nullptr : queue_.front(); }
  void pop() { queue_.pop_front(); }

  /// Youngest queued request — what a work-stealing neighbor takes (FIFO
  /// fairness for everything the victim keeps).
  Request* back() const { return queue_.empty() ? nullptr : queue_.back(); }
  void pop_back() { queue_.pop_back(); }

  bool empty() const { return queue_.empty(); }
  std::size_t depth() const { return queue_.size(); }
  std::size_t capacity() const { return capacity_; }
  std::size_t peak_depth() const { return peak_depth_; }

  /// Peak depth since the previous call (window-scoped, O(1)): the
  /// autoscaler's per-evaluation queue signal. Reading it resets the
  /// window to the current depth; the all-time peak_depth() that
  /// FleetMetrics reports is unaffected, so sampling the window cannot
  /// perturb metrics output.
  std::size_t take_window_peak() {
    const std::size_t peak = std::max(window_peak_depth_, queue_.size());
    window_peak_depth_ = queue_.size();
    return peak;
  }

 private:
  std::size_t capacity_;
  std::deque<Request*> queue_;
  std::size_t peak_depth_ = 0;
  std::size_t window_peak_depth_ = 0;
};

}  // namespace looplynx::serve
