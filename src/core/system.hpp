// Multi-node LoopLynx timed system: builds the engine, nodes and ring
// fabric, then simulates an end-to-end request (prefill + decode) token by
// token, exactly like the host loop in paper Fig. 2(b).
#pragma once

#include <cstdint>
#include <vector>

#include "core/arch_config.hpp"
#include "model/config.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace looplynx::core {

struct RunOptions {
  /// Simulate every k-th token and linearly interpolate the rest. Token
  /// latency depends on sequence position only through the (linear) KV
  /// length, so interpolation is accurate; use 1 for exact runs.
  std::uint32_t token_sample_stride = 1;
  /// Retain per-token timings in the result.
  bool keep_token_timings = false;
};

struct TokenTiming {
  std::uint32_t index = 0;   // position in the request
  bool is_prefill = false;
  sim::Cycles cycles = 0;    // accelerator cycles for this token
  bool simulated = false;    // false when interpolated
};

struct RunResult {
  std::uint32_t prefill_tokens = 0;
  std::uint32_t decode_tokens = 0;

  sim::Cycles total_cycles = 0;    // whole request, host sync included
  sim::Cycles prefill_cycles = 0;
  sim::Cycles decode_cycles = 0;

  double total_ms = 0;
  double prefill_ms = 0;
  double decode_ms = 0;
  double avg_token_ms = 0;         // total / (prefill + decode)
  double avg_decode_token_ms = 0;  // decode only, host sync included
  double decode_tokens_per_s = 0;

  /// Node-0 breakdown over the *simulated* tokens (categories in
  /// core/node.hpp). With stride 1 this tiles the whole run.
  sim::Trace trace;

  std::uint64_t hbm_bytes = 0;   // simulated tokens only
  std::uint64_t net_bytes = 0;
  double mpu_utilization = 0;    // over the simulated period

  std::vector<TokenTiming> tokens;  // filled when keep_token_timings
};

class System {
 public:
  System(ArchConfig arch, model::ModelConfig model);

  const ArchConfig& arch() const { return arch_; }
  const model::ModelConfig& model() const { return model_; }

  /// Simulates a [prefill : decode] request and returns aggregate timing.
  RunResult run(std::uint32_t prefill_tokens, std::uint32_t decode_tokens,
                const RunOptions& options = {}) const;

  /// Cycles one token step takes with `pos` tokens already cached, host
  /// sync excluded. This is the primitive the serve layer's StepCostModel
  /// probes to price scheduler iterations without re-simulating whole
  /// requests.
  sim::Cycles token_cycles(std::uint32_t pos) const;

  /// Convenience: average per-token latency (ms) of a request.
  double avg_token_latency_ms(std::uint32_t prefill_tokens,
                              std::uint32_t decode_tokens,
                              const RunOptions& options = {}) const;

 private:
  ArchConfig arch_;
  model::ModelConfig model_;
};

}  // namespace looplynx::core
