// Functional (bit-exact) multi-node LoopLynx execution.
//
// This is the arithmetic half of the co-simulation: the same W8A8 GPT-2
// computation as quant::Gpt2Int8, but partitioned exactly like the hardware
// (paper Fig. 2(c)) — linear layers split column-parallel along the output
// dimension, the KV cache split head-wise, and every sub-vector
// reconstructed through the functional ring all-gather. The invariant tested
// by the suite: for any node count, outputs are bitwise identical to the
// single-device quantized model.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "model/config.hpp"
#include "model/kv_cache.hpp"
#include "net/ring.hpp"
#include "quant/int8_model.hpp"

namespace looplynx::core {

class FunctionalSystem {
 public:
  FunctionalSystem(const quant::Gpt2Int8Weights& weights,
                   std::uint32_t num_nodes);

  std::uint32_t num_nodes() const { return num_nodes_; }
  const model::ModelConfig& config() const { return weights_->config; }

  /// Runs one token through the distributed accelerator; returns the final
  /// hidden state. Internally asserts that all nodes' buffers stay
  /// consistent after every ring synchronization.
  std::vector<float> forward_token(std::uint32_t token_id);

  std::vector<float> logits(std::span<const float> hidden) const;
  std::uint32_t argmax_token(std::span<const float> hidden) const;
  std::vector<std::uint32_t> generate(std::span<const std::uint32_t> prompt,
                                      std::uint32_t num_tokens);

  std::uint32_t position() const { return position_; }

  /// Total ring packs exchanged so far (consistency bookkeeping).
  std::uint64_t ring_packs() const { return ring_packs_; }

  /// Per-node resident KV-cache bytes (head-wise partition).
  std::uint64_t kv_bytes_per_node() const;

 private:
  /// Ring all-gather over per-node fp32 chunks; returns the full vector and
  /// checks inter-node consistency.
  std::vector<float> gather_f32(std::vector<std::vector<float>> chunks);
  std::vector<std::int8_t> gather_i8(
      std::vector<std::vector<std::int8_t>> chunks);

  const quant::Gpt2Int8Weights* weights_;
  std::uint32_t num_nodes_;
  std::uint32_t heads_per_node_;
  std::uint32_t position_ = 0;
  std::uint64_t ring_packs_ = 0;
  // Node-local KV partitions (node n owns heads [n*hpn, (n+1)*hpn)).
  std::vector<model::KvCache8> kv_;
};

}  // namespace looplynx::core
