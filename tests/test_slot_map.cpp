// util::SlotMap unit tests — insert/erase/recycle, generation-bump stale
// handle invalidation, deterministic iteration, address stability — plus
// the two pins the serve hot path rests on:
//  - a fuzz-style churn test that counts global operator new calls and
//    proves steady-state insert/erase cycles never touch the heap (the CI
//    ASan/UBSan leg runs this same test under sanitizers, so a stale-slot
//    access or leak fails there too);
//  - a serve-side run under preemption/recompute pressure, where requests
//    are recycled through the arena while coroutines and scheduler lists
//    hold references across suspension points — any handle-stability bug
//    is a use-after-free ASan catches.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/arch_config.hpp"
#include "model/config.hpp"
#include "serve/fleet.hpp"
#include "serve/kv_block.hpp"
#include "util/slot_map.hpp"
#include "workload/mix.hpp"

// ---- Global allocation counter ------------------------------------------
// Replacing the global allocation functions lets the churn test assert the
// exact number of heap allocations a window of operations performed.
// Counting is a plain increment: the tests are single-threaded.
namespace {
std::uint64_t g_news = 0;
}

void* operator new(std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace looplynx::util {
namespace {

struct Payload {
  std::uint64_t value = 0;
  std::uint64_t pad[7] = {};  // cache-line-ish, like a real arena object
  explicit Payload(std::uint64_t v) : value(v) {}
};

TEST(SlotMap, InsertEraseRecycleLifo) {
  SlotMap<Payload> map;
  auto [h0, r0] = map.emplace(10);
  auto [h1, r1] = map.emplace(11);
  auto [h2, r2] = map.emplace(12);
  EXPECT_EQ(map.size(), 3u);
  EXPECT_EQ(h0.index, 0u);
  EXPECT_EQ(h1.index, 1u);
  EXPECT_EQ(h2.index, 2u);

  // Erase middle, then last: the free list is LIFO, so the next two
  // inserts reuse slot 2 first, then slot 1 — and never slot 3.
  EXPECT_TRUE(map.erase(h1));
  EXPECT_TRUE(map.erase(h2));
  EXPECT_EQ(map.size(), 1u);
  auto [h3, r3] = map.emplace(13);
  auto [h4, r4] = map.emplace(14);
  EXPECT_EQ(h3.index, 2u);
  EXPECT_EQ(h4.index, 1u);
  EXPECT_EQ(map.capacity_slots(), 3u);  // no fresh slot was handed out
  EXPECT_EQ(map.get(h3)->value, 13u);
  EXPECT_EQ(map.get(h4)->value, 14u);
  EXPECT_EQ(map.get(h0)->value, 10u);
}

TEST(SlotMap, GenerationBumpInvalidatesStaleHandles) {
  SlotMap<Payload> map;
  auto [h, r] = map.emplace(1);
  EXPECT_TRUE(map.erase(h));
  // The handle outlived its object: lookups miss, a second erase is a
  // no-op, and the recycled slot's new tenant is not visible through it.
  EXPECT_EQ(map.get(h), nullptr);
  EXPECT_FALSE(map.erase(h));
  auto [h2, r2] = map.emplace(2);
  EXPECT_EQ(h2.index, h.index);
  EXPECT_NE(h2.generation, h.generation);
  EXPECT_EQ(map.get(h), nullptr);
  EXPECT_EQ(map.get(h2)->value, 2u);
}

TEST(SlotMap, ForEachVisitsAscendingSlotOrder) {
  SlotMap<Payload> map;
  std::vector<SlotHandle> handles;
  for (std::uint64_t i = 0; i < 10; ++i) {
    handles.push_back(map.emplace(i).first);
  }
  // Punch holes and refill: values differ from slot indices, but the
  // visit order must still be ascending slot index.
  map.erase(handles[7]);
  map.erase(handles[3]);
  map.emplace(100);  // slot 3 (LIFO)
  std::vector<std::uint64_t> seen;
  map.for_each([&](const Payload& p) { seen.push_back(p.value); });
  EXPECT_EQ(seen,
            (std::vector<std::uint64_t>{0, 1, 2, 100, 4, 5, 6, 8, 9}));
}

TEST(SlotMap, AddressesStableAcrossGrowth) {
  SlotMap<Payload, 16> map;  // small chunks force several allocations
  std::vector<Payload*> addresses;
  std::vector<SlotHandle> handles;
  for (std::uint64_t i = 0; i < 64; ++i) {
    auto [h, ref] = map.emplace(i);
    handles.push_back(h);
    addresses.push_back(&ref);
  }
  // Growth must never move existing objects (coroutines hold Request&
  // across suspension points).
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(map.get(handles[i]), addresses[i]);
    EXPECT_EQ(addresses[i]->value, i);
  }
}

TEST(SlotMap, ChurnIsAllocationFreeInSteadyState) {
  SlotMap<Payload> map;
  // Deterministic fuzz: a 64-bit LCG drives interleaved insert/erase with
  // live-set verification. First push to the peak live count...
  constexpr std::size_t kPeak = 600;  // spans 3 chunks of 256
  std::vector<std::pair<SlotHandle, std::uint64_t>> live;
  std::uint64_t lcg = 0x9e3779b97f4a7c15ull;
  const auto next = [&] {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    return lcg >> 33;
  };
  std::uint64_t ticket = 0;
  for (std::size_t i = 0; i < kPeak; ++i) {
    live.emplace_back(map.emplace(ticket).first, ticket);
    ++ticket;
  }
  // ...drain and refill once, so the internal free list (and this test's
  // own live vector) reach their high-water capacity — that growth is the
  // one-time warm-up cost, not steady state...
  while (!live.empty()) {
    ASSERT_TRUE(map.erase(live.back().first));
    live.pop_back();
  }
  for (std::size_t i = 0; i < kPeak; ++i) {
    live.emplace_back(map.emplace(ticket).first, ticket);
    ++ticket;
  }

  // ...then churn at or below the peak: every allocation in this window
  // would be a per-request heap allocation in the serve hot path.
  const std::uint64_t news_before = g_news;
  for (std::size_t step = 0; step < 200000; ++step) {
    const bool insert = live.empty() || (live.size() < kPeak && next() % 2);
    if (insert) {
      live.emplace_back(map.emplace(ticket).first, ticket);
      ++ticket;
    } else {
      const std::size_t victim = next() % live.size();
      ASSERT_TRUE(map.erase(live[victim].first));
      live[victim] = live.back();
      live.pop_back();
    }
    if (step % 4096 == 0 && !live.empty()) {
      const auto& [h, expect] = live[next() % live.size()];
      const Payload* p = map.get(h);
      ASSERT_NE(p, nullptr);
      ASSERT_EQ(p->value, expect);
    }
  }
  EXPECT_EQ(g_news - news_before, 0u);  // zero steady-state allocations
  EXPECT_EQ(map.chunk_count(), 3u);     // and no hidden chunk growth
  EXPECT_EQ(map.capacity_slots(), kPeak);
  EXPECT_EQ(map.size(), live.size());
}

}  // namespace
}  // namespace looplynx::util

namespace looplynx::serve {
namespace {

/// Preemption/recompute pressure over the arena: a tight paged-KV budget
/// forces recompute-youngest evictions, so requests bounce between the
/// ready classes, the deferred list and the batch while their slots sit in
/// the recycled arena. Any stale handle or pointer into a recycled slot is
/// a use-after-free the CI sanitizer leg converts into a hard failure; the
/// conservation checks prove every recycled request still completed
/// exactly once.
TEST(SlotMapServe, HandleStabilityAcrossPreemption) {
  ServingConfig base;
  base.arch = core::ArchConfig::one_node();
  model::ModelConfig m = model::cosim_config();
  m.name = "cosim-256";
  m.max_seq_len = 256;
  base.model = m;
  base.cost_probe_stride = 16;
  base.traffic.mix = workload::Mix{"skewed",
                                   {{workload::make_scenario(8, 16), 0.7},
                                    {workload::make_scenario(192, 48), 0.2},
                                    {workload::make_scenario(4, 40), 0.1}}};
  base.traffic.num_requests = 400;
  base.traffic.arrival_rate_per_s = 1200.0;
  base.traffic.seed = 7;
  base.scheduler.max_batch = 4;
  base.scheduler.max_in_flight = 6;
  base.scheduler.policy = BatchPolicy::kChunkedMixed;
  base.scheduler.max_tokens_per_iter = 16;
  base.scheduler.preempt = PreemptPolicy::kRecomputeYoungest;
  base.kv_block_tokens = 4;
  KvBlockManager probe(base.arch, base.model, 1);
  base.kv_budget_bytes_per_node = 56 * probe.bytes_per_token_per_node();
  base.keep_request_records = true;

  const FleetConfig cfg =
      FleetConfig::homogeneous(base, 1, BalancerPolicy::kRoundRobin);
  const FleetResult r = FleetSim(cfg).run();

  EXPECT_GT(r.fleet.preemptions, 0u);  // the pressure is not vacuous
  EXPECT_EQ(r.fleet.completed + r.fleet.rejected, r.fleet.offered);
  EXPECT_EQ(r.fleet.offered, 400u);
  EXPECT_EQ(r.fleet.kv_blocks_in_use_at_end, 0u);
  ASSERT_EQ(r.fleet.requests.size(), 400u);
  for (std::size_t i = 0; i < r.fleet.requests.size(); ++i) {
    const RequestRecord& rec = r.fleet.requests[i];
    EXPECT_EQ(rec.id, i);  // id-sorted and gap-free: nothing lost/duplicated
    if (rec.rejected) continue;
    EXPECT_LE(rec.queue_wait_ms, rec.ttft_ms);
    EXPECT_LE(rec.ttft_ms, rec.e2e_ms);
  }
}

}  // namespace
}  // namespace looplynx::serve
