#include "core/dse.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "hw/resources.hpp"

namespace looplynx::core {

std::string DseCandidate::describe() const {
  std::ostringstream os;
  os << arch.n_channel << "ch x " << arch.n_group << "macs, kv"
     << arch.kv_channels << ", score" << arch.score_lanes << ", block"
     << arch.mp_block_rows;
  return os.str();
}

DesignSpaceExplorer::DesignSpaceExplorer(model::ModelConfig model,
                                         ArchConfig base, DseSpace space,
                                         DseObjective objective)
    : model_(model), base_(base), space_(std::move(space)),
      objective_(objective) {}

std::size_t DesignSpaceExplorer::space_size() const {
  return space_.n_channel.size() * space_.kv_channels.size() *
         space_.score_lanes.size() * space_.mp_block_rows.size();
}

DseCandidate DesignSpaceExplorer::evaluate(const ArchConfig& arch) const {
  DseCandidate cand;
  cand.arch = arch;
  const ResourceModel rm(arch, model_);
  cand.slr_utilization =
      rm.per_node().max_utilization(hw::alveo_u50_slr_budget());
  cand.fits = rm.fits_u50();
  if (!cand.fits) {
    cand.figure_of_merit = 1e30;
    return cand;
  }
  System sys(arch, model_);
  RunOptions opt;
  opt.token_sample_stride = objective_.token_sample_stride;
  const RunResult r = sys.run(objective_.prefill, objective_.decode, opt);
  cand.avg_token_ms = r.avg_token_ms;
  const PowerModel power;
  const double watts = power.fpga_power_watts(arch);
  cand.tokens_per_joule = 1e3 / (cand.avg_token_ms * watts);
  const double energy_per_token_mj = cand.avg_token_ms * watts;  // mJ
  cand.figure_of_merit =
      (1.0 - objective_.energy_weight) * cand.avg_token_ms +
      objective_.energy_weight * energy_per_token_mj / 50.0;  // comparable
  return cand;
}

std::vector<DseCandidate> DesignSpaceExplorer::explore() const {
  std::vector<DseCandidate> out;
  out.reserve(space_size());
  for (std::uint32_t ch : space_.n_channel) {
    for (std::uint32_t kv : space_.kv_channels) {
      for (std::uint32_t lanes : space_.score_lanes) {
        for (std::uint32_t rows : space_.mp_block_rows) {
          ArchConfig arch = base_;
          arch.n_channel = ch;
          arch.kv_channels = kv;
          arch.score_lanes = lanes;
          arch.mix_lanes = lanes;
          arch.mp_block_rows = rows;
          out.push_back(evaluate(arch));
        }
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const DseCandidate& a, const DseCandidate& b) {
              if (a.fits != b.fits) return a.fits;
              return a.figure_of_merit < b.figure_of_merit;
            });
  return out;
}

DseCandidate DesignSpaceExplorer::best() const {
  const auto all = explore();
  if (all.empty() || !all.front().fits) {
    throw std::runtime_error("no feasible design point in the space");
  }
  return all.front();
}

}  // namespace looplynx::core
