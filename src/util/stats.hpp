// Small statistics helpers shared by benchmarks and reports.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <vector>

namespace looplynx::util {

/// Arithmetic mean; returns 0 for an empty span.
double mean(std::span<const double> values);

/// Geometric mean; values must be positive. Returns 0 for an empty span.
/// The paper's "average speed-up" claims are ratio averages, for which the
/// geometric mean is the correct aggregate.
double geomean(std::span<const double> values);

/// Population standard deviation; returns 0 for fewer than two values.
double stddev(std::span<const double> values);

double min_of(std::span<const double> values);
double max_of(std::span<const double> values);

/// Linear-interpolated percentile, p in [0, 100].
double percentile(std::vector<double> values, double p);

/// The latency percentiles every serving report needs (p50/p95/p99), plus
/// mean and count, computed with a single sort. Empty input yields all
/// zeros; a single sample yields that sample for every percentile.
struct PercentileSummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

PercentileSummary percentile_summary(std::vector<double> values);

/// percentile_summary over samples the caller already sorted ascending —
/// same mean-accumulation and interpolation arithmetic, so the result is
/// bit-identical to percentile_summary on any permutation of `sorted`.
PercentileSummary percentile_summary_presorted(std::span<const double> sorted);

/// In-place ascending LSD radix sort (16-bit digits, high passes skipped
/// once the maximum key is exhausted). The serve layer's million-sample
/// cycle-domain latency vectors sort here in O(n) instead of O(n log n);
/// small inputs fall back to std::sort.
void radix_sort(std::vector<std::uint64_t>& keys);

/// Ascending sort of doubles, radix-accelerated when every value is
/// finite and non-negative with a clear sign bit (IEEE-754 orders such
/// values exactly like their u64 bit patterns; equal values have equal
/// bits, so the result is indistinguishable from std::sort). Anything
/// else — negatives, -0.0, NaN, small inputs — falls back to std::sort.
void sort_ascending(std::vector<double>& values);

/// Time-stamped sample window for rolling-percentile control signals (the
/// serve-layer autoscaler's p99 TTFT). Samples enter in non-decreasing
/// time order and leave from the front as the window slides, so push +
/// evict are O(1) amortized — an evaluation never re-scans samples that
/// already left the window, however long the run gets. percentile() sorts
/// only the samples currently inside the window (cost bounded by window
/// occupancy, not run length).
class SlidingWindow {
 public:
  /// `at` must be >= the previous push's `at` (fleet clocks are monotone).
  void push(double at, double value);

  /// Drops every sample with time < `at` (the trailing window edge).
  void evict_before(double at);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Linear-interpolated percentile over the samples in the window, p in
  /// [0, 100]. Returns 0 for an empty window.
  double percentile(double p) const;

 private:
  std::deque<std::pair<double, double>> samples_;  // (time, value)
};

/// Streaming accumulator (Welford) for mean/variance plus min/max.
class RunningStat {
 public:
  void add(double value);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace looplynx::util
