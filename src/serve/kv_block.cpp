#include "serve/kv_block.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace looplynx::serve {

namespace {
/// HBM2 pseudo-channel capacity on the Alveo U50 (8 GiB / 32 channels).
constexpr std::uint64_t kBytesPerPseudoChannel = 256ULL << 20;
}  // namespace

KvBlockManager::KvBlockManager(const core::ArchConfig& arch,
                               const model::ModelConfig& model,
                               std::uint64_t budget_bytes_per_node,
                               std::uint32_t block_tokens)
    : block_tokens_(block_tokens) {
  if (block_tokens_ == 0) {
    throw std::invalid_argument(
        "kv block_tokens must be >= 1 (1 = token-granular)");
  }
  const std::uint32_t heads_per_node =
      std::max<std::uint32_t>(1, model.n_head / arch.num_nodes);
  // K and V, int8, every layer, this node's heads.
  bytes_per_token_ = 2ULL * model.n_layer * heads_per_node * model.head_dim();
  const std::uint64_t budget =
      budget_bytes_per_node != 0
          ? budget_bytes_per_node
          : static_cast<std::uint64_t>(arch.kv_channels) *
                kBytesPerPseudoChannel;
  const std::uint64_t budget_tokens =
      std::min<std::uint64_t>(budget / bytes_per_token_, UINT32_MAX);
  capacity_blocks_ =
      static_cast<std::uint32_t>(budget_tokens / block_tokens_);
}

bool KvBlockManager::try_grow(KvBlockList& list, std::uint32_t tokens) {
  const std::uint32_t want = blocks_for(tokens);
  if (want > list.blocks) {
    const std::uint32_t add = want - list.blocks;
    if (add > free_blocks()) {
      ++stall_events_;
      return false;
    }
    used_blocks_ += add;
    list.blocks = want;
    peak_used_blocks_ = std::max(peak_used_blocks_, used_blocks_);
  }
  if (tokens > list.committed_tokens) {
    live_tokens_ += tokens - list.committed_tokens;
    list.committed_tokens = tokens;
  }
  peak_frag_tokens_ = std::max(peak_frag_tokens_, frag_tokens());
  return true;
}

void KvBlockManager::release_all(KvBlockList& list) {
  // Releasing blocks the manager never handed out would underflow
  // used_blocks_ and make free_blocks() wrap to ~4 billion, silently
  // disabling admission backpressure. Clamp and count the event so the
  // accounting bug is observable instead of corrupting the fleet.
  std::uint32_t blocks = list.blocks;
  if (blocks > used_blocks_) {
    ++over_release_events_;
    blocks = used_blocks_;
  }
  used_blocks_ -= blocks;
  live_tokens_ -=
      std::min<std::uint64_t>(list.committed_tokens, live_tokens_);
  list = KvBlockList{};
}

void KvBlockManager::transfer_out(KvBlockList& list, std::uint32_t blocks) {
  // A transfer moves full blocks to a new owner; the pool totals are
  // untouched. Taking more full blocks than the list holds (or more
  // committed tokens than it covers) is the same class of caller bug as a
  // bad release — clamp and count it instead of corrupting the list.
  const std::uint64_t tokens =
      static_cast<std::uint64_t>(blocks) * block_tokens_;
  if (blocks > list.blocks || tokens > list.committed_tokens) {
    ++over_release_events_;
    blocks = std::min(blocks, list.blocks);
  }
  list.blocks -= blocks;
  list.committed_tokens -= static_cast<std::uint32_t>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(blocks) * block_tokens_,
      list.committed_tokens));
}

// ---------------------------------------------------------------------------
// PrefixCache
// ---------------------------------------------------------------------------

PrefixCache::PrefixCache(KvBlockManager& kv, const core::StepCostModel& costs,
                         bool swap_enabled)
    : kv_(kv), costs_(costs), swap_enabled_(swap_enabled) {
  // One-way host transfer of one full block: a PCIe turnaround plus the
  // block's bytes at the sustained HBM channel rate (the same burst model
  // hw::DmaEngine charges); DMA descriptor setup is noise next to the
  // sync but kept for fidelity.
  const core::ArchConfig& arch = costs_.arch();
  const double bytes = static_cast<double>(kv_.block_tokens()) *
                       static_cast<double>(kv_.bytes_per_token_per_node());
  swap_transfer_cycles_ =
      arch.host_sync_cycles + arch.dma_setup_cycles +
      static_cast<sim::Cycles>(std::ceil(bytes / arch.hbm_bytes_per_cycle()));
}

std::uint64_t PrefixCache::chain_next(std::uint64_t parent,
                                      std::uint64_t content) {
  util::SplitMix64 sm(parent ^
                      (content + 0x9e3779b97f4a7c15ULL) * 0xbf58476d1ce4e5b9ULL);
  return sm.next();
}

std::uint64_t PrefixCache::content_hash(const workload::Scenario& scenario,
                                        std::uint64_t unique,
                                        std::uint32_t start,
                                        std::uint32_t count) {
  std::uint64_t h = 0x94d049bb133111ebULL ^ count;
  for (std::uint32_t pos = start; pos < start + count; ++pos) {
    h = chain_next(h, workload::prompt_token_id(scenario, unique, pos));
  }
  return h;
}

sim::Cycles PrefixCache::rebuild_cycles(std::uint32_t depth) const {
  const std::uint32_t bt = kv_.block_tokens();
  const std::uint32_t start = std::min(depth * bt, costs_.max_positions());
  const std::uint32_t end = std::min(start + bt, costs_.max_positions());
  return costs_.prefill_chunk_cycles(start, end - start);
}

void PrefixCache::take_ref(std::uint64_t hash, CacheBinding& binding) {
  CachedBlock& b = blocks_.at(hash);
  ++b.refcount;
  binding.chain.push_back(hash);
  binding.owned_tokens += kv_.block_tokens();
  binding.tail_hash = hash;
}

bool PrefixCache::restore(std::uint64_t hash, CachedBlock& block) {
  (void)hash;
  if (kv_.free_blocks() == 0) reclaim(1);
  KvBlockList one;
  if (!kv_.try_grow(one, kv_.block_tokens())) return false;
  block.resident = true;
  // Back in residency: re-pin the parent (acquire restores root-first, so
  // the parent is already resident when its child comes back).
  auto parent_it = blocks_.find(block.parent);
  if (parent_it != blocks_.end()) ++parent_it->second.children;
  ++resident_blocks_;
  ++swap_in_blocks_;
  pending_swap_cycles_ += swap_transfer_cycles_;
  swap_cycles_total_ += swap_transfer_cycles_;
  return true;
}

PrefixHit PrefixCache::acquire(const workload::Scenario& scenario,
                               std::uint64_t unique,
                               std::uint32_t prompt_tokens,
                               std::uint32_t prefill_target,
                               CacheBinding& binding) {
  PrefixHit hit;
  binding = CacheBinding{};
  if (prefill_target == 0) return hit;
  // Never cover the whole prefill target: at least one token is always
  // prefilled so the first-chunk/TTFT path keeps its meaning (vLLM does
  // the same). Only prompt content is content-addressed — a recompute
  // target's folded-in decode tokens are always re-prefilled.
  const std::uint32_t max_cov = std::min(prompt_tokens, prefill_target - 1);
  const std::uint32_t bt = kv_.block_tokens();
  std::uint64_t parent = kNoBlockHash;
  std::uint32_t pos = 0;
  while (pos + bt <= max_cov) {
    const std::uint64_t h =
        chain_next(parent, content_hash(scenario, unique, pos, bt));
    auto it = blocks_.find(h);
    if (it == blocks_.end()) break;
    if (!it->second.resident) {
      if (!restore(h, it->second)) break;
      ++hit.swapped_in;
    }
    take_ref(h, binding);
    ++hit.chain_blocks;
    parent = h;
    pos += bt;
  }
  binding.cached_tokens = pos;
  // Partial tail: a registered divergence point under `parent` whose k
  // tokens match our next k positions resolves as copy-on-write — the
  // sharer gets a private copy (already covered by its own block
  // allocation) and k tokens of prefill credit. Deterministic preference:
  // longest match, then smallest hash.
  auto pit = partials_.find(parent);
  if (pit != partials_.end()) {
    const PartialTail* best = nullptr;
    for (const PartialTail& cand : pit->second) {
      if (cand.tokens == 0 || pos + cand.tokens > max_cov) continue;
      const std::uint64_t h =
          chain_next(parent, content_hash(scenario, unique, pos, cand.tokens));
      if (h != cand.hash) continue;
      if (best == nullptr || cand.tokens > best->tokens ||
          (cand.tokens == best->tokens && cand.hash < best->hash)) {
        best = &cand;
      }
    }
    if (best != nullptr) {
      binding.cached_tokens += best->tokens;
      ++cow_events_;
      hit.cow = true;
    }
  }
  hit.cached_tokens = binding.cached_tokens;
  return hit;
}

void PrefixCache::commit(const workload::Scenario& scenario,
                         std::uint64_t unique, std::uint32_t prompt_done,
                         std::uint32_t prompt_tokens, KvBlockList& list,
                         CacheBinding& binding) {
  const std::uint32_t bt = kv_.block_tokens();
  const std::uint32_t limit = std::min(prompt_done, prompt_tokens);
  while (binding.owned_tokens + bt <= limit) {
    const std::uint32_t start = binding.owned_tokens;
    const std::uint64_t h = chain_next(
        binding.tail_hash, content_hash(scenario, unique, start, bt));
    auto it = blocks_.find(h);
    if (it != blocks_.end()) {
      // A concurrent request committed identical content first: drop our
      // duplicate block back to the pool and share theirs.
      kv_.transfer_out(list, 1);
      KvBlockList dup{1, bt};
      kv_.release_all(dup);
      if (!it->second.resident) {
        // The canonical copy lives on the host; ours was in HBM. Adopt
        // our block as the resident copy instead of re-paying a swap-in
        // later: same pool math as restore, without the transfer.
        KvBlockList one;
        if (kv_.try_grow(one, bt)) {
          it->second.resident = true;
          auto parent_it = blocks_.find(it->second.parent);
          if (parent_it != blocks_.end()) ++parent_it->second.children;
          ++resident_blocks_;
        }
      }
      ++dedup_blocks_;
    } else {
      kv_.transfer_out(list, 1);
      CachedBlock b;
      b.parent = binding.tail_hash;
      b.depth = start / bt;
      b.inserted = tick_++;
      blocks_.emplace(h, b);
      if (binding.tail_hash != kNoBlockHash) {
        auto parent_it = blocks_.find(binding.tail_hash);
        if (parent_it != blocks_.end()) ++parent_it->second.children;
      }
      ++resident_blocks_;
      ++insert_blocks_;
    }
    take_ref(h, binding);
  }
  // Prompt fully prefilled and it ends mid-block: register the tail as a
  // copy-on-write source for followers that extend this exact prefix.
  if (prompt_done >= prompt_tokens && !binding.partial_registered) {
    const std::uint32_t k = prompt_tokens - binding.owned_tokens;
    if (k >= 1 && k < bt) {
      const std::uint64_t h = chain_next(
          binding.tail_hash,
          content_hash(scenario, unique, binding.owned_tokens, k));
      std::vector<PartialTail>& reg = partials_[binding.tail_hash];
      bool exists = false;
      for (const PartialTail& p : reg) exists = exists || p.hash == h;
      if (!exists) {
        reg.push_back(PartialTail{h, k, unique});
        binding.partial_registered = true;
        binding.partial_parent = binding.tail_hash;
        binding.partial_hash = h;
      }
    }
  }
}

void PrefixCache::release(CacheBinding& binding) {
  for (std::uint64_t h : binding.chain) {
    auto it = blocks_.find(h);
    if (it == blocks_.end() || it->second.refcount == 0) {
      throw std::logic_error("prefix cache released an unheld reference");
    }
    --it->second.refcount;
  }
  if (binding.partial_registered) {
    auto pit = partials_.find(binding.partial_parent);
    if (pit != partials_.end()) {
      std::erase_if(pit->second, [&](const PartialTail& p) {
        return p.hash == binding.partial_hash;
      });
      if (pit->second.empty()) partials_.erase(pit);
    }
  }
  binding = CacheBinding{};
}

std::uint32_t PrefixCache::reclaim(std::uint32_t blocks) {
  const std::uint32_t bt = kv_.block_tokens();
  std::uint32_t freed = 0;
  while (freed < blocks) {
    // Cost-aware victim scan: cheapest-to-rebuild cached-idle leaf first
    // (refcount 0, no cached children, resident), deterministically
    // tie-broken by insertion order then hash.
    auto victim = blocks_.end();
    sim::Cycles victim_cost = std::numeric_limits<sim::Cycles>::max();
    for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
      const CachedBlock& b = it->second;
      if (b.refcount != 0 || b.children != 0 || !b.resident) continue;
      const sim::Cycles cost = rebuild_cycles(b.depth);
      if (victim == blocks_.end() || cost < victim_cost ||
          (cost == victim_cost && b.inserted < victim->second.inserted)) {
        victim = it;
        victim_cost = cost;
      }
    }
    if (victim == blocks_.end()) break;
    // Tier decision: keep the KV (swap to host) when a round-trip is
    // cheaper than recomputing it, otherwise discard and let a future
    // miss re-prefill.
    const bool swap_out =
        swap_enabled_ && 2 * swap_transfer_cycles_ < victim_cost;
    // Either way the victim leaves residency, so its parent's
    // resident-children count drops — a parent whose subtree is entirely
    // swapped out must itself remain evictable/swappable or refcount-0
    // chains would pin the pool forever.
    auto parent_it = blocks_.find(victim->second.parent);
    if (parent_it != blocks_.end() && parent_it->second.children > 0) {
      --parent_it->second.children;
    }
    if (swap_out) {
      victim->second.resident = false;
      ++swap_out_blocks_;
      pending_swap_cycles_ += swap_transfer_cycles_;
      swap_cycles_total_ += swap_transfer_cycles_;
    } else {
      // Erasing may strand already-swapped-out descendants as unreachable
      // map entries (acquire's walk breaks at the missing parent). They
      // hold no pool blocks, so this is memory-only slack until drain().
      blocks_.erase(victim);
      ++evict_blocks_;
    }
    KvBlockList one{1, bt};
    kv_.release_all(one);
    --resident_blocks_;
    ++freed;
  }
  return freed;
}

void PrefixCache::drain() {
  const std::uint32_t bt = kv_.block_tokens();
  for (auto& [h, b] : blocks_) {
    (void)h;
    if (b.refcount != 0) {
      throw std::logic_error("prefix cache drained with live references");
    }
    if (b.resident) {
      KvBlockList one{1, bt};
      kv_.release_all(one);
      --resident_blocks_;
    }
  }
  blocks_.clear();
  partials_.clear();
}

sim::Cycles PrefixCache::take_pending_swap_cycles() {
  const sim::Cycles c = pending_swap_cycles_;
  pending_swap_cycles_ = 0;
  return c;
}

}  // namespace looplynx::serve
