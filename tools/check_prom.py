#!/usr/bin/env python3
"""Validate a Prometheus text-exposition file (the serve layer's
--metrics-out output) against the exposition-format grammar:

 - every non-comment line is `name{labels} value` (or bare `name value`)
   with a legal metric name, legal label names, properly quoted label
   values, and a parseable float/integer value;
 - every sample is preceded by `# HELP` and `# TYPE` lines for its metric
   family, and the TYPE is one of counter|gauge|histogram|summary|untyped;
 - counters never carry negative values;
 - histogram families are complete: bucket counts are nondecreasing in
   `le` order, an `le="+Inf"` bucket exists, and it equals `_count`.

Used by the CI determinism job as a smoke gate on the exporter, and
runnable locally:

    ./build/serve_load --requests=16 --metrics-out=/tmp/m.prom
    python3 tools/check_prom.py /tmp/m.prom
"""
import re
import sys

METRIC_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")
LABEL_PAIR_RE = re.compile(
    r'^(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<val>(?:[^"\\]|\\.)*)"$')
TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def family_of(name):
    """Histogram/summary series map to their family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_value(text):
    if text in ("+Inf", "-Inf", "NaN"):
        return float(text.replace("Inf", "inf").replace("NaN", "nan"))
    return float(text)  # raises ValueError on garbage


def check(path):
    errors = []
    helped, typed = {}, {}
    # family -> list of (le, count); family -> {"count": v, "sum": v}
    buckets, totals = {}, {}
    with open(path, encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.rstrip("\n")
            if not line:
                continue

            def err(msg):
                errors.append(f"{path}:{lineno}: {msg}: {line!r}")

            if line.startswith("# HELP "):
                parts = line.split(" ", 3)
                if len(parts) < 4 or not METRIC_RE.match(parts[2]):
                    err("malformed HELP line")
                else:
                    helped[parts[2]] = parts[3]
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ")
                if len(parts) != 4 or not METRIC_RE.match(parts[2]):
                    err("malformed TYPE line")
                elif parts[3] not in TYPES:
                    err(f"unknown metric type {parts[3]!r}")
                elif parts[2] not in helped:
                    err("TYPE before HELP")
                else:
                    typed[parts[2]] = parts[3]
                continue
            if line.startswith("#"):
                continue  # free-form comment

            m = SAMPLE_RE.match(line)
            if not m:
                err("unparseable sample line")
                continue
            name, fam = m.group("name"), family_of(m.group("name"))
            if fam not in typed:
                err(f"sample for {fam!r} without a preceding TYPE")
                continue
            labels = {}
            if m.group("labels") is not None:
                for pair in filter(None, m.group("labels").split(",")):
                    pm = LABEL_PAIR_RE.match(pair)
                    if not pm:
                        err(f"malformed label pair {pair!r}")
                        break
                    labels[pm.group("key")] = pm.group("val")
            try:
                value = parse_value(m.group("value"))
            except ValueError:
                err(f"unparseable sample value {m.group('value')!r}")
                continue
            kind = typed[fam]
            if kind == "counter" and value < 0:
                err("negative counter value")
            if kind == "histogram":
                if name.endswith("_bucket"):
                    if "le" not in labels:
                        err("histogram bucket without an le label")
                    else:
                        buckets.setdefault(fam, []).append(
                            (labels["le"], value))
                elif name.endswith("_count"):
                    totals.setdefault(fam, {})["count"] = value
                elif name.endswith("_sum"):
                    totals.setdefault(fam, {})["sum"] = value
                else:
                    err("bare sample inside a histogram family")

    for fam, series in sorted(buckets.items()):
        les = [le for le, _ in series]
        if "+Inf" not in les:
            errors.append(f"{path}: histogram {fam} lacks an le=\"+Inf\" "
                          "bucket")
            continue
        counts = [v for _, v in series]
        if any(cur > nxt for cur, nxt in zip(counts, counts[1:])):
            errors.append(f"{path}: histogram {fam} bucket counts decrease "
                          "(buckets must be cumulative)")
        inf_count = dict(series)["+Inf"]
        total = totals.get(fam, {}).get("count")
        if total is None:
            errors.append(f"{path}: histogram {fam} lacks a _count series")
        elif total != inf_count:
            errors.append(f"{path}: histogram {fam} _count {total} != "
                          f"le=\"+Inf\" bucket {inf_count}")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        errors += check(path)
    for e in errors:
        print(f"error: {e}", file=sys.stderr)
    if errors:
        print(f"{len(errors)} exposition-format violation(s)",
              file=sys.stderr)
        return 1
    print(f"ok: {len(argv) - 1} file(s) conform to the exposition format")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
