// Disaggregated prefill/decode walkthrough: the same mixed
// long-prompt/chatty stream is served by every symmetric fleet policy and
// by a role-split fleet of the SAME total node count, at the same seed, so
// the only variable is the topology. On a symmetric replica a 768-token
// whale prompt and the chat decodes it lands among fight for one pipeline:
// every new prompt queues behind running decode iterations, and the TTFT
// tail absorbs the wait. The disaggregated fleet routes fresh arrivals to
// prefill-role replicas only — their batches never carry steady-state
// decodes — and ships each finished prompt's KV blocks to the least-loaded
// decode replica over the ring fabric, so prompt latency and decode
// throughput stop sharing a queue.
//
//   ./disagg_serving [--replicas=4] [--requests=96] [--rate=10] [--seed=3]
//                    [--kv-link-gbps=100] [--help]
//
// Deterministic: same flags, byte-identical output. Exits nonzero if the
// disaggregated fleet fails to beat the best symmetric fleet on p99 TTFT
// at equal total nodes, or regresses SLO-good completions — the
// disaggregation pin.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/arch_config.hpp"
#include "model/config.hpp"
#include "serve/fleet.hpp"
#include "serve/serving_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/mix.hpp"

namespace {

void print_usage() {
  std::cout <<
      "disagg_serving: prefill/decode disaggregation walkthrough.\n"
      "\n"
      "  --replicas=N       total nodes in every fleet (default 4, min 2)\n"
      "  --requests=N       requests in the shared stream (default 96)\n"
      "  --rate=R           Poisson arrival rate per second (default 10)\n"
      "  --seed=N           traffic seed (default 3)\n"
      "  --kv-link-gbps=G   ring-fabric link bandwidth (default 100)\n"
      "  --help             this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  if (cli.has("help")) {
    print_usage();
    return 0;
  }
  const auto replicas =
      static_cast<std::uint32_t>(cli.get_int_or("replicas", 4));
  if (replicas < 2) {
    std::cerr << "disagg_serving: --replicas must be >= 2\n";
    return 1;
  }
  const double kv_link_gbps = cli.get_double_or("kv-link-gbps", 100.0);

  serve::ServingConfig base;
  base.arch = core::ArchConfig::two_node();
  base.model = model::gpt2_medium();
  // Mixed long-prompt/chatty: almost all short chat turns, plus rare
  // [768:128] document-grounded whales whose prompts are 24x longer than
  // the bread and butter. Rare is the point: whale TTFT sets the p99, and
  // with few whales the prefill tier's queue stays short — the tail then
  // measures pure decode interference, not whale-on-whale pileups.
  base.traffic.mix =
      workload::Mix{"long-prompt-chatty",
                    {{workload::make_scenario(32, 96), 0.95},
                     {workload::make_scenario(768, 128), 0.05}}};
  base.traffic.num_requests =
      static_cast<std::uint32_t>(cli.get_int_or("requests", 96));
  base.traffic.arrival_rate_per_s = cli.get_double_or("rate", 10.0);
  base.traffic.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 3));
  base.scheduler.max_batch = 4;
  // Decode-priority batching: running decode streams keep their batch
  // slots until they finish, protecting inter-token latency — the policy a
  // chatty production fleet runs. Its cost is that waiting prompts stall
  // behind long decodes, and THAT is the cost disaggregation removes: a
  // prefill-role replica never holds steady-state decodes, so the policy
  // has nothing to prioritize over fresh prompts.
  base.scheduler.policy = serve::BatchPolicy::kDecodePriority;

  // One shared cost model across every fleet (identical replica hardware).
  const core::StepCostModel costs(base.arch, base.model, 64);

  // ---- Symmetric baselines: every balancer policy at N general nodes ----
  struct Outcome {
    std::string label;
    serve::FleetResult result;
  };
  std::vector<Outcome> symmetric;
  for (const serve::BalancerPolicy policy :
       {serve::BalancerPolicy::kRoundRobin,
        serve::BalancerPolicy::kJoinShortestQueue,
        serve::BalancerPolicy::kKvAware}) {
    const serve::FleetConfig cfg =
        serve::FleetConfig::homogeneous(base, replicas, policy);
    serve::FleetResult r = serve::FleetSim(cfg, costs).run();
    r.to_table(std::string("Symmetric ") + std::to_string(replicas) +
               "x general, balancer " + serve::balancer_policy_name(policy))
        .render(std::cout);
    std::cout << "load imbalance " << util::fmt_fixed(r.load_imbalance, 2)
              << ", TTFT p99 spread "
              << util::fmt_fixed(r.ttft_p99_spread_ms, 1) << " ms\n\n";
    symmetric.push_back(
        {serve::balancer_policy_name(policy), std::move(r)});
  }

  // ---- Disaggregated fleet at the same total node count ----
  // One decode sink; every other node takes fresh arrivals. The balancer
  // is join-shortest-queue over the non-decode replicas.
  serve::FleetConfig disagg_cfg = serve::FleetConfig::homogeneous(
      base, replicas, serve::BalancerPolicy::kJoinShortestQueue);
  disagg_cfg.roles.assign(replicas, serve::ReplicaRole::kPrefill);
  // Half the pool (rounded down, min one) becomes the decode tier.
  const std::uint32_t decode_nodes = replicas / 2 == 0 ? 1 : replicas / 2;
  for (std::uint32_t i = replicas - decode_nodes; i < replicas; ++i) {
    disagg_cfg.roles[i] = serve::ReplicaRole::kDecode;
  }
  disagg_cfg.kv_link.bytes_per_cycle =
      kv_link_gbps * 1e9 / base.arch.frequency_hz;
  serve::FleetResult disagg = serve::FleetSim(disagg_cfg, costs).run();
  {
    std::string roles;
    for (std::size_t i = 0; i < disagg_cfg.roles.size(); ++i) {
      roles += i == 0 ? "" : "/";
      roles += serve::replica_role_name(disagg_cfg.roles[i]);
    }
    disagg.to_table("Disaggregated " + roles + ", kv-link " +
                    util::fmt_fixed(kv_link_gbps, 0) + " GB/s")
        .render(std::cout);
    std::cout << "migrations " << disagg.fleet.kv_migrations << " ("
              << disagg.fleet.kv_migrated_blocks << " blocks, "
              << util::fmt_fixed(
                     static_cast<double>(disagg.fleet.kv_migrate_wire_bytes) /
                         (1024.0 * 1024.0), 1)
              << " MiB on the wire), work steals "
              << disagg.fleet.work_steals << "\n\n";
  }

  // ---- The pin: beat the BEST symmetric fleet, not a strawman ----
  const Outcome* best = &symmetric.front();
  for (const Outcome& o : symmetric) {
    if (o.result.fleet.ttft_ms.p99 < best->result.fleet.ttft_ms.p99) {
      best = &o;
    }
  }
  const serve::FleetMetrics& sym = best->result.fleet;
  const serve::FleetMetrics& dis = disagg.fleet;
  std::cout << "best symmetric (" << best->label << ") vs disaggregated: "
            << "TTFT p99 " << util::fmt_fixed(sym.ttft_ms.p99, 1) << " -> "
            << util::fmt_fixed(dis.ttft_ms.p99, 1) << " ms, SLO-good "
            << sym.slo_good << " -> " << dis.slo_good << " of "
            << dis.offered << "\n";

  const bool all_served =
      dis.completed + dis.rejected == dis.offered &&
      sym.completed + sym.rejected == sym.offered;
  const bool migrated = dis.kv_migrations > 0;
  const bool ttft_wins = dis.ttft_ms.p99 < sym.ttft_ms.p99;
  const bool no_slo_regression = dis.slo_good >= sym.slo_good;
  if (!migrated) std::cout << "FAIL: no KV migrations happened\n";
  if (!ttft_wins) {
    std::cout << "FAIL: disaggregation did not beat the best symmetric "
                 "fleet on p99 TTFT\n";
  }
  if (!no_slo_regression) {
    std::cout << "FAIL: disaggregation regressed SLO-good completions\n";
  }
  return all_served && migrated && ttft_wins && no_slo_regression ? 0 : 1;
}
