// Iteration-level continuous-batching scheduler (the vLLM scheduling model
// adapted to a single time-shared LoopLynx pipeline).
//
// Every iteration the scheduler picks up to max_batch token-steps from the
// admitted (runnable) requests. A prefill step pushes a request's whole
// prompt through the pipeline; a decode step produces one token. Batch
// members occupy the pipeline back to back within the iteration, and the
// per-token host synchronization (PCIe turnaround) is paid once per
// iteration instead of once per token — that amortization is the throughput
// win of batching on this architecture.
//
// Policies:
//  - kPrefillPriority: new requests prefill before queued decodes run.
//    Minimizes TTFT and drains the admission queue fast, at the cost of
//    decode-latency jitter when a long prompt lands mid-stream.
//  - kDecodePriority: in-flight decodes go first; prefills fill leftover
//    batch slots. Smooths per-token latency for running streams, at the
//    cost of TTFT under load.
#pragma once

#include <cstdint>
#include <vector>

#include "serve/request.hpp"
#include "sim/engine.hpp"

namespace looplynx::serve {

enum class BatchPolicy : std::uint8_t {
  kPrefillPriority,
  kDecodePriority,
};

struct SchedulerConfig {
  std::uint32_t max_batch = 8;      // token-steps per iteration
  std::uint32_t max_in_flight = 64; // admitted requests resident at once
  std::uint32_t queue_capacity = 256;  // admission queue bound (shedding)
  BatchPolicy policy = BatchPolicy::kPrefillPriority;
  /// Host-side batch assembly cost added to every iteration, on top of the
  /// per-stage scheduler overhead already inside the node model.
  sim::Cycles iteration_overhead_cycles = 0;
};

/// What one scheduler iteration did — the audit trail the interleaving
/// tests and utilization metrics read.
struct IterationRecord {
  sim::Cycles start = 0;
  sim::Cycles span = 0;  // overhead + batch pipeline occupancy + host sync
  std::uint32_t prefills = 0;
  std::uint32_t decodes = 0;

  std::uint32_t batch_size() const { return prefills + decodes; }
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerConfig config) : config_(config) {}

  const SchedulerConfig& config() const { return config_; }

  /// Selects this iteration's batch from `runnable` (admitted requests not
  /// currently mid-step), honoring the policy and max_batch. Selected
  /// requests are removed from `runnable`; relative FIFO order within each
  /// class is preserved.
  std::vector<Request*> select(std::vector<Request*>& runnable) const;

  void record(IterationRecord record) { iterations_.push_back(record); }
  const std::vector<IterationRecord>& iterations() const {
    return iterations_;
  }

  double mean_batch_size() const;

 private:
  SchedulerConfig config_;
  std::vector<IterationRecord> iterations_;
};

}  // namespace looplynx::serve
