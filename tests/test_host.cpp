// Tests for the host runtime: tokenizer, sampler, end-to-end serving loop.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/arch_config.hpp"
#include "host/sampler.hpp"
#include "host/serving.hpp"
#include "host/tokenizer.hpp"
#include "model/config.hpp"
#include "model/weights.hpp"
#include "quant/int8_model.hpp"
#include "util/rng.hpp"

namespace looplynx::host {
namespace {

constexpr std::string_view kCorpus =
    "the quick brown fox jumps over the lazy dog. the quick brown fox "
    "jumps over the lazy dog again and again and again. loop lynx loop "
    "lynx dataflow dataflow dataflow architecture architecture.";

TEST(TokenizerTest, ByteLevelRoundTripsAnyString) {
  const Tokenizer t = Tokenizer::byte_level();
  EXPECT_EQ(t.vocab_size(), 257u);
  EXPECT_EQ(t.eos_id(), 256u);
  const std::string text("hello \xF0\x9F\xA6\x8A world\n\t\0x", 17);
  EXPECT_EQ(t.decode(t.encode(text)), text);
  EXPECT_EQ(t.encode("ab").size(), 2u);
}

TEST(TokenizerTest, TrainingLearnsMerges) {
  const Tokenizer t = Tokenizer::train(kCorpus, 300);
  EXPECT_GT(t.num_merges(), 0u);
  EXPECT_LE(t.vocab_size(), 300u);
  EXPECT_EQ(t.eos_id(), t.vocab_size() - 1);
  // Merges compress a string the corpus repeats heavily.
  const Tokenizer bytes = Tokenizer::byte_level();
  const std::string phrase = "the quick brown fox";
  EXPECT_LT(t.encode(phrase).size(), bytes.encode(phrase).size());
}

TEST(TokenizerTest, TrainedRoundTripIsExact) {
  const Tokenizer t = Tokenizer::train(kCorpus, 320);
  for (const std::string& text :
       {std::string("the quick brown fox"), std::string("dataflow"),
        std::string("unrelated WORDS ! 123"), std::string(""),
        std::string("\x01\x02\xff binary \x00 ok", 15)}) {
    EXPECT_EQ(t.decode(t.encode(text)), text);
  }
}

TEST(TokenizerTest, EncodeNeverEmitsEos) {
  const Tokenizer t = Tokenizer::train(kCorpus, 280);
  for (std::uint32_t id : t.encode(std::string(kCorpus))) {
    EXPECT_NE(id, t.eos_id());
  }
}

TEST(TokenizerTest, DecodeStopsAtEos) {
  const Tokenizer t = Tokenizer::byte_level();
  const std::vector<std::uint32_t> ids{'h', 'i', t.eos_id(), 'x'};
  EXPECT_EQ(t.decode(ids), "hi");
}

TEST(SamplerTest, GreedyPicksArgmax) {
  Sampler s;  // top_k = 0
  const std::vector<float> logits{0.1f, 2.5f, -1.0f, 2.4f};
  EXPECT_EQ(s.sample(logits), 1u);
  EXPECT_EQ(Sampler::argmax(logits), 1u);
}

TEST(SamplerTest, TopKOnlyPicksFromTopK) {
  SamplerConfig cfg;
  cfg.top_k = 2;
  cfg.seed = 9;
  Sampler s(cfg);
  const std::vector<float> logits{5.0f, 4.9f, -10.0f, -10.0f};
  for (int i = 0; i < 200; ++i) {
    const auto pick = s.sample(logits);
    EXPECT_TRUE(pick == 0 || pick == 1);
  }
}

TEST(SamplerTest, TemperatureControlsEntropy) {
  const std::vector<float> logits{2.0f, 1.0f, 0.0f, -1.0f};
  auto spread = [&](float temp) {
    SamplerConfig cfg;
    cfg.top_k = 4;
    cfg.temperature = temp;
    cfg.seed = 11;
    Sampler s(cfg);
    std::map<std::uint32_t, int> counts;
    for (int i = 0; i < 2000; ++i) ++counts[s.sample(logits)];
    return counts;
  };
  const auto cold = spread(0.1f);
  const auto hot = spread(10.0f);
  // Cold sampling concentrates on the argmax; hot approaches uniform.
  EXPECT_GT(cold.at(0), 1900);
  EXPECT_GT(hot.count(3) ? hot.at(3) : 0, 200);
}

TEST(SamplerTest, DeterministicForSeed) {
  SamplerConfig cfg;
  cfg.top_k = 3;
  const std::vector<float> logits{1.0f, 0.9f, 0.8f, 0.7f};
  Sampler a(cfg), b(cfg);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.sample(logits), b.sample(logits));
}

class ServingTest : public ::testing::Test {
 protected:
  static quant::Gpt2Int8Weights make_weights() {
    model::ModelConfig cfg = model::cosim_config();
    cfg.vocab_size = 512;  // room for a trained tokenizer vocabulary
    const auto w = model::Gpt2Weights::random(cfg, 77);
    util::Rng rng(78);
    std::vector<std::uint32_t> calib(24);
    for (auto& t : calib) {
      t = static_cast<std::uint32_t>(rng.next_below(cfg.vocab_size));
    }
    return quant::Gpt2Int8Weights::build_with_calibration(w, calib);
  }
};

TEST_F(ServingTest, RejectsOversizedTokenizer) {
  const auto weights = make_weights();  // vocab 512
  const Tokenizer big = Tokenizer::train(std::string(kCorpus), 1024);
  if (big.vocab_size() > weights.config.vocab_size) {
    EXPECT_THROW(Host(weights, big, core::ArchConfig::two_node()),
                 std::invalid_argument);
  }
  EXPECT_NO_THROW(
      Host(weights, Tokenizer::byte_level(), core::ArchConfig::two_node()));
}

TEST_F(ServingTest, ServesARequestEndToEnd) {
  const auto weights = make_weights();
  Host host(weights, Tokenizer::byte_level(), core::ArchConfig::two_node());
  ServeRequest req;
  req.prompt = "loop";
  req.max_new_tokens = 8;
  std::vector<std::uint32_t> streamed;
  const ServeResult res =
      host.serve(req, [&](std::uint32_t id) { streamed.push_back(id); });
  EXPECT_EQ(res.prompt_ids.size(), 4u);
  EXPECT_LE(res.output_ids.size(), 8u);
  EXPECT_EQ(streamed, res.output_ids);
  EXPECT_EQ(res.text, host.tokenizer().decode(res.output_ids));
  EXPECT_GT(res.total_ms, 0.0);
  EXPECT_GT(res.decode_tokens_per_s, 0.0);
  EXPECT_NEAR(res.total_ms, res.prefill_ms + res.decode_ms, 1e-9);
}

TEST_F(ServingTest, GreedyServingIsDeterministic) {
  const auto weights = make_weights();
  Host a(weights, Tokenizer::byte_level(), core::ArchConfig::one_node());
  Host b(weights, Tokenizer::byte_level(), core::ArchConfig::four_node());
  ServeRequest req;
  req.prompt = "fox";
  req.max_new_tokens = 6;
  // Different deployments, identical arithmetic => identical text.
  EXPECT_EQ(a.serve(req).text, b.serve(req).text);
}

TEST_F(ServingTest, LongerRequestsTakeLonger) {
  const auto weights = make_weights();
  Host host(weights, Tokenizer::byte_level(), core::ArchConfig::one_node());
  ServeRequest small;
  small.prompt = "dog";
  small.max_new_tokens = 4;
  ServeRequest large;
  large.prompt = "dog jumps over the lazy fox";
  large.max_new_tokens = 16;
  const ServeResult r_small = host.serve(small);
  const ServeResult r_large = host.serve(large);
  EXPECT_GT(r_large.prefill_ms, r_small.prefill_ms);
  if (!r_small.hit_eos && !r_large.hit_eos) {
    EXPECT_GT(r_large.decode_ms, r_small.decode_ms);
  }
}

TEST_F(ServingTest, TinyModelDoesNotBenefitFromScaleOut) {
  // At d_model 64 the per-node matrix blocks are so small that ring
  // synchronization outweighs the split compute — the inverse of the
  // GPT-2-scale behaviour, and exactly the paper's "increase the workload
  // assigned to each node" remark.
  const auto weights = make_weights();
  ServeRequest req;
  req.prompt = "dog";
  req.max_new_tokens = 6;
  Host one(weights, Tokenizer::byte_level(), core::ArchConfig::one_node());
  Host four(weights, Tokenizer::byte_level(), core::ArchConfig::four_node());
  EXPECT_LT(one.serve(req).total_ms, four.serve(req).total_ms);
}

}  // namespace
}  // namespace looplynx::host
