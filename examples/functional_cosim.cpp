// Functional co-simulation demo: proves the distributed accelerator's
// arithmetic. Runs the same prompt through (1) the fp32 reference, (2) the
// single-device W8A8 model, and (3) the multi-node functional accelerator,
// then reports token agreement and numeric drift.
//
//   ./functional_cosim [--nodes=4] [--tokens=24] [--seed=7]
#include <cmath>
#include <iostream>
#include <vector>

#include "core/functional_system.hpp"
#include "model/config.hpp"
#include "model/gpt2_ref.hpp"
#include "model/weights.hpp"
#include "quant/int8_model.hpp"
#include "quant/quant.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(cli.get_int_or("nodes", 4));
  const auto n_tokens =
      static_cast<std::uint32_t>(cli.get_int_or("tokens", 24));
  const auto seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 7));

  const model::ModelConfig cfg = model::cosim_config();
  std::cout << "model: " << cfg.n_layer << " layers, d_model " << cfg.d_model
            << ", " << cfg.n_head << " heads, vocab " << cfg.vocab_size
            << "; " << nodes << " accelerator nodes\n\n";

  const auto weights = model::Gpt2Weights::random(cfg, seed);
  util::Rng rng(seed + 1);
  std::vector<std::uint32_t> calibration(32);
  for (auto& t : calibration) {
    t = static_cast<std::uint32_t>(rng.next_below(cfg.vocab_size));
  }
  const auto quantized =
      quant::Gpt2Int8Weights::build_with_calibration(weights, calibration);

  model::Gpt2Reference fp32(weights);
  quant::Gpt2Int8 int8(quantized);
  core::FunctionalSystem dist(quantized, nodes);

  const std::vector<std::uint32_t> prompt{11, 22, 33, 44};
  std::vector<float> h_fp32, h_int8, h_dist;
  for (std::uint32_t t : prompt) {
    h_fp32 = fp32.forward_token(t);
    h_int8 = int8.forward_token(t);
    h_dist = dist.forward_token(t);
  }

  std::uint32_t greedy_agree = 0;
  std::uint32_t bitexact_steps = 0;
  double worst_rel_l2 = 0;
  for (std::uint32_t i = 0; i < n_tokens; ++i) {
    const std::uint32_t next_int8 = int8.argmax_token(h_int8);
    const std::uint32_t next_dist = dist.argmax_token(h_dist);
    const std::uint32_t next_fp32 = fp32.argmax_token(h_fp32);
    greedy_agree += (next_int8 == next_fp32);
    bool bitexact = h_int8.size() == h_dist.size();
    for (std::size_t j = 0; bitexact && j < h_int8.size(); ++j) {
      bitexact = (h_int8[j] == h_dist[j]);
    }
    bitexact_steps += bitexact;
    worst_rel_l2 =
        std::max(worst_rel_l2, quant::compare(h_fp32, h_int8).rel_l2);
    if (next_dist != next_int8) {
      std::cout << "!! distributed/single-device divergence at step " << i
                << "\n";
    }
    h_fp32 = fp32.forward_token(next_fp32);
    h_int8 = int8.forward_token(next_int8);
    h_dist = dist.forward_token(next_dist);
  }

  util::Table t("Co-simulation results over " + std::to_string(n_tokens) +
                " generated tokens");
  t.set_header({"check", "result"});
  t.add_row({"distributed == single-device (bitwise)",
             std::to_string(bitexact_steps) + "/" + std::to_string(n_tokens) +
                 " steps"});
  t.add_row({"W8A8 greedy tokens == fp32 greedy tokens",
             std::to_string(greedy_agree) + "/" + std::to_string(n_tokens)});
  t.add_row({"worst-case hidden-state rel. L2 (int8 vs fp32)",
             util::fmt_fixed(worst_rel_l2, 4)});
  t.add_row({"ring packs exchanged",
             util::fmt_int(static_cast<long long>(dist.ring_packs()))});
  t.render(std::cout);

  if (bitexact_steps != n_tokens) {
    std::cout << "\nFAILED: the distributed accelerator must be bit-exact.\n";
    return 1;
  }
  std::cout << "\nThe " << nodes
            << "-node accelerator is arithmetically indistinguishable from "
               "the single-device model;\nquantization error vs fp32 stays "
               "bounded (SmoothQuant W8A8).\n";
  return 0;
}
