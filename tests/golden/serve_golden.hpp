// Checked-in SHA-256 digests of the canonical serve-layer determinism
// sweep and the canonical observed export. Regenerate with
// tools/regen_determinism_golden.sh after an *intentional* serve-layer
// behavior change — never to paper over an unexplained diff (that diff
// IS the determinism regression the fixture exists to catch).
#pragma once

namespace looplynx::golden {

inline constexpr char kServeSweepSha256[] =
    "cf29e60925ba80b757830c239ca3a536e0690809e5f44f4f6a154386f21faa41";

/// Canonical Chrome-trace + Prometheus exports of two observed sweep
/// points; pins every byte both exporters emit (DESIGN.md §7).
inline constexpr char kObserveExportSha256[] =
    "64b5e4cbd55c373b537d077f4bfb23cfdc18650d5465d832f531e2b2f04280d1";

}  // namespace looplynx::golden
