// Token samplers for the host decode loop.
#pragma once

#include <cstdint>
#include <span>

#include "util/rng.hpp"

namespace looplynx::host {

struct SamplerConfig {
  /// 0 = greedy argmax. k > 0 samples from the k most likely tokens.
  std::uint32_t top_k = 0;
  /// Softmax temperature (>0); only used when sampling.
  float temperature = 1.0f;
  std::uint64_t seed = 0x5eedULL;
};

class Sampler {
 public:
  explicit Sampler(SamplerConfig config = {});

  /// Picks the next token from raw logits.
  std::uint32_t sample(std::span<const float> logits);

  static std::uint32_t argmax(std::span<const float> logits);

  const SamplerConfig& config() const { return config_; }

 private:
  SamplerConfig config_;
  util::Rng rng_;
};

}  // namespace looplynx::host
