#include "serve/autoscaler.hpp"

#include <stdexcept>

namespace looplynx::serve {

ScalePolicy parse_scale_policy(const std::string& name) {
  if (name == "queue") return ScalePolicy::kQueueDepth;
  if (name == "slo") return ScalePolicy::kSloTtft;
  if (name == "hybrid") return ScalePolicy::kHybrid;
  throw std::invalid_argument("unknown autoscale policy \"" + name +
                              "\" (expected queue|slo|hybrid)");
}

const char* scale_policy_name(ScalePolicy policy) {
  switch (policy) {
    case ScalePolicy::kQueueDepth:
      return "queue";
    case ScalePolicy::kSloTtft:
      return "slo";
    case ScalePolicy::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

const char* scale_trigger_name(ScaleTrigger trigger) {
  switch (trigger) {
    case ScaleTrigger::kQueueHigh:
      return "queue-high";
    case ScaleTrigger::kQueueLow:
      return "queue-low";
    case ScaleTrigger::kTtftHigh:
      return "ttft-high";
    case ScaleTrigger::kTtftLow:
      return "ttft-low";
  }
  return "unknown";
}

AutoscalerConfig tier_autoscaler_config(const AutoscalerConfig& fleet,
                                        std::size_t tier, bool decode_tier) {
  AutoscalerConfig cfg = fleet;
  if (!fleet.tier_min.empty()) {
    cfg.min_replicas = fleet.tier_min.at(tier);
  }
  if (!fleet.tier_max.empty()) {
    cfg.max_replicas = fleet.tier_max.at(tier);
  }
  cfg.tier_min.clear();
  cfg.tier_max.clear();
  if (decode_tier) cfg.policy = ScalePolicy::kQueueDepth;
  return cfg;
}

Autoscaler::Autoscaler(const AutoscalerConfig& config, const SloConfig& slo)
    : config_(config),
      ttft_high_(config.ttft_high_ms > 0 ? config.ttft_high_ms : slo.ttft_ms),
      ttft_low_(config.ttft_low_ms > 0 ? config.ttft_low_ms
                                       : 0.5 * slo.ttft_ms) {}

Autoscaler::Decision Autoscaler::evaluate(const ScaleSignals& signals) {
  if (cooldown_ > 0) {
    // Refractory period after a scale event: the fleet needs time to
    // absorb the change before the signals mean anything again. Streaks
    // do not accumulate during cooldown, so a burst cannot "bank" scale
    // events while the controller is holding.
    --cooldown_;
    return {};
  }
  const bool queue_up = signals.queue_per_live > config_.queue_high;
  const bool queue_down = signals.queue_per_live < config_.queue_low;
  // An empty window means nothing finished recently: for scale-up there
  // is no tail to defend, for scale-down it reads as idle.
  const bool ttft_up =
      signals.ttft_samples > 0 && signals.ttft_p99_ms > ttft_high_;
  const bool ttft_down =
      signals.ttft_samples == 0 || signals.ttft_p99_ms < ttft_low_;

  bool up = false, down = false;
  switch (config_.policy) {
    case ScalePolicy::kQueueDepth:
      up = queue_up;
      down = queue_down;
      break;
    case ScalePolicy::kSloTtft:
      up = ttft_up;
      down = ttft_down;
      break;
    case ScalePolicy::kHybrid:
      // Grow on the fastest alarm, release only when both are quiet.
      up = queue_up || ttft_up;
      down = queue_down && ttft_down;
      break;
  }

  if (up) {
    if (up_streak_ < config_.up_evals) ++up_streak_;  // saturate, no overflow
    down_streak_ = 0;
  } else if (down) {
    if (down_streak_ < config_.down_evals) ++down_streak_;
    up_streak_ = 0;
  } else {
    up_streak_ = 0;
    down_streak_ = 0;
  }

  // Attribute the event to the signal the policy actually acted on: the
  // pure-SLO policy never reports a queue trigger, and hybrid names the
  // queue signal when it participated (it is the faster alarm).
  const bool queue_signals = config_.policy != ScalePolicy::kSloTtft;
  if (up_streak_ >= config_.up_evals && signals.live < config_.max_replicas) {
    up_streak_ = 0;
    down_streak_ = 0;
    cooldown_ = config_.cooldown_evals;
    return {+1, queue_signals && queue_up ? ScaleTrigger::kQueueHigh
                                          : ScaleTrigger::kTtftHigh};
  }
  if (down_streak_ >= config_.down_evals &&
      signals.live > config_.min_replicas) {
    up_streak_ = 0;
    down_streak_ = 0;
    cooldown_ = config_.cooldown_evals;
    return {-1, queue_signals && queue_down ? ScaleTrigger::kQueueLow
                                            : ScaleTrigger::kTtftLow};
  }
  return {};
}

}  // namespace looplynx::serve
