// Fleet-level autoscaling: a deterministic control loop that grows and
// shrinks the live replica set of a FleetSim run against load signals.
//
// The autoscaler is evaluated on the shared fleet clock every
// eval_interval_ms. Each evaluation reads two window-scoped signals —
// per-live-replica queue depth (the peak since the previous evaluation,
// RequestQueue::take_window_peak) and the rolling-window p99 TTFT
// (util::SlidingWindow, fed at token emission, never re-scanned from full
// records) — and decides grow / hold / shrink under the configured policy.
//
// Semantics the determinism tests pin:
//  - The live replica set is always a prefix *within each tier* (replicas
//    grouped by ReplicaRole; a symmetric fleet is one tier holding every
//    replica, and its tier prefix IS the legacy index prefix [0, live)).
//    Scale-up activates the lowest-index inactive replica of the tier,
//    scale-down drains the tier's highest-index live one. Combined with
//    the LoadBalancer's lowest-active-index tie-breaks, a FleetConfig
//    fully determines the scale-event log byte for byte.
//  - Draining is graceful: a deactivated replica stops receiving routed
//    arrivals (the balancer masks it) but keeps its scheduler running
//    until every request already routed to it has finished. Its occupancy
//    until that drain instant still counts toward FleetResult's
//    replica-cycles cost metric.
//  - Hysteresis: a scale decision needs `up_evals` (resp. `down_evals`)
//    *consecutive* evaluations past the high (low) water mark, and every
//    scale event starts a `cooldown_evals` refractory period in which the
//    controller holds. One replica per event — no step scaling — so runs
//    remain insensitive to signal magnitude beyond the threshold crossing.
//  - Autoscaling disabled (the default) changes nothing: no control
//    coroutine is spawned, no window is attached, and fleet output stays
//    byte-identical to the static-fleet engine.
//
// The decision core (Autoscaler::evaluate) is a pure function of its
// signal snapshot plus the controller's own streak/cooldown state — no
// clock reads, no randomness — so the hysteresis rules are unit-testable
// without an engine (tests/test_autoscaler.cpp), like LoadBalancer::pick.
//
// Architecture notes: DESIGN.md §6.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/metrics.hpp"
#include "sim/engine.hpp"

namespace looplynx::serve {

/// Which load signal drives scale decisions.
enum class ScalePolicy : std::uint8_t {
  /// Queue depth per live replica: up when the window-peak depth exceeds
  /// `queue_high` for `up_evals` consecutive evaluations, down on
  /// `queue_low`. Reacts before latency degrades, but blind to SLO slack.
  kQueueDepth,
  /// Rolling-window p99 TTFT against the fleet SLO: up when the window
  /// p99 exceeds `ttft_high_ms`, down when it is below `ttft_low_ms` (or
  /// the window is empty — an idle fleet has no tail to defend).
  /// Tracks the contract directly, but lags the queue signal by the
  /// service time already committed.
  kSloTtft,
  /// Grow on either signal, shrink only when both agree — the
  /// conservative composition: capacity follows the fastest alarm and
  /// releases only when queue and tail are both quiet.
  kHybrid,
};

/// CLI-facing policy names ("queue" | "slo" | "hybrid"), shared by the
/// bench and example surfaces. Throws std::invalid_argument on an unknown
/// name.
ScalePolicy parse_scale_policy(const std::string& name);
const char* scale_policy_name(ScalePolicy policy);

struct AutoscalerConfig {
  /// Disabled by default: FleetSim then runs the static fleet unchanged
  /// (byte-identical output — the CI gate's baseline).
  bool enabled = false;
  ScalePolicy policy = ScalePolicy::kHybrid;
  /// Live-replica bounds (symmetric fleets). The fleet starts at
  /// min_replicas; FleetConfig::replicas must hold exactly max_replicas
  /// configs. On a disaggregated fleet these scalars are ignored — the
  /// per-tier lists below rule.
  std::uint32_t min_replicas = 1;
  std::uint32_t max_replicas = 1;
  /// Per-tier live bounds for disaggregated fleets, aligned with the
  /// fleet's tier order (distinct FleetConfig::roles in first-appearance
  /// order — `--min-replicas=2,1 --max-replicas=4,3` with
  /// `--roles=prefill,...,decode,...`). Empty (the default) selects
  /// min 1 / max <tier pool size> per tier; non-empty lists must name
  /// every tier, and each tier's max must equal its pool size (the roles
  /// list is the scale ceiling). Ignored on symmetric fleets, where the
  /// scalar bounds above rule.
  std::vector<std::uint32_t> tier_min;
  std::vector<std::uint32_t> tier_max;
  /// Control-loop period on the shared fleet clock.
  double eval_interval_ms = 50.0;

  // ---- Queue-depth watermarks (per live replica, window-peak) ----
  double queue_high = 4.0;
  double queue_low = 0.5;

  // ---- SLO-TTFT watermarks ----
  /// Rolling TTFT sample window the p99 is computed over.
  double ttft_window_ms = 250.0;
  /// Scale-up / scale-down thresholds for the window p99 TTFT. 0 selects
  /// the defaults: the fleet's SloConfig::ttft_ms, and half of it.
  double ttft_high_ms = 0;
  double ttft_low_ms = 0;

  // ---- Hysteresis ----
  std::uint32_t up_evals = 2;    // consecutive high evals before growing
  std::uint32_t down_evals = 4;  // consecutive low evals before shrinking
  std::uint32_t cooldown_evals = 3;  // hold-off after any scale event
};

/// Why a scale event fired (recorded in FleetResult::scale_events).
enum class ScaleTrigger : std::uint8_t {
  kQueueHigh,  // per-replica queue depth over the high-water mark
  kQueueLow,   // queue depth under the low-water mark
  kTtftHigh,   // window p99 TTFT over the SLO threshold
  kTtftLow,    // window p99 TTFT under the release threshold (or idle)
};
const char* scale_trigger_name(ScaleTrigger trigger);

/// One live-set change, in fleet-clock order. `from` -> `to` are the
/// *tier's* live counts and always differ by exactly one replica; the log
/// chains per tier and is monotone in `at` (pinned in
/// tests/test_serve_invariants.cpp). On a symmetric fleet there is exactly
/// one tier, so `from`/`to` coincide with the fleet-wide live counts and
/// the log is byte-identical to the pre-tier autoscaler's.
struct ScaleEvent {
  sim::Cycles at = 0;  // fleet clock when the decision fired
  double at_ms = 0;
  std::uint32_t from = 0;
  std::uint32_t to = 0;
  ScaleTrigger trigger = ScaleTrigger::kQueueHigh;
  /// Which tier scaled (index into FleetResult::tiers; 0 on symmetric
  /// fleets, whose single tier is the whole fleet).
  std::uint32_t tier = 0;
};

/// The signal snapshot one evaluation consumes.
struct ScaleSignals {
  std::uint32_t live = 1;
  /// Mean over live replicas of each queue's peak depth since the last
  /// evaluation (window-scoped, not all-time — RequestQueue keeps both).
  double queue_per_live = 0;
  /// p99 of the TTFT samples inside the rolling window; meaningless when
  /// ttft_samples == 0.
  double ttft_p99_ms = 0;
  std::size_t ttft_samples = 0;
};

/// The hysteresis state machine. evaluate() is deterministic: the same
/// signal sequence always produces the same decision sequence.
class Autoscaler {
 public:
  /// `slo` supplies the ttft_high_ms / ttft_low_ms defaults when the
  /// config leaves them at 0.
  Autoscaler(const AutoscalerConfig& config, const SloConfig& slo);

  struct Decision {
    int delta = 0;  // +1 grow, -1 shrink, 0 hold
    ScaleTrigger trigger = ScaleTrigger::kQueueHigh;  // valid when delta != 0
  };

  /// Advances the streak/cooldown state by one evaluation and returns the
  /// decision. Never steps outside [min_replicas, max_replicas].
  Decision evaluate(const ScaleSignals& signals);

  const AutoscalerConfig& config() const { return config_; }
  double ttft_high_ms() const { return ttft_high_; }
  double ttft_low_ms() const { return ttft_low_; }
  std::uint32_t cooldown_remaining() const { return cooldown_; }

 private:
  AutoscalerConfig config_;
  double ttft_high_ = 0;
  double ttft_low_ = 0;
  std::uint32_t up_streak_ = 0;
  std::uint32_t down_streak_ = 0;
  std::uint32_t cooldown_ = 0;
};

/// The per-tier controller config one fleet-level AutoscalerConfig
/// expands into: shared knobs (policy, interval, watermarks, hysteresis)
/// copied verbatim, the tier's own min/max bounds promoted into the
/// scalar fields (tier lists empty ⇒ the scalars pass through untouched,
/// which is exactly the symmetric single-tier case), and — for decode
/// tiers — the policy forced to kQueueDepth: decode replicas receive no
/// fresh arrivals, so no TTFT ever forms on them (the shared rolling
/// window samples first tokens, which are emitted on the prefill side);
/// their natural control signal is the migrated-in backlog depth. A pure
/// function, unit-tested without an engine (tests/test_autoscaler.cpp).
AutoscalerConfig tier_autoscaler_config(const AutoscalerConfig& fleet,
                                        std::size_t tier, bool decode_tier);

}  // namespace looplynx::serve
