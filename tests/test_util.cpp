// Tests for util: tables, stats, rng, cli, units, csv.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace looplynx::util {
namespace {

TEST(TableTest, RendersAlignedAscii) {
  Table t("Demo");
  t.set_header({"Arch", "Latency"});
  t.add_row({"LoopLynx", "2.55"});
  t.add_row({"DFX", "5.37"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("== Demo =="), std::string::npos);
  EXPECT_NE(s.find("| Arch     |"), std::string::npos);
  EXPECT_NE(s.find("| LoopLynx |"), std::string::npos);
  EXPECT_NE(s.find("|    2.55 |"), std::string::npos);  // right aligned
}

TEST(TableTest, MarkdownOutputHasAlignmentRow) {
  Table t;
  t.set_header({"a", "b"});
  t.add_row({"x", "1"});
  std::ostringstream os;
  t.render_markdown(os);
  EXPECT_NE(os.str().find("| --- | ---: |"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t;
  t.set_header({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.num_rows(), 1u);
  EXPECT_NO_THROW(t.to_string());
}

TEST(FormatTest, Fixed) { EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14"); }
TEST(FormatTest, Speedup) { EXPECT_EQ(fmt_speedup(2.5248, 2), "2.52x"); }
TEST(FormatTest, Percent) { EXPECT_EQ(fmt_percent(0.481, 1), "48.1%"); }
TEST(FormatTest, Int) {
  EXPECT_EQ(fmt_int(12288), "12,288");
  EXPECT_EQ(fmt_int(-1234567), "-1,234,567");
  EXPECT_EQ(fmt_int(0), "0");
  EXPECT_EQ(fmt_int(999), "999");
}
TEST(FormatTest, Kilo) {
  EXPECT_EQ(fmt_kilo(312000), "312K");
  EXPECT_EQ(fmt_kilo(1234567), "1.2M");
  EXPECT_EQ(fmt_kilo(42), "42");
}

TEST(StatsTest, MeanAndGeomean) {
  const double vals[] = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(vals), 7.0 / 3.0);
  EXPECT_NEAR(geomean(vals), 2.0, 1e-12);
}

TEST(StatsTest, EmptyInputsAreZero) {
  EXPECT_EQ(mean({}), 0.0);
  EXPECT_EQ(geomean({}), 0.0);
  EXPECT_EQ(stddev({}), 0.0);
}

TEST(StatsTest, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 2.0);
}

TEST(StatsTest, PercentileSummaryMatchesPercentile) {
  const std::vector<double> v{5, 1, 4, 2, 3, 9, 8, 7, 6, 10};
  const PercentileSummary s = percentile_summary(v);
  EXPECT_EQ(s.count, 10u);
  EXPECT_DOUBLE_EQ(s.mean, 5.5);
  EXPECT_DOUBLE_EQ(s.p50, percentile(v, 50));
  EXPECT_DOUBLE_EQ(s.p95, percentile(v, 95));
  EXPECT_DOUBLE_EQ(s.p99, percentile(v, 99));
}

TEST(StatsTest, PercentileSummaryEmptyIsAllZero) {
  const PercentileSummary s = percentile_summary({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.p50, 0.0);
  EXPECT_EQ(s.p95, 0.0);
  EXPECT_EQ(s.p99, 0.0);
}

TEST(StatsTest, PercentileSummarySingleElementIsThatElement) {
  const PercentileSummary s = percentile_summary({7.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.p50, 7.5);
  EXPECT_DOUBLE_EQ(s.p95, 7.5);
  EXPECT_DOUBLE_EQ(s.p99, 7.5);
}

TEST(StatsTest, RunningStatMatchesBatch) {
  RunningStat rs;
  const double vals[] = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  for (double v : vals) rs.add(v);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_NEAR(rs.mean(), mean(vals), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(vals), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformDoubleInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NormalHasRoughlyUnitMoments) {
  Rng r(123);
  RunningStat rs;
  for (int i = 0; i < 20000; ++i) rs.add(r.normal());
  EXPECT_NEAR(rs.mean(), 0.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.05);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(CliTest, ParsesKeyValueForms) {
  const char* argv[] = {"prog", "positional", "--nodes=4", "--freq=285",
                        "--verbose"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int_or("nodes", 0), 4);
  EXPECT_EQ(cli.get_int_or("freq", 0), 285);
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_TRUE(cli.get_bool_or("verbose", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
  EXPECT_EQ(cli.get_int_or("missing", -1), -1);
  EXPECT_EQ(cli.get_or("missing", "dflt"), "dflt");
}

TEST(CliTest, ParsesSpaceSeparatedValues) {
  // "--key value" is equivalent to "--key=value"; a bare flag is greedy,
  // so a non-option token right after it becomes its value (which is why
  // positionals may not directly follow a bare flag).
  const char* argv[] = {"prog", "--replicas", "4", "--balancer", "jsq",
                        "--verbose"};
  Cli cli(6, argv);
  EXPECT_EQ(cli.get_int_or("replicas", 0), 4);
  EXPECT_EQ(cli.get_or("balancer", ""), "jsq");
  EXPECT_TRUE(cli.has("verbose"));
  EXPECT_TRUE(cli.get_bool_or("verbose", false));
  EXPECT_TRUE(cli.positional().empty());
  // Mixed forms agree.
  const char* argv2[] = {"prog", "--replicas=4", "--balancer", "jsq"};
  Cli cli2(4, argv2);
  EXPECT_EQ(cli2.get_int_or("replicas", 0), 4);
  EXPECT_EQ(cli2.get_or("balancer", ""), "jsq");
}

TEST(CliTest, DoubleAndBool) {
  const char* argv[] = {"prog", "--alpha=0.5", "--flag=false"};
  Cli cli(3, argv);
  EXPECT_DOUBLE_EQ(cli.get_double_or("alpha", 0), 0.5);
  EXPECT_FALSE(cli.get_bool_or("flag", true));
}

TEST(CsvTest, EscapesSpecials) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvTest, WritesRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.write_row({"a", "b,c"});
  w.write_row({"1", "2"});
  EXPECT_EQ(os.str(), "a,\"b,c\"\n1,2\n");
}

TEST(UnitsTest, CycleConversions) {
  EXPECT_DOUBLE_EQ(cycles_to_ms(285'000, 285e6), 1.0);
  EXPECT_DOUBLE_EQ(cycles_to_us(285, 285e6), 1.0);
  EXPECT_EQ(seconds_to_cycles(1e-3, 285e6), 285'000u);
}

TEST(UnitsTest, ByteAndRateFormatting) {
  EXPECT_EQ(fmt_bytes(12ull * 1024 * 1024), "12.0 MiB");
  EXPECT_EQ(fmt_rate(8.49e9), "8.49 GB/s");
  EXPECT_EQ(fmt_duration(3.85e-3), "3.850 ms");
}

}  // namespace
}  // namespace looplynx::util
