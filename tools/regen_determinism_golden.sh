#!/usr/bin/env bash
# Regenerates the checked-in digest of the canonical serve-layer
# determinism sweep (tests/golden/serve_golden.hpp).
#
# Run this ONLY after an intentional serve-layer behavior change, and
# review the canonical sweep diff first:
#
#   GOLDEN_PRINT=1 ./build/test_determinism_golden   # inspect the text
#   tools/regen_determinism_golden.sh [build-dir]    # rewrite the digest
#
# A hash that moved without an intentional change is a determinism
# regression — fix the regression, do not regenerate over it.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo/build}"
header="$repo/tests/golden/serve_golden.hpp"

cmake --build "$build_dir" --target test_determinism_golden -j >/dev/null

hash="$(GOLDEN_PRINT=1 "$build_dir/test_determinism_golden" \
          --gtest_filter='DeterminismGolden.CanonicalSweepMatchesCheckedInDigest' \
          --gtest_brief=1 | sed -n 's/^SHA256 //p')"
if [[ ! "$hash" =~ ^[0-9a-f]{64}$ ]]; then
  echo "error: could not extract a SHA-256 from the golden test output" >&2
  exit 1
fi

cat > "$header" <<EOF
// Checked-in SHA-256 of the canonical serve-layer determinism sweep.
// Regenerate with tools/regen_determinism_golden.sh after an *intentional*
// serve-layer behavior change — never to paper over an unexplained diff
// (that diff IS the determinism regression the fixture exists to catch).
#pragma once

namespace looplynx::golden {

inline constexpr char kServeSweepSha256[] =
    "$hash";

}  // namespace looplynx::golden
EOF

echo "wrote $header"
echo "digest $hash"
