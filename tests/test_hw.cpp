// Tests for the hardware component models: HBM channel, DMA, MAC array,
// stream link, resource vectors, platform database.
#include <gtest/gtest.h>

#include <vector>

#include "hw/dma.hpp"
#include "hw/hbm.hpp"
#include "hw/link.hpp"
#include "hw/mac.hpp"
#include "hw/platform.hpp"
#include "hw/resources.hpp"
#include "sim/fifo.hpp"

namespace looplynx::hw {
namespace {

using sim::Cycles;
using sim::Engine;
using sim::Fifo;
using sim::Task;

TEST(PlatformTest, Table1RowsMatchPaper) {
  const auto rows = table1_platforms();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "Nvidia A100");
  EXPECT_DOUBLE_EQ(rows[0].memory_bandwidth_bps, 1935e9);
  EXPECT_DOUBLE_EQ(rows[0].tdp_watts, 300);
  EXPECT_EQ(rows[1].compute_unit_count, 9024);
  EXPECT_DOUBLE_EQ(rows[2].memory_bandwidth_bps, 201e9);
  EXPECT_DOUBLE_EQ(rows[2].tdp_watts, 75);
}

TEST(PlatformTest, LoopLynxClockingDerivedConstants) {
  // 8.49 GB/s at 285 MHz is ~29.8 bytes per cycle.
  EXPECT_NEAR(LoopLynxClocking::hbm_bytes_per_cycle(), 29.79, 0.05);
  EXPECT_NEAR(LoopLynxClocking::net_bytes_per_cycle(), 29.79, 0.05);
}

TEST(HbmTest, BurstCyclesScaleWithBytes) {
  Engine eng;
  HbmChannelConfig cfg{.bytes_per_cycle = 32.0,
                       .burst_setup_cycles = 10,
                       .burst_efficiency = 1.0};
  HbmChannel ch(eng, cfg);
  EXPECT_EQ(ch.burst_cycles(0), 0u);
  EXPECT_EQ(ch.burst_cycles(32), 11u);
  EXPECT_EQ(ch.burst_cycles(3200), 110u);
  // Larger transfers amortize setup: cycles/byte decreases.
  const double small = static_cast<double>(ch.burst_cycles(64)) / 64.0;
  const double large = static_cast<double>(ch.burst_cycles(65536)) / 65536.0;
  EXPECT_LT(large, small);
}

TEST(HbmTest, EfficiencyBelowOneSlowsTransfers) {
  Engine eng;
  HbmChannelConfig fast{.bytes_per_cycle = 32, .burst_setup_cycles = 0,
                        .burst_efficiency = 1.0};
  HbmChannelConfig slow = fast;
  slow.burst_efficiency = 0.5;
  HbmChannel a(eng, fast), b(eng, slow);
  EXPECT_EQ(b.burst_cycles(3200), 2 * a.burst_cycles(3200));
}

TEST(HbmTest, ConcurrentReadersSerializeOnOneChannel) {
  Engine eng;
  HbmChannelConfig cfg{.bytes_per_cycle = 32.0,
                       .burst_setup_cycles = 0,
                       .burst_efficiency = 1.0};
  HbmChannel ch(eng, cfg);
  struct Reader {
    static Task run(HbmChannel& ch, std::uint64_t bytes,
                    std::vector<Cycles>& done, Engine& eng) {
      co_await ch.read(bytes);
      done.push_back(eng.now());
    }
  };
  std::vector<Cycles> done;
  eng.spawn(Reader::run(ch, 320, done, eng));  // 10 cycles
  eng.spawn(Reader::run(ch, 320, done, eng));  // serialized after the first
  eng.run();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0], 10u);
  EXPECT_EQ(done[1], 20u);
  EXPECT_EQ(ch.total_bytes_read(), 640u);
  EXPECT_DOUBLE_EQ(ch.utilization(), 1.0);
}

TEST(HbmTest, IndependentChannelsRunInParallel) {
  Engine eng;
  HbmChannelConfig cfg{.bytes_per_cycle = 32.0,
                       .burst_setup_cycles = 0,
                       .burst_efficiency = 1.0};
  HbmChannel a(eng, cfg), b(eng, cfg);
  struct Reader {
    static Task run(HbmChannel& ch, std::uint64_t bytes) {
      co_await ch.read(bytes);
    }
  };
  eng.spawn(Reader::run(a, 3200));
  eng.spawn(Reader::run(b, 3200));
  eng.run();
  EXPECT_EQ(eng.now(), 100u);  // parallel, not 200
}

TEST(MacTest, ThroughputBoundPlusFixedOverhead) {
  Engine eng;
  MacArrayConfig cfg{.lanes = 32, .pipeline_depth = 8, .drain_cycles = 4};
  MacArray mac(eng, cfg);
  EXPECT_EQ(mac.compute_cycles(0), 0u);
  EXPECT_EQ(mac.compute_cycles(32), 8u + 1u + 4u);
  EXPECT_EQ(mac.compute_cycles(1024), 8u + 32u + 4u);
  EXPECT_EQ(mac.compute_cycles(1025), 8u + 33u + 4u);  // ceil division
}

TEST(MacTest, MoreLanesAreFaster) {
  Engine eng;
  MacArray narrow(eng, MacArrayConfig{.lanes = 16, .pipeline_depth = 0,
                                      .drain_cycles = 0});
  MacArray wide(eng, MacArrayConfig{.lanes = 64, .pipeline_depth = 0,
                                    .drain_cycles = 0});
  EXPECT_GT(narrow.compute_cycles(1 << 16), wide.compute_cycles(1 << 16));
}

TEST(LinkTest, TransferIncludesHopLatency) {
  Engine eng;
  StreamLinkConfig cfg{.bytes_per_cycle = 32.0, .hop_latency_cycles = 100};
  StreamLink link(eng, cfg);
  EXPECT_EQ(link.transfer_cycles(0), 0u);
  EXPECT_EQ(link.transfer_cycles(32), 101u);
  EXPECT_EQ(link.transfer_cycles(3200), 200u);
}

TEST(DmaTest, StreamsBlocksInOrderAndOverlapsConsumer) {
  Engine eng;
  HbmChannelConfig hcfg{.bytes_per_cycle = 32.0,
                        .burst_setup_cycles = 0,
                        .burst_efficiency = 1.0};
  HbmChannel ch(eng, hcfg);
  DmaEngine dma(eng, ch, DmaEngineConfig{});
  Fifo<DmaBlock> stream(eng, 2);

  struct Consumer {
    static Task run(Engine& eng, Fifo<DmaBlock>& stream,
                    std::vector<DmaBlock>& got) {
      for (;;) {
        DmaBlock b = co_await stream.get();
        got.push_back(b);
        co_await eng.delay(50);  // slower than the 10-cycle DMA block
        if (b.last) co_return;
      }
    }
  };
  struct Producer {
    static Task run(DmaEngine& dma, Fifo<DmaBlock>& stream) {
      co_await dma.stream_blocks(4 * 320, 4, stream);
    }
  };

  std::vector<DmaBlock> got;
  eng.spawn(Producer::run(dma, stream));
  eng.spawn(Consumer::run(eng, stream, got));
  eng.run();

  ASSERT_EQ(got.size(), 4u);
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(got[i].block_index, i);
    EXPECT_EQ(got[i].bytes, 320u);
    EXPECT_EQ(got[i].last, i == 3);
  }
  EXPECT_EQ(dma.total_bytes(), 4u * 320u);
  // Consumer-bound: 4 blocks x 50 cycles after the first block lands at 10.
  EXPECT_EQ(eng.now(), 10u + 4u * 50u);
}

TEST(DmaTest, UnevenBlockSplitCoversAllBytes) {
  Engine eng;
  HbmChannelConfig hcfg{.bytes_per_cycle = 32.0,
                        .burst_setup_cycles = 0,
                        .burst_efficiency = 1.0};
  HbmChannel ch(eng, hcfg);
  DmaEngine dma(eng, ch, DmaEngineConfig{});
  Fifo<DmaBlock> stream(eng, Fifo<DmaBlock>::kUnbounded);
  struct Producer {
    static Task run(DmaEngine& dma, Fifo<DmaBlock>& stream) {
      co_await dma.stream_blocks(1003, 4, stream);
    }
  };
  eng.spawn(Producer::run(dma, stream));
  eng.run();
  std::uint64_t total = 0;
  DmaBlock b;
  while (stream.try_get(b)) total += b.bytes;
  EXPECT_EQ(total, 1003u);
}

TEST(ResourceTest, VectorArithmetic) {
  ResourceVector a{.dsp = 10, .lut = 100, .ff = 200, .bram = 4, .uram = 1};
  ResourceVector b{.dsp = 5, .lut = 50, .ff = 100, .bram = 2, .uram = 0};
  const ResourceVector sum = a + b;
  EXPECT_DOUBLE_EQ(sum.dsp, 15);
  EXPECT_DOUBLE_EQ(sum.lut, 150);
  const ResourceVector scaled = b * 2.0;
  EXPECT_DOUBLE_EQ(scaled.dsp, 10);
  EXPECT_DOUBLE_EQ(scaled.bram, 4);
}

TEST(ResourceTest, FitsWithinAndUtilization) {
  ResourceVector need{.dsp = 568, .lut = 220e3, .ff = 313e3, .bram = 641,
                      .uram = 4};
  const ResourceVector u50 = alveo_u50_budget();
  EXPECT_TRUE(need.fits_within(u50));
  EXPECT_GT(need.max_utilization(u50), 0.0);
  EXPECT_LT(need.max_utilization(u50), 1.0);
  // Double-size accelerator still fits the full device.
  EXPECT_TRUE((need * 2.0).fits_within(u50) ||
              (need * 2.0).bram > u50.bram);  // BRAM is the scarce one
}

TEST(ResourceTest, SlrIsHalfDevice) {
  const ResourceVector full = alveo_u50_budget();
  const ResourceVector slr = alveo_u50_slr_budget();
  EXPECT_DOUBLE_EQ(slr.dsp * 2, full.dsp);
  EXPECT_DOUBLE_EQ(slr.lut * 2, full.lut);
}

}  // namespace
}  // namespace looplynx::hw
