#include "baseline/temporal_dfx.hpp"

namespace looplynx::baseline {

TemporalModel::TemporalModel(const model::ModelConfig& model,
                             TemporalConfig config)
    : model_(model), config_(config) {}

TemporalBreakdown TemporalModel::breakdown(std::uint32_t seq) const {
  const double freq = config_.frequency_hz;
  const double bw =
      config_.memory_bandwidth_bps * config_.memory_efficiency;
  const double d = model_.d_model;
  const double f = model_.d_ff;
  const double L = model_.n_layer;
  const double heads = model_.n_head;
  const double hd = model_.head_dim();

  TemporalBreakdown b;

  // --- Weight + KV reads (fp16), fully exposed. ---
  const double weight_bytes =
      L * (3 * d * d + d * d + 2 * d * f) * config_.bytes_per_weight;
  const double kv_bytes =
      L * 2.0 * seq * d * config_.bytes_per_weight;  // fp16 KV cache
  b.memory_ms = (weight_bytes + kv_bytes) / bw * 1e3;

  // --- Matrix compute on the shared PE array, not overlapped. ---
  const double matmul_macs = L * (3 * d * d + d * d + 2 * d * f);
  const double attn_macs = L * heads * 2.0 * seq * hd;
  b.compute_ms =
      (matmul_macs + attn_macs) / config_.pe_lanes / freq * 1e3;

  // --- Vector operators (LN x2, softmax/head, residual x2, GELU). ---
  const double vector_elems = L * (2 * d + heads * 2.0 * seq + 2 * d + f);
  b.compute_ms += vector_elems / config_.vector_lanes / freq * 1e3;

  // --- Instruction issue overhead: ~12 operator instructions per layer
  //     (LN, QKV, score, softmax, mix, proj, res, LN, FC1, GELU, FC2, res).
  const double instructions = L * 12.0;
  b.overhead_ms =
      instructions * config_.instruction_overhead_cycles / freq * 1e3;

  // --- Activation write-backs between instructions (off-chip round trip).
  const double act_bytes =
      L * (3 * d + d + d + f + d + 2 * d) * config_.bytes_per_weight;
  b.writeback_ms = act_bytes / bw * 1e3;

  return b;
}

double TemporalModel::token_ms(std::uint32_t seq) const {
  return breakdown(seq).total_ms();
}

double TemporalModel::avg_token_ms(std::uint32_t prefill_tokens,
                                   std::uint32_t decode_tokens) const {
  double total = 0;
  const std::uint32_t n = prefill_tokens + decode_tokens;
  for (std::uint32_t i = 0; i < n; ++i) total += token_ms(i + 1);
  return n > 0 ? total / n : 0;
}

}  // namespace looplynx::baseline
