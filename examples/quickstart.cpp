// Quickstart: build a quantized GPT-2, run it through the LoopLynx timing
// simulator, and co-validate the distributed functional accelerator —
// the three public API layers of the library in ~80 lines.
//
//   ./quickstart [--nodes=2] [--prefill=32] [--decode=64]
#include <iostream>

#include "core/arch_config.hpp"
#include "core/energy.hpp"
#include "core/functional_system.hpp"
#include "core/system.hpp"
#include "model/config.hpp"
#include "model/weights.hpp"
#include "quant/int8_model.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(cli.get_int_or("nodes", 2));
  const auto prefill =
      static_cast<std::uint32_t>(cli.get_int_or("prefill", 32));
  const auto decode = static_cast<std::uint32_t>(cli.get_int_or("decode", 64));

  // 1. Functional layer: a tiny GPT-2 with SmoothQuant W8A8 quantization.
  const model::ModelConfig tiny = model::cosim_config();
  const auto weights = model::Gpt2Weights::random(tiny, /*seed=*/42);
  const std::vector<std::uint32_t> calibration{1, 2, 3, 5, 8, 13, 21, 34};
  const auto quantized =
      quant::Gpt2Int8Weights::build_with_calibration(weights, calibration);

  // 2. Distributed functional accelerator: generates real tokens with the
  //    paper's model-parallel partition and ring synchronization.
  core::FunctionalSystem accel(quantized, std::min(nodes, tiny.n_head));
  const std::vector<std::uint32_t> prompt{7, 77, 17};
  const auto generated = accel.generate(prompt, 12);
  std::cout << "functional accelerator (" << accel.num_nodes()
            << " nodes) generated:";
  for (auto t : generated) std::cout << ' ' << t;
  std::cout << "\n  ring packs exchanged: " << accel.ring_packs()
            << ", KV bytes/node: " << accel.kv_bytes_per_node() << "\n\n";

  // 3. Timing layer: cycle-level simulation of GPT-2 345M on the same
  //    architecture at the paper's scale.
  const model::ModelConfig gpt2 = model::gpt2_medium();
  core::System sys(core::ArchConfig::nodes(nodes), gpt2);
  core::RunOptions opt;
  opt.token_sample_stride = 8;
  const core::RunResult r = sys.run(prefill, decode, opt);

  const core::PowerModel power;
  util::Table t("LoopLynx " + std::to_string(nodes) + "-node, " + gpt2.name +
                ", [" + std::to_string(prefill) + ":" +
                std::to_string(decode) + "]");
  t.set_header({"metric", "value"});
  t.add_row({"end-to-end latency", util::fmt_fixed(r.total_ms, 1) + " ms"});
  t.add_row({"avg token latency", util::fmt_fixed(r.avg_token_ms, 2) + " ms"});
  t.add_row({"decode throughput",
             util::fmt_fixed(r.decode_tokens_per_s, 1) + " token/s"});
  t.add_row({"board power",
             util::fmt_fixed(
                 power.fpga_power_watts(core::ArchConfig::nodes(nodes)), 0) +
                 " W"});
  t.add_row({"HBM traffic", util::fmt_int(static_cast<long long>(
                                r.hbm_bytes / (1 << 20))) +
                                " MiB (sampled)"});
  t.render(std::cout);
  return 0;
}
