// Regenerates paper Fig. 7: per-kernel resource utilization of the
// dual-node LoopLynx accelerator on a Xilinx Alveo U50, plus SLR fit checks.
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/resource_model.hpp"
#include "hw/resources.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  const auto model = bench::model_from_cli(cli);
  const core::ArchConfig arch = core::ArchConfig::two_node();
  const core::ResourceModel rm(arch, model);

  util::Table table(
      "Fig. 7: resource utilization on Xilinx Alveo U50 (dual-node)");
  table.set_header({"Component", "DSP", "LUT", "FF", "BRAM"});
  for (const hw::ComponentUsage& row : rm.fig7_rows()) {
    table.add_row({row.name, util::fmt_fixed(row.usage.dsp, 0),
                   util::fmt_kilo(row.usage.lut),
                   util::fmt_kilo(row.usage.ff),
                   util::fmt_fixed(row.usage.bram, 0)});
  }
  table.add_separator();
  const hw::ResourceVector accel = rm.accelerator_total();
  table.add_row({"Accelerator Total", util::fmt_fixed(accel.dsp, 0),
                 util::fmt_kilo(accel.lut), util::fmt_kilo(accel.ff),
                 util::fmt_fixed(accel.bram, 1)});
  const hw::ResourceVector device = rm.device_total();
  table.add_row({"Device Total", util::fmt_fixed(device.dsp, 0),
                 util::fmt_kilo(device.lut), util::fmt_kilo(device.ff),
                 util::fmt_fixed(device.bram, 1)});
  table.render(std::cout);

  const hw::ResourceVector slr = hw::alveo_u50_slr_budget();
  const hw::ResourceVector node = rm.per_node();
  std::cout << "\nPlacement check (paper: one node fits one SLR):\n"
            << "  per-node worst-resource utilization of an SLR: "
            << util::fmt_percent(node.max_utilization(slr)) << "\n"
            << "  device total fits U50: "
            << (rm.fits_u50() ? "yes" : "NO") << "\n"
            << "\nPaper reference (device total): 1132 DSP / 312K LUT / "
               "478K FF / 924.5 BRAM.\n";
  return 0;
}
