#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace looplynx::util {

double mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double geomean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

double stddev(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double m = mean(values);
  double acc = 0.0;
  for (double v : values) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values.size()));
}

double min_of(std::span<const double> values) {
  return values.empty() ? 0.0 : *std::min_element(values.begin(), values.end());
}

double max_of(std::span<const double> values) {
  return values.empty() ? 0.0 : *std::max_element(values.begin(), values.end());
}

namespace {

/// Linear-interpolated percentile over an already-sorted, non-empty range.
double sorted_percentile(std::span<const double> sorted, double p) {
  const double rank =
      (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  return sorted_percentile(values, p);
}

void sort_ascending(std::vector<double>& values) {
  if (values.size() < 4096) {
    std::sort(values.begin(), values.end());
    return;
  }
  for (double v : values) {
    if (!(v >= 0.0) || std::signbit(v) || !std::isfinite(v)) {
      std::sort(values.begin(), values.end());
      return;
    }
  }
  std::vector<std::uint64_t> keys(values.size());
  std::memcpy(keys.data(), values.data(), values.size() * sizeof(double));
  radix_sort(keys);
  std::memcpy(values.data(), keys.data(), values.size() * sizeof(double));
}

PercentileSummary percentile_summary(std::vector<double> values) {
  PercentileSummary s;
  if (values.empty()) return s;
  sort_ascending(values);
  s.count = values.size();
  s.mean = mean(values);
  s.p50 = sorted_percentile(values, 50.0);
  s.p95 = sorted_percentile(values, 95.0);
  s.p99 = sorted_percentile(values, 99.0);
  return s;
}

PercentileSummary percentile_summary_presorted(
    std::span<const double> sorted) {
  PercentileSummary s;
  if (sorted.empty()) return s;
  s.count = sorted.size();
  s.mean = mean(sorted);
  s.p50 = sorted_percentile(sorted, 50.0);
  s.p95 = sorted_percentile(sorted, 95.0);
  s.p99 = sorted_percentile(sorted, 99.0);
  return s;
}

void radix_sort(std::vector<std::uint64_t>& keys) {
  // Comparison sort is the better deal until the counting tables pay off.
  if (keys.size() < 4096) {
    std::sort(keys.begin(), keys.end());
    return;
  }
  std::uint64_t max_key = 0;
  for (std::uint64_t k : keys) max_key = std::max(max_key, k);
  std::vector<std::uint64_t> buf(keys.size());
  std::vector<std::size_t> count(1u << 16);
  std::vector<std::uint64_t>* src = &keys;
  std::vector<std::uint64_t>* dst = &buf;
  for (unsigned shift = 0; shift < 64 && (max_key >> shift) != 0;
       shift += 16) {
    std::fill(count.begin(), count.end(), 0);
    for (std::uint64_t k : *src) ++count[(k >> shift) & 0xffff];
    std::size_t total = 0;
    for (std::size_t& c : count) {
      const std::size_t n = c;
      c = total;
      total += n;
    }
    for (std::uint64_t k : *src) (*dst)[count[(k >> shift) & 0xffff]++] = k;
    std::swap(src, dst);
  }
  if (src != &keys) keys.swap(buf);
}

void SlidingWindow::push(double at, double value) {
  samples_.emplace_back(at, value);
}

void SlidingWindow::evict_before(double at) {
  while (!samples_.empty() && samples_.front().first < at) {
    samples_.pop_front();
  }
}

double SlidingWindow::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(samples_.size());
  for (const auto& [at, v] : samples_) values.push_back(v);
  std::sort(values.begin(), values.end());
  return sorted_percentile(values, p);
}

void RunningStat::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

}  // namespace looplynx::util
