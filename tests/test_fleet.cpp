// Tests for the multi-deployment fleet layer: LoadBalancer routing rules
// and tie-breaks, FleetSim determinism, single-replica equivalence with
// ServingSim, the JSQ-beats-round-robin acceptance pin on a skewed mix,
// heterogeneous fleets, and the fleet CLI flag validation.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/arch_config.hpp"
#include "core/step_cost.hpp"
#include "serve/cli_flags.hpp"
#include "serve/fleet.hpp"
#include "serve/kv_block.hpp"
#include "serve/serving_sim.hpp"
#include "util/cli.hpp"
#include "workload/mix.hpp"

namespace looplynx::serve {
namespace {

core::ArchConfig test_arch() { return core::ArchConfig::one_node(); }

/// Cosim dimensions with a context window wide enough for long-prompt
/// whale scenarios.
model::ModelConfig fleet_model() {
  model::ModelConfig m = model::cosim_config();
  m.name = "cosim-256";
  m.max_seq_len = 256;
  return m;
}

/// Small shapes that fit the cosim model's 96-token context.
workload::Mix small_mix() {
  return workload::Mix{"test",
                       {{workload::make_scenario(8, 16), 0.5},
                        {workload::make_scenario(16, 8), 0.3},
                        {workload::make_scenario(4, 32), 0.2}}};
}

ServingConfig base_config() {
  ServingConfig cfg;
  cfg.arch = test_arch();
  cfg.model = model::cosim_config();
  cfg.cost_probe_stride = 16;
  cfg.traffic.mix = small_mix();
  cfg.traffic.num_requests = 24;
  cfg.traffic.arrival_rate_per_s = 200.0;
  cfg.traffic.seed = 42;
  cfg.scheduler.max_batch = 4;
  return cfg;
}

/// Mostly-small traffic with a fat tail of [192:48] whales that occupy a
/// replica an order of magnitude longer — the shape round-robin routing
/// degrades on (consecutive whales land on one replica by arrival parity)
/// and join-shortest-queue exists to fix.
ServingConfig skewed_config() {
  ServingConfig cfg;
  cfg.arch = test_arch();
  cfg.model = fleet_model();
  cfg.cost_probe_stride = 16;
  cfg.traffic.mix = workload::Mix{"skewed",
                                  {{workload::make_scenario(8, 16), 0.8},
                                   {workload::make_scenario(192, 48), 0.2}}};
  cfg.traffic.num_requests = 160;
  cfg.traffic.arrival_rate_per_s = 400.0;
  cfg.traffic.seed = 42;
  cfg.scheduler.max_batch = 4;
  // SLOs sized to the cosim deployment, so goodput discriminates between
  // routing policies instead of saturating at "everyone missed".
  cfg.slo.ttft_ms = 5.0;
  cfg.slo.token_ms = 2.0;
  return cfg;
}

/// Bit-identical, not approximately equal: the engine guarantees
/// reproducible event ordering and all arithmetic is deterministic.
void expect_identical(const FleetMetrics& a, const FleetMetrics& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.decode_tokens, b.decode_tokens);
  EXPECT_EQ(a.total_tokens, b.total_tokens);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.throughput_tok_s, b.throughput_tok_s);
  EXPECT_EQ(a.goodput_req_s, b.goodput_req_s);
  EXPECT_EQ(a.ttft_ms.p50, b.ttft_ms.p50);
  EXPECT_EQ(a.ttft_ms.p99, b.ttft_ms.p99);
  EXPECT_EQ(a.token_ms.p50, b.token_ms.p50);
  EXPECT_EQ(a.e2e_ms.p99, b.e2e_ms.p99);
  EXPECT_EQ(a.queue_wait_ms.p99, b.queue_wait_ms.p99);
  EXPECT_EQ(a.inter_token_gap_ms.p99, b.inter_token_gap_ms.p99);
  EXPECT_EQ(a.mean_batch_size, b.mean_batch_size);
  EXPECT_EQ(a.busy_fraction, b.busy_fraction);
  EXPECT_EQ(a.peak_in_flight, b.peak_in_flight);
  EXPECT_EQ(a.peak_queue_depth, b.peak_queue_depth);
  EXPECT_EQ(a.kv_peak_occupancy, b.kv_peak_occupancy);
  EXPECT_EQ(a.kv_stall_events, b.kv_stall_events);
  EXPECT_EQ(a.kv_over_release_events, b.kv_over_release_events);
  EXPECT_EQ(a.prefill_chunk_steps, b.prefill_chunk_steps);
  EXPECT_EQ(a.chunked_prompts, b.chunked_prompts);
  EXPECT_EQ(a.decode_stall_iterations, b.decode_stall_iterations);
  EXPECT_EQ(a.decode_stall_ms, b.decode_stall_ms);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.recompute_tokens, b.recompute_tokens);
  EXPECT_EQ(a.recompute_ms, b.recompute_ms);
  EXPECT_EQ(a.kv_peak_used_blocks, b.kv_peak_used_blocks);
  EXPECT_EQ(a.kv_peak_frag_tokens, b.kv_peak_frag_tokens);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].id, b.requests[i].id);
    EXPECT_EQ(a.requests[i].replica, b.requests[i].replica);
    EXPECT_EQ(a.requests[i].ttft_ms, b.requests[i].ttft_ms);
    EXPECT_EQ(a.requests[i].e2e_ms, b.requests[i].e2e_ms);
  }
}

void expect_identical(const FleetResult& a, const FleetResult& b) {
  expect_identical(a.fleet, b.fleet);
  ASSERT_EQ(a.replicas.size(), b.replicas.size());
  for (std::size_t i = 0; i < a.replicas.size(); ++i) {
    expect_identical(a.replicas[i], b.replicas[i]);
  }
  EXPECT_EQ(a.routed, b.routed);
  EXPECT_EQ(a.load_imbalance, b.load_imbalance);
  EXPECT_EQ(a.ttft_p99_spread_ms, b.ttft_p99_spread_ms);
}

// ------------------------------------------------------------ LoadBalancer

TEST(LoadBalancerTest, RoundRobinCyclesBlindToLoad) {
  LoadBalancer lb(BalancerPolicy::kRoundRobin);
  const std::vector<LoadBalancer::ReplicaLoad> loads = {
      {100, 0}, {0, 500}, {7, 7}};
  EXPECT_EQ(lb.pick(loads), 0u);  // load is ignored by design
  EXPECT_EQ(lb.pick(loads), 1u);
  EXPECT_EQ(lb.pick(loads), 2u);
  EXPECT_EQ(lb.pick(loads), 0u);
}

TEST(LoadBalancerTest, JsqPicksFewestOutstandingTieLowestIndex) {
  LoadBalancer lb(BalancerPolicy::kJoinShortestQueue);
  EXPECT_EQ(lb.pick({{3, 0}, {1, 0}, {2, 0}}), 1u);
  // Ties resolve to the lowest index — the fleet's determinism contract.
  EXPECT_EQ(lb.pick({{2, 0}, {2, 0}, {2, 0}}), 0u);
  EXPECT_EQ(lb.pick({{5, 0}, {2, 0}, {2, 0}}), 1u);
  // Free KV is irrelevant to JSQ.
  EXPECT_EQ(lb.pick({{1, 0}, {1, 999}}), 0u);
}

TEST(LoadBalancerTest, KvAwarePicksMostFreeTokensThenJsqThenIndex) {
  LoadBalancer lb(BalancerPolicy::kKvAware);
  EXPECT_EQ(lb.pick({{0, 100}, {0, 300}, {0, 200}}), 1u);
  // Equal pools fall back to join-shortest-queue...
  EXPECT_EQ(lb.pick({{4, 100}, {2, 100}}), 1u);
  // ...and a full tie resolves to the lowest index.
  EXPECT_EQ(lb.pick({{2, 100}, {2, 100}, {2, 100}}), 0u);
  // More free KV wins even against a shorter queue: KV is the
  // admission-gating resource.
  EXPECT_EQ(lb.pick({{0, 100}, {9, 200}}), 1u);
}

// ------------------------------------------------- Single-replica identity

/// The refactor-correctness pin: a 1-replica fleet must be bit-identical
/// to ServingSim on the same config — both run the same replica machinery
/// and a balancer over one replica makes no extra engine events. This is
/// what makes `serve_load --replicas=1` byte-identical to the pre-fleet
/// output by construction.
TEST(FleetSimTest, SingleReplicaFleetMatchesServingSim) {
  ServingConfig cfg = base_config();
  cfg.keep_request_records = true;
  for (const BalancerPolicy policy :
       {BalancerPolicy::kRoundRobin, BalancerPolicy::kJoinShortestQueue,
        BalancerPolicy::kKvAware}) {
    const FleetResult fleet =
        FleetSim(FleetConfig::homogeneous(cfg, 1, policy)).run();
    const FleetMetrics lone = ServingSim(cfg).run();
    expect_identical(fleet.fleet, lone);
    ASSERT_EQ(fleet.replicas.size(), 1u);
    expect_identical(fleet.replicas[0], lone);
    EXPECT_EQ(fleet.load_imbalance, 1.0);
    EXPECT_EQ(fleet.ttft_p99_spread_ms, 0.0);
  }
}

TEST(FleetSimTest, SingleReplicaFleetMatchesServingSimClosedLoop) {
  ServingConfig cfg = base_config();
  cfg.traffic.process = ArrivalProcess::kClosedLoop;
  cfg.traffic.clients = 4;
  cfg.traffic.think_time_s = 0.001;
  cfg.traffic.num_requests = 16;
  const FleetResult fleet = FleetSim(FleetConfig::homogeneous(cfg, 1)).run();
  expect_identical(fleet.fleet, ServingSim(cfg).run());
}

TEST(FleetSimTest, SingleReplicaFleetMatchesServingSimPagedPreempt) {
  // Paged KV + recompute preemption exercises the whole eviction path
  // through the shared replica machinery.
  ServingConfig cfg = base_config();
  cfg.scheduler.policy = BatchPolicy::kChunkedMixed;
  cfg.scheduler.max_tokens_per_iter = 16;
  cfg.scheduler.preempt = PreemptPolicy::kRecomputeYoungest;
  cfg.kv_block_tokens = 4;
  cfg.traffic.arrival_rate_per_s = 2000.0;
  KvBlockManager probe(cfg.arch, cfg.model, 1);
  cfg.kv_budget_bytes_per_node = 96 * probe.bytes_per_token_per_node();
  const FleetMetrics lone = ServingSim(cfg).run();
  const FleetResult fleet = FleetSim(FleetConfig::homogeneous(cfg, 1)).run();
  expect_identical(fleet.fleet, lone);
  EXPECT_GT(lone.preemptions, 0u);  // the path was actually exercised
}

// ------------------------------------------------------------ Determinism

TEST(FleetSimTest, SameConfigSameResultAcrossPolicies) {
  ServingConfig cfg = skewed_config();
  cfg.keep_request_records = true;
  for (const BalancerPolicy policy :
       {BalancerPolicy::kRoundRobin, BalancerPolicy::kJoinShortestQueue,
        BalancerPolicy::kKvAware}) {
    const FleetConfig fleet_cfg = FleetConfig::homogeneous(cfg, 3, policy);
    const FleetSim sim(fleet_cfg);
    const FleetResult a = sim.run();
    const FleetResult b = sim.run();                 // same instance
    const FleetResult c = FleetSim(fleet_cfg).run();  // fresh cost probes
    expect_identical(a, b);
    expect_identical(a, c);
    EXPECT_EQ(a.fleet.offered, cfg.traffic.num_requests);
    EXPECT_EQ(a.fleet.completed + a.fleet.rejected, a.fleet.offered);
  }
}

TEST(FleetSimTest, PagedPreemptingFleetIsDeterministic) {
  ServingConfig cfg = skewed_config();
  cfg.scheduler.policy = BatchPolicy::kChunkedMixed;
  cfg.scheduler.max_tokens_per_iter = 16;
  cfg.scheduler.preempt = PreemptPolicy::kRecomputeYoungest;
  cfg.kv_block_tokens = 4;
  cfg.traffic.arrival_rate_per_s = 1200.0;
  KvBlockManager probe(cfg.arch, cfg.model, 1);
  // Room for one whole whale footprint plus change per replica: paged
  // admission overcommits on decode growth and must evict.
  cfg.kv_budget_bytes_per_node = 288 * probe.bytes_per_token_per_node();
  const FleetConfig fleet_cfg =
      FleetConfig::homogeneous(cfg, 2, BalancerPolicy::kKvAware);
  const FleetResult a = FleetSim(fleet_cfg).run();
  const FleetResult b = FleetSim(fleet_cfg).run();
  expect_identical(a, b);
  EXPECT_GT(a.fleet.preemptions, 0u);  // eviction ran on a fleet replica
}

// ---------------------------------------------------------------- Routing

TEST(FleetSimTest, RoundRobinSplitsArrivalsExactlyEvenly) {
  const ServingConfig cfg = base_config();  // 24 requests
  const FleetResult r =
      FleetSim(FleetConfig::homogeneous(cfg, 3, BalancerPolicy::kRoundRobin))
          .run();
  ASSERT_EQ(r.routed.size(), 3u);
  EXPECT_EQ(r.routed[0], 8u);
  EXPECT_EQ(r.routed[1], 8u);
  EXPECT_EQ(r.routed[2], 8u);
  EXPECT_DOUBLE_EQ(r.load_imbalance, 1.0);
  EXPECT_EQ(r.fleet.completed, 24u);
}

TEST(FleetSimTest, BalancerTieBreakIsLowestIndexOnSimultaneousBurst) {
  // Two arrivals in the same cycle on two idle, identical replicas: the
  // first must go to replica 0 (all keys tie -> lowest index), and the
  // second to replica 1 (replica 0 now has one outstanding request) —
  // under both load-aware policies. Pinned because every fleet determinism
  // guarantee reduces to this rule.
  ServingConfig cfg = base_config();
  cfg.keep_request_records = true;
  cfg.traffic.explicit_arrivals = {
      {0, workload::make_scenario(8, 8)},
      {0, workload::make_scenario(8, 8)},
  };
  for (const BalancerPolicy policy :
       {BalancerPolicy::kJoinShortestQueue, BalancerPolicy::kKvAware}) {
    const FleetResult r =
        FleetSim(FleetConfig::homogeneous(cfg, 2, policy)).run();
    ASSERT_EQ(r.fleet.requests.size(), 2u) << balancer_policy_name(policy);
    EXPECT_EQ(r.fleet.requests[0].replica, 0u);
    EXPECT_EQ(r.fleet.requests[1].replica, 1u);
    EXPECT_EQ(r.routed, (std::vector<std::uint64_t>{1, 1}));
  }
}

TEST(FleetSimTest, KvAwareRoutesTowardTheBiggerPool) {
  // Heterogeneous fleet: replica 1 has 4x the KV budget. The KV-aware
  // balancer must send it the bulk of the traffic; blind round-robin
  // splits 50/50 and pays queueing on the starved replica.
  ServingConfig small = base_config();
  KvBlockManager probe(small.arch, small.model, 1);
  small.kv_budget_bytes_per_node = 64 * probe.bytes_per_token_per_node();
  ServingConfig big = small;
  big.kv_budget_bytes_per_node = 256 * probe.bytes_per_token_per_node();

  FleetConfig cfg;
  cfg.replicas = {small, big};
  cfg.traffic = small.traffic;
  cfg.balancer = BalancerPolicy::kKvAware;
  const FleetResult r = FleetSim(cfg).run();
  EXPECT_EQ(r.fleet.completed, cfg.traffic.num_requests);
  EXPECT_GT(r.routed[1], r.routed[0]);
}

TEST(FleetSimTest, ClosedLoopFleetRoutesAndCompletes) {
  ServingConfig cfg = base_config();
  cfg.traffic.process = ArrivalProcess::kClosedLoop;
  cfg.traffic.clients = 6;
  cfg.traffic.think_time_s = 0.001;
  cfg.traffic.num_requests = 18;
  const FleetConfig fleet_cfg =
      FleetConfig::homogeneous(cfg, 2, BalancerPolicy::kJoinShortestQueue);
  const FleetResult a = FleetSim(fleet_cfg).run();
  EXPECT_EQ(a.fleet.offered, 18u);
  EXPECT_EQ(a.fleet.completed, 18u);
  EXPECT_GT(a.routed[0], 0u);
  EXPECT_GT(a.routed[1], 0u);
  expect_identical(a, FleetSim(fleet_cfg).run());
}

// ------------------------------------------------- The acceptance pin

/// The PR's acceptance criterion: on a skewed scenario mix at a fixed
/// seed, join-shortest-queue routing strictly beats round-robin on p99
/// TTFT at no worse total goodput. Round-robin's failure mode is exactly
/// the whale pile-up: consecutive heavy requests land on the same replica
/// by arrival parity while other replicas idle.
TEST(FleetSimTest, JsqBeatsRoundRobinOnSkewedMix) {
  const ServingConfig cfg = skewed_config();
  const core::StepCostModel costs(cfg.arch, cfg.model,
                                  cfg.cost_probe_stride);
  const FleetResult rr =
      FleetSim(FleetConfig::homogeneous(cfg, 3, BalancerPolicy::kRoundRobin),
               costs)
          .run();
  const FleetResult jsq =
      FleetSim(FleetConfig::homogeneous(cfg, 3,
                                        BalancerPolicy::kJoinShortestQueue),
               costs)
          .run();
  ASSERT_EQ(rr.fleet.completed, cfg.traffic.num_requests);
  ASSERT_EQ(jsq.fleet.completed, cfg.traffic.num_requests);
  EXPECT_LT(jsq.fleet.ttft_ms.p99, rr.fleet.ttft_ms.p99);
  EXPECT_GE(jsq.fleet.goodput_req_s, rr.fleet.goodput_req_s);
  // The mechanism, not just the outcome: round-robin split the stream
  // blind (within one request of exactly even), while JSQ actually
  // steered — its routing departs from the parity split.
  std::uint64_t rr_max = 0, rr_min = cfg.traffic.num_requests;
  for (const std::uint64_t n : rr.routed) {
    rr_max = std::max(rr_max, n);
    rr_min = std::min(rr_min, n);
  }
  EXPECT_LE(rr_max - rr_min, 1u);
  EXPECT_NE(jsq.routed, rr.routed);
}

// ------------------------------------------------------------- Validation

TEST(FleetSimTest, RejectsEmptyAndInconsistentFleets) {
  EXPECT_THROW(FleetSim{FleetConfig{}}, std::invalid_argument);

  ServingConfig a = base_config();
  ServingConfig b = base_config();
  b.arch.frequency_hz = 300e6;  // second clock domain: unsupported
  FleetConfig two;
  two.replicas = {a, b};
  two.traffic = a.traffic;
  EXPECT_THROW(FleetSim{two}, std::invalid_argument);

  ServingConfig bad = base_config();
  bad.kv_block_tokens = 0;
  EXPECT_THROW(FleetSim{FleetConfig::homogeneous(bad, 2)},
               std::invalid_argument);
}

// --------------------------------------------------------- CLI validation

util::Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "test");
  return util::Cli(static_cast<int>(args.size()), args.data());
}

TEST(FleetCliTest, ParsesReplicasAndBalancer) {
  const SchedulerCliOptions defaults = parse_scheduler_cli(make_cli({}));
  EXPECT_EQ(defaults.replicas, 1u);
  EXPECT_EQ(defaults.balancer, BalancerPolicy::kRoundRobin);
  EXPECT_FALSE(defaults.fleet());

  const SchedulerCliOptions fleet = parse_scheduler_cli(
      make_cli({"--replicas=4", "--balancer=jsq"}));
  EXPECT_EQ(fleet.replicas, 4u);
  EXPECT_EQ(fleet.balancer, BalancerPolicy::kJoinShortestQueue);
  EXPECT_TRUE(fleet.fleet());

  // The space-separated form the fleet quickstart uses.
  const SchedulerCliOptions spaced = parse_scheduler_cli(
      make_cli({"--replicas", "4", "--balancer", "kv"}));
  EXPECT_EQ(spaced.replicas, 4u);
  EXPECT_EQ(spaced.balancer, BalancerPolicy::kKvAware);

  // --replicas without --balancer defaults to round-robin.
  EXPECT_EQ(parse_scheduler_cli(make_cli({"--replicas=2"})).balancer,
            BalancerPolicy::kRoundRobin);
}

TEST(FleetCliTest, RejectsInvalidReplicaCounts) {
  EXPECT_THROW(parse_scheduler_cli(make_cli({"--replicas=0"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(make_cli({"--replicas=-3"})),
               std::invalid_argument);
}

TEST(FleetCliTest, RejectsUnknownBalancer) {
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--replicas=2", "--balancer=random"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(make_cli({"--replicas=2", "--balancer="})),
               std::invalid_argument);
  EXPECT_THROW(parse_balancer_policy("least-loaded"), std::invalid_argument);
}

TEST(FleetCliTest, RejectsBalancerWithoutFleet) {
  // Routing over one replica is a no-op; the flag must not silently do
  // nothing.
  EXPECT_THROW(parse_scheduler_cli(make_cli({"--balancer=jsq"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--replicas=1", "--balancer=jsq"})),
               std::invalid_argument);
}

TEST(FleetCliTest, ParsesRolesAndKvLink) {
  const SchedulerCliOptions disagg = parse_scheduler_cli(
      make_cli({"--replicas=3", "--roles=prefill,general,decode"}));
  ASSERT_EQ(disagg.roles.size(), 3u);
  EXPECT_EQ(disagg.roles[0], ReplicaRole::kPrefill);
  EXPECT_EQ(disagg.roles[1], ReplicaRole::kGeneral);
  EXPECT_EQ(disagg.roles[2], ReplicaRole::kDecode);
  EXPECT_TRUE(disagg.disaggregated());
  // --kv-link-gbps defaults to 100 GB/s whenever roles are set.
  EXPECT_EQ(disagg.kv_link_gbps, 100.0);

  const SchedulerCliOptions tuned = parse_scheduler_cli(
      make_cli({"--replicas=2", "--roles=prefill,decode",
                "--kv-link-gbps=8.5"}));
  EXPECT_EQ(tuned.kv_link_gbps, 8.5);

  // No roles => symmetric fleet; the disagg surface stays absent.
  const SchedulerCliOptions plain =
      parse_scheduler_cli(make_cli({"--replicas=2"}));
  EXPECT_TRUE(plain.roles.empty());
  EXPECT_FALSE(plain.disaggregated());
}

TEST(FleetCliTest, RejectsRolesWithoutFleet) {
  // One replica cannot disaggregate: migration needs a distinct target.
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--roles=prefill,decode"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--replicas=1", "--roles=decode"})),
               std::invalid_argument);
}

TEST(FleetCliTest, RejectsRoleCountMismatch) {
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--replicas=3", "--roles=prefill,decode"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--replicas=2",
                             "--roles=prefill,prefill,decode"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(make_cli({"--replicas=2", "--roles="})),
               std::invalid_argument);
}

TEST(FleetCliTest, RejectsBadRoleNamesAndLinkRates) {
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--replicas=2", "--roles=prefill,gpu"})),
               std::invalid_argument);
  EXPECT_THROW(parse_replica_role("encode"), std::invalid_argument);
  // A zero- or negative-rate link never delivers a block.
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--replicas=2", "--roles=prefill,decode",
                             "--kv-link-gbps=0"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--replicas=2", "--roles=prefill,decode",
                             "--kv-link-gbps=-4"})),
               std::invalid_argument);
  // --kv-link-gbps without --roles must not silently do nothing.
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--replicas=2", "--kv-link-gbps=50"})),
               std::invalid_argument);
}

TEST(FleetCliTest, ParsesRolesWithAutoscale) {
  // --roles + --autoscale is legal: the role list sizes the pool (no
  // --replicas needed) and the comma lists become per-tier bounds in
  // role-first-appearance order.
  const SchedulerCliOptions tiered = parse_scheduler_cli(
      make_cli({"--autoscale=hybrid", "--roles=prefill,prefill,decode",
                "--min-replicas=1,1", "--max-replicas=2,1"}));
  EXPECT_TRUE(tiered.autoscale.enabled);
  EXPECT_TRUE(tiered.disaggregated());
  EXPECT_EQ(tiered.fleet_width(), 3u);
  ASSERT_EQ(tiered.autoscale.tier_min.size(), 2u);
  EXPECT_EQ(tiered.autoscale.tier_min[0], 1u);
  EXPECT_EQ(tiered.autoscale.tier_max[0], 2u);
  EXPECT_EQ(tiered.autoscale.tier_max[1], 1u);

  // Bounds left unset stay as empty lists: FleetSim::validate fills the
  // defaults (floor 1 per tier, ceiling = the tier's pool).
  const SchedulerCliOptions defaulted = parse_scheduler_cli(
      make_cli({"--autoscale=queue", "--roles=prefill,decode"}));
  EXPECT_TRUE(defaulted.autoscale.tier_min.empty());
  EXPECT_TRUE(defaulted.autoscale.tier_max.empty());
  EXPECT_EQ(defaulted.fleet_width(), 2u);

  // The legacy scalar spelling still works on a symmetric fleet.
  const SchedulerCliOptions scalar = parse_scheduler_cli(
      make_cli({"--autoscale=queue", "--min-replicas=2",
                "--max-replicas=6"}));
  EXPECT_EQ(scalar.autoscale.min_replicas, 2u);
  EXPECT_EQ(scalar.autoscale.max_replicas, 6u);
  EXPECT_TRUE(scalar.autoscale.tier_min.empty());
}

TEST(FleetCliTest, RejectsBadPerTierBoundSpecs) {
  // Comma lists are per-tier bounds: meaningless without --roles.
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--autoscale=queue", "--min-replicas=1,1"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--autoscale=queue", "--max-replicas=2,2"})),
               std::invalid_argument);
  // Zero, junk, and empty entries are rejected at parse time.
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--autoscale", "--roles=prefill,decode",
                             "--min-replicas=0,1"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--autoscale", "--roles=prefill,decode",
                             "--max-replicas=two,1"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--autoscale", "--roles=prefill,decode",
                             "--min-replicas=1,,1"})),
               std::invalid_argument);
}

TEST(FleetSimTest, ValidatesPerTierBounds) {
  ServingConfig base = base_config();
  const auto with = [&](auto mutate) {
    FleetConfig cfg = FleetConfig::homogeneous(base, 3);
    cfg.roles = {ReplicaRole::kPrefill, ReplicaRole::kPrefill,
                 ReplicaRole::kDecode};
    cfg.kv_link.bytes_per_cycle = 32.0;
    cfg.autoscale.enabled = true;
    cfg.autoscale.tier_min = {1, 1};
    cfg.autoscale.tier_max = {2, 1};
    mutate(cfg.autoscale);
    return cfg;
  };
  EXPECT_NO_THROW(FleetSim{with([](AutoscalerConfig&) {})});
  // Unset lists are normalized, not rejected.
  EXPECT_NO_THROW(FleetSim{with([](AutoscalerConfig& a) {
    a.tier_min.clear();
    a.tier_max.clear();
  })});
  // A list must name every tier (two tiers here: prefill, decode).
  EXPECT_THROW(FleetSim{with([](AutoscalerConfig& a) {
                 a.tier_min = {1};
               })},
               std::invalid_argument);
  EXPECT_THROW(FleetSim{with([](AutoscalerConfig& a) {
                 a.tier_max = {2, 1, 1};
               })},
               std::invalid_argument);
  // The ceiling is the tier's pool, exactly — same contract as the
  // symmetric max_replicas == pool rule.
  EXPECT_THROW(FleetSim{with([](AutoscalerConfig& a) {
                 a.tier_max = {3, 1};
               })},
               std::invalid_argument);
  EXPECT_THROW(FleetSim{with([](AutoscalerConfig& a) {
                 a.tier_max = {1, 1};
               })},
               std::invalid_argument);
  // Floors: >= 1, <= the tier ceiling.
  EXPECT_THROW(FleetSim{with([](AutoscalerConfig& a) {
                 a.tier_min = {0, 1};
               })},
               std::invalid_argument);
  EXPECT_THROW(FleetSim{with([](AutoscalerConfig& a) {
                 a.tier_min = {1, 2};
               })},
               std::invalid_argument);
}

/// Satellite regression: load_imbalance averages over routing-eligible
/// replicas only. On a 1-prefill + 1-decode fleet every request routes to
/// the single prefill replica, so its share of the *eligible* mean is
/// exactly 1.0 — the old fleet-wide mean divided by 2 and reported 2.0.
TEST(FleetSimTest, LoadImbalanceCountsRoutingEligibleOnly) {
  ServingConfig base = base_config();
  FleetConfig cfg = FleetConfig::homogeneous(base, 2);
  cfg.roles = {ReplicaRole::kPrefill, ReplicaRole::kDecode};
  cfg.kv_link.bytes_per_cycle = 32.0;
  const FleetResult r = FleetSim(cfg).run();
  ASSERT_EQ(r.routed.size(), 2u);
  EXPECT_GT(r.routed[0], 0u);   // every request routes to the prefill
  EXPECT_EQ(r.routed[1], 0u);   // the decode replica takes handoffs only
  EXPECT_DOUBLE_EQ(r.load_imbalance, 1.0);
  // The per-tier stats partition the pool one role class apiece.
  ASSERT_EQ(r.tiers.size(), 2u);
  EXPECT_EQ(r.tiers[0].role, ReplicaRole::kPrefill);
  EXPECT_EQ(r.tiers[1].role, ReplicaRole::kDecode);
  ASSERT_EQ(r.tiers[0].members.size(), 1u);
  EXPECT_EQ(r.tiers[0].members[0], 0u);
  ASSERT_EQ(r.tiers[1].members.size(), 1u);
  EXPECT_EQ(r.tiers[1].members[0], 1u);
  // A static fleet's tiers never flex, and one replica has no spread.
  EXPECT_EQ(r.tiers[0].min_live, 1u);
  EXPECT_EQ(r.tiers[0].peak_live, 1u);
  EXPECT_DOUBLE_EQ(r.tiers[1].mean_live, 1.0);
  EXPECT_DOUBLE_EQ(r.tiers[0].ttft_p99_spread_ms, 0.0);
  EXPECT_DOUBLE_EQ(r.tiers[1].ttft_p99_spread_ms, 0.0);
}

TEST(FleetCliTest, RoleNamesRoundTrip) {
  EXPECT_EQ(parse_replica_role("general"), ReplicaRole::kGeneral);
  EXPECT_EQ(parse_replica_role("prefill"), ReplicaRole::kPrefill);
  EXPECT_EQ(parse_replica_role("decode"), ReplicaRole::kDecode);
  EXPECT_STREQ(replica_role_name(ReplicaRole::kGeneral), "general");
  EXPECT_STREQ(replica_role_name(ReplicaRole::kPrefill), "prefill");
  EXPECT_STREQ(replica_role_name(ReplicaRole::kDecode), "decode");
}

TEST(FleetSimTest, ValidatesDisaggRoleShape) {
  ServingConfig base = base_config();
  // Role list must cover the pool exactly.
  FleetConfig mismatched = FleetConfig::homogeneous(base, 3);
  mismatched.roles = {ReplicaRole::kPrefill, ReplicaRole::kDecode};
  EXPECT_THROW(FleetSim{mismatched}, std::invalid_argument);

  // At least one decode replica, at least one non-decode replica.
  FleetConfig no_decode = FleetConfig::homogeneous(base, 2);
  no_decode.roles = {ReplicaRole::kPrefill, ReplicaRole::kGeneral};
  EXPECT_THROW(FleetSim{no_decode}, std::invalid_argument);
  FleetConfig all_decode = FleetConfig::homogeneous(base, 2);
  all_decode.roles = {ReplicaRole::kDecode, ReplicaRole::kDecode};
  EXPECT_THROW(FleetSim{all_decode}, std::invalid_argument);

  // A dead KV link can never migrate a block.
  FleetConfig dead_link = FleetConfig::homogeneous(base, 2);
  dead_link.roles = {ReplicaRole::kPrefill, ReplicaRole::kDecode};
  dead_link.kv_link.bytes_per_cycle = 0;
  EXPECT_THROW(FleetSim{dead_link}, std::invalid_argument);

  // The same shape with a live link is valid.
  FleetConfig ok = FleetConfig::homogeneous(base, 2);
  ok.roles = {ReplicaRole::kPrefill, ReplicaRole::kDecode};
  ok.kv_link.bytes_per_cycle = 32.0;
  EXPECT_NO_THROW(FleetSim{ok});
}

TEST(FleetCliTest, BalancerNamesRoundTrip) {
  EXPECT_EQ(parse_balancer_policy("rr"), BalancerPolicy::kRoundRobin);
  EXPECT_EQ(parse_balancer_policy("jsq"), BalancerPolicy::kJoinShortestQueue);
  EXPECT_EQ(parse_balancer_policy("kv"), BalancerPolicy::kKvAware);
  EXPECT_STREQ(balancer_policy_name(BalancerPolicy::kRoundRobin),
               "round-robin");
  EXPECT_STREQ(balancer_policy_name(BalancerPolicy::kJoinShortestQueue),
               "join-shortest-queue");
  EXPECT_STREQ(balancer_policy_name(BalancerPolicy::kKvAware), "kv-aware");
}

}  // namespace
}  // namespace looplynx::serve
