// Analytic A100 timing model for the paper's GPU comparison (Fig. 8).
//
// Small-batch GPT-2 inference on an A100 is not compute-bound: the decode
// step launches hundreds of small kernels per token (torch-int W8A8 path),
// so per-token latency is dominated by a launch/dispatch floor plus the
// weight-streaming time, while the prefill step processes the whole prompt
// in one batched pass and pays the launch floor only once. The constants are
// calibrated against the paper's measured ratios (LoopLynx 2-node = 1.67x,
// 4-node = 2.52x on long-generation workloads; A100 wins at [128:32]) and
// the Table I hardware figures.
#pragma once

#include <cstdint>

#include "model/config.hpp"

namespace looplynx::baseline {

struct A100Config {
  double memory_bandwidth_bps = 1935e9;  // Table I
  double memory_efficiency = 0.62;       // achieved fraction on GEMV streams
  double int8_tops = 624e12;             // dense INT8 tensor-core peak
  double prefill_utilization = 0.25;     // achieved fraction at batch<=128
  /// Kernel launch + dispatch floor per transformer layer per step (about a
  /// dozen kernels at a few microseconds each under CUDA graphs disabled).
  double launch_seconds_per_layer = 272e-6;
  /// Fixed per-step overhead outside the layers (sampling, embedding, sync).
  double step_overhead_seconds = 120e-6;
  double inference_power_watts = 100.0;  // nvidia-smi during the run
};

class A100Model {
 public:
  A100Model(const model::ModelConfig& model, A100Config config = {});

  /// Latency of one decode step at sequence position `seq` (seconds).
  double decode_token_seconds(std::uint32_t seq) const;

  /// Latency of a batched prefill over `prompt_len` tokens (seconds).
  double prefill_seconds(std::uint32_t prompt_len) const;

  /// End-to-end request latency (seconds).
  double request_seconds(std::uint32_t prefill_tokens,
                         std::uint32_t decode_tokens) const;

  /// Average per-token latency over a request (ms).
  double avg_token_ms(std::uint32_t prefill_tokens,
                      std::uint32_t decode_tokens) const;

  const A100Config& config() const { return config_; }

 private:
  model::ModelConfig model_;
  A100Config config_;
  double weight_bytes_ = 0;  // int8 transformer weights + lm head
};

}  // namespace looplynx::baseline
