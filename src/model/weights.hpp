// GPT-2 weight container and deterministic random initialization.
//
// Pretrained checkpoints are unavailable offline; weights are initialized
// with a seeded scheme matching GPT-2's published initialization (normal,
// sigma 0.02, residual projections scaled by 1/sqrt(2*n_layer)). Timing is
// data-independent, and functional tests verify arithmetic equivalence, so
// random weights preserve everything the evaluation measures (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "model/config.hpp"
#include "model/tensor.hpp"

namespace looplynx::model {

/// One transformer block's parameters.
struct BlockWeights {
  Tensor ln1_gain, ln1_bias;      // [1 x d]
  Tensor w_qkv;                   // [3d x d]
  Tensor b_qkv;                   // [1 x 3d]
  Tensor w_proj;                  // [d x d]
  Tensor b_proj;                  // [1 x d]
  Tensor ln2_gain, ln2_bias;      // [1 x d]
  Tensor w_fc1;                   // [d_ff x d]
  Tensor b_fc1;                   // [1 x d_ff]
  Tensor w_fc2;                   // [d x d_ff]
  Tensor b_fc2;                   // [1 x d]
};

struct Gpt2Weights {
  ModelConfig config;
  Tensor wte;  // [vocab x d] token embedding (tied with the output head)
  Tensor wpe;  // [max_seq x d] positional embedding
  std::vector<BlockWeights> blocks;
  Tensor lnf_gain, lnf_bias;  // final layernorm

  /// Deterministic random initialization from `seed`.
  static Gpt2Weights random(const ModelConfig& config, std::uint64_t seed);
};

}  // namespace looplynx::model
