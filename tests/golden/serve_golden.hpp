// Checked-in SHA-256 of the canonical serve-layer determinism sweep.
// Regenerate with tools/regen_determinism_golden.sh after an *intentional*
// serve-layer behavior change — never to paper over an unexplained diff
// (that diff IS the determinism regression the fixture exists to catch).
#pragma once

namespace looplynx::golden {

inline constexpr char kServeSweepSha256[] =
    "cf29e60925ba80b757830c239ca3a536e0690809e5f44f4f6a154386f21faa41";

}  // namespace looplynx::golden
