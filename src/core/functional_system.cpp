#include "core/functional_system.hpp"

#include <cassert>
#include <stdexcept>

#include "model/ops.hpp"
#include "quant/quant.hpp"

namespace looplynx::core {

FunctionalSystem::FunctionalSystem(const quant::Gpt2Int8Weights& weights,
                                   std::uint32_t num_nodes)
    : weights_(&weights), num_nodes_(num_nodes) {
  const model::ModelConfig& cfg = weights.config;
  if (num_nodes_ == 0 || cfg.n_head % num_nodes_ != 0 ||
      cfg.d_model % num_nodes_ != 0 || cfg.d_ff % num_nodes_ != 0) {
    throw std::invalid_argument(
        "num_nodes must evenly divide n_head, d_model and d_ff");
  }
  heads_per_node_ = cfg.n_head / num_nodes_;
  kv_.reserve(num_nodes_);
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    kv_.emplace_back(cfg, /*first_head=*/n * heads_per_node_,
                     /*num_heads=*/heads_per_node_);
  }
}

std::vector<float> FunctionalSystem::gather_f32(
    std::vector<std::vector<float>> chunks) {
  net::FunctionalRing<float> ring(num_nodes_);
  net::RingStats stats;
  auto buffers = ring.all_gather(chunks, &stats);
  ring_packs_ += stats.packs_sent;
  assert(net::FunctionalRing<float>::buffers_consistent(buffers));
  return std::move(buffers.front());
}

std::vector<std::int8_t> FunctionalSystem::gather_i8(
    std::vector<std::vector<std::int8_t>> chunks) {
  net::FunctionalRing<std::int8_t> ring(num_nodes_);
  net::RingStats stats;
  auto buffers = ring.all_gather(chunks, &stats);
  ring_packs_ += stats.packs_sent;
  assert(net::FunctionalRing<std::int8_t>::buffers_consistent(buffers));
  return std::move(buffers.front());
}

std::vector<float> FunctionalSystem::forward_token(std::uint32_t token_id) {
  const model::ModelConfig& cfg = weights_->config;
  assert(token_id < cfg.vocab_size);
  assert(position_ < cfg.max_seq_len);
  const std::uint32_t hd = cfg.head_dim();
  const std::uint32_t d = cfg.d_model;
  const std::uint32_t f = cfg.d_ff;
  const std::uint32_t k = num_nodes_;

  // The host distributes the same full embedding vector to all nodes
  // (paper Fig. 2(c)); the residual stream is replicated, and all per-node
  // copies evolve identically — we keep a single canonical copy.
  std::vector<float> x(d);
  const auto tok = weights_->wte.row(token_id);
  const auto pos = weights_->wpe.row(position_);
  for (std::uint32_t i = 0; i < d; ++i) x[i] = tok[i] + pos[i];

  std::vector<float> norm(d);
  std::vector<std::int8_t> x_q(d);
  const std::uint32_t cur = position_;

  for (std::uint32_t l = 0; l < cfg.n_layer; ++l) {
    const quant::Int8Block& blk = weights_->blocks[l];

    // ---- Stage 1: LN1 + quant (replicated on every node). ----
    quant::stages::ln_quant(x, blk.ln1_gain, blk.ln1_bias, blk.ln1_out_scale,
                            norm, x_q);

    // ---- Stage 2+3: per-node QKV head slices, int8 attention. ----
    std::vector<std::vector<std::int8_t>> attn_chunks(k);
    for (std::uint32_t n = 0; n < k; ++n) {
      const std::uint32_t h0 = n * heads_per_node_;
      const std::uint32_t h1 = h0 + heads_per_node_;
      // Column-parallel QKV: rows for this node's heads, in the q/k/v
      // segments of the fused weight matrix.
      std::vector<float> qkv_fp(3ULL * d);
      blk.qkv.forward_rows(x_q, static_cast<std::size_t>(h0) * hd,
                           static_cast<std::size_t>(h1) * hd,
                           std::span<float>(qkv_fp)
                               .subspan(static_cast<std::size_t>(h0) * hd,
                                        static_cast<std::size_t>(h1 - h0) *
                                            hd));
      blk.qkv.forward_rows(
          x_q, d + static_cast<std::size_t>(h0) * hd,
          d + static_cast<std::size_t>(h1) * hd,
          std::span<float>(qkv_fp).subspan(
              d + static_cast<std::size_t>(h0) * hd,
              static_cast<std::size_t>(h1 - h0) * hd));
      blk.qkv.forward_rows(
          x_q, 2ULL * d + static_cast<std::size_t>(h0) * hd,
          2ULL * d + static_cast<std::size_t>(h1) * hd,
          std::span<float>(qkv_fp).subspan(
              2ULL * d + static_cast<std::size_t>(h0) * hd,
              static_cast<std::size_t>(h1 - h0) * hd));

      std::vector<std::int8_t> q_q(static_cast<std::size_t>(h1 - h0) * hd);
      quant::stages::quantize_qkv_heads(cfg, blk, qkv_fp, l, h0, h1, kv_[n],
                                        q_q);
      std::vector<float> attn_local(static_cast<std::size_t>(h1 - h0) * hd);
      quant::stages::attention_heads(cfg, blk, q_q, l, h0, h1, kv_[n], cur,
                                     attn_local);
      attn_chunks[n].resize(attn_local.size());
      quant::quantize(attn_local, blk.attn_out_scale, attn_chunks[n]);
    }
    // Ring all-gather of the int8 attention sub-vectors.
    const std::vector<std::int8_t> attn_q = gather_i8(std::move(attn_chunks));

    // ---- Stage 4: column-parallel projection, fp32 partials gathered. ----
    std::vector<std::vector<float>> proj_chunks(k);
    for (std::uint32_t n = 0; n < k; ++n) {
      proj_chunks[n].resize(d / k);
      blk.proj.forward_rows(attn_q, static_cast<std::size_t>(n) * (d / k),
                            static_cast<std::size_t>(n + 1) * (d / k),
                            proj_chunks[n]);
    }
    const std::vector<float> proj = gather_f32(std::move(proj_chunks));
    model::add_inplace(x, proj);

    // ---- Stage 5: residual + LN2 + quant. ----
    quant::stages::ln_quant(x, blk.ln2_gain, blk.ln2_bias, blk.ln2_out_scale,
                            norm, x_q);

    // ---- Stage 6: column-parallel FC1 + fused GELU, int8 gather. ----
    std::vector<std::vector<std::int8_t>> ff1_chunks(k);
    for (std::uint32_t n = 0; n < k; ++n) {
      std::vector<float> ff1_local(f / k);
      blk.fc1.forward_rows(x_q, static_cast<std::size_t>(n) * (f / k),
                           static_cast<std::size_t>(n + 1) * (f / k),
                           ff1_local);
      ff1_chunks[n].resize(ff1_local.size());
      quant::stages::gelu_quant(ff1_local, blk.gelu_scale, ff1_chunks[n]);
    }
    const std::vector<std::int8_t> ff1_q = gather_i8(std::move(ff1_chunks));

    // ---- Stage 7: column-parallel FC2, fp32 partials gathered. ----
    std::vector<std::vector<float>> ff2_chunks(k);
    for (std::uint32_t n = 0; n < k; ++n) {
      ff2_chunks[n].resize(d / k);
      blk.fc2.forward_rows(ff1_q, static_cast<std::size_t>(n) * (d / k),
                           static_cast<std::size_t>(n + 1) * (d / k),
                           ff2_chunks[n]);
    }
    const std::vector<float> ff2 = gather_f32(std::move(ff2_chunks));
    model::add_inplace(x, ff2);
  }

  for (auto& cache : kv_) cache.advance();
  ++position_;
  model::layer_norm(x, weights_->lnf_gain.flat(), weights_->lnf_bias.flat());
  return x;
}

std::vector<float> FunctionalSystem::logits(
    std::span<const float> hidden) const {
  std::vector<float> out(weights_->config.vocab_size);
  model::matvec(weights_->wte, hidden, out);
  return out;
}

std::uint32_t FunctionalSystem::argmax_token(
    std::span<const float> hidden) const {
  const std::vector<float> lg = logits(hidden);
  std::uint32_t best = 0;
  for (std::uint32_t i = 1; i < lg.size(); ++i) {
    if (lg[i] > lg[best]) best = i;
  }
  return best;
}

std::vector<std::uint32_t> FunctionalSystem::generate(
    std::span<const std::uint32_t> prompt, std::uint32_t num_tokens) {
  assert(!prompt.empty());
  std::vector<float> hidden;
  for (std::uint32_t t : prompt) hidden = forward_token(t);
  std::vector<std::uint32_t> generated;
  generated.reserve(num_tokens);
  for (std::uint32_t i = 0; i < num_tokens; ++i) {
    const std::uint32_t next = argmax_token(hidden);
    generated.push_back(next);
    if (i + 1 < num_tokens) hidden = forward_token(next);
  }
  return generated;
}

std::uint64_t FunctionalSystem::kv_bytes_per_node() const {
  return kv_.empty() ? 0 : kv_.front().bytes_resident();
}

}  // namespace looplynx::core
