// Bounded FIFO channel — the simulated equivalent of an HLS hls::stream /
// AXI-Stream connection between dataflow kernels.
//
// put() blocks (suspends the calling process) when the channel is full;
// get() blocks when it is empty. Hand-off is direct: a put with waiting
// consumers delivers straight into the oldest waiter, and a get that frees
// space immediately admits the oldest blocked producer, preserving strict
// FIFO order in both directions.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <limits>
#include <string>
#include <utility>

#include "sim/engine.hpp"

namespace looplynx::sim {

template <typename T>
class Fifo {
 public:
  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();

  /// `capacity` is the FIFO depth in elements (HLS stream depth). Must be
  /// >= 1; use kUnbounded for an infinitely deep channel.
  Fifo(Engine& engine, std::size_t capacity, std::string name = "")
      : engine_(&engine), capacity_(capacity), name_(std::move(name)) {
    assert(capacity_ >= 1 && "FIFO depth must be at least 1");
  }

  Fifo(const Fifo&) = delete;
  Fifo& operator=(const Fifo&) = delete;

  std::size_t size() const noexcept { return items_.size(); }
  bool empty() const noexcept { return items_.empty(); }
  bool full() const noexcept {
    return capacity_ != kUnbounded && items_.size() >= capacity_;
  }
  std::size_t capacity() const noexcept { return capacity_; }
  const std::string& name() const noexcept { return name_; }

  /// Cumulative number of elements that have passed through the channel.
  std::uint64_t total_transfers() const noexcept { return transfers_; }

  /// High-water mark of the occupancy (useful for sizing HLS stream depths).
  std::size_t max_occupancy() const noexcept { return max_occupancy_; }

  struct PutAwaiter {
    Fifo* fifo;
    T value;
    bool await_ready() {
      if (!fifo->waiting_getters_.empty()) {
        // Direct hand-off to the oldest blocked consumer.
        GetAwaiter* getter = fifo->waiting_getters_.front();
        fifo->waiting_getters_.pop_front();
        getter->value = std::move(value);
        getter->has_value = true;
        fifo->engine_->schedule(0, getter->handle);
        fifo->count_transfer();
        return true;
      }
      if (!fifo->full()) {
        fifo->push_item(std::move(value));
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      fifo->waiting_putters_.push_back(this);
    }
    void await_resume() noexcept {}

    std::coroutine_handle<> handle{};
  };

  struct GetAwaiter {
    Fifo* fifo;
    T value{};
    bool has_value = false;

    bool await_ready() {
      if (!fifo->items_.empty()) {
        value = std::move(fifo->items_.front());
        fifo->items_.pop_front();
        has_value = true;
        fifo->count_transfer();
        fifo->admit_blocked_putter();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      fifo->waiting_getters_.push_back(this);
    }
    T await_resume() {
      assert(has_value && "FIFO getter resumed without a value");
      return std::move(value);
    }

    std::coroutine_handle<> handle{};
  };

  /// co_await fifo.put(v): append v, suspending while the channel is full.
  PutAwaiter put(T value) { return PutAwaiter{this, std::move(value)}; }

  /// co_await fifo.get(): remove and return the oldest element, suspending
  /// while the channel is empty.
  GetAwaiter get() { return GetAwaiter{this}; }

  /// Non-suspending put; returns false if the channel is full and no
  /// consumer is waiting.
  bool try_put(T value) {
    PutAwaiter awaiter{this, std::move(value)};
    return awaiter.await_ready();
  }

  /// Non-suspending get; returns false if the channel is empty.
  bool try_get(T& out) {
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    count_transfer();
    admit_blocked_putter();
    return true;
  }

 private:
  friend struct PutAwaiter;
  friend struct GetAwaiter;

  void push_item(T value) {
    items_.push_back(std::move(value));
    if (items_.size() > max_occupancy_) max_occupancy_ = items_.size();
  }

  void admit_blocked_putter() {
    if (waiting_putters_.empty() || full()) return;
    PutAwaiter* putter = waiting_putters_.front();
    waiting_putters_.pop_front();
    push_item(std::move(putter->value));
    engine_->schedule(0, putter->handle);
  }

  void count_transfer() noexcept { ++transfers_; }

  Engine* engine_;
  std::size_t capacity_;
  std::string name_;
  std::deque<T> items_;
  std::deque<PutAwaiter*> waiting_putters_;
  std::deque<GetAwaiter*> waiting_getters_;
  std::uint64_t transfers_ = 0;
  std::size_t max_occupancy_ = 0;
};

}  // namespace looplynx::sim
