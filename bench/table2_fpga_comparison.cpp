// Regenerates paper Table II: per-token latency and resource utilization of
// LoopLynx (1/2/4 nodes) against the temporal (DFX) and spatial baselines.
//
// Usage: table2_fpga_comparison [--stride=N] [--prefill=64] [--decode=512]
#include <iostream>

#include "baseline/spatial_arch.hpp"
#include "baseline/temporal_dfx.hpp"
#include "bench/bench_common.hpp"
#include "core/resource_model.hpp"
#include "core/system.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  const auto model = bench::model_from_cli(cli);
  const auto prefill =
      static_cast<std::uint32_t>(cli.get_int_or("prefill", bench::kMixPrefill));
  const auto decode =
      static_cast<std::uint32_t>(cli.get_int_or("decode", bench::kMixDecode));
  const core::RunOptions opt = bench::fast_options(cli);

  util::Table table("Table II: Comparison of FPGA implementations (" +
                    model.name + ", [" + std::to_string(prefill) + ":" +
                    std::to_string(decode) + "] request)");
  table.set_header({"Architecture", "# Nodes", "Freq.", "Quant.",
                    "Token Latency", "DSP", "BRAM", "LUT", "FF", "URAM"});

  struct Row {
    std::string nodes_label;
    double ms;
    hw::ResourceVector res;
  };

  double two_node_ms = 0;
  double four_node_ms = 0;
  for (std::uint32_t nodes : {4u, 2u, 1u}) {
    const core::ArchConfig arch = core::ArchConfig::nodes(nodes);
    core::System sys(arch, model);
    const double ms = sys.run(prefill, decode, opt).avg_token_ms;
    if (nodes == 2) two_node_ms = ms;
    if (nodes == 4) four_node_ms = ms;
    const core::ResourceModel rm(arch, model);
    const hw::ResourceVector res = rm.accelerator_total();
    const std::string label =
        std::to_string(nodes) + (nodes == 1 ? " Node" : " Nodes") + " (U50 x" +
        std::to_string(arch.num_fpgas()) + ")";
    table.add_row({nodes == 4 ? "LoopLynx" : "", label, "285 MHz", "W8A8",
                   util::fmt_fixed(ms, 2) + " ms", util::fmt_fixed(res.dsp, 0),
                   util::fmt_fixed(res.bram, 1), util::fmt_kilo(res.lut),
                   util::fmt_kilo(res.ff), util::fmt_fixed(res.uram, 0)});
  }
  table.add_separator();

  const baseline::TemporalModel dfx(model);
  const double dfx_ms = dfx.avg_token_ms(prefill, decode);
  table.add_row({"Temporal Arch. (DFX)", "U280", "200 MHz", "Float16",
                 util::fmt_fixed(dfx_ms, 2) + " ms", "3533", "1192", "520K",
                 "1107K", "104"});
  const baseline::SpatialModel spatial(model);
  const double spatial_ms = spatial.avg_token_ms(prefill, decode);
  table.add_row({"Spatial Arch.", "U280", "245 MHz", "W8A8",
                 util::fmt_fixed(spatial_ms, 2) + " ms", "1780", "389", "653K",
                 "569K", "111"});
  table.render(std::cout);

  std::cout << "\nHeadline speed-ups (paper: 2-node 1.39x/1.08x, 4-node "
               "2.11x/1.64x):\n"
            << "  2-node vs temporal: "
            << util::fmt_speedup(dfx_ms / two_node_ms) << "\n"
            << "  2-node vs spatial:  "
            << util::fmt_speedup(spatial_ms / two_node_ms) << "\n"
            << "  4-node vs temporal: "
            << util::fmt_speedup(dfx_ms / four_node_ms) << "\n"
            << "  4-node vs spatial:  "
            << util::fmt_speedup(spatial_ms / four_node_ms) << "\n";
  return 0;
}
