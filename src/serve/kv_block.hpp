// Paged KV-cache accounting for the serving fleet.
//
// Capacity is split into fixed-size token blocks (the vLLM paging model
// mapped onto the HBM pseudo-channels the architecture dedicates to the KV
// cache: arch.kv_channels x 256 MiB per node on the Alveo U50, int8
// per-token footprint from model::KvCacheT's layout). Each request owns a
// grown-on-demand KvBlockList instead of an up-front whole-footprint
// reservation: admission only needs the prompt's blocks, and decode blocks
// are allocated as tokens are emitted. When a grow finds no free block the
// caller decides what gives — the scheduler either leaves the request
// queued (admission backpressure) or preempts a victim
// (serve::PreemptPolicy::kRecomputeYoungest frees the victim's list and
// re-runs its KV as chunked prefill).
//
// Invariants:
//  - block_tokens == 1 makes the accounting token-granular — bit-identical
//    to the pre-paging whole-footprint KvSlotManager when combined with
//    PreemptPolicy::kNone, which is why it is the default everywhere a
//    sweep must stay byte-reproducible against older output.
//  - try_grow is all-or-nothing: on failure the list is untouched and the
//    stall is counted, so callers can retry after a release without
//    unwinding partial allocations.
//  - used_blocks() never underflows: release_all clamps an over-release
//    (always a caller bug) and counts it in over_release_events() instead
//    of wrapping free_blocks() — admission backpressure survives the bug.
//  - Fleets never share pools: each replica owns one KvBlockManager, so
//    free_blocks() is a per-replica signal (the kv-aware balancer
//    compares free_blocks() x block_tokens() across replicas).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "core/arch_config.hpp"
#include "core/step_cost.hpp"
#include "model/config.hpp"
#include "workload/scenario.hpp"

namespace looplynx::serve {

/// One request's block holdings. `blocks` is how many fixed-size blocks the
/// manager has handed this request; `committed_tokens` is the high-water
/// token count the caller asked those blocks to cover — the gap between
/// `blocks * block_tokens` and `committed_tokens` is internal
/// fragmentation. Plain data so unit tests (and the Request struct) can own
/// one without any engine plumbing.
struct KvBlockList {
  std::uint32_t blocks = 0;
  std::uint32_t committed_tokens = 0;
};

class KvBlockManager {
 public:
  /// `budget_bytes_per_node` == 0 selects the architecture default:
  /// kv_channels x 256 MiB of HBM per node. `block_tokens` is the paging
  /// granularity; 1 == token-granular (exact legacy accounting).
  KvBlockManager(const core::ArchConfig& arch, const model::ModelConfig& model,
                 std::uint64_t budget_bytes_per_node = 0,
                 std::uint32_t block_tokens = 1);

  /// K + V bytes one token occupies on one node (int8, the node's share of
  /// the heads).
  std::uint64_t bytes_per_token_per_node() const { return bytes_per_token_; }

  std::uint32_t block_tokens() const { return block_tokens_; }
  /// Bytes one full block occupies on one node — the unit the KV-migration
  /// fabric ships and the conservation tests count.
  std::uint64_t block_bytes() const {
    return static_cast<std::uint64_t>(block_tokens_) * bytes_per_token_;
  }
  std::uint32_t capacity_blocks() const { return capacity_blocks_; }
  /// Block-rounded token capacity (per node — the head-wise partition makes
  /// every node's occupancy identical).
  std::uint32_t capacity_tokens() const {
    return capacity_blocks_ * block_tokens_;
  }
  std::uint32_t used_blocks() const { return used_blocks_; }
  std::uint32_t free_blocks() const { return capacity_blocks_ - used_blocks_; }

  /// Blocks needed to cover `tokens` KV entries (ceiling division).
  std::uint32_t blocks_for(std::uint32_t tokens) const {
    return (tokens + block_tokens_ - 1) / block_tokens_;
  }

  /// A request whose lifetime footprint needs more blocks than exist can
  /// never run — callers must reject it instead of retrying (or
  /// preempting: evicting the whole fleet would still not make room).
  bool can_ever_fit(std::uint32_t tokens) const {
    return blocks_for(tokens) <= capacity_blocks_;
  }

  /// Grows `list` until it covers `tokens` KV entries. False (and a
  /// recorded stall) when the free pool runs short; the list is untouched
  /// on failure. Shrinking is not supported — a request's KV only grows
  /// until release_all.
  bool try_grow(KvBlockList& list, std::uint32_t tokens);

  /// Returns every block in `list` to the free pool (request completion or
  /// preemption) and resets the list. Releasing more blocks than the
  /// manager has outstanding is clamped (never underflows used_blocks_)
  /// and counted in over_release_events() — it always indicates a caller
  /// bug (a tampered or double-released list).
  void release_all(KvBlockList& list);

  /// Moves `blocks` *full* blocks (blocks x block_tokens committed tokens)
  /// out of `list` without touching the pool — pure ownership transfer,
  /// used when the prefix cache takes over a request's completed prompt
  /// blocks. used_blocks()/live_tokens()/fragmentation are invariant
  /// across a transfer (the new owner holds exactly what `list` gave up);
  /// transferring more full blocks than `list` holds is clamped and
  /// counted in over_release_events() like a bad release.
  void transfer_out(KvBlockList& list, std::uint32_t blocks);

  // ---- Statistics for FleetMetrics ----
  std::uint32_t peak_used_blocks() const { return peak_used_blocks_; }
  std::uint64_t stall_events() const { return stall_events_; }
  std::uint64_t over_release_events() const { return over_release_events_; }
  /// Tokens the outstanding lists were asked to cover (KV actually live).
  std::uint64_t live_tokens() const { return live_tokens_; }
  /// Internal fragmentation right now: allocated-but-uncommitted tokens in
  /// the tail blocks of every outstanding list.
  std::uint64_t frag_tokens() const {
    return static_cast<std::uint64_t>(used_blocks_) * block_tokens_ -
           live_tokens_;
  }
  std::uint64_t peak_frag_tokens() const { return peak_frag_tokens_; }
  double occupancy() const {
    return capacity_blocks_ == 0
               ? 0.0
               : static_cast<double>(used_blocks_) / capacity_blocks_;
  }
  double peak_occupancy() const {
    return capacity_blocks_ == 0
               ? 0.0
               : static_cast<double>(peak_used_blocks_) / capacity_blocks_;
  }

 private:
  std::uint64_t bytes_per_token_ = 0;
  std::uint32_t block_tokens_ = 1;
  std::uint32_t capacity_blocks_ = 0;
  std::uint32_t used_blocks_ = 0;
  std::uint32_t peak_used_blocks_ = 0;
  std::uint64_t live_tokens_ = 0;
  std::uint64_t peak_frag_tokens_ = 0;
  std::uint64_t stall_events_ = 0;
  std::uint64_t over_release_events_ = 0;
};

// ---------------------------------------------------------------------------
// Content-addressed prefix cache (the vLLM paging model's sharing half).
// ---------------------------------------------------------------------------

/// Sentinel chain hash: the parent of a prompt's first block, and the
/// tail_hash of a request that owns no cached blocks yet.
inline constexpr std::uint64_t kNoBlockHash = 0x10071f9ccafe5eedULL;

/// Per-request cache state, owned by serve::Request. Records which cached
/// blocks the request holds references on (admission hits plus its own
/// commits), how many prompt tokens those cover, and the partial-tail
/// registration it must withdraw on release. Plain data; every mutation
/// goes through PrefixCache so refcounts cannot drift.
struct CacheBinding {
  /// Prefill tokens skipped at admission: block-aligned chain hits plus
  /// any copy-on-write partial-tail tokens. The request's prefill cursor
  /// starts here.
  std::uint32_t cached_tokens = 0;
  /// Block-aligned prefix owned by the cache on this request's behalf
  /// (== chain.size() x block_tokens). The request's private KvBlockList
  /// covers positions >= owned_tokens only.
  std::uint32_t owned_tokens = 0;
  /// Chain hash of the deepest cache-owned block (parent for the next
  /// commit); kNoBlockHash at depth 0.
  std::uint64_t tail_hash = kNoBlockHash;
  /// Every cached block this request holds one reference on, root-first.
  std::vector<std::uint64_t> chain;
  /// Set while this request's in-HBM partial tail block is registered as
  /// a copy-on-write source.
  bool partial_registered = false;
  std::uint64_t partial_parent = kNoBlockHash;
  std::uint64_t partial_hash = 0;
};

/// What an admission-time lookup skipped (accounting only; the binding
/// carries the state).
struct PrefixHit {
  std::uint32_t cached_tokens = 0;  // prefill tokens skipped in total
  std::uint32_t chain_blocks = 0;   // full cached blocks hit
  std::uint32_t swapped_in = 0;     // of those, restored from host DRAM
  bool cow = false;                 // partial tail resolved by copy-on-write
};

/// Content-addressed prefix cache over one replica's KvBlockManager.
///
/// Prompt content is identified by hash chains: block i's chain hash is
/// hash(parent chain hash, the block's deterministic token ids from
/// workload::prompt_token_id), so equal prompt prefixes — and only equal
/// prefixes — collide on purpose. A hit turns the shared prefix's prefill
/// cycles into refcount increments; blocks whose refcount drops to zero
/// stay resident ("cached-idle") until pool pressure reclaims them.
///
/// Invariants:
///  - Cache-owned blocks are counted once in the KvBlockManager no matter
///    how many requests share them; commit is an ownership *transfer*
///    (KvBlockManager::transfer_out), never an allocation, so commits
///    cannot fail or deadlock against admission.
///  - Only full blocks of *prompt* content enter the hash table, and a
///    lookup never covers the whole prefill target (at least one token is
///    always prefilled), so first-chunk/TTFT semantics survive a total
///    hit. Partial tails are shared contentually: a divergent or
///    extending continuation resolves to a private copy at admission
///    (copy-on-write), priced as saved prefill, and is only valid while
///    the owner still holds the physical block.
///  - Reclaim is cost-aware and leaf-only: among refcount-zero blocks
///    with no cached children, the cheapest-to-rebuild (by
///    StepCostModel::recompute_cycles over the block's position span) is
///    evicted first, deterministically tie-broken by insertion order then
///    hash. With the swap tier enabled a victim whose rebuild costs more
///    than a host round-trip is swapped out over the DMA/PCIe model
///    instead of discarded, and restored (and re-priced) on its next hit.
///  - Swap transfer cycles accumulate in a ledger the scheduler drains
///    into the observer's `kv-swap` category each iteration, so the
///    cycle-accounting tiling identity holds with swapping active.
///  - drain() releases every resident block back to the pool and throws
///    if any refcount is still live — the end-state blocks-in-use == 0
///    invariant keeps holding with the cache on.
class PrefixCache {
 public:
  PrefixCache(KvBlockManager& kv, const core::StepCostModel& costs,
              bool swap_enabled);

  /// Deterministic content hash of prompt positions [start, start + count)
  /// of `scenario` (ids from workload::prompt_token_id with `unique` as
  /// the per-request fallback stream).
  static std::uint64_t content_hash(const workload::Scenario& scenario,
                                    std::uint64_t unique, std::uint32_t start,
                                    std::uint32_t count);

  /// Chain step: hash(parent, content).
  static std::uint64_t chain_next(std::uint64_t parent, std::uint64_t content);

  /// Admission-time lookup: walks the prompt's hash chain, takes one
  /// reference per hit block (restoring swapped blocks when the pool
  /// allows), resolves at most one partial-tail copy-on-write hit, and
  /// fills `binding`. Covers at most min(prompt, prefill_target - 1)
  /// tokens. Call release() exactly once per successful acquire.
  PrefixHit acquire(const workload::Scenario& scenario, std::uint64_t unique,
                    std::uint32_t prompt_tokens, std::uint32_t prefill_target,
                    CacheBinding& binding);

  /// Called as the prefill cursor advances: commits every newly completed
  /// full prompt block in [binding.owned_tokens, min(prompt_done,
  /// prompt_tokens)) by transferring it out of `list` (or, when a
  /// concurrent request committed identical content first, by releasing
  /// the duplicate block and sharing the existing one), and registers the
  /// partial tail as a copy-on-write source once the prompt is fully
  /// prefilled.
  void commit(const workload::Scenario& scenario, std::uint64_t unique,
              std::uint32_t prompt_done, std::uint32_t prompt_tokens,
              KvBlockList& list, CacheBinding& binding);

  /// Drops one reference per bound block and withdraws the partial-tail
  /// registration (request completion or preemption). Refcount-zero
  /// blocks stay cached-idle until reclaimed.
  void release(CacheBinding& binding);

  /// Tries to free `blocks` pool blocks by reclaiming cached-idle leaves,
  /// cheapest-to-rebuild first (swap-out instead of discard when the swap
  /// tier is on and the round-trip is cheaper than the rebuild). Returns
  /// the number actually freed; callers retry their try_grow either way.
  std::uint32_t reclaim(std::uint32_t blocks);

  /// End-of-run teardown: returns every resident cache-owned block to the
  /// pool. Throws std::logic_error if any reference is still live — a
  /// request leaked its binding.
  void drain();

  /// Swap transfer cycles accrued since the last call (out + in). The
  /// scheduler drains this every iteration into a `kv-swap` span so the
  /// observer's tiling identity holds.
  sim::Cycles take_pending_swap_cycles();

  /// One-way host transfer price of one full block: PCIe turnaround plus
  /// the block's bytes at the HBM channel rate (the DMA engine's burst
  /// model). A swap round-trip costs twice this.
  sim::Cycles swap_transfer_cycles() const { return swap_transfer_cycles_; }

  /// Rebuild price of the block covering positions
  /// [depth x block_tokens, ...): what reclaim weighs against the swap
  /// round-trip.
  sim::Cycles rebuild_cycles(std::uint32_t depth) const;

  bool swap_enabled() const { return swap_enabled_; }

  // ---- Statistics for FleetMetrics ----
  std::uint32_t resident_blocks() const { return resident_blocks_; }
  std::uint64_t insert_blocks() const { return insert_blocks_; }
  std::uint64_t evict_blocks() const { return evict_blocks_; }
  std::uint64_t swap_out_blocks() const { return swap_out_blocks_; }
  std::uint64_t swap_in_blocks() const { return swap_in_blocks_; }
  std::uint64_t cow_events() const { return cow_events_; }
  std::uint64_t dedup_blocks() const { return dedup_blocks_; }
  sim::Cycles swap_cycles_total() const { return swap_cycles_total_; }

 private:
  struct CachedBlock {
    std::uint64_t parent = kNoBlockHash;
    std::uint32_t depth = 0;      // 0-based chain depth
    std::uint32_t refcount = 0;   // live sharers
    /// *Resident* cached blocks whose parent is this one. Counting only
    /// resident children is what keeps reclaim livelock-free: a parent
    /// whose children are all swapped out must stay evictable/swappable,
    /// or refcount-0 chains could pin the pool forever (the scheduler's
    /// oldest-waiter unwedge path relies on reclaim always being able to
    /// unwind unreferenced resident chains leaf-first).
    std::uint32_t children = 0;
    std::uint64_t inserted = 0;   // insertion tick (reclaim tie-break)
    bool resident = true;         // false = swapped to host DRAM
  };
  struct PartialTail {
    std::uint64_t hash = 0;       // chain_next(parent, content of k tokens)
    std::uint32_t tokens = 0;     // k, 1 <= k < block_tokens
    std::uint64_t owner = 0;      // registering request (validity scope)
  };

  void take_ref(std::uint64_t hash, CacheBinding& binding);
  bool restore(std::uint64_t hash, CachedBlock& block);

  KvBlockManager& kv_;
  const core::StepCostModel& costs_;
  bool swap_enabled_ = false;
  sim::Cycles swap_transfer_cycles_ = 0;
  // Keyed by chain hash; std::map for deterministic reclaim scans. 64-bit
  // content hashes are treated as collision-free (documented model
  // assumption, same as vLLM's).
  std::map<std::uint64_t, CachedBlock> blocks_;
  std::map<std::uint64_t, std::vector<PartialTail>> partials_;  // by parent
  std::uint64_t tick_ = 0;              // insertion counter
  std::uint32_t resident_blocks_ = 0;   // cache-owned blocks in HBM
  std::uint64_t insert_blocks_ = 0;
  std::uint64_t evict_blocks_ = 0;
  std::uint64_t swap_out_blocks_ = 0;
  std::uint64_t swap_in_blocks_ = 0;
  std::uint64_t cow_events_ = 0;
  std::uint64_t dedup_blocks_ = 0;
  sim::Cycles pending_swap_cycles_ = 0;
  sim::Cycles swap_cycles_total_ = 0;
};

}  // namespace looplynx::serve
