#!/usr/bin/env bash
# Regenerates the checked-in digests of the canonical serve-layer
# determinism sweep and the canonical observed export
# (tests/golden/serve_golden.hpp).
#
# Run this ONLY after an intentional serve-layer behavior change, and
# review the canonical text diff first:
#
#   GOLDEN_PRINT=1 ./build/test_determinism_golden   # inspect the text
#   tools/regen_determinism_golden.sh [build-dir]    # rewrite the digests
#
# A hash that moved without an intentional change is a determinism
# regression — fix the regression, do not regenerate over it.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo/build}"
header="$repo/tests/golden/serve_golden.hpp"

cmake --build "$build_dir" --target test_determinism_golden -j >/dev/null

sweep_hash="$(GOLDEN_PRINT=1 "$build_dir/test_determinism_golden" \
          --gtest_filter='DeterminismGolden.CanonicalSweepMatchesCheckedInDigest' \
          --gtest_brief=1 | sed -n 's/^SHA256 //p')"
observe_hash="$(GOLDEN_PRINT=1 "$build_dir/test_determinism_golden" \
          --gtest_filter='DeterminismGolden.CanonicalObservedExportMatchesCheckedInDigest' \
          --gtest_brief=1 | sed -n 's/^SHA256-OBSERVE //p')"
cache_hash="$(GOLDEN_PRINT=1 "$build_dir/test_determinism_golden" \
          --gtest_filter='DeterminismGolden.CanonicalCacheSweepMatchesCheckedInDigest' \
          --gtest_brief=1 | sed -n 's/^SHA256-CACHE //p')"
disagg_hash="$(GOLDEN_PRINT=1 "$build_dir/test_determinism_golden" \
          --gtest_filter='DeterminismGolden.CanonicalDisaggSweepMatchesCheckedInDigest' \
          --gtest_brief=1 | sed -n 's/^SHA256-DISAGG //p')"
for hash in "$sweep_hash" "$observe_hash" "$cache_hash" "$disagg_hash"; do
  if [[ ! "$hash" =~ ^[0-9a-f]{64}$ ]]; then
    echo "error: could not extract a SHA-256 from the golden test output" >&2
    exit 1
  fi
done

cat > "$header" <<EOF
// Checked-in SHA-256 digests of the canonical serve-layer determinism
// sweep and the canonical observed export. Regenerate with
// tools/regen_determinism_golden.sh after an *intentional* serve-layer
// behavior change — never to paper over an unexplained diff (that diff
// IS the determinism regression the fixture exists to catch).
#pragma once

namespace looplynx::golden {

inline constexpr char kServeSweepSha256[] =
    "$sweep_hash";

/// Canonical Chrome-trace + Prometheus exports of two observed sweep
/// points; pins every byte both exporters emit (DESIGN.md §7).
inline constexpr char kObserveExportSha256[] =
    "$observe_hash";

/// Canonical prefix-cache sweep (multi-turn chat traffic through the
/// content-addressed cache, eviction tiers included); pins the cache
/// counters and every request's cached-prefix split (DESIGN.md §8).
inline constexpr char kCacheSweepSha256[] =
    "$cache_hash";

/// Canonical disaggregated prefill/decode sweep (role splits with KV
/// migration and work stealing over the ring fabric, plus a per-tier
/// autoscaled point); pins the migration counters, fabric byte totals,
/// every request's migrated/stolen split, the per-tier live stats and
/// the tier-tagged scale log (DESIGN.md §10–§11).
inline constexpr char kDisaggSweepSha256[] =
    "$disagg_hash";

}  // namespace looplynx::golden
EOF

echo "wrote $header"
echo "sweep   $sweep_hash"
echo "observe $observe_hash"
echo "cache   $cache_hash"
echo "disagg  $disagg_hash"
