#include "hw/resources.hpp"

#include <algorithm>
#include <limits>

namespace looplynx::hw {

ResourceVector& ResourceVector::operator+=(const ResourceVector& other) {
  dsp += other.dsp;
  lut += other.lut;
  ff += other.ff;
  bram += other.bram;
  uram += other.uram;
  return *this;
}

bool ResourceVector::fits_within(const ResourceVector& budget) const {
  return dsp <= budget.dsp && lut <= budget.lut && ff <= budget.ff &&
         bram <= budget.bram && uram <= budget.uram;
}

double ResourceVector::max_utilization(const ResourceVector& budget) const {
  double worst = 0.0;
  const auto ratio = [](double need, double have) {
    if (need <= 0) return 0.0;
    if (have <= 0) return std::numeric_limits<double>::infinity();
    return need / have;
  };
  worst = std::max(worst, ratio(dsp, budget.dsp));
  worst = std::max(worst, ratio(lut, budget.lut));
  worst = std::max(worst, ratio(ff, budget.ff));
  worst = std::max(worst, ratio(bram, budget.bram));
  worst = std::max(worst, ratio(uram, budget.uram));
  return worst;
}

ResourceVector alveo_u50_budget() {
  // AMD Alveo U50: XCU50 (UltraScale+), production-card budgets.
  return ResourceVector{
      .dsp = 5952, .lut = 872e3, .ff = 1743e3, .bram = 1344, .uram = 640};
}

ResourceVector alveo_u50_slr_budget() {
  // The XCU50 die is split into two SLRs; budgets are per-SLR halves.
  return alveo_u50_budget() * 0.5;
}

ResourceVector alveo_u280_budget() {
  return ResourceVector{
      .dsp = 9024, .lut = 1304e3, .ff = 2607e3, .bram = 2016, .uram = 960};
}

}  // namespace looplynx::hw
