// Chatbot serving study: the paper's motivating workload (short prompt,
// long auto-regressive generation). Compares LoopLynx deployments against
// the A100 on latency, throughput, energy per reply, and time-to-last-token
// for interactive sessions of several reply lengths.
//
//   ./chatbot_serving [--stride=16]
#include <iostream>
#include <vector>

#include "baseline/gpu_a100.hpp"
#include "core/energy.hpp"
#include "core/system.hpp"
#include "model/config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  const model::ModelConfig gpt2 = model::gpt2_medium();
  core::RunOptions opt;
  opt.token_sample_stride =
      static_cast<std::uint32_t>(cli.get_int_or("stride", 16));

  const baseline::A100Model gpu(gpt2);
  const core::PowerModel power;

  const std::vector<std::uint32_t> reply_lengths{64, 128, 256, 512};
  const std::uint32_t prompt_len = workload::chatbot().prefill;

  util::Table t("Chatbot serving: " + gpt2.name + ", prompt " +
                std::to_string(prompt_len) + " tokens");
  t.set_header({"reply len", "impl", "reply latency", "token/s", "J/reply",
                "vs A100 latency", "vs A100 energy"});

  for (std::uint32_t reply : reply_lengths) {
    const double gpu_s = gpu.request_seconds(prompt_len, reply);
    const double gpu_j = power.a100_energy_joules(gpu_s);
    t.add_row({std::to_string(reply), "A100",
               util::fmt_fixed(gpu_s * 1e3, 0) + " ms",
               util::fmt_fixed(reply / gpu_s, 1), util::fmt_fixed(gpu_j, 1),
               "1.00x", "1.00x"});
    for (std::uint32_t nodes : {1u, 2u, 4u}) {
      const core::ArchConfig arch = core::ArchConfig::nodes(nodes);
      core::System sys(arch, gpt2);
      const core::RunResult r = sys.run(prompt_len, reply, opt);
      const double fpga_s = r.total_ms / 1e3;
      const core::EnergyComparison cmp =
          compare_energy(power, arch, fpga_s, gpu_s, prompt_len + reply);
      t.add_row({"", std::to_string(nodes) + "-node",
                 util::fmt_fixed(r.total_ms, 0) + " ms",
                 util::fmt_fixed(reply / fpga_s, 1),
                 util::fmt_fixed(cmp.fpga_joules, 1),
                 util::fmt_speedup(gpu_s / fpga_s),
                 util::fmt_percent(cmp.energy_fraction) + " of GPU"});
    }
    t.add_separator();
  }
  t.render(std::cout);

  std::cout << "\nReading guide: LoopLynx wins on every long reply (the "
               "decode phase is token-serial,\nwhere the GPU is "
               "launch-bound), and the 2-node card does it inside a 75 W "
               "budget.\nPaper headline at [32:512]: 2-node 1.67x faster at "
               "37.3% of the A100's energy.\n";
  return 0;
}
