// Single-replica continuous-batching serving engine on the sim::Engine
// event loop.
//
// ServingSim wires the serve-layer components together: a TrafficGen
// injects requests (each request is its own root coroutine), a
// RequestQueue holds them until the paged KvBlockManager has room (whole
// footprint under PreemptPolicy::kNone, prompt blocks only under
// kRecomputeYoungest — decode blocks then grow on demand, preempting the
// youngest victim when the pool runs dry), and the Scheduler runs
// iteration-level continuous batching over the admitted set. Batch
// members occupy the time-shared pipeline back to back inside an
// iteration — each priced by core::StepCostModel rather than
// re-simulated — and a CountdownLatch forms the iteration's batch
// barrier; the host PCIe sync is paid once per iteration. The scheduling
// machinery itself lives in serve/replica.hpp, shared with the
// multi-replica FleetSim (serve/fleet.hpp).
//
// Invariants:
//  - Determinism: same ServingConfig (including traffic seed) =>
//    identical FleetMetrics, matching the engine's bit-reproducibility
//    guarantee. The CI byte-identical sweep gate rests on this.
//  - Legacy identity: kv_block_tokens == 1 with PreemptPolicy::kNone
//    reproduces the pre-paging whole-footprint accounting bit for bit.
//  - Livelock-freedom: under kRecomputeYoungest every admitted request
//    completes — preconditioned on age-ordered, decode-only eviction and
//    admission-pause-while-recovering (see scheduler_proc in
//    serve/replica.cpp for the argument).
//
// Architecture notes: DESIGN.md §4 (single replica), §5 (fleets).
#pragma once

#include "core/arch_config.hpp"
#include "core/step_cost.hpp"
#include "model/config.hpp"
#include "serve/metrics.hpp"
#include "serve/scheduler.hpp"
#include "serve/traffic.hpp"

namespace looplynx::serve {

class Observer;  // serve/observe.hpp

struct ServingConfig {
  core::ArchConfig arch = core::ArchConfig::two_node();
  model::ModelConfig model = model::gpt2_medium();
  SchedulerConfig scheduler;
  TrafficConfig traffic;
  /// 0 selects the architecture default (kv_channels x 256 MiB per node).
  std::uint64_t kv_budget_bytes_per_node = 0;
  /// Paged-KV block granularity in tokens (KvBlockManager). 1 ==
  /// token-granular, which with SchedulerConfig::preempt == kNone is
  /// bit-identical to the pre-paging whole-footprint reservation.
  std::uint32_t kv_block_tokens = 1;
  /// Probe stride for the StepCostModel (1 = exact per-position costs).
  std::uint32_t cost_probe_stride = 64;
  /// Content-addressed prefix caching (serve/kv_block.hpp PrefixCache):
  /// admission skips prompt tokens whose KV is already cached, completed
  /// prompt blocks are published for later requests, and refcount-zero
  /// blocks stay cached-idle until pool pressure reclaims them. false (the
  /// default) constructs no cache at all — the run is byte-identical to a
  /// build without the feature.
  bool prefix_cache = false;
  /// Swap-to-host eviction tier: a reclaimed cache block whose prefill
  /// rebuild costs more than a DMA round-trip moves to host DRAM instead
  /// of being discarded, and is restored (transfer priced into the next
  /// iteration's `kv-swap` span) when hit again. Requires prefix_cache.
  bool kv_swap = false;
  SloConfig slo;
  /// Fill FleetMetrics::requests with per-request outcomes.
  bool keep_request_records = false;
};

class ServingSim {
 public:
  /// Builds the step-cost model internally (probes the timed system).
  explicit ServingSim(const ServingConfig& config);

  /// Reuses an existing cost model — sweep harnesses that vary only the
  /// traffic or scheduler knobs should share one across points.
  ServingSim(const ServingConfig& config, core::StepCostModel costs);

  const ServingConfig& config() const { return config_; }
  const core::StepCostModel& costs() const { return costs_; }

  /// Simulates the whole fleet to completion and returns its metrics.
  FleetMetrics run() const;

  /// Same run with an observer attached (serve/observe.hpp): the engine
  /// room records lifecycle events and cycle-accounting spans into it, and
  /// the observer is finalized (tiling asserted, exports unlocked) before
  /// returning. `observer` may be null (identical to run()); when non-null
  /// it must be freshly constructed for 1 replica at this config's clock.
  /// Observation is pure bookkeeping: the returned metrics are identical
  /// to an unobserved run's.
  FleetMetrics run(Observer* observer) const;

 private:
  ServingConfig config_;
  core::StepCostModel costs_;
};

}  // namespace looplynx::serve
