// Latency under load: sweeps arrival rate x max batch size for several
// traffic mixes on the continuous-batching serving engine, reporting
// throughput, goodput and tail latency. This is the scenario family the
// paper's Fig. 8 single-request sweep cannot express: an open arrival
// process, interleaved prefill/decode, KV-slot backpressure — and, with
// --chunk-tokens, chunked prefill that bounds the decode stall a long
// prompt can inflict.
//
//   ./serve_load [--nodes=2] [--model=gpt2-medium] [--requests=64]
//                [--seed=1] [--stride=64]
//                [--policy=prefill|decode|chunked] [--chunk-tokens=0]
//
// --chunk-tokens=N sets the per-iteration token budget
// (SchedulerConfig::max_tokens_per_iter); --policy=chunked selects
// kChunkedMixed and defaults the budget to 64 when none is given.
//
// Output is deterministic: two runs with identical flags produce
// byte-identical tables (seeded traffic + deterministic engine).
#include <cstdint>
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/arch_config.hpp"
#include "core/step_cost.hpp"
#include "serve/serving_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/mix.hpp"

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  const auto nodes = static_cast<std::uint32_t>(cli.get_int_or("nodes", 2));
  const auto requests =
      static_cast<std::uint32_t>(cli.get_int_or("requests", 64));
  const auto seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 1));
  const auto stride =
      static_cast<std::uint32_t>(cli.get_int_or("stride", 64));
  const serve::BatchPolicy policy =
      serve::parse_batch_policy(cli.get_or("policy", "prefill"));
  const auto chunk_tokens = static_cast<std::uint32_t>(
      cli.get_int_or("chunk-tokens", serve::default_chunk_tokens(policy)));

  const core::ArchConfig arch = core::ArchConfig::nodes(nodes);
  const model::ModelConfig model = bench::model_from_cli(cli);

  // One cost probe shared by every sweep point (same arch + model).
  const core::StepCostModel costs(arch, model, stride);

  const std::vector<workload::Mix> mixes = {workload::chatbot_mix(),
                                            workload::codegen_mix(),
                                            workload::summarization_mix(),
                                            workload::mixed_fleet()};
  const std::vector<double> rates = {1.0, 2.0, 4.0, 8.0};
  const std::vector<std::uint32_t> batches = {1, 4, 8, 16};

  util::Table t("Serving under load: " + model.name + ", " +
                std::to_string(nodes) + "-node, " + std::to_string(requests) +
                " requests/point, " + serve::batch_policy_name(policy) +
                ", chunk-tokens " + std::to_string(chunk_tokens));
  t.set_header({"mix", "req/s in", "batch", "done/shed", "tok/s",
                "goodput", "TTFT p50", "TTFT p99", "tok p50", "tok p99",
                "gap p99", "chunks", "stall ms"});

  for (const workload::Mix& mix : mixes) {
    for (double rate : rates) {
      for (std::uint32_t batch : batches) {
        serve::ServingConfig cfg;
        cfg.arch = arch;
        cfg.model = model;
        cfg.traffic.mix = mix;
        cfg.traffic.num_requests = requests;
        cfg.traffic.arrival_rate_per_s = rate;
        cfg.traffic.seed = seed;
        cfg.scheduler.max_batch = batch;
        cfg.scheduler.max_tokens_per_iter = chunk_tokens;
        cfg.scheduler.policy = policy;
        const serve::FleetMetrics m =
            serve::ServingSim(cfg, costs).run();
        t.add_row({mix.name, util::fmt_fixed(rate, 0),
                   util::fmt_int(batch),
                   util::fmt_int(static_cast<long long>(m.completed)) + "/" +
                       util::fmt_int(static_cast<long long>(m.rejected)),
                   util::fmt_fixed(m.decode_tok_s, 1),
                   util::fmt_fixed(m.goodput_req_s, 2),
                   util::fmt_fixed(m.ttft_ms.p50, 1),
                   util::fmt_fixed(m.ttft_ms.p99, 1),
                   util::fmt_fixed(m.token_ms.p50, 2),
                   util::fmt_fixed(m.token_ms.p99, 2),
                   util::fmt_fixed(m.inter_token_gap_ms.p99, 2),
                   util::fmt_int(static_cast<long long>(m.prefill_chunk_steps)),
                   util::fmt_fixed(m.decode_stall_ms, 1)});
      }
      t.add_separator();
    }
  }
  t.render(std::cout);

  std::cout << "\nReading guide: raising max batch amortizes the per-token\n"
               "host sync across the batch, lifting tok/s at some cost in\n"
               "p99 per-token latency; past the saturation rate TTFT blows\n"
               "up first (queueing), which is why goodput — not raw\n"
               "throughput — is the capacity metric. With --policy=chunked\n"
               "a long prompt is split into --chunk-tokens budgeted chunks\n"
               "that co-schedule with running decodes, cutting gap p99 and\n"
               "stall ms (the head-of-line blocking whole prompts inflict)\n"
               "on long-prompt mixes at a small throughput cost from the\n"
               "extra per-iteration host syncs.\n";
  return 0;
}
