// [prefill : decode] workload scenarios used throughout the evaluation
// (paper Fig. 8's x-axis).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace looplynx::workload {

/// A span of prompt content with a deterministic identity: token id at
/// offset `o` within the segment is a pure function of (seed, o). Two
/// segments with the same seed carry the *same tokens*, which is what the
/// serve layer's content-addressed prefix cache keys on — a shared system
/// prompt is one segment reused across every conversation. Segments never
/// affect costs or scheduling; they only define prompt content identity.
struct PromptSegment {
  std::uint64_t seed = 0;     // content identity of this span
  std::uint32_t tokens = 0;   // span length in prompt positions
};

struct Scenario {
  // The two shape integers lead the layout so that a Request embedding a
  // Scenario can keep them inside its first (scheduler-hot) cache line;
  // the cold identity fields (name, segment map) follow.
  std::uint32_t prefill = 0;
  std::uint32_t decode = 0;
  std::string name;          // e.g. "[64:512]"

  /// Optional prompt content map. Empty (the default, and every pre-cache
  /// scenario) means the prompt content is unique to each request — the
  /// prefix cache then never matches across requests, so legacy mixes are
  /// unaffected by construction. When non-empty, the segment token counts
  /// must sum to `prefill` (checked by `prompt_token_id`'s callers).
  std::vector<PromptSegment> prompt_segments;

  std::uint32_t total() const { return prefill + decode; }

  /// Sum of segment lengths (0 when the prompt has no content map).
  std::uint32_t segment_tokens() const {
    std::uint32_t n = 0;
    for (const PromptSegment& s : prompt_segments) n += s.tokens;
    return n;
  }
};

/// Builds the "[p:d]" display name.
Scenario make_scenario(std::uint32_t prefill, std::uint32_t decode);

/// Deterministic token id at prompt position `pos`. Positions covered by
/// `prompt_segments` derive from the owning segment's seed; positions
/// beyond the segment map (or the whole prompt, when the map is empty)
/// derive from `unique` — callers pass a per-request unique value so
/// unmapped content never collides across requests. Pure and
/// platform-independent (SplitMix64), so the prefix-cache hash chains it
/// feeds are byte-reproducible.
std::uint64_t prompt_token_id(const Scenario& scenario, std::uint64_t unique,
                              std::uint32_t pos);

/// The Fig. 8 sweep: prefill in {32, 64, 128} x decode in {32, 128, 512}.
/// Long-decode columns model chatbots/code generation; short-decode columns
/// model classification-style usage where the GPU's batched prefill wins.
std::vector<Scenario> fig8_scenarios();

/// Named application workloads referenced in the paper's introduction.
Scenario chatbot();          // short prompt, long generation
Scenario code_generation();  // medium prompt, long generation
Scenario summarization();    // long prompt, short generation

}  // namespace looplynx::workload
