// Fleet autoscaling walkthrough: the same bursty, whale-heavy traffic
// stream is served three ways at the same seed — a static fleet pinned at
// the floor width, a static fleet pinned at the ceiling width, and an
// autoscaled fleet that moves between the two on the deterministic
// control loop (serve::Autoscaler, DESIGN.md §6).
//
// The point this example pins (and exits nonzero if it ever stops
// holding): on bursty traffic a static fleet must choose between blowing
// the TTFT tail (floor width: every burst queues behind one deployment)
// and paying for idle capacity (ceiling width: the off-phase replicas
// burn replica-seconds doing nothing). The autoscaled fleet takes
// neither loss — it matches the ceiling fleet's SLO-good request count
// while consuming at least 20% fewer replica-cycles, and beats the floor
// fleet's p99 TTFT outright.
//
//   ./autoscale_serving [--requests=120] [--rate=0.5] [--seed=11]
//                       [--min-replicas=1] [--max-replicas=4]
//                       [--scale-interval-ms=25]
//                       [--autoscale=queue|slo|hybrid]
//                       [--trace-out=PATH] [--metrics-out=PATH] [--help]
//
// --trace-out writes a Chrome/Perfetto trace-event JSON of the autoscaled
// run (one track per replica, one async span per request, instants at
// every scale decision — load it at https://ui.perfetto.dev to watch the
// fleet breathe); --metrics-out a Prometheus text exposition of the same
// run. Deterministic: same flags, byte-identical output (seeded traffic +
// engine-ordered events + index-prefix scale decisions), exports included.
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>

#include "core/arch_config.hpp"
#include "core/step_cost.hpp"
#include "model/config.hpp"
#include "serve/autoscaler.hpp"
#include "serve/fleet.hpp"
#include "serve/observe.hpp"
#include "serve/serving_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/mix.hpp"

namespace {

void print_usage() {
  std::cout <<
      "autoscale_serving: static floor vs static ceiling vs autoscaled\n"
      "fleet on a bursty whale-heavy mix.\n"
      "\n"
      "  --requests=N           requests in the shared stream (default "
      "120)\n"
      "  --rate=R               nominal arrival rate per second (default "
      "0.5)\n"
      "  --seed=N               traffic seed (default 11)\n"
      "  --min-replicas=N       floor width / autoscale floor (default 1)\n"
      "  --max-replicas=N       ceiling width / autoscale ceiling "
      "(default 4)\n"
      "  --scale-interval-ms=T  control-loop period in ms (default 25)\n"
      "  --autoscale=P          queue|slo|hybrid control policy (default\n"
      "                         hybrid)\n"
      "  --trace-out=PATH       write a Chrome/Perfetto trace-event JSON\n"
      "                         of the autoscaled run (load at\n"
      "                         https://ui.perfetto.dev)\n"
      "  --metrics-out=PATH     write a Prometheus text exposition of the\n"
      "                         autoscaled run\n"
      "  --help                 this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  if (cli.has("help")) {
    print_usage();
    return 0;
  }

  serve::ServingConfig base;
  base.arch = core::ArchConfig::two_node();
  base.model = model::gpt2_medium();
  // Whale-heavy skew on a bursty (Markov-modulated) arrival process: the
  // on-phase packs whales into a window one replica cannot absorb, the
  // off-phase is silent — exactly the shape where a fixed width either
  // blows the tail or the budget. burst_factor x burst_fraction > 1, so
  // the off phase carries no arrivals at all (see TrafficGen).
  base.traffic.process = serve::ArrivalProcess::kBursty;
  base.traffic.mix =
      workload::Mix{"whale-heavy",
                    {{workload::make_scenario(32, 96), 0.85},
                     {workload::make_scenario(768, 128), 0.15}}};
  base.traffic.num_requests =
      static_cast<std::uint32_t>(cli.get_int_or("requests", 120));
  base.traffic.arrival_rate_per_s = cli.get_double_or("rate", 0.5);
  base.traffic.burst_factor = 6.0;
  base.traffic.burst_fraction = 0.25;
  base.traffic.burst_period_s = 16.0;
  base.traffic.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 11));
  base.scheduler.max_batch = 8;
  // Bound the per-replica run queue at the batch width so backlog is
  // visible as admission-queue depth — the signal the queue policy (and
  // hybrid's fast path) scales on. A deployment that admits everything
  // hides its overload until the latency tail reports it.
  base.scheduler.max_in_flight = 8;
  // The SLO the goodput comparison is judged on. The whale's own 768-token
  // prefill plus batch co-scheduling puts its intrinsic TTFT near 4 s, so
  // the bound must clear that; it is tight enough that a floor-width
  // fleet's burst backlog (which queues for many seconds) misses it.
  base.slo.ttft_ms = 6500.0;
  base.slo.token_ms = 400.0;

  const auto min_replicas =
      static_cast<std::uint32_t>(cli.get_int_or("min-replicas", 1));
  const auto max_replicas =
      static_cast<std::uint32_t>(cli.get_int_or("max-replicas", 4));

  serve::AutoscalerConfig autoscale;
  autoscale.enabled = true;
  // Bare --autoscale stores an empty value; it selects hybrid, matching
  // parse_scheduler_cli's behavior on the bench surfaces.
  const std::string scale_policy = cli.get_or("autoscale", "hybrid");
  autoscale.policy = scale_policy.empty()
                         ? serve::ScalePolicy::kHybrid
                         : serve::parse_scale_policy(scale_policy);
  autoscale.min_replicas = min_replicas;
  autoscale.max_replicas = max_replicas;
  autoscale.eval_interval_ms = cli.get_double_or("scale-interval-ms", 25.0);
  // React fast, release slowly: a burst must reach the ceiling within a
  // few hundred ms (queue_high = 2 queued per live replica, two
  // consecutive evals, short cooldown), while scale-down waits out six
  // quiet evals so the tail of a burst cannot flap the fleet.
  autoscale.queue_high = 2.0;
  autoscale.queue_low = 0.25;
  autoscale.up_evals = 2;
  autoscale.down_evals = 6;
  autoscale.cooldown_evals = 2;

  // One shared cost model (identical replicas everywhere).
  const core::StepCostModel costs(base.arch, base.model, 64);

  const auto run_static = [&](std::uint32_t width) {
    return serve::FleetSim(
               serve::FleetConfig::homogeneous(
                   base, width, serve::BalancerPolicy::kJoinShortestQueue),
               costs)
        .run();
  };
  const serve::FleetResult floor_fleet = run_static(min_replicas);
  const serve::FleetResult ceiling_fleet = run_static(max_replicas);

  serve::FleetConfig scaled_cfg = serve::FleetConfig::homogeneous(
      base, max_replicas, serve::BalancerPolicy::kJoinShortestQueue);
  scaled_cfg.autoscale = autoscale;
  // Exports observe the autoscaled run — the one whose scale/drain
  // decisions the instant events exist for. Unset flags never construct
  // an observer, keeping the default output byte-identical.
  const std::string trace_out = cli.get_or("trace-out", "");
  const std::string metrics_out = cli.get_or("metrics-out", "");
  if ((cli.has("trace-out") && trace_out.empty()) ||
      (cli.has("metrics-out") && metrics_out.empty())) {
    throw std::invalid_argument(
        "--trace-out/--metrics-out need a file path (--trace-out=<path>)");
  }
  std::optional<serve::Observer> obs;
  if (!trace_out.empty() || !metrics_out.empty()) {
    obs.emplace(max_replicas, base.arch.frequency_hz);
  }
  const serve::FleetResult scaled =
      serve::FleetSim(scaled_cfg, costs).run(obs ? &*obs : nullptr);

  const auto describe = [](const std::string& name,
                           const serve::FleetResult& r) {
    std::cout << name << ": slo-good "
              << util::fmt_int(static_cast<long long>(r.fleet.slo_good))
              << "/" << util::fmt_int(static_cast<long long>(r.fleet.offered))
              << ", goodput " << util::fmt_fixed(r.fleet.goodput_req_s, 2)
              << " req/s, TTFT p99 " << util::fmt_fixed(r.fleet.ttft_ms.p99, 1)
              << " ms, replica-seconds "
              << util::fmt_fixed(r.replica_seconds, 2) << "\n";
  };

  floor_fleet
      .to_table("Static floor fleet (" + std::to_string(min_replicas) +
                " replica(s), " + base.traffic.mix.name + " bursty mix)")
      .render(std::cout);
  std::cout << "\n";
  ceiling_fleet
      .to_table("Static ceiling fleet (" + std::to_string(max_replicas) +
                " replicas)")
      .render(std::cout);
  std::cout << "\n";
  scaled
      .to_table("Autoscaled fleet (" +
                std::string(serve::scale_policy_name(autoscale.policy)) +
                ", " + std::to_string(min_replicas) + ".." +
                std::to_string(max_replicas) + " @ " +
                util::fmt_fixed(autoscale.eval_interval_ms, 0) + " ms)")
      .render(std::cout);

  std::cout << "\nScale events (" << scaled.scale_events.size() << "):\n";
  for (const serve::ScaleEvent& e : scaled.scale_events) {
    std::cout << "  t=" << util::fmt_fixed(e.at_ms, 1) << " ms  " << e.from
              << " -> " << e.to << "  (" << serve::scale_trigger_name(e.trigger)
              << ")\n";
  }
  std::cout << "Live replicas " << scaled.min_live_replicas << ".."
            << scaled.peak_live_replicas << ", time-weighted mean "
            << util::fmt_fixed(scaled.mean_live_replicas, 2) << ".\n\n";

  describe("floor   ", floor_fleet);
  describe("ceiling ", ceiling_fleet);
  describe("autoscal", scaled);

  const double cycle_saving =
      1.0 - static_cast<double>(scaled.replica_cycles) /
                static_cast<double>(ceiling_fleet.replica_cycles);
  std::cout << "\nAutoscaled fleet used "
            << util::fmt_percent(cycle_saving, 1)
            << " fewer replica-cycles than the static ceiling fleet.\n";

  if (obs) {
    serve::write_exports(*obs, trace_out, metrics_out);
    if (!trace_out.empty()) {
      std::cout << "Wrote trace-event JSON of the autoscaled run to "
                << trace_out << " (load at https://ui.perfetto.dev)\n";
    }
    if (!metrics_out.empty()) {
      std::cout << "Wrote Prometheus metrics of the autoscaled run to "
                << metrics_out << "\n";
    }
  }

  // The pinned claims. slo_good counts (not rates) compare the SLO
  // outcome over the identical request set: an autoscaled run's makespan
  // can trail a static run's by up to one control interval, which would
  // otherwise penalize its goodput *rate* for serving the same work.
  bool ok = true;
  if (scaled.fleet.slo_good < ceiling_fleet.fleet.slo_good) {
    std::cout << "FAIL: autoscaled fleet served fewer requests within SLO "
                 "than the static ceiling fleet\n";
    ok = false;
  }
  if (cycle_saving < 0.20) {
    std::cout << "FAIL: autoscaled fleet saved less than 20% of the static "
                 "ceiling fleet's replica-cycles\n";
    ok = false;
  }
  if (scaled.fleet.ttft_ms.p99 >= floor_fleet.fleet.ttft_ms.p99) {
    std::cout << "FAIL: autoscaled fleet did not beat the static floor "
                 "fleet's p99 TTFT\n";
    ok = false;
  }
  const auto conserved = [](const serve::FleetResult& r) {
    return r.fleet.completed + r.fleet.rejected == r.fleet.offered;
  };
  if (!conserved(floor_fleet) || !conserved(ceiling_fleet) ||
      !conserved(scaled)) {
    std::cout << "FAIL: request conservation violated\n";
    ok = false;
  }
  return ok ? 0 : 1;
}
