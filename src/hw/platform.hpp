// Hardware platform database (paper Table I) and LoopLynx clock/bandwidth
// parameters (paper Section III-E).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace looplynx::hw {

/// Static platform description, one row of the paper's Table I.
struct PlatformSpec {
  std::string name;
  std::string process;      // e.g. "7nm"
  double frequency_hz = 0;  // nominal compute clock
  std::string compute_units;
  double memory_bandwidth_bps = 0;  // bytes/second, decimal units
  double tdp_watts = 0;

  /// Peak DSP count for FPGAs, tensor-core count for GPUs (informational).
  int compute_unit_count = 0;
};

/// Nvidia A100 (paper Table I row 1).
PlatformSpec a100();

/// Xilinx Alveo U280 (paper Table I row 2) — platform for both baselines.
PlatformSpec alveo_u280();

/// Xilinx Alveo U50 (paper Table I row 3) — platform for LoopLynx.
PlatformSpec alveo_u50();

/// All Table I rows in paper order.
std::vector<PlatformSpec> table1_platforms();

/// Constants shared by the LoopLynx timing model. All bandwidths are in
/// bytes/second (decimal); the paper quotes 8.49 GB/s per HBM pseudo-channel
/// and the same figure for the inter-node network link.
struct LoopLynxClocking {
  /// Post-PnR clock of the decoupled dataflow design (paper: 285 MHz).
  static constexpr double kFrequencyHz = 285e6;
  /// Peak per-pseudo-channel HBM bandwidth (paper: 8.49 GB/s).
  static constexpr double kHbmChannelBps = 8.49e9;
  /// Peak ring-link bandwidth (paper: 8.49 GB/s).
  static constexpr double kNetworkBps = 8.49e9;

  static double hbm_bytes_per_cycle() { return kHbmChannelBps / kFrequencyHz; }
  static double net_bytes_per_cycle() { return kNetworkBps / kFrequencyHz; }
};

}  // namespace looplynx::hw
