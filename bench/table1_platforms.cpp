// Regenerates paper Table I: comparison of GPU and FPGA platforms.
#include <iostream>

#include "hw/platform.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

int main() {
  using namespace looplynx;

  util::Table table("Table I: Comparison of GPU and FPGA platforms");
  table.set_header({"Platform", "Process", "Frequency", "Computing Units",
                    "Bandwidth", "TDP"});
  table.set_align({util::Align::kLeft, util::Align::kRight,
                   util::Align::kRight, util::Align::kLeft,
                   util::Align::kRight, util::Align::kRight});

  for (const hw::PlatformSpec& p : hw::table1_platforms()) {
    const bool fpga = p.name.find("Alveo") != std::string::npos;
    table.add_row({p.name, p.process,
                   fpga ? "200-300MHz"
                        : util::fmt_fixed(p.frequency_hz / 1e6, 0) + "MHz",
                   p.compute_units,
                   util::fmt_fixed(p.memory_bandwidth_bps / 1e9, 0) + " GB/s",
                   util::fmt_fixed(p.tdp_watts, 0) + "W"});
  }
  table.render(std::cout);

  std::cout << "\nDerived LoopLynx clocking (paper Section III-E):\n"
            << "  accelerator clock:      285 MHz\n"
            << "  per-HBM-channel peak:   "
            << util::fmt_rate(hw::LoopLynxClocking::kHbmChannelBps) << " ("
            << util::fmt_fixed(hw::LoopLynxClocking::hbm_bytes_per_cycle(), 1)
            << " B/cycle)\n"
            << "  ring link peak:         "
            << util::fmt_rate(hw::LoopLynxClocking::kNetworkBps) << "\n";
  return 0;
}
