#include "workload/mix.hpp"

#include <cassert>

namespace looplynx::workload {

const Scenario& Mix::sample(double u) const {
  assert(!entries.empty());
  double total = 0.0;
  for (const WeightedScenario& e : entries) total += e.weight;
  double cum = 0.0;
  for (const WeightedScenario& e : entries) {
    cum += e.weight / total;
    if (u < cum) return e.scenario;
  }
  return entries.back().scenario;  // u rounding at the top end
}

double Mix::mean_tokens_per_request() const {
  double total = 0.0;
  double acc = 0.0;
  for (const WeightedScenario& e : entries) total += e.weight;
  for (const WeightedScenario& e : entries) {
    acc += e.weight / total * static_cast<double>(e.scenario.total());
  }
  return acc;
}

Mix chatbot_mix() {
  return Mix{"chatbot",
             {{chatbot(), 0.7},
              {make_scenario(32, 128), 0.2},   // short follow-up turns
              {make_scenario(128, 512), 0.1}}};  // long-context turns
}

Mix codegen_mix() {
  return Mix{"codegen",
             {{code_generation(), 0.6},
              {make_scenario(64, 32), 0.3},    // inline completions
              {make_scenario(128, 512), 0.1}}};  // whole-file generation
}

Mix summarization_mix() {
  return Mix{"summarization",
             {{summarization(), 0.8},
              {make_scenario(128, 128), 0.2}}};  // summary + bullet points
}

Mix mixed_fleet() {
  return Mix{"mixed-fleet",
             {{chatbot(), 0.4},
              {code_generation(), 0.3},
              {summarization(), 0.2},
              {make_scenario(32, 32), 0.05},   // classification-style
              {make_scenario(128, 512), 0.05}}};  // heavy stragglers
}

std::vector<Mix> all_mixes() {
  return {chatbot_mix(), codegen_mix(), summarization_mix(), mixed_fleet()};
}

}  // namespace looplynx::workload
