// Hardware softmax unit model (paper Fig. 6(b)'s softmax stage).
//
// FPGAs do not evaluate exp() in floating point: the unit computes
// e^x = 2^(x * log2 e) by splitting the exponent into an integer part
// (a barrel shift) and a fractional part looked up in a small BRAM table
// with linear interpolation. This model reproduces that arithmetic so the
// functional path can bound the accuracy cost of the hardware unit, and so
// tests can verify the two-pass structure (sum of exponents, then
// normalization) the head-wise pipeline hides.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace looplynx::quant {

struct HwSoftmaxConfig {
  /// log2(entries) of the fractional 2^f lookup table (BRAM depth).
  std::uint32_t lut_bits = 8;
  /// Enable linear interpolation between adjacent LUT entries.
  bool interpolate = true;
  /// Scores below (max - clamp_range) flush to zero probability, bounding
  /// the shift range of the integer part.
  float clamp_range = 16.0f;
};

class HwSoftmax {
 public:
  explicit HwSoftmax(HwSoftmaxConfig config = {});

  /// In-place softmax using the LUT exponential (two passes, matching the
  /// hardware's softmax.1 / softmax.2 split).
  void operator()(std::span<float> x) const;

  /// The LUT exponential itself: e^x for x <= 0.
  float exp_lut(float x) const;

  /// Max |hw - exact| probability error over a vector (diagnostic).
  static float max_probability_error(std::span<const float> scores,
                                     const HwSoftmax& hw);

  const HwSoftmaxConfig& config() const { return config_; }
  std::size_t lut_entries() const { return table_.size(); }

 private:
  HwSoftmaxConfig config_;
  std::vector<float> table_;  // 2^f for f in [0, 1)
};

}  // namespace looplynx::quant
