// Functional co-simulation: the distributed accelerator (column-parallel
// linears, head-wise KV partition, ring all-gather) must produce outputs
// bitwise identical to the single-device W8A8 model, for every node count.
#include <gtest/gtest.h>

#include <vector>

#include "core/functional_system.hpp"
#include "model/config.hpp"
#include "model/gpt2_ref.hpp"
#include "model/weights.hpp"
#include "quant/int8_model.hpp"
#include "quant/quant.hpp"
#include "util/rng.hpp"

namespace looplynx::core {
namespace {

std::vector<std::uint32_t> random_tokens(const model::ModelConfig& cfg,
                                         std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint32_t> toks(n);
  for (auto& t : toks) {
    t = static_cast<std::uint32_t>(rng.next_below(cfg.vocab_size));
  }
  return toks;
}

quant::Gpt2Int8Weights make_weights(const model::ModelConfig& cfg,
                                    std::uint64_t seed) {
  const auto w = model::Gpt2Weights::random(cfg, seed);
  return quant::Gpt2Int8Weights::build_with_calibration(
      w, random_tokens(cfg, 24, seed + 1));
}

TEST(FunctionalSystemTest, RejectsIndivisibleNodeCounts) {
  const auto wq = make_weights(model::tiny_config(), 5);  // 4 heads
  EXPECT_THROW(FunctionalSystem(wq, 3), std::invalid_argument);
  EXPECT_THROW(FunctionalSystem(wq, 0), std::invalid_argument);
  EXPECT_NO_THROW(FunctionalSystem(wq, 4));
}

TEST(FunctionalSystemTest, SingleNodeMatchesInt8ModelBitwise) {
  const auto wq = make_weights(model::tiny_config(), 7);
  quant::Gpt2Int8 single(wq);
  FunctionalSystem dist(wq, 1);
  for (std::uint32_t t : {3u, 9u, 27u, 81u}) {
    const auto h_single = single.forward_token(t);
    const auto h_dist = dist.forward_token(t);
    ASSERT_EQ(h_single.size(), h_dist.size());
    for (std::size_t i = 0; i < h_single.size(); ++i) {
      ASSERT_EQ(h_single[i], h_dist[i]) << "element " << i;
    }
  }
}

class NodeCountEquivalenceTest
    : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(NodeCountEquivalenceTest, HiddenStatesBitwiseEqualSingleDevice) {
  const std::uint32_t nodes = GetParam();
  const auto cfg = model::cosim_config();  // 8 heads, d=64, d_ff=128
  const auto wq = make_weights(cfg, 11);
  quant::Gpt2Int8 single(wq);
  FunctionalSystem dist(wq, nodes);
  const auto toks = random_tokens(cfg, 12, 1234);
  for (std::uint32_t t : toks) {
    const auto h_single = single.forward_token(t);
    const auto h_dist = dist.forward_token(t);
    ASSERT_EQ(h_single.size(), h_dist.size());
    for (std::size_t i = 0; i < h_single.size(); ++i) {
      ASSERT_EQ(h_single[i], h_dist[i])
          << "nodes=" << nodes << " token-step pos=" << dist.position()
          << " element " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, NodeCountEquivalenceTest,
                         ::testing::Values(1, 2, 4, 8),
                         [](const ::testing::TestParamInfo<std::uint32_t>& i) {
                           return "nodes" + std::to_string(i.param);
                         });

TEST(FunctionalSystemTest, GreedyGenerationIdenticalAcrossNodeCounts) {
  const auto cfg = model::cosim_config();
  const auto wq = make_weights(cfg, 21);
  const std::vector<std::uint32_t> prompt{5, 10, 15, 20};

  quant::Gpt2Int8 single(wq);
  const auto ref = single.generate(prompt, 10);
  for (std::uint32_t nodes : {1u, 2u, 4u}) {
    FunctionalSystem dist(wq, nodes);
    EXPECT_EQ(dist.generate(prompt, 10), ref) << "nodes=" << nodes;
  }
}

TEST(FunctionalSystemTest, KvCachePartitionShrinksPerNode) {
  const auto cfg = model::cosim_config();
  const auto wq = make_weights(cfg, 31);
  FunctionalSystem one(wq, 1), two(wq, 2), four(wq, 4);
  EXPECT_EQ(one.kv_bytes_per_node(), 2 * two.kv_bytes_per_node());
  EXPECT_EQ(two.kv_bytes_per_node(), 2 * four.kv_bytes_per_node());
}

TEST(FunctionalSystemTest, RingTrafficScalesWithNodeCount) {
  const auto cfg = model::cosim_config();
  const auto wq = make_weights(cfg, 41);
  FunctionalSystem two(wq, 2), four(wq, 4);
  (void)two.forward_token(1);
  (void)four.forward_token(1);
  // K nodes exchange K*(K-1) chunk packs per gather.
  EXPECT_GT(four.ring_packs(), two.ring_packs());
  // 4 gathers per layer (attn, proj, fc1, fc2).
  EXPECT_EQ(two.ring_packs(), 4ULL * cfg.n_layer * 2 * 1);
  EXPECT_EQ(four.ring_packs(), 4ULL * cfg.n_layer * 4 * 3);
}

TEST(FunctionalSystemTest, TracksQuantizedAccuracyVsFp32) {
  // End-to-end sanity: the distributed quantized accelerator stays close to
  // the fp32 reference (inherits the Gpt2Int8 accuracy bound).
  const auto cfg = model::cosim_config();
  const auto w = model::Gpt2Weights::random(cfg, 51);
  const auto wq = quant::Gpt2Int8Weights::build_with_calibration(
      w, random_tokens(cfg, 24, 52));
  model::Gpt2Reference ref(w);
  FunctionalSystem dist(wq, 4);
  std::vector<float> h_ref, h_dist;
  for (std::uint32_t t : {2u, 4u, 8u, 16u, 32u}) {
    h_ref = ref.forward_token(t);
    h_dist = dist.forward_token(t);
  }
  const auto err = quant::compare(h_ref, h_dist);
  EXPECT_LT(err.rel_l2, 0.15);
}

}  // namespace
}  // namespace looplynx::core
