#include "serve/cli_flags.hpp"

#include <stdexcept>
#include <string>

namespace looplynx::serve {

SchedulerCliOptions parse_scheduler_cli(const util::Cli& cli,
                                        const std::string& default_policy) {
  SchedulerCliOptions opts;
  opts.policy = parse_batch_policy(cli.get_or("policy", default_policy));

  const long long chunk = cli.get_int_or(
      "chunk-tokens", default_chunk_tokens(opts.policy));
  if (chunk < 0) {
    throw std::invalid_argument("--chunk-tokens must be >= 0");
  }
  if (chunk > 0 && opts.policy != BatchPolicy::kChunkedMixed) {
    throw std::invalid_argument(
        "--chunk-tokens=" + std::to_string(chunk) +
        " requires --policy=chunked: the whole-prompt policies never split "
        "prompts, so a token budget would silently degrade into a "
        "batch-member cap");
  }
  opts.chunk_tokens = static_cast<std::uint32_t>(chunk);

  opts.preempt = parse_preempt_policy(cli.get_or("preempt", "none"));

  const long long block_tokens = cli.get_int_or("kv-block-tokens", 1);
  if (block_tokens < 1) {
    throw std::invalid_argument(
        "--kv-block-tokens must be >= 1 (1 = token-granular accounting, "
        "bit-identical to the pre-paging whole-footprint reservation)");
  }
  opts.kv_block_tokens = static_cast<std::uint32_t>(block_tokens);

  const long long replicas = cli.get_int_or("replicas", 1);
  if (replicas < 1) {
    throw std::invalid_argument(
        "--replicas must be >= 1 (1 = the single-replica engine, "
        "byte-identical to the pre-fleet output)");
  }
  opts.replicas = static_cast<std::uint32_t>(replicas);

  if (const auto balancer = cli.get("balancer")) {
    if (opts.replicas < 2) {
      throw std::invalid_argument(
          "--balancer requires --replicas >= 2: routing over a single "
          "replica is a no-op, so the flag would silently do nothing");
    }
    opts.balancer = parse_balancer_policy(*balancer);
  }
  return opts;
}

}  // namespace looplynx::serve
