// Tests for the comparison baselines: A100 analytic model, DFX-style
// temporal simulator, spatial-architecture simulator — including the
// paper-shape relations (who wins where, by roughly what factor).
#include <gtest/gtest.h>

#include "baseline/gpu_a100.hpp"
#include "baseline/spatial_arch.hpp"
#include "baseline/temporal_dfx.hpp"
#include "core/arch_config.hpp"
#include "core/system.hpp"
#include "model/config.hpp"
#include "workload/scenario.hpp"

namespace looplynx::baseline {
namespace {

TEST(A100ModelTest, DecodeIsLaunchBoundNotBandwidthBound) {
  const A100Model gpu(model::gpt2_medium());
  const double t = gpu.decode_token_seconds(256);
  // Pure weight streaming would take ~0.3 ms; measured small-batch decode
  // sits far above it.
  EXPECT_GT(t, 3e-3);
  EXPECT_LT(t, 10e-3);
}

TEST(A100ModelTest, PrefillBatchesEfficiently) {
  const A100Model gpu(model::gpt2_medium());
  // 128 prompt tokens cost barely more than one decode step.
  const double prefill = gpu.prefill_seconds(128);
  const double decode128 = 128 * gpu.decode_token_seconds(64);
  EXPECT_LT(prefill, decode128 / 20);
}

TEST(A100ModelTest, DecodeLatencyGrowsWithSequence) {
  const A100Model gpu(model::gpt2_medium());
  EXPECT_GT(gpu.decode_token_seconds(1000), gpu.decode_token_seconds(1));
}

TEST(A100ModelTest, RequestComposition) {
  const A100Model gpu(model::gpt2_medium());
  const double total = gpu.request_seconds(32, 2);
  const double expect = gpu.prefill_seconds(32) +
                        gpu.decode_token_seconds(32) +
                        gpu.decode_token_seconds(33);
  EXPECT_DOUBLE_EQ(total, expect);
}

TEST(TemporalModelTest, MatchesPublishedDfxLatency) {
  const TemporalModel dfx(model::gpt2_medium());
  // Paper Table II: 5.37 ms per token on one U280.
  EXPECT_NEAR(dfx.avg_token_ms(64, 512), 5.37, 0.30);
}

TEST(TemporalModelTest, OverheadDominatesBandwidth) {
  const TemporalModel dfx(model::gpt2_medium());
  const TemporalBreakdown b = dfx.breakdown(256);
  // The serialized instruction stream wastes more time than the raw fp16
  // weight streaming — the motivation for LoopLynx's dataflow design.
  EXPECT_GT(b.overhead_ms + b.compute_ms, b.memory_ms);
  EXPECT_GT(b.memory_ms, 0.0);
}

TEST(TemporalModelTest, Fp16DoublesWeightTraffic) {
  TemporalConfig int8_cfg;
  int8_cfg.bytes_per_weight = 1;
  const TemporalModel fp16(model::gpt2_medium());
  const TemporalModel int8(model::gpt2_medium(), int8_cfg);
  EXPECT_NEAR(fp16.breakdown(128).memory_ms,
              2.0 * int8.breakdown(128).memory_ms, 1e-9);
}

TEST(SpatialModelTest, MatchesPublishedLatency) {
  const SpatialModel spatial(model::gpt2_medium());
  // Paper Table II: 4.17 ms weighted per-token latency.
  EXPECT_NEAR(spatial.avg_token_ms(64, 512), 4.17, 0.30);
}

TEST(SpatialModelTest, PrefillPipelinesDecodeDoesNot) {
  const SpatialModel spatial(model::gpt2_medium());
  // Task-level pipelining makes prefill an order of magnitude cheaper per
  // token than serialized decode (paper Fig. 3(b)).
  EXPECT_LT(spatial.prefill_token_ms() * 5, spatial.decode_token_ms(128));
}

TEST(SpatialModelTest, ResourcePartitioningCostsDecodeLatency) {
  SpatialConfig merged;
  merged.matrix_kernel_groups = 1;  // hypothetical: all ports to one kernel
  const SpatialModel split(model::gpt2_medium());
  const SpatialModel one_kernel(model::gpt2_medium(), merged);
  EXPECT_GT(split.decode_token_ms(128), one_kernel.decode_token_ms(128));
}

// --- Cross-system paper-shape checks (Table II + Fig. 8 headlines). ---

class PaperShapeTest : public ::testing::Test {
 protected:
  static double looplynx_ms(std::uint32_t nodes) {
    core::System sys(core::ArchConfig::nodes(nodes), model::gpt2_medium());
    core::RunOptions opt;
    opt.token_sample_stride = 32;
    return sys.run(64, 512, opt).avg_token_ms;
  }
};

TEST_F(PaperShapeTest, TwoNodeBeatsBothFpgaBaselines) {
  const double ours = looplynx_ms(2);
  const TemporalModel dfx(model::gpt2_medium());
  const SpatialModel spatial(model::gpt2_medium());
  const double vs_dfx = dfx.avg_token_ms(64, 512) / ours;
  const double vs_spatial = spatial.avg_token_ms(64, 512) / ours;
  // Paper: 1.39x and 1.08x.
  EXPECT_NEAR(vs_dfx, 1.39, 0.20);
  EXPECT_NEAR(vs_spatial, 1.08, 0.15);
}

TEST_F(PaperShapeTest, FourNodeExtendsTheLead) {
  const double ours = looplynx_ms(4);
  const TemporalModel dfx(model::gpt2_medium());
  const SpatialModel spatial(model::gpt2_medium());
  // Paper: 2.11x and 1.64x.
  EXPECT_NEAR(dfx.avg_token_ms(64, 512) / ours, 2.11, 0.30);
  EXPECT_NEAR(spatial.avg_token_ms(64, 512) / ours, 1.64, 0.25);
}

TEST_F(PaperShapeTest, SingleNodeIsSlowerButResourceLean) {
  const double ours = looplynx_ms(1);
  const TemporalModel dfx(model::gpt2_medium());
  const SpatialModel spatial(model::gpt2_medium());
  // Paper: 1-node LoopLynx is slightly slower than both baselines.
  EXPECT_GT(ours, dfx.avg_token_ms(64, 512));
  EXPECT_GT(ours, spatial.avg_token_ms(64, 512));
}

TEST_F(PaperShapeTest, GpuWinsShortDecodeLosesLongDecode) {
  const A100Model gpu(model::gpt2_medium());
  const model::ModelConfig m = model::gpt2_medium();
  core::System two(core::ArchConfig::two_node(), m);
  core::RunOptions opt;
  opt.token_sample_stride = 16;

  // [128:32]: prefill-heavy — A100 wins (paper Fig. 8(a)).
  const auto sum128 = workload::summarization();
  const double fpga_short =
      two.run(sum128.prefill, sum128.decode, opt).total_ms;
  const double gpu_short =
      gpu.request_seconds(sum128.prefill, sum128.decode) * 1e3;
  EXPECT_LT(gpu_short, fpga_short);

  // [32:512]: long generation — LoopLynx wins by ~1.7x.
  const auto chat = workload::chatbot();
  const double fpga_long = two.run(chat.prefill, chat.decode, opt).total_ms;
  const double gpu_long =
      gpu.request_seconds(chat.prefill, chat.decode) * 1e3;
  EXPECT_NEAR(gpu_long / fpga_long, 1.67, 0.25);
}

}  // namespace
}  // namespace looplynx::baseline
