// One serving replica's engine room — the internal machinery shared by
// ServingSim (a single replica on its own engine) and FleetSim (several
// replicas on one shared engine behind a LoadBalancer).
//
// A Replica owns everything one deployment needs per run: the admission
// queue, the paged KvBlockManager, the iteration scheduler, the request
// storage and every progress counter FleetMetrics reports. It does NOT own
// the sim::Engine or the TrafficGen — those belong to the harness
// (ServingSim::run / FleetSim::run), because a fleet shares one clock and
// one arrival stream across all replicas.
//
// This header is internal to src/serve/: the public entry points are
// serving_sim.hpp and fleet.hpp. The split exists so the two harnesses
// cannot drift — the scheduling loop, admission control and preemption
// logic are one implementation, and a single-replica FleetSim run is
// bit-identical to a ServingSim run (pinned in tests/test_fleet.cpp).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/step_cost.hpp"
#include "net/fabric.hpp"
#include "serve/fleet.hpp"
#include "serve/kv_block.hpp"
#include "serve/metrics.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "serve/scheduler.hpp"
#include "serve/serving_sim.hpp"
#include "serve/traffic.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "util/slot_map.hpp"
#include "util/stats.hpp"

namespace looplynx::serve {
class Observer;  // serve/observe.hpp — optional lifecycle/cycle recorder
}

namespace looplynx::serve::detail {

/// Fleet-wide counters shared by every replica of one run. Request ids are
/// allocated from here so they are unique across the fleet and strictly
/// increasing in injection order — the property the age-ordered preemption
/// policy (oldest == lowest id) and the Host submit/flush record mapping
/// both rely on. A single-replica run owns a private instance.
struct FleetShared {
  std::uint32_t target = 0;     // traffic.num_requests, the injection budget
  std::uint32_t injected = 0;   // requests created fleet-wide so far
  std::uint32_t active = 0;     // admitted and unfinished, fleet-wide
  std::uint32_t peak_active = 0;
  /// Live replicas right now — the sum of every tier's live-prefix count
  /// (a symmetric fleet is one tier, so this is the legacy index prefix
  /// [0, live_replicas)). 1 for single-replica runs, the fleet width for
  /// static fleets; the autoscaler moves it mid-run. Snapshotted into
  /// each request at routing time for RequestRecord::live_replicas.
  std::uint32_t live_replicas = 1;
  /// When non-null (autoscaled fleets only), every host-visible first
  /// token pushes its (emission time ms, TTFT ms) sample here — the
  /// autoscaler's rolling-window SLO signal, fed at emission so an
  /// evaluation never re-scans completed records. Null on static runs:
  /// no samples, no behavior change.
  util::SlidingWindow* ttft_window = nullptr;
  /// When non-null, the engine room records lifecycle events and cycle-
  /// accounting spans here (serve/observe.hpp). Same contract as
  /// ttft_window: pure bookkeeping on the simulated clock — no engine
  /// events — so attaching an observer cannot change a run's schedule or
  /// metrics. Null (the default) means zero observability overhead and
  /// byte-identical output to an unobserved build.
  Observer* observer = nullptr;
  /// When set (the bench-critical open-loop unobserved configuration), the
  /// scheduler advances every batch member itself — one engine event per
  /// iteration instead of three per member-step (grant wake + two delays).
  /// Each request's root process exits right after enqueueing, and the
  /// scheduler performs the per-step bookkeeping inline with computed
  /// timestamps. Byte-identical to the member-driven path: all bookkeeping
  /// runs in the same order (batch order == pipeline-slot time order) with
  /// the same timestamps, and the prefix cache orders its LRU by insertion
  /// tick, not wall time. Harnesses must leave this false when an observer
  /// is attached (records interleave with other events at intermediate
  /// times), when the autoscaler's TTFT window is live (samples are pushed
  /// at emission instants), or under closed-loop traffic (clients re-submit
  /// on the done signal, so completion-wake order feeds back into arrivals).
  bool scheduler_drives = false;

  bool arrivals_done() const { return injected >= target; }
};

/// Shared state of one disaggregated fleet run (FleetConfig::roles). Off =
/// absent: symmetric fleets never construct one — Replica::disagg stays
/// null, no fabric exists, and every disaggregation branch in the engine
/// room is dead, which is what keeps role-less output byte-identical.
struct DisaggShared {
  /// The timed KV-migration ring (one simplex link per replica). Owned by
  /// the fleet run frame alongside the engine.
  net::RingFabric* fabric = nullptr;
  /// Every replica of the run in fleet order — migration target and
  /// work-steal victim picks scan this (deterministic index tie-breaks).
  std::vector<Replica*> replicas;
};

/// Plain-data snapshot of a retired request, appended the moment it
/// completes or is rejected. The Request object itself is recycled into the
/// arena right away; everything read after the run — RequestRecords,
/// the fleet timeline's occupancy integral — comes from this log.
struct FinishedRequest {
  std::uint32_t id = 0;
  std::uint32_t prefill_tokens = 0;
  std::uint32_t decoded = 0;
  std::uint32_t prefill_chunks = 0;
  std::uint32_t preempt_count = 0;
  std::uint32_t cached_prefix = 0;
  std::uint32_t live_at_route = 1;
  bool rejected = false;
  bool migrated = false;  // KV shipped to a decode replica mid-flight
  bool stolen = false;    // taken from a neighbor's queue while Queued
  sim::Cycles arrival = 0;
  sim::Cycles admitted = 0;
  sim::Cycles first_token = 0;
  sim::Cycles completed = 0;
  sim::Cycles max_token_gap = 0;
};

/// Everything one replica owns for one run. Lives on the harness run()'s
/// stack (or heap, for fleets); all coroutines hold references into it and
/// either complete before it is destroyed or are destroyed un-resumed with
/// the engine.
struct Replica {
  Replica(sim::Engine& engine_, const ServingConfig& cfg_,
          const core::StepCostModel& costs_, FleetShared& shared_,
          std::uint32_t id_)
      : engine(engine_),
        cfg(cfg_),
        costs(costs_),
        shared(shared_),
        id(id_),
        queue(cfg_.scheduler.queue_capacity),
        kv(cfg_.arch, cfg_.model, cfg_.kv_budget_bytes_per_node,
           cfg_.kv_block_tokens),
        sched(cfg_.scheduler),
        work(engine_) {
    // Off = absent: when the flag is unset no PrefixCache object exists and
    // the engine room never branches into cache code — the run's event
    // sequence (and every output byte) is identical to a cache-less build.
    if (cfg_.prefix_cache) cache.emplace(kv, costs_, cfg_.kv_swap);
  }
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  sim::Engine& engine;
  const ServingConfig& cfg;
  const core::StepCostModel& costs;
  FleetShared& shared;
  const std::uint32_t id;  // replica index within the fleet (0 for lone runs)

  RequestQueue queue;
  KvBlockManager kv;
  Scheduler sched;
  sim::Signal work;  // arrivals and completions nudge the scheduler
  /// Content-addressed prefix cache over `kv`; engaged only when
  /// cfg.prefix_cache is set (see the ctor note — off means absent).
  std::optional<PrefixCache> cache;

  // ---- Disaggregation (set by the fleet harness before any process
  // spawns; both stay at their defaults on symmetric/single runs) ----
  ReplicaRole role = ReplicaRole::kGeneral;
  DisaggShared* disagg = nullptr;
  /// False while this replica sits outside its tier's live prefix
  /// (autoscaled fleets only — static runs leave every replica live).
  /// The fleet's router masks it, and on disaggregated fleets the
  /// hand-off paths respect it too: a deactivated replica is never
  /// picked as a KV-migration target and never initiates a steal — but
  /// it keeps its scheduler running until everything already routed,
  /// migrated or stolen into it has finished (graceful drain), and
  /// in-flight hand-offs aimed at it before the scale-down still land
  /// and are served.
  bool live = true;

  bool paged_admission() const {
    return cfg.scheduler.preempt != PreemptPolicy::kNone;
  }

  /// Flat request arena: requests live in recycled slots with stable
  /// addresses (coroutines hold Request& across suspension) and zero
  /// steady-state allocation. Whoever retires a request erases its slot —
  /// see the release protocol notes in replica.cpp.
  util::SlotMap<Request> pool;
  /// Admitted requests awaiting an iteration turn, FIFO by stamp and
  /// pre-split into the scheduler's selection classes (see ReadyQueue). A
  /// request sits on at most one kReadyChannel list at a time (a ready
  /// class list, an iteration's deferred list, or the fallback's lone
  /// list).
  ReadyQueue ready;
  /// Every admitted, unfinished request in ascending id order (per-replica
  /// admission is FIFO over monotone ids) — the preemption policies' age
  /// scan. head is the oldest, tail the youngest.
  RequestList<kAgeChannel> age;
  /// Retirement log, appended at completion/rejection; finalize_metrics
  /// sorts it by id so records come out in the legacy creation order.
  std::vector<FinishedRequest> finished;

  // ---- Reused per-iteration scratch (no steady-state reallocation) ----
  std::vector<ScheduledStep> batch;
  std::vector<ScheduledStep> prefills;
  std::vector<Request*> decodes;
  std::vector<std::uint32_t> decode_positions;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> prefill_chunk_spans;

  // ---- Progress counters ----
  std::uint32_t routed = 0;     // requests the balancer sent here
  std::uint32_t active = 0;     // admitted and not yet finished
  std::uint32_t peak_active = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t good = 0;       // completed within both SLOs
  std::uint64_t decode_tokens = 0;
  std::uint64_t total_tokens = 0;
  sim::Cycles busy_cycles = 0;  // summed iteration spans
  std::uint64_t prefill_chunk_steps = 0;
  std::uint64_t chunked_prompts = 0;
  std::uint64_t decode_stall_iterations = 0;
  sim::Cycles decode_stall_cycles = 0;
  std::uint64_t preemptions = 0;
  std::uint64_t recompute_tokens = 0;     // KV dropped -> re-run as prefill
  sim::Cycles recompute_cycles = 0;       // pipeline cost of those re-runs
  std::uint32_t recovering = 0;  // preempted requests not yet re-prefilled
  /// Prefill-class pipeline cycles actually executed (whole prompts,
  /// chunks and recompute re-runs alike) — the figure the prefix cache
  /// shrinks, and what the chat-cache pin compares across runs.
  sim::Cycles prefill_cycles_executed = 0;

  // ---- Disaggregation counters (all 0 when `disagg` is absent) ----
  std::uint64_t migrations_out = 0;  // prompts whose KV this replica shipped
  std::uint64_t migrations_in = 0;   // migrated KV lists landed here
  std::uint64_t migrated_blocks_out = 0;  // KV blocks shipped out
  /// Bytes this replica's migrations put on the wire: payload x hops —
  /// multi-hop paths serialize on every link crossed, and the fabric's
  /// total_bytes() counts them the same way (conservation invariant).
  std::uint64_t migrate_wire_bytes = 0;
  std::uint64_t steals_out = 0;       // queued requests neighbors took
  std::uint64_t steals_in = 0;        // queued requests this replica took
  std::uint64_t steal_wire_bytes = 0;  // prompt bytes x hops (thief side)
  /// Ingest-DMA ledger: migrate_proc deposits the landing price here; the
  /// scheduler drains it into the iteration offset (and a `kv-migrate`
  /// span when observed) exactly like the prefix cache's swap ledger, so
  /// the tiling identity holds with migration active.
  sim::Cycles pending_migrate_cycles = 0;
  sim::Cycles migrate_ingest_cycles = 0;  // drained total, for metrics
  /// Hand-offs that re-homed a request here / away from here (migrations +
  /// steals, counted at delivery). Balance outstanding(): a migrated
  /// request stays the source's load until it lands.
  std::uint32_t handoffs_in = 0;
  std::uint32_t handoffs_out = 0;
  /// True while this replica's one permitted in-flight steal is on the
  /// wire (prevents an idle replica from draining a whole neighbor queue
  /// before the first stolen request even lands).
  bool steal_inflight = false;

  // ---- Prefix-cache counters (all 0 when `cache` is absent) ----
  std::uint64_t cache_lookups = 0;        // admissions that consulted it
  std::uint64_t cache_lookup_tokens = 0;  // prompt tokens offered to lookup
  std::uint64_t cache_hit_requests = 0;   // admissions with >= 1 hit token
  std::uint64_t cache_hit_tokens = 0;     // prefill tokens skipped
  sim::Cycles cache_saved_prefill_cycles = 0;  // prefill_cycles(hit) saved

  // ---- Latency samples (one per completed request) ----
  /// Mean decode-token latency in ms. This is the one latency series that
  /// must stay in the double domain: each sample divides a cycle span by
  /// the request's decode count, so there is no single integer key whose
  /// order matches the converted values.
  std::vector<double> token_ms;
  /// TTFT / end-to-end / queue-wait spans and inter-token gaps, kept in raw
  /// cycles and summarized through cycle_summary_ms — the integers
  /// radix-sort in O(n) where the legacy per-sample ms doubles paid a
  /// comparison sort that dominated finalize.
  std::vector<sim::Cycles> ttft_cycles, e2e_cycles, queue_wait_cycles;
  /// Gaps between consecutive host-visible tokens, pooled replica-wide
  /// (one sample per decode-class token, the largest population by far).
  std::vector<sim::Cycles> gap_cycles;

  /// Requests routed here and not yet finished or rejected — the "queued +
  /// running" load the join-shortest-queue balancer compares. Counted from
  /// routing (not queue push) so same-cycle burst arrivals are visible to
  /// the very next routing decision. Hand-offs (KV migration / work
  /// stealing) re-home the load at delivery time; both counters are 0 on
  /// symmetric fleets, reducing to the legacy routed - resolved.
  std::uint32_t outstanding() const {
    return routed + handoffs_in - handoffs_out -
           static_cast<std::uint32_t>(completed + rejected);
  }

  double ms(sim::Cycles c) const { return cfg.arch.cycles_to_ms(c); }

  /// Creates a request routed to this replica in a recycled arena slot.
  /// The id comes from the fleet-wide counter; the caller spawns
  /// request_proc for it.
  Request& make_request(workload::Scenario shape);

  void record_completion(Request& r);

  /// Appends the retirement snapshot for `r` (state and timestamps must be
  /// final). Does not touch the arena — slot release is the caller's move.
  void retire(const Request& r);
};

/// Root process of one request on its replica. Parks on its grant signal;
/// every grant is one scheduler iteration turn, executed at the request's
/// pipeline slot within the iteration, with the iteration's CountdownLatch
/// as batch barrier.
sim::Task request_proc(Replica& f, Request& r);

/// The replica's continuous-batching loop: admit, select a batch, let the
/// members stream through the pipeline back to back, pay host sync once,
/// repeat. Exits when the fleet-wide arrival stream is exhausted and this
/// replica has drained. Livelock-freedom under kRecomputeYoungest holds
/// per replica (eviction never crosses replicas — each owns its KV pool).
sim::Task scheduler_proc(Replica& f);

/// KV migration transfer (disaggregated fleets): ships `blocks` Datapacks
/// of `r`'s KV from `src` to `dst` over the fleet fabric, then re-homes
/// the request — r.home = dst, ingest price into dst's kv-migrate ledger,
/// force-push into dst's queue, work nudge. Spawned by src's scheduler at
/// the prompt's last chunk; r's KV blocks on `src` were already released
/// (the descriptor-only fabric moves bytes, not block identities).
sim::Task migrate_proc(Replica& src, Replica& dst, Request& r,
                       std::uint32_t blocks);

/// Work-steal transfer: ships `r`'s prompt token ids from `victim`'s
/// queue to the idle `thief`, then re-homes and enqueues it there. No KV
/// moves (the request was still Queued), so nothing lands in the
/// kv-migrate ledger — the wire time on the shared fabric is the price.
sim::Task steal_proc(Replica& thief, Replica& victim, Request& r);

/// Engine callback (`Engine::schedule_call`) that performs the fast
/// path's entire root-process body — stamp arrival, enqueue (or reject
/// when the queue is full), signal work — without a coroutine frame.
/// `replica`/`request` are the type-erased Replica* / Request*. Only
/// valid when FleetShared::scheduler_drives is set.
void enqueue_request_event(void* replica, void* request);

/// Builds this replica's FleetMetrics after engine.run() returned. Moves
/// the latency sample vectors out of the replica — harnesses that pool
/// samples fleet-wide must copy them first.
FleetMetrics finalize_metrics(Replica& f);

/// Percentile summary of integer cycle-domain latency samples, reported in
/// milliseconds. Radix-sorts the cycles and converts ascending: cycles_to_ms
/// is a monotone non-decreasing map, so the converted sequence is exactly
/// the ascending-sorted ms sequence and the mean/percentile arithmetic
/// reproduces util::percentile_summary over the per-sample ms values bit
/// for bit — at O(n) instead of a comparison sort over millions of doubles.
util::PercentileSummary cycle_summary_ms(std::vector<sim::Cycles> cycles,
                                         const core::ArchConfig& arch);

/// Open-loop injector shared by both harnesses: replays the pre-generated
/// arrival schedule, asking `route()` (signature `Replica&()`) for the
/// target replica the moment each arrival lands. ServingSim routes every
/// arrival to its lone replica; FleetSim's route() is the LoadBalancer.
/// One implementation so the two harnesses cannot drift — and routing
/// must make no engine events, which is what keeps a 1-replica fleet
/// bit-identical to ServingSim.
template <typename RouteFn>
sim::Task arrivals_proc(sim::Engine& engine, TrafficGen& traffic,
                        RouteFn route) {
  const std::vector<Arrival> schedule = traffic.open_loop_schedule();
  for (const Arrival& a : schedule) {
    if (a.at > engine.now()) co_await engine.delay(a.at - engine.now());
    Replica& rep = route();
    Request& r = rep.make_request(a.shape);
    if (rep.shared.scheduler_drives) {
      // The fast path's root process would only enqueue the request and
      // exit (the scheduler drives every later step), so skip the
      // coroutine frame entirely: a callback event in the exact queue
      // position the spawned root's first resumption would occupy.
      engine.schedule_call(0, &enqueue_request_event, &rep, &r);
    } else {
      engine.spawn(request_proc(rep, r));
    }
  }
}

/// Closed-loop client shared by both harnesses: submit (routed fresh each
/// iteration, so a client's requests follow the balancer), await
/// completion, think, repeat. The global request budget is shared across
/// clients through FleetShared.
template <typename RouteFn>
sim::Task client_proc(sim::Engine& engine, FleetShared& shared,
                      TrafficGen& traffic, double think_time_s,
                      RouteFn route) {
  while (!shared.arrivals_done()) {
    Replica& rep = route();
    Request& r = rep.make_request(traffic.next_shape());
    engine.spawn(request_proc(rep, r));
    co_await r.done.wait();
    if (shared.arrivals_done()) break;
    co_await engine.delay(traffic.exponential_cycles(think_time_s));
  }
}

}  // namespace looplynx::serve::detail
