#include "serve/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace looplynx::serve {

BatchPolicy parse_batch_policy(const std::string& name) {
  if (name == "prefill") return BatchPolicy::kPrefillPriority;
  if (name == "decode") return BatchPolicy::kDecodePriority;
  if (name == "chunked") return BatchPolicy::kChunkedMixed;
  throw std::invalid_argument("unknown batch policy \"" + name +
                              "\" (expected prefill|decode|chunked)");
}

const char* batch_policy_name(BatchPolicy policy) {
  switch (policy) {
    case BatchPolicy::kPrefillPriority:
      return "prefill-priority";
    case BatchPolicy::kDecodePriority:
      return "decode-priority";
    case BatchPolicy::kChunkedMixed:
      return "chunked-mixed";
  }
  return "unknown";
}

PreemptPolicy parse_preempt_policy(const std::string& name) {
  if (name == "none") return PreemptPolicy::kNone;
  if (name == "recompute") return PreemptPolicy::kRecomputeYoungest;
  if (name == "cost-aware") return PreemptPolicy::kRecomputeCostAware;
  throw std::invalid_argument("unknown preempt policy \"" + name +
                              "\" (expected none|recompute|cost-aware)");
}

const char* preempt_policy_name(PreemptPolicy policy) {
  switch (policy) {
    case PreemptPolicy::kNone:
      return "none";
    case PreemptPolicy::kRecomputeYoungest:
      return "recompute-youngest";
    case PreemptPolicy::kRecomputeCostAware:
      return "recompute-cost-aware";
  }
  return "unknown";
}

void Scheduler::select(ReadyQueue& ready,
                       std::vector<ScheduledStep>& batch) const {
  batch.clear();

  const std::uint32_t whole_budget =
      config_.max_tokens_per_iter == 0
          ? std::numeric_limits<std::uint32_t>::max()
          : config_.max_tokens_per_iter;
  std::uint32_t tokens_left = whole_budget;
  const auto full = [&] { return batch.size() >= config_.max_batch; };

  if (config_.policy == BatchPolicy::kChunkedMixed) {
    // Decodes first, one budget token each; then prefill chunks split the
    // leftover budget. A chunk never exceeds the remaining budget, so a
    // long prompt spreads across iterations while decodes keep flowing
    // every iteration. Among prefills, *partially prefilled* prompts go
    // before fresh ones (FIFO within each subclass): a mid-chunk prompt
    // re-queued at the back of the ready pool would otherwise be overtaken
    // by younger prompts, interleaving chunks across all waiting prompts
    // and ballooning every TTFT toward the sum of all prefills — while
    // each mid-chunk prompt pins its full KV reservation the whole time.
    // The three passes are exactly ReadyQueue's class lists, so each walk
    // visits only members it can select. Selected members stay linked
    // until the single unlink pass below.
    for (Request* r = ready.decodes.head; r != nullptr;
         r = r->link_next[kReadyChannel]) {
      if (full() || tokens_left == 0) break;
      batch.push_back({r, 0});
      --tokens_left;
    }
    for (Request* r = ready.started.head; r != nullptr;
         r = r->link_next[kReadyChannel]) {
      if (full() || tokens_left == 0) break;
      const std::uint32_t chunk =
          std::min(tokens_left, r->prompt_remaining());
      batch.push_back({r, chunk});
      tokens_left -= chunk;
    }
    for (Request* r = ready.fresh.head; r != nullptr;
         r = r->link_next[kReadyChannel]) {
      if (full() || tokens_left == 0) break;
      const std::uint32_t chunk =
          std::min(tokens_left, r->prompt_remaining());
      batch.push_back({r, chunk});
      tokens_left -= chunk;
    }
  } else {
    // Priority class first, then the other class into the remaining
    // slots. Prompts run whole under these policies; the token budget
    // only bounds how many members fit. The prefill class spans two lists
    // (started + fresh); a stamp-ordered merge walk visits them in the
    // exact order the legacy single ready list interleaved them.
    bool prefill_selected = false;
    const auto decode_pass = [&] {
      for (Request* r = ready.decodes.head; r != nullptr;
           r = r->link_next[kReadyChannel]) {
        if (full() || tokens_left == 0) break;  // every decode costs 1
        batch.push_back({r, 0});
        --tokens_left;
      }
    };
    const auto prefill_pass = [&] {
      Request* a = ready.started.head;
      Request* b = ready.fresh.head;
      while ((a != nullptr || b != nullptr) && !full()) {
        Request* r = (b == nullptr ||
                      (a != nullptr && a->ready_stamp < b->ready_stamp))
                         ? a
                         : b;
        const std::uint32_t need = r->prompt_remaining();
        if (need > tokens_left) {
          // The FIFO-head prompt doesn't fit this iteration. If it can
          // *never* fit (larger than the whole budget), run it now — over
          // budget, but without other prompt work — rather than starve
          // it. Otherwise stop the prefill pass: blocked prefills admit
          // no new decode streams, so running decodes drain until the
          // prompt fits, and younger prompts must not overtake it.
          if (need > whole_budget && !prefill_selected) {
            batch.push_back({r, need});
            tokens_left = 0;
            prefill_selected = true;
          }
          break;
        }
        batch.push_back({r, need});
        prefill_selected = true;
        tokens_left -= need;
        if (r == a) {
          a = a->link_next[kReadyChannel];
        } else {
          b = b->link_next[kReadyChannel];
        }
      }
    };
    if (config_.policy == BatchPolicy::kPrefillPriority) {
      prefill_pass();
      decode_pass();
    } else {
      decode_pass();
      prefill_pass();
    }
  }

  for (const ScheduledStep& s : batch) ready.unlink(s.request);
}

std::vector<ScheduledStep> Scheduler::select(
    std::vector<Request*>& runnable) const {
  ReadyQueue ready;
  for (Request* r : runnable) ready.push_back(r);
  std::vector<ScheduledStep> batch;
  select(ready, batch);
  // Unselected requests keep their relative order (a stamp-ordered merge
  // of the class lists reconstructs it), matching the legacy erase_if
  // behavior; hooks are scrubbed so callers can reuse requests.
  runnable.clear();
  Request* heads[3] = {ready.decodes.head, ready.started.head,
                       ready.fresh.head};
  while (true) {
    int pick = -1;
    for (int i = 0; i < 3; ++i) {
      if (heads[i] != nullptr &&
          (pick < 0 || heads[i]->ready_stamp < heads[pick]->ready_stamp)) {
        pick = i;
      }
    }
    if (pick < 0) break;
    Request* r = heads[pick];
    heads[pick] = r->link_next[kReadyChannel];
    r->link_prev[kReadyChannel] = nullptr;
    r->link_next[kReadyChannel] = nullptr;
    r->ready_class = kReadyNone;
    runnable.push_back(r);
  }
  return batch;
}

double Scheduler::mean_batch_size() const {
  if (iteration_count_ == 0) return 0.0;
  // batch_members_ stays below 2^53, so the double conversion is exact and
  // the quotient is bit-identical to the legacy per-record accumulation.
  return static_cast<double>(batch_members_) /
         static_cast<double>(iteration_count_);
}

}  // namespace looplynx::serve
