// Span accounting for latency-breakdown reports (paper Fig. 5).
//
// The stage scheduler wraps each MDK invocation in a span; the accumulator
// sums wall-clock cycles per category. Because LoopLynx reuses kernels
// *temporally*, top-level stage spans tile the timeline and the per-category
// totals are exactly the paper's breakdown. Optionally retains the full span
// list for debugging / chrome-trace export.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace looplynx::sim {

class Trace {
 public:
  struct Span {
    std::string category;
    Cycles begin = 0;
    Cycles end = 0;
  };

  /// If `keep_spans` is false only per-category totals are retained (cheap
  /// enough for full-sequence simulations).
  explicit Trace(bool keep_spans = false) : keep_spans_(keep_spans) {}

  void add(const std::string& category, Cycles begin, Cycles end);

  /// Adds `cycles` to a category without span bookkeeping.
  void add_cycles(const std::string& category, Cycles cycles);

  /// Total cycles attributed to `category` (0 if unknown).
  Cycles total(const std::string& category) const;

  /// Sum over all categories.
  Cycles grand_total() const;

  /// Fraction of the grand total in `category` (0 if empty).
  double fraction(const std::string& category) const;

  const std::map<std::string, Cycles>& totals() const { return totals_; }
  const std::vector<Span>& spans() const { return spans_; }

  void clear();

  /// Merges another trace's totals into this one.
  void merge(const Trace& other);

  /// Writes a "category: cycles (pct%)" summary, descending by cycles.
  void print_summary(std::ostream& os) const;

  /// Exports retained spans as a Chrome-tracing (chrome://tracing /
  /// Perfetto) JSON document. Cycle timestamps are converted to
  /// microseconds at `frequency_hz`. Requires keep_spans.
  void export_chrome_trace(std::ostream& os, double frequency_hz) const;

 private:
  bool keep_spans_;
  std::map<std::string, Cycles> totals_;
  std::vector<Span> spans_;
};

/// RAII helper: measures engine.now() at construction and attributes the
/// elapsed cycles to `category` on finish().
class ScopedSpan {
 public:
  ScopedSpan(Trace& trace, Engine& engine, std::string category)
      : trace_(&trace),
        engine_(&engine),
        category_(std::move(category)),
        begin_(engine.now()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Records the span now (idempotent).
  void finish() {
    if (!finished_) {
      trace_->add(category_, begin_, engine_->now());
      finished_ = true;
    }
  }

  ~ScopedSpan() { finish(); }

 private:
  Trace* trace_;
  Engine* engine_;
  std::string category_;
  Cycles begin_;
  bool finished_ = false;
};

}  // namespace looplynx::sim
