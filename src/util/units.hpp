// Unit conversion and pretty-printing helpers (cycles, time, bytes, rates).
#pragma once

#include <cstdint>
#include <string>

namespace looplynx::util {

/// Converts a cycle count at `freq_hz` into milliseconds.
double cycles_to_ms(std::uint64_t cycles, double freq_hz);

/// Converts a cycle count at `freq_hz` into microseconds.
double cycles_to_us(std::uint64_t cycles, double freq_hz);

/// Converts seconds to a cycle count at `freq_hz` (rounded up).
std::uint64_t seconds_to_cycles(double seconds, double freq_hz);

/// Pretty prints a byte count ("12.0 MiB").
std::string fmt_bytes(std::uint64_t bytes);

/// Pretty prints a rate in bytes/second ("8.49 GB/s", decimal units as used
/// by the paper for HBM bandwidth).
std::string fmt_rate(double bytes_per_second);

/// Pretty prints a duration in seconds ("3.85 ms").
std::string fmt_duration(double seconds);

}  // namespace looplynx::util
