#include "serve/kv_block.hpp"

#include <algorithm>
#include <stdexcept>

namespace looplynx::serve {

namespace {
/// HBM2 pseudo-channel capacity on the Alveo U50 (8 GiB / 32 channels).
constexpr std::uint64_t kBytesPerPseudoChannel = 256ULL << 20;
}  // namespace

KvBlockManager::KvBlockManager(const core::ArchConfig& arch,
                               const model::ModelConfig& model,
                               std::uint64_t budget_bytes_per_node,
                               std::uint32_t block_tokens)
    : block_tokens_(block_tokens) {
  if (block_tokens_ == 0) {
    throw std::invalid_argument(
        "kv block_tokens must be >= 1 (1 = token-granular)");
  }
  const std::uint32_t heads_per_node =
      std::max<std::uint32_t>(1, model.n_head / arch.num_nodes);
  // K and V, int8, every layer, this node's heads.
  bytes_per_token_ = 2ULL * model.n_layer * heads_per_node * model.head_dim();
  const std::uint64_t budget =
      budget_bytes_per_node != 0
          ? budget_bytes_per_node
          : static_cast<std::uint64_t>(arch.kv_channels) *
                kBytesPerPseudoChannel;
  const std::uint64_t budget_tokens =
      std::min<std::uint64_t>(budget / bytes_per_token_, UINT32_MAX);
  capacity_blocks_ =
      static_cast<std::uint32_t>(budget_tokens / block_tokens_);
}

bool KvBlockManager::try_grow(KvBlockList& list, std::uint32_t tokens) {
  const std::uint32_t want = blocks_for(tokens);
  if (want > list.blocks) {
    const std::uint32_t add = want - list.blocks;
    if (add > free_blocks()) {
      ++stall_events_;
      return false;
    }
    used_blocks_ += add;
    list.blocks = want;
    peak_used_blocks_ = std::max(peak_used_blocks_, used_blocks_);
  }
  if (tokens > list.committed_tokens) {
    live_tokens_ += tokens - list.committed_tokens;
    list.committed_tokens = tokens;
  }
  peak_frag_tokens_ = std::max(peak_frag_tokens_, frag_tokens());
  return true;
}

void KvBlockManager::release_all(KvBlockList& list) {
  // Releasing blocks the manager never handed out would underflow
  // used_blocks_ and make free_blocks() wrap to ~4 billion, silently
  // disabling admission backpressure. Clamp and count the event so the
  // accounting bug is observable instead of corrupting the fleet.
  std::uint32_t blocks = list.blocks;
  if (blocks > used_blocks_) {
    ++over_release_events_;
    blocks = used_blocks_;
  }
  used_blocks_ -= blocks;
  live_tokens_ -=
      std::min<std::uint64_t>(list.committed_tokens, live_tokens_);
  list = KvBlockList{};
}

}  // namespace looplynx::serve
