// Per-tier autoscaling on a disaggregated fleet: the same bursty mixed
// long-prompt/chatty stream is served by a static role-split fleet (every
// prefill and decode replica lit for the whole run) and by the SAME pool
// under per-tier autoscaling — each role tier runs its own deterministic
// control loop on the shared fleet clock (prefill tiers key on the
// rolling TTFT window, decode tiers on admission-queue depth; see
// DESIGN.md §11).
//
// The point this example pins (and exits nonzero if it ever stops
// holding): a disaggregated fleet's two tiers saturate at different
// times — bursts of long prompts light up the prefill tier while the
// decode tier coasts, and the chatty steady state does the reverse. A
// static role split must provision both tiers for their own peaks and
// burns idle replica-cycles in whichever tier is off-peak. The
// tier-autoscaled fleet matches the static fleet's SLO-good request
// count while consuming at least 20% fewer replica-cycles.
//
//   ./disagg_autoscale [--requests=96] [--rate=0.5] [--seed=11]
//                      [--kv-link-gbps=100] [--scale-interval-ms=25]
//                      [--help]
//
// Deterministic: same flags, byte-identical output (seeded traffic +
// engine-ordered events + per-tier index-prefix scale decisions).
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "core/arch_config.hpp"
#include "core/step_cost.hpp"
#include "model/config.hpp"
#include "serve/autoscaler.hpp"
#include "serve/fleet.hpp"
#include "serve/serving_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/mix.hpp"

namespace {

void print_usage() {
  std::cout <<
      "disagg_autoscale: static role-split fleet vs the same pool under\n"
      "per-tier autoscaling, on a bursty long-prompt/chatty mix.\n"
      "\n"
      "  --requests=N           requests in the shared stream (default 96)\n"
      "  --rate=R               nominal arrival rate per second (default "
      "0.5)\n"
      "  --seed=N               traffic seed (default 11)\n"
      "  --kv-link-gbps=G       ring-fabric link bandwidth (default 100)\n"
      "  --scale-interval-ms=T  control-loop period in ms (default 25)\n"
      "  --help                 this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  if (cli.has("help")) {
    print_usage();
    return 0;
  }

  serve::ServingConfig base;
  base.arch = core::ArchConfig::two_node();
  base.model = model::gpt2_medium();
  // Bursty mixed long-prompt/chatty traffic: mostly short chat turns with
  // a real whale fraction, on a Markov-modulated arrival process whose
  // on-phase packs arrivals into windows one prefill replica cannot
  // absorb (burst_factor x burst_fraction > 1 ⇒ the off-phase is
  // silent). The whales are what stress the prefill tier; the chat
  // decodes are what keep the decode tier busy between bursts — the two
  // tiers peak at different times, which is the whole per-tier case.
  base.traffic.process = serve::ArrivalProcess::kBursty;
  base.traffic.mix =
      workload::Mix{"long-prompt-chatty",
                    {{workload::make_scenario(32, 96), 0.85},
                     {workload::make_scenario(768, 128), 0.15}}};
  base.traffic.num_requests =
      static_cast<std::uint32_t>(cli.get_int_or("requests", 96));
  base.traffic.arrival_rate_per_s = cli.get_double_or("rate", 0.5);
  base.traffic.burst_factor = 6.0;
  base.traffic.burst_fraction = 0.25;
  base.traffic.burst_period_s = 16.0;
  base.traffic.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 11));
  base.scheduler.max_batch = 8;
  // Bound the run queue so backlog is visible as admission-queue depth —
  // the signal the decode tier's controller scales on (force-pushed
  // migrations count toward the same window peaks).
  base.scheduler.max_in_flight = 8;
  base.scheduler.policy = serve::BatchPolicy::kDecodePriority;
  // The SLO the goodput comparison is judged on: clears the whale's
  // intrinsic prefill latency but not a burst backlog queued behind a
  // floor-width prefill tier.
  base.slo.ttft_ms = 6500.0;
  base.slo.token_ms = 400.0;

  const double kv_link_gbps = cli.get_double_or("kv-link-gbps", 100.0);

  // The shared pool: a prefill tier of three and a decode tier of two.
  // The static fleet lights all five for the whole run; the autoscaled
  // fleet starts each tier at its floor (one replica) and grows it only
  // while its own signal demands.
  const std::vector<serve::ReplicaRole> roles = {
      serve::ReplicaRole::kPrefill, serve::ReplicaRole::kPrefill,
      serve::ReplicaRole::kPrefill, serve::ReplicaRole::kDecode,
      serve::ReplicaRole::kDecode};
  const auto width = static_cast<std::uint32_t>(roles.size());

  serve::AutoscalerConfig autoscale;
  autoscale.enabled = true;
  autoscale.policy = serve::ScalePolicy::kHybrid;  // decode tiers force queue
  autoscale.tier_min = {1, 1};
  autoscale.tier_max = {3, 2};
  autoscale.eval_interval_ms = cli.get_double_or("scale-interval-ms", 25.0);
  // React fast, release slowly — same shape as the symmetric walkthrough
  // (examples/autoscale_serving): a burst must light the prefill tier
  // within a few evals, while scale-down waits out six quiet ones so the
  // tail of a burst cannot flap either tier.
  autoscale.queue_high = 2.0;
  autoscale.queue_low = 0.25;
  autoscale.up_evals = 2;
  autoscale.down_evals = 6;
  autoscale.cooldown_evals = 2;

  // One shared cost model (identical replica hardware everywhere).
  const core::StepCostModel costs(base.arch, base.model, 64);

  const auto make_cfg = [&]() {
    serve::FleetConfig cfg = serve::FleetConfig::homogeneous(
        base, width, serve::BalancerPolicy::kJoinShortestQueue);
    cfg.roles = roles;
    cfg.kv_link.bytes_per_cycle =
        kv_link_gbps * 1e9 / base.arch.frequency_hz;
    return cfg;
  };

  serve::FleetConfig static_cfg = make_cfg();
  const serve::FleetResult fixed = serve::FleetSim(static_cfg, costs).run();

  serve::FleetConfig scaled_cfg = make_cfg();
  scaled_cfg.autoscale = autoscale;
  const serve::FleetResult scaled = serve::FleetSim(scaled_cfg, costs).run();

  fixed
      .to_table("Static role split (3x prefill + 2x decode, all lit, "
                "kv-link " + util::fmt_fixed(kv_link_gbps, 0) + " GB/s)")
      .render(std::cout);
  std::cout << "\n";
  scaled
      .to_table("Tier-autoscaled (prefill 1..3 hybrid, decode 1..2 queue, "
                "@ " + util::fmt_fixed(autoscale.eval_interval_ms, 0) +
                " ms)")
      .render(std::cout);

  std::cout << "\nScale events (" << scaled.scale_events.size() << "):\n";
  for (const serve::ScaleEvent& e : scaled.scale_events) {
    std::cout << "  t=" << util::fmt_fixed(e.at_ms, 1) << " ms  "
              << serve::replica_role_name(scaled.tiers.at(e.tier).role)
              << " " << e.from << " -> " << e.to << "  ("
              << serve::scale_trigger_name(e.trigger) << ")\n";
  }
  for (const serve::FleetResult::TierStats& tier : scaled.tiers) {
    std::cout << "Tier " << serve::replica_role_name(tier.role) << ": live "
              << tier.min_live << ".." << tier.peak_live
              << ", time-weighted mean "
              << util::fmt_fixed(tier.mean_live, 2) << ", TTFT p99 spread "
              << util::fmt_fixed(tier.ttft_p99_spread_ms, 1) << " ms\n";
  }

  const auto describe = [](const std::string& name,
                           const serve::FleetResult& r) {
    std::cout << name << ": slo-good "
              << util::fmt_int(static_cast<long long>(r.fleet.slo_good))
              << "/" << util::fmt_int(static_cast<long long>(r.fleet.offered))
              << ", TTFT p99 " << util::fmt_fixed(r.fleet.ttft_ms.p99, 1)
              << " ms, migrations "
              << util::fmt_int(static_cast<long long>(r.fleet.kv_migrations))
              << ", replica-seconds "
              << util::fmt_fixed(r.replica_seconds, 2) << "\n";
  };
  std::cout << "\n";
  describe("static  ", fixed);
  describe("autoscal", scaled);

  const double cycle_saving =
      1.0 - static_cast<double>(scaled.replica_cycles) /
                static_cast<double>(fixed.replica_cycles);
  std::cout << "\nTier-autoscaled fleet used "
            << util::fmt_percent(cycle_saving, 1)
            << " fewer replica-cycles than the static role split.\n";

  // The pinned claims. slo_good counts (not rates) compare the SLO
  // outcome over the identical request set, as in autoscale_serving.
  bool ok = true;
  if (scaled.fleet.slo_good < fixed.fleet.slo_good) {
    std::cout << "FAIL: tier-autoscaled fleet served fewer requests within "
                 "SLO than the static role split\n";
    ok = false;
  }
  if (cycle_saving < 0.20) {
    std::cout << "FAIL: tier-autoscaled fleet saved less than 20% of the "
                 "static role split's replica-cycles\n";
    ok = false;
  }
  const auto conserved = [](const serve::FleetResult& r) {
    return r.fleet.completed + r.fleet.rejected == r.fleet.offered;
  };
  if (!conserved(fixed) || !conserved(scaled)) {
    std::cout << "FAIL: request conservation violated\n";
    ok = false;
  }
  if (fixed.fleet.kv_migrations == 0 || scaled.fleet.kv_migrations == 0) {
    std::cout << "FAIL: no KV migrations happened\n";
    ok = false;
  }
  // Both tiers must have actually moved — a run where a tier never grew
  // or never shrank is not exercising per-tier control.
  for (const serve::FleetResult::TierStats& tier : scaled.tiers) {
    if (tier.peak_live == tier.min_live) {
      std::cout << "FAIL: tier " << serve::replica_role_name(tier.role)
                << " never scaled\n";
      ok = false;
    }
  }
  return ok ? 0 : 1;
}
