#include "quant/quant.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "model/ops.hpp"

namespace looplynx::quant {

std::int8_t quantize_value(float v, float scale) {
  const float scaled = v / scale;
  const long r = std::lroundf(scaled);
  const long clamped = std::clamp(r, -127L, 127L);
  return static_cast<std::int8_t>(clamped);
}

void quantize(std::span<const float> x, float scale,
              std::span<std::int8_t> q) {
  assert(x.size() == q.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    q[i] = quantize_value(x[i], scale);
  }
}

void dequantize(std::span<const std::int8_t> q, float scale,
                std::span<float> x) {
  assert(x.size() == q.size());
  for (std::size_t i = 0; i < q.size(); ++i) {
    x[i] = static_cast<float>(q[i]) * scale;
  }
}

std::int32_t dot_i8(std::span<const std::int8_t> a,
                    std::span<const std::int8_t> b) {
  assert(a.size() == b.size());
  std::int32_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  return acc;
}

QuantizedLinear QuantizedLinear::from_float(const model::Tensor& w,
                                            std::span<const float> bias,
                                            float input_scale) {
  QuantizedLinear q;
  q.weight = model::Tensor8(w.rows(), w.cols());
  q.weight_scales.resize(w.rows());
  q.bias.assign(bias.begin(), bias.end());
  q.input_scale = input_scale;
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const auto row = w.row(r);
    const float scale = scale_for_absmax(model::abs_max(row));
    q.weight_scales[r] = scale;
    for (std::size_t c = 0; c < row.size(); ++c) {
      q.weight.at(r, c) = quantize_value(row[c], scale);
    }
  }
  return q;
}

void QuantizedLinear::forward(std::span<const std::int8_t> x_q,
                              std::span<float> y) const {
  forward_rows(x_q, 0, weight.rows(), y);
}

void QuantizedLinear::forward_rows(std::span<const std::int8_t> x_q,
                                   std::size_t row_begin, std::size_t row_end,
                                   std::span<float> y) const {
  assert(x_q.size() == weight.cols());
  assert(row_end <= weight.rows());
  assert(y.size() == row_end - row_begin);
  for (std::size_t r = row_begin; r < row_end; ++r) {
    const std::int32_t acc = dot_i8(weight.row(r), x_q);
    const float deq =
        static_cast<float>(acc) * input_scale * weight_scales[r];
    y[r - row_begin] = deq + (bias.empty() ? 0.0f : bias[r]);
  }
}

ErrorStats compare(std::span<const float> reference,
                   std::span<const float> test) {
  assert(reference.size() == test.size());
  ErrorStats stats;
  double err_sq = 0.0, ref_sq = 0.0, abs_sum = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double d = static_cast<double>(reference[i]) - test[i];
    stats.max_abs = std::max(stats.max_abs, std::abs(d));
    abs_sum += std::abs(d);
    err_sq += d * d;
    ref_sq += static_cast<double>(reference[i]) * reference[i];
  }
  if (!reference.empty()) {
    stats.mean_abs = abs_sum / static_cast<double>(reference.size());
    stats.rel_l2 = ref_sq > 0 ? std::sqrt(err_sq / ref_sq) : std::sqrt(err_sq);
  }
  return stats;
}

}  // namespace looplynx::quant
