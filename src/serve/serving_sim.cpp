#include "serve/serving_sim.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "serve/observe.hpp"
#include "serve/replica.hpp"

namespace looplynx::serve {

ServingSim::ServingSim(const ServingConfig& config)
    : ServingSim(config,
                 core::StepCostModel(config.arch, config.model,
                                     config.cost_probe_stride)) {}

ServingSim::ServingSim(const ServingConfig& config, core::StepCostModel costs)
    : config_(config), costs_(std::move(costs)) {
  if (config_.scheduler.max_batch == 0) {
    throw std::invalid_argument("scheduler max_batch must be >= 1");
  }
  if (config_.scheduler.max_in_flight == 0) {
    throw std::invalid_argument("scheduler max_in_flight must be >= 1");
  }
  if (config_.kv_block_tokens == 0) {
    throw std::invalid_argument(
        "kv_block_tokens must be >= 1 (1 = token-granular)");
  }
  if (config_.kv_swap && !config_.prefix_cache) {
    throw std::invalid_argument(
        "kv_swap requires prefix_cache (swap is an eviction tier of the "
        "prefix cache; without the cache there is nothing to swap)");
  }
  if (!config_.traffic.explicit_arrivals.empty()) {
    config_.traffic.num_requests = static_cast<std::uint32_t>(
        config_.traffic.explicit_arrivals.size());
  }
}

FleetMetrics ServingSim::run() const { return run(nullptr); }

FleetMetrics ServingSim::run(Observer* observer) const {
  if (observer != nullptr && observer->replicas() != 1) {
    throw std::invalid_argument(
        "ServingSim::run observer must be built for 1 replica");
  }
  // Engine first: unfinished coroutine frames (none in a lone-replica run,
  // but the shared machinery allows them) are destroyed with it, after
  // every object they reference.
  sim::Engine engine;
  detail::FleetShared shared;
  shared.observer = observer;
  shared.target = config_.traffic.num_requests;
  shared.scheduler_drives =
      observer == nullptr &&
      config_.traffic.process != ArrivalProcess::kClosedLoop;
  detail::Replica replica(engine, config_, costs_, shared, /*id=*/0);
  replica.finished.reserve(shared.target);
  TrafficGen traffic(config_.traffic, config_.arch.frequency_hz);
  const auto route = [&replica]() -> detail::Replica& { return replica; };

  engine.spawn(detail::scheduler_proc(replica));
  if (config_.traffic.process == ArrivalProcess::kClosedLoop) {
    const std::uint32_t clients =
        std::max<std::uint32_t>(1, config_.traffic.clients);
    for (std::uint32_t c = 0; c < clients; ++c) {
      engine.spawn(detail::client_proc(engine, shared, traffic,
                                       config_.traffic.think_time_s, route));
    }
  } else {
    engine.spawn(detail::arrivals_proc(engine, traffic, route));
  }
  engine.run();

  FleetMetrics metrics = detail::finalize_metrics(replica);
  if (observer != nullptr) observer->finalize(engine.now());
  return metrics;
}

}  // namespace looplynx::serve
