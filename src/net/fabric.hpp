// Timed ring fabric: K simplex AXI-Stream links (node i -> node i+1 mod K)
// with per-link serialization and hop latency, delivering Datapack
// descriptors into per-node receive FIFOs.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "hw/link.hpp"
#include "net/datapack.hpp"
#include "sim/engine.hpp"
#include "sim/fifo.hpp"
#include "sim/task.hpp"

namespace looplynx::net {

class RingFabric {
 public:
  RingFabric(sim::Engine& engine, std::size_t num_nodes,
             hw::StreamLinkConfig link_config);

  /// Per-link configs (link i leaves node i): lets SLR-to-SLR hops and
  /// FPGA-to-FPGA hops carry different latencies.
  RingFabric(sim::Engine& engine,
             std::vector<hw::StreamLinkConfig> link_configs);

  std::size_t num_nodes() const noexcept { return links_.size(); }

  /// The link leaving node `from` toward its successor.
  hw::StreamLink& link(std::size_t from) { return *links_[from]; }

  /// Receive FIFO of `node` (packs arriving from its predecessor).
  sim::Fifo<Datapack>& rx(std::size_t node) { return *rx_[node]; }

  /// Sends `pack` from `from` to its successor: serializes on the link,
  /// then deposits the pack into the successor's receive FIFO.
  sim::Task send(std::size_t from, Datapack pack);

  /// Point-to-point transfer `from` -> `to`: serializes the pack on every
  /// link along the ring path (so total_bytes() counts bytes x hops) and
  /// completes when the last hop's wire time has elapsed. Unlike send(),
  /// intermediate nodes cut through — nothing lands in rx() FIFOs — which
  /// is what a DMA-style bulk move (serve-layer KV migration) wants: the
  /// caller owns delivery, and a deep multi-hop burst cannot deadlock on a
  /// bounded router FIFO nobody drains.
  sim::Task transfer(std::size_t from, std::size_t to, Datapack pack);

  /// Total bytes moved over all links.
  std::uint64_t total_bytes() const;

 private:
  sim::Engine* engine_;
  std::vector<std::unique_ptr<hw::StreamLink>> links_;
  std::vector<std::unique_ptr<sim::Fifo<Datapack>>> rx_;
};

}  // namespace looplynx::net
