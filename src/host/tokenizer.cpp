#include "host/tokenizer.hpp"

#include <algorithm>
#include <cassert>

namespace looplynx::host {

namespace {

std::vector<std::string> byte_vocab() {
  std::vector<std::string> vocab(256);
  for (int b = 0; b < 256; ++b) {
    vocab[b] = std::string(1, static_cast<char>(b));
  }
  return vocab;
}

std::vector<std::uint32_t> to_byte_ids(std::string_view text) {
  std::vector<std::uint32_t> ids;
  ids.reserve(text.size());
  for (unsigned char c : text) ids.push_back(c);
  return ids;
}

}  // namespace

Tokenizer Tokenizer::byte_level() {
  Tokenizer t;
  t.vocab_ = byte_vocab();
  t.vocab_.push_back("<eos>");
  t.eos_id_ = 256;
  return t;
}

Tokenizer Tokenizer::train(std::string_view corpus,
                           std::uint32_t target_vocab) {
  assert(target_vocab >= 257);
  Tokenizer t;
  t.vocab_ = byte_vocab();

  std::vector<std::uint32_t> ids = to_byte_ids(corpus);
  while (t.vocab_.size() + 1 < target_vocab && ids.size() >= 2) {
    // Count adjacent pairs.
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t> counts;
    for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
      ++counts[{ids[i], ids[i + 1]}];
    }
    // Most frequent pair (ties: lexicographically smallest, deterministic).
    std::pair<std::uint32_t, std::uint32_t> best{};
    std::uint32_t best_count = 0;
    for (const auto& [pair, count] : counts) {
      if (count > best_count) {
        best = pair;
        best_count = count;
      }
    }
    if (best_count < 2) break;  // nothing repeats; stop merging

    const auto merged_id = static_cast<std::uint32_t>(t.vocab_.size());
    t.vocab_.push_back(t.vocab_[best.first] + t.vocab_[best.second]);
    t.merges_.push_back({best, merged_id});
    t.merge_lookup_[best] = merged_id;

    // Apply the merge to the working sequence.
    std::vector<std::uint32_t> next;
    next.reserve(ids.size());
    for (std::size_t i = 0; i < ids.size();) {
      if (i + 1 < ids.size() && ids[i] == best.first &&
          ids[i + 1] == best.second) {
        next.push_back(merged_id);
        i += 2;
      } else {
        next.push_back(ids[i]);
        ++i;
      }
    }
    ids = std::move(next);
  }

  t.eos_id_ = static_cast<std::uint32_t>(t.vocab_.size());
  t.vocab_.push_back("<eos>");
  return t;
}

std::vector<std::uint32_t> Tokenizer::encode(std::string_view text) const {
  std::vector<std::uint32_t> ids = to_byte_ids(text);
  // Apply merges in training order (BPE greedy-by-rank): repeatedly find the
  // lowest-ranked applicable merge. Training order == merged-id order, so
  // scanning merges_ in order is rank order.
  for (const auto& [pair, merged_id] : merges_) {
    if (ids.size() < 2) break;
    std::vector<std::uint32_t> next;
    next.reserve(ids.size());
    bool applied = false;
    for (std::size_t i = 0; i < ids.size();) {
      if (i + 1 < ids.size() && ids[i] == pair.first &&
          ids[i + 1] == pair.second) {
        next.push_back(merged_id);
        i += 2;
        applied = true;
      } else {
        next.push_back(ids[i]);
        ++i;
      }
    }
    if (applied) ids = std::move(next);
  }
  return ids;
}

std::string Tokenizer::decode(const std::vector<std::uint32_t>& ids) const {
  std::string out;
  for (std::uint32_t id : ids) {
    if (id == eos_id_) break;
    assert(id < vocab_.size());
    out += vocab_[id];
  }
  return out;
}

}  // namespace looplynx::host
