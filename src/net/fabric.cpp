#include "net/fabric.hpp"

#include <string>

namespace looplynx::net {

RingFabric::RingFabric(sim::Engine& engine, std::size_t num_nodes,
                       hw::StreamLinkConfig link_config)
    : RingFabric(engine, std::vector<hw::StreamLinkConfig>(num_nodes,
                                                           link_config)) {}

RingFabric::RingFabric(sim::Engine& engine,
                       std::vector<hw::StreamLinkConfig> link_configs)
    : engine_(&engine) {
  const std::size_t num_nodes = link_configs.size();
  links_.reserve(num_nodes);
  rx_.reserve(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    links_.push_back(std::make_unique<hw::StreamLink>(
        engine, link_configs[n], "link" + std::to_string(n)));
    // Router FIFOs are deep enough to absorb a round of in-flight packs.
    rx_.push_back(std::make_unique<sim::Fifo<Datapack>>(
        engine, 64, "rx" + std::to_string(n)));
  }
}

sim::Task RingFabric::send(std::size_t from, Datapack pack) {
  const std::size_t to = (from + 1) % num_nodes();
  co_await links_[from]->send(pack.bytes);
  co_await rx_[to]->put(pack);
}

sim::Task RingFabric::transfer(std::size_t from, std::size_t to,
                               Datapack pack) {
  for (std::size_t node = from; node != to; node = (node + 1) % num_nodes()) {
    co_await links_[node]->send(pack.bytes);
  }
}

std::uint64_t RingFabric::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& l : links_) total += l->total_bytes();
  return total;
}

}  // namespace looplynx::net
