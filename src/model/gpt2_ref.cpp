#include "model/gpt2_ref.hpp"

#include <cassert>
#include <cmath>

#include "model/ops.hpp"

namespace looplynx::model {

Gpt2Reference::Gpt2Reference(const Gpt2Weights& weights)
    : weights_(&weights), cache_(weights.config) {}

std::vector<float> Gpt2Reference::forward_token(std::uint32_t token_id) {
  const ModelConfig& cfg = weights_->config;
  assert(token_id < cfg.vocab_size);
  assert(cache_.seq_len() < cfg.max_seq_len);

  // Token + positional embedding.
  std::vector<float> x(cfg.d_model);
  const auto tok = weights_->wte.row(token_id);
  const auto pos = weights_->wpe.row(cache_.seq_len());
  for (std::uint32_t i = 0; i < cfg.d_model; ++i) x[i] = tok[i] + pos[i];

  std::vector<float> norm(cfg.d_model);
  std::vector<float> qkv(3ULL * cfg.d_model);
  std::vector<float> attn_out(cfg.d_model);
  std::vector<float> proj(cfg.d_model);
  std::vector<float> ff1(cfg.d_ff);
  std::vector<float> ff2(cfg.d_model);

  for (std::uint32_t l = 0; l < cfg.n_layer; ++l) {
    const BlockWeights& b = weights_->blocks[l];

    // Pre-LN attention.
    norm.assign(x.begin(), x.end());
    layer_norm(norm, b.ln1_gain.flat(), b.ln1_bias.flat());
    observe("ln1_out", l, norm);
    linear(b.w_qkv, b.b_qkv.flat(), norm, qkv);
    observe("qkv_out", l, qkv);
    attention(l, qkv, attn_out);
    observe("attn_out", l, attn_out);
    linear(b.w_proj, b.b_proj.flat(), attn_out, proj);
    add_inplace(x, proj);

    // Pre-LN MLP.
    norm.assign(x.begin(), x.end());
    layer_norm(norm, b.ln2_gain.flat(), b.ln2_bias.flat());
    observe("ln2_out", l, norm);
    linear(b.w_fc1, b.b_fc1.flat(), norm, ff1);
    gelu(ff1);
    observe("gelu_out", l, ff1);
    linear(b.w_fc2, b.b_fc2.flat(), ff1, ff2);
    add_inplace(x, ff2);
  }

  cache_.advance();
  layer_norm(x, weights_->lnf_gain.flat(), weights_->lnf_bias.flat());
  return x;
}

void Gpt2Reference::attention(std::uint32_t layer, std::span<const float> qkv,
                              std::span<float> out) {
  const ModelConfig& cfg = weights_->config;
  const std::uint32_t hd = cfg.head_dim();
  const float scale = 1.0f / std::sqrt(static_cast<float>(hd));
  const std::uint32_t cur = cache_.seq_len();  // tokens already cached

  // Cache this token's K/V first so attention covers positions [0, cur].
  for (std::uint32_t h = 0; h < cfg.n_head; ++h) {
    const std::span<const float> k = qkv.subspan(cfg.d_model + h * hd, hd);
    const std::span<const float> v =
        qkv.subspan(2ULL * cfg.d_model + h * hd, hd);
    cache_.append(layer, h, k, v);
  }

  std::vector<float> scores(cur + 1);
  for (std::uint32_t h = 0; h < cfg.n_head; ++h) {
    const std::span<const float> q = qkv.subspan(h * hd, hd);
    // Causal mask is implicit: only positions <= cur exist in the cache.
    for (std::uint32_t p = 0; p <= cur; ++p) {
      scores[p] = dot(q, cache_.key(layer, h, p)) * scale;
    }
    softmax(scores);
    std::span<float> head_out = out.subspan(h * hd, hd);
    for (std::uint32_t i = 0; i < hd; ++i) head_out[i] = 0.0f;
    for (std::uint32_t p = 0; p <= cur; ++p) {
      const std::span<const float> v = cache_.value(layer, h, p);
      const float wgt = scores[p];
      for (std::uint32_t i = 0; i < hd; ++i) head_out[i] += wgt * v[i];
    }
  }
}

std::vector<float> Gpt2Reference::logits(std::span<const float> hidden) const {
  const ModelConfig& cfg = weights_->config;
  std::vector<float> out(cfg.vocab_size);
  matvec(weights_->wte, hidden, out);
  return out;
}

std::uint32_t Gpt2Reference::argmax_token(
    std::span<const float> hidden) const {
  const std::vector<float> lg = logits(hidden);
  std::uint32_t best = 0;
  for (std::uint32_t i = 1; i < lg.size(); ++i) {
    if (lg[i] > lg[best]) best = i;
  }
  return best;
}

std::vector<std::uint32_t> Gpt2Reference::generate(
    std::span<const std::uint32_t> prompt, std::uint32_t num_tokens) {
  assert(!prompt.empty());
  std::vector<float> hidden;
  for (std::uint32_t t : prompt) hidden = forward_token(t);

  std::vector<std::uint32_t> generated;
  generated.reserve(num_tokens);
  for (std::uint32_t i = 0; i < num_tokens; ++i) {
    const std::uint32_t next = argmax_token(hidden);
    generated.push_back(next);
    if (i + 1 < num_tokens) hidden = forward_token(next);
  }
  return generated;
}

}  // namespace looplynx::model
