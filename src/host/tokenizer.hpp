// Byte-level tokenizer with learned merges (BPE-style) for the host runtime.
//
// GPT-2 ships a 50257-entry byte-pair-encoding vocabulary; the pretrained
// merge table is not available offline, so this tokenizer *trains* its merge
// table from a corpus with the standard BPE procedure (greedy most-frequent
// pair merging over byte sequences). The resulting encode/decode round-trip
// is exact for any byte string — the property the host loop needs — and the
// vocabulary layout matches GPT-2's (256 byte tokens first, merges after,
// EOS last).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace looplynx::host {

class Tokenizer {
 public:
  /// Token id reserved for end-of-sequence (always vocab_size() - 1).
  std::uint32_t eos_id() const { return eos_id_; }
  std::uint32_t vocab_size() const {
    return static_cast<std::uint32_t>(vocab_.size());
  }

  /// Trains a merge table on `corpus` until the vocabulary reaches
  /// `target_vocab` entries (or no pair repeats). target_vocab must be
  /// >= 257 (256 byte tokens + EOS).
  static Tokenizer train(std::string_view corpus, std::uint32_t target_vocab);

  /// Byte-only tokenizer (no merges): 256 byte tokens + EOS.
  static Tokenizer byte_level();

  /// Encodes text to token ids (never produces EOS).
  std::vector<std::uint32_t> encode(std::string_view text) const;

  /// Decodes ids back to text; EOS terminates decoding.
  std::string decode(const std::vector<std::uint32_t>& ids) const;

  /// The byte string a single token stands for.
  const std::string& token_text(std::uint32_t id) const { return vocab_[id]; }

  std::size_t num_merges() const { return merges_.size(); }

 private:
  Tokenizer() = default;

  // vocab_[id] = byte string; ids [0,255] are single bytes.
  std::vector<std::string> vocab_;
  // Merge rules in priority order: (left id, right id) -> merged id.
  std::vector<std::pair<std::pair<std::uint32_t, std::uint32_t>,
                        std::uint32_t>>
      merges_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint32_t>
      merge_lookup_;  // with rank encoded via merged id ordering
  std::uint32_t eos_id_ = 256;
};

}  // namespace looplynx::host
