#include "sim/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

namespace looplynx::sim {

void Trace::add(const std::string& category, Cycles begin, Cycles end) {
  if (end < begin) end = begin;
  totals_[category] += end - begin;
  if (keep_spans_) spans_.push_back(Span{category, begin, end});
}

void Trace::add_cycles(const std::string& category, Cycles cycles) {
  totals_[category] += cycles;
}

Cycles Trace::total(const std::string& category) const {
  const auto it = totals_.find(category);
  return it == totals_.end() ? 0 : it->second;
}

Cycles Trace::grand_total() const {
  Cycles sum = 0;
  for (const auto& [_, cycles] : totals_) sum += cycles;
  return sum;
}

double Trace::fraction(const std::string& category) const {
  const Cycles all = grand_total();
  if (all == 0) return 0.0;
  return static_cast<double>(total(category)) / static_cast<double>(all);
}

void Trace::clear() {
  totals_.clear();
  spans_.clear();
}

void Trace::merge(const Trace& other) {
  for (const auto& [category, cycles] : other.totals_) {
    totals_[category] += cycles;
  }
  if (keep_spans_) {
    spans_.insert(spans_.end(), other.spans_.begin(), other.spans_.end());
  }
}

void Trace::print_summary(std::ostream& os) const {
  std::vector<std::pair<std::string, Cycles>> sorted(totals_.begin(),
                                                     totals_.end());
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  const double all = static_cast<double>(grand_total());
  for (const auto& [category, cycles] : sorted) {
    const double pct = all > 0 ? 100.0 * static_cast<double>(cycles) / all : 0;
    os << "  " << category << ": " << cycles << " cycles (" << pct << "%)\n";
  }
}

void Trace::export_chrome_trace(std::ostream& os) const {
  if (!keep_spans_) {
    throw std::logic_error(
        "Trace::export_chrome_trace requires keep_spans: construct the "
        "trace with Trace(/*keep_spans=*/true)");
  }
  ChromeTraceWriter writer(os);
  for (const Span& span : spans_) {
    writer.complete(span.category, "trace", /*pid=*/0, /*tid=*/0, span.begin,
                    span.end);
  }
  writer.finish();
}

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(&os) {
  *os_ << "{\"traceEvents\":[";
}

ChromeTraceWriter::~ChromeTraceWriter() { finish(); }

void ChromeTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  // The time-unit declaration keeps cycle-count timestamps self-describing.
  *os_ << "],\"otherData\":{\"clock\":\"simulated-cycles\","
          "\"timeUnit\":\"1 trace-us == 1 cycle\"}}\n";
}

std::string ChromeTraceWriter::json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void ChromeTraceWriter::begin_event() {
  if (!first_) *os_ << ',';
  first_ = false;
  *os_ << '\n';
}

void ChromeTraceWriter::complete(const std::string& name,
                                 const std::string& cat, std::uint32_t pid,
                                 std::uint32_t tid, Cycles begin, Cycles end) {
  if (end < begin) end = begin;
  begin_event();
  *os_ << "{\"name\":\"" << json_escape(name) << "\",\"cat\":\""
       << json_escape(cat) << "\",\"ph\":\"X\",\"pid\":" << pid
       << ",\"tid\":" << tid << ",\"ts\":" << begin
       << ",\"dur\":" << (end - begin) << "}";
}

void ChromeTraceWriter::instant(const std::string& name,
                                const std::string& cat, std::uint32_t pid,
                                std::uint32_t tid, Cycles at, char scope) {
  begin_event();
  *os_ << "{\"name\":\"" << json_escape(name) << "\",\"cat\":\""
       << json_escape(cat) << "\",\"ph\":\"i\",\"s\":\"" << scope
       << "\",\"pid\":" << pid << ",\"tid\":" << tid << ",\"ts\":" << at
       << "}";
}

void ChromeTraceWriter::async_event(char phase, const std::string& name,
                                    const std::string& cat, std::uint32_t pid,
                                    std::uint64_t id, Cycles at) {
  begin_event();
  *os_ << "{\"name\":\"" << json_escape(name) << "\",\"cat\":\""
       << json_escape(cat) << "\",\"ph\":\"" << phase << "\",\"id\":" << id
       << ",\"pid\":" << pid << ",\"tid\":0,\"ts\":" << at << "}";
}

void ChromeTraceWriter::async_begin(const std::string& name,
                                    const std::string& cat, std::uint32_t pid,
                                    std::uint64_t id, Cycles at) {
  async_event('b', name, cat, pid, id, at);
}

void ChromeTraceWriter::async_instant(const std::string& name,
                                      const std::string& cat,
                                      std::uint32_t pid, std::uint64_t id,
                                      Cycles at) {
  async_event('n', name, cat, pid, id, at);
}

void ChromeTraceWriter::async_end(const std::string& name,
                                  const std::string& cat, std::uint32_t pid,
                                  std::uint64_t id, Cycles at) {
  async_event('e', name, cat, pid, id, at);
}

void ChromeTraceWriter::process_name(std::uint32_t pid,
                                     const std::string& name) {
  begin_event();
  *os_ << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
       << ",\"tid\":0,\"args\":{\"name\":\"" << json_escape(name) << "\"}}";
}

}  // namespace looplynx::sim
