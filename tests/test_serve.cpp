// Tests for the continuous-batching serve layer: step-cost model, KV-slot
// accounting, traffic generation, scheduler policies, fleet determinism and
// backpressure, and the Host submit/flush path.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/arch_config.hpp"
#include "core/step_cost.hpp"
#include "core/system.hpp"
#include "host/serving.hpp"
#include "host/tokenizer.hpp"
#include "model/config.hpp"
#include "model/weights.hpp"
#include "quant/int8_model.hpp"
#include "serve/kv_slot.hpp"
#include "serve/queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/serving_sim.hpp"
#include "serve/traffic.hpp"
#include "util/rng.hpp"
#include "workload/mix.hpp"

namespace looplynx::serve {
namespace {

core::ArchConfig test_arch() { return core::ArchConfig::one_node(); }

/// Small shapes that fit the cosim model's 96-token context.
workload::Mix test_mix() {
  return workload::Mix{"test",
                       {{workload::make_scenario(8, 16), 0.5},
                        {workload::make_scenario(16, 8), 0.3},
                        {workload::make_scenario(4, 32), 0.2}}};
}

ServingConfig base_config() {
  ServingConfig cfg;
  cfg.arch = test_arch();
  cfg.model = model::cosim_config();
  cfg.cost_probe_stride = 16;
  cfg.traffic.mix = test_mix();
  cfg.traffic.num_requests = 24;
  cfg.traffic.arrival_rate_per_s = 200.0;
  cfg.traffic.seed = 42;
  cfg.scheduler.max_batch = 4;
  return cfg;
}

// ---------------------------------------------------------------- StepCost

TEST(StepCostModelTest, ExactStrideMatchesSystemTokenCycles) {
  const model::ModelConfig m = model::cosim_config();
  const core::System sys(test_arch(), m);
  const core::StepCostModel costs(sys, /*probe_stride=*/1);
  for (std::uint32_t pos : {0u, 1u, 7u, 40u, m.max_seq_len - 1}) {
    EXPECT_EQ(costs.step_cycles(pos), sys.token_cycles(pos)) << pos;
  }
}

TEST(StepCostModelTest, PrefillIsPrefixSumOfSteps) {
  const core::StepCostModel costs(test_arch(), model::cosim_config(),
                                  /*probe_stride=*/16);
  EXPECT_EQ(costs.prefill_cycles(0), 0u);
  sim::Cycles acc = 0;
  for (std::uint32_t pos = 0; pos < 24; ++pos) acc += costs.step_cycles(pos);
  EXPECT_EQ(costs.prefill_cycles(24), acc);
}

TEST(StepCostModelTest, CostGrowsWithKvLength) {
  const core::StepCostModel costs(test_arch(), model::cosim_config(),
                                  /*probe_stride=*/16);
  EXPECT_GT(costs.step_cycles(costs.max_positions() - 1),
            costs.step_cycles(0));
  EXPECT_GT(costs.prefill_cycles(64), costs.prefill_cycles(8));
}

TEST(StepCostModelTest, DecodeBatchSharesWeightStream) {
  const core::StepCostModel costs(test_arch(), model::cosim_config(),
                                  /*probe_stride=*/16);
  // Lone step: exact identity with the per-position table.
  EXPECT_EQ(costs.decode_batch_cycles({10}), costs.step_cycles(10));
  // A shared pass is cheaper than running the members back to back but
  // can never beat the compute bound.
  const std::vector<std::uint32_t> batch{10, 20, 30, 40};
  sim::Cycles sequential = 0;
  for (std::uint32_t pos : batch) sequential += costs.step_cycles(pos);
  const sim::Cycles shared = costs.decode_batch_cycles(batch);
  EXPECT_LT(shared, sequential);
  EXPECT_GE(shared, static_cast<sim::Cycles>(batch.size()) *
                        costs.weight_mac_cycles());
}

TEST(ServingSimTest, LargerBatchRaisesSaturatedThroughput) {
  ServingConfig cfg = base_config();
  cfg.traffic.arrival_rate_per_s = 50000.0;  // saturating burst
  cfg.scheduler.max_batch = 1;
  const FleetMetrics serial = ServingSim(cfg).run();
  cfg.scheduler.max_batch = 8;
  const FleetMetrics batched = ServingSim(cfg).run();
  EXPECT_GT(batched.decode_tok_s, serial.decode_tok_s);
  EXPECT_GT(batched.mean_batch_size, serial.mean_batch_size);
}

// ----------------------------------------------------------------- KvSlots

TEST(KvSlotManagerTest, CapacityFollowsBudget) {
  const model::ModelConfig m = model::cosim_config();  // 3 layers, 8 heads, 8 dim
  const core::ArchConfig arch = test_arch();
  // K+V int8: 2 * 3 * 8 * 8 = 384 bytes per token on the single node.
  KvSlotManager kv(arch, m, /*budget=*/384 * 10);
  EXPECT_EQ(kv.bytes_per_token_per_node(), 384u);
  EXPECT_EQ(kv.capacity_tokens(), 10u);

  EXPECT_TRUE(kv.try_reserve(6));
  EXPECT_FALSE(kv.try_reserve(5));  // only 4 left
  EXPECT_EQ(kv.stall_events(), 1u);
  EXPECT_TRUE(kv.try_reserve(4));
  EXPECT_EQ(kv.used_tokens(), 10u);
  EXPECT_DOUBLE_EQ(kv.peak_occupancy(), 1.0);
  kv.release(6);
  EXPECT_EQ(kv.free_tokens(), 6u);
  EXPECT_FALSE(kv.can_ever_fit(11));
  EXPECT_TRUE(kv.can_ever_fit(10));
}

TEST(KvSlotManagerTest, DefaultBudgetUsesKvChannels) {
  const core::ArchConfig arch = core::ArchConfig::two_node();  // kv_channels=2
  KvSlotManager kv(arch, model::gpt2_medium());
  // 2 channels x 256 MiB / (2 * 24 layers * 8 heads/node * 64 dim).
  EXPECT_EQ(kv.bytes_per_token_per_node(), 24576u);
  EXPECT_EQ(kv.capacity_tokens(), (512ull << 20) / 24576u);
}

// ----------------------------------------------------------------- Traffic

TEST(TrafficGenTest, PoissonScheduleIsDeterministicAndSorted) {
  TrafficConfig cfg;
  cfg.mix = test_mix();
  cfg.num_requests = 50;
  cfg.arrival_rate_per_s = 100.0;
  cfg.seed = 7;
  TrafficGen a(cfg, 285e6), b(cfg, 285e6);
  const auto sa = a.open_loop_schedule();
  const auto sb = b.open_loop_schedule();
  ASSERT_EQ(sa.size(), 50u);
  EXPECT_TRUE(std::is_sorted(
      sa.begin(), sa.end(),
      [](const Arrival& x, const Arrival& y) { return x.at < y.at; }));
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].at, sb[i].at);
    EXPECT_EQ(sa[i].shape.name, sb[i].shape.name);
  }
}

TEST(TrafficGenTest, BurstyScheduleClustersArrivals) {
  TrafficConfig cfg;
  cfg.process = ArrivalProcess::kBursty;
  cfg.mix = test_mix();
  cfg.num_requests = 200;
  cfg.arrival_rate_per_s = 50.0;
  cfg.burst_factor = 4.0;
  cfg.burst_fraction = 0.25;
  cfg.seed = 11;
  TrafficGen gen(cfg, 285e6);
  const auto schedule = gen.open_loop_schedule();
  ASSERT_EQ(schedule.size(), 200u);
  // Arrivals inside the on-phase (first quarter of each 2 s period) should
  // be heavily over-represented relative to the 25% of time it covers.
  std::size_t on_phase = 0;
  for (const Arrival& a : schedule) {
    const double t = static_cast<double>(a.at) / 285e6;
    if (std::fmod(t, cfg.burst_period_s) < cfg.burst_period_s * 0.25) {
      ++on_phase;
    }
  }
  EXPECT_GT(on_phase, schedule.size() / 2);
}

TEST(TrafficGenTest, RejectsDegenerateBurstParameters) {
  TrafficConfig cfg;
  cfg.process = ArrivalProcess::kBursty;
  cfg.mix = test_mix();
  cfg.burst_period_s = 0.0;  // would otherwise loop forever on fmod(t, 0)
  EXPECT_THROW(TrafficGen(cfg, 285e6), std::invalid_argument);
  cfg.burst_period_s = 2.0;
  cfg.burst_fraction = 1.0;
  EXPECT_THROW(TrafficGen(cfg, 285e6), std::invalid_argument);
}

TEST(TrafficGenTest, ExplicitArrivalsOverrideProcess) {
  TrafficConfig cfg;
  cfg.mix = test_mix();
  cfg.explicit_arrivals = {{0, workload::make_scenario(4, 4)},
                           {100, workload::make_scenario(8, 8)}};
  TrafficGen gen(cfg, 285e6);
  const auto schedule = gen.open_loop_schedule();
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[1].at, 100u);
}

TEST(MixTest, SamplingCoversEntriesDeterministically) {
  const workload::Mix mix = test_mix();
  EXPECT_EQ(mix.sample(0.0).name, "[8:16]");
  EXPECT_EQ(mix.sample(0.6).name, "[16:8]");
  EXPECT_EQ(mix.sample(0.999).name, "[4:32]");
  EXPECT_NEAR(mix.mean_tokens_per_request(),
              0.5 * 24 + 0.3 * 24 + 0.2 * 36, 1e-12);
}

// --------------------------------------------------------------- Scheduler

TEST(SchedulerTest, PrefillPriorityPicksPrefillsFirst) {
  sim::Engine engine;
  Request p1(engine, 0, workload::make_scenario(8, 8));
  Request p2(engine, 1, workload::make_scenario(8, 8));
  Request d1(engine, 2, workload::make_scenario(8, 8));
  d1.prefilled = true;
  SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.policy = BatchPolicy::kPrefillPriority;
  Scheduler sched(cfg);
  std::vector<Request*> runnable{&d1, &p1, &p2};
  const auto batch = sched.select(runnable);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], &p1);
  EXPECT_EQ(batch[1], &p2);
  ASSERT_EQ(runnable.size(), 1u);
  EXPECT_EQ(runnable[0], &d1);
}

TEST(SchedulerTest, DecodePriorityPicksDecodesFirst) {
  sim::Engine engine;
  Request p1(engine, 0, workload::make_scenario(8, 8));
  Request d1(engine, 1, workload::make_scenario(8, 8));
  Request d2(engine, 2, workload::make_scenario(8, 8));
  d1.prefilled = d2.prefilled = true;
  SchedulerConfig cfg;
  cfg.max_batch = 3;
  cfg.policy = BatchPolicy::kDecodePriority;
  Scheduler sched(cfg);
  std::vector<Request*> runnable{&p1, &d1, &d2};
  const auto batch = sched.select(runnable);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], &d1);
  EXPECT_EQ(batch[1], &d2);
  EXPECT_EQ(batch[2], &p1);
  EXPECT_TRUE(runnable.empty());
}

// ------------------------------------------------------------- Fleet runs

void expect_identical(const FleetMetrics& a, const FleetMetrics& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.decode_tokens, b.decode_tokens);
  EXPECT_EQ(a.iterations, b.iterations);
  // Bit-identical, not approximately equal: the engine guarantees
  // reproducible event ordering and all arithmetic is deterministic.
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.throughput_tok_s, b.throughput_tok_s);
  EXPECT_EQ(a.ttft_ms.p50, b.ttft_ms.p50);
  EXPECT_EQ(a.ttft_ms.p99, b.ttft_ms.p99);
  EXPECT_EQ(a.token_ms.p50, b.token_ms.p50);
  EXPECT_EQ(a.e2e_ms.p99, b.e2e_ms.p99);
  EXPECT_EQ(a.mean_batch_size, b.mean_batch_size);
  EXPECT_EQ(a.busy_fraction, b.busy_fraction);
  EXPECT_EQ(a.kv_peak_occupancy, b.kv_peak_occupancy);
  EXPECT_EQ(a.kv_stall_events, b.kv_stall_events);
}

TEST(ServingSimTest, SameSeedSameMetrics) {
  const ServingConfig cfg = base_config();
  const ServingSim sim(cfg);
  const FleetMetrics a = sim.run();
  const FleetMetrics b = sim.run();                  // same instance
  const FleetMetrics c = ServingSim(cfg).run();      // fresh cost probe
  expect_identical(a, b);
  expect_identical(a, c);
  EXPECT_EQ(a.completed, cfg.traffic.num_requests);
  EXPECT_EQ(a.offered, a.completed + a.rejected);
}

TEST(ServingSimTest, DifferentSeedsDiverge) {
  ServingConfig cfg = base_config();
  const FleetMetrics a = ServingSim(cfg).run();
  cfg.traffic.seed = 43;
  const FleetMetrics b = ServingSim(cfg).run();
  EXPECT_NE(a.duration_s, b.duration_s);
}

TEST(ServingSimTest, KvExhaustionBackpressuresButCompletes) {
  ServingConfig cfg = base_config();
  // Room for ~2 test-mix requests at a time; 24 arrive nearly at once.
  cfg.traffic.arrival_rate_per_s = 50000.0;
  KvSlotManager probe(cfg.arch, cfg.model, 1);
  cfg.kv_budget_bytes_per_node = 64 * probe.bytes_per_token_per_node();
  const FleetMetrics m = ServingSim(cfg).run();
  EXPECT_EQ(m.completed, cfg.traffic.num_requests);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_GT(m.kv_stall_events, 0u);       // admission actually stalled
  EXPECT_GT(m.peak_queue_depth, 4u);      // the queue visibly backed up
  EXPECT_LE(m.kv_peak_occupancy, 1.0);    // never over-committed
  EXPECT_GT(m.queue_wait_ms.p99, m.queue_wait_ms.p50);
}

TEST(ServingSimTest, OversizedRequestIsRejectedNotWedged) {
  ServingConfig cfg = base_config();
  cfg.traffic.explicit_arrivals = {
      {0, workload::make_scenario(8, 8)},
      {0, workload::make_scenario(30, 30)},  // > 32-token KV budget
      {0, workload::make_scenario(8, 8)},
  };
  KvSlotManager probe(cfg.arch, cfg.model, 1);
  cfg.kv_budget_bytes_per_node = 32 * probe.bytes_per_token_per_node();
  const FleetMetrics m = ServingSim(cfg).run();
  EXPECT_EQ(m.offered, 3u);
  EXPECT_EQ(m.completed, 2u);
  EXPECT_EQ(m.rejected, 1u);
}

TEST(ServingSimTest, QueueCapacityShedsLoad) {
  ServingConfig cfg = base_config();
  cfg.traffic.arrival_rate_per_s = 5000.0;  // everyone arrives at once
  cfg.scheduler.queue_capacity = 4;
  cfg.scheduler.max_in_flight = 2;
  const FleetMetrics m = ServingSim(cfg).run();
  EXPECT_GT(m.rejected, 0u);
  EXPECT_EQ(m.offered, m.completed + m.rejected);
  EXPECT_LE(m.peak_queue_depth, 4u);
}

TEST(ServingSimTest, BatchingRespectsMaxBatchAndInterleaves) {
  for (const BatchPolicy policy :
       {BatchPolicy::kPrefillPriority, BatchPolicy::kDecodePriority}) {
    ServingConfig cfg = base_config();
    cfg.scheduler.policy = policy;
    cfg.keep_request_records = true;
    const FleetMetrics m = ServingSim(cfg).run();
    EXPECT_EQ(m.completed, cfg.traffic.num_requests);
    EXPECT_LE(m.mean_batch_size,
              static_cast<double>(cfg.scheduler.max_batch));
    EXPECT_GT(m.mean_batch_size, 1.0);  // batching actually happened
    EXPECT_GT(m.decode_tokens, 0u);
  }
}

TEST(ServingSimTest, PolicyTradesTtftForTokenLatency) {
  ServingConfig cfg = base_config();
  cfg.traffic.arrival_rate_per_s = 2000.0;  // saturating burst
  cfg.traffic.num_requests = 32;
  cfg.scheduler.policy = BatchPolicy::kPrefillPriority;
  const FleetMetrics prefill_first = ServingSim(cfg).run();
  cfg.scheduler.policy = BatchPolicy::kDecodePriority;
  const FleetMetrics decode_first = ServingSim(cfg).run();
  // Prefill priority admits new requests sooner => lower median TTFT.
  EXPECT_LT(prefill_first.ttft_ms.p50, decode_first.ttft_ms.p50);
}

TEST(ServingSimTest, ClosedLoopSelfLimits) {
  ServingConfig cfg = base_config();
  cfg.traffic.process = ArrivalProcess::kClosedLoop;
  cfg.traffic.clients = 4;
  cfg.traffic.think_time_s = 0.001;
  cfg.traffic.num_requests = 16;
  const FleetMetrics m = ServingSim(cfg).run();
  EXPECT_EQ(m.offered, 16u);
  EXPECT_EQ(m.completed, 16u);
  // At most `clients` requests can ever be waiting.
  EXPECT_LE(m.peak_queue_depth, 4u);
  const FleetMetrics n = ServingSim(cfg).run();
  expect_identical(m, n);
}

// ---------------------------------------------------------- RequestQueue

TEST(RequestQueueTest, BoundedFifoWithPeakTracking) {
  sim::Engine engine;
  Request a(engine, 0, workload::make_scenario(1, 1));
  Request b(engine, 1, workload::make_scenario(1, 1));
  Request c(engine, 2, workload::make_scenario(1, 1));
  RequestQueue q(2);
  EXPECT_TRUE(q.push(&a));
  EXPECT_TRUE(q.push(&b));
  EXPECT_FALSE(q.push(&c));  // full
  EXPECT_EQ(q.peak_depth(), 2u);
  EXPECT_EQ(q.front(), &a);
  q.pop();
  EXPECT_EQ(q.front(), &b);
  EXPECT_TRUE(q.push(&c));
}

// ------------------------------------------------------------- Host batch

TEST(HostBatchTest, SubmitFlushTimesRequestsThroughOneFleet) {
  model::ModelConfig cfg = model::cosim_config();
  cfg.vocab_size = 512;
  const auto w = model::Gpt2Weights::random(cfg, 77);
  util::Rng rng(78);
  std::vector<std::uint32_t> calib(24);
  for (auto& t : calib) {
    t = static_cast<std::uint32_t>(rng.next_below(cfg.vocab_size));
  }
  const auto weights = quant::Gpt2Int8Weights::build_with_calibration(w, calib);
  host::Host h(weights, host::Tokenizer::byte_level(),
               core::ArchConfig::two_node());

  host::ServeRequest r1{.prompt = "loop", .max_new_tokens = 6, .sampling = {}};
  host::ServeRequest r2{.prompt = "lynx fox", .max_new_tokens = 4,
                        .sampling = {}};
  EXPECT_EQ(h.submit(r1), 0u);
  EXPECT_EQ(h.submit(r2), 1u);
  EXPECT_EQ(h.pending(), 2u);
  const auto results = h.flush();
  EXPECT_EQ(h.pending(), 0u);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_GT(r.total_ms, 0.0);
    EXPECT_NEAR(r.total_ms, r.prefill_ms + r.decode_ms, 1e-9);
    EXPECT_GE(r.queue_ms, 0.0);
  }
  // Single-request serve matches the documented invariants too.
  const auto lone = h.serve(r1);
  EXPECT_GT(lone.decode_tokens_per_s, 0.0);
  EXPECT_DOUBLE_EQ(lone.queue_ms, 0.0);
  EXPECT_FALSE(lone.rejected);

  // A queue bound of 1 sheds the overflow; shed results are flagged so
  // callers cannot mistake their zero timing for a measurement.
  h.submit(r1);
  h.submit(r2);
  h.submit(r1);
  serve::SchedulerConfig tight;
  tight.queue_capacity = 1;
  const auto shed = h.flush(tight);
  ASSERT_EQ(shed.size(), 3u);
  int rejected = 0;
  for (const auto& r : shed) {
    if (r.rejected) {
      ++rejected;
      EXPECT_DOUBLE_EQ(r.total_ms, 0.0);
      EXPECT_FALSE(r.text.empty());  // generation still happened
    } else {
      EXPECT_GT(r.total_ms, 0.0);
    }
  }
  EXPECT_EQ(rejected, 2);
}

}  // namespace
}  // namespace looplynx::serve
