#include "hw/link.hpp"

#include <cmath>

namespace looplynx::hw {

sim::Cycles StreamLink::transfer_cycles(std::uint64_t bytes) const {
  if (bytes == 0) return 0;
  const auto serialize = static_cast<sim::Cycles>(std::ceil(
      static_cast<double>(bytes) / config_.bytes_per_cycle));
  return config_.hop_latency_cycles + serialize;
}

sim::Task StreamLink::send(std::uint64_t bytes) {
  if (bytes == 0) co_return;
  co_await mutex_.lock();
  const sim::Cycles cost = transfer_cycles(bytes);
  co_await engine_->delay(cost);
  busy_cycles_ += cost;
  total_bytes_ += bytes;
  mutex_.unlock();
}

}  // namespace looplynx::hw
