#include "hw/platform.hpp"

namespace looplynx::hw {

PlatformSpec a100() {
  return PlatformSpec{
      .name = "Nvidia A100",
      .process = "7nm",
      .frequency_hz = 1065e6,
      .compute_units = "432 Tensor Cores",
      .memory_bandwidth_bps = 1935e9,
      .tdp_watts = 300,
      .compute_unit_count = 432,
  };
}

PlatformSpec alveo_u280() {
  return PlatformSpec{
      .name = "Xilinx Alveo U280",
      .process = "16nm",
      .frequency_hz = 300e6,  // 200-300 MHz range; peak listed
      .compute_units = "9024 DSPs",
      .memory_bandwidth_bps = 460e9,
      .tdp_watts = 215,
      .compute_unit_count = 9024,
  };
}

PlatformSpec alveo_u50() {
  return PlatformSpec{
      .name = "Xilinx Alveo U50",
      .process = "16nm",
      .frequency_hz = 300e6,
      .compute_units = "5952 DSPs",
      .memory_bandwidth_bps = 201e9,
      .tdp_watts = 75,
      .compute_unit_count = 5952,
  };
}

std::vector<PlatformSpec> table1_platforms() {
  return {a100(), alveo_u280(), alveo_u50()};
}

}  // namespace looplynx::hw
