// Unit tests for the discrete-event engine and coroutine Task plumbing.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace looplynx::sim {
namespace {

Task delay_then_record(Engine& eng, Cycles d, std::vector<Cycles>& log) {
  co_await eng.delay(d);
  log.push_back(eng.now());
}

TEST(EngineTest, StartsAtTimeZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0u);
  EXPECT_EQ(eng.events_processed(), 0u);
}

TEST(EngineTest, SingleDelayAdvancesClock) {
  Engine eng;
  std::vector<Cycles> log;
  eng.spawn(delay_then_record(eng, 42, log));
  eng.run();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 42u);
  EXPECT_EQ(eng.now(), 42u);
}

TEST(EngineTest, EventsFireInTimeOrder) {
  Engine eng;
  std::vector<Cycles> log;
  eng.spawn(delay_then_record(eng, 30, log));
  eng.spawn(delay_then_record(eng, 10, log));
  eng.spawn(delay_then_record(eng, 20, log));
  eng.run();
  EXPECT_EQ(log, (std::vector<Cycles>{10, 20, 30}));
}

Task record_id(Engine& eng, int id, std::vector<int>& order) {
  co_await eng.delay(5);
  order.push_back(id);
}

TEST(EngineTest, SameTimeEventsFireInSpawnOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) eng.spawn(record_id(eng, i, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

Task sequential_delays(Engine& eng, std::vector<Cycles>& log) {
  co_await eng.delay(10);
  log.push_back(eng.now());
  co_await eng.delay(0);  // yield: same cycle
  log.push_back(eng.now());
  co_await eng.delay(7);
  log.push_back(eng.now());
}

TEST(EngineTest, DelaysAccumulate) {
  Engine eng;
  std::vector<Cycles> log;
  eng.spawn(sequential_delays(eng, log));
  eng.run();
  EXPECT_EQ(log, (std::vector<Cycles>{10, 10, 17}));
}

Task child_task(Engine& eng, std::vector<std::string>& log) {
  log.push_back("child-start");
  co_await eng.delay(3);
  log.push_back("child-end");
}

Task parent_task(Engine& eng, std::vector<std::string>& log) {
  log.push_back("parent-start");
  co_await child_task(eng, log);
  log.push_back("parent-after-child");
  co_await eng.delay(2);
  log.push_back("parent-end");
}

TEST(EngineTest, NestedTaskRunsInlineAndResumesParent) {
  Engine eng;
  std::vector<std::string> log;
  const auto id = eng.spawn(parent_task(eng, log));
  eng.run();
  EXPECT_TRUE(eng.root_done(id));
  EXPECT_EQ(log, (std::vector<std::string>{"parent-start", "child-start",
                                           "child-end", "parent-after-child",
                                           "parent-end"}));
  EXPECT_EQ(eng.now(), 5u);
}

Task deep_nest(Engine& eng, int depth, Cycles each) {
  if (depth == 0) {
    co_await eng.delay(each);
    co_return;
  }
  co_await deep_nest(eng, depth - 1, each);
}

TEST(EngineTest, DeeplyNestedTasksComplete) {
  Engine eng;
  const auto id = eng.spawn(deep_nest(eng, 64, 9));
  eng.run();
  EXPECT_TRUE(eng.root_done(id));
  EXPECT_EQ(eng.now(), 9u);
}

Task throwing_task(Engine& eng) {
  co_await eng.delay(1);
  throw std::runtime_error("kernel fault");
}

TEST(EngineTest, RootExceptionPropagatesFromRun) {
  Engine eng;
  eng.spawn(throwing_task(eng));
  EXPECT_THROW(eng.run(), std::runtime_error);
}

Task throwing_child(Engine& eng) {
  co_await eng.delay(1);
  throw std::logic_error("child fault");
}

Task catching_parent(Engine& eng, bool& caught) {
  try {
    co_await throwing_child(eng);
  } catch (const std::logic_error&) {
    caught = true;
  }
}

TEST(EngineTest, ChildExceptionCatchableInParent) {
  Engine eng;
  bool caught = false;
  eng.spawn(catching_parent(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

TEST(EngineTest, RunUntilStopsAtRequestedTime) {
  Engine eng;
  std::vector<Cycles> log;
  eng.spawn(delay_then_record(eng, 10, log));
  eng.spawn(delay_then_record(eng, 100, log));
  const bool empty = eng.run_until(50);
  EXPECT_FALSE(empty);
  EXPECT_EQ(eng.now(), 50u);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0], 10u);
  eng.run();
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(eng.now(), 100u);
}

TEST(EngineTest, MaxEventsBoundsRunawayProcesses) {
  Engine eng;
  struct Looper {
    static Task run(Engine& eng) {
      for (;;) co_await eng.delay(1);
    }
  };
  eng.spawn(Looper::run(eng));
  const auto processed = eng.run(/*max_events=*/1000);
  EXPECT_EQ(processed, 1000u);
}

Task spawner(Engine& eng, std::vector<Cycles>& log) {
  co_await eng.delay(5);
  eng.spawn(delay_then_record(eng, 3, log));
  co_await eng.delay(10);
  log.push_back(eng.now());
}

TEST(EngineTest, SpawnDuringRunSchedulesAtCurrentTime) {
  Engine eng;
  std::vector<Cycles> log;
  eng.spawn(spawner(eng, log));
  eng.run();
  // Spawned child starts at t=5 and finishes its 3-cycle delay at t=8; the
  // parent records at t=15.
  EXPECT_EQ(log, (std::vector<Cycles>{8, 15}));
}

TEST(EngineTest, DestructionWithSuspendedProcessesIsClean) {
  // Processes still blocked at engine teardown must not leak or crash
  // (checked by ASAN builds; here we just exercise the path).
  Engine eng;
  struct Blocked {
    static Task run(Engine& eng) {
      co_await eng.delay(1'000'000);  // never reached by run_until below
    }
  };
  eng.spawn(Blocked::run(eng));
  eng.run_until(10);
  SUCCEED();
}

TEST(TaskTest, MoveTransfersOwnership) {
  Engine eng;
  std::vector<Cycles> log;
  Task t = delay_then_record(eng, 1, log);
  EXPECT_TRUE(t.valid());
  Task u = std::move(t);
  EXPECT_FALSE(t.valid());  // NOLINT(bugprone-use-after-move): intentional
  EXPECT_TRUE(u.valid());
  eng.spawn(std::move(u));
  eng.run();
  EXPECT_EQ(log.size(), 1u);
}

TEST(EngineTest, EventCountsAreTracked) {
  Engine eng;
  std::vector<Cycles> log;
  eng.spawn(delay_then_record(eng, 1, log));
  eng.spawn(delay_then_record(eng, 2, log));
  eng.run();
  // Each root: one start event + one delay-resume event.
  EXPECT_EQ(eng.events_processed(), 4u);
}

}  // namespace
}  // namespace looplynx::sim
