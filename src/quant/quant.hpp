// Core W8A8 quantization primitives (SmoothQuant-style static quantization,
// per-channel weights, per-tensor activations — the scheme the paper uses on
// both LoopLynx and the torch-int A100 baseline).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/tensor.hpp"

namespace looplynx::quant {

/// Symmetric int8 scale for a given absolute maximum.
inline float scale_for_absmax(float absmax) {
  // Guard against dead channels: a zero scale would divide by zero.
  return absmax > 1e-12f ? absmax / 127.0f : 1e-12f / 127.0f;
}

/// Quantizes one value: round-to-nearest, clamped to [-127, 127].
std::int8_t quantize_value(float v, float scale);

/// Per-tensor quantization of a vector.
void quantize(std::span<const float> x, float scale, std::span<std::int8_t> q);

/// Dequantize.
void dequantize(std::span<const std::int8_t> q, float scale,
                std::span<float> x);

/// int8 x int8 -> int32 dot product (exact integer arithmetic; this is the
/// operation the MPU's MAC units perform).
std::int32_t dot_i8(std::span<const std::int8_t> a,
                    std::span<const std::int8_t> b);

/// A quantized linear layer y = W x + b with per-output-channel weight
/// scales and a static per-tensor input scale. Output is produced in fp32
/// (the accelerator's quantization unit re-quantizes it for the next kernel
/// when needed).
struct QuantizedLinear {
  model::Tensor8 weight;             // [out x in]
  std::vector<float> weight_scales;  // per output row
  std::vector<float> bias;           // fp32, per output row
  float input_scale = 1.0f;

  std::size_t out_features() const { return weight.rows(); }
  std::size_t in_features() const { return weight.cols(); }

  /// Builds from fp32 weights [out x in] with per-channel scales; the input
  /// scale comes from calibration.
  static QuantizedLinear from_float(const model::Tensor& w,
                                    std::span<const float> bias,
                                    float input_scale);

  /// y_fp = dequant(W_q x_q) + b over the full output range.
  void forward(std::span<const std::int8_t> x_q, std::span<float> y) const;

  /// Computes only output rows [row_begin, row_end) — the column-parallel
  /// partition a single LoopLynx node evaluates (paper Fig. 2(c)).
  void forward_rows(std::span<const std::int8_t> x_q, std::size_t row_begin,
                    std::size_t row_end, std::span<float> y) const;

  /// Weight bytes (int8) this layer streams from HBM per invocation.
  std::uint64_t weight_bytes() const { return weight.size(); }
};

/// Quantization error metrics between a reference and a test vector.
struct ErrorStats {
  double max_abs = 0.0;
  double mean_abs = 0.0;
  double rel_l2 = 0.0;  // ||a-b|| / ||a||
};
ErrorStats compare(std::span<const float> reference,
                   std::span<const float> test);

}  // namespace looplynx::quant
