// Tests for the quantization substrate: primitives, SmoothQuant migration,
// and the end-to-end W8A8 GPT-2 model vs the fp32 reference.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "model/config.hpp"
#include "model/gpt2_ref.hpp"
#include "model/ops.hpp"
#include "quant/int8_model.hpp"
#include "quant/quant.hpp"
#include "quant/smoothquant.hpp"
#include "util/rng.hpp"

namespace looplynx::quant {
namespace {

std::vector<std::uint32_t> calib_tokens(const model::ModelConfig& cfg,
                                        std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint32_t> toks(n);
  for (auto& t : toks) {
    t = static_cast<std::uint32_t>(rng.next_below(cfg.vocab_size));
  }
  return toks;
}

TEST(QuantPrimitiveTest, RoundTripWithinHalfStep) {
  util::Rng rng(1);
  const float absmax = 4.0f;
  const float scale = scale_for_absmax(absmax);
  for (int i = 0; i < 1000; ++i) {
    const float v = static_cast<float>(rng.uniform(-absmax, absmax));
    const std::int8_t q = quantize_value(v, scale);
    const float back = static_cast<float>(q) * scale;
    EXPECT_NEAR(back, v, scale * 0.5f + 1e-6f);
  }
}

TEST(QuantPrimitiveTest, SaturatesAtClip) {
  const float scale = scale_for_absmax(1.0f);
  EXPECT_EQ(quantize_value(10.0f, scale), 127);
  EXPECT_EQ(quantize_value(-10.0f, scale), -127);
  EXPECT_EQ(quantize_value(0.0f, scale), 0);
}

TEST(QuantPrimitiveTest, DotI8MatchesInt32Reference) {
  util::Rng rng(2);
  std::vector<std::int8_t> a(257), b(257);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    b[i] = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  }
  std::int64_t expect = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect += static_cast<std::int64_t>(a[i]) * b[i];
  }
  EXPECT_EQ(dot_i8(a, b), expect);
}

TEST(QuantPrimitiveTest, ZeroAbsmaxDoesNotDivideByZero) {
  const float scale = scale_for_absmax(0.0f);
  EXPECT_GT(scale, 0.0f);
  EXPECT_EQ(quantize_value(0.0f, scale), 0);
}

TEST(QuantizedLinearTest, MatchesFp32WithinQuantError) {
  util::Rng rng(3);
  const std::size_t out = 24, in = 48;
  model::Tensor w(out, in);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.normal(0.0, 0.1));
  }
  std::vector<float> bias(out);
  for (auto& b : bias) b = static_cast<float>(rng.normal(0.0, 0.5));
  std::vector<float> x(in);
  for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 1.0));

  const float x_scale = scale_for_absmax(model::abs_max(x));
  const QuantizedLinear ql = QuantizedLinear::from_float(w, bias, x_scale);
  std::vector<std::int8_t> x_q(in);
  quantize(x, x_scale, x_q);

  std::vector<float> y_ref(out), y_q(out);
  model::linear(w, bias, x, y_ref);
  ql.forward(x_q, y_q);

  const ErrorStats err = compare(y_ref, y_q);
  EXPECT_LT(err.rel_l2, 0.03) << "int8 linear deviates too much from fp32";
}

TEST(QuantizedLinearTest, RowRangeMatchesFullForward) {
  util::Rng rng(4);
  const std::size_t out = 16, in = 32;
  model::Tensor w(out, in);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.normal(0.0, 0.2));
  }
  std::vector<float> bias(out, 0.25f);
  const QuantizedLinear ql = QuantizedLinear::from_float(w, bias, 0.05f);
  std::vector<std::int8_t> x_q(in);
  for (auto& v : x_q) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));

  std::vector<float> full(out);
  ql.forward(x_q, full);
  // Column-parallel split: 4 nodes of 4 rows each must tile the output.
  for (std::size_t node = 0; node < 4; ++node) {
    std::vector<float> part(4);
    ql.forward_rows(x_q, node * 4, node * 4 + 4, part);
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_FLOAT_EQ(part[i], full[node * 4 + i]);
    }
  }
}

TEST(SmoothQuantTest, FactorsBalanceActivationAndWeight) {
  // Channel 0: huge activation, small weight => s >> 1 shifts difficulty to
  // the weight. Channel 1: the reverse => s << 1.
  const std::vector<float> act{100.0f, 0.1f};
  const std::vector<float> wgt{0.1f, 10.0f};
  const auto s = smoothing_factors(act, wgt, 0.5f);
  EXPECT_GT(s[0], 1.0f);
  EXPECT_LT(s[1], 1.0f);
}

TEST(SmoothQuantTest, AlphaZeroAndOneAreDegenerate) {
  const std::vector<float> act{8.0f};
  const std::vector<float> wgt{2.0f};
  // alpha=1: s = max|x| (full migration); alpha=0: s = 1/max|W|.
  EXPECT_NEAR(smoothing_factors(act, wgt, 1.0f)[0], 8.0f, 1e-5f);
  EXPECT_NEAR(smoothing_factors(act, wgt, 0.0f)[0], 0.5f, 1e-5f);
}

TEST(SmoothQuantTest, MigrationPreservesFp32Product) {
  util::Rng rng(5);
  const std::size_t out = 8, in = 12;
  model::Tensor w(out, in);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.normal(0.0, 0.3));
  }
  std::vector<float> gain(in, 1.0f), bias_ln(in, 0.0f);
  std::vector<float> x(in);
  for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 2.0));

  // Reference product with unsmoothed weights on raw x.
  std::vector<float> y_ref(out);
  model::matvec(w, x, y_ref);

  std::vector<float> act_max(in);
  for (std::size_t j = 0; j < in; ++j) act_max[j] = std::abs(x[j]) + 0.1f;
  const auto s = smoothing_factors(act_max, weight_column_absmax(w), 0.5f);
  model::Tensor w2 = w;
  apply_smoothing(w2, gain, bias_ln, s);

  // After folding, the linear sees x/s (here applied manually since there is
  // no LN in this micro-test).
  std::vector<float> x_div(in);
  for (std::size_t j = 0; j < in; ++j) x_div[j] = x[j] / s[j];
  std::vector<float> y_smooth(out);
  model::matvec(w2, x_div, y_smooth);

  const ErrorStats err = compare(y_ref, y_smooth);
  EXPECT_LT(err.max_abs, 1e-4);
  // And the LN fold is consistent: gain[j] = 1/s[j].
  for (std::size_t j = 0; j < in; ++j) EXPECT_FLOAT_EQ(gain[j], 1.0f / s[j]);
}

TEST(CalibrationTest, CollectsAllTaps) {
  const model::ModelConfig cfg = model::tiny_config();
  const auto w = model::Gpt2Weights::random(cfg, 7);
  const auto toks = calib_tokens(cfg, 16, 77);
  const CalibrationStats stats = calibrate(w, toks);
  for (const char* tap :
       {"ln1_out", "qkv_out", "attn_out", "ln2_out", "gelu_out"}) {
    for (std::uint32_t l = 0; l < cfg.n_layer; ++l) {
      EXPECT_FALSE(stats.channel_absmax(tap, l).empty())
          << tap << " layer " << l;
      EXPECT_GT(stats.tensor_absmax(tap, l), 0.0f) << tap;
    }
  }
  EXPECT_GT(stats.samples(), 0u);
}

TEST(Int8ModelTest, BuildProducesSaneScales) {
  const model::ModelConfig cfg = model::tiny_config();
  const auto w = model::Gpt2Weights::random(cfg, 7);
  const auto wq = Gpt2Int8Weights::build_with_calibration(
      w, calib_tokens(cfg, 16, 77));
  ASSERT_EQ(wq.blocks.size(), cfg.n_layer);
  for (const Int8Block& b : wq.blocks) {
    EXPECT_GT(b.ln1_out_scale, 0.0f);
    EXPECT_GT(b.q_scale, 0.0f);
    EXPECT_GT(b.k_scale, 0.0f);
    EXPECT_GT(b.v_scale, 0.0f);
    EXPECT_GT(b.attn_out_scale, 0.0f);
    EXPECT_GT(b.gelu_scale, 0.0f);
    EXPECT_EQ(b.qkv.out_features(), 3u * cfg.d_model);
    EXPECT_EQ(b.fc1.out_features(), cfg.d_ff);
  }
  EXPECT_EQ(wq.weight_bytes_per_token(),
            cfg.weight_bytes_per_token(/*bytes_per_weight=*/1));
}

TEST(Int8ModelTest, HiddenStateTracksFp32Reference) {
  const model::ModelConfig cfg = model::tiny_config();
  const auto w = model::Gpt2Weights::random(cfg, 21);
  const auto wq = Gpt2Int8Weights::build_with_calibration(
      w, calib_tokens(cfg, 32, 99));

  model::Gpt2Reference ref(w);
  Gpt2Int8 q(wq);
  std::vector<float> h_ref, h_q;
  for (std::uint32_t t : {5u, 17u, 3u, 44u, 8u}) {
    h_ref = ref.forward_token(t);
    h_q = q.forward_token(t);
  }
  const ErrorStats err = compare(h_ref, h_q);
  EXPECT_LT(err.rel_l2, 0.15) << "W8A8 drifted too far from fp32";
  for (float v : h_q) EXPECT_TRUE(std::isfinite(v));
}

TEST(Int8ModelTest, GreedyTokensMostlyMatchFp32) {
  const model::ModelConfig cfg = model::cosim_config();
  const auto w = model::Gpt2Weights::random(cfg, 31);
  const auto wq = Gpt2Int8Weights::build_with_calibration(
      w, calib_tokens(cfg, 32, 131));
  model::Gpt2Reference ref(w);
  Gpt2Int8 q(wq);
  const std::vector<std::uint32_t> prompt{10, 20, 30, 40};
  const auto out_ref = ref.generate(prompt, 12);
  const auto out_q = q.generate(prompt, 12);
  ASSERT_EQ(out_ref.size(), out_q.size());
  int agree = 0;
  for (std::size_t i = 0; i < out_ref.size(); ++i) {
    agree += (out_ref[i] == out_q[i]);
  }
  // Random-weight logits are diffuse, so demand agreement on a majority
  // rather than every position.
  EXPECT_GE(agree, static_cast<int>(out_ref.size()) / 2)
      << "quantized generation diverged immediately";
}

TEST(Int8ModelTest, DeterministicAcrossRuns) {
  const model::ModelConfig cfg = model::tiny_config();
  const auto w = model::Gpt2Weights::random(cfg, 41);
  const auto toks = calib_tokens(cfg, 16, 7);
  const auto wq1 = Gpt2Int8Weights::build_with_calibration(w, toks);
  const auto wq2 = Gpt2Int8Weights::build_with_calibration(w, toks);
  Gpt2Int8 a(wq1), b(wq2);
  const std::vector<std::uint32_t> prompt{1, 2, 3};
  EXPECT_EQ(a.generate(prompt, 10), b.generate(prompt, 10));
}

// Property: quantization error of the int8 linear decreases (or at least
// does not explode) as SmoothQuant alpha moves difficulty away from
// activation outliers, on a synthetic outlier-heavy input.
class SmoothAlphaTest : public ::testing::TestWithParam<float> {};

TEST_P(SmoothAlphaTest, OutlierInputStaysBounded) {
  const float alpha = GetParam();
  util::Rng rng(6);
  const std::size_t out = 32, in = 64;
  model::Tensor w(out, in);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.normal(0.0, 0.1));
  }
  // Input with a violent outlier channel (the SmoothQuant motivation).
  std::vector<float> x(in);
  for (auto& v : x) v = static_cast<float>(rng.normal(0.0, 0.5));
  x[3] = 40.0f;

  std::vector<float> act_max(in);
  for (std::size_t j = 0; j < in; ++j) {
    act_max[j] = std::max(std::abs(x[j]), 0.5f);
  }
  model::Tensor w2 = w;
  std::vector<float> gain(in, 1.0f), bias_ln(in, 0.0f);
  const auto s = smoothing_factors(act_max, weight_column_absmax(w), alpha);
  apply_smoothing(w2, gain, bias_ln, s);

  std::vector<float> x_div(in);
  for (std::size_t j = 0; j < in; ++j) x_div[j] = x[j] / s[j];
  const float x_scale = scale_for_absmax(model::abs_max(x_div));
  const QuantizedLinear ql = QuantizedLinear::from_float(w2, {}, x_scale);
  std::vector<std::int8_t> x_q(in);
  quantize(x_div, x_scale, x_q);

  std::vector<float> y_ref(out), y_q(out);
  model::matvec(w, x, y_ref);
  ql.forward(x_q, y_q);
  const ErrorStats err = compare(y_ref, y_q);
  EXPECT_LT(err.rel_l2, 0.25) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(AlphaSweep, SmoothAlphaTest,
                         ::testing::Values(0.0f, 0.25f, 0.5f, 0.75f, 1.0f),
                         [](const ::testing::TestParamInfo<float>& info) {
                           return "alpha" +
                                  std::to_string(static_cast<int>(
                                      info.param * 100));
                         });

}  // namespace
}  // namespace looplynx::quant
