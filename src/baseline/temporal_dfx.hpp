// DFX-style temporal (instruction-set) architecture baseline (paper
// Table II; Hong et al., MICRO 2022).
//
// Temporal overlays execute one instruction at a time on shared processing
// engines: every operator serializes an instruction-issue phase, an HBM read
// of its operands (fp16 weights — DFX does not quantize), the compute phase,
// and an activation write-back to off-chip memory. Nothing overlaps — the
// exact inefficiency LoopLynx's Fig. 3(a) illustrates — which is why the
// measured latency sits far above the pure bandwidth bound.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "model/config.hpp"

namespace looplynx::baseline {

struct TemporalConfig {
  double frequency_hz = 200e6;       // DFX on U280
  double memory_bandwidth_bps = 460e9;  // Table I
  double memory_efficiency = 0.80;
  std::uint32_t bytes_per_weight = 2;   // Float16 (Table II)
  /// Effective parallel MAC lanes of the shared PE array.
  std::uint32_t pe_lanes = 2048;
  /// Instruction fetch/decode/issue + DMA descriptor setup per operator.
  std::uint64_t instruction_overhead_cycles = 1900;
  /// Vector-operator throughput (LN, softmax, residual, GELU).
  std::uint32_t vector_lanes = 16;
};

/// Per-token latency decomposition of the temporal baseline.
struct TemporalBreakdown {
  double memory_ms = 0;
  double compute_ms = 0;
  double overhead_ms = 0;
  double writeback_ms = 0;
  double total_ms() const {
    return memory_ms + compute_ms + overhead_ms + writeback_ms;
  }
};

class TemporalModel {
 public:
  TemporalModel(const model::ModelConfig& model, TemporalConfig config = {});

  /// Latency of one token at sequence position `seq` (ms). Temporal
  /// overlays process prefill tokens through the same serialized
  /// instruction stream, so prefill and decode cost the same.
  double token_ms(std::uint32_t seq) const;

  TemporalBreakdown breakdown(std::uint32_t seq) const;

  /// Average per-token latency over a request (ms).
  double avg_token_ms(std::uint32_t prefill_tokens,
                      std::uint32_t decode_tokens) const;

  const TemporalConfig& config() const { return config_; }

 private:
  model::ModelConfig model_;
  TemporalConfig config_;
};

}  // namespace looplynx::baseline
