// Deterministic pseudo-random generation for reproducible weights/workloads.
//
// Header-only: SplitMix64 (seeding) + xoshiro256** (bulk generation). We do
// not use std::mt19937 because its distributions are not guaranteed to be
// bit-identical across standard library implementations; reproducibility of
// generated model weights matters for the functional co-simulation tests.
#pragma once

#include <cmath>
#include <cstdint>

namespace looplynx::util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x100057f1a2bULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [0, 1).
  float next_float() {
    return static_cast<float>(next_u64() >> 40) * 0x1.0p-24f;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t next_below(std::uint64_t n) { return next_u64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (uses two uniforms per pair; caches one).
  double normal() {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u1 = next_double();
    double u2 = next_double();
    // Avoid log(0).
    if (u1 <= 1e-300) u1 = 1e-300;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_ = r * std::sin(theta);
    has_cached_ = true;
    return r * std::cos(theta);
  }

  /// Normal with mean/stddev.
  double normal(double mu, double sigma) { return mu + sigma * normal(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace looplynx::util
