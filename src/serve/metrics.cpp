#include "serve/metrics.hpp"

namespace looplynx::serve {

util::Table FleetMetrics::to_table(const std::string& title) const {
  util::Table t(title);
  t.set_header({"metric", "value"});
  t.add_row({"offered / completed / rejected",
             util::fmt_int(static_cast<long long>(offered)) + " / " +
                 util::fmt_int(static_cast<long long>(completed)) + " / " +
                 util::fmt_int(static_cast<long long>(rejected))});
  t.add_row({"makespan", util::fmt_fixed(duration_s, 2) + " s"});
  t.add_row({"throughput", util::fmt_fixed(throughput_req_s, 2) + " req/s, " +
                               util::fmt_fixed(decode_tok_s, 1) + " tok/s"});
  t.add_row({"goodput", util::fmt_fixed(goodput_req_s, 2) + " req/s"});
  t.add_row({"TTFT p50/p95/p99",
             util::fmt_fixed(ttft_ms.p50, 1) + " / " +
                 util::fmt_fixed(ttft_ms.p95, 1) + " / " +
                 util::fmt_fixed(ttft_ms.p99, 1) + " ms"});
  t.add_row({"token latency p50/p99",
             util::fmt_fixed(token_ms.p50, 2) + " / " +
                 util::fmt_fixed(token_ms.p99, 2) + " ms"});
  t.add_row({"queue wait p99",
             util::fmt_fixed(queue_wait_ms.p99, 1) + " ms (peak depth " +
                 util::fmt_int(static_cast<long long>(peak_queue_depth)) +
                 ")"});
  t.add_row({"token gap p50/p99",
             util::fmt_fixed(inter_token_gap_ms.p50, 2) + " / " +
                 util::fmt_fixed(inter_token_gap_ms.p99, 2) + " ms"});
  t.add_row({"iterations / mean batch",
             util::fmt_int(static_cast<long long>(iterations)) + " / " +
                 util::fmt_fixed(mean_batch_size, 2)});
  t.add_row({"prefill chunks / chunked prompts",
             util::fmt_int(static_cast<long long>(prefill_chunk_steps)) +
                 " / " +
                 util::fmt_int(static_cast<long long>(chunked_prompts))});
  t.add_row({"decode stall",
             util::fmt_fixed(decode_stall_ms, 1) + " ms over " +
                 util::fmt_int(static_cast<long long>(
                     decode_stall_iterations)) +
                 " iteration(s)"});
  t.add_row({"peak in flight",
             util::fmt_int(static_cast<long long>(peak_in_flight))});
  t.add_row({"pipeline busy", util::fmt_percent(busy_fraction, 1)});
  t.add_row({"KV peak occupancy",
             util::fmt_percent(kv_peak_occupancy, 1) + " (" +
                 util::fmt_int(static_cast<long long>(kv_stall_events)) +
                 " stalls)"});
  // Paging rows only when the fleet actually ran paged/preemptive KV, so
  // default (preempt none, token-granular) reports stay byte-identical to
  // the pre-paging output.
  if (preempt != PreemptPolicy::kNone || kv_block_tokens > 1) {
    t.add_row({"KV paging",
               util::fmt_int(kv_block_tokens) + " tok/block, peak " +
                   util::fmt_int(kv_peak_used_blocks) + "/" +
                   util::fmt_int(kv_capacity_blocks) + " blocks, frag peak " +
                   util::fmt_int(static_cast<long long>(kv_peak_frag_tokens)) +
                   " tok"});
    t.add_row({"preempt (" + std::string(preempt_policy_name(preempt)) + ")",
               util::fmt_int(static_cast<long long>(preemptions)) +
                   " eviction(s), " +
                   util::fmt_int(static_cast<long long>(recompute_tokens)) +
                   " tok recomputed, " + util::fmt_fixed(recompute_ms, 1) +
                   " ms"});
  }
  // Cache rows only when the run actually constructed a prefix cache, for
  // the same byte-stability reason as the paging rows above.
  if (prefix_cache) {
    t.add_row({"prefix cache",
               util::fmt_percent(cache_hit_rate, 1) + " hit rate, " +
                   util::fmt_int(static_cast<long long>(cache_hit_tokens)) +
                   " tok cached, " + util::fmt_fixed(saved_prefill_ms, 1) +
                   " ms prefill saved"});
    t.add_row({"cache blocks",
               util::fmt_int(static_cast<long long>(cache_insert_blocks)) +
                   " inserted, " +
                   util::fmt_int(static_cast<long long>(cache_evict_blocks)) +
                   " evicted, " +
                   util::fmt_int(static_cast<long long>(cache_cow_events)) +
                   " CoW, " +
                   util::fmt_int(static_cast<long long>(cache_dedup_blocks)) +
                   " dedup"});
    if (kv_swap) {
      t.add_row({"KV swap",
                 util::fmt_int(static_cast<long long>(cache_swap_out_blocks)) +
                     " out / " +
                     util::fmt_int(
                         static_cast<long long>(cache_swap_in_blocks)) +
                     " in, " + util::fmt_fixed(cache_swap_ms, 1) + " ms DMA"});
    }
  }
  if (kv_over_release_events > 0) {
    // Loud only when broken: a clamped over-release is an accounting bug.
    t.add_row({"KV over-releases (BUG)",
               util::fmt_int(static_cast<long long>(kv_over_release_events))});
  }
  return t;
}

}  // namespace looplynx::serve
