// FP32 reference implementation of GPT-2 auto-regressive inference.
//
// This is the golden model: single device, KV-cached, token-by-token (both
// prefill and decode push one token at a time, exactly like the LoopLynx
// host loop in paper Fig. 2(b)). The quantized model and the functional
// accelerator are validated against its outputs.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "model/config.hpp"
#include "model/kv_cache.hpp"
#include "model/tensor.hpp"
#include "model/weights.hpp"

namespace looplynx::model {

class Gpt2Reference {
 public:
  explicit Gpt2Reference(const Gpt2Weights& weights);

  const ModelConfig& config() const { return weights_->config; }

  /// Runs one token through the model, updating the KV cache; returns the
  /// final hidden state (pre-logits) of that token.
  std::vector<float> forward_token(std::uint32_t token_id);

  /// Computes logits for a hidden state via the tied embedding.
  std::vector<float> logits(std::span<const float> hidden) const;

  /// Greedy argmax over logits.
  std::uint32_t argmax_token(std::span<const float> hidden) const;

  /// End-to-end generation: consumes `prompt`, then generates `num_tokens`
  /// greedily. Returns all generated token ids.
  std::vector<std::uint32_t> generate(std::span<const std::uint32_t> prompt,
                                      std::uint32_t num_tokens);

  std::uint32_t position() const { return cache_.seq_len(); }
  void reset() { cache_.reset(); }

  /// Activation-tap observer for quantization calibration. Called with a tap
  /// name ("ln1_out", "qkv_out", "attn_out", "ln2_out", "gelu_out"), the
  /// layer index and the activation vector at that point.
  using TapObserver = std::function<void(
      const char* tap, std::uint32_t layer, std::span<const float>)>;
  void set_observer(TapObserver observer) { observer_ = std::move(observer); }

 private:
  void attention(std::uint32_t layer, std::span<const float> qkv,
                 std::span<float> out);

  void observe(const char* tap, std::uint32_t layer,
               std::span<const float> x) const {
    if (observer_) observer_(tap, layer, x);
  }

  const Gpt2Weights* weights_;
  KvCache cache_;
  TapObserver observer_;
};

}  // namespace looplynx::model
