// KV-pressure preemption policy for the continuous-batching scheduler.
// Lives in its own small header so metric-only consumers (FleetMetrics)
// do not pull in the scheduler/request/coroutine stack.
#pragma once

#include <cstdint>
#include <string>

namespace looplynx::serve {

/// What the scheduler does when a selected step needs a KV block and the
/// paged pool (KvBlockManager) has none free.
enum class PreemptPolicy : std::uint8_t {
  /// Never preempt. Admission reserves a request's whole lifetime KV
  /// footprint up front, so a running request can never hit an empty pool
  /// mid-flight — the pre-paging reservation discipline, and the default
  /// for byte-identical sweeps.
  kNone,
  /// Admit on the prompt's blocks only and grow decode blocks on demand.
  /// When a decode's grow finds the pool dry, the youngest block-holding
  /// request *strictly younger* than it (higher id — admission is FIFO,
  /// so also later-admitted) is preempted: its blocks are freed and its
  /// emitted decode tokens fold back into the prefill target, so chunked
  /// prefill re-runs [0, prompt + decoded) and rebuilds the KV
  /// (recompute, not swap). Eviction pressure only flows old -> young and
  /// re-prefills wait for free blocks instead of evicting, so the oldest
  /// request always drains to completion — livelock-free by construction
  /// (see ensure_kv_blocks in serving_sim.cpp).
  kRecomputeYoungest,
  /// Same admission discipline and eviction *eligibility* as
  /// kRecomputeYoungest (only strictly-younger decode-phase block holders
  /// can be victims — the property the livelock-freedom argument rests
  /// on), but the victim is chosen cost-aware: the candidate whose KV is
  /// cheapest to rebuild (StepCostModel::recompute_cycles over its live
  /// KV length), tie-broken youngest-first so ties reproduce the legacy
  /// choice. Minimizes the recompute bill each eviction signs instead of
  /// minimizing lost *age*.
  kRecomputeCostAware,
};

/// CLI-facing preemption names ("none" | "recompute" | "cost-aware"),
/// shared by the bench and example surfaces. Throws std::invalid_argument
/// on an unknown name.
PreemptPolicy parse_preempt_policy(const std::string& name);
const char* preempt_policy_name(PreemptPolicy policy);

}  // namespace looplynx::serve
