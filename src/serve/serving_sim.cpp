#include "serve/serving_sim.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "serve/kv_slot.hpp"
#include "serve/queue.hpp"
#include "serve/request.hpp"
#include "sim/task.hpp"

namespace looplynx::serve {

namespace {

/// Everything one fleet run owns. Lives on ServingSim::run's stack; all
/// coroutines hold references into it and complete before it is destroyed
/// (Engine is the first member, so it is destroyed last).
struct Fleet {
  Fleet(const ServingConfig& cfg_, const core::StepCostModel& costs_)
      : cfg(cfg_),
        costs(costs_),
        queue(cfg_.scheduler.queue_capacity),
        kv(cfg_.arch, cfg_.model, cfg_.kv_budget_bytes_per_node),
        sched(cfg_.scheduler),
        traffic(cfg_.traffic, cfg_.arch.frequency_hz),
        work(engine) {}

  const ServingConfig& cfg;
  const core::StepCostModel& costs;
  sim::Engine engine;
  RequestQueue queue;
  KvSlotManager kv;
  Scheduler sched;
  TrafficGen traffic;
  sim::Signal work;  // arrivals and completions nudge the scheduler

  std::vector<std::unique_ptr<Request>> requests;
  std::vector<Request*> runnable;  // admitted, awaiting an iteration turn

  // ---- Progress counters ----
  std::uint32_t injected = 0;   // requests created so far
  std::uint32_t active = 0;     // admitted and not yet finished
  std::uint32_t peak_active = 0;
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t good = 0;       // completed within both SLOs
  std::uint64_t decode_tokens = 0;
  std::uint64_t total_tokens = 0;
  sim::Cycles busy_cycles = 0;  // summed iteration spans
  std::uint64_t prefill_chunk_steps = 0;
  std::uint64_t chunked_prompts = 0;
  std::uint64_t decode_stall_iterations = 0;
  sim::Cycles decode_stall_cycles = 0;

  // ---- Latency samples (ms, one per completed request) ----
  std::vector<double> ttft_ms, token_ms, e2e_ms, queue_wait_ms;
  // Gaps between consecutive host-visible tokens, pooled fleet-wide.
  std::vector<double> gap_ms;

  bool arrivals_done() const { return injected >= cfg.traffic.num_requests; }

  double ms(sim::Cycles c) const { return cfg.arch.cycles_to_ms(c); }

  Request& make_request(workload::Scenario shape) {
    if (shape.total() > cfg.model.max_seq_len) {
      throw std::invalid_argument("traffic shape " + shape.name +
                                  " exceeds the model context window");
    }
    requests.push_back(
        std::make_unique<Request>(engine, injected++, std::move(shape)));
    return *requests.back();
  }

  void record_completion(Request& r) {
    r.state = RequestState::kFinished;
    r.completed = engine.now();
    kv.release(r.kv_tokens);
    --active;
    ++completed;
    decode_tokens += r.decoded;
    total_tokens += r.decoded;
    prefill_chunk_steps += r.prefill_chunks;
    if (r.prefill_chunks > 1) ++chunked_prompts;
    const double ttft = ms(r.first_token - r.arrival);
    const double token =
        r.decoded > 0 ? ms(r.completed - r.first_token) /
                            static_cast<double>(r.decoded)
                      : 0.0;
    ttft_ms.push_back(ttft);
    token_ms.push_back(token);
    e2e_ms.push_back(ms(r.completed - r.arrival));
    queue_wait_ms.push_back(ms(r.admitted - r.arrival));
    if (ttft <= cfg.slo.ttft_ms && token <= cfg.slo.token_ms) ++good;
  }
};

/// Root process of one request. Parks on its grant signal; every grant is
/// one scheduler iteration turn, executed at the request's pipeline slot
/// within the iteration, with the iteration's CountdownLatch as batch
/// barrier.
sim::Task request_proc(Fleet& f, Request& r) {
  r.arrival = f.engine.now();
  if (!f.queue.push(&r)) {
    r.state = RequestState::kRejected;
    ++f.rejected;
    r.done.set();
    co_return;
  }
  f.work.set();
  while (true) {
    co_await r.grant.wait();
    r.grant.reset();
    if (r.state == RequestState::kRejected) {
      // Popped by the scheduler but impossible to admit (footprint larger
      // than the whole KV budget).
      ++f.rejected;
      r.done.set();
      co_return;
    }
    // Wait for this request's turn through the time-shared pipeline, then
    // occupy it for the step.
    co_await f.engine.delay(r.step_offset + r.step_cycles);
    if (r.step_tokens > 0) {
      // Prefill chunk: advance the cursor. A partial chunk leaves the
      // request in the prefill class; the final chunk emits token #1.
      r.prompt_done += r.step_tokens;
      ++r.prefill_chunks;
      f.total_tokens += r.step_tokens;
    } else {
      ++r.decoded;
    }
    // The token reaches the host only at batch egress + PCIe sync.
    co_await f.engine.delay(r.post_step_cycles);
    if (r.prefilled()) {
      const sim::Cycles now = f.engine.now();
      if (r.decoded == 0) r.first_token = now;
      if (r.emitted_token) {
        const sim::Cycles gap = now - r.last_token;
        r.max_token_gap = std::max(r.max_token_gap, gap);
        f.gap_ms.push_back(f.ms(gap));
      }
      r.emitted_token = true;
      r.last_token = now;
    }
    const bool finished = r.finished();
    r.latch->count_down();  // batch barrier: everyone reaches egress together
    if (finished) break;
  }
  f.record_completion(r);
  f.work.set();  // freed KV slots may unblock the queue head
  r.done.set();
}

/// Open-loop injector: replays the pre-generated arrival schedule.
sim::Task arrivals_proc(Fleet& f) {
  const std::vector<Arrival> schedule = f.traffic.open_loop_schedule();
  for (const Arrival& a : schedule) {
    if (a.at > f.engine.now()) co_await f.engine.delay(a.at - f.engine.now());
    Request& r = f.make_request(a.shape);
    f.engine.spawn(request_proc(f, r));
  }
}

/// Closed-loop client: submit, await completion, think, repeat. The global
/// request budget is shared across clients.
sim::Task client_proc(Fleet& f) {
  while (!f.arrivals_done()) {
    Request& r = f.make_request(f.traffic.next_shape());
    f.engine.spawn(request_proc(f, r));
    co_await r.done.wait();
    if (f.arrivals_done()) break;
    co_await f.engine.delay(
        f.traffic.exponential_cycles(f.cfg.traffic.think_time_s));
  }
}

/// Admits queued requests in FIFO order while the KV manager and the
/// in-flight budget have room. A head request that can never fit is
/// rejected so it cannot wedge the queue.
void admit_from_queue(Fleet& f) {
  while (!f.queue.empty() && f.active < f.cfg.scheduler.max_in_flight) {
    Request* r = f.queue.front();
    if (!f.kv.can_ever_fit(r->shape.total())) {
      f.queue.pop();
      r->state = RequestState::kRejected;
      r->grant.set();  // resumes the root process, which records the drop
      continue;
    }
    if (!f.kv.try_reserve(r->shape.total())) break;  // KV backpressure
    f.queue.pop();
    r->kv_tokens = r->shape.total();
    r->admitted = f.engine.now();
    r->state = RequestState::kRunning;
    ++f.active;
    f.peak_active = std::max(f.peak_active, f.active);
    f.runnable.push_back(r);
  }
}

/// The continuous-batching loop: admit, select a batch, let the members
/// stream through the pipeline back to back, pay host sync once, repeat.
sim::Task scheduler_proc(Fleet& f) {
  while (true) {
    admit_from_queue(f);
    std::vector<ScheduledStep> batch = f.sched.select(f.runnable);
    if (batch.empty()) {
      if (f.arrivals_done() && f.queue.empty() && f.runnable.empty()) break;
      co_await f.work.wait();
      f.work.reset();
      continue;
    }

    IterationRecord rec;
    rec.start = f.engine.now();
    sim::CountdownLatch latch(f.engine, batch.size());

    // Decode members share one weight-stream pass (each streamed block is
    // applied to every member's vector), so they occupy the pipeline as a
    // group; prefill chunks run their prompt tokens back to back, each
    // chunk resuming at its request's cursor against the KV already
    // cached. The priority class also goes first through the pipeline
    // within the iteration.
    std::vector<ScheduledStep> prefills;
    std::vector<Request*> decodes;
    std::vector<std::uint32_t> decode_positions;
    for (const ScheduledStep& s : batch) {
      if (s.is_prefill()) {
        prefills.push_back(s);
        rec.prompt_tokens += s.prompt_tokens;
      } else {
        decodes.push_back(s.request);
        decode_positions.push_back(
            std::min(s.request->kv_len(), f.costs.max_positions() - 1));
      }
    }
    const sim::Cycles decode_group =
        f.costs.decode_batch_cycles(decode_positions);

    sim::Cycles offset = f.cfg.scheduler.iteration_overhead_cycles;
    sim::Cycles prefill_span = 0;
    const bool decodes_first =
        f.cfg.scheduler.policy != BatchPolicy::kPrefillPriority;
    auto place_decodes = [&] {
      for (Request* r : decodes) {
        r->step_offset = offset;
        r->step_cycles = decode_group;
        r->step_tokens = 0;
      }
      if (!decodes.empty()) offset += decode_group;
    };
    auto place_prefills = [&] {
      for (const ScheduledStep& s : prefills) {
        Request* r = s.request;
        r->step_offset = offset;
        r->step_cycles =
            f.costs.prefill_chunk_cycles(r->prompt_done, s.prompt_tokens);
        r->step_tokens = s.prompt_tokens;
        offset += r->step_cycles;
        prefill_span += r->step_cycles;
      }
    };
    if (decodes_first) {
      place_decodes();
      place_prefills();
    } else {
      place_prefills();
      place_decodes();
    }

    rec.prefills = static_cast<std::uint32_t>(prefills.size());
    rec.decodes = static_cast<std::uint32_t>(decodes.size());
    // Prompt work in an iteration delays every co-scheduled decode's token
    // by its full span (tokens are host-visible only at batch egress,
    // regardless of pipeline order) — the head-of-line blocking chunking
    // bounds to one chunk.
    if (!decodes.empty() && rec.prompt_tokens > 0) {
      ++f.decode_stall_iterations;
      f.decode_stall_cycles += prefill_span;
    }
    // Tokens become host-visible at batch egress + one PCIe sync; members
    // wait out the tail of the batch so the latch fires at that instant.
    const sim::Cycles egress = offset + f.costs.host_sync_cycles();
    for (const ScheduledStep& s : batch) {
      Request* r = s.request;
      r->post_step_cycles = egress - (r->step_offset + r->step_cycles);
      r->latch = &latch;
      r->grant.set();
    }
    co_await latch.wait();
    rec.span = f.engine.now() - rec.start;
    f.busy_cycles += rec.span;
    f.sched.record(rec);

    // Unfinished members rejoin the runnable pool in batch order, keeping
    // the FIFO discipline deterministic.
    for (const ScheduledStep& s : batch) {
      if (s.request->state == RequestState::kRunning &&
          !s.request->finished()) {
        f.runnable.push_back(s.request);
      }
    }
  }
}

}  // namespace

ServingSim::ServingSim(const ServingConfig& config)
    : ServingSim(config,
                 core::StepCostModel(config.arch, config.model,
                                     config.cost_probe_stride)) {}

ServingSim::ServingSim(const ServingConfig& config, core::StepCostModel costs)
    : config_(config), costs_(std::move(costs)) {
  if (config_.scheduler.max_batch == 0) {
    throw std::invalid_argument("scheduler max_batch must be >= 1");
  }
  if (config_.scheduler.max_in_flight == 0) {
    throw std::invalid_argument("scheduler max_in_flight must be >= 1");
  }
  if (!config_.traffic.explicit_arrivals.empty()) {
    config_.traffic.num_requests = static_cast<std::uint32_t>(
        config_.traffic.explicit_arrivals.size());
  }
}

FleetMetrics ServingSim::run() const {
  Fleet fleet(config_, costs_);
  fleet.requests.reserve(config_.traffic.num_requests);

  fleet.engine.spawn(scheduler_proc(fleet));
  if (config_.traffic.process == ArrivalProcess::kClosedLoop) {
    const std::uint32_t clients =
        std::max<std::uint32_t>(1, config_.traffic.clients);
    for (std::uint32_t c = 0; c < clients; ++c) {
      fleet.engine.spawn(client_proc(fleet));
    }
  } else {
    fleet.engine.spawn(arrivals_proc(fleet));
  }
  fleet.engine.run();

  FleetMetrics m;
  m.offered = fleet.injected;
  m.completed = fleet.completed;
  m.rejected = fleet.rejected;
  m.decode_tokens = fleet.decode_tokens;
  m.total_tokens = fleet.total_tokens;
  m.slo = config_.slo;
  const double duration_s =
      static_cast<double>(fleet.engine.now()) / config_.arch.frequency_hz;
  m.duration_s = duration_s;
  if (duration_s > 0) {
    m.throughput_req_s = static_cast<double>(m.completed) / duration_s;
    m.throughput_tok_s = static_cast<double>(m.total_tokens) / duration_s;
    m.decode_tok_s = static_cast<double>(m.decode_tokens) / duration_s;
    m.goodput_req_s = static_cast<double>(fleet.good) / duration_s;
    m.busy_fraction = static_cast<double>(fleet.busy_cycles) /
                      static_cast<double>(fleet.engine.now());
  }
  m.ttft_ms = util::percentile_summary(std::move(fleet.ttft_ms));
  m.token_ms = util::percentile_summary(std::move(fleet.token_ms));
  m.e2e_ms = util::percentile_summary(std::move(fleet.e2e_ms));
  m.queue_wait_ms = util::percentile_summary(std::move(fleet.queue_wait_ms));
  m.inter_token_gap_ms = util::percentile_summary(std::move(fleet.gap_ms));
  m.iterations = fleet.sched.iterations().size();
  m.mean_batch_size = fleet.sched.mean_batch_size();
  m.prefill_chunk_steps = fleet.prefill_chunk_steps;
  m.chunked_prompts = fleet.chunked_prompts;
  m.decode_stall_iterations = fleet.decode_stall_iterations;
  m.decode_stall_ms = config_.arch.cycles_to_ms(fleet.decode_stall_cycles);
  m.peak_in_flight = fleet.peak_active;
  m.peak_queue_depth = fleet.queue.peak_depth();
  m.kv_peak_occupancy = fleet.kv.peak_occupancy();
  m.kv_stall_events = fleet.kv.stall_events();
  m.kv_over_release_events = fleet.kv.over_release_events();
  if (config_.keep_request_records) {
    m.requests.reserve(fleet.requests.size());
    for (const auto& r : fleet.requests) {
      RequestRecord rec;
      rec.id = r->id;
      rec.prefill_tokens = r->shape.prefill;
      rec.decode_tokens = r->decoded;
      rec.prefill_chunks = r->prefill_chunks;
      rec.rejected = r->state == RequestState::kRejected;
      if (!rec.rejected) {
        rec.queue_wait_ms = fleet.ms(r->admitted - r->arrival);
        rec.ttft_ms = fleet.ms(r->first_token - r->arrival);
        rec.e2e_ms = fleet.ms(r->completed - r->arrival);
        rec.max_token_gap_ms = fleet.ms(r->max_token_gap);
      }
      m.requests.push_back(rec);
    }
  }
  return m;
}

}  // namespace looplynx::serve
