// Tiny command-line option parser for example binaries and bench harnesses.
//
// Accepts "--key=value", space-separated "--key value", and bare "--flag"
// forms. The space form makes a flag greedy: a "--key" immediately followed
// by a token that does not start with "--" takes that token as its value,
// so a positional argument cannot directly follow a bare flag (none of the
// repo's binaries use positionals — the greedy rule trades that corner for
// the form operators actually type). Other non-option arguments are
// collected in order.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace looplynx::util {

class Cli {
 public:
  Cli(int argc, const char* const* argv);

  /// True if --name was given (with or without a value).
  bool has(const std::string& name) const;

  /// Value of --name, or std::nullopt.
  std::optional<std::string> get(const std::string& name) const;

  std::string get_or(const std::string& name, std::string fallback) const;
  long long get_int_or(const std::string& name, long long fallback) const;
  double get_double_or(const std::string& name, double fallback) const;
  bool get_bool_or(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> options_;
  std::vector<std::string> positional_;
};

}  // namespace looplynx::util
