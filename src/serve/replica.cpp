#include "serve/replica.hpp"

#include <algorithm>
#include <stdexcept>

#include "serve/observe.hpp"

// Arena release protocol. A Request occupies a recycled SlotMap slot, so
// every retirement path must erase exactly once, and only after nobody
// holds a pointer that will be dereferenced again:
//  - Reject paths (queue-full at arrival; pop-reject): the request's own
//    root process releases the slot right after done.set() — signals
//    *schedule* waiters through the engine queue (never resume them
//    synchronously), so destroying the request there is safe, and no list
//    or batch ever held it.
//  - Finished batch members: released by scheduler_proc in the post-latch
//    requeue walk, NOT by request_proc. The scheduler still holds stale
//    Request* in its batch vector when a member finishes, and an arrival
//    landing on the same cycle could recycle the slot before the scheduler
//    resumes — so the scheduler, the last holder, erases.

namespace looplynx::serve::detail {

Request& Replica::make_request(workload::Scenario shape) {
  if (shape.total() > cfg.model.max_seq_len) {
    throw std::invalid_argument("traffic shape " + shape.name +
                                " exceeds the model context window");
  }
  auto [slot, r] = pool.emplace(engine, shared.injected++, std::move(shape));
  r.self = slot;
  r.owner = this;
  r.home = this;
  r.live_at_route = shared.live_replicas;
  ++routed;
  if (shared.observer != nullptr) {
    shared.observer->record(LifecycleEvent::kRoute, engine.now(), r.id, id,
                            shared.live_replicas);
  }
  return r;
}

void Replica::retire(const Request& r) {
  FinishedRequest fr;
  fr.id = r.id;
  fr.prefill_tokens = r.shape.prefill;
  fr.decoded = r.decoded;
  fr.prefill_chunks = r.prefill_chunks;
  fr.preempt_count = r.preempt_count;
  fr.cached_prefix = r.cached_prefix;
  fr.live_at_route = r.live_at_route;
  fr.rejected = r.state == RequestState::kRejected;
  fr.migrated = r.migrated;
  fr.stolen = r.stolen;
  fr.arrival = r.arrival;
  fr.admitted = r.admitted;
  fr.first_token = r.first_token;
  fr.completed = r.completed;
  fr.max_token_gap = r.max_token_gap;
  finished.push_back(fr);
}

void Replica::record_completion(Request& r) {
  r.state = RequestState::kFinished;
  r.completed = engine.now();
  // Cache references go back first (the blocks stay cached-idle for later
  // requests); only the private list returns blocks to the pool.
  if (cache) cache->release(r.cache);
  kv.release_all(r.kv);
  age.unlink(&r);
  --active;
  --shared.active;
  ++completed;
  decode_tokens += r.decoded;
  total_tokens += r.decoded;
  prefill_chunk_steps += r.prefill_chunks;
  if (r.prefill_chunks > 1) ++chunked_prompts;
  const double ttft = ms(r.first_token - r.arrival);
  const double token =
      r.decoded > 0 ? ms(r.completed - r.first_token) /
                          static_cast<double>(r.decoded)
                    : 0.0;
  ttft_cycles.push_back(r.first_token - r.arrival);
  token_ms.push_back(token);
  e2e_cycles.push_back(r.completed - r.arrival);
  queue_wait_cycles.push_back(r.admitted - r.arrival);
  if (ttft <= cfg.slo.ttft_ms && token <= cfg.slo.token_ms) ++good;
  if (shared.observer != nullptr) {
    shared.observer->record(LifecycleEvent::kFinish, engine.now(), r.id, id,
                            r.decoded, r.preempt_count);
  }
  retire(r);
}

void enqueue_request_event(void* replica, void* request) {
  // Mirrors the scheduler-driven prefix of request_proc below, minus the
  // observer branches (scheduler_drives implies no observer) and the
  // coroutine frame.
  Replica& f = *static_cast<Replica*>(replica);
  Request& r = *static_cast<Request*>(request);
  r.arrival = f.engine.now();
  if (!f.queue.push(&r)) {
    r.state = RequestState::kRejected;
    ++f.rejected;
    f.retire(r);
    r.done.set();
    f.pool.erase(r.self);  // never entered a list; nobody else holds it
    return;
  }
  f.work.set();
}

sim::Task request_proc(Replica& f, Request& r) {
  Observer* const obs = f.shared.observer;
  r.arrival = f.engine.now();
  if (obs != nullptr) {
    obs->record(LifecycleEvent::kArrive, r.arrival, r.id, f.id,
                r.shape.prefill, r.shape.decode);
  }
  if (!f.queue.push(&r)) {
    r.state = RequestState::kRejected;
    ++f.rejected;
    if (obs != nullptr) {
      obs->record(LifecycleEvent::kReject, f.engine.now(), r.id, f.id, 0);
    }
    f.retire(r);
    r.done.set();
    f.pool.erase(r.self);  // never entered a list; nobody else holds it
    co_return;
  }
  f.work.set();
  if (f.shared.scheduler_drives) {
    // Scheduler-driven stepping: the scheduler advances this request
    // through every iteration itself (same bookkeeping, same order, same
    // timestamps — see FleetShared::scheduler_drives), so the root process
    // is done the moment the request is enqueued. The scheduler also owns
    // the retirement paths: pop-rejects and completions both record, set
    // `done` and recycle the slot from scheduler_proc.
    co_return;
  }
  while (true) {
    co_await r.grant.wait();
    r.grant.reset();
    // A hand-off (KV migration, work steal) re-homes the request between
    // grants, so every grant's bookkeeping reads the replica serving it
    // NOW. Symmetric fleets never re-home: h is f for the request's whole
    // life and this block is byte-for-byte the legacy body.
    Replica& h = *r.home;
    if (r.state == RequestState::kRejected) {
      // Popped by the scheduler but impossible to admit (footprint larger
      // than the whole KV budget).
      ++h.rejected;
      if (obs != nullptr) {
        obs->record(LifecycleEvent::kReject, h.engine.now(), r.id, h.id, 1);
      }
      h.retire(r);
      r.done.set();
      r.owner->pool.erase(r.self);  // popped off the queue; no list holds it
      co_return;
    }
    // Wait for this request's turn through the time-shared pipeline, then
    // occupy it for the step.
    co_await h.engine.delay(r.step_offset + r.step_cycles);
    if (r.step_tokens > 0) {
      // Prefill chunk: advance the cursor. A partial chunk leaves the
      // request in the prefill class; the final chunk emits token #1.
      if (obs != nullptr && r.recovering && r.prompt_done == 0) {
        obs->record(LifecycleEvent::kRecomputeStart, h.engine.now(), r.id,
                    h.id, r.prefill_target());
      }
      r.prompt_done += r.step_tokens;
      ++r.prefill_chunks;
      h.total_tokens += r.step_tokens;
      if (h.cache) {
        // Publish every newly completed full prompt block: ownership moves
        // from the private list to the cache (no pool effect), so later
        // requests with the same prefix admit straight onto it. Recovery
        // re-prefills publish too — the dedup path re-shares the blocks
        // the preemption walked away from.
        h.cache->commit(r.shape, r.id, r.prompt_done, r.shape.prefill, r.kv,
                        r.cache);
      }
      if (obs != nullptr) {
        obs->record(r.prefill_chunks == 1 ? LifecycleEvent::kFirstChunk
                                          : LifecycleEvent::kChunk,
                    h.engine.now(), r.id, h.id, r.step_tokens, r.prompt_done);
      }
      if (r.recovering && r.prefilled()) {
        // Post-preemption recompute done: the dropped KV is rebuilt and
        // admission of new competitors may resume.
        r.recovering = false;
        --h.recovering;
        if (obs != nullptr) {
          obs->record(LifecycleEvent::kRecomputeEnd, h.engine.now(), r.id,
                      h.id, r.prompt_done);
        }
      }
    } else {
      ++r.decoded;
    }
    // The token reaches the host only at batch egress + PCIe sync.
    co_await h.engine.delay(r.post_step_cycles);
    // A decode step always emits a token. A final prefill chunk emits
    // token #1 — unless this was a post-preemption re-prefill of tokens
    // the host has already seen (emitted_token), which only rebuilds KV.
    if (r.step_tokens == 0 || (r.prefilled() && !r.emitted_token)) {
      const sim::Cycles now = h.engine.now();
      if (obs != nullptr) {
        obs->record(r.decoded == 0 ? LifecycleEvent::kFirstToken
                                   : LifecycleEvent::kDecode,
                    now, r.id, h.id, r.decoded);
      }
      if (r.decoded == 0) {
        r.first_token = now;
        if (h.shared.ttft_window != nullptr) {
          // Autoscaler SLO signal, fed at emission (not completion) so the
          // control loop sees the tail as it forms. Pure bookkeeping — no
          // engine events, so attaching a window cannot change timing.
          h.shared.ttft_window->push(h.ms(now), h.ms(now - r.arrival));
        }
      }
      if (r.emitted_token) {
        const sim::Cycles gap = now - r.last_token;
        r.max_token_gap = std::max(r.max_token_gap, gap);
        h.gap_cycles.push_back(gap);
      }
      r.emitted_token = true;
      r.last_token = now;
    }
    const bool finished = r.finished();
    r.latch->count_down();  // batch barrier: everyone reaches egress together
    if (finished) break;
  }
  Replica& h = *r.home;  // where the request actually finished
  h.record_completion(r);
  h.work.set();  // freed KV slots may unblock the queue head
  r.done.set();
}

namespace {

/// Coverage of `tokens` absolute KV positions expressed against the
/// request's *private* block list: the cache-owned prefix covers positions
/// [0, cache.owned_tokens), so the private list only needs what lies
/// beyond it. With the cache off (or a clean miss) owned_tokens is 0 and
/// this is the identity — every legacy call site goes through here
/// unchanged.
std::uint32_t private_tokens(const Request& r, std::uint32_t tokens) {
  return tokens > r.cache.owned_tokens ? tokens - r.cache.owned_tokens : 0;
}

/// try_grow with cache pressure relief: when the pool cannot supply the
/// missing blocks, cached-idle blocks are reclaimed first (cost-aware,
/// swap tier permitting), then the one grow attempt runs — a single stall
/// count either way, so kv_stall_events keeps its meaning with the cache
/// on. Byte-identical to a bare try_grow when no cache exists.
bool cache_aware_grow(Replica& f, KvBlockList& list, std::uint32_t tokens) {
  if (f.cache) {
    const std::uint32_t want = f.kv.blocks_for(tokens);
    const std::uint32_t missing = want > list.blocks ? want - list.blocks : 0;
    if (missing > f.kv.free_blocks()) {
      f.cache->reclaim(missing - f.kv.free_blocks());
    }
  }
  return f.kv.try_grow(list, tokens);
}

/// Admits queued requests in FIFO order while the KV manager and the
/// in-flight budget have room. A head request that can never fit is
/// rejected so it cannot wedge the queue. Under PreemptPolicy::kNone the
/// whole lifetime footprint (prefill + decode) is reserved up front — no
/// mid-flight eviction can ever be needed; under the recompute policies
/// only the prompt's blocks gate admission and decode blocks grow on
/// demand. With the prefix cache on, the prompt's hash chain is looked up
/// first and the private reservation shrinks by the cache-owned prefix —
/// a hit turns those tokens' prefill into reference counts.
void admit_from_queue(Replica& f) {
  while (!f.queue.empty() && f.active < f.cfg.scheduler.max_in_flight) {
    Request* r = f.queue.front();
    if (!f.kv.can_ever_fit(r->shape.total())) {
      f.queue.pop();
      r->state = RequestState::kRejected;
      if (f.shared.scheduler_drives) {
        // The root process already returned; the drop is recorded here and
        // the slot recycled directly (popped off the queue, no list holds
        // it, and `done` has no waiters under open-loop traffic).
        ++f.rejected;
        if (f.shared.observer != nullptr) {
          f.shared.observer->record(LifecycleEvent::kReject, f.engine.now(),
                                    r->id, f.id, 1);
        }
        f.retire(*r);
        r->done.set();
        f.pool.erase(r->self);
      } else {
        r->grant.set();  // resumes the root process, which records the drop
      }
      continue;
    }
    const std::uint32_t admit_tokens =
        f.paged_admission() ? r->shape.prefill : r->shape.total();
    if (r->migrated) {
      // Migrated-in decode phase: the KV landed whole, so admission must
      // cover everything already cached (prompt + any pre-migration decode
      // tokens), and the prefix-cache lookup is skipped — the prompt is
      // fully prefilled and an acquire would reset its cursor. The ingest
      // DMA was already deposited in the kv-migrate ledger at delivery.
      const std::uint32_t need =
          f.paged_admission() ? r->kv_len() : r->shape.total();
      if (!cache_aware_grow(f, r->kv, need)) {
        break;  // KV backpressure: retry when a completion frees blocks
      }
    } else if (f.cache) {
      const PrefixHit hit = f.cache->acquire(
          r->shape, r->id, r->shape.prefill, r->prefill_target(), r->cache);
      if (!cache_aware_grow(f, r->kv, private_tokens(*r, admit_tokens))) {
        // KV backpressure: hand the references back — a queued request
        // holds no cache state, so the hit blocks stay reclaimable while
        // it waits.
        f.cache->release(r->cache);
        break;
      }
      ++f.cache_lookups;
      f.cache_lookup_tokens += r->shape.prefill;
      r->cached_prefix = hit.cached_tokens;
      // The prefill cursor starts past the cached prefix: those positions'
      // KV already exists, so chunked prefill only runs the private tail.
      r->prompt_done = hit.cached_tokens;
      if (hit.cached_tokens > 0) {
        ++f.cache_hit_requests;
        f.cache_hit_tokens += hit.cached_tokens;
        f.cache_saved_prefill_cycles +=
            f.costs.prefill_cycles(hit.cached_tokens);
      }
      if (f.shared.observer != nullptr) {
        f.shared.observer->record(hit.cached_tokens > 0
                                      ? LifecycleEvent::kCacheHit
                                      : LifecycleEvent::kCacheMiss,
                                  f.engine.now(), r->id, f.id,
                                  hit.cached_tokens, hit.chain_blocks);
      }
    } else if (!f.kv.try_grow(r->kv, admit_tokens)) {
      break;  // KV backpressure
    }
    f.queue.pop();
    // A migrated request was admitted once already (queue-wait is the time
    // before its FIRST admission); everything else stamps now.
    if (!r->migrated) r->admitted = f.engine.now();
    r->state = RequestState::kRunning;
    ++f.active;
    ++f.shared.active;
    f.peak_active = std::max(f.peak_active, f.active);
    f.shared.peak_active = std::max(f.shared.peak_active, f.shared.active);
    if (f.shared.observer != nullptr) {
      f.shared.observer->record(LifecycleEvent::kAdmit, r->admitted, r->id,
                                f.id, f.active);
    }
    f.ready.push_back(r);
    if (r->migrated || r->stolen) {
      // Hand-off arrivals can land out of id order; the preemption age
      // scans rely on the list staying id-sorted, so insert in place.
      Request* pos = f.age.tail;
      while (pos != nullptr && pos->id > r->id) {
        pos = pos->link_prev[kAgeChannel];
      }
      f.age.insert_after(pos, r);
    } else {
      // FIFO admission over monotone ids keeps the age list id-sorted.
      f.age.push_back(r);
    }
  }
}

/// Evicts `v`'s KV (recompute-style): every block goes back to the pool
/// and the decode tokens it had produced fold into the prefill target, so
/// chunked prefill re-runs [0, prompt + decoded) when `v` is next
/// scheduled. Tokens the host already saw are not re-emitted.
void preempt_victim(Replica& f, Request& v) {
  const std::uint32_t dropped = v.kv_len();
  // The victim forfeits its cache references along with its private
  // blocks: the shared blocks stay cached-idle (a later request — or the
  // victim's own recompute, via the commit dedup path — re-shares them),
  // but the re-prefill itself runs privately over the whole [0, dropped)
  // span, which is exactly what `dropped` prices.
  if (f.cache) f.cache->release(v.cache);
  f.kv.release_all(v.kv);
  ++f.preemptions;
  ++v.preempt_count;
  f.recompute_tokens += dropped;
  f.recompute_cycles += f.costs.recompute_cycles(dropped);
  v.recompute_decoded = v.decoded;
  v.prompt_done = 0;
  if (!v.recovering) {
    v.recovering = true;
    ++f.recovering;
  }
  if (f.shared.observer != nullptr) {
    f.shared.observer->record(LifecycleEvent::kPreempt, f.engine.now(), v.id,
                              f.id, dropped, v.preempt_count);
  }
  // A victim waiting on the ready queue flipped class in place (its prompt
  // cursor reset, so a prefilled decode or mid-chunk prompt became a fresh
  // prompt); re-file it at its stamp position so the class lists keep
  // mirroring the legacy single ready list, where it simply kept its spot.
  // Victims on a deferred list or inside the batch (ready_class == none)
  // are classified when they are next pushed.
  if (v.ready_class != kReadyNone) f.ready.refile(&v);
}

/// KV tokens a step must have covered before it runs: a decode appends one
/// token at kv_len, a prefill chunk its token count at the cursor.
std::uint32_t step_need(const ScheduledStep& s) {
  return s.is_prefill() ? s.request->prompt_done + s.prompt_tokens
                        : s.request->kv_len() + 1;
}

/// Victim preference among *eligible* candidates. Eligibility (a block
/// holder strictly younger than the starved request) is the caller's check
/// and identical under both recompute policies — the livelock-freedom
/// argument rests on it; only the choice differs. kRecomputeYoungest takes
/// the youngest (highest id); kRecomputeCostAware takes the candidate
/// whose live KV is cheapest to rebuild (StepCostModel::recompute_cycles),
/// tie-broken youngest so equal-cost ties reproduce the legacy choice.
bool better_victim(const Replica& f, const Request& c, const Request& best) {
  if (f.cfg.scheduler.preempt == PreemptPolicy::kRecomputeCostAware) {
    const sim::Cycles cc = f.costs.recompute_cycles(c.kv_len());
    const sim::Cycles bc = f.costs.recompute_cycles(best.kv_len());
    if (cc != bc) return cc < bc;
  }
  return c.id > best.id;
}

/// Preferred victim among eligible block holders: strictly younger than
/// `than_id`, not yet secured this iteration, and actually holding blocks.
/// One walk of the id-sorted age list covers every legacy pool (runnable,
/// deferred, unsecured later batch members) — all admitted unfinished
/// requests are on it, and `secured` excludes exactly the members the
/// legacy scans skipped. Both policies pick a unique victim (max id, or
/// strict-min rebuild cost with max-id ties), so scan structure cannot
/// change the choice.
Request* find_victim(const Replica& f, std::uint32_t than_id) {
  if (f.cfg.scheduler.preempt == PreemptPolicy::kRecomputeCostAware) {
    Request* best = nullptr;
    for (Request* c = f.age.head; c != nullptr;
         c = c->link_next[kAgeChannel]) {
      if (c->id > than_id && c->kv.blocks > 0 && !c->secured &&
          (best == nullptr || better_victim(f, *c, *best))) {
        best = c;
      }
    }
    return best;
  }
  // kRecomputeYoungest: the list is ascending in id, so the first eligible
  // holder walking back from the tail is the youngest — usually first try.
  for (Request* c = f.age.tail; c != nullptr; c = c->link_prev[kAgeChannel]) {
    if (c->id <= than_id) break;  // everything before it is older still
    if (c->kv.blocks > 0 && !c->secured) return c;
  }
  return nullptr;
}

/// Grants every batch member the KV blocks its step writes into. Only
/// *decode* growth may preempt: a dry decode evicts the youngest
/// block-holding victim that is *strictly younger* (higher id) than
/// itself, taken from the runnable pool, the already-deferred requests
/// (they keep their blocks while sitting out), or not-yet-secured later
/// batch members — never from members already secured this iteration.
/// Prefill steps (which under paged admission only ever need growth when
/// rebuilding a preempted request's KV) wait for blocks freed by
/// completions instead: if re-prefills could evict, every eviction would
/// mint a new re-prefill that evicts in turn, and the fleet would grind
/// prefill-on-prefill forever without decoding (a livelock the
/// prefill-priority policy hits immediately). With eviction age-ordered
/// and decode-only, the oldest unfinished request can never lose work and
/// always drains to completion — recompute counts stay bounded by
/// construction. Members that cannot be satisfied land in `deferred` (NOT
/// back in runnable) so the caller can re-select schedulable work this
/// iteration without re-picking them.
///
/// Removals (a deferred member, a batch-member victim) null their entry and
/// one order-preserving compaction pass runs at the end — the legacy
/// mid-loop erase(begin() + i) was quadratic in the batch size. Position
/// bookkeeping rides on the requests themselves: `batch_pos` locates a
/// victim's entry, `secured` marks members whose blocks are already pinned
/// for this iteration (never victims). Both are scrubbed before returning.
void ensure_kv_blocks(Replica& f, std::vector<ScheduledStep>& batch,
                      RequestList<kReadyChannel>& deferred) {
  for (std::size_t i = 0; i < batch.size(); ++i) {
    batch[i].request->batch_pos = static_cast<std::int32_t>(i);
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].request == nullptr) continue;  // victimized earlier member
    Request* r = batch[i].request;
    const bool is_prefill = batch[i].is_prefill();
    const std::uint32_t need = step_need(batch[i]);
    bool ok = true;
    while (!cache_aware_grow(f, r->kv, private_tokens(*r, need))) {
      Request* victim = is_prefill ? nullptr : find_victim(f, r->id);
      if (victim == nullptr) {
        // Every block is pinned by older or already-secured requests;
        // they keep progressing and release at completion, so r just
        // sits this iteration out.
        deferred.push_back(r);
        batch[i].request = nullptr;
        r->batch_pos = -1;
        ok = false;
        break;
      }
      preempt_victim(f, *victim);
      if (victim->batch_pos >= 0) {
        batch[victim->batch_pos].request = nullptr;
        victim->batch_pos = -1;
        f.ready.push_back(victim);
      }
    }
    if (ok) r->secured = true;
  }
  std::size_t keep = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].request == nullptr) continue;
    batch[i].request->secured = false;
    batch[i].request->batch_pos = -1;
    batch[keep++] = batch[i];
  }
  batch.resize(keep);
}

// ---- Disaggregation (FleetConfig::roles; every call site is gated on
// f.disagg != nullptr, so symmetric fleets never reach this code) ----

/// Least-loaded *live* decode replica that could ever hold `r`'s full
/// footprint; ties keep the lowest index (scan order). Null when no decode
/// replica can take it — the prefill replica then just decodes it locally.
/// A replica the per-tier autoscaler has deactivated is skipped even
/// mid-drain: new hand-offs would keep a draining replica occupied
/// forever (hand-offs already in flight still land and are served).
Replica* pick_migration_target(Replica& f, const Request& r) {
  Replica* best = nullptr;
  for (Replica* d : f.disagg->replicas) {
    if (d->role != ReplicaRole::kDecode || !d->live) continue;
    if (!d->kv.can_ever_fit(r.shape.total())) continue;
    if (best == nullptr || d->outstanding() < best->outstanding()) best = d;
  }
  return best;
}

/// Detaches `r` from the prefill replica and launches the KV transfer. The
/// request leaves this replica entirely: cache references return (release
/// resets the binding, so the decode side starts clean), the private
/// blocks go back to the pool — the fabric ships a byte-for-byte copy, not
/// block identities — and the admitted-set counters drop until the decode
/// replica re-admits it at delivery. `r`'s root process is parked on its
/// grant signal throughout; the next grant comes from `dst`'s scheduler.
void begin_migration(Replica& f, Request& r, Replica& dst) {
  const std::uint32_t blocks = f.kv.blocks_for(r.kv_len());
  if (f.cache) f.cache->release(r.cache);
  f.kv.release_all(r.kv);
  f.age.unlink(&r);
  r.state = RequestState::kQueued;
  r.migrated = true;
  --f.active;
  --f.shared.active;
  ++f.migrations_out;
  f.migrated_blocks_out += blocks;
  f.engine.spawn(migrate_proc(f, dst, r, blocks));
}

/// One steal attempt by an idle replica about to park: takes the youngest
/// queued request from the deepest backlog among prefill/general peers
/// (threshold two — never empties a victim that could start the work as
/// soon as its current batch drains; ties keep the lowest index). At most
/// one steal in flight per thief, and a request is stolen at most once.
/// A replica the autoscaler has deactivated never initiates a steal —
/// pulling fresh work into a draining replica would stall its drain.
void maybe_steal(Replica& f) {
  if (!f.live || f.steal_inflight || !f.queue.empty()) return;
  Replica* victim = nullptr;
  for (Replica* v : f.disagg->replicas) {
    if (v == &f || v->role == ReplicaRole::kDecode) continue;
    if (v->queue.depth() < 2) continue;
    Request* b = v->queue.back();
    if (b->state != RequestState::kQueued || b->migrated || b->stolen) {
      continue;
    }
    if (!f.kv.can_ever_fit(b->shape.total())) continue;
    if (victim == nullptr || v->queue.depth() > victim->queue.depth()) {
      victim = v;
    }
  }
  if (victim == nullptr) return;
  Request* r = victim->queue.back();
  victim->queue.pop_back();
  r->stolen = true;
  ++victim->steals_out;
  f.steal_inflight = true;
  f.engine.spawn(steal_proc(f, *victim, *r));
}

}  // namespace

sim::Task migrate_proc(Replica& src, Replica& dst, Request& r,
                       std::uint32_t blocks) {
  net::RingFabric& fabric = *src.disagg->fabric;
  const std::size_t n = fabric.num_nodes();
  const std::size_t hops = (dst.id + n - src.id) % n;
  const std::uint64_t block_bytes = src.kv.block_bytes();
  for (std::uint32_t b = 0; b < blocks; ++b) {
    net::Datapack pack;
    pack.bytes = block_bytes;
    pack.src_node = src.id;
    pack.block = b;
    pack.last = b + 1 == blocks;
    co_await fabric.transfer(src.id, dst.id, pack);
  }
  src.migrate_wire_bytes += block_bytes * blocks * hops;
  // Delivery: re-home, deposit the landing DMA in dst's kv-migrate ledger
  // (drained into the breakdown at its next iteration), and enqueue past
  // the capacity bound — the request cleared admission control once and
  // must not be re-exposed to load shedding.
  r.home = &dst;
  ++src.handoffs_out;
  ++dst.handoffs_in;
  ++dst.migrations_in;
  dst.pending_migrate_cycles += dst.costs.kv_ingest_cycles(block_bytes *
                                                           blocks);
  if (dst.shared.observer != nullptr) {
    dst.shared.observer->record(LifecycleEvent::kKvMigrate, dst.engine.now(),
                                r.id, dst.id, blocks, src.id);
  }
  dst.queue.force_push(&r);
  dst.work.set();
}

sim::Task steal_proc(Replica& thief, Replica& victim, Request& r) {
  net::RingFabric& fabric = *thief.disagg->fabric;
  const std::size_t n = fabric.num_nodes();
  const std::size_t hops = (thief.id + n - victim.id) % n;
  net::Datapack pack;
  pack.bytes = static_cast<std::uint64_t>(r.shape.prefill) * 4;  // token ids
  pack.src_node = victim.id;
  pack.last = true;
  co_await fabric.transfer(victim.id, thief.id, pack);
  thief.steal_wire_bytes += pack.bytes * hops;
  r.home = &thief;
  ++victim.handoffs_out;
  ++thief.handoffs_in;
  ++thief.steals_in;
  thief.steal_inflight = false;
  if (thief.shared.observer != nullptr) {
    thief.shared.observer->record(LifecycleEvent::kSteal, thief.engine.now(),
                                  r.id, thief.id, victim.id);
  }
  thief.queue.force_push(&r);
  thief.work.set();
}

sim::Task scheduler_proc(Replica& f) {
  Observer* const obs = f.shared.observer;
  while (true) {
    // While a preempted request is still rebuilding its KV, hold new
    // admissions: a newcomer would compete for the very blocks the victim
    // needs back, and (being youngest) immediately become the next victim
    // — admission-pause is what keeps recompute counts bounded.
    if (f.recovering == 0) admit_from_queue(f);
    f.sched.select(f.ready, f.batch);
    if (f.paged_admission()) {
      // Deferred members sit out this iteration; re-select until the
      // batch has schedulable work or the ready pool is exhausted (each
      // pass moves at least one request to deferred, so this terminates).
      // A block-starved re-prefill must not shadow runnable decodes — the
      // decodes are what free the blocks it is waiting for.
      RequestList<kReadyChannel> deferred;
      ensure_kv_blocks(f, f.batch, deferred);
      while (f.batch.empty() && !f.ready.empty()) {
        f.sched.select(f.ready, f.batch);
        ensure_kv_blocks(f, f.batch, deferred);
      }
      // Deferred members rejoin at the back in deferral order (classified
      // fresh at push time — a deferred member may have been victimized
      // while sitting out), exactly the legacy splice-to-back.
      for (Request* r = deferred.head; r != nullptr;) {
        Request* next = r->link_next[kReadyChannel];
        r->link_prev[kReadyChannel] = nullptr;
        r->link_next[kReadyChannel] = nullptr;
        f.ready.push_back(r);
        r = next;
      }
      deferred.head = nullptr;
      deferred.tail = nullptr;
      if (f.batch.empty() && !f.ready.empty()) {
        // Everything runnable is block-starved prefill: every block is
        // parked on half-rebuilt prompts and no decode exists to evict or
        // finish. Grant the oldest waiter eviction rights regardless of
        // step kind or age — it drains to completion and unwedges the
        // fleet (this cannot cascade: it fires only when nothing else is
        // schedulable, and always advances the oldest request).
        // Every admitted unfinished request is runnable here, so the age
        // list's head IS the oldest runnable — no scan.
        Request* oldest = f.age.head;
        f.ready.unlink(oldest);
        ReadyQueue lone;
        lone.push_back(oldest);
        f.sched.select(lone, f.batch);
        const std::uint32_t need = step_need(f.batch.front());
        while (!cache_aware_grow(f, oldest->kv,
                                 private_tokens(*oldest, need))) {
          // Everyone else runnable is strictly younger than oldest, so
          // the age-ordered scan doubles as an "anyone but me" scan here.
          Request* victim = find_victim(f, oldest->id);
          // A missing victim would mean oldest is the sole block holder,
          // but then its grow would have succeeded (admission checked
          // can_ever_fit on the whole footprint).
          if (victim == nullptr) break;
          preempt_victim(f, *victim);
        }
      }
    }
    if (f.batch.empty()) {
      if (f.shared.arrivals_done() && f.queue.empty() && f.ready.empty() &&
          f.disagg == nullptr) {
        // Disaggregated replicas never take this exit: a hand-off can
        // still land as long as any peer holds work (a prompt finishing
        // later will pick this decode replica as its target). They park
        // below instead — when the whole fleet drains no event wakes them
        // again, the engine runs out of work, and the parked coroutines
        // are destroyed un-resumed with the run frame (their open wait
        // becomes drain in the observer).
        break;
      }
      if (f.disagg != nullptr) maybe_steal(f);
      if (obs != nullptr) {
        // Classified at sleep time: a non-empty queue means admitted work
        // is blocked on KV blocks (kv-stall), an empty one that there is
        // nothing to do yet (scheduler-idle). A wait still open at run end
        // is reclassified as drain by Observer::finalize().
        obs->begin_wait(f.id,
                        f.queue.empty() ? category::kSchedulerIdle
                                        : category::kKvStall,
                        f.engine.now());
      }
      co_await f.work.wait();
      f.work.reset();
      if (obs != nullptr) obs->end_wait(f.id, f.engine.now());
      continue;
    }

    IterationRecord rec;
    rec.start = f.engine.now();

    // Decode members share one weight-stream pass (each streamed block is
    // applied to every member's vector), so they occupy the pipeline as a
    // group; prefill chunks run their prompt tokens back to back, each
    // chunk resuming at its request's cursor against the KV already
    // cached. The priority class also goes first through the pipeline
    // within the iteration.
    f.prefills.clear();
    f.decodes.clear();
    f.decode_positions.clear();
    for (const ScheduledStep& s : f.batch) {
      if (s.is_prefill()) {
        f.prefills.push_back(s);
        rec.prompt_tokens += s.prompt_tokens;
      } else {
        f.decodes.push_back(s.request);
        f.decode_positions.push_back(
            std::min(s.request->kv_len(), f.costs.max_positions() - 1));
      }
    }
    const sim::Cycles decode_group =
        f.costs.decode_batch_cycles(f.decode_positions);

    sim::Cycles offset = f.cfg.scheduler.iteration_overhead_cycles;
    if (obs != nullptr && offset > 0) {
      // Host-side iteration overhead opens the span ledger; together with
      // the placements below and the egress sync tail, the iteration's
      // spans tile [rec.start, rec.start + egress] exactly.
      obs->add_span(f.id, category::kHostSync, rec.start, rec.start + offset);
    }
    if (f.cache) {
      // Swap transfers accrued since the last iteration (reclaim
      // swap-outs, admission swap-ins) occupy the pipeline before compute
      // — the DMA engine owns the HBM channels for the duration — and
      // land in their own `kv-swap` category, keeping the tiling identity
      // exact. Zero (and span-free) whenever the swap tier never fired.
      const sim::Cycles swap = f.cache->take_pending_swap_cycles();
      if (swap > 0) {
        if (obs != nullptr) {
          obs->add_span(f.id, category::kKvSwap, rec.start + offset,
                        rec.start + offset + swap);
        }
        offset += swap;
      }
    }
    if (f.disagg != nullptr && f.pending_migrate_cycles > 0) {
      // Migrated-KV ingest DMA deposited since the last iteration occupies
      // the pipeline before compute, exactly like the swap ledger above;
      // its own `kv-migrate` category keeps the tiling identity exact.
      const sim::Cycles mig = f.pending_migrate_cycles;
      f.pending_migrate_cycles = 0;
      f.migrate_ingest_cycles += mig;
      if (obs != nullptr) {
        obs->add_span(f.id, category::kKvMigrate, rec.start + offset,
                      rec.start + offset + mig);
      }
      offset += mig;
    }
    sim::Cycles prefill_span = 0;
    const bool decodes_first =
        f.cfg.scheduler.policy != BatchPolicy::kPrefillPriority;
    auto place_decodes = [&] {
      for (Request* r : f.decodes) {
        r->step_offset = offset;
        r->step_cycles = decode_group;
        r->step_tokens = 0;
      }
      if (!f.decodes.empty()) {
        if (obs != nullptr && decode_group > 0) {
          obs->add_span(f.id, category::kDecode, rec.start + offset,
                        rec.start + offset + decode_group);
        }
        offset += decode_group;
      }
    };
    auto place_prefills = [&] {
      if (f.cfg.scheduler.share_prefill_weights && f.prefills.size() > 1) {
        // Batched prefill weight sharing: the group's chunks advance in
        // lockstep wavefronts, sharing each weight-stream pass the way the
        // decode group does, instead of each chunk re-streaming the whole
        // weight set back to back.
        f.prefill_chunk_spans.clear();
        for (const ScheduledStep& s : f.prefills) {
          f.prefill_chunk_spans.emplace_back(s.request->prompt_done,
                                             s.prompt_tokens);
        }
        const sim::Cycles group =
            f.costs.prefill_group_cycles(f.prefill_chunk_spans);
        bool all_recompute = true;
        bool all_whole = true;
        for (const ScheduledStep& s : f.prefills) {
          Request* r = s.request;
          r->step_offset = offset;
          r->step_cycles = group;
          r->step_tokens = s.prompt_tokens;
          all_recompute &= r->recovering;
          all_whole &= r->prompt_done == 0 &&
                       s.prompt_tokens == r->prompt_remaining();
        }
        if (obs != nullptr && group > 0) {
          const char* cat = all_recompute ? category::kRecompute
                            : all_whole   ? category::kPrefill
                                          : category::kChunkedPrefill;
          obs->add_span(f.id, cat, rec.start + offset,
                        rec.start + offset + group);
        }
        offset += group;
        prefill_span += group;
        f.prefill_cycles_executed += group;
        return;
      }
      for (const ScheduledStep& s : f.prefills) {
        Request* r = s.request;
        r->step_offset = offset;
        r->step_cycles =
            f.costs.prefill_chunk_cycles(r->prompt_done, s.prompt_tokens);
        r->step_tokens = s.prompt_tokens;
        if (obs != nullptr && r->step_cycles > 0) {
          // Classified from the request's pre-execution state: a recovery
          // re-prefill is recompute; a chunk covering the whole prompt at
          // once is plain prefill; anything else is chunked prefill.
          const char* cat =
              r->recovering ? category::kRecompute
              : (r->prompt_done == 0 &&
                 s.prompt_tokens == r->prompt_remaining())
                  ? category::kPrefill
                  : category::kChunkedPrefill;
          obs->add_span(f.id, cat, rec.start + offset,
                        rec.start + offset + r->step_cycles);
        }
        offset += r->step_cycles;
        prefill_span += r->step_cycles;
        f.prefill_cycles_executed += r->step_cycles;
      }
    };
    if (decodes_first) {
      place_decodes();
      place_prefills();
    } else {
      place_prefills();
      place_decodes();
    }

    rec.prefills = static_cast<std::uint32_t>(f.prefills.size());
    rec.decodes = static_cast<std::uint32_t>(f.decodes.size());
    // Prompt work in an iteration delays every co-scheduled decode's token
    // by its full span (tokens are host-visible only at batch egress,
    // regardless of pipeline order) — the head-of-line blocking chunking
    // bounds to one chunk.
    if (!f.decodes.empty() && rec.prompt_tokens > 0) {
      ++f.decode_stall_iterations;
      f.decode_stall_cycles += prefill_span;
    }
    // Tokens become host-visible at batch egress + one PCIe sync; members
    // wait out the tail of the batch so the latch fires at that instant.
    const sim::Cycles egress = offset + f.costs.host_sync_cycles();
    if (obs != nullptr && egress > offset) {
      obs->add_span(f.id, category::kHostSync, rec.start + offset,
                    rec.start + egress);
    }
    if (f.shared.scheduler_drives) {
      // One engine event for the whole iteration: the per-member grant
      // wake and the two delays each member-step would pay collapse into a
      // single sleep to egress. The bookkeeping both halves perform is the
      // member-driven path's, verbatim and in the same order — batch order
      // here equals pipeline-slot time order there (prefill offsets are
      // cumulative, decode members share one slot and the engine breaks
      // ties FIFO), and the prefix cache's LRU runs on insertion ticks, so
      // committing at grant time instead of chunk-egress time is
      // indistinguishable.
      for (const ScheduledStep& s : f.batch) {
        Request* r = s.request;
        if (r->step_tokens > 0) {
          r->prompt_done += r->step_tokens;
          ++r->prefill_chunks;
          f.total_tokens += r->step_tokens;
          if (f.cache) {
            f.cache->commit(r->shape, r->id, r->prompt_done, r->shape.prefill,
                            r->kv, r->cache);
          }
          if (r->recovering && r->prefilled()) {
            r->recovering = false;
            --f.recovering;
          }
        } else {
          ++r->decoded;
        }
      }
      co_await f.engine.delay(egress);
      // Token emission at batch egress + PCIe sync, member by member in
      // batch order — exactly the order the member processes resumed in.
      const sim::Cycles now = f.engine.now();
      for (const ScheduledStep& s : f.batch) {
        Request* r = s.request;
        if (r->step_tokens == 0 || (r->prefilled() && !r->emitted_token)) {
          if (r->decoded == 0) r->first_token = now;
          if (r->emitted_token) {
            const sim::Cycles gap = now - r->last_token;
            r->max_token_gap = std::max(r->max_token_gap, gap);
            f.gap_cycles.push_back(gap);
          }
          r->emitted_token = true;
          r->last_token = now;
        }
        if (r->finished()) {
          f.record_completion(*r);
          f.work.set();  // freed KV slots may unblock the queue head
          r->done.set();
        }
      }
    } else {
      sim::CountdownLatch latch(f.engine, f.batch.size());
      for (const ScheduledStep& s : f.batch) {
        Request* r = s.request;
        r->post_step_cycles = egress - (r->step_offset + r->step_cycles);
        r->latch = &latch;
        r->grant.set();
      }
      co_await latch.wait();
    }
    rec.span = f.engine.now() - rec.start;
    f.busy_cycles += rec.span;
    f.sched.record(rec);

    // Unfinished members rejoin the ready pool in batch order, keeping
    // the FIFO discipline deterministic. Finished members already ran
    // record_completion (their root process does it synchronously after
    // the latch count-down), so the scheduler — the last pointer holder —
    // recycles their slots here.
    for (const ScheduledStep& s : f.batch) {
      Request* r = s.request;
      if (r->state == RequestState::kRunning && !r->finished()) {
        if (f.disagg != nullptr && f.role == ReplicaRole::kPrefill &&
            r->prefilled() && !r->migrated) {
          // The prompt's last chunk just ran (token #1 — the TTFT stamp —
          // already went out at this iteration's egress): ship the KV to a
          // decode replica instead of decoding here. No viable target
          // means the prompt decodes locally, gracefully.
          Replica* dst = pick_migration_target(f, *r);
          if (dst != nullptr) {
            begin_migration(f, *r, *dst);
            continue;
          }
        }
        f.ready.push_back(r);
      } else {
        // Retired members recycle through the arena that allocated them —
        // under disaggregation the request may have finished replicas away
        // from its slot's owner.
        r->owner->pool.erase(r->self);
      }
    }
  }
  // Anything after the loop's last activity is drain: finalize() extends
  // [exit, makespan] — non-empty whenever another replica (or a closed-loop
  // client's think time) outlives this one.
  if (obs != nullptr) obs->mark_exit(f.id, f.engine.now());
}

util::PercentileSummary cycle_summary_ms(std::vector<sim::Cycles> cycles,
                                         const core::ArchConfig& arch) {
  util::PercentileSummary s;
  if (cycles.empty()) return s;
  util::radix_sort(cycles);
  // cycles_to_ms multiplies by a positive constant — monotone, so the
  // converted values come out ascending-sorted and every accumulation
  // below sees exactly the sequence percentile_summary would have built:
  // the mean sums the converted samples in ascending order, and each
  // percentile interpolates between the two converted neighbors. No
  // intermediate double vector is materialized (for the inter-token gap
  // series that vector would be millions of elements).
  double sum = 0.0;
  for (sim::Cycles c : cycles) sum += arch.cycles_to_ms(c);
  s.count = cycles.size();
  s.mean = sum / static_cast<double>(cycles.size());
  const auto interp = [&](double p) {
    const double rank =
        (p / 100.0) * static_cast<double>(cycles.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, cycles.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return arch.cycles_to_ms(cycles[lo]) * (1.0 - frac) +
           arch.cycles_to_ms(cycles[hi]) * frac;
  };
  s.p50 = interp(50.0);
  s.p95 = interp(95.0);
  s.p99 = interp(99.0);
  return s;
}

FleetMetrics finalize_metrics(Replica& f) {
  if (f.shared.observer != nullptr) {
    f.shared.observer->set_kv_stats(f.id, f.kv.capacity_blocks(),
                                    f.kv.peak_used_blocks(),
                                    f.kv.block_tokens());
  }
  FleetMetrics m;
  m.offered = f.routed;
  m.completed = f.completed;
  m.rejected = f.rejected;
  m.decode_tokens = f.decode_tokens;
  m.total_tokens = f.total_tokens;
  m.slo = f.cfg.slo;
  const double duration_s =
      static_cast<double>(f.engine.now()) / f.cfg.arch.frequency_hz;
  m.duration_s = duration_s;
  if (duration_s > 0) {
    m.throughput_req_s = static_cast<double>(m.completed) / duration_s;
    m.throughput_tok_s = static_cast<double>(m.total_tokens) / duration_s;
    m.decode_tok_s = static_cast<double>(m.decode_tokens) / duration_s;
    m.goodput_req_s = static_cast<double>(f.good) / duration_s;
    m.busy_fraction = static_cast<double>(f.busy_cycles) /
                      static_cast<double>(f.engine.now());
  }
  m.slo_good = f.good;
  m.ttft_ms = cycle_summary_ms(std::move(f.ttft_cycles), f.cfg.arch);
  m.token_ms = util::percentile_summary(std::move(f.token_ms));
  m.e2e_ms = cycle_summary_ms(std::move(f.e2e_cycles), f.cfg.arch);
  m.queue_wait_ms =
      cycle_summary_ms(std::move(f.queue_wait_cycles), f.cfg.arch);
  m.inter_token_gap_ms = cycle_summary_ms(std::move(f.gap_cycles), f.cfg.arch);
  m.iterations = f.sched.iteration_count();
  m.mean_batch_size = f.sched.mean_batch_size();
  m.prefill_chunk_steps = f.prefill_chunk_steps;
  m.chunked_prompts = f.chunked_prompts;
  m.decode_stall_iterations = f.decode_stall_iterations;
  m.decode_stall_ms = f.cfg.arch.cycles_to_ms(f.decode_stall_cycles);
  m.peak_in_flight = f.peak_active;
  m.peak_queue_depth = f.queue.peak_depth();
  m.kv_peak_occupancy = f.kv.peak_occupancy();
  m.kv_stall_events = f.kv.stall_events();
  m.kv_over_release_events = f.kv.over_release_events();
  m.prefix_cache = f.cfg.prefix_cache;
  m.kv_swap = f.cfg.kv_swap;
  m.prefill_cycles = f.prefill_cycles_executed;
  if (f.cache) {
    m.cache_lookups = f.cache_lookups;
    m.cache_lookup_tokens = f.cache_lookup_tokens;
    m.cache_hit_requests = f.cache_hit_requests;
    m.cache_hit_tokens = f.cache_hit_tokens;
    if (f.cache_lookup_tokens > 0) {
      m.cache_hit_rate = static_cast<double>(f.cache_hit_tokens) /
                         static_cast<double>(f.cache_lookup_tokens);
    }
    m.saved_prefill_cycles = f.cache_saved_prefill_cycles;
    m.saved_prefill_ms = f.cfg.arch.cycles_to_ms(f.cache_saved_prefill_cycles);
    m.cache_insert_blocks = f.cache->insert_blocks();
    m.cache_evict_blocks = f.cache->evict_blocks();
    m.cache_cow_events = f.cache->cow_events();
    m.cache_dedup_blocks = f.cache->dedup_blocks();
    m.cache_swap_out_blocks = f.cache->swap_out_blocks();
    m.cache_swap_in_blocks = f.cache->swap_in_blocks();
    m.cache_swap_ms = f.cfg.arch.cycles_to_ms(f.cache->swap_cycles_total());
    m.cache_blocks_at_end = f.cache->resident_blocks();
    // Teardown BEFORE the leak gauge below: drain() returns every
    // cache-owned resident block to the pool (and throws if a request
    // leaked a reference), so kv_blocks_in_use_at_end keeps meaning
    // "private blocks someone forgot to release" — pinned at 0.
    f.cache->drain();
  }
  m.kv_blocks_in_use_at_end = f.kv.used_blocks();
  m.preempt = f.cfg.scheduler.preempt;
  m.kv_block_tokens = f.kv.block_tokens();
  m.kv_capacity_blocks = f.kv.capacity_blocks();
  m.kv_peak_used_blocks = f.kv.peak_used_blocks();
  m.kv_peak_frag_tokens = f.kv.peak_frag_tokens();
  m.preemptions = f.preemptions;
  m.recompute_tokens = f.recompute_tokens;
  m.recompute_ms = f.cfg.arch.cycles_to_ms(f.recompute_cycles);
  if (f.disagg != nullptr) {
    // Out-side counters only: the fleet sums per-replica metrics, so
    // counting both ends would double every migration/steal.
    m.kv_migrations = f.migrations_out;
    m.kv_migrated_blocks = f.migrated_blocks_out;
    m.kv_migrate_wire_bytes = f.migrate_wire_bytes;
    m.kv_migrate_ingest_ms = f.cfg.arch.cycles_to_ms(f.migrate_ingest_cycles);
    m.work_steals = f.steals_out;
    m.steal_wire_bytes = f.steal_wire_bytes;
    m.handoffs_in = f.handoffs_in;
    m.handoffs_out = f.handoffs_out;
  }
  if (f.cfg.keep_request_records) {
    // The retirement log is in completion order; records went out in
    // creation (== id) order before, so sort by id to match byte for byte.
    std::sort(f.finished.begin(), f.finished.end(),
              [](const FinishedRequest& a, const FinishedRequest& b) {
                return a.id < b.id;
              });
    m.requests.reserve(f.finished.size());
    for (const FinishedRequest& r : f.finished) {
      RequestRecord rec;
      rec.id = r.id;
      rec.replica = f.id;
      rec.prefill_tokens = r.prefill_tokens;
      rec.decode_tokens = r.decoded;
      rec.prefill_chunks = r.prefill_chunks;
      rec.preemptions = r.preempt_count;
      rec.cached_prefix_tokens = r.cached_prefix;
      rec.live_replicas = r.live_at_route;
      rec.rejected = r.rejected;
      rec.migrated = r.migrated;
      rec.stolen = r.stolen;
      if (!rec.rejected) {
        rec.queue_wait_ms = f.ms(r.admitted - r.arrival);
        rec.ttft_ms = f.ms(r.first_token - r.arrival);
        rec.e2e_ms = f.ms(r.completed - r.arrival);
        rec.max_token_gap_ms = f.ms(r.max_token_gap);
      }
      m.requests.push_back(rec);
    }
  }
  return m;
}

}  // namespace looplynx::serve::detail
