// GPT-2 model hyperparameters and presets.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace looplynx::model {

struct ModelConfig {
  std::string name = "gpt2";
  std::uint32_t n_layer = 24;
  std::uint32_t d_model = 1024;  // l_embed in the paper
  std::uint32_t n_head = 16;
  std::uint32_t d_ff = 4096;
  std::uint32_t vocab_size = 50257;
  std::uint32_t max_seq_len = 1024;

  std::uint32_t head_dim() const { return d_model / n_head; }

  /// Memberwise equality — fleet harnesses use it to share one probed
  /// StepCostModel across identically configured replicas.
  bool operator==(const ModelConfig&) const = default;

  /// Parameter count of the transformer stack (embeddings included),
  /// matching the usual "GPT-2 345M" accounting.
  std::uint64_t param_count() const;

  /// Bytes of weight traffic required to process one token through all
  /// linear layers at the given bytes-per-weight (1 for int8, 2 for fp16).
  std::uint64_t weight_bytes_per_token(std::uint32_t bytes_per_weight) const;

  /// Throws std::invalid_argument when dimensions are inconsistent.
  void validate() const;
};

/// GPT-2 medium, the paper's 345M evaluation model.
inline ModelConfig gpt2_medium() {
  return ModelConfig{.name = "gpt2-medium (345M)",
                     .n_layer = 24,
                     .d_model = 1024,
                     .n_head = 16,
                     .d_ff = 4096,
                     .vocab_size = 50257,
                     .max_seq_len = 1024};
}

/// GPT-2 small (124M) — used in scaling studies.
inline ModelConfig gpt2_small() {
  return ModelConfig{.name = "gpt2-small (124M)",
                     .n_layer = 12,
                     .d_model = 768,
                     .n_head = 12,
                     .d_ff = 3072,
                     .vocab_size = 50257,
                     .max_seq_len = 1024};
}

/// GPT-2 XL (1.5B) — used to explore multi-FPGA scaling headroom.
inline ModelConfig gpt2_xl() {
  return ModelConfig{.name = "gpt2-xl (1.5B)",
                     .n_layer = 48,
                     .d_model = 1600,
                     .n_head = 25,
                     .d_ff = 6400,
                     .vocab_size = 50257,
                     .max_seq_len = 1024};
}

/// Tiny config for functional tests: full architecture, toy dimensions.
inline ModelConfig tiny_config() {
  return ModelConfig{.name = "tiny",
                     .n_layer = 2,
                     .d_model = 32,
                     .n_head = 4,
                     .d_ff = 64,
                     .vocab_size = 101,
                     .max_seq_len = 64};
}

/// Small-but-nontrivial config for co-simulation tests.
inline ModelConfig cosim_config() {
  return ModelConfig{.name = "cosim",
                     .n_layer = 3,
                     .d_model = 64,
                     .n_head = 8,
                     .d_ff = 128,
                     .vocab_size = 257,
                     .max_seq_len = 96};
}

inline std::uint64_t ModelConfig::param_count() const {
  const std::uint64_t d = d_model;
  const std::uint64_t per_layer =
      // qkv + proj
      d * 3 * d + 3 * d + d * d + d +
      // mlp
      d * d_ff + d_ff + static_cast<std::uint64_t>(d_ff) * d + d +
      // two layernorms
      4 * d;
  return n_layer * per_layer +
         static_cast<std::uint64_t>(vocab_size) * d +  // wte
         static_cast<std::uint64_t>(max_seq_len) * d +  // wpe
         2 * d;  // final layernorm
}

inline std::uint64_t ModelConfig::weight_bytes_per_token(
    std::uint32_t bytes_per_weight) const {
  const std::uint64_t d = d_model;
  const std::uint64_t per_layer = d * 3 * d + d * d +
                                  2ULL * d * d_ff;  // qkv, proj, fc1, fc2
  return n_layer * per_layer * bytes_per_weight;
}

inline void ModelConfig::validate() const {
  if (d_model == 0 || n_head == 0 || n_layer == 0) {
    throw std::invalid_argument("model dimensions must be positive");
  }
  if (d_model % n_head != 0) {
    throw std::invalid_argument("d_model must be divisible by n_head");
  }
}

}  // namespace looplynx::model
