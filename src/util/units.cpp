#include "util/units.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace looplynx::util {

double cycles_to_ms(std::uint64_t cycles, double freq_hz) {
  return static_cast<double>(cycles) / freq_hz * 1e3;
}

double cycles_to_us(std::uint64_t cycles, double freq_hz) {
  return static_cast<double>(cycles) / freq_hz * 1e6;
}

std::uint64_t seconds_to_cycles(double seconds, double freq_hz) {
  return static_cast<std::uint64_t>(std::ceil(seconds * freq_hz));
}

namespace {

std::string fmt_scaled(double value, const char* const* units, int count,
                       double base) {
  int idx = 0;
  while (idx + 1 < count && value >= base) {
    value /= base;
    ++idx;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(value < 10 ? 2 : 1) << value << ' '
     << units[idx];
  return os.str();
}

}  // namespace

std::string fmt_bytes(std::uint64_t bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  return fmt_scaled(static_cast<double>(bytes), kUnits, 5, 1024.0);
}

std::string fmt_rate(double bytes_per_second) {
  static const char* kUnits[] = {"B/s", "KB/s", "MB/s", "GB/s", "TB/s"};
  return fmt_scaled(bytes_per_second, kUnits, 5, 1000.0);
}

std::string fmt_duration(double seconds) {
  std::ostringstream os;
  os << std::fixed;
  if (seconds >= 1.0) {
    os << std::setprecision(3) << seconds << " s";
  } else if (seconds >= 1e-3) {
    os << std::setprecision(3) << seconds * 1e3 << " ms";
  } else if (seconds >= 1e-6) {
    os << std::setprecision(3) << seconds * 1e6 << " us";
  } else {
    os << std::setprecision(1) << seconds * 1e9 << " ns";
  }
  return os.str();
}

}  // namespace looplynx::util
