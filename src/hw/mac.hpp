// MAC-array (accumulator-multiplier) timing model.
//
// The paper's MPU is "accumulator-multiplier based MAC hardware" organized
// as n_channel MP slices x n_group MAC units (n_group = 32 to match the
// 32x8-bit HBM datapack). One MacArray instance models one slice group: it
// retires `lanes` int8 MACs per cycle once its pipeline is primed.
#pragma once

#include <cstdint>
#include <string>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace looplynx::hw {

struct MacArrayConfig {
  /// Parallel MAC lanes (paper: n_group = 32 per MP slice).
  std::uint32_t lanes = 32;
  /// Pipeline depth: cycles from first operand to first accumulate.
  sim::Cycles pipeline_depth = 8;
  /// Extra cycles to drain/pack accumulated results into a datapack.
  sim::Cycles drain_cycles = 4;
};

class MacArray {
 public:
  MacArray(sim::Engine& engine, MacArrayConfig config, std::string name = "mac")
      : engine_(&engine), config_(config), name_(std::move(name)) {}

  /// Cycles to perform `macs` multiply-accumulates (throughput-bound with a
  /// fixed fill + drain overhead).
  sim::Cycles compute_cycles(std::uint64_t macs) const;

  /// Simulated execution of `macs` MAC operations.
  sim::Task compute(std::uint64_t macs);

  std::uint64_t total_macs() const noexcept { return total_macs_; }
  sim::Cycles busy_cycles() const noexcept { return busy_cycles_; }
  const MacArrayConfig& config() const noexcept { return config_; }
  const std::string& name() const noexcept { return name_; }

  /// MAC-lane utilization over [0, now].
  double utilization() const;

 private:
  sim::Engine* engine_;
  MacArrayConfig config_;
  std::string name_;
  std::uint64_t total_macs_ = 0;
  sim::Cycles busy_cycles_ = 0;
};

}  // namespace looplynx::hw
