// LoopLynx architecture configuration (paper Sections III-A..III-D).
//
// Structural parameters mirror the HLS design: n_channel MP slices of
// n_group MACs each, dedicated KV-cache HBM channels, a simplex ring, and
// three latency-optimization switches corresponding to the paper's Fig. 5
// ablation: Fused LN&Res, head-wise pipelining, and network-sync hiding.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/engine.hpp"

namespace looplynx::core {

struct ArchConfig {
  // ---- Topology ----
  std::uint32_t num_nodes = 2;      // accelerator nodes on the ring
  std::uint32_t nodes_per_fpga = 2;  // one node per SLR on an Alveo U50

  // ---- Clock & bandwidth (paper Section III-E) ----
  double frequency_hz = 285e6;
  double hbm_channel_bps = 8.49e9;  // per pseudo-channel peak
  double network_bps = 8.49e9;      // per ring link peak

  // ---- Fused MP kernel ----
  std::uint32_t n_channel = 8;   // MP slices == weight HBM channels per node
  std::uint32_t n_group = 32;    // MACs per slice (32x8-bit datapacks)
  std::uint32_t mp_block_rows = 128;  // rows per block matrix transaction
  double hbm_efficiency = 0.90;  // sustained fraction of peak in burst mode
  sim::Cycles dma_setup_cycles = 24;
  sim::Cycles mac_pipeline_depth = 8;
  sim::Cycles quant_fixed_cycles = 48;   // quant-unit per-block fill
  std::uint32_t quant_lanes = 16;        // values quantized per cycle

  // ---- Fused MHA kernel ----
  std::uint32_t kv_channels = 2;      // KV-cache HBM channels per node
  std::uint32_t score_lanes = 64;     // MAC lanes of the score unit
  std::uint32_t mix_lanes = 64;       // MAC lanes of the token-mixing unit
  sim::Cycles softmax_fixed_cycles = 64;
  std::uint32_t softmax_lanes = 1;    // exp/normalize throughput (values/cyc)

  // ---- Fused LN&Res kernel (critical-path operators) ----
  std::uint32_t cp_lanes_base = 1;    // serialized CP ops before the Fig.5(b) opt
  std::uint32_t cp_lanes_fused = 8;   // parallelism of the fused kernel
  sim::Cycles cp_fixed_cycles = 96;   // per vector-op fill/drain

  // ---- Ring / host ----
  sim::Cycles intra_fpga_hop_cycles = 16;    // SLR-to-SLR crossing
  sim::Cycles inter_fpga_hop_cycles = 192;   // Aurora-style FPGA-to-FPGA
  sim::Cycles scheduler_overhead_cycles = 448;  // kernel switch + shared-buffer turnaround
  sim::Cycles host_sync_cycles = 2850;  // PCIe output sync per token (~10us)

  // ---- Optimization switches (Fig. 5 ablation) ----
  bool fuse_ln_res = true;        // Fused LN&Res kernel
  bool headwise_pipeline = true;  // hide softmax behind head i+1
  bool hide_network_sync = true;  // overlap block sync with compute

  /// Memberwise equality — fleet harnesses use it to share one probed
  /// StepCostModel across identically configured replicas.
  bool operator==(const ArchConfig&) const = default;

  // ---- Derived quantities ----
  double hbm_bytes_per_cycle() const { return hbm_channel_bps / frequency_hz; }
  double net_bytes_per_cycle() const { return network_bps / frequency_hz; }
  std::uint32_t mpu_lanes() const { return n_channel * n_group; }
  std::uint32_t num_fpgas() const {
    return (num_nodes + nodes_per_fpga - 1) / nodes_per_fpga;
  }
  double cycles_to_ms(sim::Cycles c) const {
    return static_cast<double>(c) / frequency_hz * 1e3;
  }

  /// Hop latency of the link leaving `node`: crossing an FPGA boundary is
  /// much more expensive than an SLR crossing.
  sim::Cycles hop_cycles(std::uint32_t node) const {
    const std::uint32_t next = (node + 1) % num_nodes;
    const bool crosses_fpga =
        (node / nodes_per_fpga) != (next / nodes_per_fpga);
    return crosses_fpga ? inter_fpga_hop_cycles : intra_fpga_hop_cycles;
  }

  void validate() const {
    if (num_nodes == 0) throw std::invalid_argument("num_nodes must be >= 1");
    if (n_channel == 0 || n_group == 0) {
      throw std::invalid_argument("MP kernel must have channels and groups");
    }
    if (mp_block_rows == 0) {
      throw std::invalid_argument("mp_block_rows must be >= 1");
    }
  }

  /// Paper configurations: 1 node (one SLR), 2 nodes (one U50), 4 nodes
  /// (two U50s).
  static ArchConfig nodes(std::uint32_t n) {
    ArchConfig cfg;
    cfg.num_nodes = n;
    return cfg;
  }
  static ArchConfig one_node() { return nodes(1); }
  static ArchConfig two_node() { return nodes(2); }
  static ArchConfig four_node() { return nodes(4); }

  /// The pre-optimization configuration of Fig. 5(a).
  ArchConfig without_optimizations() const {
    ArchConfig cfg = *this;
    cfg.fuse_ln_res = false;
    cfg.headwise_pipeline = false;
    cfg.hide_network_sync = false;
    return cfg;
  }
};

}  // namespace looplynx::core
