#include "baseline/gpu_a100.hpp"

namespace looplynx::baseline {

A100Model::A100Model(const model::ModelConfig& model, A100Config config)
    : model_(model), config_(config) {
  // Transformer linears (int8) + tied lm-head matvec (int8) per step.
  weight_bytes_ =
      static_cast<double>(model_.weight_bytes_per_token(1)) +
      static_cast<double>(model_.vocab_size) * model_.d_model;
}

double A100Model::decode_token_seconds(std::uint32_t seq) const {
  const double launch = config_.step_overhead_seconds +
                        config_.launch_seconds_per_layer * model_.n_layer;
  const double bw =
      config_.memory_bandwidth_bps * config_.memory_efficiency;
  const double weight_time = weight_bytes_ / bw;
  // KV-cache reads: K and V, int8, all layers.
  const double kv_bytes = 2.0 * static_cast<double>(seq) * model_.d_model *
                          model_.n_layer;
  const double kv_time = kv_bytes / bw;
  return launch + weight_time + kv_time;
}

double A100Model::prefill_seconds(std::uint32_t prompt_len) const {
  if (prompt_len == 0) return 0.0;
  const double launch = config_.step_overhead_seconds +
                        config_.launch_seconds_per_layer * model_.n_layer;
  const double bw =
      config_.memory_bandwidth_bps * config_.memory_efficiency;
  // Weights stream once for the whole batched prompt.
  const double weight_time = weight_bytes_ / bw;
  // Batched compute: 2 ops per weight per token, int8 tensor cores.
  const double flops = 2.0 * weight_bytes_ * prompt_len;
  const double compute_time =
      flops / (config_.int8_tops * config_.prefill_utilization);
  // Attention compute grows quadratically but stays negligible at <=1K.
  return launch + weight_time + compute_time;
}

double A100Model::request_seconds(std::uint32_t prefill_tokens,
                                  std::uint32_t decode_tokens) const {
  double total = prefill_seconds(prefill_tokens);
  for (std::uint32_t i = 0; i < decode_tokens; ++i) {
    total += decode_token_seconds(prefill_tokens + i);
  }
  return total;
}

double A100Model::avg_token_ms(std::uint32_t prefill_tokens,
                               std::uint32_t decode_tokens) const {
  const double total = request_seconds(prefill_tokens, decode_tokens);
  return total * 1e3 /
         static_cast<double>(prefill_tokens + decode_tokens);
}

}  // namespace looplynx::baseline
