// Generational slot map: flat, index-addressed object arena with O(1)
// insert/erase/lookup and stable addresses.
//
// The serve hot path admits and retires hundreds of thousands of requests
// per run; heap-allocating each one (and letting coroutines hold pointers
// into a growable vector) is both slow and fragile. A SlotMap instead owns
// fixed-size chunks of in-place storage: every insert constructs the object
// in a recycled slot (or the next fresh one), every erase destroys it and
// pushes the slot onto a free list, and a per-slot generation counter makes
// stale handles detectable — `get()` on a handle whose slot was recycled
// returns nullptr instead of the new tenant.
//
// Guarantees:
//  - Address stability: an object's address never changes for its whole
//    lifetime. Chunks are never moved or freed while the map lives, so
//    references held across coroutine suspension points stay valid.
//  - Zero steady-state allocation: once the peak live count has been
//    reached, insert/erase cycles reuse slots and never touch the heap
//    (pinned by tests/test_slot_map.cpp's churn test under ASan).
//  - Determinism: the free list is LIFO and iteration (`for_each`) visits
//    live slots in ascending index order, so identical operation sequences
//    produce identical slot assignments and identical iteration orders.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace looplynx::util {

/// {index, generation} ticket for a SlotMap slot. The generation is bumped
/// on every erase, so a handle outliving its object dereferences to null
/// rather than to the slot's next tenant.
struct SlotHandle {
  static constexpr std::uint32_t kInvalidIndex = 0xffffffffu;

  std::uint32_t index = kInvalidIndex;
  std::uint32_t generation = 0;

  bool valid() const { return index != kInvalidIndex; }
  friend bool operator==(const SlotHandle&, const SlotHandle&) = default;
};

template <typename T, std::size_t ChunkSlots = 256>
class SlotMap {
  static_assert(ChunkSlots > 0);

 public:
  SlotMap() = default;
  SlotMap(const SlotMap&) = delete;
  SlotMap& operator=(const SlotMap&) = delete;
  ~SlotMap() { clear(); }

  /// Constructs a T in a recycled slot (LIFO) or the next fresh one.
  /// Amortized O(1); allocates only when a new chunk is needed.
  template <typename... Args>
  std::pair<SlotHandle, T&> emplace(Args&&... args) {
    std::uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
    } else {
      index = static_cast<std::uint32_t>(slots_);
      if (index / ChunkSlots >= chunks_.size()) {
        chunks_.push_back(std::make_unique<Chunk>());
      }
      ++slots_;
    }
    Slot& s = slot(index);
    assert(!s.occupied);
    T* obj = ::new (static_cast<void*>(s.storage)) T(std::forward<Args>(args)...);
    s.occupied = true;
    ++size_;
    return {SlotHandle{index, s.generation}, *obj};
  }

  /// Destroys the object and recycles its slot; stale handles are a no-op.
  bool erase(SlotHandle h) {
    Slot* s = resolve(h);
    if (s == nullptr) return false;
    std::launder(reinterpret_cast<T*>(s->storage))->~T();
    s->occupied = false;
    ++s->generation;  // invalidate every outstanding handle to this slot
    free_.push_back(h.index);
    --size_;
    return true;
  }

  T* get(SlotHandle h) {
    Slot* s = resolve(h);
    return s ? std::launder(reinterpret_cast<T*>(s->storage)) : nullptr;
  }
  const T* get(SlotHandle h) const {
    return const_cast<SlotMap*>(this)->get(h);
  }

  /// Visits every live object in ascending slot-index order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < slots_; ++i) {
      const Slot& s = const_cast<SlotMap*>(this)->slot(
          static_cast<std::uint32_t>(i));
      if (s.occupied) {
        fn(*std::launder(reinterpret_cast<const T*>(s.storage)));
      }
    }
  }

  /// Destroys every live object. Chunks (and their addresses) are released;
  /// outstanding handles become stale.
  void clear() {
    for (std::size_t i = 0; i < slots_; ++i) {
      Slot& s = slot(static_cast<std::uint32_t>(i));
      if (s.occupied) {
        std::launder(reinterpret_cast<T*>(s.storage))->~T();
        s.occupied = false;
        ++s.generation;
      }
    }
    chunks_.clear();
    free_.clear();
    slots_ = 0;
    size_ = 0;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Slots ever touched (live + recyclable); the arena's high-water mark.
  std::size_t capacity_slots() const { return slots_; }
  /// Backing chunks allocated so far — constant across steady-state churn.
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];
    std::uint32_t generation = 0;
    bool occupied = false;
  };
  struct Chunk {
    Slot slots[ChunkSlots];
  };

  Slot& slot(std::uint32_t index) {
    return chunks_[index / ChunkSlots]->slots[index % ChunkSlots];
  }

  Slot* resolve(SlotHandle h) {
    if (!h.valid() || h.index >= slots_) return nullptr;
    Slot& s = slot(h.index);
    if (!s.occupied || s.generation != h.generation) return nullptr;
    return &s;
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  std::vector<std::uint32_t> free_;  // LIFO recycle order (deterministic)
  std::size_t slots_ = 0;            // slots ever handed out
  std::size_t size_ = 0;             // live objects
};

}  // namespace looplynx::util
