// Tests for the ring network: functional all-gather correctness (any node
// count) and timed fabric behaviour.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "net/fabric.hpp"
#include "net/ring.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace looplynx::net {
namespace {

TEST(FunctionalRingTest, SingleNodeIsIdentity) {
  FunctionalRing<int> ring(1);
  const auto buffers = ring.all_gather({{1, 2, 3}});
  ASSERT_EQ(buffers.size(), 1u);
  EXPECT_EQ(buffers[0], (std::vector<int>{1, 2, 3}));
}

TEST(FunctionalRingTest, FourNodesReconstructFullVector) {
  FunctionalRing<int> ring(4);
  std::vector<std::vector<int>> chunks{{0, 1}, {10, 11}, {20, 21}, {30, 31}};
  RingStats stats;
  const auto buffers = ring.all_gather(chunks, &stats);
  const std::vector<int> expect{0, 1, 10, 11, 20, 21, 30, 31};
  for (const auto& b : buffers) EXPECT_EQ(b, expect);
  EXPECT_TRUE(FunctionalRing<int>::buffers_consistent(buffers));
  // K-1 = 3 exchange rounds, each moving K = 4 chunks.
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.packs_sent, 12u);
}

TEST(FunctionalRingTest, InconsistencyDetectorWorks) {
  std::vector<std::vector<int>> good{{1, 2}, {1, 2}};
  std::vector<std::vector<int>> bad{{1, 2}, {1, 3}};
  EXPECT_TRUE(FunctionalRing<int>::buffers_consistent(good));
  EXPECT_FALSE(FunctionalRing<int>::buffers_consistent(bad));
}

class RingPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingPropertyTest, AllGatherMatchesConcatenationForAnyNodeCount) {
  const std::size_t nodes = GetParam();
  util::Rng rng(nodes * 1000 + 17);
  const std::size_t chunk = 48;
  std::vector<std::vector<float>> chunks(nodes, std::vector<float>(chunk));
  std::vector<float> expect;
  for (auto& c : chunks) {
    for (auto& v : c) v = static_cast<float>(rng.normal());
    expect.insert(expect.end(), c.begin(), c.end());
  }
  FunctionalRing<float> ring(nodes);
  RingStats stats;
  const auto buffers = ring.all_gather(chunks, &stats);
  ASSERT_EQ(buffers.size(), nodes);
  for (const auto& b : buffers) EXPECT_EQ(b, expect);
  if (nodes > 1) {
    EXPECT_EQ(stats.rounds, nodes - 1);
    EXPECT_EQ(stats.packs_sent, nodes * (nodes - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, RingPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 16),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "nodes" + std::to_string(i.param);
                         });

TEST(RingFabricTest, SendDeliversToSuccessor) {
  sim::Engine eng;
  hw::StreamLinkConfig cfg{.bytes_per_cycle = 32.0, .hop_latency_cycles = 10};
  RingFabric fabric(eng, 4, cfg);
  struct Sender {
    static sim::Task run(RingFabric& fabric) {
      co_await fabric.send(1, Datapack{.bytes = 320, .src_node = 1});
    }
  };
  eng.spawn(Sender::run(fabric));
  eng.run();
  Datapack got;
  ASSERT_TRUE(fabric.rx(2).try_get(got));
  EXPECT_EQ(got.src_node, 1u);
  EXPECT_EQ(got.bytes, 320u);
  EXPECT_EQ(eng.now(), 20u);  // 10 hop + 320/32 serialize
  EXPECT_EQ(fabric.total_bytes(), 320u);
}

TEST(RingFabricTest, AllLinksOperateInParallel) {
  sim::Engine eng;
  hw::StreamLinkConfig cfg{.bytes_per_cycle = 32.0, .hop_latency_cycles = 0};
  RingFabric fabric(eng, 4, cfg);
  struct Sender {
    static sim::Task run(RingFabric& fabric, std::size_t from) {
      co_await fabric.send(from, Datapack{.bytes = 3200,
                                          .src_node =
                                              static_cast<std::uint32_t>(from)});
    }
  };
  for (std::size_t n = 0; n < 4; ++n) eng.spawn(Sender::run(fabric, n));
  eng.run();
  // Four simultaneous neighbour transfers take one serialization time, not
  // four — the ring is a distributed fabric, not a shared bus.
  EXPECT_EQ(eng.now(), 100u);
  for (std::size_t n = 0; n < 4; ++n) {
    Datapack got;
    ASSERT_TRUE(fabric.rx(n).try_get(got));
    EXPECT_EQ(got.src_node, (n + 3) % 4);
  }
}

TEST(RingFabricTest, PerLinkConfigsPriceEachHopIndependently) {
  sim::Engine eng;
  // Heterogeneous links: an SLR-to-SLR hop (fast, near-zero latency), an
  // FPGA-to-FPGA hop (narrow, long latency), and a mid-tier hop.
  RingFabric fabric(eng, {hw::StreamLinkConfig{.bytes_per_cycle = 32.0,
                                               .hop_latency_cycles = 0},
                          hw::StreamLinkConfig{.bytes_per_cycle = 8.0,
                                               .hop_latency_cycles = 5},
                          hw::StreamLinkConfig{.bytes_per_cycle = 16.0,
                                               .hop_latency_cycles = 20}});
  ASSERT_EQ(fabric.num_nodes(), 3u);
  EXPECT_EQ(fabric.link(0).config().bytes_per_cycle, 32.0);
  EXPECT_EQ(fabric.link(1).config().hop_latency_cycles, 5u);
  EXPECT_EQ(fabric.link(2).config().hop_latency_cycles, 20u);
  struct Sender {
    static sim::Task run(RingFabric& fabric, std::size_t from) {
      co_await fabric.send(from, Datapack{.bytes = 320,
                                          .src_node =
                                              static_cast<std::uint32_t>(from)});
    }
  };
  eng.spawn(Sender::run(fabric, 0));  // 320/32 + 0  = 10 cycles
  eng.spawn(Sender::run(fabric, 1));  // 320/8  + 5  = 45 cycles
  eng.run();
  // The two links run in parallel; the makespan is the slow link's price,
  // not the uniform-config price a single-config ctor would give both.
  EXPECT_EQ(eng.now(), 45u);
  EXPECT_EQ(fabric.rx(1).size(), 1u);
  EXPECT_EQ(fabric.rx(2).size(), 1u);
}

TEST(RingFabricTest, TotalBytesSumsOverAllLinks) {
  sim::Engine eng;
  hw::StreamLinkConfig cfg{.bytes_per_cycle = 32.0, .hop_latency_cycles = 0};
  RingFabric fabric(eng, 3, cfg);
  struct Sender {
    static sim::Task run(RingFabric& fabric, std::size_t from,
                         std::uint64_t bytes) {
      co_await fabric.send(from, Datapack{.bytes = bytes});
    }
  };
  eng.spawn(Sender::run(fabric, 0, 100));
  eng.spawn(Sender::run(fabric, 1, 250));
  eng.spawn(Sender::run(fabric, 1, 50));
  eng.run();
  // Per-link meters see only their own traffic; the fabric total is the sum.
  EXPECT_EQ(fabric.link(0).total_bytes(), 100u);
  EXPECT_EQ(fabric.link(1).total_bytes(), 300u);
  EXPECT_EQ(fabric.link(2).total_bytes(), 0u);
  EXPECT_EQ(fabric.total_bytes(), 400u);
}

TEST(RingFabricTest, TransferCutsThroughWithoutTouchingRxFifos) {
  sim::Engine eng;
  hw::StreamLinkConfig cfg{.bytes_per_cycle = 32.0, .hop_latency_cycles = 10};
  RingFabric fabric(eng, 4, cfg);
  struct Mover {
    static sim::Task run(RingFabric& fabric) {
      co_await fabric.transfer(0, 2, Datapack{.bytes = 320});
    }
  };
  eng.spawn(Mover::run(fabric));
  eng.run();
  // Two hops (links 0 and 1) priced back to back: 2 x (10 + 320/32).
  EXPECT_EQ(eng.now(), 40u);
  // total_bytes() counts bytes x hops — the conservation the serve-layer
  // KV-migration test pins against migrated blocks x block bytes.
  EXPECT_EQ(fabric.link(0).total_bytes(), 320u);
  EXPECT_EQ(fabric.link(1).total_bytes(), 320u);
  EXPECT_EQ(fabric.total_bytes(), 640u);
  // Cut-through: no router FIFO along the path sees the pack — the caller
  // owns delivery, unlike send().
  for (std::size_t n = 0; n < 4; ++n) EXPECT_TRUE(fabric.rx(n).empty());
}

TEST(RingFabricTest, MultiHopRelayPreservesFifoOrder) {
  sim::Engine eng;
  hw::StreamLinkConfig cfg{.bytes_per_cycle = 32.0, .hop_latency_cycles = 0};
  RingFabric fabric(eng, 3, cfg);
  struct Sender {
    static sim::Task run(RingFabric& fabric) {
      for (std::uint32_t b = 0; b < 3; ++b) {
        co_await fabric.send(0, Datapack{.bytes = 64, .src_node = 0,
                                         .block = b, .last = b == 2});
      }
    }
  };
  struct Relay {
    // Store-and-forward router at node 1: drains its rx FIFO and forwards
    // each pack one more hop, preserving arrival order.
    static sim::Task run(RingFabric& fabric) {
      for (int i = 0; i < 3; ++i) {
        Datapack pack = co_await fabric.rx(1).get();
        co_await fabric.send(1, pack);
      }
    }
  };
  eng.spawn(Sender::run(fabric));
  eng.spawn(Relay::run(fabric));
  eng.run();
  ASSERT_EQ(fabric.rx(2).size(), 3u);
  for (std::uint32_t b = 0; b < 3; ++b) {
    Datapack got;
    ASSERT_TRUE(fabric.rx(2).try_get(got));
    EXPECT_EQ(got.block, b);  // injection order survives both hops
    EXPECT_EQ(got.last, b == 2);
  }
  EXPECT_EQ(fabric.total_bytes(), 64u * 3 * 2);  // 3 packs x 2 hops
}

TEST(RingFabricTest, BackToBackSendsSerializeOnOneLink) {
  sim::Engine eng;
  hw::StreamLinkConfig cfg{.bytes_per_cycle = 32.0, .hop_latency_cycles = 0};
  RingFabric fabric(eng, 2, cfg);
  struct Sender {
    static sim::Task run(RingFabric& fabric) {
      co_await fabric.send(0, Datapack{.bytes = 320});
      co_await fabric.send(0, Datapack{.bytes = 320});
    }
  };
  eng.spawn(Sender::run(fabric));
  eng.run();
  EXPECT_EQ(eng.now(), 20u);
  EXPECT_EQ(fabric.rx(1).size(), 2u);
}

}  // namespace
}  // namespace looplynx::net
