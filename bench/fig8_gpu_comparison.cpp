// Regenerates paper Fig. 8: normalized inference latency (a) and normalized
// energy efficiency (b) of LoopLynx 1/2/4-node deployments against an
// Nvidia A100 across [prefill:decode] scenarios.
//
// Latency is normalized to the 4-node implementation (higher = slower), and
// energy efficiency (token/J) to the GPU (higher = better), exactly as in
// the paper. Pass --csv to emit the raw series.
#include <iostream>
#include <map>
#include <vector>

#include "baseline/gpu_a100.hpp"
#include "bench/bench_common.hpp"
#include "core/energy.hpp"
#include "core/system.hpp"
#include "util/csv.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  const auto model = bench::model_from_cli(cli);
  const core::RunOptions opt = bench::fast_options(cli);
  const baseline::A100Model gpu(model);
  const core::PowerModel power;

  const std::vector<workload::Scenario> scenarios =
      workload::fig8_scenarios();
  const std::vector<std::uint32_t> node_counts{1, 2, 4};

  struct Cell {
    double total_ms = 0;
    double tokens_per_joule = 0;
  };
  std::map<std::uint32_t, std::vector<Cell>> fpga;  // per node count
  std::vector<Cell> gpu_cells;

  for (const workload::Scenario& sc : scenarios) {
    const double gpu_s = gpu.request_seconds(sc.prefill, sc.decode);
    const double gpu_j = power.a100_energy_joules(gpu_s);
    gpu_cells.push_back(Cell{gpu_s * 1e3, sc.total() / gpu_j});
    for (std::uint32_t nodes : node_counts) {
      const core::ArchConfig arch = core::ArchConfig::nodes(nodes);
      core::System sys(arch, model);
      const double fpga_ms = sys.run(sc.prefill, sc.decode, opt).total_ms;
      const core::EnergyComparison cmp = compare_energy(
          power, arch, fpga_ms / 1e3, gpu_s, sc.total());
      fpga[nodes].push_back(Cell{fpga_ms, cmp.fpga_tokens_per_joule});
    }
  }

  // ---- (a) normalized latency (to 4-node; higher = slower). ----
  util::Table lat("Fig. 8(a): normalized inference latency (" + model.name +
                  "; normalized to 4-node, log-scale in the paper)");
  std::vector<std::string> header{"Impl."};
  for (const auto& sc : scenarios) header.push_back(sc.name);
  lat.set_header(header);
  for (std::uint32_t nodes : node_counts) {
    std::vector<std::string> row{std::to_string(nodes) + "-node"};
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      row.push_back(
          util::fmt_fixed(fpga[nodes][i].total_ms / fpga[4][i].total_ms, 2));
    }
    lat.add_row(row);
  }
  {
    std::vector<std::string> row{"A100"};
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      row.push_back(
          util::fmt_fixed(gpu_cells[i].total_ms / fpga[4][i].total_ms, 2));
    }
    lat.add_row(row);
  }
  lat.render(std::cout);

  // ---- (b) normalized energy efficiency (token/J vs GPU). ----
  util::Table eff("Fig. 8(b): normalized energy efficiency (token/J, "
                  "normalized to A100)");
  eff.set_header(header);
  for (std::uint32_t nodes : node_counts) {
    std::vector<std::string> row{std::to_string(nodes) + "-node"};
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      row.push_back(util::fmt_fixed(
          fpga[nodes][i].tokens_per_joule / gpu_cells[i].tokens_per_joule,
          2));
    }
    eff.add_row(row);
  }
  eff.render(std::cout);

  // ---- Headline averages over long-generation scenarios. ----
  std::map<std::uint32_t, std::vector<double>> speedups, eff_ratios;
  std::map<std::uint32_t, std::vector<double>> long_speedups;
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    for (std::uint32_t nodes : node_counts) {
      const double sp = gpu_cells[i].total_ms / fpga[nodes][i].total_ms;
      speedups[nodes].push_back(sp);
      eff_ratios[nodes].push_back(fpga[nodes][i].tokens_per_joule /
                                  gpu_cells[i].tokens_per_joule);
      if (scenarios[i].decode >= 512) long_speedups[nodes].push_back(sp);
    }
  }
  std::cout << "\nAverages vs A100 (paper: 2-node 1.67x speed-up / 37.3% "
               "energy; 4-node 2.52x / 48.1%;\nenergy-efficiency gains "
               "2.3x/2.7x/2.1x for 1/2/4 nodes):\n";
  for (std::uint32_t nodes : node_counts) {
    std::cout << "  " << nodes << "-node: long-generation speed-up "
              << util::fmt_speedup(util::geomean(long_speedups[nodes]))
              << ", all-scenario geomean "
              << util::fmt_speedup(util::geomean(speedups[nodes]))
              << ", energy-efficiency geomean "
              << util::fmt_speedup(util::geomean(eff_ratios[nodes])) << "\n";
  }

  if (cli.has("csv")) {
    std::cout << "\n";
    util::CsvWriter csv(std::cout);
    csv.write_row({"scenario", "impl", "total_ms", "tokens_per_joule"});
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
      csv.write_row({scenarios[i].name, "a100",
                     util::fmt_fixed(gpu_cells[i].total_ms, 3),
                     util::fmt_fixed(gpu_cells[i].tokens_per_joule, 4)});
      for (std::uint32_t nodes : node_counts) {
        csv.write_row({scenarios[i].name, std::to_string(nodes) + "-node",
                       util::fmt_fixed(fpga[nodes][i].total_ms, 3),
                       util::fmt_fixed(fpga[nodes][i].tokens_per_joule, 4)});
      }
    }
  }
  return 0;
}
