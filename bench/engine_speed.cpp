// Engine-speed self-bench: wall-clock simulated-requests-per-second of the
// serve hot path itself (scheduler, admission, KV accounting, routing) —
// NOT a model-quality figure. Every point is a saturated sweep: all
// requests are injected up front at a very high arrival rate into a queue
// sized to hold them, so the measurement is dominated by the engine room
// grinding through admissions, iterations and completions, exactly the
// path the flat-state refactor targets.
//
//   ./engine_speed [--out=BENCH_serve.json] [--scale=N] [--skip-million]
//                  [--repeat=N]
//
// --scale divides every point's request count (CI smoke: --scale=10 runs
// 10k-request points). --skip-million drops the 1M-request smoke point.
// --repeat runs each 100k point N times (default 3) and reports the best
// rep — wall-clock noise on shared runners only ever slows a run down, so
// best-of-N is the stable estimator of what the engine can do. The 1M
// smoke point always runs once.
//
// Output schema (BENCH_serve.json):
//   {
//     "bench": "engine_speed",
//     "points": [
//       { "name": str,            // point id, stable across PRs
//         "requests": int,        // requests offered
//         "completed": int,       // requests finished (== offered here)
//         "replicas": int,
//         "wall_s": float,        // host wall-clock for the run() call
//         "sim_req_per_s": float, // completed / wall_s — the headline
//         "events": int,          // engine events processed
//         "events_per_s": float,
//         "sim_makespan_s": float // simulated duration (determinism aid)
//       }, ... ]
//   }
//
// The simulated *outputs* of each point (completed counts, makespan) are
// deterministic; only the wall_s / per-second figures vary with the host.
// CI soft-compares sim_req_per_s against the committed baseline
// (bench/BENCH_serve.baseline.json) and warns — never fails — below 0.9x,
// so runner noise cannot break the build while real regressions stay
// visible PR over PR.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/arch_config.hpp"
#include "core/step_cost.hpp"
#include "model/config.hpp"
#include "serve/fleet.hpp"
#include "serve/serving_sim.hpp"
#include "serve/traffic.hpp"
#include "util/cli.hpp"
#include "workload/mix.hpp"

namespace {

using namespace looplynx;

struct Point {
  std::string name;
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint32_t replicas = 1;
  double wall_s = 0.0;
  double sim_req_per_s = 0.0;
  std::uint64_t events = 0;
  double events_per_s = 0.0;
  double sim_makespan_s = 0.0;
};

model::ModelConfig bench_model() {
  model::ModelConfig m = model::cosim_config();
  m.name = "cosim-256";
  m.max_seq_len = 256;
  return m;
}

/// Saturated single-replica config: the whole request population arrives
/// in the first simulated milliseconds and queues, so the scheduler is
/// never idle and wall clock measures the hot path, not arrival gaps.
serve::ServingConfig base_config(std::uint32_t requests) {
  serve::ServingConfig cfg;
  cfg.arch = core::ArchConfig::one_node();
  cfg.model = bench_model();
  cfg.cost_probe_stride = 16;
  cfg.traffic.mix = workload::Mix{"skewed",
                                  {{workload::make_scenario(8, 16), 0.8},
                                   {workload::make_scenario(192, 48), 0.2}}};
  cfg.traffic.num_requests = requests;
  cfg.traffic.arrival_rate_per_s = 5.0e6;  // effectively: all queued up front
  cfg.traffic.seed = 42;
  cfg.scheduler.max_batch = 8;
  cfg.scheduler.max_in_flight = 64;
  cfg.scheduler.queue_capacity = requests;  // shed nothing: pure throughput
  return cfg;
}

/// Best-of-N repetitions (host noise is one-sided: it only ever slows a
/// rep down). The simulated outputs are deterministic, so every rep
/// produces identical completed/events/makespan — only wall_s varies.
int g_repeat = 3;

template <typename RunFn>
Point timed_point(const std::string& name, std::uint64_t requests,
                  std::uint32_t replicas, RunFn run, int repeat) {
  Point best;
  for (int rep = 0; rep < repeat; ++rep) {
    Point p;
    p.name = name;
    p.requests = requests;
    p.replicas = replicas;
    const auto t0 = std::chrono::steady_clock::now();
    run(p);
    const auto t1 = std::chrono::steady_clock::now();
    p.wall_s = std::chrono::duration<double>(t1 - t0).count();
    if (p.wall_s > 0) {
      p.sim_req_per_s = static_cast<double>(p.completed) / p.wall_s;
      p.events_per_s = static_cast<double>(p.events) / p.wall_s;
    }
    if (rep == 0 || p.wall_s < best.wall_s) best = p;
  }
  std::printf("%-28s %9llu req  %7.2fs wall  %12.0f req/s  %14llu events\n",
              best.name.c_str(),
              static_cast<unsigned long long>(best.requests), best.wall_s,
              best.sim_req_per_s,
              static_cast<unsigned long long>(best.events));
  std::fflush(stdout);
  return best;
}

Point single_point(const std::string& name, std::uint32_t requests,
                   serve::ServingConfig cfg, int repeat) {
  return timed_point(
      name, requests, 1,
      [&](Point& p) {
        serve::ServingSim sim(cfg);
        const serve::FleetMetrics m = sim.run();
        p.completed = m.completed + m.rejected;
        p.sim_makespan_s = m.duration_s;
        // events_processed is not exposed through FleetMetrics; derive a
        // proxy from iterations so the column is still monotone in work.
        p.events = m.iterations;
      },
      repeat);
}

Point fleet_point(const std::string& name, std::uint32_t requests,
                  std::uint32_t replicas) {
  return timed_point(
      name, requests, replicas,
      [&](Point& p) {
        const serve::FleetConfig cfg = serve::FleetConfig::homogeneous(
            base_config(requests), replicas,
            serve::BalancerPolicy::kJoinShortestQueue);
        const serve::FleetResult r = serve::FleetSim(cfg).run();
        p.completed = r.fleet.completed + r.fleet.rejected;
        p.sim_makespan_s = r.fleet.duration_s;
        p.events = r.fleet.iterations;
      },
      g_repeat);
}

void write_json(const std::string& path, const std::vector<Point>& points) {
  std::ofstream out(path);
  out << "{\n  \"bench\": \"engine_speed\",\n  \"points\": [\n";
  for (std::size_t i = 0; i < points.size(); ++i) {
    const Point& p = points[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    { \"name\": \"%s\", \"requests\": %llu, \"completed\": %llu, "
        "\"replicas\": %u, \"wall_s\": %.3f, \"sim_req_per_s\": %.1f, "
        "\"events\": %llu, \"events_per_s\": %.1f, \"sim_makespan_s\": "
        "%.6f }%s\n",
        p.name.c_str(), static_cast<unsigned long long>(p.requests),
        static_cast<unsigned long long>(p.completed), p.replicas, p.wall_s,
        p.sim_req_per_s, static_cast<unsigned long long>(p.events),
        p.events_per_s, p.sim_makespan_s,
        i + 1 < points.size() ? "," : "");
    out << buf;
  }
  out << "  ]\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  looplynx::util::Cli cli(argc, argv);
  const std::string out_path = cli.get_or("out", "BENCH_serve.json");
  const auto scale =
      static_cast<std::uint32_t>(cli.get_int_or("scale", 1));
  const bool skip_million = cli.has("skip-million");
  g_repeat = static_cast<int>(cli.get_int_or("repeat", 3));
  if (g_repeat < 1) g_repeat = 1;
  const auto n = [&](std::uint32_t requests) {
    return std::max<std::uint32_t>(1, requests / std::max(1u, scale));
  };

  std::vector<Point> points;

  {
    // Whole-prompt decode-priority: the pure continuous-batching loop.
    serve::ServingConfig cfg = base_config(n(100000));
    cfg.scheduler.policy = serve::BatchPolicy::kDecodePriority;
    points.push_back(single_point("single-100k-decode",
                                  cfg.traffic.num_requests, cfg, g_repeat));
  }
  {
    // Chunked prefill + paged KV + recompute preemption under pressure:
    // the admission / victim-pick / recompute machinery.
    serve::ServingConfig cfg = base_config(n(100000));
    cfg.scheduler.policy = serve::BatchPolicy::kChunkedMixed;
    cfg.scheduler.max_tokens_per_iter = 64;
    cfg.scheduler.preempt = serve::PreemptPolicy::kRecomputeYoungest;
    cfg.kv_block_tokens = 16;
    points.push_back(single_point("single-100k-chunked-paged",
                                  cfg.traffic.num_requests, cfg, g_repeat));
  }
  {
    // Fleet routing path: every arrival walks the balancer.
    const std::uint32_t requests = n(100000);
    points.push_back(fleet_point("fleet-100k-jsq-4", requests, 4));
  }
  if (!skip_million) {
    // Million-request single-replica smoke: completing at all (inside the
    // CI job budget) is the acceptance point; the rate is the trend line.
    serve::ServingConfig cfg = base_config(n(1000000));
    cfg.scheduler.policy = serve::BatchPolicy::kDecodePriority;
    points.push_back(single_point("single-1m-decode",
                                  cfg.traffic.num_requests, cfg, 1));
  }

  write_json(out_path, points);
  std::cout << "Wrote " << out_path << "\n";
  return 0;
}
