// W8A8 (SmoothQuant) GPT-2 model — the exact arithmetic LoopLynx executes.
//
// All four linears per block run as int8 x int8 -> int32 with static
// per-tensor input scales and per-channel weight scales; attention runs on
// int8 Q/K/V with an int8 KV cache (the paper stores the KV cache in HBM as
// int8 datapacks); softmax probabilities are quantized to int8 at scale
// 1/127 before token mixing. LayerNorm, GELU, residuals and the final head
// stay in fp32, matching the torch-int W8A8 GPU flow the paper compares
// against.
//
// The stage helpers are deliberately exposed: the functional multi-node
// accelerator (core/functional_node) calls the same code on row/head
// sub-ranges, which is what makes the "distributed == single-device"
// equivalence test meaningful.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/config.hpp"
#include "model/kv_cache.hpp"
#include "model/tensor.hpp"
#include "model/weights.hpp"
#include "quant/quant.hpp"
#include "quant/smoothquant.hpp"

namespace looplynx::quant {

/// Fixed scale for quantized softmax probabilities (range [0, 1]).
inline constexpr float kProbScale = 1.0f / 127.0f;

/// One transformer block's quantized parameters + static activation scales.
struct Int8Block {
  model::Tensor ln1_gain, ln1_bias;  // smoothing-folded
  model::Tensor ln2_gain, ln2_bias;  // smoothing-folded
  QuantizedLinear qkv;
  QuantizedLinear proj;
  QuantizedLinear fc1;
  QuantizedLinear fc2;

  // Static activation scales from calibration.
  float ln1_out_scale = 1.0f;   // input scale of qkv
  float q_scale = 1.0f;
  float k_scale = 1.0f;
  float v_scale = 1.0f;
  float attn_out_scale = 1.0f;  // input scale of proj
  float ln2_out_scale = 1.0f;   // input scale of fc1
  float gelu_scale = 1.0f;      // input scale of fc2
};

struct Gpt2Int8Weights {
  model::ModelConfig config;
  model::Tensor wte, wpe;            // fp32 embeddings
  model::Tensor lnf_gain, lnf_bias;  // fp32 final LN
  std::vector<Int8Block> blocks;

  /// Quantizes fp32 weights using calibration statistics. `alpha` is the
  /// SmoothQuant migration strength (paper default 0.5).
  static Gpt2Int8Weights build(const model::Gpt2Weights& weights,
                               const CalibrationStats& stats,
                               float alpha = 0.5f);

  /// Convenience: calibrate on `calibration_tokens` then build.
  static Gpt2Int8Weights build_with_calibration(
      const model::Gpt2Weights& weights,
      std::span<const std::uint32_t> calibration_tokens, float alpha = 0.5f);

  /// Total int8 weight bytes streamed per token (all blocks' linears).
  std::uint64_t weight_bytes_per_token() const;
};

/// Stage helpers shared by the single-device model and the distributed
/// functional accelerator. All are pure functions of their arguments.
namespace stages {

/// LN + quantize: norm = LN(x); x_q = quant(norm, scale).
void ln_quant(std::span<const float> x, const model::Tensor& gain,
              const model::Tensor& bias, float scale,
              std::span<float> norm_tmp, std::span<std::int8_t> x_q);

/// Quantize q/k/v segments of a block's qkv output for heads
/// [head_begin, head_end) and append K/V to the cache.
void quantize_qkv_heads(const model::ModelConfig& cfg, const Int8Block& blk,
                        std::span<const float> qkv_fp, std::uint32_t layer,
                        std::uint32_t head_begin, std::uint32_t head_end,
                        model::KvCache8& cache, std::span<std::int8_t> q_q);

/// Head-wise int8 attention for heads [head_begin, head_end): writes fp32
/// attention output into out[h*head_dim ...] using *global* head indexing
/// offsets relative to head_begin.
void attention_heads(const model::ModelConfig& cfg, const Int8Block& blk,
                     std::span<const std::int8_t> q_q, std::uint32_t layer,
                     std::uint32_t head_begin, std::uint32_t head_end,
                     const model::KvCache8& cache, std::uint32_t cur_pos,
                     std::span<float> out);

/// GELU + quantize.
void gelu_quant(std::span<float> x, float scale, std::span<std::int8_t> x_q);

}  // namespace stages

/// Single-device int8 GPT-2 (reference for the distributed accelerator).
class Gpt2Int8 {
 public:
  explicit Gpt2Int8(const Gpt2Int8Weights& weights);

  const model::ModelConfig& config() const { return weights_->config; }
  const Gpt2Int8Weights& weights() const { return *weights_; }

  /// One token through the quantized model; returns the final hidden state.
  std::vector<float> forward_token(std::uint32_t token_id);

  std::vector<float> logits(std::span<const float> hidden) const;
  std::uint32_t argmax_token(std::span<const float> hidden) const;
  std::vector<std::uint32_t> generate(std::span<const std::uint32_t> prompt,
                                      std::uint32_t num_tokens);

  std::uint32_t position() const { return cache_.seq_len(); }
  void reset() { cache_.reset(); }

 private:
  const Gpt2Int8Weights* weights_;
  model::KvCache8 cache_;
};

}  // namespace looplynx::quant
