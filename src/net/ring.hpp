// Functional ring all-gather (paper Fig. 6(c)).
//
// Each node owns a chunk of the full embedding vector. The routing mechanism
// proceeds in rounds: every node writes the chunk it most recently received
// (initially its own) to its successor while reading one from its
// predecessor, placing arrivals into its local buffer at the offset derived
// from the chunk's source node id. After K-1 exchange rounds every node's
// buffer holds the full vector, and all buffers are identical.
//
// This header-only implementation is the arithmetic-bearing path used by the
// functional accelerator; the timed fabric lives in net/fabric.hpp.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace looplynx::net {

/// Statistics of one all-gather execution.
struct RingStats {
  std::size_t rounds = 0;
  std::size_t packs_sent = 0;  // total chunk transfers over all links
};

template <typename T>
class FunctionalRing {
 public:
  explicit FunctionalRing(std::size_t num_nodes) : num_nodes_(num_nodes) {
    assert(num_nodes_ >= 1);
  }

  std::size_t num_nodes() const noexcept { return num_nodes_; }

  /// Performs the round-based all-gather. `chunks[i]` is node i's locally
  /// computed sub-vector; all chunks must have equal length. Returns one
  /// full buffer per node (all identical — verified by the caller/tests).
  std::vector<std::vector<T>> all_gather(
      const std::vector<std::vector<T>>& chunks, RingStats* stats = nullptr) {
    assert(chunks.size() == num_nodes_);
    const std::size_t chunk_len = chunks.empty() ? 0 : chunks[0].size();
    for (const auto& c : chunks) {
      assert(c.size() == chunk_len);
      (void)c;
    }

    // Local buffers; each node first writes its own chunk at its offset.
    std::vector<std::vector<T>> buffers(
        num_nodes_, std::vector<T>(chunk_len * num_nodes_));
    for (std::size_t n = 0; n < num_nodes_; ++n) {
      write_chunk(buffers[n], n, chunks[n]);
    }

    // K-1 exchange rounds. in_flight[n] is the chunk node n forwards next,
    // tagged with its source id (the router's offset bookkeeping).
    std::vector<std::pair<std::size_t, std::vector<T>>> in_flight;
    in_flight.reserve(num_nodes_);
    for (std::size_t n = 0; n < num_nodes_; ++n) {
      in_flight.emplace_back(n, chunks[n]);
    }
    RingStats local_stats;
    for (std::size_t round = 1; round < num_nodes_; ++round) {
      std::vector<std::pair<std::size_t, std::vector<T>>> next(num_nodes_);
      for (std::size_t n = 0; n < num_nodes_; ++n) {
        const std::size_t succ = (n + 1) % num_nodes_;
        next[succ] = in_flight[n];
        ++local_stats.packs_sent;
      }
      for (std::size_t n = 0; n < num_nodes_; ++n) {
        write_chunk(buffers[n], next[n].first, next[n].second);
      }
      in_flight = std::move(next);
      ++local_stats.rounds;
    }
    if (stats) *stats = local_stats;
    return buffers;
  }

  /// True when every node's buffer is identical (post-gather invariant).
  static bool buffers_consistent(const std::vector<std::vector<T>>& buffers) {
    for (std::size_t n = 1; n < buffers.size(); ++n) {
      if (buffers[n] != buffers[0]) return false;
    }
    return true;
  }

 private:
  void write_chunk(std::vector<T>& buffer, std::size_t src,
                   const std::vector<T>& chunk) const {
    // Offset is derived from the source node id (paper: "each router
    // maintains an offset based on the node ID").
    const std::size_t offset = src * chunk.size();
    for (std::size_t i = 0; i < chunk.size(); ++i) {
      buffer[offset + i] = chunk[i];
    }
  }

  std::size_t num_nodes_;
};

}  // namespace looplynx::net
