#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace looplynx::util {

Table::Table(std::string title) : title_(std::move(title)) {}

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::set_align(std::vector<Align> align) { align_ = std::move(align); }

void Table::add_row(std::vector<std::string> row) {
  row.resize(header_.size());
  rows_.push_back(Row{std::move(row), /*separator=*/false});
}

void Table::add_separator() { rows_.push_back(Row{{}, /*separator=*/true}); }

Align Table::column_align(std::size_t col) const {
  if (col < align_.size()) return align_[col];
  return col == 0 ? Align::kLeft : Align::kRight;
}

std::vector<std::size_t> Table::column_widths() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }
  return widths;
}

namespace {

void render_rule(std::ostream& os, const std::vector<std::size_t>& widths,
                 char left, char mid, char right) {
  os << left;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
    os << (c + 1 == widths.size() ? right : mid);
  }
  os << '\n';
}

}  // namespace

void Table::render(std::ostream& os) const {
  const auto widths = column_widths();
  if (!title_.empty()) os << "== " << title_ << " ==\n";
  render_rule(os, widths, '+', '+', '+');
  // Header.
  os << '|';
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << ' ' << header_[c]
       << std::string(widths[c] - header_[c].size(), ' ') << " |";
  }
  os << '\n';
  render_rule(os, widths, '+', '+', '+');
  for (const Row& row : rows_) {
    if (row.separator) {
      render_rule(os, widths, '+', '+', '+');
      continue;
    }
    os << '|';
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell =
          c < row.cells.size() ? row.cells[c] : std::string();
      const std::size_t pad = widths[c] - cell.size();
      if (column_align(c) == Align::kRight) {
        os << ' ' << std::string(pad, ' ') << cell << " |";
      } else {
        os << ' ' << cell << std::string(pad, ' ') << " |";
      }
    }
    os << '\n';
  }
  render_rule(os, widths, '+', '+', '+');
}

void Table::render_markdown(std::ostream& os) const {
  if (!title_.empty()) os << "### " << title_ << "\n\n";
  os << '|';
  for (const std::string& h : header_) os << ' ' << h << " |";
  os << "\n|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (column_align(c) == Align::kRight ? " ---: |" : " --- |");
  }
  os << '\n';
  for (const Row& row : rows_) {
    if (row.separator) continue;
    os << '|';
    for (std::size_t c = 0; c < header_.size(); ++c) {
      os << ' ' << (c < row.cells.size() ? row.cells[c] : std::string())
         << " |";
    }
    os << '\n';
  }
}

std::string Table::to_string() const {
  std::ostringstream os;
  render(os);
  return os.str();
}

std::string fmt_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string fmt_speedup(double ratio, int digits) {
  return fmt_fixed(ratio, digits) + "x";
}

std::string fmt_percent(double fraction, int digits) {
  return fmt_fixed(fraction * 100.0, digits) + "%";
}

std::string fmt_int(long long value) {
  const bool negative = value < 0;
  unsigned long long magnitude =
      negative ? 0ULL - static_cast<unsigned long long>(value)
               : static_cast<unsigned long long>(value);
  std::string digits = std::to_string(magnitude);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fmt_kilo(double value, int digits) {
  if (std::abs(value) >= 1e6) return fmt_fixed(value / 1e6, std::max(digits, 1)) + "M";
  if (std::abs(value) >= 1e3) return fmt_fixed(value / 1e3, digits) + "K";
  return fmt_fixed(value, digits);
}

}  // namespace looplynx::util
