// Tests for the power/energy model and the FPGA resource model, including
// the Fig. 7 calibration checks.
#include <gtest/gtest.h>

#include "core/energy.hpp"
#include "core/resource_model.hpp"
#include "hw/resources.hpp"
#include "model/config.hpp"

namespace looplynx::core {
namespace {

TEST(PowerModelTest, CalibratedDeploymentPower) {
  const PowerModel p;
  // Back-solved from the paper's energy ratios (DESIGN.md §2): ~43 W for
  // one node, ~62 W for one full U50, ~124 W for the dual-FPGA setup.
  EXPECT_NEAR(p.fpga_power_watts(ArchConfig::one_node()), 43.0, 0.5);
  EXPECT_NEAR(p.fpga_power_watts(ArchConfig::two_node()), 62.0, 0.5);
  EXPECT_NEAR(p.fpga_power_watts(ArchConfig::four_node()), 124.0, 1.0);
}

TEST(PowerModelTest, PowerStaysUnderBoardTdp) {
  const PowerModel p;
  // One U50 (2 nodes) must stay under the 75 W card budget (Table I).
  EXPECT_LT(p.fpga_power_watts(ArchConfig::two_node()), 75.0);
}

TEST(EnergyComparisonTest, RatiosAreConsistent) {
  const PowerModel p;
  const ArchConfig arch = ArchConfig::two_node();
  // FPGA finishes in 2 s, GPU in 3.34 s (1.67x speed-up), 576 tokens.
  const EnergyComparison cmp = compare_energy(p, arch, 2.0, 3.34, 576);
  EXPECT_NEAR(cmp.fpga_joules, 62.0 * 2.0, 1.0);
  EXPECT_NEAR(cmp.gpu_joules, 100.0 * 3.34, 1.0);
  // Paper-shape: ~37% of the GPU energy, ~2.7x token/J.
  EXPECT_NEAR(cmp.energy_fraction, 0.373, 0.02);
  EXPECT_NEAR(cmp.efficiency_ratio, 2.69, 0.15);
  EXPECT_GT(cmp.fpga_tokens_per_joule, cmp.gpu_tokens_per_joule);
}

TEST(EnergyComparisonTest, ZeroDurationsAreSafe) {
  const PowerModel p;
  const EnergyComparison cmp =
      compare_energy(p, ArchConfig::one_node(), 0.0, 0.0, 0);
  EXPECT_EQ(cmp.efficiency_ratio, 0.0);
  EXPECT_EQ(cmp.energy_fraction, 0.0);
}

TEST(ResourceModelTest, Fig7RowsMatchPaper) {
  const ResourceModel rm(ArchConfig::two_node(), model::gpt2_medium());
  const auto rows = rm.fig7_rows();
  ASSERT_EQ(rows.size(), 5u);

  // Paper Fig. 7 table (dual-node accelerator on one U50).
  EXPECT_NEAR(rows[0].usage.dsp, 522, 2);    // Fused MP
  EXPECT_NEAR(rows[0].usage.lut, 34e3, 1e3);
  EXPECT_NEAR(rows[0].usage.ff, 56e3, 1e3);
  EXPECT_NEAR(rows[0].usage.bram, 241, 2);

  EXPECT_NEAR(rows[1].usage.dsp, 382, 2);    // Fused MHA
  EXPECT_NEAR(rows[1].usage.lut, 38e3, 1e3);
  EXPECT_NEAR(rows[1].usage.ff, 45e3, 1e3);
  EXPECT_NEAR(rows[1].usage.bram, 16, 1);

  EXPECT_NEAR(rows[2].usage.dsp, 192, 2);    // Fused LN
  EXPECT_NEAR(rows[2].usage.lut, 23e3, 1e3);
  EXPECT_NEAR(rows[2].usage.ff, 30e3, 1e3);
  EXPECT_NEAR(rows[2].usage.bram, 240, 2);

  EXPECT_NEAR(rows[3].usage.dsp, 0, 0.1);    // DMA
  EXPECT_NEAR(rows[3].usage.lut, 16e3, 1e3);
  EXPECT_NEAR(rows[3].usage.ff, 28e3, 1e3);
  EXPECT_NEAR(rows[3].usage.bram, 97, 2);

  EXPECT_NEAR(rows[4].usage.dsp, 32, 1);     // Other
}

TEST(ResourceModelTest, DeviceTotalMatchesPaper) {
  const ResourceModel rm(ArchConfig::two_node(), model::gpt2_medium());
  const auto total = rm.device_total();
  EXPECT_NEAR(total.dsp, 1132, 5);
  EXPECT_NEAR(total.lut, 312e3, 5e3);
  EXPECT_NEAR(total.ff, 478e3, 5e3);
  EXPECT_NEAR(total.bram, 924.5, 5);
}

TEST(ResourceModelTest, TableIIScalingAcrossNodes) {
  const model::ModelConfig m = model::gpt2_medium();
  const auto one = ResourceModel(ArchConfig::one_node(), m);
  const auto two = ResourceModel(ArchConfig::two_node(), m);
  const auto four = ResourceModel(ArchConfig::four_node(), m);
  // Paper Table II: 568 / 1132 / 2264 DSP (accelerator logic scales
  // linearly in nodes).
  EXPECT_NEAR(one.accelerator_total().dsp, 568, 8);
  EXPECT_NEAR(two.accelerator_total().dsp, 1132, 10);
  EXPECT_NEAR(four.accelerator_total().dsp, 2264, 20);
}

TEST(ResourceModelTest, DefaultConfigFitsU50) {
  const ResourceModel rm(ArchConfig::two_node(), model::gpt2_medium());
  EXPECT_TRUE(rm.fits_u50());
  const auto node = rm.per_node();
  EXPECT_TRUE(node.fits_within(hw::alveo_u50_slr_budget()));
}

TEST(ResourceModelTest, OversizedConfigDoesNotFit) {
  ArchConfig big = ArchConfig::two_node();
  big.n_channel = 64;  // 2048 MACs per node
  big.score_lanes = 1024;
  big.mix_lanes = 1024;
  const ResourceModel rm(big, model::gpt2_medium());
  EXPECT_FALSE(rm.fits_u50());
}

TEST(ResourceModelTest, ResourcesScaleWithChannels) {
  const model::ModelConfig m = model::gpt2_medium();
  ArchConfig narrow = ArchConfig::one_node();
  ArchConfig wide = ArchConfig::one_node();
  wide.n_channel = 16;
  const auto r_narrow =
      ResourceModel(narrow, m).fused_mp_kernel();
  const auto r_wide = ResourceModel(wide, m).fused_mp_kernel();
  EXPECT_GT(r_wide.dsp, r_narrow.dsp);
  EXPECT_GT(r_wide.lut, r_narrow.lut);
  EXPECT_GT(r_wide.bram, r_narrow.bram);
}

}  // namespace
}  // namespace looplynx::core
