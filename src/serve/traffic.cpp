#include "serve/traffic.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace looplynx::serve {

TrafficGen::TrafficGen(TrafficConfig config, double frequency_hz)
    : config_(std::move(config)),
      frequency_hz_(frequency_hz),
      rng_(config_.seed) {
  if (config_.mix.entries.empty()) {
    throw std::invalid_argument("traffic mix has no scenarios");
  }
  if (!config_.scripted_shapes.empty()) {
    // A script defines both shapes and request count; arrival times still
    // come from the configured process.
    config_.num_requests =
        static_cast<std::uint32_t>(config_.scripted_shapes.size());
  }
  if (config_.process != ArrivalProcess::kClosedLoop &&
      config_.arrival_rate_per_s <= 0) {
    throw std::invalid_argument("open-loop arrival rate must be positive");
  }
  if (config_.process == ArrivalProcess::kBursty) {
    if (config_.burst_period_s <= 0 || config_.burst_factor <= 0 ||
        config_.burst_fraction <= 0 || config_.burst_fraction >= 1) {
      throw std::invalid_argument(
          "bursty traffic needs burst_period_s > 0, burst_factor > 0 and "
          "burst_fraction in (0, 1)");
    }
  }
}

double TrafficGen::exponential_s(double rate_per_s) {
  // Inverse-CDF; next_double() < 1 so the log argument is positive.
  return -std::log(1.0 - rng_.next_double()) / rate_per_s;
}

sim::Cycles TrafficGen::exponential_cycles(double mean_s) {
  if (mean_s <= 0) return 0;
  return static_cast<sim::Cycles>(exponential_s(1.0 / mean_s) *
                                  frequency_hz_);
}

workload::Scenario TrafficGen::next_shape() {
  if (!config_.scripted_shapes.empty()) {
    const workload::Scenario& s =
        config_.scripted_shapes[script_cursor_ % config_.scripted_shapes.size()];
    ++script_cursor_;
    return s;
  }
  return config_.mix.sample(rng_.next_double());
}

std::vector<workload::Scenario> chat_turn_shapes(const ChatTrafficConfig& c) {
  if (c.conversations == 0 || c.turns == 0) {
    throw std::invalid_argument("chat traffic needs conversations, turns >= 1");
  }
  if (c.system_prompt_tokens == 0 || c.user_turn_tokens == 0 ||
      c.reply_tokens == 0) {
    throw std::invalid_argument(
        "chat traffic needs nonzero system/user/reply token counts");
  }
  // Content streams: one shared system-prompt seed, plus per-conversation
  // per-turn seeds for user messages and assistant replies. SplitMix64
  // expansion keeps streams decorrelated and platform-independent.
  util::SplitMix64 sys_sm(c.content_seed);
  const std::uint64_t system_seed = sys_sm.next();
  const auto stream_seed = [&](std::uint32_t conv, std::uint32_t turn,
                               bool reply) {
    util::SplitMix64 sm(c.content_seed ^
                        (0x9e3779b97f4a7c15ULL * (conv + 1)) ^
                        (0xbf58476d1ce4e5b9ULL * (2ULL * turn + (reply ? 1 : 0))));
    return sm.next();
  };

  std::vector<workload::Scenario> script;
  script.reserve(static_cast<std::size_t>(c.conversations) * c.turns);
  // Turn-major: every conversation's turn t precedes any turn t+1, so a
  // turn's history has (usually) been prefilled — and cached — by the time
  // the follow-up arrives.
  for (std::uint32_t turn = 0; turn < c.turns; ++turn) {
    for (std::uint32_t conv = 0; conv < c.conversations; ++conv) {
      workload::Scenario s;
      s.prompt_segments.push_back({system_seed, c.system_prompt_tokens});
      for (std::uint32_t j = 0; j < turn; ++j) {
        s.prompt_segments.push_back(
            {stream_seed(conv, j, false), c.user_turn_tokens});
        s.prompt_segments.push_back(
            {stream_seed(conv, j, true), c.reply_tokens});
      }
      s.prompt_segments.push_back(
          {stream_seed(conv, turn, false), c.user_turn_tokens});
      s.prefill = s.segment_tokens();
      s.decode = c.reply_tokens;
      s.name = "[chat c" + std::to_string(conv) + " t" +
               std::to_string(turn) + " " + std::to_string(s.prefill) + ":" +
               std::to_string(s.decode) + "]";
      script.push_back(std::move(s));
    }
  }
  return script;
}

std::vector<Arrival> TrafficGen::open_loop_schedule() {
  if (!config_.explicit_arrivals.empty()) return config_.explicit_arrivals;
  assert(config_.process != ArrivalProcess::kClosedLoop);
  std::vector<Arrival> schedule;
  schedule.reserve(config_.num_requests);

  if (config_.process == ArrivalProcess::kPoisson) {
    double t = 0.0;
    for (std::uint32_t i = 0; i < config_.num_requests; ++i) {
      t += exponential_s(config_.arrival_rate_per_s);
      schedule.push_back(Arrival{
          static_cast<sim::Cycles>(t * frequency_hz_), next_shape()});
    }
    return schedule;
  }

  // Bursty: alternate on/off phases of fixed length. The off-phase rate is
  // chosen so the long-run mean stays at arrival_rate_per_s when possible;
  // when burst_factor * burst_fraction >= 1 the off phase is silent and the
  // realized mean rate is lower than nominal.
  const double on_len = config_.burst_period_s * config_.burst_fraction;
  const double off_len = config_.burst_period_s - on_len;
  const double on_rate = config_.arrival_rate_per_s * config_.burst_factor;
  const double off_weight =
      1.0 - config_.burst_factor * config_.burst_fraction;
  const double off_rate =
      off_len > 0 && off_weight > 0
          ? config_.arrival_rate_per_s * off_weight / (1.0 - config_.burst_fraction)
          : 0.0;

  // Walk the phases by explicit index instead of fmod on absolute time:
  // near a phase boundary fmod's rounding could advance t by only an
  // epsilon per lap, and with a short burst_period_s the generator then
  // crawls through denormal-sized steps — an effectively infinite loop.
  // Offsets are drawn within the current phase (the exponential is
  // memoryless, so restarting the draw at each boundary is exact) and a
  // draw past the phase end just moves to the next phase.
  std::uint64_t period_idx = 0;
  bool on = true;
  double offset = 0.0;  // position within the current phase
  while (schedule.size() < config_.num_requests) {
    const double len = on ? on_len : off_len;
    const double rate = on ? on_rate : off_rate;
    const double base =
        static_cast<double>(period_idx) * config_.burst_period_s +
        (on ? 0.0 : on_len);
    if (rate > 0) {
      while (schedule.size() < config_.num_requests) {
        offset += exponential_s(rate);
        if (offset >= len) break;
        schedule.push_back(
            Arrival{static_cast<sim::Cycles>((base + offset) * frequency_hz_),
                    next_shape()});
      }
    }
    offset = 0.0;
    if (on) {
      on = false;
    } else {
      on = true;
      ++period_idx;
    }
  }
  return schedule;
}

}  // namespace looplynx::serve
