// Microbenchmarks of the functional kernels: int8 GEMV, quantization,
// softmax, LayerNorm, GELU — the host-side cost of the arithmetic the
// accelerator model executes.
#include <benchmark/benchmark.h>

#include <vector>

#include "model/ops.hpp"
#include "model/tensor.hpp"
#include "quant/quant.hpp"
#include "util/rng.hpp"

namespace {

using namespace looplynx;

void BM_Int8Gemv(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  model::Tensor w(n, n);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = static_cast<float>(rng.normal(0.0, 0.1));
  }
  std::vector<float> bias(n, 0.1f);
  const quant::QuantizedLinear ql =
      quant::QuantizedLinear::from_float(w, bias, 0.05f);
  std::vector<std::int8_t> x(n);
  for (auto& v : x) v = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  std::vector<float> y(n);
  for (auto _ : state) {
    ql.forward(x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Int8Gemv)->Arg(256)->Arg(512)->Arg(1024);

void BM_DotI8(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<std::int8_t> a(n), b(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
    b[i] = static_cast<std::int8_t>(rng.uniform_int(-127, 127));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(quant::dot_i8(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DotI8)->Arg(1024)->Arg(4096);

void BM_Quantize(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  std::vector<float> x(n);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  std::vector<std::int8_t> q(n);
  for (auto _ : state) {
    quant::quantize(x, 0.05f, q);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Quantize)->Arg(1024)->Arg(4096);

void BM_Softmax(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  std::vector<float> base(n);
  for (auto& v : base) v = static_cast<float>(rng.normal());
  std::vector<float> x = base;
  for (auto _ : state) {
    x = base;
    model::softmax(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Softmax)->Arg(128)->Arg(1024);

void BM_LayerNorm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(5);
  std::vector<float> base(n), gain(n, 1.0f), bias(n, 0.0f);
  for (auto& v : base) v = static_cast<float>(rng.normal());
  std::vector<float> x = base;
  for (auto _ : state) {
    x = base;
    model::layer_norm(x, gain, bias);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_LayerNorm)->Arg(1024);

void BM_Gelu(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(6);
  std::vector<float> base(n);
  for (auto& v : base) v = static_cast<float>(rng.normal());
  std::vector<float> x = base;
  for (auto _ : state) {
    x = base;
    model::gelu(x);
    benchmark::DoNotOptimize(x.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_Gelu)->Arg(4096);

}  // namespace


