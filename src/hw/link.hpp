// Point-to-point AXI-Stream link model for the inter-node ring.
//
// Each link is simplex (paper Fig. 6(c): "the router operates in simplex
// mode") with fixed per-hop latency plus serialization time at the link
// bandwidth. Transfers on one link are serialized; the ring is composed of
// K independent links so neighbour exchanges in a round proceed in parallel.
#pragma once

#include <cstdint>
#include <string>

#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace looplynx::hw {

struct StreamLinkConfig {
  /// Serialization bandwidth in bytes per cycle (paper: 8.49 GB/s at
  /// 285 MHz => ~29.8 B/cycle).
  double bytes_per_cycle = 29.8;
  /// Fixed hop latency (SERDES + FIFO crossing). Inter-SLR hops are a few
  /// cycles; inter-FPGA Aurora-style hops are hundreds of ns.
  sim::Cycles hop_latency_cycles = 64;
};

class StreamLink {
 public:
  StreamLink(sim::Engine& engine, StreamLinkConfig config,
             std::string name = "link")
      : engine_(&engine),
        config_(config),
        mutex_(engine),
        name_(std::move(name)) {}

  /// Cycles for `bytes` to fully arrive at the receiver.
  sim::Cycles transfer_cycles(std::uint64_t bytes) const;

  /// Simulated transfer of `bytes` over this link.
  sim::Task send(std::uint64_t bytes);

  std::uint64_t total_bytes() const noexcept { return total_bytes_; }
  sim::Cycles busy_cycles() const noexcept { return busy_cycles_; }
  const StreamLinkConfig& config() const noexcept { return config_; }
  const std::string& name() const noexcept { return name_; }

 private:
  sim::Engine* engine_;
  StreamLinkConfig config_;
  sim::Mutex mutex_;
  std::string name_;
  std::uint64_t total_bytes_ = 0;
  sim::Cycles busy_cycles_ = 0;
};

}  // namespace looplynx::hw
