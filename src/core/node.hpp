// Timed model of one LoopLynx accelerator node (paper Fig. 2(a)).
//
// A node owns its macro dataflow kernels — Fused MP, Fused MHA and Fused
// LN&Res — plus DMA/HBM resources and a router port on the ring. The stage
// scheduler (the *temporal* half of the hybrid design) invokes the kernels
// in sequence for every transformer-block stage; each kernel internally runs
// as a set of concurrently simulated dataflow processes connected by FIFOs
// (the *spatial* half).
#pragma once

#include <cstdint>
#include <memory>

#include "core/arch_config.hpp"
#include "hw/hbm.hpp"
#include "hw/mac.hpp"
#include "model/config.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"
#include "sim/fifo.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/trace.hpp"

namespace looplynx::core {

/// Breakdown categories recorded by the node trace.
namespace category {
inline constexpr const char* kLinear = "linear";    // Fused MP kernel
inline constexpr const char* kMha = "mha";          // Fused MHA kernel
inline constexpr const char* kSoftmax = "softmax";  // exposed softmax
inline constexpr const char* kCriticalPath = "cp";  // LN/residual/quant ops
inline constexpr const char* kSync = "sync";        // exposed ring sync
inline constexpr const char* kScheduler = "sched";  // state-machine overhead
inline constexpr const char* kHost = "host";        // PCIe token turnaround
}  // namespace category

class Node {
 public:
  /// `fabric` may be null when the configuration has a single node.
  Node(sim::Engine& engine, const ArchConfig& arch,
       const model::ModelConfig& model, std::uint32_t node_id,
       net::RingFabric* fabric);

  /// Simulates one token through all transformer blocks. `pos` is the
  /// number of already-cached tokens (attention covers pos + 1 positions).
  sim::Task run_token(std::uint32_t pos);

  const sim::Trace& trace() const { return trace_; }
  sim::Trace& trace() { return trace_; }

  std::uint64_t hbm_bytes() const {
    return weight_stream_->total_bytes_read() + kv_stream_->total_bytes_read();
  }
  double mpu_utilization() const { return mpu_->utilization(); }
  std::uint32_t node_id() const { return id_; }

 private:
  struct MpOp {
    const char* name;
    std::uint64_t rows_total;  // full output rows before node split
    std::uint64_t cols;        // input features
    bool gather;               // ring all-gather of the output sub-vector
    std::uint32_t gather_elem_bytes;  // wire width of gathered elements
    bool gelu;                 // GELU fused into the quant epilogue
  };

  enum class CpKind { kLnQuant, kResLnQuant, kRes, kFinalLn };

  // --- Stage implementations ---
  sim::Task mp_stage(MpOp op);
  sim::Task mha_stage(std::uint32_t seq);
  sim::Task cp_stage(CpKind kind);
  sim::Task sched_hop();

  // --- Fused MP internal dataflow processes ---
  sim::Task mp_dma_proc(const MpOp& op, std::uint32_t nblocks,
                        sim::Fifo<std::uint32_t>& out);
  sim::Task mp_mac_proc(const MpOp& op, std::uint32_t nblocks,
                        sim::Fifo<std::uint32_t>& in,
                        sim::Fifo<std::uint32_t>& out);
  sim::Task mp_quant_proc(const MpOp& op, std::uint32_t nblocks,
                          sim::Fifo<std::uint32_t>& in,
                          sim::Fifo<net::Datapack>& out,
                          sim::Cycles* compute_end);

  // --- Fused MHA internal dataflow processes ---
  sim::Task mha_score_proc(std::uint32_t seq, std::uint32_t heads,
                           sim::Fifo<std::uint32_t>& out);
  sim::Task mha_softmax_proc(std::uint32_t seq, std::uint32_t heads,
                             sim::Fifo<std::uint32_t>& in,
                             sim::Fifo<std::uint32_t>& out);
  sim::Task mha_mix_proc(std::uint32_t seq, std::uint32_t heads,
                         sim::Fifo<std::uint32_t>& in,
                         sim::Fifo<net::Datapack>& out,
                         sim::Cycles* compute_end);

  /// Ring all-gather of `npacks` locally produced packs. When
  /// `hide_network_sync` is set packs circulate as they are produced,
  /// overlapping compute; otherwise circulation starts only after the last
  /// pack is ready (the paper's non-hidden baseline). With `enabled` false
  /// (or a single node) the process only drains the FIFO.
  sim::Task router_gather(sim::Fifo<net::Datapack>& in, std::uint32_t npacks,
                          bool enabled = true);

  /// Both halves of a memory/compute overlap (streamed operands).
  sim::Task overlap_read_compute(hw::HbmChannel& channel, std::uint64_t bytes,
                                 hw::MacArray& mac, std::uint64_t macs);

  // --- Cost formulas ---
  std::uint32_t rows_per_node(std::uint64_t rows_total) const;
  std::uint32_t block_rows(std::uint32_t nblock_index,
                           std::uint32_t rows_node) const;
  sim::Cycles vec_cycles(std::uint64_t len, std::uint32_t lanes) const;
  sim::Cycles quant_cycles(std::uint64_t values, bool gelu) const;
  sim::Cycles softmax_cycles(std::uint32_t seq) const;

  sim::Engine* engine_;
  ArchConfig arch_;
  model::ModelConfig model_;
  std::uint32_t id_;
  net::RingFabric* fabric_;
  sim::Trace trace_;

  std::unique_ptr<hw::HbmChannel> weight_stream_;  // n_channel aggregated
  std::unique_ptr<hw::HbmChannel> kv_stream_;      // kv_channels aggregated
  std::unique_ptr<hw::MacArray> mpu_;
  std::unique_ptr<hw::MacArray> score_mac_;
  std::unique_ptr<hw::MacArray> mix_mac_;
};

}  // namespace looplynx::core
