// Continuous-batching walkthrough: a 12-request burst arrives at a
// 2-node LoopLynx deployment whose KV budget only fits a handful of
// requests at once, so the KV-slot manager backpressures admissions and
// the scheduler interleaves prefill and decode steps across the fleet.
//
// With --policy=chunked (or any policy plus --chunk-tokens=N) the
// scheduler runs on a per-iteration token budget: long prompts split into
// chunks that co-schedule with running decodes instead of stalling them.
//
//   ./continuous_batching [--requests=12] [--batch=4] [--rate=12]
//                         [--policy=prefill|decode|chunked]
//                         [--chunk-tokens=0] [--seed=7]
#include <iostream>

#include "core/arch_config.hpp"
#include "model/config.hpp"
#include "serve/kv_slot.hpp"
#include "serve/serving_sim.hpp"
#include "util/cli.hpp"
#include "workload/mix.hpp"

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);

  serve::ServingConfig cfg;
  cfg.arch = core::ArchConfig::two_node();
  cfg.model = model::gpt2_medium();
  cfg.traffic.process = serve::ArrivalProcess::kPoisson;
  cfg.traffic.mix = workload::mixed_fleet();
  cfg.traffic.num_requests =
      static_cast<std::uint32_t>(cli.get_int_or("requests", 12));
  cfg.traffic.arrival_rate_per_s = cli.get_double_or("rate", 12.0);
  cfg.traffic.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 7));
  cfg.scheduler.max_batch =
      static_cast<std::uint32_t>(cli.get_int_or("batch", 8));
  cfg.scheduler.policy =
      serve::parse_batch_policy(cli.get_or("policy", "prefill"));
  cfg.scheduler.max_tokens_per_iter = static_cast<std::uint32_t>(cli.get_int_or(
      "chunk-tokens", serve::default_chunk_tokens(cfg.scheduler.policy)));
  // Shrink the KV budget so roughly 8 average requests fit at once: the
  // scheduler demonstrably interleaves 8+ concurrent streams, while the
  // stragglers beyond that back up in the queue on KV slots — the
  // pressure a production fleet must survive.
  const auto mean_tokens = cfg.traffic.mix.mean_tokens_per_request();
  serve::KvSlotManager probe(cfg.arch, cfg.model, 1);  // bytes-per-token probe
  cfg.kv_budget_bytes_per_node = static_cast<std::uint64_t>(
      8.5 * mean_tokens * static_cast<double>(probe.bytes_per_token_per_node()));

  const serve::ServingSim sim(cfg);
  const serve::FleetMetrics m = sim.run();
  m.to_table("Continuous batching, " + cfg.traffic.mix.name + " mix, batch " +
             std::to_string(cfg.scheduler.max_batch))
      .render(std::cout);

  if (cfg.scheduler.max_tokens_per_iter > 0) {
    std::cout << "\n" << m.chunked_prompts << " prompt(s) were split into "
              << "chunks (" << m.prefill_chunk_steps
              << " chunk steps; token budget "
              << cfg.scheduler.max_tokens_per_iter << "/iteration).\n";
  }
  std::cout << "\n" << m.peak_in_flight
            << " requests were in flight concurrently; KV backpressure "
               "stalled admission "
            << m.kv_stall_events << " time(s) (peak queue depth "
            << m.peak_queue_depth << ").\n";
  if (m.kv_stall_events == 0) {
    std::cout << "(increase --rate or --requests to exercise backpressure)\n";
  }
  const bool ok = m.completed == m.offered - m.rejected &&
                  m.peak_in_flight >= 8 && m.kv_stall_events > 0;
  return ok ? 0 : 1;
}
