// Minimal leveled logger for the LoopLynx simulator.
//
// Output is deterministic (no timestamps by default) so that simulation logs
// can be diffed between runs; verbosity is controlled globally per process.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace looplynx::util {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

/// Returns the mutable process-wide log level (default: kInfo).
LogLevel& global_log_level();

/// Parses "trace"/"debug"/"info"/"warn"/"error"/"off"; returns kInfo on
/// unknown input.
LogLevel parse_log_level(std::string_view name);

/// Short uppercase tag for a level ("TRACE", "INFO", ...).
std::string_view log_level_name(LogLevel level);

namespace detail {

/// RAII line builder: accumulates one log line and flushes it (with a level
/// tag) on destruction. Streams to stderr so benchmark tables on stdout stay
/// machine-readable.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component);
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine();

  template <typename T>
  LogLine& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_trace(std::string_view component = "") {
  return {LogLevel::kTrace, component};
}
inline detail::LogLine log_debug(std::string_view component = "") {
  return {LogLevel::kDebug, component};
}
inline detail::LogLine log_info(std::string_view component = "") {
  return {LogLevel::kInfo, component};
}
inline detail::LogLine log_warn(std::string_view component = "") {
  return {LogLevel::kWarn, component};
}
inline detail::LogLine log_error(std::string_view component = "") {
  return {LogLevel::kError, component};
}

}  // namespace looplynx::util
