// Deterministic traffic generation for the serving fleet.
//
// Three arrival processes over a workload::Mix of request shapes:
//  - kPoisson:    open-loop, exponential inter-arrival times at a fixed
//                 mean rate (the classic serving-benchmark arrival model).
//  - kBursty:     open-loop Markov-modulated Poisson: the generator
//                 alternates between an "on" phase at burst_factor x the
//                 nominal rate and a quieter "off" phase, stressing queue
//                 depth and tail latency the way diurnal traffic spikes do.
//  - kClosedLoop: `clients` concurrent users, each submitting a request,
//                 waiting for completion, thinking (exponential), and
//                 resubmitting — throughput self-limits to the fleet speed.
//
// All randomness flows through util::Rng from a single seed, so a given
// TrafficConfig reproduces the exact same request sequence on every run —
// the property the determinism tests and byte-identical bench output rely
// on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/engine.hpp"
#include "util/rng.hpp"
#include "workload/mix.hpp"
#include "workload/scenario.hpp"

namespace looplynx::serve {

enum class ArrivalProcess : std::uint8_t {
  kPoisson,
  kBursty,
  kClosedLoop,
};

/// One open-loop arrival: when (engine cycles) and what shape.
struct Arrival {
  sim::Cycles at = 0;
  workload::Scenario shape;
};

struct TrafficConfig {
  ArrivalProcess process = ArrivalProcess::kPoisson;
  workload::Mix mix = workload::mixed_fleet();
  std::uint32_t num_requests = 64;  // total requests to inject
  std::uint64_t seed = 1;

  /// When non-empty, this exact schedule is replayed instead of sampling an
  /// arrival process (host::Host batch submission, deterministic tests).
  /// Must be sorted by time; overrides `process` and `num_requests`.
  std::vector<Arrival> explicit_arrivals;

  /// When non-empty, arrival i takes `scripted_shapes[i]` instead of a mix
  /// sample and `num_requests` is the script length — arrival *times* are
  /// still drawn from `process`. This is how ordered workloads (multi-turn
  /// conversations, where turn t must arrive before turn t+1) ride the
  /// open-loop processes; `chat_turn_shapes` below builds such a script.
  /// Ignored when `explicit_arrivals` is set. Empty (the default) leaves
  /// the sampling path — and its RNG draw sequence — untouched.
  std::vector<workload::Scenario> scripted_shapes;

  // ---- Open-loop (Poisson / bursty) ----
  double arrival_rate_per_s = 4.0;  // nominal mean arrival rate

  // ---- Bursty modulation ----
  double burst_factor = 4.0;    // on-phase rate multiplier
  double burst_fraction = 0.25; // fraction of each period spent "on"
  double burst_period_s = 2.0;  // on + off period length

  // ---- Closed loop ----
  std::uint32_t clients = 8;
  double think_time_s = 0.25;  // mean exponential think time
};

/// Multi-turn chatbot traffic: `conversations` independent conversations,
/// each `turns` requests long, all sharing one `system_prompt_tokens`
/// system prompt. Turn t's prompt replays the full conversation so far —
/// system prompt, then (user message, assistant reply) for every earlier
/// turn, then the new user message — expressed as `PromptSegment`s whose
/// seeds make the replayed content *identical* to what the earlier turns
/// prefilled (and, for the reply segments, to what they decoded). Under
/// the content-addressed prefix cache this makes turn t's entire history a
/// cache hit; without the cache it is exactly the re-prefill bill
/// production chat traffic pays today. `content_seed` keys all content, so
/// two configs with the same seed share system prompts across runs.
struct ChatTrafficConfig {
  std::uint32_t conversations = 8;
  std::uint32_t turns = 4;                  // requests per conversation
  std::uint32_t system_prompt_tokens = 96;  // shared by every conversation
  std::uint32_t user_turn_tokens = 24;      // new user message per turn
  std::uint32_t reply_tokens = 48;          // decode length per turn
  std::uint64_t content_seed = 0x1007cace5eedULL;
};

/// Builds the turn-major request script for `ChatTrafficConfig`: requests
/// c0t0, c1t0, ..., c0t1, c1t1, ... so every conversation's turn t is
/// scheduled before any turn t+1. Feed it to
/// `TrafficConfig::scripted_shapes`.
std::vector<workload::Scenario> chat_turn_shapes(const ChatTrafficConfig& c);

class TrafficGen {
 public:
  TrafficGen(TrafficConfig config, double frequency_hz);

  const TrafficConfig& config() const { return config_; }

  /// The full arrival schedule for the open-loop processes (Poisson or
  /// bursty), sorted by time. Must not be called for kClosedLoop.
  std::vector<Arrival> open_loop_schedule();

  /// Draws the next request shape from the mix (used by closed-loop
  /// clients, and internally by open_loop_schedule).
  workload::Scenario next_shape();

  /// Exponential sample with mean `mean_s`, in cycles (closed-loop think
  /// times).
  sim::Cycles exponential_cycles(double mean_s);

 private:
  double exponential_s(double rate_per_s);

  TrafficConfig config_;
  double frequency_hz_;
  util::Rng rng_;
  std::size_t script_cursor_ = 0;  // next scripted_shapes entry to serve
};

}  // namespace looplynx::serve
