// Datapack descriptor exchanged between accelerator nodes on the ring.
//
// The timing model moves descriptors (byte counts + routing metadata), not
// payloads; the functional accelerator moves real values through the
// functional ring (net/ring.hpp). Keeping the two separated mirrors the
// paper's split between cycle simulation and HLS functionality.
#pragma once

#include <cstdint>

namespace looplynx::net {

struct Datapack {
  std::uint64_t bytes = 0;
  std::uint32_t src_node = 0;   // originating node id
  std::uint32_t block = 0;      // block index within the current operation
  std::uint32_t hops_left = 0;  // remaining forwards before retirement
  bool last = false;            // last block of the operation
};

}  // namespace looplynx::net
