// FPGA resource vectors and device budgets (paper Fig. 7 and Table II).
//
// Resources are modeled as integer vectors over {DSP, LUT, FF, BRAM, URAM};
// BRAM is counted in BRAM36-equivalents, which is why fractional values
// appear in the paper (924.5) — we track half-BRAM18 units as 0.5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace looplynx::hw {

struct ResourceVector {
  double dsp = 0;
  double lut = 0;
  double ff = 0;
  double bram = 0;  // BRAM36-equivalents (can be fractional)
  double uram = 0;

  ResourceVector& operator+=(const ResourceVector& other);
  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    a += b;
    return a;
  }
  friend ResourceVector operator*(ResourceVector a, double scale) {
    a.dsp *= scale;
    a.lut *= scale;
    a.ff *= scale;
    a.bram *= scale;
    a.uram *= scale;
    return a;
  }

  /// True when every component fits within `budget`.
  bool fits_within(const ResourceVector& budget) const;

  /// Max over components of this/budget (utilization of the scarcest
  /// resource); returns +inf if the budget has a zero where we need some.
  double max_utilization(const ResourceVector& budget) const;
};

/// A named sub-block contribution (one row of the paper's Fig. 7 table).
struct ComponentUsage {
  std::string name;
  ResourceVector usage;
};

/// Device budgets.
ResourceVector alveo_u50_budget();   // whole device
ResourceVector alveo_u50_slr_budget();  // one of two SLRs
ResourceVector alveo_u280_budget();

}  // namespace looplynx::hw
