#include "model/ops.hpp"

#include <cassert>
#include <cmath>

namespace looplynx::model {

void linear(const Tensor& w, std::span<const float> bias,
            std::span<const float> x, std::span<float> y) {
  assert(w.cols() == x.size());
  assert(w.rows() == y.size());
  assert(bias.empty() || bias.size() == y.size());
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const std::span<const float> row = w.row(r);
    double acc = bias.empty() ? 0.0 : bias[r];
    for (std::size_t c = 0; c < row.size(); ++c) {
      acc += static_cast<double>(row[c]) * static_cast<double>(x[c]);
    }
    y[r] = static_cast<float>(acc);
  }
}

void matvec(const Tensor& w, std::span<const float> x, std::span<float> y) {
  linear(w, {}, x, y);
}

void layer_norm(std::span<float> x, std::span<const float> gain,
                std::span<const float> bias, float eps) {
  assert(gain.size() == x.size());
  assert(bias.size() == x.size());
  double mean = 0.0;
  for (float v : x) mean += v;
  mean /= static_cast<double>(x.size());
  double var = 0.0;
  for (float v : x) {
    const double d = v - mean;
    var += d * d;
  }
  var /= static_cast<double>(x.size());
  const double inv_std = 1.0 / std::sqrt(var + eps);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>((x[i] - mean) * inv_std) * gain[i] + bias[i];
  }
}

void gelu(std::span<float> x) {
  constexpr float kSqrt2OverPi = 0.7978845608028654f;
  for (float& v : x) {
    const float inner = kSqrt2OverPi * (v + 0.044715f * v * v * v);
    v = 0.5f * v * (1.0f + std::tanh(inner));
  }
}

void softmax(std::span<float> x) {
  if (x.empty()) return;
  float max_v = x[0];
  for (float v : x) max_v = std::max(max_v, v);
  double sum = 0.0;
  for (float& v : x) {
    v = std::exp(v - max_v);
    sum += v;
  }
  const float inv = static_cast<float>(1.0 / sum);
  for (float& v : x) v *= inv;
}

void add_inplace(std::span<float> x, std::span<const float> y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) x[i] += y[i];
}

float dot(std::span<const float> a, std::span<const float> b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
  }
  return static_cast<float>(acc);
}

float abs_max(std::span<const float> x) {
  float m = 0.0f;
  for (float v : x) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace looplynx::model
