#include "serve/scheduler.hpp"

#include <algorithm>

namespace looplynx::serve {

std::vector<Request*> Scheduler::select(
    std::vector<Request*>& runnable) const {
  std::vector<Request*> batch;
  if (runnable.empty()) return batch;
  batch.reserve(std::min<std::size_t>(runnable.size(), config_.max_batch));

  const bool prefill_first = config_.policy == BatchPolicy::kPrefillPriority;
  // Two passes over the FIFO-ordered runnable list: the priority class
  // first, then the other class into the remaining slots.
  for (const int pass : {0, 1}) {
    const bool want_prefill = (pass == 0) == prefill_first;
    for (Request* r : runnable) {
      if (batch.size() >= config_.max_batch) break;
      if (!r->prefilled == want_prefill) batch.push_back(r);
    }
  }

  std::erase_if(runnable, [&](Request* r) {
    return std::find(batch.begin(), batch.end(), r) != batch.end();
  });
  return batch;
}

double Scheduler::mean_batch_size() const {
  if (iterations_.empty()) return 0.0;
  double acc = 0.0;
  for (const IterationRecord& it : iterations_) acc += it.batch_size();
  return acc / static_cast<double>(iterations_.size());
}

}  // namespace looplynx::serve
