// Shared parsing + cross-validation of the scheduler/KV command-line flags
// (--policy, --chunk-tokens, --preempt, --kv-block-tokens) for the CLI
// surfaces (bench/serve_load, examples/continuous_batching), so the two
// binaries' flag semantics cannot drift and invalid combinations are
// rejected loudly instead of silently doing something else.
#pragma once

#include "serve/scheduler.hpp"
#include "util/cli.hpp"

namespace looplynx::serve {

struct SchedulerCliOptions {
  BatchPolicy policy = BatchPolicy::kPrefillPriority;
  /// Per-iteration token budget (SchedulerConfig::max_tokens_per_iter).
  std::uint32_t chunk_tokens = 0;
  PreemptPolicy preempt = PreemptPolicy::kNone;
  /// KvBlockManager paging granularity (1 = token-granular legacy).
  std::uint32_t kv_block_tokens = 1;

  /// True when the run departs from the legacy whole-footprint accounting
  /// — the CLI surfaces add paging/preemption columns and summary lines
  /// only then, so default sweeps stay byte-identical to older output.
  bool paged() const {
    return preempt != PreemptPolicy::kNone || kv_block_tokens != 1;
  }
};

/// Parses --policy/--chunk-tokens/--preempt/--kv-block-tokens with
/// per-policy defaults (default_chunk_tokens) and cross-validates:
///  - an explicit --chunk-tokens > 0 requires --policy=chunked (the
///    whole-prompt policies never split prompts, so a budget would
///    silently degrade into a batch-member cap);
///  - --kv-block-tokens must be >= 1 (1 = token-granular).
/// Throws std::invalid_argument with an actionable message on violation.
SchedulerCliOptions parse_scheduler_cli(const util::Cli& cli,
                                        const std::string& default_policy =
                                            "prefill");

}  // namespace looplynx::serve
