#include "workload/scenario.hpp"

#include "util/rng.hpp"

namespace looplynx::workload {

namespace {

// One SplitMix64 step keyed on (stream, position): cheap, constexpr-grade
// mixing with no cross-platform variance. The +1 keeps stream 0 position 0
// away from the SplitMix64 fixed-ish low-entropy seed.
std::uint64_t mix(std::uint64_t stream, std::uint64_t pos) {
  util::SplitMix64 sm(stream * 0x9e3779b97f4a7c15ULL + pos + 1);
  return sm.next();
}

}  // namespace

std::uint64_t prompt_token_id(const Scenario& scenario, std::uint64_t unique,
                              std::uint32_t pos) {
  std::uint32_t base = 0;
  for (const PromptSegment& seg : scenario.prompt_segments) {
    if (pos < base + seg.tokens) return mix(seg.seed, pos - base);
    base += seg.tokens;
  }
  // Beyond the segment map (or no map at all): content unique to this
  // request, salted so it cannot collide with a segment stream.
  return mix(unique ^ 0xc2b2ae3d27d4eb4fULL, pos);
}

Scenario make_scenario(std::uint32_t prefill, std::uint32_t decode) {
  Scenario s;
  s.name = "[" + std::to_string(prefill) + ":" + std::to_string(decode) + "]";
  s.prefill = prefill;
  s.decode = decode;
  return s;
}

std::vector<Scenario> fig8_scenarios() {
  std::vector<Scenario> out;
  for (std::uint32_t prefill : {32u, 64u, 128u}) {
    for (std::uint32_t decode : {32u, 128u, 512u}) {
      out.push_back(make_scenario(prefill, decode));
    }
  }
  return out;
}

Scenario chatbot() { return make_scenario(32, 512); }
Scenario code_generation() { return make_scenario(64, 512); }
Scenario summarization() { return make_scenario(128, 32); }

}  // namespace looplynx::workload
