// Regenerates paper Table III: decode throughput and step speed-ups for
// 1/2/4-node LoopLynx, plus the interconnect-overhead analysis behind the
// sub-linear scaling discussion.
#include <iostream>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/node.hpp"
#include "core/system.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  const auto model = bench::model_from_cli(cli);
  const core::RunOptions opt = bench::fast_options(cli);

  util::Table table("Table III: Throughput and scalability (" + model.name +
                    ")");
  table.set_header(
      {"# Nodes", "Tokens Per Second", "Speed-up", "Exposed sync/token"});

  std::vector<double> tput;
  std::vector<std::uint32_t> node_counts{1, 2, 4};
  if (cli.has("extended")) node_counts = {1, 2, 4, 8};
  for (std::uint32_t nodes : node_counts) {
    core::System sys(core::ArchConfig::nodes(nodes), model);
    const core::RunResult r =
        sys.run(bench::kMixPrefill, bench::kMixDecode, opt);
    tput.push_back(r.decode_tokens_per_s);
    const double sync_ms = core::ArchConfig::nodes(nodes).cycles_to_ms(
        r.trace.total(core::category::kSync));
    table.add_row(
        {std::to_string(nodes) + "-node",
         util::fmt_fixed(r.decode_tokens_per_s, 1) + " token/s",
         tput.size() > 1
             ? util::fmt_speedup(tput.back() / tput[tput.size() - 2])
             : "-",
         util::fmt_fixed(sync_ms, 2) + " ms (sampled)"});
  }
  table.render(std::cout);

  std::cout
      << "\nPaper reference: 151.7 / 259.7 / 392.2 token/s; step speed-ups "
         "1.71x and 1.51x.\n"
         "Sub-linear scaling causes (paper Sec. F): critical-path operators "
         "are not distributed;\nper-node block counts shrink until "
         "quantization + ring synchronization tails are exposed.\n";
  return 0;
}
