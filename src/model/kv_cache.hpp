// Per-layer key/value cache for auto-regressive decoding (paper Fig. 1).
//
// Templated on the element type so the fp32 reference and the int8
// accelerator paths share the container. Layout is head-major so a head-wise
// partition across nodes (the paper's KV placement strategy) is a contiguous
// slice.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <vector>

#include "model/config.hpp"

namespace looplynx::model {

template <typename T>
class KvCacheT {
 public:
  KvCacheT() = default;
  KvCacheT(const ModelConfig& config, std::uint32_t first_head,
           std::uint32_t num_heads)
      : head_dim_(config.head_dim()),
        first_head_(first_head),
        num_heads_(num_heads),
        max_seq_(config.max_seq_len),
        n_layer_(config.n_layer),
        keys_(static_cast<std::size_t>(n_layer_) * num_heads_ * max_seq_ *
              head_dim_),
        values_(keys_.size()) {}

  /// Full-model cache (all heads resident, single device).
  explicit KvCacheT(const ModelConfig& config)
      : KvCacheT(config, 0, config.n_head) {}

  std::uint32_t seq_len() const noexcept { return seq_len_; }
  std::uint32_t num_heads() const noexcept { return num_heads_; }
  std::uint32_t first_head() const noexcept { return first_head_; }
  std::uint32_t head_dim() const noexcept { return head_dim_; }

  bool owns_head(std::uint32_t head) const noexcept {
    return head >= first_head_ && head < first_head_ + num_heads_;
  }

  /// Appends one token's K/V for (layer, global head). Must be called for
  /// every owned head of every layer, then sealed with advance().
  void append(std::uint32_t layer, std::uint32_t head, std::span<const T> k,
              std::span<const T> v) {
    assert(owns_head(head));
    assert(k.size() == head_dim_ && v.size() == head_dim_);
    assert(seq_len_ < max_seq_);
    T* kd = key_ptr(layer, head, seq_len_);
    T* vd = value_ptr(layer, head, seq_len_);
    for (std::uint32_t i = 0; i < head_dim_; ++i) {
      kd[i] = k[i];
      vd[i] = v[i];
    }
  }

  /// Marks the appended token as visible (call once per token step).
  void advance() {
    assert(seq_len_ < max_seq_);
    ++seq_len_;
  }

  std::span<const T> key(std::uint32_t layer, std::uint32_t head,
                         std::uint32_t pos) const {
    assert(pos <= seq_len_);  // pos == seq_len_ reads the just-appended row
    return {key_ptr(layer, head, pos), head_dim_};
  }
  std::span<const T> value(std::uint32_t layer, std::uint32_t head,
                           std::uint32_t pos) const {
    assert(pos <= seq_len_);
    return {value_ptr(layer, head, pos), head_dim_};
  }

  /// Bytes resident on this device (both K and V).
  std::uint64_t bytes_resident() const noexcept {
    return 2ULL * keys_.size() * sizeof(T);
  }

  void reset() noexcept { seq_len_ = 0; }

 private:
  std::size_t index(std::uint32_t layer, std::uint32_t head,
                    std::uint32_t pos) const {
    assert(owns_head(head));
    const std::size_t local_head = head - first_head_;
    return ((static_cast<std::size_t>(layer) * num_heads_ + local_head) *
                max_seq_ +
            pos) *
           head_dim_;
  }
  T* key_ptr(std::uint32_t l, std::uint32_t h, std::uint32_t p) {
    return keys_.data() + index(l, h, p);
  }
  const T* key_ptr(std::uint32_t l, std::uint32_t h, std::uint32_t p) const {
    return keys_.data() + index(l, h, p);
  }
  T* value_ptr(std::uint32_t l, std::uint32_t h, std::uint32_t p) {
    return values_.data() + index(l, h, p);
  }
  const T* value_ptr(std::uint32_t l, std::uint32_t h,
                     std::uint32_t p) const {
    return values_.data() + index(l, h, p);
  }

  std::uint32_t head_dim_ = 0;
  std::uint32_t first_head_ = 0;
  std::uint32_t num_heads_ = 0;
  std::uint32_t max_seq_ = 0;
  std::uint32_t n_layer_ = 0;
  std::uint32_t seq_len_ = 0;
  std::vector<T> keys_;
  std::vector<T> values_;
};

using KvCache = KvCacheT<float>;
using KvCache8 = KvCacheT<std::int8_t>;

}  // namespace looplynx::model
