// Minimal owning 2-D tensor types for the functional models.
//
// Row-major [rows x cols]; a vector is a 1-row tensor. Weight matrices are
// stored [out_features x in_features] to match the paper's W in
// Z^{l_embed/n x l_embed} convention (one row per output feature).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace looplynx::model {

template <typename T>
class TensorT {
 public:
  TensorT() = default;
  TensorT(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static TensorT vector(std::size_t n, T fill = T{}) {
    return TensorT(1, n, fill);
  }

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  std::size_t size() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  T& at(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  T& operator[](std::size_t i) {
    assert(i < data_.size());
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    assert(i < data_.size());
    return data_[i];
  }

  std::span<T> row(std::size_t r) {
    assert(r < rows_);
    return std::span<T>(data_.data() + r * cols_, cols_);
  }
  std::span<const T> row(std::size_t r) const {
    assert(r < rows_);
    return std::span<const T>(data_.data() + r * cols_, cols_);
  }

  std::span<T> flat() { return std::span<T>(data_); }
  std::span<const T> flat() const { return std::span<const T>(data_); }

  T* data() noexcept { return data_.data(); }
  const T* data() const noexcept { return data_.data(); }

  void fill(T value) { data_.assign(data_.size(), value); }

  bool same_shape(const TensorT& other) const noexcept {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using Tensor = TensorT<float>;
using Tensor8 = TensorT<std::int8_t>;
using Tensor32 = TensorT<std::int32_t>;

}  // namespace looplynx::model
