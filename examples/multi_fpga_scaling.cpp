// Multi-FPGA scaling exploration: extends the paper's 1/2/4-node study to
// 8 nodes and to larger GPT-2 variants, quantifying where ring
// synchronization and non-distributable critical-path work cap the speed-up
// (the "future work" direction of Section III-A).
//
//   ./multi_fpga_scaling [--stride=16] [--decode=256]
#include <iostream>
#include <vector>

#include "core/energy.hpp"
#include "core/node.hpp"
#include "core/resource_model.hpp"
#include "core/system.hpp"
#include "model/config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  core::RunOptions opt;
  opt.token_sample_stride =
      static_cast<std::uint32_t>(cli.get_int_or("stride", 16));
  const auto decode =
      static_cast<std::uint32_t>(cli.get_int_or("decode", 256));
  const core::PowerModel power;

  for (const model::ModelConfig& m :
       {model::gpt2_small(), model::gpt2_medium(), model::gpt2_xl()}) {
    util::Table t("Scaling " + m.name + " ([32:" + std::to_string(decode) +
                  "] request)");
    t.set_header({"nodes", "FPGAs", "token/s", "scaling eff.", "exposed sync",
                  "power", "token/J"});
    double base_tput = 0;
    for (std::uint32_t nodes : {1u, 2u, 4u, 8u}) {
      if (m.n_head % nodes != 0 || m.d_model % nodes != 0 ||
          m.d_ff % nodes != 0) {
        t.add_row({std::to_string(nodes), "-", "-", "partition n/a", "-", "-",
                   "-"});
        continue;
      }
      const core::ArchConfig arch = core::ArchConfig::nodes(nodes);
      core::System sys(arch, m);
      const core::RunResult r = sys.run(32, decode, opt);
      if (nodes == 1) base_tput = r.decode_tokens_per_s;
      const double ideal = base_tput * nodes;
      const double watts = power.fpga_power_watts(arch);
      const double sync_ms =
          arch.cycles_to_ms(r.trace.total(core::category::kSync));
      t.add_row({std::to_string(nodes), std::to_string(arch.num_fpgas()),
                 util::fmt_fixed(r.decode_tokens_per_s, 1),
                 util::fmt_percent(r.decode_tokens_per_s / ideal),
                 util::fmt_fixed(sync_ms, 2) + " ms",
                 util::fmt_fixed(watts, 0) + " W",
                 util::fmt_fixed(
                     r.decode_tokens_per_s / watts, 2)});
    }
    t.render(std::cout);
    std::cout << "\n";
  }

  std::cout
      << "Observations: scaling efficiency decays with node count because "
         "(1) LN/residual/quant\nwork is replicated, not distributed, and "
         "(2) per-node matrix blocks shrink until the\nquantization and "
         "ring-synchronization tails poke out from behind compute — the "
         "same two\ncauses the paper names for its 1.71x/1.51x steps. "
         "Larger models scale further\n(more work per node), which is the "
         "multi-FPGA opportunity LoopLynx targets.\n";
  return 0;
}
