// Shared parsing + cross-validation of the serving command-line flags
// (--policy, --chunk-tokens, --preempt, --kv-block-tokens, --replicas,
// --balancer, --prefix-cache, --kv-swap, --roles, --kv-link-gbps,
// --autoscale and its
// --min-replicas/--max-replicas/--scale-interval-ms companions) for the
// CLI surfaces (bench/serve_load,
// examples/continuous_batching, examples/autoscale_serving), so the
// binaries' flag semantics cannot drift and invalid combinations are
// rejected loudly instead of silently doing something else.
//
// Invariants the defaults encode:
//  - All defaults reproduce the legacy single-replica, whole-footprint,
//    unchunked run — a no-flag invocation stays byte-identical across PRs
//    (the CI determinism gate's baseline).
//  - paged() is the "does this run depart from legacy KV accounting"
//    predicate: CLI surfaces add paging/preemption columns only when it is
//    true, which is what keeps default sweep output byte-stable.
#pragma once

#include "serve/fleet.hpp"
#include "serve/scheduler.hpp"
#include "util/cli.hpp"

namespace looplynx::serve {

struct SchedulerCliOptions {
  BatchPolicy policy = BatchPolicy::kPrefillPriority;
  /// Per-iteration token budget (SchedulerConfig::max_tokens_per_iter).
  std::uint32_t chunk_tokens = 0;
  PreemptPolicy preempt = PreemptPolicy::kNone;
  /// KvBlockManager paging granularity (1 = token-granular legacy).
  std::uint32_t kv_block_tokens = 1;
  /// Fleet width: 1 = the single-replica ServingSim path (legacy output);
  /// >= 2 = a FleetSim of identical replicas behind `balancer`. Mutually
  /// exclusive with --autoscale (which sizes the fleet itself).
  std::uint32_t replicas = 1;
  BalancerPolicy balancer = BalancerPolicy::kRoundRobin;
  /// Fleet autoscaling (--autoscale=queue|slo|hybrid plus
  /// --min-replicas/--max-replicas/--scale-interval-ms). enabled == false
  /// unless --autoscale was given.
  AutoscalerConfig autoscale;
  /// Content-addressed prefix caching (--prefix-cache; =off to spell the
  /// default explicitly). false means no cache object is ever constructed
  /// — byte-identical to a build without the feature.
  bool prefix_cache = false;
  /// Swap-to-host eviction tier (--kv-swap; requires --prefix-cache).
  bool kv_swap = false;
  /// Disaggregated prefill/decode fleet (--roles=prefill,decode,...): one
  /// role per replica, comma-separated; the count must equal --replicas
  /// on a static fleet, and with --autoscale the list itself sizes the
  /// pool (the autoscaler scales a live prefix inside each role tier).
  /// Empty (the default) means a symmetric fleet — no ring fabric is ever
  /// constructed and output is byte-identical to a build without the
  /// feature.
  std::vector<ReplicaRole> roles;
  /// KV-migration link rate (--kv-link-gbps, GB/s decimal): prices each
  /// ring hop via hw::StreamLinkConfig. Only meaningful with --roles;
  /// defaults to 100 GB/s when roles are set, stays 0 otherwise.
  double kv_link_gbps = 0;
  /// Observability exports (serve/observe.hpp), legal with any replica /
  /// autoscale combination. Empty (the default) disables the observer
  /// entirely — the run's output stays byte-identical to an unobserved
  /// binary. --trace-out writes Chrome/Perfetto trace-event JSON,
  /// --metrics-out a Prometheus text exposition; both are keyed off
  /// simulated cycles only, so the files are byte-stable across re-runs.
  std::string trace_out;
  std::string metrics_out;

  /// True when the run departs from the legacy whole-footprint accounting
  /// — the CLI surfaces add paging/preemption columns and summary lines
  /// only then, so default sweeps stay byte-identical to older output.
  bool paged() const {
    return preempt != PreemptPolicy::kNone || kv_block_tokens != 1;
  }

  /// True when the run is a multi-replica fleet (fleet surfaces add
  /// balance columns only then, for the same byte-stability reason).
  bool fleet() const { return replicas > 1 || autoscale.enabled; }

  /// True when the run constructs a prefix cache — CLI surfaces add
  /// hit-rate/saved-prefill columns only then (same byte-stability rule
  /// as paged()).
  bool cached() const { return prefix_cache; }

  /// Replica pool size the surfaces should build: the role list when a
  /// disaggregated fleet autoscales (each tier's ceiling lives inside the
  /// list), the autoscaler's fleet-wide ceiling on a symmetric autoscaled
  /// fleet, the fixed width otherwise.
  std::uint32_t fleet_width() const {
    if (!autoscale.enabled) return replicas;
    return roles.empty() ? autoscale.max_replicas
                         : static_cast<std::uint32_t>(roles.size());
  }

  /// True when the run should attach an Observer and write exports.
  bool observed() const { return !trace_out.empty() || !metrics_out.empty(); }

  /// True when the run is a disaggregated prefill/decode fleet — CLI
  /// surfaces add migration columns and summary lines only then (same
  /// byte-stability rule as paged()/cached()).
  bool disaggregated() const { return !roles.empty(); }
};

/// Parses --policy/--chunk-tokens/--preempt/--kv-block-tokens/--replicas/
/// --balancer with per-policy defaults (default_chunk_tokens) and
/// cross-validates:
///  - an explicit --chunk-tokens > 0 requires --policy=chunked (the
///    whole-prompt policies never split prompts, so a budget would
///    silently degrade into a batch-member cap);
///  - --kv-block-tokens must be >= 1 (1 = token-granular);
///  - --replicas must be >= 1 (1 = the legacy single-replica path);
///  - an explicit --balancer requires --replicas >= 2 or --autoscale
///    (balancing a single replica is a routing no-op, so the flag would
///    silently do nothing);
///  - --autoscale (queue|slo|hybrid; bare selects hybrid) conflicts with
///    an explicit --replicas (the autoscaler sizes the fleet between
///    --min-replicas and --max-replicas; a fixed width contradicts it);
///  - --min-replicas/--max-replicas/--scale-interval-ms require
///    --autoscale, need 1 <= min <= max, and the interval must be > 0;
///    with --roles the bounds are comma lists naming one floor/ceiling
///    per tier (distinct roles in first-appearance order; each tier's
///    ceiling must equal its pool size), and comma lists without --roles
///    are rejected (a symmetric fleet has a single tier);
///  - --prefix-cache takes an optional on/off value (bare == on; =off/=0
///    spells the byte-identical default explicitly, which the CI identity
///    gate exercises);
///  - --kv-swap requires --prefix-cache (swap is a cache eviction tier;
///    alone it would silently do nothing);
///  - --trace-out/--metrics-out need a non-empty =<path> value (they are
///    legal with every replica / autoscale combination);
///  - --roles=<role>,... (general|prefill|decode) requires an explicit
///    --replicas >= 2 with a matching role count (or --autoscale, where
///    the role list itself sizes the pool and the autoscaler runs one
///    live-prefix control loop per role tier) and needs at least one
///    decode and one non-decode role;
///  - --kv-link-gbps requires --roles (the fabric only exists on a
///    disaggregated fleet) and must be > 0.
/// Throws std::invalid_argument with an actionable message on violation.
SchedulerCliOptions parse_scheduler_cli(const util::Cli& cli,
                                        const std::string& default_policy =
                                            "prefill");

}  // namespace looplynx::serve
