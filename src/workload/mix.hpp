// Weighted traffic mixes over the [prefill : decode] scenarios — the
// request population an open-loop serving fleet draws from. A Mix is what
// the serve-layer TrafficGen samples (deterministically, via util::Rng) to
// assign each arriving request its shape.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "workload/scenario.hpp"

namespace looplynx::workload {

struct WeightedScenario {
  Scenario scenario;
  double weight = 1.0;  // relative; normalized by Mix::sample
};

struct Mix {
  std::string name;
  std::vector<WeightedScenario> entries;

  /// Picks the entry whose cumulative normalized weight covers `u`,
  /// u in [0, 1). Deterministic given u; feed it Rng::next_double().
  const Scenario& sample(double u) const;

  /// Expected tokens per request (prefill + decode) under the weights.
  double mean_tokens_per_request() const;
};

/// Pure chatbot traffic: short prompts, long generations.
Mix chatbot_mix();

/// Code assistant traffic: medium prompts, long generations, with a tail of
/// short completion-style requests.
Mix codegen_mix();

/// Summarization traffic: long prompts, short generations.
Mix summarization_mix();

/// A fleet-realistic blend of all three applications plus the Fig. 8 corner
/// shapes as stragglers.
Mix mixed_fleet();

/// All four named mixes, for sweep harnesses.
std::vector<Mix> all_mixes();

}  // namespace looplynx::workload
