#include "core/system.hpp"

#include <algorithm>
#include <cassert>
#include <memory>

#include "core/node.hpp"
#include "hw/link.hpp"
#include "net/fabric.hpp"
#include "sim/sync.hpp"

namespace looplynx::core {

namespace {

/// Simulates one token across all nodes; resolves when every node's stage
/// schedule for the token has completed (host-side synchronization point).
sim::Task token_step(sim::Engine& engine,
                     std::vector<std::unique_ptr<Node>>& nodes,
                     std::uint32_t pos) {
  sim::CountdownLatch latch(engine, nodes.size());
  for (auto& node : nodes) {
    engine.spawn(sim::run_then_count_down(node->run_token(pos), latch));
  }
  co_await latch.wait();
}

/// The ring fabric plus the per-node accelerators of one deployment.
struct Deployment {
  std::unique_ptr<net::RingFabric> fabric;
  std::vector<std::unique_ptr<Node>> nodes;
};

Deployment build_deployment(sim::Engine& engine, const ArchConfig& arch,
                            const model::ModelConfig& model) {
  Deployment d;
  if (arch.num_nodes > 1) {
    std::vector<hw::StreamLinkConfig> link_cfgs;
    link_cfgs.reserve(arch.num_nodes);
    for (std::uint32_t n = 0; n < arch.num_nodes; ++n) {
      link_cfgs.push_back(
          hw::StreamLinkConfig{.bytes_per_cycle = arch.net_bytes_per_cycle(),
                               .hop_latency_cycles = arch.hop_cycles(n)});
    }
    d.fabric = std::make_unique<net::RingFabric>(engine, std::move(link_cfgs));
  }
  d.nodes.reserve(arch.num_nodes);
  for (std::uint32_t n = 0; n < arch.num_nodes; ++n) {
    d.nodes.push_back(
        std::make_unique<Node>(engine, arch, model, n, d.fabric.get()));
  }
  return d;
}

}  // namespace

System::System(ArchConfig arch, model::ModelConfig model)
    : arch_(arch), model_(model) {
  arch_.validate();
  model_.validate();
  if (model_.n_head % arch_.num_nodes != 0 ||
      model_.d_model % arch_.num_nodes != 0 ||
      model_.d_ff % arch_.num_nodes != 0) {
    throw std::invalid_argument(
        "num_nodes must evenly divide n_head, d_model and d_ff for the "
        "head-wise / column-parallel partition");
  }
}

RunResult System::run(std::uint32_t prefill_tokens,
                      std::uint32_t decode_tokens,
                      const RunOptions& options) const {
  const std::uint32_t total = prefill_tokens + decode_tokens;
  assert(total >= 1);
  assert(total <= model_.max_seq_len);
  const std::uint32_t stride = std::max<std::uint32_t>(
      1, options.token_sample_stride);

  sim::Engine engine;
  Deployment deploy = build_deployment(engine, arch_, model_);
  std::unique_ptr<net::RingFabric>& fabric = deploy.fabric;
  std::vector<std::unique_ptr<Node>>& nodes = deploy.nodes;

  // Simulate sampled positions; every position's cost is a function of the
  // KV length only, so intermediate positions interpolate linearly.
  std::vector<TokenTiming> timings(total);
  std::vector<std::uint32_t> sampled;
  for (std::uint32_t pos = 0; pos < total; ++pos) {
    const bool boundary = pos == 0 || pos + 1 == total ||
                          pos == prefill_tokens - 1 || pos == prefill_tokens;
    if (boundary || pos % stride == 0) sampled.push_back(pos);
  }

  std::uint64_t simulated_cycles_total = 0;
  for (std::uint32_t pos : sampled) {
    const sim::Cycles begin = engine.now();
    engine.spawn(token_step(engine, nodes, pos));
    engine.run();
    const sim::Cycles cost = engine.now() - begin;
    timings[pos] = TokenTiming{.index = pos,
                               .is_prefill = pos < prefill_tokens,
                               .cycles = cost,
                               .simulated = true};
    simulated_cycles_total += cost;
  }
  (void)simulated_cycles_total;

  // Interpolate skipped positions between the nearest simulated neighbours.
  std::uint32_t prev = sampled.front();
  for (std::size_t s = 1; s < sampled.size(); ++s) {
    const std::uint32_t next = sampled[s];
    for (std::uint32_t pos = prev + 1; pos < next; ++pos) {
      const double t = static_cast<double>(pos - prev) /
                       static_cast<double>(next - prev);
      const double interp =
          static_cast<double>(timings[prev].cycles) * (1.0 - t) +
          static_cast<double>(timings[next].cycles) * t;
      timings[pos] = TokenTiming{.index = pos,
                                 .is_prefill = pos < prefill_tokens,
                                 .cycles = static_cast<sim::Cycles>(interp),
                                 .simulated = false};
    }
    prev = next;
  }

  RunResult result;
  result.prefill_tokens = prefill_tokens;
  result.decode_tokens = decode_tokens;
  for (const TokenTiming& t : timings) {
    const sim::Cycles with_host = t.cycles + arch_.host_sync_cycles;
    result.total_cycles += with_host;
    if (t.is_prefill) {
      result.prefill_cycles += with_host;
    } else {
      result.decode_cycles += with_host;
    }
  }
  result.total_ms = arch_.cycles_to_ms(result.total_cycles);
  result.prefill_ms = arch_.cycles_to_ms(result.prefill_cycles);
  result.decode_ms = arch_.cycles_to_ms(result.decode_cycles);
  result.avg_token_ms = result.total_ms / static_cast<double>(total);
  if (decode_tokens > 0) {
    result.avg_decode_token_ms =
        result.decode_ms / static_cast<double>(decode_tokens);
    result.decode_tokens_per_s = 1e3 / result.avg_decode_token_ms;
  }

  result.trace = nodes[0]->trace();
  result.trace.add_cycles(category::kHost,
                          static_cast<sim::Cycles>(sampled.size()) *
                              arch_.host_sync_cycles);
  for (const auto& node : nodes) result.hbm_bytes += node->hbm_bytes();
  if (fabric) result.net_bytes = fabric->total_bytes();
  result.mpu_utilization = nodes[0]->mpu_utilization();
  if (options.keep_token_timings) result.tokens = std::move(timings);
  return result;
}

sim::Cycles System::token_cycles(std::uint32_t pos) const {
  assert(pos < model_.max_seq_len);
  sim::Engine engine;
  Deployment deploy = build_deployment(engine, arch_, model_);
  engine.spawn(token_step(engine, deploy.nodes, pos));
  engine.run();
  return engine.now();
}

double System::avg_token_latency_ms(std::uint32_t prefill_tokens,
                                    std::uint32_t decode_tokens,
                                    const RunOptions& options) const {
  return run(prefill_tokens, decode_tokens, options).avg_token_ms;
}

}  // namespace looplynx::core
