// Multi-deployment fleet walkthrough: the same skewed traffic stream is
// served by N identical 2-node deployments under each balancer policy, at
// the same seed, so the only variable is routing. The mix is deliberately
// whale-heavy — mostly short chat requests with a fat tail of long
// prompt + long generation requests — the shape on which blind
// round-robin piles consecutive whales onto one replica while its
// neighbors idle, and join-shortest-queue / KV-aware routing reclaim the
// difference in p99 TTFT.
//
//   ./fleet_serving [--replicas=3] [--requests=96] [--rate=10] [--seed=3]
//                   [--help]
//
// Deterministic: same flags, byte-identical output. Exits nonzero if
// join-shortest-queue fails to beat round-robin on p99 TTFT at no worse
// goodput — the fleet layer's reason to exist.
#include <iostream>
#include <string>
#include <vector>

#include "core/arch_config.hpp"
#include "model/config.hpp"
#include "serve/fleet.hpp"
#include "serve/serving_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/mix.hpp"

namespace {

void print_usage() {
  std::cout <<
      "fleet_serving: replica-sharding + load-balancer walkthrough.\n"
      "\n"
      "  --replicas=N   fleet width (default 3)\n"
      "  --requests=N   requests in the shared stream (default 96)\n"
      "  --rate=R       Poisson arrival rate per second (default 10)\n"
      "  --seed=N       traffic seed (default 3)\n"
      "  --help         this text\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  if (cli.has("help")) {
    print_usage();
    return 0;
  }
  const auto replicas =
      static_cast<std::uint32_t>(cli.get_int_or("replicas", 3));

  serve::ServingConfig base;
  base.arch = core::ArchConfig::two_node();
  base.model = model::gpt2_medium();
  // Whale-heavy skew: the occasional [768:128] request occupies a replica
  // for an order of magnitude longer than the [32:96] bread and butter.
  base.traffic.mix =
      workload::Mix{"whale-heavy",
                    {{workload::make_scenario(32, 96), 0.85},
                     {workload::make_scenario(768, 128), 0.15}}};
  base.traffic.num_requests =
      static_cast<std::uint32_t>(cli.get_int_or("requests", 96));
  base.traffic.arrival_rate_per_s = cli.get_double_or("rate", 10.0);
  base.traffic.seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 3));
  base.scheduler.max_batch = 8;

  // One shared cost model across all three fleets (identical replicas).
  const core::StepCostModel costs(base.arch, base.model, 64);

  struct Outcome {
    serve::BalancerPolicy policy;
    serve::FleetResult result;
  };
  std::vector<Outcome> outcomes;
  for (const serve::BalancerPolicy policy :
       {serve::BalancerPolicy::kRoundRobin,
        serve::BalancerPolicy::kJoinShortestQueue,
        serve::BalancerPolicy::kKvAware}) {
    const serve::FleetConfig cfg =
        serve::FleetConfig::homogeneous(base, replicas, policy);
    serve::FleetResult r = serve::FleetSim(cfg, costs).run();
    r.to_table(std::string("Fleet of ") + std::to_string(replicas) +
               ", balancer " + serve::balancer_policy_name(policy) + ", " +
               base.traffic.mix.name + " mix")
        .render(std::cout);
    std::cout << "load imbalance " << util::fmt_fixed(r.load_imbalance, 2)
              << ", TTFT p99 spread "
              << util::fmt_fixed(r.ttft_p99_spread_ms, 1) << " ms\n\n";
    outcomes.push_back({policy, std::move(r)});
  }

  const serve::FleetMetrics& rr = outcomes[0].result.fleet;
  const serve::FleetMetrics& jsq = outcomes[1].result.fleet;
  std::cout << "round-robin vs join-shortest-queue: TTFT p99 "
            << util::fmt_fixed(rr.ttft_ms.p99, 1) << " -> "
            << util::fmt_fixed(jsq.ttft_ms.p99, 1) << " ms, goodput "
            << util::fmt_fixed(rr.goodput_req_s, 2) << " -> "
            << util::fmt_fixed(jsq.goodput_req_s, 2) << " req/s\n";

  const bool all_served = [&] {
    for (const Outcome& o : outcomes) {
      if (o.result.fleet.completed + o.result.fleet.rejected !=
          o.result.fleet.offered) {
        return false;
      }
    }
    return true;
  }();
  const bool jsq_wins = jsq.ttft_ms.p99 < rr.ttft_ms.p99 &&
                        jsq.goodput_req_s >= rr.goodput_req_s;
  if (!jsq_wins) {
    std::cout << "FAIL: join-shortest-queue did not beat round-robin\n";
  }
  return all_served && jsq_wins ? 0 : 1;
}
