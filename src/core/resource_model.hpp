// FPGA resource estimation for LoopLynx kernels (paper Fig. 7 / Table II).
//
// Per-kernel usage is computed from the architecture parameters with
// coefficients calibrated so the default configuration reproduces the
// paper's post-PnR numbers on the Alveo U50 (Fused MP: 522 DSP / 34K LUT /
// 56K FF / 241 BRAM, etc.). Scaling the configuration (channels, lanes,
// nodes) scales the estimate accordingly, which the ablation benches use.
#pragma once

#include <vector>

#include "core/arch_config.hpp"
#include "hw/resources.hpp"
#include "model/config.hpp"

namespace looplynx::core {

class ResourceModel {
 public:
  ResourceModel(const ArchConfig& arch, const model::ModelConfig& model)
      : arch_(arch), model_(model) {}

  // Per-node kernel estimates (one SLR's accelerator).
  hw::ResourceVector fused_mp_kernel() const;
  hw::ResourceVector fused_mha_kernel() const;
  hw::ResourceVector fused_ln_kernel() const;
  hw::ResourceVector dma() const;
  hw::ResourceVector other_kernels() const;  // router, scheduler, buffers

  /// One accelerator node (sum of the five component rows).
  hw::ResourceVector per_node() const;

  /// Whole deployment across all nodes, platform shell excluded (the
  /// Table II accounting).
  hw::ResourceVector accelerator_total() const;

  /// One device's total including the static shell (the Fig. 7 "Device
  /// Total" row for a fully populated card).
  hw::ResourceVector device_total() const;

  /// Paper Fig. 7 component rows at device scale (the paper tabulates the
  /// dual-node accelerator occupying one U50).
  std::vector<hw::ComponentUsage> fig7_rows() const;

  /// Number of accelerator nodes resident on one card.
  std::uint32_t nodes_on_card() const;

  /// True when every node fits its SLR and the per-card total fits the U50.
  bool fits_u50() const;

  /// Shell (XDMA + HBM controllers + clocking) — per card, node-independent.
  static hw::ResourceVector platform_shell();

 private:
  ArchConfig arch_;
  model::ModelConfig model_;
};

}  // namespace looplynx::core
