// CSV emission for benchmark harnesses (series behind the paper's figures).
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace looplynx::util {

/// Streams rows of comma-separated values with RFC-4180-style quoting.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}

  void write_row(const std::vector<std::string>& cells);
  void write_row(std::initializer_list<std::string> cells);

  /// Quotes a cell if it contains a comma, quote or newline.
  static std::string escape(const std::string& cell);

 private:
  std::ostream& os_;
};

}  // namespace looplynx::util
