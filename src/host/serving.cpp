#include "host/serving.hpp"

#include <stdexcept>

namespace looplynx::host {

Host::Host(const quant::Gpt2Int8Weights& weights, Tokenizer tokenizer,
           core::ArchConfig arch)
    : weights_(&weights), tokenizer_(std::move(tokenizer)), arch_(arch) {
  if (tokenizer_.vocab_size() > weights.config.vocab_size) {
    throw std::invalid_argument(
        "tokenizer vocabulary exceeds the model's embedding table");
  }
}

ServeResult Host::serve(const ServeRequest& request,
                        const std::function<void(std::uint32_t)>& on_token) {
  ServeResult result;
  result.prompt_ids = tokenizer_.encode(request.prompt);
  if (result.prompt_ids.empty()) {
    result.prompt_ids.push_back(tokenizer_.eos_id());
  }
  const std::uint32_t budget_total = weights_->config.max_seq_len;
  if (result.prompt_ids.size() >= budget_total) {
    throw std::invalid_argument("prompt exceeds the model context window");
  }

  // ---- Functional pass: prefill then sampled decode until EOS. ----
  core::FunctionalSystem accel(*weights_, arch_.num_nodes);
  std::vector<float> hidden;
  for (std::uint32_t id : result.prompt_ids) {
    hidden = accel.forward_token(id);
  }
  Sampler sampler(request.sampling);
  const std::uint32_t max_new = std::min<std::uint32_t>(
      request.max_new_tokens,
      budget_total - static_cast<std::uint32_t>(result.prompt_ids.size()));
  for (std::uint32_t i = 0; i < max_new; ++i) {
    const std::vector<float> logits = accel.logits(hidden);
    const std::uint32_t next = sampler.sample(logits);
    if (next == tokenizer_.eos_id()) {
      result.hit_eos = true;
      break;
    }
    result.output_ids.push_back(next);
    if (on_token) on_token(next);
    if (i + 1 < max_new) hidden = accel.forward_token(next);
  }
  result.text = tokenizer_.decode(result.output_ids);

  // ---- Timing pass: the realized request shape on the timed system. ----
  const auto prefill =
      static_cast<std::uint32_t>(result.prompt_ids.size());
  const auto decode =
      static_cast<std::uint32_t>(std::max<std::size_t>(
          result.output_ids.size() + (result.hit_eos ? 1 : 0), 1));
  core::System timed(arch_, weights_->config);
  core::RunOptions opt;
  opt.token_sample_stride = 4;
  const core::RunResult timing = timed.run(prefill, decode, opt);
  result.prefill_ms = timing.prefill_ms;
  result.decode_ms = timing.decode_ms;
  result.total_ms = timing.total_ms;
  result.decode_tokens_per_s = timing.decode_tokens_per_s;
  return result;
}

}  // namespace looplynx::host
