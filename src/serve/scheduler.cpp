#include "serve/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace looplynx::serve {

BatchPolicy parse_batch_policy(const std::string& name) {
  if (name == "prefill") return BatchPolicy::kPrefillPriority;
  if (name == "decode") return BatchPolicy::kDecodePriority;
  if (name == "chunked") return BatchPolicy::kChunkedMixed;
  throw std::invalid_argument("unknown batch policy \"" + name +
                              "\" (expected prefill|decode|chunked)");
}

const char* batch_policy_name(BatchPolicy policy) {
  switch (policy) {
    case BatchPolicy::kPrefillPriority:
      return "prefill-priority";
    case BatchPolicy::kDecodePriority:
      return "decode-priority";
    case BatchPolicy::kChunkedMixed:
      return "chunked-mixed";
  }
  return "unknown";
}

PreemptPolicy parse_preempt_policy(const std::string& name) {
  if (name == "none") return PreemptPolicy::kNone;
  if (name == "recompute") return PreemptPolicy::kRecomputeYoungest;
  if (name == "cost-aware") return PreemptPolicy::kRecomputeCostAware;
  throw std::invalid_argument("unknown preempt policy \"" + name +
                              "\" (expected none|recompute|cost-aware)");
}

const char* preempt_policy_name(PreemptPolicy policy) {
  switch (policy) {
    case PreemptPolicy::kNone:
      return "none";
    case PreemptPolicy::kRecomputeYoungest:
      return "recompute-youngest";
    case PreemptPolicy::kRecomputeCostAware:
      return "recompute-cost-aware";
  }
  return "unknown";
}

std::vector<ScheduledStep> Scheduler::select(
    std::vector<Request*>& runnable) const {
  std::vector<ScheduledStep> batch;
  if (runnable.empty()) return batch;
  batch.reserve(std::min<std::size_t>(runnable.size(), config_.max_batch));

  const std::uint32_t whole_budget =
      config_.max_tokens_per_iter == 0
          ? std::numeric_limits<std::uint32_t>::max()
          : config_.max_tokens_per_iter;
  std::uint32_t tokens_left = whole_budget;
  const auto full = [&] { return batch.size() >= config_.max_batch; };

  if (config_.policy == BatchPolicy::kChunkedMixed) {
    // Decodes first, one budget token each; then prefill chunks split the
    // leftover budget. A chunk never exceeds the remaining budget, so a
    // long prompt spreads across iterations while decodes keep flowing
    // every iteration. Among prefills, *partially prefilled* prompts go
    // before fresh ones (FIFO within each subclass): a mid-chunk prompt
    // re-queued at the back of runnable would otherwise be overtaken by
    // younger prompts, interleaving chunks across all waiting prompts and
    // ballooning every TTFT toward the sum of all prefills — while each
    // mid-chunk prompt pins its full KV reservation the whole time.
    for (Request* r : runnable) {
      if (full() || tokens_left == 0) break;
      if (!r->prefilled()) continue;
      batch.push_back({r, 0});
      --tokens_left;
    }
    for (const bool want_started : {true, false}) {
      for (Request* r : runnable) {
        if (full() || tokens_left == 0) break;
        if (r->prefilled() || (r->prompt_done > 0) != want_started) continue;
        const std::uint32_t chunk =
            std::min(tokens_left, r->prompt_remaining());
        batch.push_back({r, chunk});
        tokens_left -= chunk;
      }
    }
  } else {
    const bool prefill_first =
        config_.policy == BatchPolicy::kPrefillPriority;
    // Two passes over the FIFO-ordered runnable list: the priority class
    // first, then the other class into the remaining slots. Prompts run
    // whole under these policies; the token budget only bounds how many
    // members fit.
    bool prefill_selected = false;
    for (const int pass : {0, 1}) {
      const bool want_prefill = (pass == 0) == prefill_first;
      for (Request* r : runnable) {
        if (full()) break;
        if (r->prefilled() == want_prefill) continue;
        const std::uint32_t need = want_prefill ? r->prompt_remaining() : 1;
        if (need > tokens_left) {
          if (!want_prefill) break;  // every decode costs 1: none fit now
          // The FIFO-head prompt doesn't fit this iteration. If it can
          // *never* fit (larger than the whole budget), run it now — over
          // budget, but without other prompt work — rather than starve
          // it. Otherwise stop the prefill pass: blocked prefills admit
          // no new decode streams, so running decodes drain until the
          // prompt fits, and younger prompts must not overtake it.
          if (need > whole_budget && !prefill_selected) {
            batch.push_back({r, need});
            tokens_left = 0;
            prefill_selected = true;
          }
          break;
        }
        batch.push_back({r, want_prefill ? need : 0});
        prefill_selected |= want_prefill;
        tokens_left -= need;
      }
    }
  }

  std::erase_if(runnable, [&](Request* r) {
    return std::any_of(batch.begin(), batch.end(), [&](const ScheduledStep& s) {
      return s.request == r;
    });
  });
  return batch;
}

double Scheduler::mean_batch_size() const {
  if (iterations_.empty()) return 0.0;
  double acc = 0.0;
  for (const IterationRecord& it : iterations_) acc += it.batch_size();
  return acc / static_cast<double>(iterations_.size());
}

}  // namespace looplynx::serve
