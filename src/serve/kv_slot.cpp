#include "serve/kv_slot.hpp"

#include <algorithm>

namespace looplynx::serve {

namespace {
/// HBM2 pseudo-channel capacity on the Alveo U50 (8 GiB / 32 channels).
constexpr std::uint64_t kBytesPerPseudoChannel = 256ULL << 20;
}  // namespace

KvSlotManager::KvSlotManager(const core::ArchConfig& arch,
                             const model::ModelConfig& model,
                             std::uint64_t budget_bytes_per_node) {
  const std::uint32_t heads_per_node =
      std::max<std::uint32_t>(1, model.n_head / arch.num_nodes);
  // K and V, int8, every layer, this node's heads.
  bytes_per_token_ = 2ULL * model.n_layer * heads_per_node * model.head_dim();
  const std::uint64_t budget =
      budget_bytes_per_node != 0
          ? budget_bytes_per_node
          : static_cast<std::uint64_t>(arch.kv_channels) *
                kBytesPerPseudoChannel;
  capacity_tokens_ = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(budget / bytes_per_token_, UINT32_MAX));
}

bool KvSlotManager::try_reserve(std::uint32_t tokens) {
  if (tokens > free_tokens()) {
    ++stall_events_;
    return false;
  }
  used_tokens_ += tokens;
  peak_used_tokens_ = std::max(peak_used_tokens_, used_tokens_);
  return true;
}

void KvSlotManager::release(std::uint32_t tokens) {
  // Releasing more than is reserved would underflow used_tokens_ and make
  // free_tokens() wrap to ~4 billion, silently disabling admission
  // backpressure. Clamp to the reserved amount and count the event so the
  // accounting bug is observable instead of corrupting the fleet.
  if (tokens > used_tokens_) {
    ++over_release_events_;
    tokens = used_tokens_;
  }
  used_tokens_ -= tokens;
}

}  // namespace looplynx::serve
