#include "hw/dma.hpp"

namespace looplynx::hw {

sim::Task DmaEngine::stream_blocks(std::uint64_t total_bytes,
                                   std::uint32_t num_blocks,
                                   sim::Fifo<DmaBlock>& out) {
  if (total_bytes == 0 || num_blocks == 0) co_return;
  const std::uint64_t base = total_bytes / num_blocks;
  std::uint64_t remainder = total_bytes % num_blocks;
  for (std::uint32_t b = 0; b < num_blocks; ++b) {
    std::uint64_t bytes = base + (b < remainder ? 1 : 0);
    co_await channel_->read(bytes);
    total_bytes_ += bytes;
    co_await out.put(DmaBlock{bytes, b, b + 1 == num_blocks});
  }
}

}  // namespace looplynx::hw
