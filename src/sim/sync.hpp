// Synchronization primitives for simulated processes: Mutex (exclusive
// hardware resources such as an HBM channel port), Semaphore (pooled
// resources), Barrier (multi-node synchronization points) and Signal
// (one-shot broadcast events).
//
// All primitives use direct hand-off: ownership passes to the oldest waiter
// at release time, so arrival order — not wake-up scheduling — decides who
// acquires next. This keeps simulations deterministic.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <vector>

#include "sim/engine.hpp"

namespace looplynx::sim {

/// Exclusive-ownership lock.
class Mutex {
 public:
  explicit Mutex(Engine& engine) : engine_(&engine) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  struct LockAwaiter {
    Mutex* mutex;
    bool await_ready() {
      if (!mutex->locked_) {
        mutex->locked_ = true;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      mutex->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// co_await mutex.lock(); ... mutex.unlock();
  LockAwaiter lock() { return LockAwaiter{this}; }

  void unlock() {
    assert(locked_ && "unlock of an unlocked Mutex");
    if (waiters_.empty()) {
      locked_ = false;
      return;
    }
    // Hand the lock directly to the oldest waiter (stays locked).
    std::coroutine_handle<> next = waiters_.front();
    waiters_.pop_front();
    engine_->schedule(0, next);
  }

  bool locked() const noexcept { return locked_; }
  std::size_t waiters() const noexcept { return waiters_.size(); }

 private:
  Engine* engine_;
  bool locked_ = false;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Counting semaphore.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::size_t initial)
      : engine_(&engine), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  struct AcquireAwaiter {
    Semaphore* sem;
    bool await_ready() {
      if (sem->count_ > 0) {
        --sem->count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      sem->waiters_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  AcquireAwaiter acquire() { return AcquireAwaiter{this}; }

  void release() {
    if (!waiters_.empty()) {
      // The released unit passes directly to the oldest waiter.
      std::coroutine_handle<> next = waiters_.front();
      waiters_.pop_front();
      engine_->schedule(0, next);
      return;
    }
    ++count_;
  }

  std::size_t available() const noexcept { return count_; }
  std::size_t waiters() const noexcept { return waiters_.size(); }

 private:
  Engine* engine_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Reusable barrier for a fixed participant count (generation-based, so it
/// can be reused round after round — e.g. ring synchronization rounds).
class Barrier {
 public:
  Barrier(Engine& engine, std::size_t participants)
      : engine_(&engine), participants_(participants) {
    assert(participants_ >= 1);
  }
  Barrier(const Barrier&) = delete;
  Barrier& operator=(const Barrier&) = delete;

  struct WaitAwaiter {
    Barrier* barrier;
    bool await_ready() {
      if (barrier->arrived_ + 1 == barrier->participants_) {
        // Last arrival releases everyone and passes through.
        barrier->arrived_ = 0;
        for (std::coroutine_handle<> h : barrier->waiting_) {
          barrier->engine_->schedule(0, h);
        }
        barrier->waiting_.clear();
        ++barrier->generation_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      ++barrier->arrived_;
      barrier->waiting_.push_back(h);
    }
    void await_resume() const noexcept {}
  };

  /// co_await barrier.arrive_and_wait();
  WaitAwaiter arrive_and_wait() { return WaitAwaiter{this}; }

  std::uint64_t generation() const noexcept { return generation_; }

 private:
  Engine* engine_;
  std::size_t participants_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::vector<std::coroutine_handle<>> waiting_;
};

/// Countdown latch for fork/join of concurrently spawned sub-processes:
/// spawn N tasks that each call count_down() when finished; the joiner
/// co_awaits wait(). Single-use.
///
/// The first waiter parks in an inline slot — the overwhelmingly common
/// single-joiner case (one latch per scheduler iteration, the scheduler its
/// only waiter) then never touches the heap. Extra waiters overflow into a
/// vector; release order stays arrival order either way.
class CountdownLatch {
 public:
  CountdownLatch(Engine& engine, std::size_t count)
      : engine_(&engine), remaining_(count) {}
  CountdownLatch(const CountdownLatch&) = delete;
  CountdownLatch& operator=(const CountdownLatch&) = delete;

  void count_down() {
    assert(remaining_ > 0 && "count_down past zero");
    if (--remaining_ == 0) {
      if (first_waiter_) {
        engine_->schedule(0, first_waiter_);
        first_waiter_ = nullptr;
      }
      for (std::coroutine_handle<> h : overflow_waiters_) {
        engine_->schedule(0, h);
      }
      overflow_waiters_.clear();
    }
  }

  struct WaitAwaiter {
    CountdownLatch* latch;
    bool await_ready() const noexcept { return latch->remaining_ == 0; }
    void await_suspend(std::coroutine_handle<> h) {
      if (!latch->first_waiter_) {
        latch->first_waiter_ = h;
      } else {
        latch->overflow_waiters_.push_back(h);
      }
    }
    void await_resume() const noexcept {}
  };

  WaitAwaiter wait() { return WaitAwaiter{this}; }
  std::size_t remaining() const noexcept { return remaining_; }

 private:
  Engine* engine_;
  std::size_t remaining_;
  std::coroutine_handle<> first_waiter_ = nullptr;
  std::vector<std::coroutine_handle<>> overflow_waiters_;
};

/// Runs `task` then counts down `latch` — the fork half of fork/join.
/// Spawn the result as an engine root.
inline Task run_then_count_down(Task task, CountdownLatch& latch) {
  co_await task;
  latch.count_down();
}

/// One-shot broadcast event. wait() suspends until set() is called; waits
/// after set() complete immediately. reset() re-arms the signal.
///
/// Waiters are *scheduled*, never resumed synchronously: set() enqueues
/// each waiter through the engine's event queue, so the object a waiter was
/// parked on may be destroyed as soon as set() returns (the serve arena
/// recycles request slots on exactly this guarantee). The first waiter
/// parks inline — a request's grant/done signals have at most one waiter,
/// so steady-state request recycling never touches the heap; extra waiters
/// overflow into a vector, and release order stays arrival order.
class Signal {
 public:
  explicit Signal(Engine& engine) : engine_(&engine) {}
  Signal(const Signal&) = delete;
  Signal& operator=(const Signal&) = delete;

  struct WaitAwaiter {
    Signal* signal;
    bool await_ready() const noexcept { return signal->set_; }
    void await_suspend(std::coroutine_handle<> h) {
      if (!signal->first_waiter_) {
        signal->first_waiter_ = h;
      } else {
        signal->overflow_waiters_.push_back(h);
      }
    }
    void await_resume() const noexcept {}
  };

  WaitAwaiter wait() { return WaitAwaiter{this}; }

  void set() {
    if (set_) return;
    set_ = true;
    if (first_waiter_) {
      engine_->schedule(0, first_waiter_);
      first_waiter_ = nullptr;
    }
    for (std::coroutine_handle<> h : overflow_waiters_) {
      engine_->schedule(0, h);
    }
    overflow_waiters_.clear();
  }

  void reset() noexcept { set_ = false; }
  bool is_set() const noexcept { return set_; }

 private:
  Engine* engine_;
  bool set_ = false;
  std::coroutine_handle<> first_waiter_ = nullptr;
  std::vector<std::coroutine_handle<>> overflow_waiters_;
};

}  // namespace looplynx::sim
