// Unit tests for the content-addressed prefix cache (serve/kv_block.hpp):
// hash-chain reuse across requests, copy-on-write divergence, refcounted
// frees, the swap-vs-recompute pricing decision, and cache-on end-to-end
// determinism. The engine-level invariants (drain leaves blocks-in-use at
// zero across the whole scheduler matrix) live in
// test_serve_invariants.cpp; these tests drive PrefixCache directly so a
// failure points at the cache, not the scheduler.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/arch_config.hpp"
#include "core/step_cost.hpp"
#include "model/config.hpp"
#include "serve/kv_block.hpp"
#include "serve/serving_sim.hpp"
#include "serve/traffic.hpp"
#include "workload/scenario.hpp"

namespace looplynx::serve {
namespace {

constexpr std::uint32_t kBlockTokens = 8;

/// A prompt whose first `shared` tokens carry seed-keyed content (the
/// shareable prefix) and whose remainder is request-unique.
workload::Scenario shared_prefix_scenario(std::uint32_t shared,
                                          std::uint32_t prefill,
                                          std::uint32_t decode,
                                          std::uint64_t content_seed) {
  workload::Scenario s = workload::make_scenario(prefill, decode);
  s.prompt_segments.push_back({content_seed, shared});
  return s;
}

class PrefixCacheTest : public ::testing::Test {
 protected:
  PrefixCacheTest()
      : arch_(core::ArchConfig::one_node()),
        model_(model::cosim_config()),
        costs_(arch_, model_, 16),
        kv_(arch_, model_, /*budget=*/64 * model_bytes_per_token(),
            kBlockTokens),
        cache_(kv_, costs_, /*swap_enabled=*/false) {}

  std::uint64_t model_bytes_per_token() {
    return KvBlockManager(arch_, model::cosim_config(), 1)
        .bytes_per_token_per_node();
  }

  /// Admits + fully prefills `scenario` for request `id`: grows a private
  /// list over the uncached positions, then commits every full prompt
  /// block, mirroring the replica's admission/prefill sequence.
  PrefixHit run_prefill(const workload::Scenario& scenario, std::uint64_t id,
                        KvBlockList& list, CacheBinding& binding,
                        PrefixCache* cache = nullptr) {
    PrefixCache& c = cache != nullptr ? *cache : cache_;
    const PrefixHit hit = c.acquire(scenario, id, scenario.prefill,
                                    scenario.prefill, binding);
    const std::uint32_t priv = scenario.prefill - binding.owned_tokens;
    EXPECT_TRUE(kv_.try_grow(list, priv));
    c.commit(scenario, id, scenario.prefill, scenario.prefill, list, binding);
    return hit;
  }

  core::ArchConfig arch_;
  model::ModelConfig model_;
  core::StepCostModel costs_;
  KvBlockManager kv_;
  PrefixCache cache_;
};

// ---------------------------------------------------------------------------
// Hash-chain reuse
// ---------------------------------------------------------------------------

TEST_F(PrefixCacheTest, SecondRequestReusesCommittedChain) {
  const workload::Scenario s =
      shared_prefix_scenario(32, 40, 8, /*content_seed=*/42);

  KvBlockList l1;
  CacheBinding b1;
  const PrefixHit miss = run_prefill(s, /*id=*/1, l1, b1);
  EXPECT_EQ(miss.cached_tokens, 0u);
  // 32 shared + 8 unique tokens = 5 full blocks committed (the whole
  // prompt is block-aligned), all transferred out of the private list.
  EXPECT_EQ(b1.chain.size(), 5u);
  EXPECT_EQ(l1.blocks, 0u);

  // Same shared content, different request: the 32 shared tokens hit; the
  // chain breaks at the first unique block.
  KvBlockList l2;
  CacheBinding b2;
  const PrefixHit hit = run_prefill(s, /*id=*/2, l2, b2);
  EXPECT_EQ(hit.chain_blocks, 4u);
  EXPECT_EQ(hit.cached_tokens, 4u * kBlockTokens);
  EXPECT_FALSE(hit.cow);

  const std::uint32_t used_before = kv_.used_blocks();
  cache_.release(b1);
  cache_.release(b2);
  // Releases drop references only — cached-idle blocks stay resident.
  EXPECT_EQ(kv_.used_blocks(), used_before);
  cache_.drain();
  EXPECT_EQ(kv_.used_blocks(), 0u);
}

TEST_F(PrefixCacheTest, LookupNeverCoversWholePrefillTarget) {
  // Prompt == prefill target and fully block-aligned: the final block
  // must not be taken even though it is cached (at least one token is
  // always prefilled).
  const workload::Scenario s =
      shared_prefix_scenario(32, 32, 8, /*content_seed=*/5);
  KvBlockList l1;
  CacheBinding b1;
  run_prefill(s, 1, l1, b1);

  CacheBinding b2;
  const PrefixHit hit = cache_.acquire(s, 2, s.prefill, s.prefill, b2);
  EXPECT_EQ(hit.chain_blocks, 3u);  // 4 cached, max coverage 31 tokens
  EXPECT_EQ(hit.cached_tokens, 3u * kBlockTokens);
  cache_.release(b2);
  cache_.release(b1);
  cache_.drain();
}

TEST_F(PrefixCacheTest, DifferentContentNeverHits) {
  const workload::Scenario a =
      shared_prefix_scenario(32, 40, 8, /*content_seed=*/1);
  const workload::Scenario b =
      shared_prefix_scenario(32, 40, 8, /*content_seed=*/2);
  KvBlockList l1;
  CacheBinding b1;
  run_prefill(a, 1, l1, b1);

  CacheBinding b2;
  const PrefixHit hit = cache_.acquire(b, 2, b.prefill, b.prefill, b2);
  EXPECT_EQ(hit.cached_tokens, 0u);
  cache_.release(b2);
  cache_.release(b1);
  cache_.drain();
}

// ---------------------------------------------------------------------------
// Copy-on-write divergence
// ---------------------------------------------------------------------------

TEST_F(PrefixCacheTest, PartialTailResolvesAsCopyOnWrite) {
  // 36 shared tokens = 4 full blocks + a 4-token partial tail. The first
  // request registers the tail as a CoW source once fully prefilled; a
  // second request extending the same 36-token prefix gets the 4 tail
  // tokens as a copy-on-write credit on top of the 4-block chain hit.
  const workload::Scenario first =
      shared_prefix_scenario(36, 36, 8, /*content_seed=*/9);
  const workload::Scenario second =
      shared_prefix_scenario(36, 48, 8, /*content_seed=*/9);

  KvBlockList l1;
  CacheBinding b1;
  run_prefill(first, 1, l1, b1);
  EXPECT_TRUE(b1.partial_registered);

  KvBlockList l2;
  CacheBinding b2;
  const PrefixHit hit = cache_.acquire(second, 2, second.prefill,
                                       second.prefill, b2);
  EXPECT_TRUE(hit.cow);
  EXPECT_EQ(hit.chain_blocks, 4u);
  EXPECT_EQ(hit.cached_tokens, 36u);  // 32 chained + 4 copy-on-write

  // The CoW source is only valid while the owner holds the physical
  // block: releasing the first request withdraws the registration, so a
  // third request gets the chain hit but no tail credit.
  cache_.release(b2);
  cache_.release(b1);
  CacheBinding b3;
  const PrefixHit later = cache_.acquire(second, 3, second.prefill,
                                         second.prefill, b3);
  EXPECT_FALSE(later.cow);
  EXPECT_EQ(later.cached_tokens, 32u);
  cache_.release(b3);
  cache_.drain();
}

// ---------------------------------------------------------------------------
// Refcounted frees + reclaim tiers
// ---------------------------------------------------------------------------

TEST_F(PrefixCacheTest, ReclaimSkipsReferencedBlocksAndFreesIdleLeaves) {
  const workload::Scenario s =
      shared_prefix_scenario(32, 32, 8, /*content_seed=*/3);
  KvBlockList l1;
  CacheBinding b1;
  run_prefill(s, 1, l1, b1);  // 4 blocks cached, all referenced by b1

  // Every block is referenced: nothing is reclaimable.
  EXPECT_EQ(cache_.reclaim(4), 0u);

  cache_.release(b1);
  // Now the whole chain is cached-idle; reclaim unwinds it leaf-first.
  const std::uint32_t used = kv_.used_blocks();
  EXPECT_EQ(cache_.reclaim(2), 2u);
  EXPECT_EQ(kv_.used_blocks(), used - 2);
  EXPECT_EQ(cache_.evict_blocks(), 2u);
  EXPECT_EQ(cache_.reclaim(99), 2u);  // only 2 left
  EXPECT_EQ(kv_.used_blocks(), 0u);
  cache_.drain();
}

TEST_F(PrefixCacheTest, DrainThrowsOnLiveReferences) {
  const workload::Scenario s =
      shared_prefix_scenario(16, 16, 8, /*content_seed=*/4);
  KvBlockList l1;
  CacheBinding b1;
  run_prefill(s, 1, l1, b1);
  EXPECT_THROW(cache_.drain(), std::logic_error);
  cache_.release(b1);
  cache_.drain();
}

TEST_F(PrefixCacheTest, ConcurrentIdenticalCommitDedups) {
  // Two requests prefill the same content before either sees the other's
  // blocks: the second commit must dedup (drop its duplicate block and
  // share the first one) instead of double-counting pool blocks.
  const workload::Scenario s =
      shared_prefix_scenario(16, 16, 8, /*content_seed=*/6);
  CacheBinding b1, b2;
  KvBlockList l1, l2;
  ASSERT_EQ(cache_.acquire(s, 1, s.prefill, s.prefill, b1).cached_tokens, 0u);
  ASSERT_EQ(cache_.acquire(s, 2, s.prefill, s.prefill, b2).cached_tokens, 0u);
  ASSERT_TRUE(kv_.try_grow(l1, s.prefill));
  ASSERT_TRUE(kv_.try_grow(l2, s.prefill));
  const std::uint32_t used_peak = kv_.used_blocks();
  cache_.commit(s, 1, s.prefill, s.prefill, l1, b1);
  cache_.commit(s, 2, s.prefill, s.prefill, l2, b2);
  EXPECT_EQ(cache_.dedup_blocks(), 2u);  // both full blocks shared
  // The duplicate allocation went back to the pool at commit time.
  EXPECT_EQ(kv_.used_blocks(), used_peak - 2);
  EXPECT_EQ(b1.chain, b2.chain);
  cache_.release(b1);
  cache_.release(b2);
  cache_.drain();
  EXPECT_EQ(kv_.used_blocks(), 0u);
  EXPECT_EQ(kv_.over_release_events(), 0u);
}

// ---------------------------------------------------------------------------
// Swap-vs-recompute pricing
// ---------------------------------------------------------------------------

TEST_F(PrefixCacheTest, SwapTierKeepsExpensiveBlocksAndDropsCheapOnes) {
  PrefixCache swap_cache(kv_, costs_, /*swap_enabled=*/true);
  const workload::Scenario s =
      shared_prefix_scenario(32, 32, 8, /*content_seed=*/8);
  KvBlockList l1;
  CacheBinding b1;
  run_prefill(s, 1, l1, b1, &swap_cache);
  swap_cache.release(b1);

  // The pricing rule itself: a block is swapped out instead of discarded
  // exactly when the round-trip DMA costs less than rebuilding it.
  const sim::Cycles transfer = swap_cache.swap_transfer_cycles();
  std::uint32_t expect_swapped = 0, expect_evicted = 0;
  for (std::uint32_t depth = 0; depth < 4; ++depth) {
    if (2 * transfer < swap_cache.rebuild_cycles(depth)) {
      ++expect_swapped;
    } else {
      ++expect_evicted;
    }
  }
  EXPECT_EQ(swap_cache.reclaim(4), 4u);
  EXPECT_EQ(swap_cache.swap_out_blocks(), expect_swapped);
  EXPECT_EQ(swap_cache.evict_blocks(), expect_evicted);
  EXPECT_EQ(kv_.used_blocks(), 0u);  // both tiers free the pool block

  if (expect_swapped > 0) {
    // Swap cycles accrue in the ledger until the scheduler drains them.
    EXPECT_GT(swap_cache.take_pending_swap_cycles(), 0);
    EXPECT_EQ(swap_cache.take_pending_swap_cycles(), 0);
  }
  swap_cache.drain();
}

TEST_F(PrefixCacheTest, SwappedBlocksRestoreOnTheNextHit) {
  PrefixCache swap_cache(kv_, costs_, /*swap_enabled=*/true);
  // Deep prompt so the per-block rebuild price clears the DMA round-trip
  // (attention makes late blocks expensive).
  const workload::Scenario s =
      shared_prefix_scenario(64, 64, 8, /*content_seed=*/11);
  KvBlockList l1;
  CacheBinding b1;
  run_prefill(s, 1, l1, b1, &swap_cache);
  swap_cache.release(b1);
  swap_cache.reclaim(8);
  const std::uint64_t swapped = swap_cache.swap_out_blocks();
  ASSERT_GT(swapped, 0u);

  CacheBinding b2;
  const PrefixHit hit = swap_cache.acquire(s, 2, s.prefill, s.prefill, b2);
  EXPECT_GT(hit.swapped_in, 0u);
  EXPECT_EQ(swap_cache.swap_in_blocks(), hit.swapped_in);
  // Restored blocks are resident and referenced again.
  EXPECT_EQ(hit.chain_blocks * kBlockTokens, hit.cached_tokens);
  swap_cache.release(b2);
  swap_cache.drain();
  EXPECT_EQ(kv_.used_blocks(), 0u);
}

// ---------------------------------------------------------------------------
// Cache-on end-to-end determinism
// ---------------------------------------------------------------------------

TEST(PrefixCacheDeterminism, CacheOnRunTwiceIsIdentical) {
  ServingConfig cfg;
  cfg.arch = core::ArchConfig::one_node();
  cfg.model = model::cosim_config();
  cfg.model.max_seq_len = 256;
  cfg.cost_probe_stride = 16;
  ChatTrafficConfig chat;
  chat.conversations = 3;
  chat.turns = 3;
  chat.system_prompt_tokens = 24;
  chat.user_turn_tokens = 8;
  chat.reply_tokens = 8;
  cfg.traffic.scripted_shapes = chat_turn_shapes(chat);
  cfg.traffic.num_requests =
      static_cast<std::uint32_t>(cfg.traffic.scripted_shapes.size());
  cfg.traffic.arrival_rate_per_s = 900.0;
  cfg.traffic.seed = 17;
  cfg.scheduler.max_batch = 4;
  cfg.scheduler.policy = BatchPolicy::kChunkedMixed;
  cfg.scheduler.max_tokens_per_iter = 16;
  cfg.scheduler.preempt = PreemptPolicy::kRecomputeCostAware;
  cfg.kv_block_tokens = 4;
  KvBlockManager probe(cfg.arch, cfg.model, 1);
  cfg.kv_budget_bytes_per_node = 96 * probe.bytes_per_token_per_node();
  cfg.prefix_cache = true;
  cfg.kv_swap = true;
  cfg.keep_request_records = true;

  const FleetMetrics a = ServingSim(cfg).run();
  const FleetMetrics b = ServingSim(cfg).run();
  EXPECT_GT(a.cache_hit_tokens, 0u);  // non-vacuous
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.cache_hit_tokens, b.cache_hit_tokens);
  EXPECT_EQ(a.cache_insert_blocks, b.cache_insert_blocks);
  EXPECT_EQ(a.cache_evict_blocks, b.cache_evict_blocks);
  EXPECT_EQ(a.cache_swap_out_blocks, b.cache_swap_out_blocks);
  EXPECT_EQ(a.saved_prefill_cycles, b.saved_prefill_cycles);
  EXPECT_EQ(a.prefill_cycles, b.prefill_cycles);
  EXPECT_EQ(a.kv_blocks_in_use_at_end, 0u);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].cached_prefix_tokens,
              b.requests[i].cached_prefix_tokens);
    EXPECT_DOUBLE_EQ(a.requests[i].e2e_ms, b.requests[i].e2e_ms);
  }
}

/// kv_swap without prefix_cache is a configuration error, not a silent
/// no-op.
TEST(PrefixCacheDeterminism, KvSwapRequiresPrefixCache) {
  ServingConfig cfg;
  cfg.arch = core::ArchConfig::one_node();
  cfg.model = model::cosim_config();
  cfg.kv_swap = true;
  EXPECT_THROW(ServingSim sim(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace looplynx::serve
