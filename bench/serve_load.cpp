// Latency under load: sweeps arrival rate x max batch size for several
// traffic mixes on the continuous-batching serving engine, reporting
// throughput, goodput and tail latency. This is the scenario family the
// paper's Fig. 8 single-request sweep cannot express: an open arrival
// process, interleaved prefill/decode, KV backpressure — and, with the
// paged-KV flags, block-granular allocation with scheduler-driven
// preemption instead of whole-footprint reservation. With --replicas >= 2
// every sweep point becomes a multi-deployment fleet: N copies of the
// deployment behind a --balancer, fed by the same arrival stream.
//
//   ./serve_load [--nodes=2] [--model=gpt2-medium] [--requests=64]
//                [--seed=1] [--stride=64]
//                [--policy=prefill|decode|chunked] [--chunk-tokens=0]
//                [--preempt=none|recompute|cost-aware] [--kv-block-tokens=1]
//                [--kv-budget-mb=0] [--prefix-cache] [--kv-swap]
//                [--replicas=1] [--balancer=rr|jsq|kv]
//                [--roles=prefill,decode,...] [--kv-link-gbps=100]
//                [--autoscale=queue|slo|hybrid] [--min-replicas=N[,N...]]
//                [--max-replicas=N[,N...]] [--scale-interval-ms=50]
//                [--trace-out=PATH] [--metrics-out=PATH]
//
// --chunk-tokens=N sets the per-iteration token budget (requires
// --policy=chunked; the policy defaults it to 64). --preempt=recompute
// admits on prompt blocks only and preempts the youngest request when
// decode growth drains the pool; --kv-block-tokens sets the paging
// granularity (1 = token-granular legacy accounting); --kv-budget-mb
// overrides the per-node KV HBM budget (0 = architecture default) so a
// sweep can actually exercise block pressure. --replicas=N shards each
// sweep point across N identical replicas routed by --balancer
// (round-robin, join-shortest-queue, or KV-aware; requires --replicas>=2).
// --prefix-cache turns on content-addressed prefix caching: full prompt
// blocks are published into a hash-chained shared cache at prefill commit
// and later requests with an identical prompt prefix skip the cached
// tokens at admission (the table grows hit-rate / saved-prefill columns);
// --kv-swap adds the swap-to-host eviction tier on top. --autoscale=P
// replaces the fixed width with a deterministic control
// loop that grows/shrinks the live replica set between --min-replicas and
// --max-replicas every --scale-interval-ms (policies: queue depth, SLO
// p99 TTFT, or hybrid); the table then adds mean-live / replica-seconds /
// scale-event columns — the cost side of the elasticity tradeoff.
// When the paging/fleet/autoscale flags are at their defaults the table
// is byte-identical to the pre-paging/pre-fleet output; otherwise it
// grows peak-in-flight / preemption and imbalance / TTFT-spread columns.
//
// Output is deterministic: two runs with identical flags produce
// byte-identical tables (seeded traffic + deterministic engine +
// index-ordered balancer tie-breaks).
#include <cstdint>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "core/arch_config.hpp"
#include "core/step_cost.hpp"
#include "serve/cli_flags.hpp"
#include "serve/fleet.hpp"
#include "serve/observe.hpp"
#include "serve/serving_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "workload/mix.hpp"

namespace {

void print_usage() {
  std::cout <<
      "serve_load: latency-under-load sweep (rate x batch x mix) on the\n"
      "continuous-batching serving engine.\n"
      "\n"
      "  --nodes=N            accelerator nodes per replica (default 2)\n"
      "  --model=NAME         gpt2-small|gpt2-medium|gpt2-xl (default "
      "gpt2-medium)\n"
      "  --requests=N         requests per sweep point (default 64)\n"
      "  --seed=N             traffic seed (default 1)\n"
      "  --stride=N           step-cost probe stride (default 64)\n"
      "  --policy=P           prefill|decode|chunked (default prefill)\n"
      "  --chunk-tokens=N     per-iteration token budget; requires\n"
      "                       --policy=chunked (chunked defaults to 64)\n"
      "  --preempt=P          none|recompute|cost-aware (default none)\n"
      "  --kv-block-tokens=N  KV paging granularity, >= 1 (default 1)\n"
      "  --kv-budget-mb=N     per-node KV HBM budget override (default 0 =\n"
      "                       architecture default)\n"
      "  --prefix-cache[=B]   content-addressed prefix caching (bare = on;\n"
      "                       =off spells the byte-identical default)\n"
      "  --kv-swap            swap-to-host eviction tier; requires\n"
      "                       --prefix-cache\n"
      "  --replicas=N         fleet width, >= 1 (default 1 = single "
      "replica)\n"
      "  --balancer=B         rr|jsq|kv; requires --replicas >= 2 or "
      "--autoscale\n"
      "  --roles=R,R,...      per-replica roles (general|prefill|decode):\n"
      "                       disaggregated fleet — prefill replicas ship\n"
      "                       finished prompts' KV to decode replicas over\n"
      "                       a ring fabric; requires --replicas >= 2 with\n"
      "                       a matching role count, or --autoscale (the\n"
      "                       role list then sizes the pool and each role\n"
      "                       tier scales independently)\n"
      "  --kv-link-gbps=G     KV-migration link rate in GB/s, > 0 (default\n"
      "                       100); requires --roles\n"
      "  --autoscale=P        queue|slo|hybrid (bare = hybrid): autoscale\n"
      "                       the fleet between --min-replicas and\n"
      "                       --max-replicas; conflicts with --replicas\n"
      "  --min-replicas=N[,N...]  autoscale floor, >= 1 (default 1); with\n"
      "                       --roles a comma list names one floor per\n"
      "                       tier (distinct roles in order)\n"
      "  --max-replicas=N[,N...]  autoscale ceiling, >= min (default 4);\n"
      "                       with --roles a comma list names one ceiling\n"
      "                       per tier, each equal to its tier's pool\n"
      "  --scale-interval-ms=T  control-loop period in ms, > 0 (default "
      "50)\n"
      "  --trace-out=PATH     write a Chrome/Perfetto trace-event JSON of\n"
      "                       the final sweep point (every point is still\n"
      "                       observed, so the tiling invariant is checked\n"
      "                       across the whole grid)\n"
      "  --metrics-out=PATH   write a Prometheus text exposition of the\n"
      "                       final sweep point\n"
      "  --help               this text\n"
      "\n"
      "Flags accept --key=value and --key value forms. Defaults reproduce\n"
      "the pre-fleet, pre-paging sweep byte for byte.\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  if (cli.has("help")) {
    print_usage();
    return 0;
  }
  const auto nodes = static_cast<std::uint32_t>(cli.get_int_or("nodes", 2));
  const auto requests =
      static_cast<std::uint32_t>(cli.get_int_or("requests", 64));
  const auto seed = static_cast<std::uint64_t>(cli.get_int_or("seed", 1));
  const auto stride =
      static_cast<std::uint32_t>(cli.get_int_or("stride", 64));
  const serve::SchedulerCliOptions opts = serve::parse_scheduler_cli(cli);
  const long long kv_budget_mb_raw = cli.get_int_or("kv-budget-mb", 0);
  if (kv_budget_mb_raw < 0) {
    throw std::invalid_argument(
        "--kv-budget-mb must be >= 0 (0 = architecture default)");
  }
  const auto kv_budget_mb = static_cast<std::uint64_t>(kv_budget_mb_raw);

  const core::ArchConfig arch = core::ArchConfig::nodes(nodes);
  const model::ModelConfig model = bench::model_from_cli(cli);

  // One cost probe shared by every sweep point (same arch + model).
  const core::StepCostModel costs(arch, model, stride);

  const std::vector<workload::Mix> mixes = {workload::chatbot_mix(),
                                            workload::codegen_mix(),
                                            workload::summarization_mix(),
                                            workload::mixed_fleet()};
  const std::vector<double> rates = {1.0, 2.0, 4.0, 8.0};
  const std::vector<std::uint32_t> batches = {1, 4, 8, 16};

  std::string title = "Serving under load: " + model.name + ", " +
                      std::to_string(nodes) + "-node, " +
                      std::to_string(requests) + " requests/point, " +
                      serve::batch_policy_name(opts.policy) +
                      ", chunk-tokens " + std::to_string(opts.chunk_tokens);
  if (opts.paged()) {
    title += ", preempt " +
             std::string(serve::preempt_policy_name(opts.preempt)) +
             ", kv-block " + std::to_string(opts.kv_block_tokens);
  }
  if (kv_budget_mb > 0) {
    title += ", kv-budget " + std::to_string(kv_budget_mb) + " MiB";
  }
  if (opts.cached()) {
    title += opts.kv_swap ? ", prefix-cache+swap" : ", prefix-cache";
  }
  if (opts.fleet()) {
    if (opts.autoscale.enabled) {
      title += ", autoscale " +
               std::string(serve::scale_policy_name(opts.autoscale.policy));
      if (opts.disaggregated()) {
        // Per-tier bounds live in the tier lists (empty = the per-tier
        // defaults: floor 1, ceiling = tier pool).
        const auto join = [](const std::vector<std::uint32_t>& v) {
          std::string s;
          for (std::size_t i = 0; i < v.size(); ++i) {
            if (i > 0) s += ",";
            s += std::to_string(v[i]);
          }
          return s;
        };
        title += " per-tier";
        if (!opts.autoscale.tier_min.empty() ||
            !opts.autoscale.tier_max.empty()) {
          title += " " +
                   (opts.autoscale.tier_min.empty()
                        ? "1"
                        : join(opts.autoscale.tier_min)) +
                   ".." +
                   (opts.autoscale.tier_max.empty()
                        ? "pool"
                        : join(opts.autoscale.tier_max));
        }
      } else {
        title += " " + std::to_string(opts.autoscale.min_replicas) + ".." +
                 std::to_string(opts.autoscale.max_replicas);
      }
      title += " @" + util::fmt_fixed(opts.autoscale.eval_interval_ms, 0) +
               "ms, " + serve::balancer_policy_name(opts.balancer);
    } else {
      title += ", " + std::to_string(opts.replicas) + " replicas, " +
               serve::balancer_policy_name(opts.balancer);
    }
  }
  if (opts.disaggregated()) {
    title += ", roles ";
    for (std::size_t i = 0; i < opts.roles.size(); ++i) {
      if (i > 0) title += "/";
      title += serve::replica_role_name(opts.roles[i]);
    }
    title += ", kv-link " + util::fmt_fixed(opts.kv_link_gbps, 0) + " GB/s";
  }
  util::Table t(title);
  std::vector<std::string> header = {
      "mix", "req/s in", "batch", "done/shed", "tok/s",
      "goodput", "TTFT p50", "TTFT p99", "tok p50", "tok p99",
      "gap p99", "chunks", "stall ms"};
  if (opts.paged()) {
    header.push_back("in-flt");
    header.push_back("preempt");
  }
  if (opts.cached()) {
    header.push_back("hit%");
    header.push_back("saved ms");
  }
  if (opts.fleet()) {
    header.push_back("imbal");
    header.push_back("TTFT sprd");
    // The pooled queue-wait / inter-token-gap distributions are where a
    // skewed routing shows up first; fleet-gated so default (and plain
    // paged) tables stay byte-identical to earlier releases.
    header.push_back("q-wait p50");
    header.push_back("q-wait p99");
    header.push_back("gap p50");
  }
  if (opts.disaggregated()) {
    header.push_back("migr");
    header.push_back("mig MB");
    header.push_back("steal");
  }
  if (opts.autoscale.enabled) {
    header.push_back("live avg");
    header.push_back("repl-s");
    header.push_back("scale");
  }
  t.set_header(header);

  // With exports requested, every sweep point runs observed (each
  // finalize() re-asserts the tiling identity across the whole grid); the
  // files capture the final point. Unset flags never construct an
  // observer, keeping the default sweep byte-identical.
  std::optional<serve::Observer> obs;

  for (const workload::Mix& mix : mixes) {
    for (double rate : rates) {
      for (std::uint32_t batch : batches) {
        serve::ServingConfig cfg;
        cfg.arch = arch;
        cfg.model = model;
        cfg.traffic.mix = mix;
        cfg.traffic.num_requests = requests;
        cfg.traffic.arrival_rate_per_s = rate;
        cfg.traffic.seed = seed;
        cfg.scheduler.max_batch = batch;
        cfg.scheduler.max_tokens_per_iter = opts.chunk_tokens;
        cfg.scheduler.policy = opts.policy;
        cfg.scheduler.preempt = opts.preempt;
        cfg.kv_block_tokens = opts.kv_block_tokens;
        cfg.kv_budget_bytes_per_node = kv_budget_mb << 20;
        cfg.prefix_cache = opts.prefix_cache;
        cfg.kv_swap = opts.kv_swap;
        serve::FleetMetrics m;
        double imbalance = 0, ttft_spread = 0;
        double mean_live = 0, replica_s = 0;
        std::size_t scale_events = 0;
        if (opts.observed()) {
          obs.emplace(opts.fleet() ? opts.fleet_width() : 1,
                      arch.frequency_hz);
        }
        serve::Observer* const point_obs = obs ? &*obs : nullptr;
        if (opts.fleet()) {
          serve::FleetConfig fleet_cfg = serve::FleetConfig::homogeneous(
              cfg, opts.fleet_width(), opts.balancer);
          fleet_cfg.autoscale = opts.autoscale;
          if (opts.disaggregated()) {
            fleet_cfg.roles = opts.roles;
            // GB/s (decimal) -> bytes per fleet-clock cycle.
            fleet_cfg.kv_link.bytes_per_cycle =
                opts.kv_link_gbps * 1e9 / arch.frequency_hz;
          }
          serve::FleetResult fr =
              serve::FleetSim(fleet_cfg, costs).run(point_obs);
          imbalance = fr.load_imbalance;
          ttft_spread = fr.ttft_p99_spread_ms;
          mean_live = fr.mean_live_replicas;
          replica_s = fr.replica_seconds;
          scale_events = fr.scale_events.size();
          m = std::move(fr.fleet);
        } else {
          m = serve::ServingSim(cfg, costs).run(point_obs);
        }
        std::vector<std::string> row = {
            mix.name, util::fmt_fixed(rate, 0),
            util::fmt_int(batch),
            util::fmt_int(static_cast<long long>(m.completed)) + "/" +
                util::fmt_int(static_cast<long long>(m.rejected)),
            util::fmt_fixed(m.decode_tok_s, 1),
            util::fmt_fixed(m.goodput_req_s, 2),
            util::fmt_fixed(m.ttft_ms.p50, 1),
            util::fmt_fixed(m.ttft_ms.p99, 1),
            util::fmt_fixed(m.token_ms.p50, 2),
            util::fmt_fixed(m.token_ms.p99, 2),
            util::fmt_fixed(m.inter_token_gap_ms.p99, 2),
            util::fmt_int(static_cast<long long>(m.prefill_chunk_steps)),
            util::fmt_fixed(m.decode_stall_ms, 1)};
        if (opts.paged()) {
          row.push_back(util::fmt_int(m.peak_in_flight));
          row.push_back(util::fmt_int(static_cast<long long>(m.preemptions)));
        }
        if (opts.cached()) {
          row.push_back(util::fmt_fixed(100.0 * m.cache_hit_rate, 1));
          row.push_back(util::fmt_fixed(m.saved_prefill_ms, 1));
        }
        if (opts.fleet()) {
          row.push_back(util::fmt_fixed(imbalance, 2));
          row.push_back(util::fmt_fixed(ttft_spread, 1));
          row.push_back(util::fmt_fixed(m.queue_wait_ms.p50, 1));
          row.push_back(util::fmt_fixed(m.queue_wait_ms.p99, 1));
          row.push_back(util::fmt_fixed(m.inter_token_gap_ms.p50, 2));
        }
        if (opts.disaggregated()) {
          row.push_back(
              util::fmt_int(static_cast<long long>(m.kv_migrations)));
          row.push_back(util::fmt_fixed(
              static_cast<double>(m.kv_migrate_wire_bytes) / (1 << 20), 1));
          row.push_back(
              util::fmt_int(static_cast<long long>(m.work_steals)));
        }
        if (opts.autoscale.enabled) {
          row.push_back(util::fmt_fixed(mean_live, 2));
          row.push_back(util::fmt_fixed(replica_s, 2));
          row.push_back(util::fmt_int(static_cast<long long>(scale_events)));
        }
        t.add_row(row);
      }
      t.add_separator();
    }
  }
  t.render(std::cout);

  std::cout << "\nReading guide: raising max batch amortizes the per-token\n"
               "host sync across the batch, lifting tok/s at some cost in\n"
               "p99 per-token latency; past the saturation rate TTFT blows\n"
               "up first (queueing), which is why goodput — not raw\n"
               "throughput — is the capacity metric. With --policy=chunked\n"
               "a long prompt is split into --chunk-tokens budgeted chunks\n"
               "that co-schedule with running decodes, cutting gap p99 and\n"
               "stall ms (the head-of-line blocking whole prompts inflict)\n"
               "on long-prompt mixes at a small throughput cost from the\n"
               "extra per-iteration host syncs.\n";
  if (opts.paged()) {
    std::cout <<
        "With --preempt=recompute admission books only the prompt's KV\n"
        "blocks instead of the whole prefill+decode footprint, so at a\n"
        "tight --kv-budget-mb the in-flt column rises and decode batches\n"
        "fill out; the price is the preempt column — evicted requests\n"
        "re-run their sequence as chunked prefill when the pool runs dry.\n";
  }
  if (opts.cached()) {
    std::cout <<
        "With --prefix-cache full prompt blocks are published into a\n"
        "hash-chained shared cache at prefill commit; later requests whose\n"
        "prompt shares a prefix skip the cached tokens at admission. hit%\n"
        "is the fraction of looked-up prompt tokens served from cache and\n"
        "saved ms the prefill compute those tokens would have cost. The\n"
        "seeded mixes draw independent prompt contents, so hit rates stay\n"
        "low here — the multi-turn chat scenario (examples/chat_cache) is\n"
        "where shared system prompts and growing conversation prefixes\n"
        "make the cache pay for itself.\n";
  }
  if (opts.fleet()) {
    std::cout <<
        "With --replicas=N each point runs N identical deployments behind\n"
        "the balancer: imbal is max/mean arrivals per replica (1.00 =\n"
        "perfectly even) and TTFT sprd is the max-min per-replica p99 TTFT\n"
        "in ms — --balancer=jsq/kv exist to shrink both on skewed mixes\n"
        "where round-robin piles heavy requests onto one replica.\n";
  }
  if (opts.disaggregated()) {
    std::cout <<
        "With --roles the fleet is disaggregated: fresh arrivals route\n"
        "only to non-decode replicas; when a prompt's last chunk finishes\n"
        "on a prefill replica its KV block list ships to the least-loaded\n"
        "decode replica over the ring fabric (migr migrations moving\n"
        "mig MB = bytes x hops at --kv-link-gbps), so long prompts never\n"
        "queue behind running decodes. steal counts queued requests an\n"
        "idle replica pulled from a backed-up neighbor on the same links.\n";
  }
  if (opts.autoscale.enabled) {
    std::cout <<
        "With --autoscale the live replica set tracks load between\n"
        "--min-replicas and --max-replicas: live avg is the time-weighted\n"
        "mean live-replica count, repl-s the occupied replica-seconds (a\n"
        "static fleet burns width x makespan; the gap is the elasticity\n"
        "saving) and scale the number of grow/shrink events. Scale-down\n"
        "drains gracefully — masked replicas finish their admitted work.\n";
    if (opts.disaggregated()) {
      std::cout <<
          "With --roles each role tier runs its own control loop on the\n"
          "shared fleet clock: prefill tiers key on the rolling TTFT\n"
          "window (first tokens form on the prefill side), decode tiers\n"
          "on admission-queue depth, and a draining decode replica stops\n"
          "being a KV-migration target while it finishes migrated-in\n"
          "work.\n";
    }
  }
  if (opts.observed()) {
    serve::write_exports(*obs, opts.trace_out, opts.metrics_out);
    // No separator line: the observed output must be exactly the
    // unobserved output plus these notices (the CI gate strips them with
    // `grep -v '^Wrote '` and compares byte-for-byte).
    if (!opts.trace_out.empty()) {
      std::cout << "Wrote trace-event JSON of the final sweep point to "
                << opts.trace_out << " (load at https://ui.perfetto.dev)\n";
    }
    if (!opts.metrics_out.empty()) {
      std::cout << "Wrote Prometheus metrics of the final sweep point to "
                << opts.metrics_out << "\n";
    }
  }
  return 0;
}
