#include "model/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <vector>

namespace looplynx::model {

namespace {

constexpr std::uint32_t kMagic = 0x58594C4C;  // "LLYX"
constexpr std::uint32_t kVersion = 1;

void write_u32(std::ostream& os, std::uint32_t v) {
  unsigned char buf[4] = {static_cast<unsigned char>(v & 0xff),
                          static_cast<unsigned char>((v >> 8) & 0xff),
                          static_cast<unsigned char>((v >> 16) & 0xff),
                          static_cast<unsigned char>((v >> 24) & 0xff)};
  os.write(reinterpret_cast<const char*>(buf), 4);
}

std::uint32_t read_u32(std::istream& is) {
  unsigned char buf[4];
  is.read(reinterpret_cast<char*>(buf), 4);
  if (!is) throw SerializationError("unexpected end of checkpoint");
  return static_cast<std::uint32_t>(buf[0]) |
         (static_cast<std::uint32_t>(buf[1]) << 8) |
         (static_cast<std::uint32_t>(buf[2]) << 16) |
         (static_cast<std::uint32_t>(buf[3]) << 24);
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_u32(os, static_cast<std::uint32_t>(t.rows()));
  write_u32(os, static_cast<std::uint32_t>(t.cols()));
  os.write(reinterpret_cast<const char*>(t.data()),
           static_cast<std::streamsize>(t.size() * sizeof(float)));
}

Tensor read_tensor(std::istream& is, std::size_t expect_rows,
                   std::size_t expect_cols) {
  const std::uint32_t rows = read_u32(is);
  const std::uint32_t cols = read_u32(is);
  if (rows != expect_rows || cols != expect_cols) {
    throw SerializationError("tensor shape mismatch in checkpoint");
  }
  Tensor t(rows, cols);
  is.read(reinterpret_cast<char*>(t.data()),
          static_cast<std::streamsize>(t.size() * sizeof(float)));
  if (!is) throw SerializationError("truncated tensor payload");
  return t;
}

}  // namespace

void save_weights(const Gpt2Weights& weights, std::ostream& os) {
  const ModelConfig& cfg = weights.config;
  write_u32(os, kMagic);
  write_u32(os, kVersion);
  write_u32(os, cfg.n_layer);
  write_u32(os, cfg.d_model);
  write_u32(os, cfg.n_head);
  write_u32(os, cfg.d_ff);
  write_u32(os, cfg.vocab_size);
  write_u32(os, cfg.max_seq_len);
  write_tensor(os, weights.wte);
  write_tensor(os, weights.wpe);
  for (const BlockWeights& b : weights.blocks) {
    write_tensor(os, b.ln1_gain);
    write_tensor(os, b.ln1_bias);
    write_tensor(os, b.w_qkv);
    write_tensor(os, b.b_qkv);
    write_tensor(os, b.w_proj);
    write_tensor(os, b.b_proj);
    write_tensor(os, b.ln2_gain);
    write_tensor(os, b.ln2_bias);
    write_tensor(os, b.w_fc1);
    write_tensor(os, b.b_fc1);
    write_tensor(os, b.w_fc2);
    write_tensor(os, b.b_fc2);
  }
  write_tensor(os, weights.lnf_gain);
  write_tensor(os, weights.lnf_bias);
  if (!os) throw SerializationError("checkpoint write failed");
}

Gpt2Weights load_weights(std::istream& is) {
  if (read_u32(is) != kMagic) {
    throw SerializationError("not a LoopLynx checkpoint (bad magic)");
  }
  if (read_u32(is) != kVersion) {
    throw SerializationError("unsupported checkpoint version");
  }
  ModelConfig cfg;
  cfg.name = "checkpoint";
  cfg.n_layer = read_u32(is);
  cfg.d_model = read_u32(is);
  cfg.n_head = read_u32(is);
  cfg.d_ff = read_u32(is);
  cfg.vocab_size = read_u32(is);
  cfg.max_seq_len = read_u32(is);
  cfg.validate();

  Gpt2Weights w;
  w.config = cfg;
  w.wte = read_tensor(is, cfg.vocab_size, cfg.d_model);
  w.wpe = read_tensor(is, cfg.max_seq_len, cfg.d_model);
  w.blocks.reserve(cfg.n_layer);
  for (std::uint32_t l = 0; l < cfg.n_layer; ++l) {
    BlockWeights b;
    b.ln1_gain = read_tensor(is, 1, cfg.d_model);
    b.ln1_bias = read_tensor(is, 1, cfg.d_model);
    b.w_qkv = read_tensor(is, 3ULL * cfg.d_model, cfg.d_model);
    b.b_qkv = read_tensor(is, 1, 3ULL * cfg.d_model);
    b.w_proj = read_tensor(is, cfg.d_model, cfg.d_model);
    b.b_proj = read_tensor(is, 1, cfg.d_model);
    b.ln2_gain = read_tensor(is, 1, cfg.d_model);
    b.ln2_bias = read_tensor(is, 1, cfg.d_model);
    b.w_fc1 = read_tensor(is, cfg.d_ff, cfg.d_model);
    b.b_fc1 = read_tensor(is, 1, cfg.d_ff);
    b.w_fc2 = read_tensor(is, cfg.d_model, cfg.d_ff);
    b.b_fc2 = read_tensor(is, 1, cfg.d_model);
    w.blocks.push_back(std::move(b));
  }
  w.lnf_gain = read_tensor(is, 1, cfg.d_model);
  w.lnf_bias = read_tensor(is, 1, cfg.d_model);
  return w;
}

void save_weights_file(const Gpt2Weights& weights, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw SerializationError("cannot open for write: " + path);
  save_weights(weights, os);
}

Gpt2Weights load_weights_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw SerializationError("cannot open for read: " + path);
  return load_weights(is);
}

}  // namespace looplynx::model
