// KV-cache slot accounting for the serving fleet.
//
// Each admitted request reserves its whole KV footprint (prefill + decode
// tokens) up front, so a running request can never be evicted mid-flight —
// the same reservation discipline the paper's static head-wise KV placement
// implies. Capacity derives from the HBM pseudo-channels the architecture
// dedicates to the KV cache (arch.kv_channels per node, 256 MiB per HBM2
// pseudo-channel on the Alveo U50); the int8 per-token footprint comes from
// model::KvCacheT's layout. When a reservation fails the scheduler leaves
// the request queued — that backpressure, not an allocation failure, is the
// mechanism that bounds fleet memory.
#pragma once

#include <cstdint>

#include "core/arch_config.hpp"
#include "model/config.hpp"

namespace looplynx::serve {

class KvSlotManager {
 public:
  /// `budget_bytes_per_node` == 0 selects the architecture default:
  /// kv_channels x 256 MiB of HBM per node.
  KvSlotManager(const core::ArchConfig& arch, const model::ModelConfig& model,
                std::uint64_t budget_bytes_per_node = 0);

  /// K + V bytes one token occupies on one node (int8, the node's share of
  /// the heads).
  std::uint64_t bytes_per_token_per_node() const { return bytes_per_token_; }

  /// Total tokens the fleet can keep resident (per node — the head-wise
  /// partition makes every node's occupancy identical).
  std::uint32_t capacity_tokens() const { return capacity_tokens_; }
  std::uint32_t used_tokens() const { return used_tokens_; }
  std::uint32_t free_tokens() const { return capacity_tokens_ - used_tokens_; }

  /// Reserves `tokens` slots; false (and a recorded stall) when they do not
  /// fit. A request whose footprint exceeds the total capacity can never be
  /// admitted — callers should reject it instead of retrying.
  bool try_reserve(std::uint32_t tokens);
  /// Returns `tokens` slots. Over-releasing is clamped to the reserved
  /// amount (never underflows used_tokens_ / wraps free_tokens()) and
  /// counted in over_release_events() — it always indicates a caller bug.
  void release(std::uint32_t tokens);

  bool can_ever_fit(std::uint32_t tokens) const {
    return tokens <= capacity_tokens_;
  }

  // ---- Statistics for FleetMetrics ----
  std::uint32_t peak_used_tokens() const { return peak_used_tokens_; }
  std::uint64_t stall_events() const { return stall_events_; }
  std::uint64_t over_release_events() const { return over_release_events_; }
  double occupancy() const {
    return capacity_tokens_ == 0
               ? 0.0
               : static_cast<double>(used_tokens_) / capacity_tokens_;
  }
  double peak_occupancy() const {
    return capacity_tokens_ == 0
               ? 0.0
               : static_cast<double>(peak_used_tokens_) / capacity_tokens_;
  }

 private:
  std::uint64_t bytes_per_token_ = 0;
  std::uint32_t capacity_tokens_ = 0;
  std::uint32_t used_tokens_ = 0;
  std::uint32_t peak_used_tokens_ = 0;
  std::uint64_t stall_events_ = 0;
  std::uint64_t over_release_events_ = 0;
};

}  // namespace looplynx::serve
