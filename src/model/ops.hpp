// Floating-point reference operators for the GPT-2 model.
//
// These are the golden implementations the quantized path and the functional
// accelerator are verified against. Shapes follow the tensor convention:
// weights are [out x in], activations are row vectors.
#pragma once

#include <span>

#include "model/tensor.hpp"

namespace looplynx::model {

/// y = W x + b. W is [out x in], x has `in` elements, y gets `out`.
void linear(const Tensor& w, std::span<const float> bias,
            std::span<const float> x, std::span<float> y);

/// y = W x (no bias).
void matvec(const Tensor& w, std::span<const float> x, std::span<float> y);

/// In-place LayerNorm with learned gain/bias; eps matches GPT-2 (1e-5).
void layer_norm(std::span<float> x, std::span<const float> gain,
                std::span<const float> bias, float eps = 1e-5f);

/// In-place GELU (tanh approximation, as used by GPT-2).
void gelu(std::span<float> x);

/// In-place numerically-stable softmax.
void softmax(std::span<float> x);

/// x += y elementwise.
void add_inplace(std::span<float> x, std::span<const float> y);

/// Dot product.
float dot(std::span<const float> a, std::span<const float> b);

/// Max absolute value (0 for empty input).
float abs_max(std::span<const float> x);

}  // namespace looplynx::model
