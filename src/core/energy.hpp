// Power/energy model for LoopLynx deployments and the A100 baseline.
//
// Calibration (documented in DESIGN.md §2): the paper reports measured
// energy ratios, not absolute power. Back-solving the published numbers
// (2-node: 1.67x speed-up at 37.3% of A100 energy; 4-node: 2.52x at 48.1%;
// per-node-count efficiency gains of 2.3x/2.7x/2.1x) yields a consistent
// linear model: ~24 W of static shell/HBM power per FPGA card plus ~19 W of
// dynamic power per active accelerator node, against ~100 W of A100 board
// power during small-batch int8 inference (well under its 300 W TDP).
#pragma once

#include <cstdint>

#include "core/arch_config.hpp"

namespace looplynx::core {

struct PowerModel {
  double fpga_static_watts = 24.0;   // shell + HBM + clocking per card
  double node_dynamic_watts = 19.0;  // one accelerator node under load
  double a100_inference_watts = 100.0;

  /// Total board power of a LoopLynx deployment.
  double fpga_power_watts(const ArchConfig& arch) const {
    return fpga_static_watts * arch.num_fpgas() +
           node_dynamic_watts * arch.num_nodes;
  }

  /// Energy in joules for a run of `seconds` on the accelerator.
  double fpga_energy_joules(const ArchConfig& arch, double seconds) const {
    return fpga_power_watts(arch) * seconds;
  }

  double a100_energy_joules(double seconds) const {
    return a100_inference_watts * seconds;
  }
};

/// Energy-efficiency comparison for one workload.
struct EnergyComparison {
  double fpga_joules = 0;
  double gpu_joules = 0;
  double fpga_tokens_per_joule = 0;
  double gpu_tokens_per_joule = 0;
  /// Normalized efficiency (fpga / gpu tokens-per-joule); the paper's
  /// Fig. 8(b) metric.
  double efficiency_ratio = 0;
  /// FPGA energy as a fraction of GPU energy (the "48.1%" style number).
  double energy_fraction = 0;
};

EnergyComparison compare_energy(const PowerModel& power,
                                const ArchConfig& arch, double fpga_seconds,
                                double gpu_seconds, std::uint64_t tokens);

}  // namespace looplynx::core
