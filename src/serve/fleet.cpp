#include "serve/fleet.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>

#include "net/fabric.hpp"
#include "serve/observe.hpp"
#include "serve/replica.hpp"
#include "util/stats.hpp"

namespace looplynx::serve {

BalancerPolicy parse_balancer_policy(const std::string& name) {
  if (name == "rr") return BalancerPolicy::kRoundRobin;
  if (name == "jsq") return BalancerPolicy::kJoinShortestQueue;
  if (name == "kv") return BalancerPolicy::kKvAware;
  throw std::invalid_argument("unknown balancer policy \"" + name +
                              "\" (expected rr|jsq|kv)");
}

const char* balancer_policy_name(BalancerPolicy policy) {
  switch (policy) {
    case BalancerPolicy::kRoundRobin:
      return "round-robin";
    case BalancerPolicy::kJoinShortestQueue:
      return "join-shortest-queue";
    case BalancerPolicy::kKvAware:
      return "kv-aware";
  }
  return "unknown";
}

ReplicaRole parse_replica_role(const std::string& name) {
  if (name == "general") return ReplicaRole::kGeneral;
  if (name == "prefill") return ReplicaRole::kPrefill;
  if (name == "decode") return ReplicaRole::kDecode;
  throw std::invalid_argument("unknown replica role \"" + name +
                              "\" (expected general|prefill|decode)");
}

const char* replica_role_name(ReplicaRole role) {
  switch (role) {
    case ReplicaRole::kGeneral:
      return "general";
    case ReplicaRole::kPrefill:
      return "prefill";
    case ReplicaRole::kDecode:
      return "decode";
  }
  return "unknown";
}

namespace {

/// One role class of a fleet: the tier the per-tier autoscaler controls.
/// Tier order is first appearance in the roles list; members are fleet
/// indices in ascending order (the tier's live set is always a prefix of
/// them). A symmetric fleet is exactly one kGeneral tier holding every
/// replica — which is how the tier machinery reduces to the legacy
/// whole-fleet live prefix bit for bit.
struct TierSpec {
  ReplicaRole role = ReplicaRole::kGeneral;
  std::vector<std::uint32_t> members;
};

std::vector<TierSpec> tier_spec(const std::vector<ReplicaRole>& roles,
                                std::size_t n) {
  std::vector<TierSpec> tiers;
  if (roles.empty()) {
    tiers.emplace_back();
    tiers.front().members.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      tiers.front().members[i] = static_cast<std::uint32_t>(i);
    }
    return tiers;
  }
  for (std::size_t i = 0; i < roles.size(); ++i) {
    std::size_t t = 0;
    while (t < tiers.size() && tiers[t].role != roles[i]) ++t;
    if (t == tiers.size()) {
      tiers.emplace_back();
      tiers.back().role = roles[i];
    }
    tiers[t].members.push_back(static_cast<std::uint32_t>(i));
  }
  return tiers;
}

/// The tier's effective live bounds: the per-tier lists when given, else
/// min 1 / max <tier pool> on disaggregated fleets, else the legacy
/// scalars (symmetric single tier).
std::pair<std::uint32_t, std::uint32_t> tier_bounds(
    const AutoscalerConfig& as, const std::vector<TierSpec>& tiers,
    std::size_t t, bool disaggregated) {
  const auto pool = static_cast<std::uint32_t>(tiers[t].members.size());
  const std::uint32_t lo =
      as.tier_min.empty() ? (disaggregated ? 1u : as.min_replicas)
                          : as.tier_min[t];
  const std::uint32_t hi =
      as.tier_max.empty() ? (disaggregated ? pool : as.max_replicas)
                          : as.tier_max[t];
  return {lo, hi};
}

}  // namespace

std::uint32_t LoadBalancer::pick(const std::vector<ReplicaLoad>& loads) {
  std::uint32_t n_active = 0;
  for (const ReplicaLoad& l : loads) n_active += l.active ? 1 : 0;
  return pick(loads, n_active);
}

std::uint32_t LoadBalancer::pick(const std::vector<ReplicaLoad>& loads,
                                 std::uint32_t n_active) {
  const auto n = static_cast<std::uint32_t>(loads.size());
  if (n_active == 0) return 0;  // unreachable: autoscale min_replicas >= 1
  switch (policy_) {
    case BalancerPolicy::kRoundRobin: {
      // The counter advances once per pick regardless of the mask, and
      // selects the k-th *active* replica in index order: with every
      // replica active this is exactly the legacy `counter % n`, and under
      // a mask the cycle walks the live prefix deterministically.
      std::uint32_t k = round_robin_next_ % n_active;
      ++round_robin_next_;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!loads[i].active) continue;
        if (k == 0) return i;
        --k;
      }
      return 0;  // unreachable
    }
    case BalancerPolicy::kJoinShortestQueue: {
      std::uint32_t best = n;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!loads[i].active) continue;
        // Strict < keeps ties on the lowest active index.
        if (best == n || loads[i].outstanding < loads[best].outstanding) {
          best = i;
        }
      }
      return best;
    }
    case BalancerPolicy::kKvAware: {
      std::uint32_t best = n;
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!loads[i].active) continue;
        if (best == n) {
          best = i;
          continue;
        }
        if (loads[i].free_kv_tokens != loads[best].free_kv_tokens) {
          if (loads[i].free_kv_tokens > loads[best].free_kv_tokens) best = i;
          continue;
        }
        // Equal pools (e.g. a same-cycle burst before any admission):
        // fall back to join-shortest-queue, then the lowest active index.
        if (loads[i].outstanding < loads[best].outstanding) best = i;
      }
      return best;
    }
  }
  return 0;
}

FleetConfig FleetConfig::homogeneous(const ServingConfig& base,
                                     std::uint32_t n,
                                     BalancerPolicy balancer) {
  FleetConfig cfg;
  cfg.traffic = base.traffic;
  cfg.balancer = balancer;
  // Per-replica traffic members are ignored (the fleet has one stream);
  // blank them instead of duplicating e.g. a large explicit_arrivals
  // schedule N times.
  ServingConfig replica = base;
  replica.traffic = TrafficConfig{};
  cfg.replicas.assign(n, replica);
  return cfg;
}

void FleetSim::validate() {
  if (config_.replicas.empty()) {
    throw std::invalid_argument("fleet needs at least one replica");
  }
  const double frequency = config_.replicas.front().arch.frequency_hz;
  for (std::size_t i = 0; i < config_.replicas.size(); ++i) {
    const ServingConfig& r = config_.replicas[i];
    const std::string where = " (replica " + std::to_string(i) + ")";
    if (r.scheduler.max_batch == 0) {
      throw std::invalid_argument("scheduler max_batch must be >= 1" + where);
    }
    if (r.scheduler.max_in_flight == 0) {
      throw std::invalid_argument("scheduler max_in_flight must be >= 1" +
                                  where);
    }
    if (r.kv_block_tokens == 0) {
      throw std::invalid_argument(
          "kv_block_tokens must be >= 1 (1 = token-granular)" + where);
    }
    if (r.kv_swap && !r.prefix_cache) {
      throw std::invalid_argument(
          "kv_swap requires prefix_cache (swap is an eviction tier of the "
          "prefix cache; without the cache there is nothing to swap)" +
          where);
    }
    if (r.arch.frequency_hz != frequency) {
      // The engine advances one cycle-granular clock; replicas in another
      // clock domain would need cycle-rate conversion the fleet does not
      // model. Vary node counts / budgets / schedulers instead.
      throw std::invalid_argument(
          "fleet replicas must share one arch.frequency_hz" + where);
    }
  }
  if (!config_.traffic.explicit_arrivals.empty()) {
    config_.traffic.num_requests = static_cast<std::uint32_t>(
        config_.traffic.explicit_arrivals.size());
  }
  const AutoscalerConfig& as = config_.autoscale;
  if (as.enabled) {
    if (!(as.eval_interval_ms > 0)) {
      throw std::invalid_argument(
          "autoscale eval_interval_ms must be > 0 (the control loop runs "
          "on the fleet clock)");
    }
    if (!(as.ttft_window_ms > 0)) {
      throw std::invalid_argument("autoscale ttft_window_ms must be > 0");
    }
    if (as.queue_low >= as.queue_high) {
      throw std::invalid_argument(
          "autoscale queue_low must be below queue_high (hysteresis band)");
    }
    if (as.up_evals == 0 || as.down_evals == 0) {
      throw std::invalid_argument(
          "autoscale up_evals/down_evals must be >= 1");
    }
  }
  if (config_.disaggregated()) {
    if (config_.roles.size() != config_.replicas.size()) {
      throw std::invalid_argument(
          "roles must name every replica (" +
          std::to_string(config_.roles.size()) + " roles for " +
          std::to_string(config_.replicas.size()) + " replicas)");
    }
    if (config_.replicas.size() < 2) {
      throw std::invalid_argument(
          "disaggregation needs at least 2 replicas (KV migration ships "
          "blocks between nodes; a 1-node fleet has nowhere to ship)");
    }
    std::size_t decode = 0;
    for (ReplicaRole r : config_.roles) {
      decode += r == ReplicaRole::kDecode ? 1 : 0;
    }
    if (decode == 0) {
      throw std::invalid_argument(
          "roles need at least one decode replica (prefill replicas "
          "migrate every finished prompt; with no decode target nothing "
          "would ever decode)");
    }
    if (decode == config_.roles.size()) {
      throw std::invalid_argument(
          "roles need at least one non-decode replica (decode replicas "
          "receive no fresh arrivals; an all-decode fleet would serve "
          "nothing)");
    }
    if (!(config_.kv_link.bytes_per_cycle > 0)) {
      throw std::invalid_argument(
          "disaggregation needs kv_link.bytes_per_cycle > 0 (KV migration "
          "is priced on the ring fabric; a zero-rate link never delivers)");
    }
  }
  if (as.enabled) {
    // Per-tier live bounds, checked after the role shape so tier pools
    // are well-defined. A symmetric fleet is one tier bounded by the
    // legacy scalars, so these checks reduce to the PR 5 ones exactly.
    const std::vector<TierSpec> tiers =
        tier_spec(config_.roles, config_.replicas.size());
    for (const auto* list : {&as.tier_min, &as.tier_max}) {
      if (!list->empty() && list->size() != tiers.size()) {
        throw std::invalid_argument(
            "autoscale per-tier bounds must name every tier: got " +
            std::to_string(list->size()) + " entries for " +
            std::to_string(tiers.size()) +
            " tiers (distinct roles in first-appearance order)");
      }
    }
    // Normalize: a disaggregated autoscaled fleet always runs on explicit
    // per-tier lists (defaults min 1 / max <tier pool>), so the run-time
    // machinery never has to guess which scalars to fall back on.
    if (config_.disaggregated()) {
      AutoscalerConfig& mut = config_.autoscale;
      if (mut.tier_min.empty()) mut.tier_min.assign(tiers.size(), 1);
      if (mut.tier_max.empty()) {
        mut.tier_max.resize(tiers.size());
        for (std::size_t t = 0; t < tiers.size(); ++t) {
          mut.tier_max[t] =
              static_cast<std::uint32_t>(tiers[t].members.size());
        }
      }
    }
    for (std::size_t t = 0; t < tiers.size(); ++t) {
      const auto [lo, hi] =
          tier_bounds(as, tiers, t, config_.disaggregated());
      const std::string where =
          config_.disaggregated()
              ? std::string(" (tier ") + std::to_string(t) + ", " +
                    replica_role_name(tiers[t].role) + ")"
              : std::string();
      if (lo < 1) {
        throw std::invalid_argument("autoscale min_replicas must be >= 1" +
                                    where);
      }
      if (lo > hi) {
        throw std::invalid_argument(
            "autoscale min_replicas exceeds max_replicas" + where);
      }
      if (hi != tiers[t].members.size()) {
        // The replica pool is the scale ceiling — per tier, its role's
        // member count: a silent mismatch would leave configured replicas
        // unreachable (or index out of range).
        throw std::invalid_argument(
            "autoscale max_replicas must equal the replica pool size" +
            where);
      }
    }
  }
}

FleetSim::FleetSim(const FleetConfig& config) : config_(config) {
  validate();
  costs_.reserve(config_.replicas.size());
  for (std::size_t i = 0; i < config_.replicas.size(); ++i) {
    const ServingConfig& r = config_.replicas[i];
    const auto same = [&](const ServingConfig& other) {
      return other.arch == r.arch && other.model == r.model &&
             other.cost_probe_stride == r.cost_probe_stride;
    };
    std::size_t found = i;
    for (std::size_t j = 0; j < i; ++j) {
      if (same(config_.replicas[j])) {
        found = j;
        break;
      }
    }
    if (found < i) {
      costs_.push_back(costs_[found]);  // share the probe
    } else {
      costs_.emplace_back(r.arch, r.model, r.cost_probe_stride);
    }
  }
}

FleetSim::FleetSim(const FleetConfig& config,
                   const core::StepCostModel& costs)
    : config_(config) {
  validate();
  costs_.assign(config_.replicas.size(), costs);
}

namespace {

/// Everything one fleet run owns. Engine first: coroutines of replicas
/// that drained early park on their work signals and are destroyed
/// un-resumed with the engine, after everything they reference.
struct FleetRun {
  /// One role class under per-tier autoscaling control: its members (fleet
  /// indices, ascending — the live set is always their prefix), the live
  /// count, and the (cycle, live) step timeline the occupancy accounting
  /// replays. A symmetric fleet builds exactly one kGeneral tier holding
  /// every replica, which reduces all tier machinery to the legacy
  /// whole-fleet live prefix bit for bit.
  struct Tier {
    ReplicaRole role = ReplicaRole::kGeneral;
    std::vector<std::uint32_t> members;
    std::uint32_t live = 0;
    std::vector<std::pair<sim::Cycles, std::uint32_t>> timeline;
  };

  FleetRun(const FleetConfig& cfg_,
           const std::vector<core::StepCostModel>& costs)
      : cfg(cfg_),
        traffic(cfg_.traffic, cfg_.replicas.front().arch.frequency_hz),
        balancer(cfg_.balancer) {
    shared.target = cfg_.traffic.num_requests;
    // The window hook stays null on static runs: request_proc then never
    // touches it and the event sequence is byte-identical to PR 4.
    if (cfg_.autoscale.enabled) shared.ttft_window = &ttft_window;
    replicas.reserve(cfg_.replicas.size());
    for (std::size_t i = 0; i < cfg_.replicas.size(); ++i) {
      replicas.push_back(std::make_unique<detail::Replica>(
          engine, cfg_.replicas[i], costs[i], shared,
          static_cast<std::uint32_t>(i)));
    }
    // Tier setup: each role class starts at its own live minimum (the
    // whole pool when autoscaling is off) and every member outside the
    // tier's live prefix starts deactivated.
    const std::vector<TierSpec> spec =
        tier_spec(cfg_.roles, cfg_.replicas.size());
    tiers.reserve(spec.size());
    std::uint32_t total_live = 0;
    for (std::size_t t = 0; t < spec.size(); ++t) {
      Tier tier;
      tier.role = spec[t].role;
      tier.members = spec[t].members;
      tier.live = cfg_.autoscale.enabled
                      ? tier_bounds(cfg_.autoscale, spec, t,
                                    cfg_.disaggregated())
                            .first
                      : static_cast<std::uint32_t>(tier.members.size());
      for (std::size_t p = tier.live; p < tier.members.size(); ++p) {
        replicas[tier.members[p]]->live = false;
      }
      tier.timeline.emplace_back(0, tier.live);
      total_live += tier.live;
      tiers.push_back(std::move(tier));
    }
    shared.live_replicas = total_live;
    // Disaggregation plumbing is off = absent: with roles unset neither
    // the fabric nor the shared directory exists and every replica keeps
    // its null `disagg`, so no migration branch can fire and the event
    // sequence stays byte-identical to a symmetric fleet.
    if (cfg_.disaggregated()) {
      fabric = std::make_unique<net::RingFabric>(
          engine, cfg_.replicas.size(), cfg_.kv_link);
      disagg = std::make_unique<detail::DisaggShared>();
      disagg->fabric = fabric.get();
      disagg->replicas.reserve(replicas.size());
      for (std::size_t i = 0; i < replicas.size(); ++i) {
        disagg->replicas.push_back(replicas[i].get());
        replicas[i]->role = cfg_.roles[i];
        replicas[i]->disagg = disagg.get();
      }
    }
  }

  const FleetConfig& cfg;
  sim::Engine engine;
  detail::FleetShared shared;
  std::vector<std::unique_ptr<detail::Replica>> replicas;
  /// KV-migration ring (disaggregated fleets only; null otherwise).
  std::unique_ptr<net::RingFabric> fabric;
  std::unique_ptr<detail::DisaggShared> disagg;
  TrafficGen traffic;
  LoadBalancer balancer;

  // ---- Autoscaler state (inert when cfg.autoscale.enabled is false) ----
  /// The per-tier live structure. Always built (a symmetric fleet is one
  /// whole-pool tier), but only the autoscaler ever moves the live counts.
  std::vector<Tier> tiers;
  util::SlidingWindow ttft_window;
  std::vector<ScaleEvent> scale_log;
  /// Reused load-snapshot buffer for route(): refreshed in place per
  /// arrival, so steady-state routing never allocates. The live count is
  /// the active count (active == index < live), handed to pick() directly.
  std::vector<LoadBalancer::ReplicaLoad> loads;

  /// One routing decision: snapshot every replica's load, ask the
  /// balancer. Pure bookkeeping — no engine events, so a 1-replica fleet
  /// replays ServingSim's exact event sequence. Replicas outside their
  /// tier's live prefix are masked: a draining replica keeps its admitted
  /// work but receives nothing new. On a disaggregated fleet decode-role
  /// replicas are masked too — they receive work only by KV migration,
  /// never fresh arrivals (without disagg the mask reduces to the single
  /// tier's live prefix, so symmetric routing is untouched).
  detail::Replica& route() {
    loads.resize(replicas.size());
    std::uint32_t routable = 0;
    for (std::size_t i = 0; i < replicas.size(); ++i) {
      const auto& r = replicas[i];
      const bool active =
          r->live &&
          (disagg == nullptr || cfg.roles[i] != ReplicaRole::kDecode);
      routable += active ? 1 : 0;
      loads[i] = {r->outstanding(),
                  static_cast<std::uint64_t>(r->kv.free_blocks()) *
                      r->kv.block_tokens(),
                  active};
    }
    return *replicas[balancer.pick(loads, routable)];
  }

  /// True once the arrival stream is exhausted and every routed request
  /// has finished or been rejected — the autoscaler's exit condition.
  bool drained() const {
    if (!shared.arrivals_done()) return false;
    for (const auto& r : replicas) {
      if (r->outstanding() > 0) return false;
    }
    return true;
  }
};

/// The autoscaling control loop: one evaluation every eval_interval_ms on
/// the shared fleet clock, one Autoscaler state machine per tier, all
/// evaluated at the same instant in tier order (deterministic — a tier
/// can grow while another shrinks on the same evaluation, and each keeps
/// its own streaks and cooldown). Per tier the loop reads the
/// window-scoped signals — the live members' per-eval queue peaks, and
/// for non-decode tiers the rolling-window TTFT p99 (decode tiers are
/// forced to the queue policy: no fresh TTFT ever forms on them, their
/// signal is the migrated-in backlog) — and applies the decision to the
/// tier's live prefix: scale-up activates the tier's next member,
/// scale-down deactivates its highest live member, which then drains
/// gracefully (the mask stops new routes AND new migration/steal
/// hand-offs; its scheduler keeps running until its admitted, queued and
/// migrated-in requests finish). Exits at the first evaluation after the
/// fleet fully drains, so the makespan can trail the last completion by
/// at most one interval. A symmetric fleet has one whole-pool tier, so
/// this loop is byte-identical to the single-controller one it replaces.
sim::Task autoscaler_proc(FleetRun& run) {
  const AutoscalerConfig& cfg = run.cfg.autoscale;
  const core::ArchConfig& arch = run.cfg.replicas.front().arch;
  std::vector<Autoscaler> controllers;
  controllers.reserve(run.tiers.size());
  for (std::size_t t = 0; t < run.tiers.size(); ++t) {
    controllers.emplace_back(
        tier_autoscaler_config(cfg, t,
                               run.tiers[t].role == ReplicaRole::kDecode),
        run.cfg.replicas.front().slo);
  }
  const auto interval = std::max<sim::Cycles>(
      1, static_cast<sim::Cycles>(cfg.eval_interval_ms * 1e-3 *
                                  arch.frequency_hz));
  std::vector<double> peaks(run.replicas.size(), 0.0);
  while (true) {
    co_await run.engine.delay(interval);
    if (run.drained()) co_return;
    const double now_ms = arch.cycles_to_ms(run.engine.now());
    // Take every replica's per-eval queue peak (taking from masked
    // replicas too keeps their windows fresh for reactivation), but only
    // each tier's live prefix forms the signal its controller sees.
    for (std::size_t i = 0; i < run.replicas.size(); ++i) {
      peaks[i] =
          static_cast<double>(run.replicas[i]->queue.take_window_peak());
    }
    run.ttft_window.evict_before(now_ms - cfg.ttft_window_ms);
    for (std::size_t t = 0; t < run.tiers.size(); ++t) {
      FleetRun::Tier& tier = run.tiers[t];
      double live_peaks = 0;
      for (std::uint32_t p = 0; p < tier.live; ++p) {
        live_peaks += peaks[tier.members[p]];
      }
      ScaleSignals signals;
      signals.live = tier.live;
      signals.queue_per_live = live_peaks / static_cast<double>(tier.live);
      signals.ttft_samples = run.ttft_window.count();
      signals.ttft_p99_ms = run.ttft_window.percentile(99.0);
      const Autoscaler::Decision d = controllers[t].evaluate(signals);
      if (d.delta == 0) continue;
      const std::uint32_t to = d.delta > 0 ? tier.live + 1 : tier.live - 1;
      run.scale_log.push_back({run.engine.now(), now_ms, tier.live, to,
                               d.trigger, static_cast<std::uint32_t>(t)});
      // Scale-up activates the tier's next member (its prefix grows by
      // one); scale-down deactivates its highest live member, which then
      // drains. On a symmetric fleet members[p] == p, so the indices the
      // observer sees are the legacy ones.
      const std::uint32_t index =
          tier.members[d.delta > 0 ? tier.live : tier.live - 1];
      if (run.shared.observer != nullptr) {
        const sim::Cycles at = run.engine.now();
        if (d.delta > 0) {
          run.shared.observer->record(LifecycleEvent::kScaleUp, at,
                                      kNoRequest, index, tier.live, to);
        } else {
          run.shared.observer->record(LifecycleEvent::kScaleDown, at,
                                      kNoRequest, index, tier.live, to);
          run.shared.observer->record(LifecycleEvent::kDrain, at, kNoRequest,
                                      index);
        }
      }
      run.replicas[index]->live = d.delta > 0;
      tier.live = to;
      tier.timeline.emplace_back(run.engine.now(), to);
      run.shared.live_replicas += static_cast<std::uint32_t>(d.delta);
    }
  }
}

template <typename T>
void append(std::vector<T>& pool, const std::vector<T>& samples) {
  pool.insert(pool.end(), samples.begin(), samples.end());
}

/// Occupied replica-cycles of one replica: the union of its live intervals
/// (from its tier's scale timeline), each extended to the drain instant of
/// the requests routed into it — a deactivated replica is still consuming
/// its deployment until the work it accepted finishes. `timeline` is the
/// tier's (cycle, live-count) step function starting at cycle 0, and
/// `index` the replica's position within its tier (== its fleet index on a
/// symmetric fleet, whose one tier is the whole pool).
std::uint64_t occupied_cycles(
    const std::vector<std::pair<sim::Cycles, std::uint32_t>>& timeline,
    std::uint32_t index, sim::Cycles makespan, const detail::Replica& rep) {
  // Intervals where the tier's live count covers this member position.
  std::vector<std::pair<sim::Cycles, sim::Cycles>> spans;
  bool open = false;
  sim::Cycles start = 0;
  for (const auto& [at, live] : timeline) {
    if (!open && live > index) {
      open = true;
      start = at;
    } else if (open && live <= index) {
      spans.emplace_back(start, at);
      open = false;
    }
  }
  if (open) spans.emplace_back(start, makespan);
  if (spans.empty()) return 0;
  // Drain extension: a request routed inside a span pins the replica until
  // it finishes (rejected requests resolve at arrival). Fresh work is only
  // routed while live, so each belongs to the last span starting at or
  // before its arrival. Migrated-in/stolen work can land on a replica
  // whose span opened after the request's fleet arrival instant (the
  // hand-off happens later) — it pins the earliest span instead of
  // silently dropping the extension. The retirement log covers every
  // resolved request; order does not matter here.
  for (const detail::FinishedRequest& r : rep.finished) {
    const sim::Cycles finish = r.rejected ? r.arrival : r.completed;
    bool matched = false;
    for (std::size_t s = spans.size(); s-- > 0;) {
      if (spans[s].first <= r.arrival) {
        spans[s].second = std::max(spans[s].second, finish);
        matched = true;
        break;
      }
    }
    if (!matched) {
      spans.front().second = std::max(spans.front().second, finish);
    }
  }
  // Drain tails can overlap the next activation: merge before summing.
  std::uint64_t total = 0;
  sim::Cycles lo = spans.front().first, hi = spans.front().second;
  for (std::size_t s = 1; s < spans.size(); ++s) {
    if (spans[s].first <= hi) {
      hi = std::max(hi, spans[s].second);
    } else {
      total += hi - lo;
      lo = spans[s].first;
      hi = spans[s].second;
    }
  }
  total += hi - lo;
  return total;
}

}  // namespace

FleetResult FleetSim::run() const { return run(nullptr); }

FleetResult FleetSim::run(Observer* observer) const {
  if (observer != nullptr &&
      observer->replicas() != config_.replicas.size()) {
    throw std::invalid_argument(
        "FleetSim::run observer must be built for the fleet width (" +
        std::to_string(config_.replicas.size()) + " replicas)");
  }
  if (observer != nullptr && config_.disaggregated()) {
    // Tag the exports with each replica's role so scale/drain instants
    // and the Prometheus scale counters say WHICH tier moved. Symmetric
    // fleets never tag, keeping their export bytes identical to
    // pre-role builds.
    std::vector<std::string> names;
    names.reserve(config_.roles.size());
    for (ReplicaRole role : config_.roles) {
      names.emplace_back(replica_role_name(role));
    }
    observer->set_role_names(std::move(names));
  }
  FleetRun run(config_, costs_);
  run.shared.observer = observer;
  run.shared.scheduler_drives =
      observer == nullptr && !config_.autoscale.enabled &&
      !config_.disaggregated() &&
      config_.traffic.process != ArrivalProcess::kClosedLoop;
  const auto route = [&run]() -> detail::Replica& { return run.route(); };
  // Control plane first: at a shared instant the scale decision lands
  // before that cycle's routing (either order is deterministic; this one
  // is fixed so the scale-event log is reproducible byte for byte).
  if (config_.autoscale.enabled) {
    run.engine.spawn(autoscaler_proc(run));
  }
  for (auto& r : run.replicas) {
    run.engine.spawn(detail::scheduler_proc(*r));
  }
  if (config_.traffic.process == ArrivalProcess::kClosedLoop) {
    const std::uint32_t clients =
        std::max<std::uint32_t>(1, config_.traffic.clients);
    for (std::uint32_t c = 0; c < clients; ++c) {
      run.engine.spawn(detail::client_proc(run.engine, run.shared,
                                           run.traffic,
                                           config_.traffic.think_time_s,
                                           route));
    }
  } else {
    run.engine.spawn(detail::arrivals_proc(run.engine, run.traffic, route));
  }
  run.engine.run();

  FleetResult result;
  const std::size_t n = run.replicas.size();
  const double frequency = config_.replicas.front().arch.frequency_hz;
  const sim::Cycles makespan = run.engine.now();
  const double duration_s = static_cast<double>(makespan) / frequency;

  // Pool the per-request latency samples (and sum the counters) BEFORE
  // finalize_metrics moves each replica's vectors into its own summary.
  std::vector<double> token;
  std::vector<sim::Cycles> ttft, e2e, queue_wait, gap;
  std::uint64_t good = 0;
  sim::Cycles busy = 0, decode_stall = 0, recompute = 0;
  FleetMetrics& m = result.fleet;
  double batch_members = 0;
  for (const auto& r : run.replicas) {
    append(ttft, r->ttft_cycles);
    append(token, r->token_ms);
    append(e2e, r->e2e_cycles);
    append(queue_wait, r->queue_wait_cycles);
    append(gap, r->gap_cycles);
    good += r->good;
    busy += r->busy_cycles;
    decode_stall += r->decode_stall_cycles;
    recompute += r->recompute_cycles;
    m.completed += r->completed;
    m.rejected += r->rejected;
    m.decode_tokens += r->decode_tokens;
    m.total_tokens += r->total_tokens;
    m.iterations += r->sched.iteration_count();
    // Keep the multiply-back through mean_batch_size(): the quotient and
    // product round-trip bit-identically, preserving the pooled mean.
    batch_members += r->sched.mean_batch_size() *
                     static_cast<double>(r->sched.iteration_count());
    m.prefill_chunk_steps += r->prefill_chunk_steps;
    m.chunked_prompts += r->chunked_prompts;
    m.decode_stall_iterations += r->decode_stall_iterations;
    m.peak_queue_depth = std::max(m.peak_queue_depth, r->queue.peak_depth());
    m.kv_peak_occupancy =
        std::max(m.kv_peak_occupancy, r->kv.peak_occupancy());
    m.kv_stall_events += r->kv.stall_events();
    m.kv_over_release_events += r->kv.over_release_events();
    m.kv_capacity_blocks += r->kv.capacity_blocks();
    m.kv_peak_used_blocks += r->kv.peak_used_blocks();
    m.kv_peak_frag_tokens += r->kv.peak_frag_tokens();
    m.preemptions += r->preemptions;
    m.recompute_tokens += r->recompute_tokens;
    // kv_blocks_in_use_at_end is summed from the finalized per-replica
    // metrics below: finalize_metrics drains each replica's prefix cache
    // first, so reading used_blocks() here would count retained cache
    // blocks as leaks.
    result.routed.push_back(r->routed);
  }
  m.offered = run.shared.injected;
  m.slo_good = good;
  m.slo = config_.replicas.front().slo;
  m.duration_s = duration_s;
  if (duration_s > 0) {
    m.throughput_req_s = static_cast<double>(m.completed) / duration_s;
    m.throughput_tok_s = static_cast<double>(m.total_tokens) / duration_s;
    m.decode_tok_s = static_cast<double>(m.decode_tokens) / duration_s;
    m.goodput_req_s = static_cast<double>(good) / duration_s;
    m.busy_fraction =
        static_cast<double>(busy) /
        (static_cast<double>(makespan) * static_cast<double>(n));
  }
  const core::ArchConfig& arch = config_.replicas.front().arch;
  m.ttft_ms = detail::cycle_summary_ms(std::move(ttft), arch);
  m.token_ms = util::percentile_summary(std::move(token));
  m.e2e_ms = detail::cycle_summary_ms(std::move(e2e), arch);
  m.queue_wait_ms = detail::cycle_summary_ms(std::move(queue_wait), arch);
  m.inter_token_gap_ms = detail::cycle_summary_ms(std::move(gap), arch);
  if (m.iterations > 0) {
    m.mean_batch_size = batch_members / static_cast<double>(m.iterations);
  }
  m.decode_stall_ms =
      config_.replicas.front().arch.cycles_to_ms(decode_stall);
  m.recompute_ms = config_.replicas.front().arch.cycles_to_ms(recompute);
  m.peak_in_flight = run.shared.peak_active;
  m.preempt = config_.replicas.front().scheduler.preempt;
  m.kv_block_tokens = run.replicas.front()->kv.block_tokens();

  result.disaggregated = config_.disaggregated();
  result.roles = config_.roles;
  if (run.fabric != nullptr) result.fabric_bytes = run.fabric->total_bytes();

  // ---- Live-replica accounting (trivial for static fleets: every
  // replica live for the whole makespan) ----
  result.autoscaled = config_.autoscale.enabled;
  result.scale_events = std::move(run.scale_log);
  // Fleet-wide live timeline: the per-tier scale events replayed as ±1
  // deltas on the summed initial live count. On a symmetric fleet the one
  // tier IS the fleet, so this reproduces the legacy (at, e.to) timeline
  // entry for entry.
  std::uint32_t initial_live = 0;
  for (const FleetRun::Tier& tier : run.tiers) {
    initial_live += tier.timeline.front().second;
  }
  std::vector<std::pair<sim::Cycles, std::uint32_t>> timeline;
  timeline.reserve(result.scale_events.size() + 1);
  timeline.emplace_back(0, initial_live);
  std::uint32_t running_live = initial_live;
  for (const ScaleEvent& e : result.scale_events) {
    running_live += e.to;
    running_live -= e.from;
    timeline.emplace_back(e.at, running_live);
  }
  result.min_live_replicas = initial_live;
  result.peak_live_replicas = initial_live;
  std::uint64_t live_cycles = 0;
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const sim::Cycles until =
        i + 1 < timeline.size() ? timeline[i + 1].first : makespan;
    live_cycles += static_cast<std::uint64_t>(timeline[i].second) *
                   (until - timeline[i].first);
    result.min_live_replicas =
        std::min(result.min_live_replicas, timeline[i].second);
    result.peak_live_replicas =
        std::max(result.peak_live_replicas, timeline[i].second);
  }
  if (makespan > 0) {
    result.mean_live_replicas =
        static_cast<double>(live_cycles) / static_cast<double>(makespan);
  }
  // Occupancy is accounted per tier: each member's live spans come from
  // its own tier's timeline (on a symmetric fleet the tier timeline and
  // member positions are exactly the legacy fleet-wide ones).
  std::vector<std::uint64_t> tier_occupied(run.tiers.size(), 0);
  for (std::size_t t = 0; t < run.tiers.size(); ++t) {
    const FleetRun::Tier& tier = run.tiers[t];
    for (std::size_t p = 0; p < tier.members.size(); ++p) {
      tier_occupied[t] +=
          occupied_cycles(tier.timeline, static_cast<std::uint32_t>(p),
                          makespan, *run.replicas[tier.members[p]]);
    }
    result.replica_cycles += tier_occupied[t];
  }
  result.replica_seconds =
      static_cast<double>(result.replica_cycles) / frequency;

  result.replicas.reserve(n);
  for (auto& r : run.replicas) {
    result.replicas.push_back(detail::finalize_metrics(*r));
  }
  if (observer != nullptr) observer->finalize(makespan);
  for (const FleetMetrics& rm : result.replicas) {
    m.requests.insert(m.requests.end(), rm.requests.begin(),
                      rm.requests.end());
    m.kv_blocks_in_use_at_end += rm.kv_blocks_in_use_at_end;
    m.prefix_cache = m.prefix_cache || rm.prefix_cache;
    m.kv_swap = m.kv_swap || rm.kv_swap;
    m.cache_lookups += rm.cache_lookups;
    m.cache_lookup_tokens += rm.cache_lookup_tokens;
    m.cache_hit_requests += rm.cache_hit_requests;
    m.cache_hit_tokens += rm.cache_hit_tokens;
    m.saved_prefill_cycles += rm.saved_prefill_cycles;
    m.saved_prefill_ms += rm.saved_prefill_ms;
    m.cache_insert_blocks += rm.cache_insert_blocks;
    m.cache_evict_blocks += rm.cache_evict_blocks;
    m.cache_cow_events += rm.cache_cow_events;
    m.cache_dedup_blocks += rm.cache_dedup_blocks;
    m.cache_swap_out_blocks += rm.cache_swap_out_blocks;
    m.cache_swap_in_blocks += rm.cache_swap_in_blocks;
    m.cache_swap_ms += rm.cache_swap_ms;
    m.cache_blocks_at_end += rm.cache_blocks_at_end;
    m.prefill_cycles += rm.prefill_cycles;
    m.kv_migrations += rm.kv_migrations;
    m.kv_migrated_blocks += rm.kv_migrated_blocks;
    m.kv_migrate_wire_bytes += rm.kv_migrate_wire_bytes;
    m.kv_migrate_ingest_ms += rm.kv_migrate_ingest_ms;
    m.work_steals += rm.work_steals;
    m.steal_wire_bytes += rm.steal_wire_bytes;
    m.handoffs_in += rm.handoffs_in;
    m.handoffs_out += rm.handoffs_out;
  }
  if (m.cache_lookup_tokens > 0) {
    m.cache_hit_rate = static_cast<double>(m.cache_hit_tokens) /
                       static_cast<double>(m.cache_lookup_tokens);
  }
  std::sort(m.requests.begin(), m.requests.end(),
            [](const RequestRecord& a, const RequestRecord& b) {
              return a.id < b.id;
            });

  // Load imbalance over the routing-eligible replicas only: on a
  // disaggregated fleet decode replicas receive zero fresh arrivals by
  // design, so folding them into the mean would read a healthy role split
  // as pathological imbalance. Symmetric fleets have every replica
  // eligible — the arithmetic (and its bits) is unchanged.
  std::uint64_t max_routed = 0, total_routed = 0;
  std::uint64_t eligible = 0;
  for (std::size_t i = 0; i < result.routed.size(); ++i) {
    if (result.disaggregated && config_.roles[i] == ReplicaRole::kDecode) {
      continue;
    }
    ++eligible;
    max_routed = std::max(max_routed, result.routed[i]);
    total_routed += result.routed[i];
  }
  if (total_routed > 0) {
    result.load_imbalance = static_cast<double>(max_routed) *
                            static_cast<double>(eligible) /
                            static_cast<double>(total_routed);
  }
  bool any = false;
  double lo = 0, hi = 0;
  for (const FleetMetrics& rm : result.replicas) {
    if (rm.completed == 0) continue;
    if (!any) {
      lo = hi = rm.ttft_ms.p99;
      any = true;
    } else {
      lo = std::min(lo, rm.ttft_ms.p99);
      hi = std::max(hi, rm.ttft_ms.p99);
    }
  }
  result.ttft_p99_spread_ms = any ? hi - lo : 0.0;

  // Per-tier rollups (disaggregated fleets only — symmetric results keep
  // `tiers` empty so their tables and digests cannot move).
  if (result.disaggregated) {
    result.tiers.reserve(run.tiers.size());
    for (std::size_t t = 0; t < run.tiers.size(); ++t) {
      const FleetRun::Tier& tier = run.tiers[t];
      FleetResult::TierStats ts;
      ts.role = tier.role;
      ts.members = tier.members;
      ts.replica_cycles = tier_occupied[t];
      ts.min_live = tier.timeline.front().second;
      ts.peak_live = ts.min_live;
      std::uint64_t tier_live_cycles = 0;
      for (std::size_t i = 0; i < tier.timeline.size(); ++i) {
        const sim::Cycles until = i + 1 < tier.timeline.size()
                                      ? tier.timeline[i + 1].first
                                      : makespan;
        tier_live_cycles +=
            static_cast<std::uint64_t>(tier.timeline[i].second) *
            (until - tier.timeline[i].first);
        ts.min_live = std::min(ts.min_live, tier.timeline[i].second);
        ts.peak_live = std::max(ts.peak_live, tier.timeline[i].second);
      }
      if (makespan > 0) {
        ts.mean_live = static_cast<double>(tier_live_cycles) /
                       static_cast<double>(makespan);
      }
      bool tier_any = false;
      double tier_lo = 0, tier_hi = 0;
      for (std::uint32_t member : tier.members) {
        const FleetMetrics& rm = result.replicas[member];
        if (rm.completed == 0) continue;
        if (!tier_any) {
          tier_lo = tier_hi = rm.ttft_ms.p99;
          tier_any = true;
        } else {
          tier_lo = std::min(tier_lo, rm.ttft_ms.p99);
          tier_hi = std::max(tier_hi, rm.ttft_ms.p99);
        }
      }
      ts.ttft_p99_spread_ms = tier_any ? tier_hi - tier_lo : 0.0;
      result.tiers.push_back(std::move(ts));
    }
  }
  return result;
}

util::Table FleetResult::to_table(const std::string& title) const {
  util::Table t(title);
  // The role column exists only on disaggregated fleets, so symmetric
  // output stays byte-identical with disaggregation compiled in.
  std::vector<std::string> header = {
      "replica", "routed",  "done/shed", "goodput", "TTFT p50", "TTFT p99",
      "tok p99", "in-flt",  "busy",      "KV peak", "preempt"};
  if (disaggregated) header.insert(header.begin() + 1, "role");
  t.set_header(header);
  const auto row = [&](const std::string& name, const std::string& role,
                       const FleetMetrics& m, std::uint64_t routed_count) {
    std::vector<std::string> cells = {
        name, util::fmt_int(static_cast<long long>(routed_count)),
        util::fmt_int(static_cast<long long>(m.completed)) + "/" +
            util::fmt_int(static_cast<long long>(m.rejected)),
        util::fmt_fixed(m.goodput_req_s, 2),
        util::fmt_fixed(m.ttft_ms.p50, 1),
        util::fmt_fixed(m.ttft_ms.p99, 1),
        util::fmt_fixed(m.token_ms.p99, 2),
        util::fmt_int(m.peak_in_flight),
        util::fmt_percent(m.busy_fraction, 1),
        util::fmt_percent(m.kv_peak_occupancy, 1),
        util::fmt_int(static_cast<long long>(m.preemptions))};
    if (disaggregated) cells.insert(cells.begin() + 1, role);
    t.add_row(cells);
  };
  for (std::size_t i = 0; i < replicas.size(); ++i) {
    const std::string role =
        disaggregated ? replica_role_name(roles[i]) : "";
    row(std::to_string(i), role, replicas[i], routed[i]);
  }
  t.add_separator();
  row("fleet", "-", fleet, fleet.offered);
  return t;
}

}  // namespace looplynx::serve
