#include "hw/hbm.hpp"

#include <cmath>

namespace looplynx::hw {

sim::Cycles HbmChannel::burst_cycles(std::uint64_t bytes) const {
  if (bytes == 0) return 0;
  const double effective_bpc =
      config_.bytes_per_cycle * config_.burst_efficiency;
  const auto data_cycles = static_cast<sim::Cycles>(
      std::ceil(static_cast<double>(bytes) / effective_bpc));
  return config_.burst_setup_cycles + data_cycles;
}

sim::Task HbmChannel::read(std::uint64_t bytes) {
  return transfer(bytes, /*is_write=*/false);
}

sim::Task HbmChannel::write(std::uint64_t bytes) {
  return transfer(bytes, /*is_write=*/true);
}

sim::Task HbmChannel::transfer(std::uint64_t bytes, bool is_write) {
  if (bytes == 0) co_return;
  co_await mutex_.lock();
  const sim::Cycles cost = burst_cycles(bytes);
  co_await engine_->delay(cost);
  busy_cycles_ += cost;
  if (is_write) {
    bytes_written_ += bytes;
  } else {
    bytes_read_ += bytes;
  }
  mutex_.unlock();
}

double HbmChannel::utilization() const {
  const sim::Cycles now = engine_->now();
  if (now == 0) return 0.0;
  return static_cast<double>(busy_cycles_) / static_cast<double>(now);
}

}  // namespace looplynx::hw
