// Seed-sweep property harness for the serve layer: runs the
// {batch policy x preempt policy x balancer x autoscale} matrix over a
// spread of traffic seeds and asserts *structural* invariants after every
// run — properties that must hold for any config, not pinned outcomes.
//
// The invariants:
//  - Request conservation: every injected request is accounted for at the
//    horizon (completed + rejected == offered, fleet-wide and per
//    replica; nothing is still queued or running once the engine drains).
//  - KV block accounting: occupancy never exceeds capacity, no
//    over-release was ever clamped, and every block is back in the pool
//    at the end (frees match allocs).
//  - Per-record sanity: records are id-sorted and complete, queue wait
//    <= TTFT <= end-to-end latency, and the serving replica's index is
//    always below the live replica count at routing time (the live set
//    is the index prefix).
//  - Scale-event log: monotone fleet clock, single-step transitions
//    chained from min_replicas, never outside [min, max], and the
//    time-weighted live stats / replica-cycle cost are consistent with
//    the log.
//  - KV-transfer conservation (disaggregated fleets): every byte on the
//    ring fabric is a migration or steal byte (x hops), two-replica
//    topologies move exactly migrated-blocks x block-bytes over the wire,
//    every migrated request finishes on a decode-role replica, and the
//    per-replica cycle tiling (now including kv-migrate) still equals the
//    makespan under observation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/arch_config.hpp"
#include "model/config.hpp"
#include "serve/autoscaler.hpp"
#include "serve/fleet.hpp"
#include "serve/kv_block.hpp"
#include "serve/observe.hpp"
#include "serve/serving_sim.hpp"
#include "serve/traffic.hpp"
#include "workload/mix.hpp"

namespace looplynx::serve {
namespace {

/// Cosim dimensions with a context window wide enough for the whale
/// scenarios the skewed mixes use.
model::ModelConfig harness_model() {
  model::ModelConfig m = model::cosim_config();
  m.name = "cosim-256";
  m.max_seq_len = 256;
  return m;
}

struct MatrixPoint {
  std::string name;
  BatchPolicy policy = BatchPolicy::kPrefillPriority;
  std::uint32_t chunk_tokens = 0;
  PreemptPolicy preempt = PreemptPolicy::kNone;
  std::uint32_t kv_block_tokens = 1;
  /// 0 = default architecture budget; otherwise tokens-per-node budget.
  std::uint32_t kv_budget_tokens = 0;
  BalancerPolicy balancer = BalancerPolicy::kRoundRobin;
  std::uint32_t replicas = 2;  // pool size (== max_replicas if autoscaled)
  bool bursty = false;
  double rate = 300.0;
  bool autoscale = false;
  ScalePolicy scale_policy = ScalePolicy::kHybrid;
  std::uint32_t min_replicas = 1;
  /// Content-addressed prefix cache / swap tier (ServingConfig flags).
  bool prefix_cache = false;
  bool kv_swap = false;
  /// Replace the skewed mix with multi-turn chat traffic (scripted
  /// shapes whose replayed histories actually share content — the only
  /// traffic where cache invariants are non-vacuous across requests).
  bool chat = false;
  /// Disaggregated prefill/decode roles (empty = symmetric fleet, no
  /// fabric). Size must equal `replicas`.
  std::vector<ReplicaRole> roles = {};
  /// Per-tier autoscale bounds (disaggregated + autoscale points only;
  /// empty = the per-tier defaults: floor 1, ceiling = tier pool).
  std::vector<std::uint32_t> tier_min = {};
  std::vector<std::uint32_t> tier_max = {};
};

/// The matrix: every batch policy, both preempt policies, every balancer,
/// autoscaling off and on (all three scale policies) — 9 points x 5 seeds
/// = 45 runs, comfortably past the 24-combination floor.
std::vector<MatrixPoint> matrix() {
  std::vector<MatrixPoint> points;
  points.push_back({.name = "prefill-static-jsq",
                    .policy = BatchPolicy::kPrefillPriority,
                    .balancer = BalancerPolicy::kJoinShortestQueue});
  points.push_back({.name = "decode-static-rr",
                    .policy = BatchPolicy::kDecodePriority,
                    .replicas = 3});
  points.push_back({.name = "chunked-static-kv-bursty",
                    .policy = BatchPolicy::kChunkedMixed,
                    .chunk_tokens = 16,
                    .balancer = BalancerPolicy::kKvAware,
                    .bursty = true});
  points.push_back({.name = "single-replica-identity",
                    .policy = BatchPolicy::kPrefillPriority,
                    .replicas = 1});
  points.push_back({.name = "paged-preempt-static-rr",
                    .policy = BatchPolicy::kChunkedMixed,
                    .chunk_tokens = 16,
                    .preempt = PreemptPolicy::kRecomputeYoungest,
                    .kv_block_tokens = 4,
                    .kv_budget_tokens = 56,
                    .rate = 1200.0});
  points.push_back({.name = "autoscale-queue-prefill",
                    .policy = BatchPolicy::kPrefillPriority,
                    .replicas = 3,
                    .bursty = true,
                    .autoscale = true,
                    .scale_policy = ScalePolicy::kQueueDepth});
  points.push_back({.name = "autoscale-slo-decode-kv",
                    .policy = BatchPolicy::kDecodePriority,
                    .balancer = BalancerPolicy::kKvAware,
                    .replicas = 2,
                    .autoscale = true,
                    .scale_policy = ScalePolicy::kSloTtft});
  points.push_back({.name = "autoscale-hybrid-paged-jsq",
                    .policy = BatchPolicy::kChunkedMixed,
                    .chunk_tokens = 16,
                    .preempt = PreemptPolicy::kRecomputeYoungest,
                    .kv_block_tokens = 4,
                    .kv_budget_tokens = 128,
                    .balancer = BalancerPolicy::kJoinShortestQueue,
                    .replicas = 3,
                    .bursty = true,
                    .rate = 900.0,
                    .autoscale = true,
                    .scale_policy = ScalePolicy::kHybrid});
  points.push_back({.name = "cache-chat-paged-preempt",
                    .policy = BatchPolicy::kChunkedMixed,
                    .chunk_tokens = 16,
                    .preempt = PreemptPolicy::kRecomputeYoungest,
                    .kv_block_tokens = 4,
                    .kv_budget_tokens = 96,
                    .rate = 1200.0,
                    .prefix_cache = true,
                    .chat = true});
  points.push_back({.name = "cache-swap-cost-aware",
                    .policy = BatchPolicy::kChunkedMixed,
                    .chunk_tokens = 16,
                    .preempt = PreemptPolicy::kRecomputeCostAware,
                    .kv_block_tokens = 4,
                    .kv_budget_tokens = 96,
                    .replicas = 1,
                    .rate = 1200.0,
                    .prefix_cache = true,
                    .kv_swap = true,
                    .chat = true});
  points.push_back({.name = "cache-unpaged-whole-footprint",
                    .policy = BatchPolicy::kDecodePriority,
                    .kv_block_tokens = 4,
                    .kv_budget_tokens = 128,
                    .prefix_cache = true,
                    .chat = true});
  points.push_back({.name = "disagg-1p1d-jsq",
                    .policy = BatchPolicy::kPrefillPriority,
                    .balancer = BalancerPolicy::kJoinShortestQueue,
                    .replicas = 2,
                    .roles = {ReplicaRole::kPrefill, ReplicaRole::kDecode}});
  points.push_back({.name = "disagg-2p1d-rr-bursty",
                    .policy = BatchPolicy::kPrefillPriority,
                    .replicas = 3,
                    .bursty = true,
                    .rate = 600.0,
                    .roles = {ReplicaRole::kPrefill, ReplicaRole::kPrefill,
                              ReplicaRole::kDecode}});
  points.push_back({.name = "disagg-paged-chunked-pgd",
                    .policy = BatchPolicy::kChunkedMixed,
                    .chunk_tokens = 16,
                    .kv_block_tokens = 4,
                    .balancer = BalancerPolicy::kJoinShortestQueue,
                    .replicas = 3,
                    .rate = 1200.0,
                    .roles = {ReplicaRole::kPrefill, ReplicaRole::kGeneral,
                              ReplicaRole::kDecode}});
  points.push_back({.name = "disagg-cache-chat-1p1d",
                    .policy = BatchPolicy::kChunkedMixed,
                    .chunk_tokens = 16,
                    .kv_block_tokens = 4,
                    .replicas = 2,
                    .rate = 1200.0,
                    .prefix_cache = true,
                    .chat = true,
                    .roles = {ReplicaRole::kPrefill, ReplicaRole::kDecode}});
  // Scales while migrating: per-tier autoscaling on a disaggregated
  // fleet, so scale-down drains overlap in-flight KV migrations and the
  // hand-off conservation terms must survive live-mask changes.
  points.push_back({.name = "disagg-autoscale-2p1d",
                    .policy = BatchPolicy::kPrefillPriority,
                    .balancer = BalancerPolicy::kJoinShortestQueue,
                    .replicas = 3,
                    .bursty = true,
                    .rate = 600.0,
                    .autoscale = true,
                    .scale_policy = ScalePolicy::kHybrid,
                    .roles = {ReplicaRole::kPrefill, ReplicaRole::kPrefill,
                              ReplicaRole::kDecode},
                    .tier_min = {1, 1},
                    .tier_max = {2, 1}});
  points.push_back({.name = "autoscale-hybrid-floor2",
                    .policy = BatchPolicy::kChunkedMixed,
                    .chunk_tokens = 24,
                    .balancer = BalancerPolicy::kJoinShortestQueue,
                    .replicas = 4,
                    .bursty = true,
                    .rate = 600.0,
                    .autoscale = true,
                    .min_replicas = 2});
  return points;
}

FleetConfig build_config(const MatrixPoint& p, std::uint64_t seed) {
  ServingConfig base;
  base.arch = core::ArchConfig::one_node();
  base.model = harness_model();
  base.cost_probe_stride = 16;
  base.traffic.mix = workload::Mix{"skewed",
                                   {{workload::make_scenario(8, 16), 0.7},
                                    {workload::make_scenario(192, 48), 0.2},
                                    {workload::make_scenario(4, 40), 0.1}}};
  base.traffic.num_requests = 32;
  base.traffic.arrival_rate_per_s = p.rate;
  base.traffic.seed = seed;
  if (p.chat) {
    // Small enough for the 256-token context window: longest prompt is
    // 24 + 2 x (8 + 8) + 8 = 64 tokens, +8 decode.
    ChatTrafficConfig chat;
    chat.conversations = 3;
    chat.turns = 3;
    chat.system_prompt_tokens = 24;
    chat.user_turn_tokens = 8;
    chat.reply_tokens = 8;
    base.traffic.scripted_shapes = chat_turn_shapes(chat);
    base.traffic.num_requests =
        static_cast<std::uint32_t>(base.traffic.scripted_shapes.size());
  }
  base.prefix_cache = p.prefix_cache;
  base.kv_swap = p.kv_swap;
  if (p.bursty) {
    base.traffic.process = ArrivalProcess::kBursty;
    base.traffic.burst_factor = 4.0;
    base.traffic.burst_fraction = 0.25;
    base.traffic.burst_period_s = 0.05;
  }
  base.scheduler.max_batch = 4;
  base.scheduler.max_in_flight = 6;
  base.scheduler.policy = p.policy;
  base.scheduler.max_tokens_per_iter = p.chunk_tokens;
  base.scheduler.preempt = p.preempt;
  base.kv_block_tokens = p.kv_block_tokens;
  if (p.kv_budget_tokens > 0) {
    KvBlockManager probe(base.arch, base.model, 1);
    base.kv_budget_bytes_per_node =
        p.kv_budget_tokens * probe.bytes_per_token_per_node();
  }
  base.slo.ttft_ms = 5.0;
  base.slo.token_ms = 2.0;
  base.keep_request_records = true;

  FleetConfig cfg = FleetConfig::homogeneous(base, p.replicas, p.balancer);
  if (!p.roles.empty()) {
    cfg.roles = p.roles;
    cfg.kv_link.bytes_per_cycle = 32.0;
  }
  if (p.autoscale) {
    cfg.autoscale.enabled = true;
    cfg.autoscale.policy = p.scale_policy;
    cfg.autoscale.min_replicas = p.min_replicas;
    cfg.autoscale.max_replicas = p.replicas;
    cfg.autoscale.tier_min = p.tier_min;
    cfg.autoscale.tier_max = p.tier_max;
    cfg.autoscale.eval_interval_ms = 2.0;
    cfg.autoscale.ttft_window_ms = 10.0;
    cfg.autoscale.queue_high = 1.5;
    cfg.autoscale.queue_low = 0.25;
    cfg.autoscale.up_evals = 1;
    cfg.autoscale.down_evals = 2;
    cfg.autoscale.cooldown_evals = 1;
  }
  return cfg;
}

void check_invariants(const FleetConfig& cfg, const FleetResult& r,
                      const std::string& tag) {
  SCOPED_TRACE(tag);
  const FleetMetrics& fleet = r.fleet;
  const auto pool = static_cast<std::uint32_t>(cfg.replicas.size());

  // ---- Request conservation at the horizon ----
  EXPECT_EQ(fleet.offered, cfg.traffic.num_requests);
  EXPECT_EQ(fleet.completed + fleet.rejected, fleet.offered);
  ASSERT_EQ(r.replicas.size(), pool);
  ASSERT_EQ(r.routed.size(), pool);
  std::uint64_t routed_sum = 0, completed_sum = 0;
  for (std::uint32_t i = 0; i < pool; ++i) {
    const FleetMetrics& rm = r.replicas[i];
    EXPECT_EQ(rm.offered, r.routed[i]);
    // Hand-offs (KV migration / work stealing) move a routed request to a
    // peer, so per-replica conservation carries the transfer terms; on a
    // symmetric fleet both are 0 and this is the legacy identity.
    EXPECT_EQ(rm.completed + rm.rejected + rm.handoffs_out,
              rm.offered + rm.handoffs_in);
    routed_sum += r.routed[i];
    completed_sum += rm.completed;
  }
  EXPECT_EQ(routed_sum, fleet.offered);
  EXPECT_EQ(completed_sum, fleet.completed);
  // Nothing is lost on the wire: every hand-off shipped is delivered.
  EXPECT_EQ(fleet.handoffs_in, fleet.handoffs_out);
  EXPECT_EQ(fleet.handoffs_out, fleet.kv_migrations + fleet.work_steals);

  // ---- KV block accounting ----
  EXPECT_EQ(fleet.kv_over_release_events, 0u);
  EXPECT_EQ(fleet.kv_blocks_in_use_at_end, 0u);  // frees match allocs
  EXPECT_LE(fleet.kv_peak_occupancy, 1.0);
  for (const FleetMetrics& rm : r.replicas) {
    EXPECT_LE(rm.kv_peak_used_blocks, rm.kv_capacity_blocks);
    EXPECT_LE(rm.kv_peak_occupancy, 1.0);
    EXPECT_EQ(rm.kv_over_release_events, 0u);
    EXPECT_EQ(rm.kv_blocks_in_use_at_end, 0u);
  }

  // ---- Per-record sanity ----
  ASSERT_EQ(fleet.requests.size(), fleet.offered);
  // Tier bookkeeping (distinct roles in first-appearance order; a
  // symmetric fleet is a single tier holding the whole pool).
  std::vector<ReplicaRole> tier_roles;
  std::vector<std::uint32_t> tier_pool;
  for (const ReplicaRole role : cfg.roles) {
    std::size_t t = 0;
    while (t < tier_roles.size() && tier_roles[t] != role) ++t;
    if (t == tier_roles.size()) {
      tier_roles.push_back(role);
      tier_pool.push_back(0);
    }
    ++tier_pool[t];
  }
  const auto ntiers = tier_roles.size();
  // Under per-tier autoscaling `live_replicas` sums every tier's live
  // prefix: the floor sums the tier floors, the ceiling is the pool.
  std::uint32_t live_floor = pool, live_ceiling = pool;
  if (cfg.autoscale.enabled) {
    if (!cfg.disaggregated()) {
      live_floor = cfg.autoscale.min_replicas;
      live_ceiling = cfg.autoscale.max_replicas;
    } else if (cfg.autoscale.tier_min.empty()) {
      live_floor = static_cast<std::uint32_t>(ntiers);  // default: 1 per tier
    } else {
      live_floor = 0;
      for (const std::uint32_t m : cfg.autoscale.tier_min) live_floor += m;
    }
  }
  for (std::size_t i = 0; i < fleet.requests.size(); ++i) {
    const RequestRecord& rec = fleet.requests[i];
    EXPECT_EQ(rec.id, i);  // id-sorted, gap-free == injection order
    EXPECT_LT(rec.replica, pool);
    EXPECT_GE(rec.live_replicas, live_floor);
    EXPECT_LE(rec.live_replicas, live_ceiling);
    // On a symmetric fleet the live set is the index prefix, so the
    // serving replica was live when this request was routed. A
    // disaggregated fleet's live set is a prefix per tier, not a fleet
    // index prefix — a request can finish on a high-index decode replica
    // while low-index prefill slots are dark — so the inequality only
    // binds without roles.
    if (!cfg.disaggregated()) {
      EXPECT_LT(rec.replica, rec.live_replicas);
    }
    if (rec.rejected) continue;
    EXPECT_GE(rec.queue_wait_ms, 0.0);
    EXPECT_LE(rec.queue_wait_ms, rec.ttft_ms);
    EXPECT_LE(rec.ttft_ms, rec.e2e_ms);
  }

  // ---- KV-transfer conservation (disaggregated fleets) ----
  EXPECT_EQ(r.disaggregated, cfg.disaggregated());
  if (cfg.disaggregated()) {
    ASSERT_EQ(r.roles.size(), pool);
    std::uint64_t migrated_records = 0, stolen_records = 0;
    for (const RequestRecord& rec : fleet.requests) {
      if (rec.migrated) {
        ++migrated_records;
        EXPECT_FALSE(rec.rejected);  // migration happens after admission
        // Migration ships a finished prompt's KV to a decode replica, so
        // every migrated request must have *finished* on one.
        EXPECT_EQ(r.roles[rec.replica], ReplicaRole::kDecode)
            << "migrated request " << rec.id
            << " finished on non-decode replica " << rec.replica;
      }
      if (rec.stolen) ++stolen_records;
    }
    EXPECT_EQ(fleet.kv_migrations, migrated_records);
    EXPECT_EQ(fleet.work_steals, stolen_records);
    // Every byte the fabric carried is a migration or steal byte (each
    // counted bytes x hops on both sides of the ledger).
    EXPECT_EQ(r.fabric_bytes,
              fleet.kv_migrate_wire_bytes + fleet.steal_wire_bytes);
    if (pool == 2) {
      // Two replicas: every migration path is exactly one hop, so the
      // wire total is literally migrated blocks x block bytes.
      const ServingConfig& base = cfg.replicas.front();
      KvBlockManager probe(base.arch, base.model, 0, base.kv_block_tokens);
      EXPECT_EQ(fleet.kv_migrate_wire_bytes,
                fleet.kv_migrated_blocks * probe.block_bytes());
    }
  } else {
    EXPECT_TRUE(r.roles.empty());
    EXPECT_EQ(r.fabric_bytes, 0u);
    EXPECT_EQ(fleet.kv_migrations, 0u);
    EXPECT_EQ(fleet.kv_migrated_blocks, 0u);
    EXPECT_EQ(fleet.kv_migrate_wire_bytes, 0u);
    EXPECT_EQ(fleet.work_steals, 0u);
    EXPECT_EQ(fleet.steal_wire_bytes, 0u);
  }

  // ---- Scale-event log ----
  if (!cfg.autoscale.enabled) {
    EXPECT_TRUE(r.scale_events.empty());
    EXPECT_EQ(r.min_live_replicas, pool);
    EXPECT_EQ(r.peak_live_replicas, pool);
    EXPECT_DOUBLE_EQ(r.mean_live_replicas, static_cast<double>(pool));
  } else if (!cfg.disaggregated()) {
    std::uint32_t live = cfg.autoscale.min_replicas;
    sim::Cycles last_at = 0;
    for (const ScaleEvent& e : r.scale_events) {
      EXPECT_GE(e.at, last_at);  // monotone fleet clock
      last_at = e.at;
      EXPECT_EQ(e.tier, 0u);    // one tier: the whole fleet
      EXPECT_EQ(e.from, live);  // chained single-step transitions
      EXPECT_TRUE(e.to == e.from + 1 || e.to + 1 == e.from);
      EXPECT_GE(e.to, cfg.autoscale.min_replicas);
      EXPECT_LE(e.to, cfg.autoscale.max_replicas);
      live = e.to;
    }
    EXPECT_GE(r.min_live_replicas, cfg.autoscale.min_replicas);
    EXPECT_LE(r.peak_live_replicas, cfg.autoscale.max_replicas);
  } else {
    // Per-tier chains: each tier's from -> to transitions chain from its
    // own floor, step by one replica, and never leave [floor, tier pool].
    std::vector<std::uint32_t> floors(ntiers, 1);
    if (!cfg.autoscale.tier_min.empty()) {
      ASSERT_EQ(cfg.autoscale.tier_min.size(), ntiers);
      floors = cfg.autoscale.tier_min;
    }
    std::vector<std::uint32_t> live = floors;
    sim::Cycles last_at = 0;
    for (const ScaleEvent& e : r.scale_events) {
      EXPECT_GE(e.at, last_at);  // monotone shared fleet clock
      last_at = e.at;
      ASSERT_LT(e.tier, ntiers);
      EXPECT_EQ(e.from, live[e.tier]);
      EXPECT_TRUE(e.to == e.from + 1 || e.to + 1 == e.from);
      EXPECT_GE(e.to, floors[e.tier]);
      EXPECT_LE(e.to, tier_pool[e.tier]);
      live[e.tier] = e.to;
    }
    EXPECT_GE(r.min_live_replicas, live_floor);
    EXPECT_LE(r.peak_live_replicas, pool);
  }
  EXPECT_GE(r.mean_live_replicas, static_cast<double>(r.min_live_replicas));
  EXPECT_LE(r.mean_live_replicas, static_cast<double>(r.peak_live_replicas));

  // ---- Per-tier stats (disaggregated runs only) ----
  if (cfg.disaggregated()) {
    ASSERT_EQ(r.tiers.size(), ntiers);
    std::uint64_t tier_cycles = 0;
    std::size_t members = 0;
    for (std::size_t t = 0; t < ntiers; ++t) {
      const FleetResult::TierStats& tier = r.tiers[t];
      EXPECT_EQ(tier.role, tier_roles[t]);
      EXPECT_EQ(tier.members.size(), tier_pool[t]);
      for (const std::uint32_t m : tier.members) {
        ASSERT_LT(m, pool);
        EXPECT_EQ(cfg.roles[m], tier.role);
      }
      EXPECT_LE(tier.min_live, tier.peak_live);
      EXPECT_LE(tier.peak_live, tier_pool[t]);
      EXPECT_GE(tier.mean_live, static_cast<double>(tier.min_live));
      EXPECT_LE(tier.mean_live, static_cast<double>(tier.peak_live));
      tier_cycles += tier.replica_cycles;
      members += tier.members.size();
    }
    // The tiers partition the pool and their occupancy sums to the
    // fleet's replica-cycle cost exactly.
    EXPECT_EQ(members, pool);
    EXPECT_EQ(tier_cycles, r.replica_cycles);
  } else {
    EXPECT_TRUE(r.tiers.empty());
  }

  // ---- Cost accounting ----
  // Occupied replica-time is bounded by the whole pool running the whole
  // makespan, and is at least the live (routable) integral.
  const double budget =
      static_cast<double>(pool) * fleet.duration_s + 1e-9;
  EXPECT_LE(r.replica_seconds, budget);
  EXPECT_GE(r.replica_seconds,
            r.mean_live_replicas * fleet.duration_s - 1e-9);
  EXPECT_EQ(r.autoscaled, cfg.autoscale.enabled);
}

TEST(ServeInvariants, MatrixHoldsAcrossSeeds) {
  for (const MatrixPoint& p : matrix()) {
    for (const std::uint64_t seed : {1ull, 7ull, 13ull, 29ull, 97ull}) {
      const FleetConfig cfg = build_config(p, seed);
      const FleetResult r = FleetSim(cfg).run();
      check_invariants(cfg, r,
                       p.name + " seed " + std::to_string(seed));
    }
  }
}

/// The preempting matrix points must actually exercise preemption for at
/// least one seed — otherwise the KV invariants above are vacuous there.
TEST(ServeInvariants, PreemptingPointsActuallyPreempt) {
  std::uint64_t preemptions = 0;
  for (const MatrixPoint& p : matrix()) {
    if (p.preempt == PreemptPolicy::kNone) continue;
    for (const std::uint64_t seed : {1ull, 7ull, 13ull}) {
      preemptions += FleetSim(build_config(p, seed)).run().fleet.preemptions;
    }
  }
  EXPECT_GT(preemptions, 0u);
}

/// The cache-on matrix points must actually hit (and, under pool
/// pressure, exercise the eviction tiers) for at least one seed —
/// otherwise the blocks-in-use == 0 drain invariant above never sees a
/// populated cache.
TEST(ServeInvariants, CachePointsActuallyHitAndReclaim) {
  std::uint64_t hit_tokens = 0, tier_events = 0;
  for (const MatrixPoint& p : matrix()) {
    if (!p.prefix_cache) continue;
    for (const std::uint64_t seed : {1ull, 7ull, 13ull}) {
      const FleetMetrics m = FleetSim(build_config(p, seed)).run().fleet;
      EXPECT_TRUE(m.prefix_cache);
      hit_tokens += m.cache_hit_tokens;
      tier_events += m.cache_evict_blocks + m.cache_swap_out_blocks;
    }
  }
  EXPECT_GT(hit_tokens, 0u);
  EXPECT_GT(tier_events, 0u);
}

/// Post-refactor non-vacuity at scale: the flat-state hot path (slot-map
/// arena, class-split ready lists, scheduler-driven stepping) must carry a
/// 100k-request sweep — three orders of magnitude past the matrix points —
/// with every conservation and KV invariant intact, comfortably inside
/// ctest's 300 s timeout (Release wall clock is well under a second per
/// run; the sanitizer leg has two orders of magnitude of headroom).
/// Chunked + paged-preemption is the configuration that exercises every
/// arena transition: admit, defer, preempt, recompute, retire, recycle.
TEST(ServeInvariants, HundredThousandRequestSweep) {
  MatrixPoint p;
  p.name = "100k-chunked-paged";
  p.policy = BatchPolicy::kChunkedMixed;
  p.chunk_tokens = 64;
  p.preempt = PreemptPolicy::kRecomputeYoungest;
  p.kv_block_tokens = 16;
  p.kv_budget_tokens = 2048;  // tight enough that eviction actually fires
  p.replicas = 1;
  p.rate = 5e6;

  FleetConfig cfg = build_config(p, /*seed=*/42);
  cfg.traffic.num_requests = 100000;  // the fleet-level arrival stream
  ServingConfig& base = cfg.replicas.front();
  base.scheduler.max_batch = 8;
  base.scheduler.max_in_flight = 64;
  base.scheduler.queue_capacity = 100000;  // shed nothing at the door
  // Per-record checks over 100k requests stay O(n); the sample vectors
  // behind the percentile summaries are exercised at real scale too.
  const FleetResult r = FleetSim(cfg).run();
  check_invariants(cfg, r, p.name);
  EXPECT_EQ(r.fleet.completed, 100000u);
  EXPECT_GT(r.fleet.preemptions, 0u);  // the paged pressure is non-vacuous
}

/// The disaggregated matrix points must actually migrate (and, across the
/// steal-prone shapes, actually steal) for at least one seed — otherwise
/// the KV-transfer conservation checks above are vacuous.
TEST(ServeInvariants, DisaggPointsActuallyMigrate) {
  std::uint64_t migrations = 0, blocks = 0, steals = 0;
  for (const MatrixPoint& p : matrix()) {
    if (p.roles.empty()) continue;
    for (const std::uint64_t seed : {1ull, 7ull, 13ull}) {
      const FleetMetrics m = FleetSim(build_config(p, seed)).run().fleet;
      migrations += m.kv_migrations;
      blocks += m.kv_migrated_blocks;
      steals += m.work_steals;
    }
  }
  EXPECT_GT(migrations, 0u);
  EXPECT_GT(blocks, 0u);
  // At least one matrix point x seed must exercise work stealing, or the
  // steal-side conservation terms above are vacuous.
  EXPECT_GT(steals, 0u);
}

/// Cycle tiling under disaggregation: with an Observer attached every
/// replica's categories — now including kv-migrate — must still tile
/// [0, makespan] exactly (Observer::finalize throws otherwise), and
/// observation must not perturb the run's results.
TEST(ServeInvariants, DisaggTilingHoldsAndObservationIsNeutral) {
  for (const MatrixPoint& p : matrix()) {
    if (p.roles.empty()) continue;
    SCOPED_TRACE(p.name);
    const FleetConfig cfg = build_config(p, /*seed=*/7);
    const FleetResult plain = FleetSim(cfg).run();
    Observer obs(cfg.replicas.size(), cfg.replicas.front().arch.frequency_hz);
    const FleetResult observed = FleetSim(cfg).run(&obs);  // finalize asserts
    EXPECT_EQ(observed.fleet.completed, plain.fleet.completed);
    EXPECT_EQ(observed.fleet.kv_migrations, plain.fleet.kv_migrations);
    EXPECT_EQ(observed.fleet.kv_migrated_blocks,
              plain.fleet.kv_migrated_blocks);
    EXPECT_EQ(observed.fleet.kv_migrate_wire_bytes,
              plain.fleet.kv_migrate_wire_bytes);
    EXPECT_EQ(observed.fleet.work_steals, plain.fleet.work_steals);
    EXPECT_EQ(observed.fabric_bytes, plain.fabric_bytes);
    EXPECT_DOUBLE_EQ(observed.fleet.duration_s, plain.fleet.duration_s);
  }
}

/// And the autoscaled points must actually scale for at least one seed —
/// otherwise the scale-log invariants are vacuous.
TEST(ServeInvariants, AutoscaledPointsActuallyScale) {
  std::size_t events = 0;
  for (const MatrixPoint& p : matrix()) {
    if (!p.autoscale) continue;
    for (const std::uint64_t seed : {1ull, 7ull, 13ull}) {
      events += FleetSim(build_config(p, seed)).run().scale_events.size();
    }
  }
  EXPECT_GT(events, 0u);
}

}  // namespace
}  // namespace looplynx::serve
