#include "util/cli.hpp"

#include <cstdlib>

namespace looplynx::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      // Space-separated "--key value": the flag greedily takes the next
      // non-option token as its value.
      options_[arg] = argv[++i];
    } else {
      options_[arg] = "";  // bare flag
    }
  }
}

bool Cli::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::optional<std::string> Cli::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) return std::nullopt;
  return it->second;
}

std::string Cli::get_or(const std::string& name, std::string fallback) const {
  const auto v = get(name);
  return v ? *v : std::move(fallback);
}

long long Cli::get_int_or(const std::string& name, long long fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  return std::strtoll(v->c_str(), nullptr, 10);
}

double Cli::get_double_or(const std::string& name, double fallback) const {
  const auto v = get(name);
  if (!v || v->empty()) return fallback;
  return std::strtod(v->c_str(), nullptr);
}

bool Cli::get_bool_or(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes" || *v == "on") {
    return true;
  }
  return false;
}

}  // namespace looplynx::util
