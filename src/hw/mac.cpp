#include "hw/mac.hpp"

#include <cmath>

namespace looplynx::hw {

sim::Cycles MacArray::compute_cycles(std::uint64_t macs) const {
  if (macs == 0) return 0;
  const auto throughput_cycles = static_cast<sim::Cycles>(std::ceil(
      static_cast<double>(macs) / static_cast<double>(config_.lanes)));
  return config_.pipeline_depth + throughput_cycles + config_.drain_cycles;
}

sim::Task MacArray::compute(std::uint64_t macs) {
  if (macs == 0) co_return;
  const sim::Cycles cost = compute_cycles(macs);
  co_await engine_->delay(cost);
  busy_cycles_ += cost;
  total_macs_ += macs;
}

double MacArray::utilization() const {
  const sim::Cycles now = engine_->now();
  if (now == 0) return 0.0;
  return static_cast<double>(busy_cycles_) / static_cast<double>(now);
}

}  // namespace looplynx::hw
