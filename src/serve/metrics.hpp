// Fleet-level serving metrics: what the load benches sweep and the tests
// assert on. All latencies are reported in milliseconds of accelerator
// wall-clock (cycles / frequency); percentiles use util::percentile_summary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/preempt.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace looplynx::serve {

/// Per-request outcome, kept when ServingConfig::keep_request_records is
/// set (host::Host batch submission needs to map fleet timing back onto
/// individual callers). Ordered by request id == injection order.
struct RequestRecord {
  std::uint32_t id = 0;
  /// Index of the fleet replica that served this request (0 for
  /// single-replica runs; the LoadBalancer's routing decision otherwise).
  std::uint32_t replica = 0;
  std::uint32_t prefill_tokens = 0;
  std::uint32_t decode_tokens = 0;
  /// Scheduler iterations the prompt took (1 == unchunked prefill).
  std::uint32_t prefill_chunks = 0;
  /// Times the scheduler preempted this request (KV blocks dropped and the
  /// sequence re-run as prefill); 0 under PreemptPolicy::kNone.
  std::uint32_t preemptions = 0;
  /// Prompt tokens admission skipped via the content-addressed prefix
  /// cache (ServingConfig::prefix_cache); 0 with the cache off or on a
  /// clean miss.
  std::uint32_t cached_prefix_tokens = 0;
  /// Live replica count when the balancer routed this request (1 for
  /// single-replica runs, the fleet width for static fleets). Under
  /// symmetric autoscaling the live set is the index prefix [0, live), so
  /// `replica < live_replicas` always — pinned by the invariant harness.
  /// On a disaggregated fleet this sums every tier's live prefix, and the
  /// per-replica inequality no longer holds (a request can finish on a
  /// high-index decode replica while low-index prefill slots are dark).
  std::uint32_t live_replicas = 1;
  bool rejected = false;
  /// Request's KV blocks were shipped to a decode-role replica when its
  /// prompt finished (disaggregated fleets only). `replica` above records
  /// where the request *finished*, so migrated records always carry a
  /// decode-role replica id — pinned by the invariant harness.
  bool migrated = false;
  /// Request was handed to an idle neighbor by work stealing while still
  /// queued (disaggregated fleets only).
  bool stolen = false;
  double queue_wait_ms = 0;
  double ttft_ms = 0;  // arrival -> prefill egress
  double e2e_ms = 0;   // arrival -> completion
  /// Worst gap between consecutive host-visible tokens of this request —
  /// the jitter a long prompt landing mid-stream inflicts on a decode.
  double max_token_gap_ms = 0;
};

struct SloConfig {
  double ttft_ms = 500.0;   // time to first token
  double token_ms = 100.0;  // mean per-decode-token latency
};

struct FleetMetrics {
  // ---- Counts ----
  std::uint64_t offered = 0;    // requests injected by the traffic process
  std::uint64_t completed = 0;
  std::uint64_t rejected = 0;   // shed by admission control
  std::uint64_t decode_tokens = 0;  // produced across completed requests
  std::uint64_t total_tokens = 0;   // prefill + decode processed

  // ---- Rates (over the makespan) ----
  double duration_s = 0;
  double throughput_req_s = 0;
  double throughput_tok_s = 0;   // total tokens processed per second
  double decode_tok_s = 0;       // generated tokens per second
  /// Completed requests per second that met both SLOs — the metric that
  /// actually prices a fleet.
  double goodput_req_s = 0;
  /// Completed requests that met both SLOs (the goodput numerator): the
  /// makespan-independent form the autoscaling comparisons use, since an
  /// autoscaled run's makespan can trail a static run's by up to one
  /// evaluation interval.
  std::uint64_t slo_good = 0;
  SloConfig slo;

  // ---- Latency distributions (per completed request, ms) ----
  util::PercentileSummary ttft_ms;        // arrival -> prefill egress
  util::PercentileSummary token_ms;       // mean decode-token latency
  util::PercentileSummary e2e_ms;         // arrival -> completion
  util::PercentileSummary queue_wait_ms;  // arrival -> admission
  /// Gaps between consecutive host-visible tokens, pooled across all
  /// completed requests — the inter-token *jitter* distribution. Chunked
  /// prefill exists to bound its tail.
  util::PercentileSummary inter_token_gap_ms;

  // ---- Scheduler / resource occupancy ----
  std::uint64_t iterations = 0;
  double mean_batch_size = 0;
  /// Prefill chunk steps executed (== completed prompts when unchunked).
  std::uint64_t prefill_chunk_steps = 0;
  /// Completed requests whose prompt needed more than one chunk.
  std::uint64_t chunked_prompts = 0;
  /// Iterations where prompt work shared the pipeline with >= 1 running
  /// decode — every such iteration delays those decodes' tokens by the
  /// prompt span (they are host-visible only at batch egress).
  std::uint64_t decode_stall_iterations = 0;
  /// Total ms of prompt-work occupancy running decodes waited behind; the
  /// head-of-line blocking chunked prefill bounds per iteration.
  double decode_stall_ms = 0;
  std::uint32_t peak_in_flight = 0;  // most requests admitted at once
  std::size_t peak_queue_depth = 0;
  double busy_fraction = 0;       // pipeline-occupied cycles / makespan
  double kv_peak_occupancy = 0;   // peak KV blocks used / capacity
  /// KV allocations deferred by block pressure: admission attempts under
  /// both policies, plus on-demand decode/prefill grows under
  /// kRecomputeYoungest (each dry grow that triggers a preemption counts).
  std::uint64_t kv_stall_events = 0;
  /// Clamped KV over-releases — always a scheduler/accounting bug; 0 on a
  /// healthy fleet (the block manager clamps instead of wrapping).
  std::uint64_t kv_over_release_events = 0;
  /// KV blocks still allocated when the run drained — nonzero means a
  /// request finished without releasing its list (a leak the invariant
  /// harness pins at 0; frees must match allocs).
  std::uint64_t kv_blocks_in_use_at_end = 0;

  // ---- Paged KV + preemption (PreemptPolicy::kRecomputeYoungest) ----
  PreemptPolicy preempt = PreemptPolicy::kNone;
  std::uint32_t kv_block_tokens = 1;   // paging granularity this fleet ran
  std::uint32_t kv_capacity_blocks = 0;
  std::uint32_t kv_peak_used_blocks = 0;
  /// Peak internal fragmentation: allocated-but-uncommitted tokens in the
  /// tail block of every outstanding request (always 0 at block size 1).
  std::uint64_t kv_peak_frag_tokens = 0;
  std::uint64_t preemptions = 0;       // scheduler-driven KV evictions
  /// KV tokens dropped by preemptions — each re-runs as prefill work.
  std::uint64_t recompute_tokens = 0;
  /// Pipeline time those drops re-pay (StepCostModel::recompute_cycles).
  double recompute_ms = 0;

  // ---- Content-addressed prefix cache (ServingConfig::prefix_cache) ----
  bool prefix_cache = false;  // cache constructed for this run
  bool kv_swap = false;       // swap-to-host eviction tier enabled
  std::uint64_t cache_lookups = 0;        // admissions that consulted it
  std::uint64_t cache_lookup_tokens = 0;  // prompt tokens offered to lookup
  std::uint64_t cache_hit_requests = 0;   // admissions with >= 1 hit token
  std::uint64_t cache_hit_tokens = 0;     // prefill tokens skipped
  /// cache_hit_tokens / cache_lookup_tokens — the token-weighted hit rate
  /// (0 when the cache is off or nothing was offered).
  double cache_hit_rate = 0;
  /// Prefill pipeline cycles the hits skipped
  /// (StepCostModel::prefill_cycles over each hit prefix), and the same in
  /// milliseconds — the cache's direct saving.
  std::uint64_t saved_prefill_cycles = 0;
  double saved_prefill_ms = 0;
  std::uint64_t cache_insert_blocks = 0;   // blocks published to the cache
  std::uint64_t cache_evict_blocks = 0;    // cached-idle blocks discarded
  std::uint64_t cache_cow_events = 0;      // partial-tail copy-on-write hits
  std::uint64_t cache_dedup_blocks = 0;    // concurrent identical commits
  std::uint64_t cache_swap_out_blocks = 0; // evictions routed to host DRAM
  std::uint64_t cache_swap_in_blocks = 0;  // swapped blocks restored on hit
  double cache_swap_ms = 0;                // total DMA transfer time paid
  /// Cache-owned blocks still resident when the run drained (a gauge of
  /// retained reusable state, not a leak — drain() returns them all).
  std::uint64_t cache_blocks_at_end = 0;
  /// Prefill-class pipeline cycles actually executed (whole prompts,
  /// chunks and recompute re-runs) — the figure the cache shrinks; always
  /// populated so cache-on/off runs can be compared directly.
  std::uint64_t prefill_cycles = 0;

  // ---- Disaggregated prefill/decode (FleetConfig::roles) ----
  /// All zero on symmetric fleets (roles unset => no fabric, no migration).
  std::uint64_t kv_migrations = 0;        // prompts shipped prefill -> decode
  std::uint64_t kv_migrated_blocks = 0;   // KV blocks those shipments moved
  std::uint64_t kv_migrate_wire_bytes = 0;  // bytes x hops on the ring fabric
  double kv_migrate_ingest_ms = 0;  // receiver-side DMA-in time paid
  std::uint64_t work_steals = 0;          // queued requests handed to idle peers
  std::uint64_t steal_wire_bytes = 0;     // prompt-shipment bytes x hops
  /// Requests this replica received from / shipped to peers (migrations +
  /// steals, counted at delivery). Per-replica conservation becomes
  /// completed + rejected + handoffs_out == offered + handoffs_in, which
  /// reduces to the legacy identity on symmetric fleets (both 0);
  /// fleet-wide the two sums are equal — nothing is lost on the wire.
  std::uint64_t handoffs_in = 0;
  std::uint64_t handoffs_out = 0;

  /// Per-request outcomes; empty unless requested via the ServingConfig.
  std::vector<RequestRecord> requests;

  /// Two-column summary table for examples and reports.
  util::Table to_table(const std::string& title) const;
};

}  // namespace looplynx::serve
