#include "quant/hw_softmax.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace looplynx::quant {

HwSoftmax::HwSoftmax(HwSoftmaxConfig config) : config_(config) {
  const std::size_t entries = 1ULL << config_.lut_bits;
  table_.resize(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    const double f = static_cast<double>(i) / static_cast<double>(entries);
    table_[i] = static_cast<float>(std::exp2(f));
  }
}

float HwSoftmax::exp_lut(float x) const {
  assert(x <= 0.0f);
  if (x < -config_.clamp_range) return 0.0f;
  // e^x = 2^(x * log2 e); split into integer shift + fractional lookup.
  constexpr float kLog2e = 1.4426950408889634f;
  const float y = x * kLog2e;  // <= 0
  const float floor_y = std::floor(y);
  const int shift = static_cast<int>(-floor_y);  // >= 0
  const float frac = y - floor_y;                // in [0, 1)
  const float scaled =
      frac * static_cast<float>(table_.size());
  const auto idx = static_cast<std::size_t>(scaled);
  float mantissa;
  if (config_.interpolate) {
    const float t = scaled - static_cast<float>(idx);
    const float lo = table_[idx];
    const float hi =
        idx + 1 < table_.size() ? table_[idx + 1] : 2.0f;  // 2^1
    mantissa = lo + (hi - lo) * t;
  } else {
    mantissa = table_[idx];
  }
  return std::ldexp(mantissa, -shift);
}

void HwSoftmax::operator()(std::span<float> x) const {
  if (x.empty()) return;
  // Pass 0 (part of softmax.1 in hardware): running max for stability.
  float max_v = x[0];
  for (float v : x) max_v = std::max(max_v, v);
  // Pass 1 (softmax.1): exponentiate via LUT and accumulate the global sum.
  double sum = 0.0;
  for (float& v : x) {
    v = exp_lut(v - max_v);
    sum += v;
  }
  // Pass 2 (softmax.2): normalize into weighted scores.
  const float inv = sum > 0.0 ? static_cast<float>(1.0 / sum) : 0.0f;
  for (float& v : x) v *= inv;
}

float HwSoftmax::max_probability_error(std::span<const float> scores,
                                       const HwSoftmax& hw) {
  std::vector<float> exact(scores.begin(), scores.end());
  std::vector<float> approx(scores.begin(), scores.end());
  // Exact softmax.
  float max_v = exact.empty() ? 0.0f : exact[0];
  for (float v : exact) max_v = std::max(max_v, v);
  double sum = 0.0;
  for (float& v : exact) {
    v = std::exp(v - max_v);
    sum += v;
  }
  for (float& v : exact) v = static_cast<float>(v / sum);
  hw(approx);
  float worst = 0.0f;
  for (std::size_t i = 0; i < exact.size(); ++i) {
    worst = std::max(worst, std::abs(exact[i] - approx[i]));
  }
  return worst;
}

}  // namespace looplynx::quant
