// Tests for fleet-level autoscaling: the Autoscaler hysteresis state
// machine, masked LoadBalancer routing (draining replicas), the
// window-scoped control signals (RequestQueue window peak,
// util::SlidingWindow), CLI flag validation, autoscaled-fleet determinism
// (including the scale-event log), the static-fleet byte-identity
// guarantee, and the headline pin: on a bursty whale-heavy mix the
// autoscaled fleet matches the static ceiling fleet's SLO outcome at
// >= 20% fewer replica-cycles while beating the static floor fleet's p99
// TTFT (the full-size walkthrough is examples/autoscale_serving.cpp).
#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/arch_config.hpp"
#include "core/step_cost.hpp"
#include "host/serving.hpp"
#include "host/tokenizer.hpp"
#include "model/weights.hpp"
#include "quant/int8_model.hpp"
#include "serve/autoscaler.hpp"
#include "serve/cli_flags.hpp"
#include "serve/fleet.hpp"
#include "serve/queue.hpp"
#include "serve/serving_sim.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/mix.hpp"

namespace looplynx::serve {
namespace {

// --------------------------------------------------- Autoscaler::evaluate

AutoscalerConfig controller_config() {
  AutoscalerConfig cfg;
  cfg.enabled = true;
  cfg.policy = ScalePolicy::kQueueDepth;
  cfg.min_replicas = 1;
  cfg.max_replicas = 4;
  cfg.queue_high = 4.0;
  cfg.queue_low = 0.5;
  cfg.up_evals = 2;
  cfg.down_evals = 3;
  cfg.cooldown_evals = 2;
  return cfg;
}

ScaleSignals quiet(std::uint32_t live) {
  return ScaleSignals{live, 0.0, 0.0, 0};
}

ScaleSignals busy(std::uint32_t live, double queue_per_live) {
  return ScaleSignals{live, queue_per_live, 0.0, 0};
}

TEST(AutoscalerTest, GrowsOnlyAfterConsecutiveHighEvals) {
  Autoscaler ctl(controller_config(), SloConfig{});
  EXPECT_EQ(ctl.evaluate(busy(1, 10.0)).delta, 0);  // streak 1 of 2
  const auto d = ctl.evaluate(busy(1, 10.0));
  EXPECT_EQ(d.delta, +1);
  EXPECT_EQ(d.trigger, ScaleTrigger::kQueueHigh);
}

TEST(AutoscalerTest, AnInterveningQuietEvalResetsTheStreak) {
  Autoscaler ctl(controller_config(), SloConfig{});
  EXPECT_EQ(ctl.evaluate(busy(1, 10.0)).delta, 0);
  EXPECT_EQ(ctl.evaluate(busy(1, 2.0)).delta, 0);   // inside the band
  EXPECT_EQ(ctl.evaluate(busy(1, 10.0)).delta, 0);  // streak restarts
  EXPECT_EQ(ctl.evaluate(busy(1, 10.0)).delta, +1);
}

TEST(AutoscalerTest, CooldownHoldsAfterAScaleEvent) {
  Autoscaler ctl(controller_config(), SloConfig{});
  ctl.evaluate(busy(1, 10.0));
  ASSERT_EQ(ctl.evaluate(busy(1, 10.0)).delta, +1);
  // Two cooldown evals hold even under a screaming signal...
  EXPECT_EQ(ctl.evaluate(busy(2, 50.0)).delta, 0);
  EXPECT_EQ(ctl.evaluate(busy(2, 50.0)).delta, 0);
  // ...then the streak must build again from zero.
  EXPECT_EQ(ctl.evaluate(busy(2, 50.0)).delta, 0);
  EXPECT_EQ(ctl.evaluate(busy(2, 50.0)).delta, +1);
}

TEST(AutoscalerTest, ShrinksAfterDownEvalsAndClampsAtBounds) {
  Autoscaler ctl(controller_config(), SloConfig{});
  EXPECT_EQ(ctl.evaluate(quiet(2)).delta, 0);
  EXPECT_EQ(ctl.evaluate(quiet(2)).delta, 0);
  const auto d = ctl.evaluate(quiet(2));
  EXPECT_EQ(d.delta, -1);
  EXPECT_EQ(d.trigger, ScaleTrigger::kQueueLow);
  // At the floor the down streak can never fire.
  Autoscaler floor(controller_config(), SloConfig{});
  for (int i = 0; i < 10; ++i) EXPECT_EQ(floor.evaluate(quiet(1)).delta, 0);
  // At the ceiling the up streak can never fire.
  Autoscaler ceiling(controller_config(), SloConfig{});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(ceiling.evaluate(busy(4, 10.0)).delta, 0);
  }
}

TEST(AutoscalerTest, SloPolicyThresholdsDefaultFromTheSlo) {
  AutoscalerConfig cfg = controller_config();
  cfg.policy = ScalePolicy::kSloTtft;
  cfg.up_evals = 1;
  cfg.down_evals = 1;
  SloConfig slo;
  slo.ttft_ms = 200.0;
  Autoscaler ctl(cfg, slo);
  EXPECT_DOUBLE_EQ(ctl.ttft_high_ms(), 200.0);
  EXPECT_DOUBLE_EQ(ctl.ttft_low_ms(), 100.0);
  // Above the SLO: grow (with the ttft trigger recorded).
  const auto up = ctl.evaluate({2, 0.0, 250.0, 8});
  EXPECT_EQ(up.delta, +1);
  EXPECT_EQ(up.trigger, ScaleTrigger::kTtftHigh);
}

TEST(AutoscalerTest, SloPolicyTreatsAnEmptyWindowAsIdle) {
  AutoscalerConfig cfg = controller_config();
  cfg.policy = ScalePolicy::kSloTtft;
  cfg.up_evals = 1;
  cfg.down_evals = 1;
  cfg.cooldown_evals = 0;
  Autoscaler ctl(cfg, SloConfig{});
  const auto d = ctl.evaluate({3, 0.0, 0.0, 0});  // no samples
  EXPECT_EQ(d.delta, -1);
  EXPECT_EQ(d.trigger, ScaleTrigger::kTtftLow);
}

TEST(AutoscalerTest, HybridGrowsOnEitherSignalShrinksOnlyOnBoth) {
  AutoscalerConfig cfg = controller_config();
  cfg.policy = ScalePolicy::kHybrid;
  cfg.up_evals = 1;
  cfg.down_evals = 1;
  cfg.cooldown_evals = 0;
  SloConfig slo;
  slo.ttft_ms = 100.0;
  {
    Autoscaler ctl(cfg, slo);
    // Quiet queue but blown tail: still grows.
    EXPECT_EQ(ctl.evaluate({1, 0.0, 400.0, 8}).delta, +1);
  }
  {
    Autoscaler ctl(cfg, slo);
    // Queue under the low-water mark but the tail still warm (between
    // the release and alarm thresholds): hold, not shrink — shrink
    // needs both signals quiet.
    EXPECT_EQ(ctl.evaluate({2, 0.0, 60.0, 8}).delta, 0);
  }
  {
    Autoscaler ctl(cfg, slo);
    // Both quiet: shrink.
    EXPECT_EQ(ctl.evaluate({2, 0.0, 10.0, 8}).delta, -1);
  }
}

TEST(AutoscalerTest, ScalePolicyNamesRoundTrip) {
  EXPECT_EQ(parse_scale_policy("queue"), ScalePolicy::kQueueDepth);
  EXPECT_EQ(parse_scale_policy("slo"), ScalePolicy::kSloTtft);
  EXPECT_EQ(parse_scale_policy("hybrid"), ScalePolicy::kHybrid);
  EXPECT_THROW(parse_scale_policy("auto"), std::invalid_argument);
  EXPECT_STREQ(scale_policy_name(ScalePolicy::kQueueDepth), "queue");
  EXPECT_STREQ(scale_policy_name(ScalePolicy::kSloTtft), "slo");
  EXPECT_STREQ(scale_policy_name(ScalePolicy::kHybrid), "hybrid");
  EXPECT_STREQ(scale_trigger_name(ScaleTrigger::kQueueHigh), "queue-high");
  EXPECT_STREQ(scale_trigger_name(ScaleTrigger::kTtftLow), "ttft-low");
}

// ---------------------------------------- Per-tier controller expansion

TEST(TierConfigTest, PromotesTierBoundsIntoScalars) {
  AutoscalerConfig fleet = controller_config();
  fleet.policy = ScalePolicy::kHybrid;
  fleet.tier_min = {1, 2};
  fleet.tier_max = {3, 2};
  const AutoscalerConfig prefill = tier_autoscaler_config(fleet, 0, false);
  EXPECT_EQ(prefill.min_replicas, 1u);
  EXPECT_EQ(prefill.max_replicas, 3u);
  EXPECT_EQ(prefill.policy, ScalePolicy::kHybrid);
  EXPECT_TRUE(prefill.tier_min.empty());  // lists consumed, not inherited
  EXPECT_TRUE(prefill.tier_max.empty());
  const AutoscalerConfig decode = tier_autoscaler_config(fleet, 1, true);
  EXPECT_EQ(decode.min_replicas, 2u);
  EXPECT_EQ(decode.max_replicas, 2u);
  // Decode tiers force the queue policy: no TTFT ever forms on them.
  EXPECT_EQ(decode.policy, ScalePolicy::kQueueDepth);
  // Shared knobs copy verbatim.
  EXPECT_DOUBLE_EQ(decode.queue_high, fleet.queue_high);
  EXPECT_EQ(decode.up_evals, fleet.up_evals);
  // A pinned tier (min == max) never moves in either direction.
  Autoscaler pinned(decode, SloConfig{});
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(pinned.evaluate(busy(2, 50.0)).delta, 0);
  }
  for (int i = 0; i < 8; ++i) EXPECT_EQ(pinned.evaluate(quiet(2)).delta, 0);
}

TEST(TierConfigTest, EmptyListsPassTheScalarsThrough) {
  AutoscalerConfig fleet = controller_config();
  fleet.min_replicas = 2;
  fleet.max_replicas = 4;
  const AutoscalerConfig only = tier_autoscaler_config(fleet, 0, false);
  EXPECT_EQ(only.min_replicas, 2u);
  EXPECT_EQ(only.max_replicas, 4u);
  // The symmetric single-tier case: the policy is whatever was asked for.
  EXPECT_EQ(only.policy, fleet.policy);
}

TEST(TierControllersTest, KeepIndependentStreaksAndCooldowns) {
  AutoscalerConfig fleet = controller_config();  // queue policy, up 2
  fleet.tier_min = {1, 1};
  fleet.tier_max = {4, 4};
  Autoscaler prefill(tier_autoscaler_config(fleet, 0, false), SloConfig{});
  Autoscaler decode(tier_autoscaler_config(fleet, 1, true), SloConfig{});
  // The prefill tier builds its up streak while the decode tier idles at
  // its floor — the decode tier's quiet evals must not reset it.
  EXPECT_EQ(prefill.evaluate(busy(1, 10.0)).delta, 0);
  EXPECT_EQ(decode.evaluate(quiet(1)).delta, 0);
  EXPECT_EQ(prefill.evaluate(busy(1, 10.0)).delta, +1);
  // The prefill event starts ITS cooldown only: the decode tier is free
  // to fire its own transition while the prefill controller holds.
  EXPECT_EQ(prefill.evaluate(busy(2, 50.0)).delta, 0);  // cooling
  EXPECT_EQ(decode.evaluate(busy(1, 10.0)).delta, 0);
  EXPECT_EQ(decode.evaluate(busy(1, 10.0)).delta, +1);  // no shared cooldown
}

TEST(TierControllersTest, TiersCanMoveInOppositeDirectionsOnOneRound) {
  AutoscalerConfig fleet = controller_config();
  fleet.up_evals = 3;  // align with down_evals so both fire together
  fleet.tier_min = {1, 1};
  fleet.tier_max = {4, 4};
  Autoscaler prefill(tier_autoscaler_config(fleet, 0, false), SloConfig{});
  Autoscaler decode(tier_autoscaler_config(fleet, 1, true), SloConfig{});
  // Same shared-clock eval rounds, opposite verdicts: a prompt burst
  // hammers the prefill tier while the decode backlog drains.
  int up_delta = 0, down_delta = 0;
  for (int round = 0; round < 3; ++round) {
    up_delta = prefill.evaluate(busy(1, 10.0)).delta;
    down_delta = decode.evaluate(quiet(3)).delta;
  }
  EXPECT_EQ(up_delta, +1);    // the prefill tier grew...
  EXPECT_EQ(down_delta, -1);  // ...on the round the decode tier shrank
}

// ------------------------------------------------- Masked load balancing

TEST(MaskedBalancerTest, RoundRobinCyclesOverTheActiveSubset) {
  LoadBalancer lb(BalancerPolicy::kRoundRobin);
  // Replicas 2 and 3 are masked (draining): the cycle walks {0, 1}.
  const std::vector<LoadBalancer::ReplicaLoad> masked = {
      {0, 0, true}, {0, 0, true}, {0, 0, false}, {0, 0, false}};
  EXPECT_EQ(lb.pick(masked), 0u);
  EXPECT_EQ(lb.pick(masked), 1u);
  EXPECT_EQ(lb.pick(masked), 0u);
  // Unmasking resumes over the full set, counter intact.
  const std::vector<LoadBalancer::ReplicaLoad> all = {
      {0, 0, true}, {0, 0, true}, {0, 0, true}, {0, 0, true}};
  EXPECT_EQ(lb.pick(all), 3u);  // counter is at 3 after three picks
  EXPECT_EQ(lb.pick(all), 0u);
}

TEST(MaskedBalancerTest, JsqIgnoresMaskedReplicasAndTiesOnLowestActive) {
  LoadBalancer lb(BalancerPolicy::kJoinShortestQueue);
  // The idle replica 0 is draining: the pick must go to the least-loaded
  // *active* replica, and ties resolve to the lowest active index.
  EXPECT_EQ(lb.pick({{0, 0, false}, {5, 0, true}, {3, 0, true}}), 2u);
  EXPECT_EQ(lb.pick({{0, 0, false}, {3, 0, true}, {3, 0, true}}), 1u);
  // A fully unmasked tie still goes to replica 0 (the PR 4 contract).
  EXPECT_EQ(lb.pick({{3, 0, true}, {3, 0, true}, {3, 0, true}}), 0u);
}

TEST(MaskedBalancerTest, KvAwareIgnoresMaskedPoolsAndTiesOnLowestActive) {
  LoadBalancer lb(BalancerPolicy::kKvAware);
  // The biggest pool is masked; the best active pool wins.
  EXPECT_EQ(lb.pick({{0, 900, false}, {0, 100, true}, {0, 300, true}}), 2u);
  // Equal active pools fall back to JSQ over active replicas...
  EXPECT_EQ(lb.pick({{1, 100, false}, {9, 100, true}, {2, 100, true}}), 2u);
  // ...and a full tie lands on the lowest active index.
  EXPECT_EQ(lb.pick({{2, 100, false}, {2, 100, true}, {2, 100, true}}), 1u);
}

// ------------------------------------------------ Window-scoped signals

TEST(WindowSignalTest, QueueWindowPeakResetsWithoutTouchingAllTimePeak) {
  RequestQueue q(8);
  sim::Engine engine;
  Request a(engine, 0, workload::make_scenario(4, 4));
  Request b(engine, 1, workload::make_scenario(4, 4));
  Request c(engine, 2, workload::make_scenario(4, 4));
  q.push(&a);
  q.push(&b);
  q.push(&c);
  q.pop();
  q.pop();
  // Window saw depth 3 even though only 1 is queued now.
  EXPECT_EQ(q.take_window_peak(), 3u);
  // The window restarts at the current depth; the all-time peak stays.
  EXPECT_EQ(q.take_window_peak(), 1u);
  EXPECT_EQ(q.peak_depth(), 3u);
  q.pop();
  EXPECT_EQ(q.take_window_peak(), 1u);  // depth before the pop
  EXPECT_EQ(q.take_window_peak(), 0u);
}

TEST(WindowSignalTest, SlidingWindowEvictsAndMatchesBatchPercentile) {
  util::SlidingWindow w;
  EXPECT_EQ(w.count(), 0u);
  EXPECT_DOUBLE_EQ(w.percentile(99.0), 0.0);
  for (int i = 0; i < 100; ++i) {
    w.push(static_cast<double>(i), static_cast<double>(i));
  }
  EXPECT_EQ(w.count(), 100u);
  // Slide the trailing edge to t=50: samples 0..49 leave.
  w.evict_before(50.0);
  EXPECT_EQ(w.count(), 50u);
  std::vector<double> window_values;
  for (int i = 50; i < 100; ++i) window_values.push_back(i);
  EXPECT_DOUBLE_EQ(w.percentile(99.0),
                   util::percentile(window_values, 99.0));
  EXPECT_DOUBLE_EQ(w.percentile(50.0),
                   util::percentile(window_values, 50.0));
  w.evict_before(1000.0);
  EXPECT_TRUE(w.empty());
}

// ------------------------------------------------------- CLI validation

util::Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "test");
  return util::Cli(static_cast<int>(args.size()), args.data());
}

TEST(AutoscaleCliTest, ParsesPoliciesAndBounds) {
  const SchedulerCliOptions off = parse_scheduler_cli(make_cli({}));
  EXPECT_FALSE(off.autoscale.enabled);
  EXPECT_FALSE(off.fleet());

  const SchedulerCliOptions queue = parse_scheduler_cli(make_cli(
      {"--autoscale=queue", "--min-replicas=2", "--max-replicas=6",
       "--scale-interval-ms=10"}));
  EXPECT_TRUE(queue.autoscale.enabled);
  EXPECT_EQ(queue.autoscale.policy, ScalePolicy::kQueueDepth);
  EXPECT_EQ(queue.autoscale.min_replicas, 2u);
  EXPECT_EQ(queue.autoscale.max_replicas, 6u);
  EXPECT_DOUBLE_EQ(queue.autoscale.eval_interval_ms, 10.0);
  EXPECT_TRUE(queue.fleet());
  EXPECT_EQ(queue.fleet_width(), 6u);

  // Bare --autoscale selects hybrid; space-separated values parse too.
  const SchedulerCliOptions bare = parse_scheduler_cli(
      make_cli({"--autoscale", "--min-replicas", "2", "--max-replicas",
                "3"}));
  EXPECT_EQ(bare.autoscale.policy, ScalePolicy::kHybrid);
  EXPECT_EQ(bare.autoscale.min_replicas, 2u);
  const SchedulerCliOptions spaced =
      parse_scheduler_cli(make_cli({"--autoscale", "slo"}));
  EXPECT_EQ(spaced.autoscale.policy, ScalePolicy::kSloTtft);

  // --balancer composes with --autoscale (no --replicas needed).
  const SchedulerCliOptions balanced = parse_scheduler_cli(
      make_cli({"--autoscale=hybrid", "--balancer=jsq"}));
  EXPECT_EQ(balanced.balancer, BalancerPolicy::kJoinShortestQueue);
}

TEST(AutoscaleCliTest, RejectsFixedFleetConflict) {
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--autoscale=queue", "--replicas=4"})),
               std::invalid_argument);
}

TEST(AutoscaleCliTest, RejectsInvertedOrDegenerateBounds) {
  // min > max
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--autoscale=queue", "--min-replicas=4",
                             "--max-replicas=2"})),
               std::invalid_argument);
  // min < 1
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--autoscale=queue", "--min-replicas=0"})),
               std::invalid_argument);
  // zero / negative interval
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--autoscale=queue", "--scale-interval-ms=0"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--autoscale=queue",
                             "--scale-interval-ms=-5"})),
               std::invalid_argument);
  // unknown policy
  EXPECT_THROW(parse_scheduler_cli(make_cli({"--autoscale=never"})),
               std::invalid_argument);
}

TEST(AutoscaleCliTest, RejectsAutoscaleKnobsWithoutAutoscale) {
  EXPECT_THROW(parse_scheduler_cli(make_cli({"--min-replicas=2"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(make_cli({"--max-replicas=4"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(make_cli({"--scale-interval-ms=10"})),
               std::invalid_argument);
}

// --------------------------------------------------- Fleet validation

ServingConfig cosim_base() {
  ServingConfig cfg;
  cfg.arch = core::ArchConfig::one_node();
  cfg.model = model::cosim_config();
  cfg.cost_probe_stride = 16;
  cfg.traffic.mix = workload::Mix{"small",
                                  {{workload::make_scenario(8, 16), 0.7},
                                   {workload::make_scenario(16, 8), 0.3}}};
  cfg.traffic.num_requests = 24;
  cfg.traffic.arrival_rate_per_s = 200.0;
  cfg.traffic.seed = 42;
  cfg.scheduler.max_batch = 4;
  return cfg;
}

TEST(AutoscaledFleetTest, ValidatesAutoscaleConfig) {
  const ServingConfig base = cosim_base();
  const auto with = [&](auto mutate) {
    FleetConfig cfg = FleetConfig::homogeneous(base, 3);
    cfg.autoscale.enabled = true;
    cfg.autoscale.min_replicas = 1;
    cfg.autoscale.max_replicas = 3;
    mutate(cfg.autoscale);
    return cfg;
  };
  EXPECT_NO_THROW(FleetSim{with([](AutoscalerConfig&) {})});
  EXPECT_THROW(FleetSim{with([](AutoscalerConfig& a) { a.min_replicas = 0; })},
               std::invalid_argument);
  EXPECT_THROW(FleetSim{with([](AutoscalerConfig& a) { a.min_replicas = 4; })},
               std::invalid_argument);
  EXPECT_THROW(
      FleetSim{with([](AutoscalerConfig& a) { a.max_replicas = 2; })},
      std::invalid_argument);  // pool size mismatch
  EXPECT_THROW(
      FleetSim{with([](AutoscalerConfig& a) { a.eval_interval_ms = 0; })},
      std::invalid_argument);
  EXPECT_THROW(
      FleetSim{with([](AutoscalerConfig& a) { a.ttft_window_ms = 0; })},
      std::invalid_argument);
  EXPECT_THROW(FleetSim{with([](AutoscalerConfig& a) {
                 a.queue_low = a.queue_high;
               })},
               std::invalid_argument);
  EXPECT_THROW(FleetSim{with([](AutoscalerConfig& a) { a.up_evals = 0; })},
               std::invalid_argument);
}

// ----------------------------------------- Determinism + static identity

FleetConfig bursty_autoscaled(ScalePolicy policy) {
  ServingConfig base = cosim_base();
  base.model.max_seq_len = 256;
  base.traffic.mix = workload::Mix{"skewed",
                                   {{workload::make_scenario(8, 16), 0.8},
                                    {workload::make_scenario(192, 48), 0.2}}};
  base.traffic.process = ArrivalProcess::kBursty;
  base.traffic.num_requests = 48;
  base.traffic.arrival_rate_per_s = 400.0;
  base.traffic.burst_factor = 4.0;
  base.traffic.burst_fraction = 0.25;
  base.traffic.burst_period_s = 0.05;
  base.scheduler.max_in_flight = 6;
  base.keep_request_records = true;
  FleetConfig cfg = FleetConfig::homogeneous(
      base, 3, BalancerPolicy::kJoinShortestQueue);
  cfg.autoscale.enabled = true;
  cfg.autoscale.policy = policy;
  cfg.autoscale.min_replicas = 1;
  cfg.autoscale.max_replicas = 3;
  cfg.autoscale.eval_interval_ms = 2.0;
  cfg.autoscale.ttft_window_ms = 10.0;
  cfg.autoscale.queue_high = 1.5;
  cfg.autoscale.queue_low = 0.25;
  cfg.autoscale.up_evals = 1;
  cfg.autoscale.down_evals = 2;
  cfg.autoscale.cooldown_evals = 1;
  return cfg;
}

void expect_identical_scaled(const FleetResult& a, const FleetResult& b) {
  EXPECT_EQ(a.fleet.offered, b.fleet.offered);
  EXPECT_EQ(a.fleet.completed, b.fleet.completed);
  EXPECT_EQ(a.fleet.iterations, b.fleet.iterations);
  EXPECT_EQ(a.fleet.duration_s, b.fleet.duration_s);
  EXPECT_EQ(a.fleet.ttft_ms.p99, b.fleet.ttft_ms.p99);
  EXPECT_EQ(a.fleet.slo_good, b.fleet.slo_good);
  EXPECT_EQ(a.routed, b.routed);
  EXPECT_EQ(a.replica_cycles, b.replica_cycles);
  EXPECT_EQ(a.mean_live_replicas, b.mean_live_replicas);
  ASSERT_EQ(a.scale_events.size(), b.scale_events.size());
  for (std::size_t i = 0; i < a.scale_events.size(); ++i) {
    EXPECT_EQ(a.scale_events[i].at, b.scale_events[i].at);
    EXPECT_EQ(a.scale_events[i].from, b.scale_events[i].from);
    EXPECT_EQ(a.scale_events[i].to, b.scale_events[i].to);
    EXPECT_EQ(a.scale_events[i].trigger, b.scale_events[i].trigger);
    EXPECT_EQ(a.scale_events[i].tier, b.scale_events[i].tier);
  }
  ASSERT_EQ(a.fleet.requests.size(), b.fleet.requests.size());
  for (std::size_t i = 0; i < a.fleet.requests.size(); ++i) {
    EXPECT_EQ(a.fleet.requests[i].replica, b.fleet.requests[i].replica);
    EXPECT_EQ(a.fleet.requests[i].live_replicas,
              b.fleet.requests[i].live_replicas);
    EXPECT_EQ(a.fleet.requests[i].ttft_ms, b.fleet.requests[i].ttft_ms);
  }
}

TEST(AutoscaledFleetTest, RunsAreDeterministicIncludingTheScaleLog) {
  for (const ScalePolicy policy :
       {ScalePolicy::kQueueDepth, ScalePolicy::kSloTtft,
        ScalePolicy::kHybrid}) {
    const FleetConfig cfg = bursty_autoscaled(policy);
    const FleetResult a = FleetSim(cfg).run();
    const FleetResult b = FleetSim(cfg).run();
    expect_identical_scaled(a, b);
    EXPECT_EQ(a.fleet.completed + a.fleet.rejected, a.fleet.offered);
  }
}

TEST(AutoscaledFleetTest, DisaggregatedTierRunsAreDeterministic) {
  FleetConfig cfg = bursty_autoscaled(ScalePolicy::kHybrid);
  cfg.roles = {ReplicaRole::kPrefill, ReplicaRole::kPrefill,
               ReplicaRole::kDecode};
  cfg.kv_link.bytes_per_cycle = 32.0;
  cfg.autoscale.tier_min = {1, 1};
  cfg.autoscale.tier_max = {2, 1};
  const FleetResult a = FleetSim(cfg).run();
  const FleetResult b = FleetSim(cfg).run();
  expect_identical_scaled(a, b);
  EXPECT_EQ(a.fleet.completed + a.fleet.rejected, a.fleet.offered);
  // Scale events carry their tier, and every tier id is in range.
  for (const ScaleEvent& e : a.scale_events) EXPECT_LT(e.tier, 2u);
}

TEST(AutoscaledFleetTest, TheControlLoopActuallyScalesUpAndDrainsDown) {
  const FleetConfig cfg = bursty_autoscaled(ScalePolicy::kQueueDepth);
  const FleetResult r = FleetSim(cfg).run();
  ASSERT_FALSE(r.scale_events.empty());
  EXPECT_GT(r.peak_live_replicas, 1u);
  // Work really ran beyond the floor replica...
  std::uint64_t beyond_floor = 0;
  for (const RequestRecord& rec : r.fleet.requests) {
    if (rec.replica > 0) ++beyond_floor;
  }
  EXPECT_GT(beyond_floor, 0u);
  // ...and graceful drain means every routed request still finished.
  EXPECT_EQ(r.fleet.completed + r.fleet.rejected, r.fleet.offered);
}

/// Disabling the autoscaler must leave the static fleet bit-identical to
/// a config that never heard of autoscaling — the serve_load no-flag
/// byte-identity gate reduces to this.
TEST(AutoscaledFleetTest, DisabledAutoscaleIsAStaticFleetBitForBit) {
  ServingConfig base = cosim_base();
  base.keep_request_records = true;
  const FleetConfig plain = FleetConfig::homogeneous(base, 2);
  FleetConfig disabled = plain;
  disabled.autoscale = AutoscalerConfig{};  // enabled == false
  ASSERT_FALSE(disabled.autoscale.enabled);
  const FleetResult a = FleetSim(plain).run();
  const FleetResult b = FleetSim(disabled).run();
  expect_identical_scaled(a, b);
  EXPECT_TRUE(a.scale_events.empty());
  EXPECT_FALSE(a.autoscaled);
  // Static cost accounting: the whole pool, the whole makespan.
  EXPECT_EQ(a.mean_live_replicas, 2.0);
  EXPECT_DOUBLE_EQ(a.replica_seconds, 2.0 * a.fleet.duration_s);
}

// ------------------------------------------------------ The headline pin

/// Scaled-down twin of examples/autoscale_serving.cpp: on a bursty
/// whale-heavy mix at a fixed seed, the autoscaled fleet serves at least
/// as many requests within SLO as the static ceiling fleet, consumes
/// >= 20% fewer replica-cycles, and strictly beats the static floor
/// fleet's p99 TTFT.
TEST(AutoscaledFleetTest, BeatsStaticFleetsOnBurstyWhaleTraffic) {
  ServingConfig base = cosim_base();
  base.model.max_seq_len = 256;
  base.traffic.mix = workload::Mix{"whale-heavy",
                                   {{workload::make_scenario(8, 16), 0.85},
                                    {workload::make_scenario(192, 48),
                                     0.15}}};
  base.traffic.process = ArrivalProcess::kBursty;
  base.traffic.num_requests = 96;
  base.traffic.arrival_rate_per_s = 60.0;
  base.traffic.burst_factor = 6.0;
  base.traffic.burst_fraction = 0.25;
  base.traffic.burst_period_s = 0.4;
  base.traffic.seed = 11;
  base.scheduler.max_in_flight = 4;
  base.slo.ttft_ms = 40.0;
  base.slo.token_ms = 5.0;

  const core::StepCostModel costs(base.arch, base.model,
                                  base.cost_probe_stride);
  const auto run_static = [&](std::uint32_t width) {
    return FleetSim(FleetConfig::homogeneous(
                        base, width, BalancerPolicy::kJoinShortestQueue),
                    costs)
        .run();
  };
  const FleetResult floor_fleet = run_static(1);
  const FleetResult ceiling_fleet = run_static(4);

  FleetConfig scaled_cfg = FleetConfig::homogeneous(
      base, 4, BalancerPolicy::kJoinShortestQueue);
  scaled_cfg.autoscale.enabled = true;
  scaled_cfg.autoscale.policy = ScalePolicy::kHybrid;
  scaled_cfg.autoscale.min_replicas = 1;
  scaled_cfg.autoscale.max_replicas = 4;
  scaled_cfg.autoscale.eval_interval_ms = 1.0;
  scaled_cfg.autoscale.ttft_window_ms = 20.0;
  scaled_cfg.autoscale.queue_high = 2.0;
  scaled_cfg.autoscale.queue_low = 0.25;
  scaled_cfg.autoscale.up_evals = 2;
  scaled_cfg.autoscale.down_evals = 6;
  scaled_cfg.autoscale.cooldown_evals = 2;
  const FleetResult scaled = FleetSim(scaled_cfg, costs).run();

  // The comparison is meaningful only if the fleet actually flexed well
  // beyond its floor.
  ASSERT_FALSE(scaled.scale_events.empty());
  EXPECT_GE(scaled.peak_live_replicas, 3u);

  EXPECT_GE(scaled.fleet.slo_good, ceiling_fleet.fleet.slo_good);
  EXPECT_LE(static_cast<double>(scaled.replica_cycles),
            0.8 * static_cast<double>(ceiling_fleet.replica_cycles));
  EXPECT_LT(scaled.fleet.ttft_ms.p99, floor_fleet.fleet.ttft_ms.p99);
}

// --------------------------------------------------- Host flush wiring

TEST(AutoscaledFleetTest, HostFlushAutoscalesAndRecordsLiveReplicas) {
  model::ModelConfig cfg = model::cosim_config();
  cfg.vocab_size = 512;
  const auto w = model::Gpt2Weights::random(cfg, 77);
  util::Rng rng(78);
  std::vector<std::uint32_t> calib(24);
  for (auto& t : calib) {
    t = static_cast<std::uint32_t>(rng.next_below(cfg.vocab_size));
  }
  const auto weights = quant::Gpt2Int8Weights::build_with_calibration(w, calib);
  host::Host h(weights, host::Tokenizer::byte_level(),
               core::ArchConfig::two_node());

  host::ServeRequest req{.prompt = "loop", .max_new_tokens = 4,
                         .sampling = {}};
  for (int i = 0; i < 4; ++i) h.submit(req);
  serve::AutoscalerConfig autoscale;
  autoscale.enabled = true;
  autoscale.min_replicas = 1;
  autoscale.max_replicas = 2;
  const auto results = h.flush({}, autoscale);
  ASSERT_EQ(results.size(), 4u);
  for (const auto& r : results) {
    EXPECT_FALSE(r.rejected);
    // The cycle-0 burst lands before the first control eval: everything
    // routes into the min_replicas prefix, and the record proves it.
    EXPECT_LT(r.replica, r.live_replicas);
    EXPECT_LE(r.live_replicas, 2u);
  }
  // The overload refuses a disabled config instead of silently running
  // the static path.
  h.submit(req);
  EXPECT_THROW(h.flush({}, serve::AutoscalerConfig{}),
               std::invalid_argument);
  h.flush();  // drain the pending request for a clean teardown
}

}  // namespace
}  // namespace looplynx::serve
