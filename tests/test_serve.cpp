// Tests for the continuous-batching serve layer: step-cost model, paged
// KV-block accounting, traffic generation, scheduler policies + preemption,
// fleet determinism and backpressure, and the Host submit/flush path.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/arch_config.hpp"
#include "core/step_cost.hpp"
#include "core/system.hpp"
#include "host/serving.hpp"
#include "host/tokenizer.hpp"
#include "model/config.hpp"
#include "model/weights.hpp"
#include "quant/int8_model.hpp"
#include "serve/cli_flags.hpp"
#include "serve/kv_block.hpp"
#include "serve/queue.hpp"
#include "serve/scheduler.hpp"
#include "serve/serving_sim.hpp"
#include "serve/traffic.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "workload/mix.hpp"

namespace looplynx::serve {
namespace {

core::ArchConfig test_arch() { return core::ArchConfig::one_node(); }

/// Cosim dimensions with a context window wide enough for the [128:*]
/// long-prompt chunking scenarios.
model::ModelConfig chunk_model() {
  model::ModelConfig m = model::cosim_config();
  m.name = "cosim-256";
  m.max_seq_len = 256;
  return m;
}

/// Marks a request's whole prompt as pushed (decode-ready).
void mark_prefilled(Request& r) { r.prompt_done = r.shape.prefill; }

/// Small shapes that fit the cosim model's 96-token context.
workload::Mix test_mix() {
  return workload::Mix{"test",
                       {{workload::make_scenario(8, 16), 0.5},
                        {workload::make_scenario(16, 8), 0.3},
                        {workload::make_scenario(4, 32), 0.2}}};
}

ServingConfig base_config() {
  ServingConfig cfg;
  cfg.arch = test_arch();
  cfg.model = model::cosim_config();
  cfg.cost_probe_stride = 16;
  cfg.traffic.mix = test_mix();
  cfg.traffic.num_requests = 24;
  cfg.traffic.arrival_rate_per_s = 200.0;
  cfg.traffic.seed = 42;
  cfg.scheduler.max_batch = 4;
  return cfg;
}

// ---------------------------------------------------------------- StepCost

TEST(StepCostModelTest, ExactStrideMatchesSystemTokenCycles) {
  const model::ModelConfig m = model::cosim_config();
  const core::System sys(test_arch(), m);
  const core::StepCostModel costs(sys, /*probe_stride=*/1);
  for (std::uint32_t pos : {0u, 1u, 7u, 40u, m.max_seq_len - 1}) {
    EXPECT_EQ(costs.step_cycles(pos), sys.token_cycles(pos)) << pos;
  }
}

TEST(StepCostModelTest, PrefillIsPrefixSumOfSteps) {
  const core::StepCostModel costs(test_arch(), model::cosim_config(),
                                  /*probe_stride=*/16);
  EXPECT_EQ(costs.prefill_cycles(0), 0u);
  sim::Cycles acc = 0;
  for (std::uint32_t pos = 0; pos < 24; ++pos) acc += costs.step_cycles(pos);
  EXPECT_EQ(costs.prefill_cycles(24), acc);
}

TEST(StepCostModelTest, CostGrowsWithKvLength) {
  const core::StepCostModel costs(test_arch(), model::cosim_config(),
                                  /*probe_stride=*/16);
  EXPECT_GT(costs.step_cycles(costs.max_positions() - 1),
            costs.step_cycles(0));
  EXPECT_GT(costs.prefill_cycles(64), costs.prefill_cycles(8));
}

TEST(StepCostModelTest, ChunkCostsPartitionThePrefill) {
  const core::StepCostModel costs(test_arch(), model::cosim_config(),
                                  /*probe_stride=*/16);
  // A chunk resumes against cached KV: positions are priced at their true
  // offsets, so any partition of the prompt sums to the whole prefill.
  EXPECT_EQ(costs.prefill_chunk_cycles(0, 64), costs.prefill_cycles(64));
  EXPECT_EQ(costs.prefill_chunk_cycles(0, 16) +
                costs.prefill_chunk_cycles(16, 16) +
                costs.prefill_chunk_cycles(32, 32),
            costs.prefill_cycles(64));
  EXPECT_EQ(costs.prefill_chunk_cycles(24, 0), 0u);
  // Continuation chunks run at deeper KV offsets, so the tail chunk of a
  // prompt costs at least as much as its head chunk.
  EXPECT_GE(costs.prefill_chunk_cycles(48, 16),
            costs.prefill_chunk_cycles(0, 16));
}

TEST(StepCostModelTest, DecodeBatchSharesWeightStream) {
  const core::StepCostModel costs(test_arch(), model::cosim_config(),
                                  /*probe_stride=*/16);
  // Lone step: exact identity with the per-position table.
  EXPECT_EQ(costs.decode_batch_cycles({10}), costs.step_cycles(10));
  // A shared pass is cheaper than running the members back to back but
  // can never beat the compute bound.
  const std::vector<std::uint32_t> batch{10, 20, 30, 40};
  sim::Cycles sequential = 0;
  for (std::uint32_t pos : batch) sequential += costs.step_cycles(pos);
  const sim::Cycles shared = costs.decode_batch_cycles(batch);
  EXPECT_LT(shared, sequential);
  EXPECT_GE(shared, static_cast<sim::Cycles>(batch.size()) *
                        costs.weight_mac_cycles());
}

TEST(StepCostModelTest, PrefillGroupSharesWeightStream) {
  const core::StepCostModel costs(test_arch(), model::cosim_config(),
                                  /*probe_stride=*/16);
  // Lone chunk: exact identity with the per-chunk price.
  EXPECT_EQ(costs.prefill_group_cycles({{0, 24}}),
            costs.prefill_chunk_cycles(0, 24));
  // Co-scheduled chunks share each wavefront's weight-stream pass, so the
  // group undercuts running the chunks back to back — but can never beat
  // the per-wavefront compute bound.
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> chunks{
      {0, 24}, {0, 16}, {8, 16}};
  sim::Cycles sequential = 0;
  for (const auto& [start, tokens] : chunks) {
    sequential += costs.prefill_chunk_cycles(start, tokens);
  }
  const sim::Cycles shared = costs.prefill_group_cycles(chunks);
  EXPECT_LT(shared, sequential);
  EXPECT_GE(shared, 24u * costs.weight_mac_cycles());  // longest chunk
}

TEST(ServingSimTest, SharedPrefillWeightsSaveCycles) {
  // Chunked traffic with several prompts in flight: iterations routinely
  // co-schedule 2+ prefill chunks, which is where the sharing fires.
  ServingConfig cfg = base_config();
  cfg.model = chunk_model();
  cfg.traffic.mix = workload::Mix{"prompts",
                                  {{workload::make_scenario(96, 8), 0.5},
                                   {workload::make_scenario(64, 8), 0.5}}};
  cfg.traffic.arrival_rate_per_s = 2000.0;
  cfg.scheduler.policy = BatchPolicy::kChunkedMixed;
  cfg.scheduler.max_tokens_per_iter = 64;
  cfg.scheduler.max_in_flight = 8;
  const FleetMetrics separate = ServingSim(cfg).run();
  cfg.scheduler.share_prefill_weights = true;
  const FleetMetrics shared = ServingSim(cfg).run();
  // Same work completed, strictly fewer prefill pipeline cycles executed,
  // and the saving reaches the caller-visible clock.
  EXPECT_EQ(shared.completed, separate.completed);
  EXPECT_EQ(shared.total_tokens, separate.total_tokens);
  EXPECT_GT(separate.prefill_cycles, 0u);
  EXPECT_LT(shared.prefill_cycles, separate.prefill_cycles);
  EXPECT_LT(shared.duration_s, separate.duration_s);
}

TEST(ServingSimTest, LargerBatchRaisesSaturatedThroughput) {
  ServingConfig cfg = base_config();
  cfg.traffic.arrival_rate_per_s = 50000.0;  // saturating burst
  cfg.scheduler.max_batch = 1;
  const FleetMetrics serial = ServingSim(cfg).run();
  cfg.scheduler.max_batch = 8;
  const FleetMetrics batched = ServingSim(cfg).run();
  EXPECT_GT(batched.decode_tok_s, serial.decode_tok_s);
  EXPECT_GT(batched.mean_batch_size, serial.mean_batch_size);
}

// ---------------------------------------------------------------- KvBlocks

TEST(KvBlockManagerTest, TokenGranularCapacityFollowsBudget) {
  const model::ModelConfig m = model::cosim_config();  // 3 layers, 8 heads, 8 dim
  const core::ArchConfig arch = test_arch();
  // K+V int8: 2 * 3 * 8 * 8 = 384 bytes per token on the single node.
  // block_tokens 1 == the legacy token-granular accounting.
  KvBlockManager kv(arch, m, /*budget=*/384 * 10);
  EXPECT_EQ(kv.bytes_per_token_per_node(), 384u);
  EXPECT_EQ(kv.block_tokens(), 1u);
  EXPECT_EQ(kv.capacity_blocks(), 10u);
  EXPECT_EQ(kv.capacity_tokens(), 10u);

  KvBlockList a, b;
  EXPECT_TRUE(kv.try_grow(a, 6));
  EXPECT_FALSE(kv.try_grow(b, 5));  // only 4 blocks left
  EXPECT_EQ(b.blocks, 0u);          // untouched on failure
  EXPECT_EQ(kv.stall_events(), 1u);
  EXPECT_TRUE(kv.try_grow(b, 4));
  EXPECT_EQ(kv.used_blocks(), 10u);
  EXPECT_DOUBLE_EQ(kv.peak_occupancy(), 1.0);
  EXPECT_EQ(kv.frag_tokens(), 0u);  // token granularity never fragments
  kv.release_all(a);
  EXPECT_EQ(a.blocks, 0u);
  EXPECT_EQ(kv.free_blocks(), 6u);
  EXPECT_FALSE(kv.can_ever_fit(11));
  EXPECT_TRUE(kv.can_ever_fit(10));
}

TEST(KvBlockManagerTest, GrowIsIncrementalNotCumulative) {
  KvBlockManager kv(test_arch(), model::cosim_config(), /*budget=*/384 * 10);
  KvBlockList list;
  ASSERT_TRUE(kv.try_grow(list, 4));
  // Growing the same list to a larger target only takes the delta; a
  // target already covered is a no-op.
  ASSERT_TRUE(kv.try_grow(list, 7));
  EXPECT_EQ(kv.used_blocks(), 7u);
  ASSERT_TRUE(kv.try_grow(list, 7));
  ASSERT_TRUE(kv.try_grow(list, 2));  // shrink request: covered, no-op
  EXPECT_EQ(kv.used_blocks(), 7u);
  EXPECT_EQ(list.committed_tokens, 7u);
}

TEST(KvBlockManagerTest, BlockRoundingAndFragmentation) {
  // 10-token budget at 4 tokens/block -> 2 whole blocks (8 tokens); the
  // 2-token remainder is unusable (paging's capacity cost).
  KvBlockManager kv(test_arch(), model::cosim_config(), /*budget=*/384 * 10,
                    /*block_tokens=*/4);
  EXPECT_EQ(kv.capacity_blocks(), 2u);
  EXPECT_EQ(kv.capacity_tokens(), 8u);
  EXPECT_EQ(kv.blocks_for(1), 1u);
  EXPECT_EQ(kv.blocks_for(4), 1u);
  EXPECT_EQ(kv.blocks_for(5), 2u);
  EXPECT_TRUE(kv.can_ever_fit(8));
  EXPECT_FALSE(kv.can_ever_fit(9));

  KvBlockList list, other;
  ASSERT_TRUE(kv.try_grow(list, 5));
  EXPECT_EQ(list.blocks, 2u);
  EXPECT_EQ(kv.used_blocks(), 2u);
  // Internal fragmentation: 2 blocks cover 8 tokens, 5 are committed.
  EXPECT_EQ(kv.frag_tokens(), 3u);
  EXPECT_FALSE(kv.try_grow(other, 1));  // pool exhausted by rounding
  ASSERT_TRUE(kv.try_grow(list, 7));    // same blocks, deeper commit
  EXPECT_EQ(kv.frag_tokens(), 1u);
  EXPECT_EQ(kv.peak_frag_tokens(), 3u);
  kv.release_all(list);
  EXPECT_EQ(kv.used_blocks(), 0u);
  EXPECT_EQ(kv.frag_tokens(), 0u);
  EXPECT_EQ(kv.live_tokens(), 0u);
}

TEST(KvBlockManagerTest, OverReleaseClampsInsteadOfWrapping) {
  const model::ModelConfig m = model::cosim_config();
  KvBlockManager kv(test_arch(), m, /*budget=*/384 * 10);
  KvBlockList list;
  ASSERT_TRUE(kv.try_grow(list, 4));
  // Releasing blocks the manager never handed out (a tampered or
  // double-released list) would underflow used_blocks_ and wrap
  // free_blocks() to ~4 billion, disabling admission backpressure forever
  // after. Pin the clamp, and the counter that makes the caller bug
  // observable instead of silently swallowed.
  list.blocks = 7;
  kv.release_all(list);
  EXPECT_EQ(kv.used_blocks(), 0u);
  EXPECT_EQ(kv.free_blocks(), kv.capacity_blocks());  // no wrap
  EXPECT_EQ(kv.over_release_events(), 1u);
  // The manager still works after the bad release.
  KvBlockList again;
  EXPECT_TRUE(kv.try_grow(again, 10));
  KvBlockList more;
  EXPECT_FALSE(kv.try_grow(more, 1));
  kv.release_all(again);
  EXPECT_EQ(kv.over_release_events(), 1u);  // correct releases not counted
}

TEST(KvBlockManagerTest, DefaultBudgetUsesKvChannels) {
  const core::ArchConfig arch = core::ArchConfig::two_node();  // kv_channels=2
  KvBlockManager kv(arch, model::gpt2_medium());
  // 2 channels x 256 MiB / (2 * 24 layers * 8 heads/node * 64 dim).
  EXPECT_EQ(kv.bytes_per_token_per_node(), 24576u);
  EXPECT_EQ(kv.capacity_tokens(), (512ull << 20) / 24576u);
}

TEST(KvBlockManagerTest, RejectsZeroBlockTokens) {
  EXPECT_THROW(KvBlockManager(test_arch(), model::cosim_config(), 384,
                              /*block_tokens=*/0),
               std::invalid_argument);
}

// ----------------------------------------------------------------- Traffic

TEST(TrafficGenTest, PoissonScheduleIsDeterministicAndSorted) {
  TrafficConfig cfg;
  cfg.mix = test_mix();
  cfg.num_requests = 50;
  cfg.arrival_rate_per_s = 100.0;
  cfg.seed = 7;
  TrafficGen a(cfg, 285e6), b(cfg, 285e6);
  const auto sa = a.open_loop_schedule();
  const auto sb = b.open_loop_schedule();
  ASSERT_EQ(sa.size(), 50u);
  EXPECT_TRUE(std::is_sorted(
      sa.begin(), sa.end(),
      [](const Arrival& x, const Arrival& y) { return x.at < y.at; }));
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].at, sb[i].at);
    EXPECT_EQ(sa[i].shape.name, sb[i].shape.name);
  }
}

TEST(TrafficGenTest, BurstyScheduleClustersArrivals) {
  TrafficConfig cfg;
  cfg.process = ArrivalProcess::kBursty;
  cfg.mix = test_mix();
  cfg.num_requests = 200;
  cfg.arrival_rate_per_s = 50.0;
  cfg.burst_factor = 4.0;
  cfg.burst_fraction = 0.25;
  cfg.seed = 11;
  TrafficGen gen(cfg, 285e6);
  const auto schedule = gen.open_loop_schedule();
  ASSERT_EQ(schedule.size(), 200u);
  // Arrivals inside the on-phase (first quarter of each 2 s period) should
  // be heavily over-represented relative to the 25% of time it covers.
  std::size_t on_phase = 0;
  for (const Arrival& a : schedule) {
    const double t = static_cast<double>(a.at) / 285e6;
    if (std::fmod(t, cfg.burst_period_s) < cfg.burst_period_s * 0.25) {
      ++on_phase;
    }
  }
  EXPECT_GT(on_phase, schedule.size() / 2);
}

TEST(TrafficGenTest, RejectsDegenerateBurstParameters) {
  TrafficConfig cfg;
  cfg.process = ArrivalProcess::kBursty;
  cfg.mix = test_mix();
  cfg.burst_period_s = 0.0;  // would otherwise loop forever on fmod(t, 0)
  EXPECT_THROW(TrafficGen(cfg, 285e6), std::invalid_argument);
  cfg.burst_period_s = 2.0;
  cfg.burst_fraction = 1.0;
  EXPECT_THROW(TrafficGen(cfg, 285e6), std::invalid_argument);
}

TEST(TrafficGenTest, ExplicitArrivalsOverrideProcess) {
  TrafficConfig cfg;
  cfg.mix = test_mix();
  cfg.explicit_arrivals = {{0, workload::make_scenario(4, 4)},
                           {100, workload::make_scenario(8, 8)}};
  TrafficGen gen(cfg, 285e6);
  const auto schedule = gen.open_loop_schedule();
  ASSERT_EQ(schedule.size(), 2u);
  EXPECT_EQ(schedule[1].at, 100u);
}

TEST(MixTest, SamplingCoversEntriesDeterministically) {
  const workload::Mix mix = test_mix();
  EXPECT_EQ(mix.sample(0.0).name, "[8:16]");
  EXPECT_EQ(mix.sample(0.6).name, "[16:8]");
  EXPECT_EQ(mix.sample(0.999).name, "[4:32]");
  EXPECT_NEAR(mix.mean_tokens_per_request(),
              0.5 * 24 + 0.3 * 24 + 0.2 * 36, 1e-12);
}

// --------------------------------------------------------------- Scheduler

TEST(SchedulerTest, PrefillPriorityPicksPrefillsFirst) {
  sim::Engine engine;
  Request p1(engine, 0, workload::make_scenario(8, 8));
  Request p2(engine, 1, workload::make_scenario(8, 8));
  Request d1(engine, 2, workload::make_scenario(8, 8));
  mark_prefilled(d1);
  SchedulerConfig cfg;
  cfg.max_batch = 2;
  cfg.policy = BatchPolicy::kPrefillPriority;
  Scheduler sched(cfg);
  std::vector<Request*> runnable{&d1, &p1, &p2};
  const auto batch = sched.select(runnable);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request, &p1);
  EXPECT_EQ(batch[0].prompt_tokens, 8u);  // whole prompt under this policy
  EXPECT_EQ(batch[1].request, &p2);
  ASSERT_EQ(runnable.size(), 1u);
  EXPECT_EQ(runnable[0], &d1);
}

TEST(SchedulerTest, DecodePriorityPicksDecodesFirst) {
  sim::Engine engine;
  Request p1(engine, 0, workload::make_scenario(8, 8));
  Request d1(engine, 1, workload::make_scenario(8, 8));
  Request d2(engine, 2, workload::make_scenario(8, 8));
  mark_prefilled(d1);
  mark_prefilled(d2);
  SchedulerConfig cfg;
  cfg.max_batch = 3;
  cfg.policy = BatchPolicy::kDecodePriority;
  Scheduler sched(cfg);
  std::vector<Request*> runnable{&p1, &d1, &d2};
  const auto batch = sched.select(runnable);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].request, &d1);
  EXPECT_EQ(batch[0].prompt_tokens, 0u);
  EXPECT_EQ(batch[1].request, &d2);
  EXPECT_EQ(batch[2].request, &p1);
  EXPECT_EQ(batch[2].prompt_tokens, 8u);
  EXPECT_TRUE(runnable.empty());
}

TEST(SchedulerTest, TokenBudgetBoundsWholePromptMembers) {
  sim::Engine engine;
  Request p1(engine, 0, workload::make_scenario(8, 8));
  Request p2(engine, 1, workload::make_scenario(8, 8));
  Request d1(engine, 2, workload::make_scenario(8, 8));
  mark_prefilled(d1);
  SchedulerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_tokens_per_iter = 10;  // p1 (8) + d1 (1) fit; p2 (8) does not
  cfg.policy = BatchPolicy::kPrefillPriority;
  Scheduler sched(cfg);
  std::vector<Request*> runnable{&p1, &p2, &d1};
  const auto batch = sched.select(runnable);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request, &p1);
  EXPECT_EQ(batch[1].request, &d1);
  ASSERT_EQ(runnable.size(), 1u);
  EXPECT_EQ(runnable[0], &p2);  // waits for the next iteration
}

TEST(SchedulerTest, OversizedPromptRunsAloneUnderBudget) {
  sim::Engine engine;
  Request big(engine, 0, workload::make_scenario(32, 4));
  Request d1(engine, 1, workload::make_scenario(8, 8));
  mark_prefilled(d1);
  SchedulerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_tokens_per_iter = 16;  // smaller than big's whole prompt
  cfg.policy = BatchPolicy::kPrefillPriority;
  Scheduler sched(cfg);
  std::vector<Request*> runnable{&big, &d1};
  const auto batch = sched.select(runnable);
  // The unsplittable over-budget prompt cannot starve: it runs, alone.
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request, &big);
  EXPECT_EQ(batch[0].prompt_tokens, 32u);
  ASSERT_EQ(runnable.size(), 1u);
  EXPECT_EQ(runnable[0], &d1);
}

TEST(SchedulerTest, OversizedPromptCannotStarveUnderDecodePriority) {
  sim::Engine engine;
  Request d1(engine, 0, workload::make_scenario(8, 8));
  Request big(engine, 1, workload::make_scenario(32, 4));
  Request small(engine, 2, workload::make_scenario(4, 4));
  mark_prefilled(d1);
  SchedulerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_tokens_per_iter = 16;  // big can never fit, even alone
  cfg.policy = BatchPolicy::kDecodePriority;
  Scheduler sched(cfg);
  std::vector<Request*> runnable{&d1, &big, &small};
  const auto batch = sched.select(runnable);
  // Decode priority keeps the batch non-empty every iteration, so the
  // over-budget prompt must be allowed to co-run with the decodes — and
  // the younger small prompt must not overtake it.
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request, &d1);
  EXPECT_EQ(batch[1].request, &big);
  EXPECT_EQ(batch[1].prompt_tokens, 32u);
  ASSERT_EQ(runnable.size(), 1u);
  EXPECT_EQ(runnable[0], &small);
}

TEST(SchedulerTest, BudgetedPromptKeepsFifoOrderAgainstYoungerPrompts) {
  sim::Engine engine;
  std::vector<std::unique_ptr<Request>> pool;
  std::vector<Request*> runnable;
  for (std::uint32_t i = 0; i < 6; ++i) {  // six decode streams
    pool.push_back(
        std::make_unique<Request>(engine, i, workload::make_scenario(4, 8)));
    mark_prefilled(*pool.back());
    runnable.push_back(pool.back().get());
  }
  Request mid(engine, 6, workload::make_scenario(12, 4));
  Request small(engine, 7, workload::make_scenario(4, 4));
  runnable.push_back(&mid);
  runnable.push_back(&small);
  SchedulerConfig cfg;
  cfg.max_batch = 16;
  cfg.max_tokens_per_iter = 16;  // mid fits the budget, not this leftover
  cfg.policy = BatchPolicy::kDecodePriority;
  Scheduler sched(cfg);
  const auto batch = sched.select(runnable);
  // 6 decodes leave 10 budget tokens: mid (12) waits — and small (4),
  // which would fit, must wait behind it rather than overtake. Blocked
  // prefills admit no new streams, so the decode pool drains until mid
  // fits: no starvation.
  ASSERT_EQ(batch.size(), 6u);
  for (const ScheduledStep& s : batch) EXPECT_FALSE(s.is_prefill());
  ASSERT_EQ(runnable.size(), 2u);
  EXPECT_EQ(runnable[0], &mid);
  EXPECT_EQ(runnable[1], &small);
}

TEST(SchedulerTest, ChunkedMixedSplitsPromptsUnderBudget) {
  sim::Engine engine;
  Request d1(engine, 0, workload::make_scenario(8, 8));
  Request d2(engine, 1, workload::make_scenario(8, 8));
  Request p1(engine, 2, workload::make_scenario(30, 4));
  mark_prefilled(d1);
  mark_prefilled(d2);
  SchedulerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_tokens_per_iter = 12;
  cfg.policy = BatchPolicy::kChunkedMixed;
  Scheduler sched(cfg);

  // Iteration 1: both decodes (1 token each), then a 10-token chunk.
  std::vector<Request*> runnable{&p1, &d1, &d2};
  auto batch = sched.select(runnable);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].request, &d1);
  EXPECT_EQ(batch[1].request, &d2);
  EXPECT_EQ(batch[2].request, &p1);
  EXPECT_EQ(batch[2].prompt_tokens, 10u);
  EXPECT_TRUE(runnable.empty());

  // The sim advances the cursor at step execution; emulate it here.
  p1.prompt_done += 10;
  runnable = {&p1};
  batch = sched.select(runnable);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].prompt_tokens, 12u);  // full budget, nothing else runs
  p1.prompt_done += 12;

  // Final chunk takes only what remains.
  runnable = {&p1};
  batch = sched.select(runnable);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].prompt_tokens, 8u);
  p1.prompt_done += 8;
  EXPECT_TRUE(p1.prefilled());
}

TEST(SchedulerTest, ChunkedMixedFinishesHeadPromptBeforeStartingNext) {
  sim::Engine engine;
  Request a(engine, 0, workload::make_scenario(40, 4));
  Request b(engine, 1, workload::make_scenario(40, 4));
  SchedulerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_tokens_per_iter = 16;
  cfg.policy = BatchPolicy::kChunkedMixed;
  Scheduler sched(cfg);

  std::vector<Request*> runnable{&a, &b};
  auto batch = sched.select(runnable);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request, &a);
  a.prompt_done += batch[0].prompt_tokens;

  // The sim re-queues a mid-chunk prompt at the *back* of runnable; a
  // partially prefilled prompt must still outrank the fresh one, so
  // chunks do not round-robin and b's KV wait stays one prompt deep.
  runnable = {&b, &a};
  batch = sched.select(runnable);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request, &a);
  a.prompt_done += batch[0].prompt_tokens;
  EXPECT_EQ(a.prompt_done, 32u);
  ASSERT_EQ(runnable.size(), 1u);
  EXPECT_EQ(runnable[0], &b);

  // Once a's final chunk (8 tokens) is taken, leftover budget starts b.
  runnable = {&b, &a};
  batch = sched.select(runnable);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request, &a);
  EXPECT_EQ(batch[0].prompt_tokens, 8u);
  EXPECT_EQ(batch[1].request, &b);
  EXPECT_EQ(batch[1].prompt_tokens, 8u);
}

TEST(SchedulerTest, ChunkedMixedNeverExceedsTokenBudget) {
  sim::Engine engine;
  std::vector<std::unique_ptr<Request>> pool;
  std::vector<Request*> runnable;
  for (std::uint32_t i = 0; i < 6; ++i) {
    pool.push_back(std::make_unique<Request>(
        engine, i, workload::make_scenario(16 + i, 8)));
    if (i % 2 == 0) mark_prefilled(*pool.back());
    runnable.push_back(pool.back().get());
  }
  SchedulerConfig cfg;
  cfg.max_batch = 8;
  cfg.max_tokens_per_iter = 7;
  cfg.policy = BatchPolicy::kChunkedMixed;
  Scheduler sched(cfg);
  const auto batch = sched.select(runnable);
  std::uint32_t tokens = 0;
  for (const ScheduledStep& s : batch) {
    tokens += s.is_prefill() ? s.prompt_tokens : 1;
  }
  EXPECT_LE(tokens, 7u);
  EXPECT_FALSE(batch.empty());
}

// ------------------------------------------------------- CLI flag parsing

TEST(BatchPolicyCliTest, ParseBatchPolicyRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(parse_batch_policy("prefill"), BatchPolicy::kPrefillPriority);
  EXPECT_EQ(parse_batch_policy("decode"), BatchPolicy::kDecodePriority);
  EXPECT_EQ(parse_batch_policy("chunked"), BatchPolicy::kChunkedMixed);
  EXPECT_THROW(parse_batch_policy("fifo"), std::invalid_argument);
  EXPECT_THROW(parse_batch_policy(""), std::invalid_argument);
  EXPECT_THROW(parse_batch_policy("Prefill"), std::invalid_argument);
}

TEST(BatchPolicyCliTest, DefaultChunkTokensPerPolicy) {
  // Only kChunkedMixed gets a budget by default: it cannot chunk without
  // one, while the whole-prompt policies stay unbounded (pre-chunking
  // behavior).
  EXPECT_EQ(default_chunk_tokens(BatchPolicy::kChunkedMixed), 64u);
  EXPECT_EQ(default_chunk_tokens(BatchPolicy::kPrefillPriority), 0u);
  EXPECT_EQ(default_chunk_tokens(BatchPolicy::kDecodePriority), 0u);
}

TEST(BatchPolicyCliTest, ParsePreemptPolicyRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(parse_preempt_policy("none"), PreemptPolicy::kNone);
  EXPECT_EQ(parse_preempt_policy("recompute"),
            PreemptPolicy::kRecomputeYoungest);
  EXPECT_THROW(parse_preempt_policy("swap"), std::invalid_argument);
  EXPECT_THROW(parse_preempt_policy(""), std::invalid_argument);
}

util::Cli make_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "test");
  return util::Cli(static_cast<int>(args.size()), args.data());
}

TEST(SchedulerCliTest, DefaultsAreLegacyCompatible) {
  const SchedulerCliOptions opts = parse_scheduler_cli(make_cli({}));
  EXPECT_EQ(opts.policy, BatchPolicy::kPrefillPriority);
  EXPECT_EQ(opts.chunk_tokens, 0u);
  EXPECT_EQ(opts.preempt, PreemptPolicy::kNone);
  EXPECT_EQ(opts.kv_block_tokens, 1u);
  EXPECT_FALSE(opts.paged());
}

TEST(SchedulerCliTest, ChunkedPolicyDefaultsItsBudget) {
  const SchedulerCliOptions opts =
      parse_scheduler_cli(make_cli({"--policy=chunked"}));
  EXPECT_EQ(opts.policy, BatchPolicy::kChunkedMixed);
  EXPECT_EQ(opts.chunk_tokens, 64u);
  // An explicit zero budget (degenerate decode-priority) stays allowed.
  EXPECT_EQ(parse_scheduler_cli(
                make_cli({"--policy=chunked", "--chunk-tokens=0"}))
                .chunk_tokens,
            0u);
}

TEST(SchedulerCliTest, RejectsChunkBudgetUnderWholePromptPolicies) {
  // Pre-validation this combination silently degraded into a batch-member
  // cap; now both CLI surfaces reject it through the shared helper.
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--policy=prefill", "--chunk-tokens=32"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(
                   make_cli({"--policy=decode", "--chunk-tokens=32"})),
               std::invalid_argument);
}

TEST(SchedulerCliTest, ParsesAndValidatesPagedKvFlags) {
  const SchedulerCliOptions opts = parse_scheduler_cli(make_cli(
      {"--policy=chunked", "--preempt=recompute", "--kv-block-tokens=16"}));
  EXPECT_EQ(opts.preempt, PreemptPolicy::kRecomputeYoungest);
  EXPECT_EQ(opts.kv_block_tokens, 16u);
  EXPECT_TRUE(opts.paged());
  EXPECT_TRUE(parse_scheduler_cli(make_cli({"--kv-block-tokens=8"})).paged());
  EXPECT_THROW(parse_scheduler_cli(make_cli({"--kv-block-tokens=0"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(make_cli({"--preempt=swap"})),
               std::invalid_argument);
  EXPECT_THROW(parse_scheduler_cli(make_cli({"--chunk-tokens=-4"})),
               std::invalid_argument);
}

// ------------------------------------------------------------- Fleet runs

void expect_identical(const FleetMetrics& a, const FleetMetrics& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.rejected, b.rejected);
  EXPECT_EQ(a.decode_tokens, b.decode_tokens);
  EXPECT_EQ(a.iterations, b.iterations);
  // Bit-identical, not approximately equal: the engine guarantees
  // reproducible event ordering and all arithmetic is deterministic.
  EXPECT_EQ(a.duration_s, b.duration_s);
  EXPECT_EQ(a.throughput_tok_s, b.throughput_tok_s);
  EXPECT_EQ(a.ttft_ms.p50, b.ttft_ms.p50);
  EXPECT_EQ(a.ttft_ms.p99, b.ttft_ms.p99);
  EXPECT_EQ(a.token_ms.p50, b.token_ms.p50);
  EXPECT_EQ(a.e2e_ms.p99, b.e2e_ms.p99);
  EXPECT_EQ(a.mean_batch_size, b.mean_batch_size);
  EXPECT_EQ(a.busy_fraction, b.busy_fraction);
  EXPECT_EQ(a.kv_peak_occupancy, b.kv_peak_occupancy);
  EXPECT_EQ(a.kv_stall_events, b.kv_stall_events);
  // A healthy fleet never over-releases; the field exists to make the
  // accounting bug observable if one ever does.
  EXPECT_EQ(a.kv_over_release_events, 0u);
  EXPECT_EQ(b.kv_over_release_events, 0u);
  EXPECT_EQ(a.prefill_chunk_steps, b.prefill_chunk_steps);
  EXPECT_EQ(a.chunked_prompts, b.chunked_prompts);
  EXPECT_EQ(a.decode_stall_iterations, b.decode_stall_iterations);
  EXPECT_EQ(a.decode_stall_ms, b.decode_stall_ms);
  EXPECT_EQ(a.inter_token_gap_ms.p50, b.inter_token_gap_ms.p50);
  EXPECT_EQ(a.inter_token_gap_ms.p99, b.inter_token_gap_ms.p99);
  EXPECT_EQ(a.preemptions, b.preemptions);
  EXPECT_EQ(a.recompute_tokens, b.recompute_tokens);
  EXPECT_EQ(a.recompute_ms, b.recompute_ms);
  EXPECT_EQ(a.kv_peak_used_blocks, b.kv_peak_used_blocks);
  EXPECT_EQ(a.kv_peak_frag_tokens, b.kv_peak_frag_tokens);
}

TEST(ServingSimTest, SameSeedSameMetrics) {
  const ServingConfig cfg = base_config();
  const ServingSim sim(cfg);
  const FleetMetrics a = sim.run();
  const FleetMetrics b = sim.run();                  // same instance
  const FleetMetrics c = ServingSim(cfg).run();      // fresh cost probe
  expect_identical(a, b);
  expect_identical(a, c);
  EXPECT_EQ(a.completed, cfg.traffic.num_requests);
  EXPECT_EQ(a.offered, a.completed + a.rejected);
}

TEST(ServingSimTest, DifferentSeedsDiverge) {
  ServingConfig cfg = base_config();
  const FleetMetrics a = ServingSim(cfg).run();
  cfg.traffic.seed = 43;
  const FleetMetrics b = ServingSim(cfg).run();
  EXPECT_NE(a.duration_s, b.duration_s);
}

TEST(ServingSimTest, KvExhaustionBackpressuresButCompletes) {
  ServingConfig cfg = base_config();
  // Room for ~2 test-mix requests at a time; 24 arrive nearly at once.
  cfg.traffic.arrival_rate_per_s = 50000.0;
  KvBlockManager probe(cfg.arch, cfg.model, 1);
  cfg.kv_budget_bytes_per_node = 64 * probe.bytes_per_token_per_node();
  const FleetMetrics m = ServingSim(cfg).run();
  EXPECT_EQ(m.completed, cfg.traffic.num_requests);
  EXPECT_EQ(m.rejected, 0u);
  EXPECT_GT(m.kv_stall_events, 0u);       // admission actually stalled
  EXPECT_GT(m.peak_queue_depth, 4u);      // the queue visibly backed up
  EXPECT_LE(m.kv_peak_occupancy, 1.0);    // never over-committed
  EXPECT_GT(m.queue_wait_ms.p99, m.queue_wait_ms.p50);
}

TEST(ServingSimTest, OversizedRequestIsRejectedNotWedged) {
  ServingConfig cfg = base_config();
  cfg.traffic.explicit_arrivals = {
      {0, workload::make_scenario(8, 8)},
      {0, workload::make_scenario(30, 30)},  // > 32-token KV budget
      {0, workload::make_scenario(8, 8)},
  };
  KvBlockManager probe(cfg.arch, cfg.model, 1);
  cfg.kv_budget_bytes_per_node = 32 * probe.bytes_per_token_per_node();
  const FleetMetrics m = ServingSim(cfg).run();
  EXPECT_EQ(m.offered, 3u);
  EXPECT_EQ(m.completed, 2u);
  EXPECT_EQ(m.rejected, 1u);
}

TEST(ServingSimTest, QueueCapacityShedsLoad) {
  ServingConfig cfg = base_config();
  cfg.traffic.arrival_rate_per_s = 5000.0;  // everyone arrives at once
  cfg.scheduler.queue_capacity = 4;
  cfg.scheduler.max_in_flight = 2;
  const FleetMetrics m = ServingSim(cfg).run();
  EXPECT_GT(m.rejected, 0u);
  EXPECT_EQ(m.offered, m.completed + m.rejected);
  EXPECT_LE(m.peak_queue_depth, 4u);
}

TEST(ServingSimTest, BatchingRespectsMaxBatchAndInterleaves) {
  for (const BatchPolicy policy :
       {BatchPolicy::kPrefillPriority, BatchPolicy::kDecodePriority}) {
    ServingConfig cfg = base_config();
    cfg.scheduler.policy = policy;
    cfg.keep_request_records = true;
    const FleetMetrics m = ServingSim(cfg).run();
    EXPECT_EQ(m.completed, cfg.traffic.num_requests);
    EXPECT_LE(m.mean_batch_size,
              static_cast<double>(cfg.scheduler.max_batch));
    EXPECT_GT(m.mean_batch_size, 1.0);  // batching actually happened
    EXPECT_GT(m.decode_tokens, 0u);
  }
}

TEST(ServingSimTest, PolicyTradesTtftForTokenLatency) {
  ServingConfig cfg = base_config();
  cfg.traffic.arrival_rate_per_s = 2000.0;  // saturating burst
  cfg.traffic.num_requests = 32;
  cfg.scheduler.policy = BatchPolicy::kPrefillPriority;
  const FleetMetrics prefill_first = ServingSim(cfg).run();
  cfg.scheduler.policy = BatchPolicy::kDecodePriority;
  const FleetMetrics decode_first = ServingSim(cfg).run();
  // Prefill priority admits new requests sooner => lower median TTFT.
  EXPECT_LT(prefill_first.ttft_ms.p50, decode_first.ttft_ms.p50);
}

TEST(ServingSimTest, ChunkedPolicyIsDeterministic) {
  ServingConfig cfg = base_config();
  cfg.scheduler.policy = BatchPolicy::kChunkedMixed;
  cfg.scheduler.max_tokens_per_iter = 8;
  const FleetMetrics a = ServingSim(cfg).run();
  const FleetMetrics b = ServingSim(cfg).run();
  expect_identical(a, b);
  EXPECT_EQ(a.completed, cfg.traffic.num_requests);
  EXPECT_GT(a.chunked_prompts, 0u);  // the 16-token prompts actually split
}

TEST(ServingSimTest, ChunkedWithSlackBudgetMatchesDecodePriority) {
  // When the budget always covers whole prompts, kChunkedMixed degenerates
  // to decode-priority scheduling — the two runs must be bit-identical.
  ServingConfig cfg = base_config();
  cfg.scheduler.policy = BatchPolicy::kDecodePriority;
  const FleetMetrics decode = ServingSim(cfg).run();
  cfg.scheduler.policy = BatchPolicy::kChunkedMixed;
  cfg.scheduler.max_tokens_per_iter = 0;  // unbounded
  const FleetMetrics chunked = ServingSim(cfg).run();
  expect_identical(decode, chunked);
  EXPECT_EQ(chunked.chunked_prompts, 0u);
  EXPECT_EQ(chunked.prefill_chunk_steps, chunked.completed);
}

/// The head-of-line interleaving contract the tentpole exists for: a
/// [128:*] long-prompt arrival mid-stream must not add more than one
/// chunk's span to any running decode's inter-token gap.
TEST(ServingSimTest, LongPromptArrivalMidStreamBoundsDecodeGap) {
  ServingConfig cfg;
  cfg.arch = test_arch();
  cfg.model = chunk_model();
  cfg.cost_probe_stride = 16;
  cfg.keep_request_records = true;
  cfg.scheduler.max_batch = 8;
  const core::StepCostModel costs(cfg.arch, cfg.model,
                                  cfg.cost_probe_stride);
  // Request 0 decodes a long stream from cycle 0; the [128:8] prompt lands
  // once ~10 of its tokens are out.
  const sim::Cycles mid_stream =
      costs.prefill_cycles(8) +
      10 * (costs.step_cycles(40) + costs.host_sync_cycles());
  cfg.traffic.explicit_arrivals = {
      {0, workload::make_scenario(8, 64)},
      {mid_stream, workload::make_scenario(128, 8)},
  };

  cfg.scheduler.policy = BatchPolicy::kPrefillPriority;
  const FleetMetrics whole = ServingSim(cfg, costs).run();
  cfg.scheduler.policy = BatchPolicy::kChunkedMixed;
  const std::uint32_t budget = 16;
  cfg.scheduler.max_tokens_per_iter = budget;
  const FleetMetrics chunked = ServingSim(cfg, costs).run();
  ASSERT_EQ(whole.requests.size(), 2u);
  ASSERT_EQ(chunked.requests.size(), 2u);

  // Unchunked, the decode's worst gap swallows the whole 128-token prompt.
  EXPECT_GE(whole.requests[0].max_token_gap_ms,
            costs.cycles_to_ms(costs.prefill_cycles(128)));
  EXPECT_EQ(whole.requests[1].prefill_chunks, 1u);

  // Chunked, every iteration carries at most one <= budget-token chunk, so
  // the decode's gap is bounded by one iteration: the worst decode group
  // (both streams at max KV depth), one chunk at the deepest prompt
  // offsets, and the per-iteration host sync.
  const std::uint32_t deepest = 128 - (budget - 1);
  const sim::Cycles gap_bound =
      costs.decode_batch_cycles({cfg.model.max_seq_len - 1,
                                 cfg.model.max_seq_len - 1}) +
      costs.prefill_chunk_cycles(deepest, budget - 1) +
      costs.host_sync_cycles();
  EXPECT_LE(chunked.requests[0].max_token_gap_ms,
            costs.cycles_to_ms(gap_bound));
  EXPECT_LT(chunked.requests[0].max_token_gap_ms,
            whole.requests[0].max_token_gap_ms);
  EXPECT_GT(chunked.requests[1].prefill_chunks, 1u);
  EXPECT_GT(chunked.chunked_prompts, 0u);
  // All 8 prompt tokens of the runner plus the long prompt complete.
  EXPECT_EQ(chunked.completed, 2u);
}

/// The PR's acceptance criterion: on a long-prompt-heavy mix at a fixed
/// seed, chunking strictly cuts p99 per-token latency versus unchunked
/// prefill-priority while holding throughput within 5%.
TEST(ServingSimTest, ChunkedPrefillCutsTokenTailOnLongPromptMix) {
  ServingConfig cfg;
  cfg.arch = test_arch();
  cfg.model = chunk_model();
  cfg.cost_probe_stride = 16;
  cfg.traffic.mix =
      workload::Mix{"long-prompt-heavy",
                    {{workload::make_scenario(128, 8), 0.4},
                     {workload::make_scenario(8, 48), 0.6}}};
  cfg.traffic.num_requests = 48;
  cfg.traffic.arrival_rate_per_s = 400.0;
  cfg.traffic.seed = 42;
  cfg.scheduler.max_batch = 8;
  const core::StepCostModel costs(cfg.arch, cfg.model,
                                  cfg.cost_probe_stride);

  cfg.scheduler.policy = BatchPolicy::kPrefillPriority;
  cfg.scheduler.max_tokens_per_iter = 0;
  const FleetMetrics whole = ServingSim(cfg, costs).run();
  cfg.scheduler.policy = BatchPolicy::kChunkedMixed;
  cfg.scheduler.max_tokens_per_iter = 16;
  const FleetMetrics chunked = ServingSim(cfg, costs).run();

  ASSERT_EQ(whole.completed, cfg.traffic.num_requests);
  ASSERT_EQ(chunked.completed, cfg.traffic.num_requests);
  EXPECT_LT(chunked.token_ms.p99, whole.token_ms.p99);
  EXPECT_LT(chunked.inter_token_gap_ms.p99, whole.inter_token_gap_ms.p99);
  EXPECT_GT(chunked.decode_tok_s, 0.95 * whole.decode_tok_s);
  EXPECT_LT(chunked.decode_tok_s, 1.05 * whole.decode_tok_s);
  // The win comes from *bounding* each stall, not eliminating stalls:
  // chunking deliberately co-schedules prompt work with decodes (often in
  // more iterations overall), but every individual stall shrinks to at
  // most one chunk, so the mean stall per stalled iteration drops.
  ASSERT_GT(whole.decode_stall_iterations, 0u);
  ASSERT_GT(chunked.decode_stall_iterations, 0u);
  EXPECT_LT(chunked.decode_stall_ms /
                static_cast<double>(chunked.decode_stall_iterations),
            whole.decode_stall_ms /
                static_cast<double>(whole.decode_stall_iterations));
  EXPECT_GT(chunked.chunked_prompts, 0u);
}

// ------------------------------------------------- Paged KV + preemption

/// Decode-heavy shapes: whole-footprint reservation books the long decode
/// tail at admission, so most of the booked HBM sits empty for most of
/// each request's life — the slack paged admission reclaims.
ServingConfig paged_config() {
  ServingConfig cfg;
  cfg.arch = test_arch();
  cfg.model = model::cosim_config();
  cfg.cost_probe_stride = 16;
  cfg.traffic.mix = workload::Mix{"decode-heavy",
                                  {{workload::make_scenario(8, 40), 0.7},
                                   {workload::make_scenario(4, 24), 0.3}}};
  cfg.traffic.num_requests = 96;
  cfg.traffic.seed = 42;
  cfg.scheduler.max_batch = 8;
  cfg.scheduler.policy = BatchPolicy::kChunkedMixed;
  cfg.scheduler.max_tokens_per_iter = 16;
  // Room for three whole [8:40] footprints: moderate overcommit, the
  // regime preempt-and-recompute is built for.
  KvBlockManager probe(cfg.arch, cfg.model, 1);
  cfg.kv_budget_bytes_per_node = 144 * probe.bytes_per_token_per_node();
  cfg.kv_block_tokens = 4;
  cfg.scheduler.max_in_flight = 8;
  cfg.keep_request_records = true;
  // SLOs sized to the cosim deployment (~0.2 ms/token, a few ms of
  // prefill): goodput then prices what paged admission actually buys —
  // burst tails that clear admission immediately instead of queueing
  // behind whole-footprint reservations.
  cfg.slo.ttft_ms = 5.0;
  cfg.slo.token_ms = 2.0;
  return cfg;
}

/// Several short burst/drain cycles at ~50% mean utilization — KV is the
/// binding resource during each burst, the pipeline is not. The off-phases
/// matter: they drain the block pool between bursts, which is what keeps
/// recompute preemption out of the thrash regime (at saturating rates
/// whole-footprint wins instead: admission queueing is free when the
/// pipeline is the bottleneck, and every recomputed token is pure loss —
/// serve_load --preempt=recompute --kv-budget-mb exposes that crossover).
void bursty_traffic(ServingConfig& cfg) {
  cfg.traffic.process = ArrivalProcess::kBursty;
  cfg.traffic.arrival_rate_per_s = 200.0;
  cfg.traffic.burst_factor = 4.0;
  cfg.traffic.burst_fraction = 0.25;
  cfg.traffic.burst_period_s = 0.05;
}

/// The PR's acceptance criterion: at a fixed seed and equal per-node HBM
/// budget, paged admission with recompute preemption admits strictly more
/// concurrent requests and achieves higher goodput than whole-footprint
/// reservation on the bursty mix — and preemption is livelock-free (every
/// request finishes, with a bounded recompute count).
TEST(ServingSimTest, PagedRecomputeBeatsWholeFootprintOnBurstyMix) {
  ServingConfig cfg = paged_config();
  bursty_traffic(cfg);
  const core::StepCostModel costs(cfg.arch, cfg.model,
                                  cfg.cost_probe_stride);

  cfg.scheduler.preempt = PreemptPolicy::kNone;
  const FleetMetrics whole = ServingSim(cfg, costs).run();
  cfg.scheduler.preempt = PreemptPolicy::kRecomputeYoungest;
  const FleetMetrics paged = ServingSim(cfg, costs).run();

  ASSERT_EQ(whole.completed, cfg.traffic.num_requests);
  ASSERT_EQ(paged.completed, cfg.traffic.num_requests);  // nobody starves
  EXPECT_EQ(whole.preemptions, 0u);  // kNone can never need to evict
  EXPECT_GT(paged.preemptions, 0u);  // the pool actually ran dry

  // Strictly more admitted concurrency and strictly higher goodput at the
  // same HBM budget.
  EXPECT_GT(paged.peak_in_flight, whole.peak_in_flight);
  EXPECT_GT(paged.goodput_req_s, whole.goodput_req_s);
  EXPECT_GT(paged.mean_batch_size, whole.mean_batch_size);

  // Livelock-free: bounded recompute per request (age-ordered eviction
  // means the oldest request is never preempted at all).
  std::uint32_t max_preempt = 0;
  for (const RequestRecord& r : paged.requests) {
    EXPECT_FALSE(r.rejected);
    max_preempt = std::max(max_preempt, r.preemptions);
  }
  EXPECT_GT(max_preempt, 0u);
  EXPECT_LE(max_preempt, 12u);
  EXPECT_EQ(paged.requests[0].preemptions, 0u);  // oldest never evicted
  // The recompute bill is visible and priced.
  EXPECT_GT(paged.recompute_tokens, 0u);
  EXPECT_GT(paged.recompute_ms, 0.0);
}

TEST(ServingSimTest, RecomputePreemptionIsDeterministic) {
  ServingConfig cfg = paged_config();
  bursty_traffic(cfg);
  cfg.traffic.num_requests = 48;
  cfg.scheduler.preempt = PreemptPolicy::kRecomputeYoungest;
  const FleetMetrics a = ServingSim(cfg).run();
  const FleetMetrics b = ServingSim(cfg).run();
  expect_identical(a, b);
  EXPECT_GT(a.preemptions, 0u);
}

TEST(ServingSimTest, PreemptedRequestEventuallyFinishes) {
  // Two decode-heavy requests land at cycle 0 on a pool that fits ~1.3 of
  // their final footprints. Paged admission takes both (prompt blocks
  // only); decode growth then drains the pool and the younger request is
  // evicted-and-recomputed — possibly several times — but must finish.
  ServingConfig cfg = paged_config();
  cfg.traffic.explicit_arrivals = {
      {0, workload::make_scenario(8, 40)},
      {0, workload::make_scenario(8, 40)},
  };
  KvBlockManager probe(cfg.arch, cfg.model, 1);
  cfg.kv_budget_bytes_per_node = 64 * probe.bytes_per_token_per_node();
  cfg.scheduler.preempt = PreemptPolicy::kRecomputeYoungest;
  const FleetMetrics m = ServingSim(cfg).run();
  ASSERT_EQ(m.completed, 2u);
  ASSERT_EQ(m.requests.size(), 2u);
  EXPECT_EQ(m.requests[0].preemptions, 0u);  // elder: never evicted
  EXPECT_GE(m.requests[1].preemptions, 1u);  // younger: evicted, recovered
  EXPECT_LE(m.requests[1].preemptions, 16u);  // ...a bounded number of times
  EXPECT_EQ(m.preemptions, m.requests[1].preemptions);
  // Every evicted token re-runs as prefill, so the victim's prompt took
  // more chunk steps than an unpreempted prompt would.
  EXPECT_GT(m.recompute_tokens, 0u);
  // Whole-footprint reservation on the same pool serializes the two
  // requests instead (48 + 48 > 64): same completions, zero preemptions.
  cfg.scheduler.preempt = PreemptPolicy::kNone;
  const FleetMetrics serial = ServingSim(cfg).run();
  EXPECT_EQ(serial.completed, 2u);
  EXPECT_EQ(serial.preemptions, 0u);
  EXPECT_EQ(serial.peak_in_flight, 1u);
}

TEST(ServingSimTest, CoarseBlocksWithoutPreemptionStayConservative) {
  // preempt=none at block size > 1: the whole footprint is still reserved
  // up front (block-rounded), so nothing is ever evicted and the fleet
  // behaves like the legacy manager with slightly coarser capacity.
  ServingConfig cfg = base_config();
  cfg.kv_block_tokens = 8;
  const FleetMetrics m = ServingSim(cfg).run();
  EXPECT_EQ(m.completed, cfg.traffic.num_requests);
  EXPECT_EQ(m.preemptions, 0u);
  EXPECT_EQ(m.kv_block_tokens, 8u);
  EXPECT_LE(m.kv_peak_occupancy, 1.0);
  // Block rounding shows up as measurable internal fragmentation.
  EXPECT_GT(m.kv_peak_frag_tokens, 0u);
}

TEST(ServingSimTest, RejectsZeroKvBlockTokens) {
  ServingConfig cfg = base_config();
  cfg.kv_block_tokens = 0;
  EXPECT_THROW(ServingSim{cfg}, std::invalid_argument);
}

TEST(ServingSimTest, ClosedLoopSelfLimits) {
  ServingConfig cfg = base_config();
  cfg.traffic.process = ArrivalProcess::kClosedLoop;
  cfg.traffic.clients = 4;
  cfg.traffic.think_time_s = 0.001;
  cfg.traffic.num_requests = 16;
  const FleetMetrics m = ServingSim(cfg).run();
  EXPECT_EQ(m.offered, 16u);
  EXPECT_EQ(m.completed, 16u);
  // At most `clients` requests can ever be waiting.
  EXPECT_LE(m.peak_queue_depth, 4u);
  const FleetMetrics n = ServingSim(cfg).run();
  expect_identical(m, n);
}

// ---------------------------------------------------------- RequestQueue

TEST(RequestQueueTest, BoundedFifoWithPeakTracking) {
  sim::Engine engine;
  Request a(engine, 0, workload::make_scenario(1, 1));
  Request b(engine, 1, workload::make_scenario(1, 1));
  Request c(engine, 2, workload::make_scenario(1, 1));
  RequestQueue q(2);
  EXPECT_TRUE(q.push(&a));
  EXPECT_TRUE(q.push(&b));
  EXPECT_FALSE(q.push(&c));  // full
  EXPECT_EQ(q.peak_depth(), 2u);
  EXPECT_EQ(q.front(), &a);
  q.pop();
  EXPECT_EQ(q.front(), &b);
  EXPECT_TRUE(q.push(&c));
}

// ------------------------------------------------------------- Host batch

TEST(HostBatchTest, SubmitFlushTimesRequestsThroughOneFleet) {
  model::ModelConfig cfg = model::cosim_config();
  cfg.vocab_size = 512;
  const auto w = model::Gpt2Weights::random(cfg, 77);
  util::Rng rng(78);
  std::vector<std::uint32_t> calib(24);
  for (auto& t : calib) {
    t = static_cast<std::uint32_t>(rng.next_below(cfg.vocab_size));
  }
  const auto weights = quant::Gpt2Int8Weights::build_with_calibration(w, calib);
  host::Host h(weights, host::Tokenizer::byte_level(),
               core::ArchConfig::two_node());

  host::ServeRequest r1{.prompt = "loop", .max_new_tokens = 6, .sampling = {}};
  host::ServeRequest r2{.prompt = "lynx fox", .max_new_tokens = 4,
                        .sampling = {}};
  EXPECT_EQ(h.submit(r1), 0u);
  EXPECT_EQ(h.submit(r2), 1u);
  EXPECT_EQ(h.pending(), 2u);
  const auto results = h.flush();
  EXPECT_EQ(h.pending(), 0u);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    EXPECT_GT(r.total_ms, 0.0);
    EXPECT_NEAR(r.total_ms, r.prefill_ms + r.decode_ms, 1e-9);
    EXPECT_GE(r.queue_ms, 0.0);
    EXPECT_GE(r.prefill_chunks, 1u);  // unchunked default: exactly one step
    EXPECT_GE(r.max_token_gap_ms, 0.0);
  }
  // Single-request serve matches the documented invariants too.
  const auto lone = h.serve(r1);
  EXPECT_GT(lone.decode_tokens_per_s, 0.0);
  EXPECT_DOUBLE_EQ(lone.queue_ms, 0.0);
  EXPECT_FALSE(lone.rejected);

  // A queue bound of 1 sheds the overflow; shed results are flagged so
  // callers cannot mistake their zero timing for a measurement.
  h.submit(r1);
  h.submit(r2);
  h.submit(r1);
  serve::SchedulerConfig tight;
  tight.queue_capacity = 1;
  const auto shed = h.flush(tight);
  ASSERT_EQ(shed.size(), 3u);
  int rejected = 0;
  for (const auto& r : shed) {
    if (r.rejected) {
      ++rejected;
      EXPECT_DOUBLE_EQ(r.total_ms, 0.0);
      EXPECT_FALSE(r.text.empty());  // generation still happened
    } else {
      EXPECT_GT(r.total_ms, 0.0);
    }
  }
  EXPECT_EQ(rejected, 2);
}

TEST(HostBatchTest, FleetFlushShardsAcrossReplicas) {
  model::ModelConfig cfg = model::cosim_config();
  cfg.vocab_size = 512;
  const auto w = model::Gpt2Weights::random(cfg, 77);
  util::Rng rng(78);
  std::vector<std::uint32_t> calib(24);
  for (auto& t : calib) {
    t = static_cast<std::uint32_t>(rng.next_below(cfg.vocab_size));
  }
  const auto weights = quant::Gpt2Int8Weights::build_with_calibration(w, calib);
  host::Host h(weights, host::Tokenizer::byte_level(),
               core::ArchConfig::two_node());

  host::ServeRequest req{.prompt = "loop", .max_new_tokens = 4,
                         .sampling = {}};
  for (int i = 0; i < 4; ++i) h.submit(req);
  // A cycle-0 burst of four requests over two replicas behind JSQ must
  // alternate (tie -> replica 0, then the loaded replica loses each
  // subsequent tie-break round).
  const auto results =
      h.flush({}, /*replicas=*/2, serve::BalancerPolicy::kJoinShortestQueue);
  ASSERT_EQ(results.size(), 4u);
  std::uint32_t on_replica_1 = 0;
  for (const auto& r : results) {
    EXPECT_FALSE(r.rejected);
    EXPECT_GT(r.total_ms, 0.0);
    EXPECT_LE(r.replica, 1u);
    on_replica_1 += r.replica;
  }
  EXPECT_EQ(results[0].replica, 0u);  // deterministic tie-break
  EXPECT_EQ(on_replica_1, 2u);        // the burst actually sharded
  // Identical single-replica flushes still report replica 0 everywhere.
  h.submit(req);
  const auto lone = h.flush();
  ASSERT_EQ(lone.size(), 1u);
  EXPECT_EQ(lone[0].replica, 0u);
}

}  // namespace
}  // namespace looplynx::serve
