// Tests for the ring network: functional all-gather correctness (any node
// count) and timed fabric behaviour.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "net/fabric.hpp"
#include "net/ring.hpp"
#include "sim/engine.hpp"
#include "util/rng.hpp"

namespace looplynx::net {
namespace {

TEST(FunctionalRingTest, SingleNodeIsIdentity) {
  FunctionalRing<int> ring(1);
  const auto buffers = ring.all_gather({{1, 2, 3}});
  ASSERT_EQ(buffers.size(), 1u);
  EXPECT_EQ(buffers[0], (std::vector<int>{1, 2, 3}));
}

TEST(FunctionalRingTest, FourNodesReconstructFullVector) {
  FunctionalRing<int> ring(4);
  std::vector<std::vector<int>> chunks{{0, 1}, {10, 11}, {20, 21}, {30, 31}};
  RingStats stats;
  const auto buffers = ring.all_gather(chunks, &stats);
  const std::vector<int> expect{0, 1, 10, 11, 20, 21, 30, 31};
  for (const auto& b : buffers) EXPECT_EQ(b, expect);
  EXPECT_TRUE(FunctionalRing<int>::buffers_consistent(buffers));
  // K-1 = 3 exchange rounds, each moving K = 4 chunks.
  EXPECT_EQ(stats.rounds, 3u);
  EXPECT_EQ(stats.packs_sent, 12u);
}

TEST(FunctionalRingTest, InconsistencyDetectorWorks) {
  std::vector<std::vector<int>> good{{1, 2}, {1, 2}};
  std::vector<std::vector<int>> bad{{1, 2}, {1, 3}};
  EXPECT_TRUE(FunctionalRing<int>::buffers_consistent(good));
  EXPECT_FALSE(FunctionalRing<int>::buffers_consistent(bad));
}

class RingPropertyTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RingPropertyTest, AllGatherMatchesConcatenationForAnyNodeCount) {
  const std::size_t nodes = GetParam();
  util::Rng rng(nodes * 1000 + 17);
  const std::size_t chunk = 48;
  std::vector<std::vector<float>> chunks(nodes, std::vector<float>(chunk));
  std::vector<float> expect;
  for (auto& c : chunks) {
    for (auto& v : c) v = static_cast<float>(rng.normal());
    expect.insert(expect.end(), c.begin(), c.end());
  }
  FunctionalRing<float> ring(nodes);
  RingStats stats;
  const auto buffers = ring.all_gather(chunks, &stats);
  ASSERT_EQ(buffers.size(), nodes);
  for (const auto& b : buffers) EXPECT_EQ(b, expect);
  if (nodes > 1) {
    EXPECT_EQ(stats.rounds, nodes - 1);
    EXPECT_EQ(stats.packs_sent, nodes * (nodes - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, RingPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 8, 16),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "nodes" + std::to_string(i.param);
                         });

TEST(RingFabricTest, SendDeliversToSuccessor) {
  sim::Engine eng;
  hw::StreamLinkConfig cfg{.bytes_per_cycle = 32.0, .hop_latency_cycles = 10};
  RingFabric fabric(eng, 4, cfg);
  struct Sender {
    static sim::Task run(RingFabric& fabric) {
      co_await fabric.send(1, Datapack{.bytes = 320, .src_node = 1});
    }
  };
  eng.spawn(Sender::run(fabric));
  eng.run();
  Datapack got;
  ASSERT_TRUE(fabric.rx(2).try_get(got));
  EXPECT_EQ(got.src_node, 1u);
  EXPECT_EQ(got.bytes, 320u);
  EXPECT_EQ(eng.now(), 20u);  // 10 hop + 320/32 serialize
  EXPECT_EQ(fabric.total_bytes(), 320u);
}

TEST(RingFabricTest, AllLinksOperateInParallel) {
  sim::Engine eng;
  hw::StreamLinkConfig cfg{.bytes_per_cycle = 32.0, .hop_latency_cycles = 0};
  RingFabric fabric(eng, 4, cfg);
  struct Sender {
    static sim::Task run(RingFabric& fabric, std::size_t from) {
      co_await fabric.send(from, Datapack{.bytes = 3200,
                                          .src_node =
                                              static_cast<std::uint32_t>(from)});
    }
  };
  for (std::size_t n = 0; n < 4; ++n) eng.spawn(Sender::run(fabric, n));
  eng.run();
  // Four simultaneous neighbour transfers take one serialization time, not
  // four — the ring is a distributed fabric, not a shared bus.
  EXPECT_EQ(eng.now(), 100u);
  for (std::size_t n = 0; n < 4; ++n) {
    Datapack got;
    ASSERT_TRUE(fabric.rx(n).try_get(got));
    EXPECT_EQ(got.src_node, (n + 3) % 4);
  }
}

TEST(RingFabricTest, BackToBackSendsSerializeOnOneLink) {
  sim::Engine eng;
  hw::StreamLinkConfig cfg{.bytes_per_cycle = 32.0, .hop_latency_cycles = 0};
  RingFabric fabric(eng, 2, cfg);
  struct Sender {
    static sim::Task run(RingFabric& fabric) {
      co_await fabric.send(0, Datapack{.bytes = 320});
      co_await fabric.send(0, Datapack{.bytes = 320});
    }
  };
  eng.spawn(Sender::run(fabric));
  eng.run();
  EXPECT_EQ(eng.now(), 20u);
  EXPECT_EQ(fabric.rx(1).size(), 2u);
}

}  // namespace
}  // namespace looplynx::net
