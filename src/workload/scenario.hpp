// [prefill : decode] workload scenarios used throughout the evaluation
// (paper Fig. 8's x-axis).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace looplynx::workload {

struct Scenario {
  std::string name;          // e.g. "[64:512]"
  std::uint32_t prefill = 0;
  std::uint32_t decode = 0;

  std::uint32_t total() const { return prefill + decode; }
};

/// Builds the "[p:d]" display name.
Scenario make_scenario(std::uint32_t prefill, std::uint32_t decode);

/// The Fig. 8 sweep: prefill in {32, 64, 128} x decode in {32, 128, 512}.
/// Long-decode columns model chatbots/code generation; short-decode columns
/// model classification-style usage where the GPU's batched prefill wins.
std::vector<Scenario> fig8_scenarios();

/// Named application workloads referenced in the paper's introduction.
Scenario chatbot();          // short prompt, long generation
Scenario code_generation();  // medium prompt, long generation
Scenario summarization();    // long prompt, short generation

}  // namespace looplynx::workload
