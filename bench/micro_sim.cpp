// Microbenchmarks of the discrete-event simulation engine itself: event
// throughput, FIFO hand-off cost, and full-token simulation rates. These
// bound how long the table/figure harnesses take.
#include <benchmark/benchmark.h>

#include "core/arch_config.hpp"
#include "core/system.hpp"
#include "model/config.hpp"
#include "sim/engine.hpp"
#include "sim/fifo.hpp"
#include "sim/task.hpp"

namespace {

using namespace looplynx;

sim::Task delay_loop(sim::Engine& eng, std::uint64_t iterations) {
  for (std::uint64_t i = 0; i < iterations; ++i) co_await eng.delay(1);
}

void BM_EngineEventThroughput(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    eng.spawn(delay_loop(eng, n));
    eng.run();
    benchmark::DoNotOptimize(eng.now());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineEventThroughput)->Arg(10'000)->Arg(100'000);

sim::Task fifo_producer(sim::Fifo<int>& f, int n) {
  for (int i = 0; i < n; ++i) co_await f.put(i);
}
sim::Task fifo_consumer(sim::Fifo<int>& f, int n, long& sum) {
  for (int i = 0; i < n; ++i) sum += co_await f.get();
}

void BM_FifoHandoff(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    sim::Fifo<int> fifo(eng, 4);
    long sum = 0;
    eng.spawn(fifo_producer(fifo, n));
    eng.spawn(fifo_consumer(fifo, n, sum));
    eng.run();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FifoHandoff)->Arg(10'000);

void BM_TokenSimulation(benchmark::State& state) {
  const auto nodes = static_cast<std::uint32_t>(state.range(0));
  const core::System sys(core::ArchConfig::nodes(nodes),
                         model::gpt2_medium());
  for (auto _ : state) {
    const auto r = sys.run(1, 0);
    benchmark::DoNotOptimize(r.total_cycles);
  }
  state.SetLabel("GPT-2 345M, one token");
}
BENCHMARK(BM_TokenSimulation)->Arg(1)->Arg(2)->Arg(4);

}  // namespace


