// Span accounting for latency-breakdown reports (paper Fig. 5).
//
// The stage scheduler wraps each MDK invocation in a span; the accumulator
// sums wall-clock cycles per category. Because LoopLynx reuses kernels
// *temporally*, top-level stage spans tile the timeline and the per-category
// totals are exactly the paper's breakdown. Optionally retains the full span
// list for debugging / chrome-trace export.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace looplynx::sim {

class Trace {
 public:
  struct Span {
    std::string category;
    Cycles begin = 0;
    Cycles end = 0;
  };

  /// If `keep_spans` is false only per-category totals are retained (cheap
  /// enough for full-sequence simulations).
  explicit Trace(bool keep_spans = false) : keep_spans_(keep_spans) {}

  void add(const std::string& category, Cycles begin, Cycles end);

  /// Adds `cycles` to a category without span bookkeeping.
  void add_cycles(const std::string& category, Cycles cycles);

  /// Total cycles attributed to `category` (0 if unknown).
  Cycles total(const std::string& category) const;

  /// Sum over all categories.
  Cycles grand_total() const;

  /// Fraction of the grand total in `category` (0 if empty).
  double fraction(const std::string& category) const;

  const std::map<std::string, Cycles>& totals() const { return totals_; }
  const std::vector<Span>& spans() const { return spans_; }

  void clear();

  /// Merges another trace's totals into this one.
  void merge(const Trace& other);

  /// Writes a "category: cycles (pct%)" summary, descending by cycles.
  void print_summary(std::ostream& os) const;

  /// Exports retained spans as a Chrome-tracing (chrome://tracing /
  /// Perfetto) JSON document on one track (pid 0 / tid 0). Timestamps are
  /// raw simulated cycles (1 trace-µs == 1 cycle) — integers, so the
  /// export is byte-identical across compilers and build modes. Throws
  /// std::logic_error unless the trace was built with keep_spans.
  void export_chrome_trace(std::ostream& os) const;

 private:
  bool keep_spans_;
  std::map<std::string, Cycles> totals_;
  std::vector<Span> spans_;
};

/// Minimal streaming writer for the Chrome trace-event JSON format
/// (chrome://tracing / https://ui.perfetto.dev), shared by
/// Trace::export_chrome_trace and the serve-layer observer export.
///
/// Determinism contract: every timestamp is a raw simulated-cycle count
/// emitted as an integer (the document declares 1 trace-µs == 1 cycle in
/// otherData), so the bytes produced depend only on the event sequence —
/// no doubles, no locale, no wall clock. finish() closes the document and
/// is idempotent; the destructor calls it.
class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(std::ostream& os);
  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;
  ~ChromeTraceWriter();

  /// Duration event ("ph":"X") on track (pid, tid) over [begin, end].
  void complete(const std::string& name, const std::string& cat,
                std::uint32_t pid, std::uint32_t tid, Cycles begin,
                Cycles end);

  /// Instant event ("ph":"i"); `scope` is "t" (thread), "p" (process) or
  /// "g" (global).
  void instant(const std::string& name, const std::string& cat,
               std::uint32_t pid, std::uint32_t tid, Cycles at,
               char scope = 't');

  /// Async span events ("ph":"b"/"n"/"e"), correlated by `id` within
  /// `cat`.
  void async_begin(const std::string& name, const std::string& cat,
                   std::uint32_t pid, std::uint64_t id, Cycles at);
  void async_instant(const std::string& name, const std::string& cat,
                     std::uint32_t pid, std::uint64_t id, Cycles at);
  void async_end(const std::string& name, const std::string& cat,
                 std::uint32_t pid, std::uint64_t id, Cycles at);

  /// Metadata event naming a process track in the viewer.
  void process_name(std::uint32_t pid, const std::string& name);

  /// Writes the closing brackets (idempotent; no events may follow).
  void finish();

  /// Escapes a string for embedding in a JSON string literal.
  static std::string json_escape(const std::string& s);

 private:
  void begin_event();  // comma separation between events
  void async_event(char phase, const std::string& name,
                   const std::string& cat, std::uint32_t pid,
                   std::uint64_t id, Cycles at);

  std::ostream* os_;
  bool first_ = true;
  bool finished_ = false;
};

/// RAII helper: measures engine.now() at construction and attributes the
/// elapsed cycles to `category` on finish().
class ScopedSpan {
 public:
  ScopedSpan(Trace& trace, Engine& engine, std::string category)
      : trace_(&trace),
        engine_(&engine),
        category_(std::move(category)),
        begin_(engine.now()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Records the span now (idempotent).
  void finish() {
    if (!finished_) {
      trace_->add(category_, begin_, engine_->now());
      finished_ = true;
    }
  }

  ~ScopedSpan() { finish(); }

 private:
  Trace* trace_;
  Engine* engine_;
  std::string category_;
  Cycles begin_;
  bool finished_ = false;
};

}  // namespace looplynx::sim
