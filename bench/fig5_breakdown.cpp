// Regenerates paper Fig. 5: single-node latency breakdown and the
// improvement ladder of the latency-optimization techniques:
//   (a) baseline breakdown (linear+MHA vs critical-path share),
//   (b) + Fused LN&Res (paper: -11%),
//   (c) + head-wise pipelining (paper: -15% vs original).
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/node.hpp"
#include "core/system.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace looplynx;
  const util::Cli cli(argc, argv);
  const auto model = bench::model_from_cli(cli);
  core::RunOptions opt;  // stride 1: breakdown needs every token
  opt.token_sample_stride =
      static_cast<std::uint32_t>(cli.get_int_or("stride", 8));
  const auto prefill =
      static_cast<std::uint32_t>(cli.get_int_or("prefill", 32));
  const auto decode =
      static_cast<std::uint32_t>(cli.get_int_or("decode", 128));

  struct Config {
    const char* label;
    core::ArchConfig arch;
  };
  core::ArchConfig base = core::ArchConfig::one_node().without_optimizations();
  core::ArchConfig with_lnres = base;
  with_lnres.fuse_ln_res = true;
  core::ArchConfig with_all = with_lnres;
  with_all.headwise_pipeline = true;
  with_all.hide_network_sync = true;

  const Config configs[] = {
      {"(a) original", base},
      {"(b) + Fused LN&Res", with_lnres},
      {"(c) + head-wise pipeline", with_all},
  };

  util::Table table("Fig. 5: 1-node latency breakdown on " + model.name +
                    " and optimization improvements");
  table.set_header({"Configuration", "token ms", "linear+MHA", "critical path",
                    "softmax exposed", "improvement vs (a)"});

  double base_ms = 0;
  for (const Config& cfg : configs) {
    core::System sys(cfg.arch, model);
    const core::RunResult r = sys.run(prefill, decode, opt);
    if (base_ms == 0) base_ms = r.avg_token_ms;

    const auto& t = r.trace;
    const double linear_mha =
        static_cast<double>(t.total(core::category::kLinear) +
                            t.total(core::category::kMha));
    const double critical =
        static_cast<double>(t.total(core::category::kCriticalPath) +
                            t.total(core::category::kSoftmax) +
                            t.total(core::category::kSync) +
                            t.total(core::category::kScheduler) +
                            t.total(core::category::kHost));
    const double all = linear_mha + critical;
    table.add_row(
        {cfg.label, util::fmt_fixed(r.avg_token_ms, 2),
         util::fmt_percent(linear_mha / all),
         util::fmt_percent(critical / all),
         util::fmt_percent(
             static_cast<double>(t.total(core::category::kSoftmax)) / all),
         util::fmt_percent(1.0 - r.avg_token_ms / base_ms)});
  }
  table.render(std::cout);

  std::cout << "\nPaper reference: original split 81.5% linear+MHA / 18.5% "
               "critical path;\nFused LN&Res gives an 11% reduction and the "
               "head-wise pipeline a 15% improvement vs the original.\n";
  return 0;
}
