// Golden determinism fixture: the CI workflow's byte-identical sweep gate,
// promoted into plain ctest so a determinism regression fails locally —
// not just in the workflow.
//
// A canonical suite of serve-layer runs (batch policies x chunking x
// paged preemption x fleets x autoscaling, over seeded Poisson, seeded
// bursty and explicit arrival schedules) is serialized into one canonical
// text: integers as decimal, doubles as the hex of their raw IEEE-754
// bits (exact, and independent of any libc formatting choices). Its
// SHA-256 must match the checked-in digest
// (tests/golden/serve_golden.hpp).
//
// The run-twice CI pairs only prove a binary agrees with itself; this
// fixture pins the *absolute* behavior across commits: any change to
// scheduling order, cost arithmetic, traffic generation, routing
// tie-breaks or the autoscaler's decision sequence moves the hash. After
// an intentional behavior change, regenerate with
// tools/regen_determinism_golden.sh and review the new canonical text
// (set GOLDEN_PRINT=1 to dump it) before committing the digest.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "core/arch_config.hpp"
#include "model/config.hpp"
#include "serve/autoscaler.hpp"
#include "serve/fleet.hpp"
#include "serve/kv_block.hpp"
#include "serve/observe.hpp"
#include "serve/serving_sim.hpp"
#include "serve/traffic.hpp"
#include "tests/golden/serve_golden.hpp"
#include "util/sha256.hpp"
#include "workload/mix.hpp"

namespace looplynx::serve {
namespace {

/// Exact-bits double formatting: the raw IEEE-754 bit pattern in hex.
/// Unlike printf's "%a" — whose leading digit and padding the C standard
/// leaves implementation-defined — this depends on no libc formatting
/// choices at all, so the canonical text is identical wherever the
/// arithmetic is.
std::string hex(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(v)));
  return buf;
}

void serialize(std::string& out, const std::string& tag,
               const FleetMetrics& m) {
  out += "== " + tag + "\n";
  out += "counts " + std::to_string(m.offered) + " " +
         std::to_string(m.completed) + " " + std::to_string(m.rejected) +
         " " + std::to_string(m.slo_good) + "\n";
  out += "tokens " + std::to_string(m.total_tokens) + " " +
         std::to_string(m.decode_tokens) + "\n";
  out += "sched " + std::to_string(m.iterations) + " " +
         std::to_string(m.prefill_chunk_steps) + " " +
         std::to_string(m.chunked_prompts) + " " +
         std::to_string(m.decode_stall_iterations) + " " +
         std::to_string(m.peak_in_flight) + " " +
         std::to_string(m.peak_queue_depth) + "\n";
  out += "kv " + std::to_string(m.kv_peak_used_blocks) + " " +
         std::to_string(m.kv_capacity_blocks) + " " +
         std::to_string(m.kv_stall_events) + " " +
         std::to_string(m.kv_peak_frag_tokens) + " " +
         std::to_string(m.preemptions) + " " +
         std::to_string(m.recompute_tokens) + "\n";
  out += "time " + hex(m.duration_s) + " " + hex(m.busy_fraction) + "\n";
  out += "lat " + hex(m.ttft_ms.p50) + " " + hex(m.ttft_ms.p99) + " " +
         hex(m.token_ms.p99) + " " + hex(m.e2e_ms.p99) + " " +
         hex(m.queue_wait_ms.p99) + " " + hex(m.inter_token_gap_ms.p99) +
         "\n";
  for (const RequestRecord& r : m.requests) {
    out += "req " + std::to_string(r.id) + " " + std::to_string(r.replica) +
           " " + std::to_string(r.live_replicas) + " " +
           std::to_string(r.prefill_chunks) + " " +
           std::to_string(r.preemptions) + " " +
           (r.rejected ? "R " : "C ") + hex(r.ttft_ms) + " " +
           hex(r.e2e_ms) + "\n";
  }
}

void serialize(std::string& out, const std::string& tag,
               const FleetResult& r) {
  serialize(out, tag, r.fleet);
  // Plain appends here: GCC 12's -Wrestrict false-positive (PR105651)
  // fires on `literal + std::string&&` chains when inlined.
  out += "routed";
  for (const std::uint64_t n : r.routed) {
    out += " ";
    out += std::to_string(n);
  }
  out += "\n";
  out += "balance ";
  out += hex(r.load_imbalance) + " " + hex(r.ttft_p99_spread_ms) + "\n";
  out += "live " + std::to_string(r.min_live_replicas) + " " +
         std::to_string(r.peak_live_replicas) + " " +
         hex(r.mean_live_replicas) + " " +
         std::to_string(r.replica_cycles) + "\n";
  for (const ScaleEvent& e : r.scale_events) {
    out += "scale " + std::to_string(e.at) + " " + std::to_string(e.from) +
           " " + std::to_string(e.to) + " " +
           scale_trigger_name(e.trigger) + "\n";
  }
}

/// Cache-point serialization: the base record plus every prefix-cache
/// counter and the per-request cached-prefix split. Only the cache sweep
/// uses this — the pre-cache sweeps keep their exact serialization (and
/// digest).
void serialize_cache(std::string& out, const std::string& tag,
                     const FleetMetrics& m) {
  serialize(out, tag, m);
  out += "cache " + std::to_string(m.cache_lookups) + " " +
         std::to_string(m.cache_lookup_tokens) + " " +
         std::to_string(m.cache_hit_requests) + " " +
         std::to_string(m.cache_hit_tokens) + " " +
         std::to_string(m.saved_prefill_cycles) + " " +
         std::to_string(m.prefill_cycles) + "\n";
  out += "cacheblk " + std::to_string(m.cache_insert_blocks) + " " +
         std::to_string(m.cache_evict_blocks) + " " +
         std::to_string(m.cache_cow_events) + " " +
         std::to_string(m.cache_dedup_blocks) + " " +
         std::to_string(m.cache_swap_out_blocks) + " " +
         std::to_string(m.cache_swap_in_blocks) + " " +
         std::to_string(m.cache_blocks_at_end) + "\n";
  out += "cachedreq";
  for (const RequestRecord& r : m.requests) {
    // Plain appends: GCC 12's -Wrestrict false-positive (PR105651).
    out += " ";
    out += std::to_string(r.cached_prefix_tokens);
  }
  out += "\n";
}

/// Disaggregated-point serialization: the base fleet record plus the
/// migration/steal counters, the fabric byte total and every request's
/// migrated/stolen split. Only the disagg sweep uses this — the symmetric
/// sweeps keep their exact serialization (and digest).
void serialize_disagg(std::string& out, const std::string& tag,
                      const FleetResult& r) {
  serialize(out, tag, r);
  out += "roles";
  for (const ReplicaRole role : r.roles) {
    out += " ";
    out += replica_role_name(role);
  }
  out += "\n";
  // Plain appends: GCC 12's -Wrestrict false-positive (PR105651).
  const FleetMetrics& m = r.fleet;
  out += "migrate ";
  out += std::to_string(m.kv_migrations);
  out += " ";
  out += std::to_string(m.kv_migrated_blocks);
  out += " ";
  out += std::to_string(m.kv_migrate_wire_bytes);
  out += " ";
  out += std::to_string(r.fabric_bytes);
  out += " ";
  out += hex(m.kv_migrate_ingest_ms);
  out += "\n";
  out += "steal ";
  out += std::to_string(m.work_steals);
  out += " ";
  out += std::to_string(m.steal_wire_bytes);
  out += "\n";
  out += "handoff";
  for (const RequestRecord& req : m.requests) {
    out += req.migrated ? " M" : (req.stolen ? " S" : " -");
  }
  out += "\n";
  // Per-tier live stats and tier-tagged scale transitions (PR 10): the
  // base record's "scale" lines stay tier-blind so the symmetric digest
  // cannot move; disagg points pin the tier attribution here.
  for (const FleetResult::TierStats& t : r.tiers) {
    out += "tier ";
    out += replica_role_name(t.role);
    for (const std::uint32_t member : t.members) {
      out += " ";
      out += std::to_string(member);
    }
    out += " | " + std::to_string(t.min_live) + " " +
           std::to_string(t.peak_live) + " " + hex(t.mean_live) + " " +
           std::to_string(t.replica_cycles) + " " +
           hex(t.ttft_p99_spread_ms) + "\n";
  }
  for (const ScaleEvent& e : r.scale_events) {
    out += "tscale " + std::to_string(e.tier) + " " + std::to_string(e.at) +
           " " + std::to_string(e.from) + " " + std::to_string(e.to) + " " +
           scale_trigger_name(e.trigger) + "\n";
  }
}

model::ModelConfig golden_model() {
  model::ModelConfig m = model::cosim_config();
  m.name = "cosim-256";
  m.max_seq_len = 256;
  return m;
}

ServingConfig golden_base() {
  ServingConfig cfg;
  cfg.arch = core::ArchConfig::one_node();
  cfg.model = golden_model();
  cfg.cost_probe_stride = 16;
  cfg.traffic.mix = workload::Mix{"skewed",
                                  {{workload::make_scenario(8, 16), 0.8},
                                   {workload::make_scenario(192, 48), 0.2}}};
  cfg.traffic.num_requests = 32;
  cfg.traffic.arrival_rate_per_s = 300.0;
  cfg.traffic.seed = 42;
  cfg.scheduler.max_batch = 4;
  cfg.slo.ttft_ms = 5.0;
  cfg.slo.token_ms = 2.0;
  cfg.keep_request_records = true;
  return cfg;
}

std::uint64_t token_budget(const ServingConfig& cfg, std::uint32_t tokens) {
  KvBlockManager probe(cfg.arch, cfg.model, 1);
  return tokens * probe.bytes_per_token_per_node();
}

/// The canonical suite. Mirrors the CI determinism gate's coverage
/// (policies x chunking x paged preemption x fleet x autoscale) at cosim
/// scale, plus an explicit-arrival fleet point whose output involves no
/// RNG or libm at all.
std::string canonical_sweep() {
  std::string out;

  {
    ServingConfig cfg = golden_base();
    serialize(out, "single-prefill-poisson", ServingSim(cfg).run());
  }
  {
    ServingConfig cfg = golden_base();
    cfg.scheduler.policy = BatchPolicy::kDecodePriority;
    serialize(out, "single-decode-poisson", ServingSim(cfg).run());
  }
  {
    ServingConfig cfg = golden_base();
    cfg.scheduler.policy = BatchPolicy::kChunkedMixed;
    cfg.scheduler.max_tokens_per_iter = 16;
    serialize(out, "single-chunked-poisson", ServingSim(cfg).run());
  }
  {
    ServingConfig cfg = golden_base();
    cfg.scheduler.policy = BatchPolicy::kChunkedMixed;
    cfg.scheduler.max_tokens_per_iter = 16;
    cfg.scheduler.preempt = PreemptPolicy::kRecomputeYoungest;
    cfg.kv_block_tokens = 4;
    cfg.kv_budget_bytes_per_node = token_budget(cfg, 288);
    cfg.traffic.arrival_rate_per_s = 1200.0;
    serialize(out, "single-paged-recompute", ServingSim(cfg).run());
  }
  {
    ServingConfig cfg = golden_base();
    cfg.traffic.process = ArrivalProcess::kBursty;
    cfg.traffic.burst_factor = 4.0;
    cfg.traffic.burst_fraction = 0.25;
    cfg.traffic.burst_period_s = 0.05;
    serialize(out, "single-bursty", ServingSim(cfg).run());
  }
  {
    const FleetConfig cfg = FleetConfig::homogeneous(
        golden_base(), 3, BalancerPolicy::kJoinShortestQueue);
    serialize(out, "fleet-jsq-3", FleetSim(cfg).run());
  }
  {
    ServingConfig base = golden_base();
    base.scheduler.policy = BatchPolicy::kChunkedMixed;
    base.scheduler.max_tokens_per_iter = 16;
    base.scheduler.preempt = PreemptPolicy::kRecomputeYoungest;
    base.kv_block_tokens = 4;
    base.kv_budget_bytes_per_node = token_budget(base, 288);
    base.traffic.arrival_rate_per_s = 1200.0;
    const FleetConfig cfg =
        FleetConfig::homogeneous(base, 2, BalancerPolicy::kKvAware);
    serialize(out, "fleet-kv-paged-2", FleetSim(cfg).run());
  }
  {
    ServingConfig base = golden_base();
    base.traffic.process = ArrivalProcess::kBursty;
    base.traffic.num_requests = 48;
    base.traffic.arrival_rate_per_s = 400.0;
    base.traffic.burst_factor = 4.0;
    base.traffic.burst_fraction = 0.25;
    base.traffic.burst_period_s = 0.05;
    base.scheduler.max_in_flight = 6;
    FleetConfig cfg = FleetConfig::homogeneous(
        base, 3, BalancerPolicy::kJoinShortestQueue);
    cfg.autoscale.enabled = true;
    cfg.autoscale.policy = ScalePolicy::kQueueDepth;
    cfg.autoscale.min_replicas = 1;
    cfg.autoscale.max_replicas = 3;
    cfg.autoscale.eval_interval_ms = 2.0;
    cfg.autoscale.ttft_window_ms = 10.0;
    cfg.autoscale.queue_high = 1.5;
    cfg.autoscale.queue_low = 0.25;
    cfg.autoscale.up_evals = 1;
    cfg.autoscale.down_evals = 2;
    cfg.autoscale.cooldown_evals = 1;
    serialize(out, "fleet-autoscale-queue", FleetSim(cfg).run());
    cfg.autoscale.policy = ScalePolicy::kHybrid;
    serialize(out, "fleet-autoscale-hybrid", FleetSim(cfg).run());
  }
  {
    // Explicit schedule: integer arrival cycles, no RNG, no libm — this
    // point is bit-portable even across libm versions, so a golden
    // mismatch isolated to the seeded points implicates the math
    // library, not the engine.
    ServingConfig base = golden_base();
    base.traffic.explicit_arrivals.clear();
    for (std::uint32_t i = 0; i < 24; ++i) {
      base.traffic.explicit_arrivals.push_back(
          Arrival{static_cast<sim::Cycles>(i) * 40000,
                  i % 5 == 0 ? workload::make_scenario(192, 48)
                             : workload::make_scenario(8, 16)});
    }
    const FleetConfig cfg =
        FleetConfig::homogeneous(base, 2, BalancerPolicy::kRoundRobin);
    serialize(out, "fleet-explicit-rr", FleetSim(cfg).run());
  }
  return out;
}

/// The canonical *cache* sweep: multi-turn chat traffic (the only traffic
/// whose prompt contents repeat across requests) through the
/// content-addressed prefix cache — plain, under the cost-aware preempt
/// policy, with the swap tier, and across a fleet. Pins the full cache
/// counter set and every request's cached-prefix split on top of the base
/// record; kept separate from canonical_sweep() so the pre-cache digest
/// never moves.
std::string canonical_cache_sweep() {
  std::string out;
  const auto chat_base = [] {
    ServingConfig cfg = golden_base();
    ChatTrafficConfig chat;
    chat.conversations = 3;
    chat.turns = 3;
    chat.system_prompt_tokens = 24;
    chat.user_turn_tokens = 8;
    chat.reply_tokens = 8;
    cfg.traffic.scripted_shapes = chat_turn_shapes(chat);
    cfg.traffic.num_requests =
        static_cast<std::uint32_t>(cfg.traffic.scripted_shapes.size());
    cfg.traffic.arrival_rate_per_s = 900.0;
    cfg.scheduler.policy = BatchPolicy::kChunkedMixed;
    cfg.scheduler.max_tokens_per_iter = 16;
    cfg.kv_block_tokens = 4;
    cfg.prefix_cache = true;
    return cfg;
  };
  {
    ServingConfig cfg = chat_base();
    serialize_cache(out, "cache-chat-whole-footprint", ServingSim(cfg).run());
  }
  {
    ServingConfig cfg = chat_base();
    cfg.scheduler.preempt = PreemptPolicy::kRecomputeYoungest;
    cfg.kv_budget_bytes_per_node = token_budget(cfg, 96);
    serialize_cache(out, "cache-chat-paged-youngest", ServingSim(cfg).run());
  }
  {
    ServingConfig cfg = chat_base();
    cfg.scheduler.preempt = PreemptPolicy::kRecomputeCostAware;
    cfg.kv_budget_bytes_per_node = token_budget(cfg, 96);
    cfg.kv_swap = true;
    serialize_cache(out, "cache-chat-swap-cost-aware", ServingSim(cfg).run());
  }
  {
    ServingConfig base = chat_base();
    base.scheduler.preempt = PreemptPolicy::kRecomputeYoungest;
    base.kv_budget_bytes_per_node = token_budget(base, 96);
    const FleetConfig cfg =
        FleetConfig::homogeneous(base, 2, BalancerPolicy::kJoinShortestQueue);
    const FleetResult r = FleetSim(cfg).run();
    serialize_cache(out, "cache-chat-fleet-jsq-2", r.fleet);
  }
  return out;
}

/// The canonical *disaggregated* sweep: prefill/decode role splits with
/// KV migration (and, on the jsq point, work stealing) over the ring
/// fabric, plus a per-tier autoscaled point. Pins the migration
/// counters, fabric byte totals, every request's migrated/stolen split,
/// the per-tier live stats and the tier-tagged scale log on top of the
/// base fleet record; kept separate from canonical_sweep() so the
/// symmetric digest never moves.
std::string canonical_disagg_sweep() {
  std::string out;
  const auto disagg_base = [](std::uint32_t n) {
    FleetConfig cfg = FleetConfig::homogeneous(
        golden_base(), n, BalancerPolicy::kJoinShortestQueue);
    // 64-byte hops at a modest rate so migrations take visible wire time.
    cfg.kv_link.bytes_per_cycle = 16.0;
    return cfg;
  };
  {
    FleetConfig cfg = disagg_base(2);
    cfg.roles = {ReplicaRole::kPrefill, ReplicaRole::kDecode};
    serialize_disagg(out, "disagg-1p1d-jsq", FleetSim(cfg).run());
  }
  {
    FleetConfig cfg = disagg_base(3);
    cfg.roles = {ReplicaRole::kPrefill, ReplicaRole::kPrefill,
                 ReplicaRole::kDecode};
    cfg.balancer = BalancerPolicy::kRoundRobin;
    serialize_disagg(out, "disagg-2p1d-rr", FleetSim(cfg).run());
  }
  {
    // Paged + chunked prefill on the prefill side: migration fires on the
    // *last* chunk, and block-granular lists cross the fabric.
    ServingConfig base = golden_base();
    base.scheduler.policy = BatchPolicy::kChunkedMixed;
    base.scheduler.max_tokens_per_iter = 16;
    base.kv_block_tokens = 4;
    FleetConfig cfg = FleetConfig::homogeneous(
        base, 3, BalancerPolicy::kJoinShortestQueue);
    cfg.kv_link.bytes_per_cycle = 16.0;
    cfg.roles = {ReplicaRole::kPrefill, ReplicaRole::kGeneral,
                 ReplicaRole::kDecode};
    serialize_disagg(out, "disagg-paged-mixed-roles", FleetSim(cfg).run());
  }
  {
    // Per-tier autoscaling (PR 10): two controllers on the shared fleet
    // clock, tier-tagged scale events, and KV migrations crossing
    // live-mask changes — the autoscaler's decision sequence is part of
    // the pinned bytes.
    ServingConfig base = golden_base();
    base.traffic.process = ArrivalProcess::kBursty;
    base.traffic.num_requests = 48;
    base.traffic.arrival_rate_per_s = 400.0;
    base.traffic.burst_factor = 4.0;
    base.traffic.burst_fraction = 0.25;
    base.traffic.burst_period_s = 0.05;
    base.scheduler.max_in_flight = 6;
    FleetConfig cfg = FleetConfig::homogeneous(
        base, 3, BalancerPolicy::kJoinShortestQueue);
    cfg.kv_link.bytes_per_cycle = 16.0;
    cfg.roles = {ReplicaRole::kPrefill, ReplicaRole::kPrefill,
                 ReplicaRole::kDecode};
    cfg.autoscale.enabled = true;
    cfg.autoscale.policy = ScalePolicy::kHybrid;
    cfg.autoscale.tier_min = {1, 1};
    cfg.autoscale.tier_max = {2, 1};
    cfg.autoscale.eval_interval_ms = 2.0;
    cfg.autoscale.ttft_window_ms = 10.0;
    cfg.autoscale.queue_high = 1.5;
    cfg.autoscale.queue_low = 0.25;
    cfg.autoscale.up_evals = 1;
    cfg.autoscale.down_evals = 2;
    cfg.autoscale.cooldown_evals = 1;
    serialize_disagg(out, "disagg-autoscale-2p1d-hybrid",
                     FleetSim(cfg).run());
  }
  return out;
}

/// The canonical *observed* export: two sweep points re-run with an
/// Observer attached — the paged-recompute single (preempt/recompute
/// lifecycle traffic) and the queue-policy autoscaled fleet (scale/drain
/// instants) — serialized through both exporters. Every byte of both
/// formats is pinned: trace-event timestamps, Prometheus line order,
/// histogram bucketing, the lot (DESIGN.md §7 determinism rules).
std::string canonical_observed_export() {
  std::string out;
  const auto export_both = [&out](const Observer& obs,
                                  const std::string& tag) {
    std::ostringstream trace, prom;
    obs.write_chrome_trace(trace);
    obs.write_prometheus(prom);
    out += "==== " + tag + " chrome-trace\n" + trace.str() + "\n";
    out += "==== " + tag + " prometheus\n" + prom.str();
  };
  {
    ServingConfig cfg = golden_base();
    cfg.scheduler.policy = BatchPolicy::kChunkedMixed;
    cfg.scheduler.max_tokens_per_iter = 16;
    cfg.scheduler.preempt = PreemptPolicy::kRecomputeYoungest;
    cfg.kv_block_tokens = 4;
    cfg.kv_budget_bytes_per_node = token_budget(cfg, 288);
    cfg.traffic.arrival_rate_per_s = 1200.0;
    Observer obs(1, cfg.arch.frequency_hz);
    ServingSim(cfg).run(&obs);
    export_both(obs, "single-paged-recompute");
  }
  {
    ServingConfig base = golden_base();
    base.traffic.process = ArrivalProcess::kBursty;
    base.traffic.num_requests = 48;
    base.traffic.arrival_rate_per_s = 400.0;
    base.traffic.burst_factor = 4.0;
    base.traffic.burst_fraction = 0.25;
    base.traffic.burst_period_s = 0.05;
    base.scheduler.max_in_flight = 6;
    FleetConfig cfg = FleetConfig::homogeneous(
        base, 3, BalancerPolicy::kJoinShortestQueue);
    cfg.autoscale.enabled = true;
    cfg.autoscale.policy = ScalePolicy::kQueueDepth;
    cfg.autoscale.min_replicas = 1;
    cfg.autoscale.max_replicas = 3;
    cfg.autoscale.eval_interval_ms = 2.0;
    cfg.autoscale.ttft_window_ms = 10.0;
    cfg.autoscale.queue_high = 1.5;
    cfg.autoscale.queue_low = 0.25;
    cfg.autoscale.up_evals = 1;
    cfg.autoscale.down_evals = 2;
    cfg.autoscale.cooldown_evals = 1;
    Observer obs(3, base.arch.frequency_hz);
    FleetSim(cfg).run(&obs);
    export_both(obs, "fleet-autoscale-queue");
  }
  return out;
}

TEST(DeterminismGolden, CanonicalSweepMatchesCheckedInDigest) {
  const std::string sweep = canonical_sweep();
  const std::string digest = util::sha256_hex(sweep);
  if (std::getenv("GOLDEN_PRINT") != nullptr) {
    std::fputs(sweep.c_str(), stdout);
    std::printf("SHA256 %s\n", digest.c_str());
    GTEST_SKIP() << "GOLDEN_PRINT set: emitted canonical sweep, skipped "
                    "the digest comparison";
  }
  EXPECT_EQ(digest, golden::kServeSweepSha256)
      << "The canonical serve sweep changed. If this is an intentional "
         "behavior change, inspect it (GOLDEN_PRINT=1 "
         "./test_determinism_golden) and regenerate the digest with "
         "tools/regen_determinism_golden.sh; otherwise a determinism "
         "regression landed.";
}

TEST(DeterminismGolden, CanonicalObservedExportMatchesCheckedInDigest) {
  const std::string text = canonical_observed_export();
  const std::string digest = util::sha256_hex(text);
  if (std::getenv("GOLDEN_PRINT") != nullptr) {
    std::fputs(text.c_str(), stdout);
    std::printf("SHA256-OBSERVE %s\n", digest.c_str());
    GTEST_SKIP() << "GOLDEN_PRINT set: emitted canonical exports, skipped "
                    "the digest comparison";
  }
  EXPECT_EQ(digest, golden::kObserveExportSha256)
      << "The canonical observed export changed. An intentional exporter "
         "or scheduling change moves this hash — inspect it (GOLDEN_PRINT=1 "
         "./test_determinism_golden) and regenerate with "
         "tools/regen_determinism_golden.sh; anything else is a "
         "determinism regression in the observability path.";
}

TEST(DeterminismGolden, CanonicalDisaggSweepMatchesCheckedInDigest) {
  const std::string text = canonical_disagg_sweep();
  const std::string digest = util::sha256_hex(text);
  if (std::getenv("GOLDEN_PRINT") != nullptr) {
    std::fputs(text.c_str(), stdout);
    std::printf("SHA256-DISAGG %s\n", digest.c_str());
    GTEST_SKIP() << "GOLDEN_PRINT set: emitted canonical disagg sweep, "
                    "skipped the digest comparison";
  }
  EXPECT_EQ(digest, golden::kDisaggSweepSha256)
      << "The canonical disaggregated sweep changed. An intentional "
         "migration or scheduling change moves this hash — inspect it "
         "(GOLDEN_PRINT=1 ./test_determinism_golden) and regenerate with "
         "tools/regen_determinism_golden.sh; anything else is a "
         "determinism regression in the disaggregation path.";
}

TEST(DeterminismGolden, CanonicalCacheSweepMatchesCheckedInDigest) {
  const std::string text = canonical_cache_sweep();
  const std::string digest = util::sha256_hex(text);
  if (std::getenv("GOLDEN_PRINT") != nullptr) {
    std::fputs(text.c_str(), stdout);
    std::printf("SHA256-CACHE %s\n", digest.c_str());
    GTEST_SKIP() << "GOLDEN_PRINT set: emitted canonical cache sweep, "
                    "skipped the digest comparison";
  }
  EXPECT_EQ(digest, golden::kCacheSweepSha256)
      << "The canonical prefix-cache sweep changed. An intentional cache "
         "or scheduling change moves this hash — inspect it (GOLDEN_PRINT=1 "
         "./test_determinism_golden) and regenerate with "
         "tools/regen_determinism_golden.sh; anything else is a "
         "determinism regression in the cache path.";
}

/// The suite itself must be reproducible within one process (fresh cost
/// probes, fresh engines): if this fails, the digest above is noise.
TEST(DeterminismGolden, CanonicalSweepIsReproducibleInProcess) {
  EXPECT_EQ(util::sha256_hex(canonical_sweep()),
            util::sha256_hex(canonical_sweep()));
  EXPECT_EQ(util::sha256_hex(canonical_observed_export()),
            util::sha256_hex(canonical_observed_export()));
  EXPECT_EQ(util::sha256_hex(canonical_cache_sweep()),
            util::sha256_hex(canonical_cache_sweep()));
  EXPECT_EQ(util::sha256_hex(canonical_disagg_sweep()),
            util::sha256_hex(canonical_disagg_sweep()));
}

/// Known-answer test for the hasher itself (FIPS 180-4 vectors), so a
/// golden failure cannot be a broken SHA-256.
TEST(DeterminismGolden, Sha256KnownAnswers) {
  EXPECT_EQ(util::sha256_hex(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(util::sha256_hex("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(util::sha256_hex(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
  // 64-byte message: exercises the exact-two-block padding path.
  EXPECT_EQ(util::sha256_hex(std::string(64, 'a')),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb");
}

}  // namespace
}  // namespace looplynx::serve
